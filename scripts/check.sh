#!/usr/bin/env bash
# Full local gate: Release build + complete test suite, then a ThreadSanitizer
# build of the concurrency-sensitive targets (work-stealing deque and the
# thread executor) running their stress tests.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== Release build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== ThreadSanitizer build (runtime stress tests) =="
cmake -B build-tsan -S . -DAMTFMM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" --target ws_deque_test executor_test
./build-tsan/tests/runtime/ws_deque_test
./build-tsan/tests/runtime/executor_test

echo "== All checks passed =="
