#!/usr/bin/env bash
# Full local gate, mirroring .github/workflows/ci.yml:
#   1. invariant lint self-test, then the lint itself (threading /
#      memory-order / payload / seed rules),
#   2. Release build + complete test suite, plus the kernel/operator tests
#      re-run with AMTFMM_FORCE_ISA=scalar (SIMD dispatch pinned off),
#      followed by the static concurrency contract when clang++ exists:
#      -Wthread-safety -Werror build, tests/static try_compile proofs,
#      and the amtfmm_lint AST analyzer over the compilation database,
#   3. rtcheck model-checker sweep (exhaustive DFS + seeded mutations + PCT),
#   4. Debug build of the multi-locality parity / LCO-semantics tests
#      (assertions and the GAS/ownership debug checks enabled),
#   5. ThreadSanitizer build of the concurrency-sensitive targets,
#   6. AddressSanitizer build + complete test suite,
#   7. UndefinedBehaviorSanitizer build + complete test suite,
#   8. clang-format check (skipped when clang-format is unavailable),
#   9. benchmark smoke run with JSON output, including the per-ISA SIMD
#      kernel sweep gated by scripts/check_bench_kernels.py and the socket
#      transport sweep gated by scripts/check_bench_transport.py,
#  10. multi-process loopback: amtfmm_launch forks real socket localities
#      (unix + tcp, 2 and 4 processes) and amtfmm_loopback asserts
#      multi-process == in-process == sim potentials at 1e-12.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== Invariant lint (self-test, then tree) =="
python3 scripts/test_lint_invariants.py
python3 scripts/lint_invariants.py

echo "== Release build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
# Top-level CMakeLists exports the compilation database; surface it at the
# repo root for clangd, run-clang-tidy, and amtfmm_lint -p defaults.
ln -sf build/compile_commands.json compile_commands.json
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== Static concurrency contract (clang legs) =="
# Mirrors the CI static-analysis job: a clang build carries
# -Wthread-safety -Werror=thread-safety (top-level CMakeLists), builds
# amtfmm_lint when the Clang CMake package is present, and runs the
# tests/static try_compile proofs plus the AST analyzer over the full
# compilation database.  GCC-only hosts skip with a notice — the regex
# lint above and CI remain the gate.
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-static -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_C_COMPILER=clang >/dev/null
  cmake --build build-static -j"$JOBS"
  ctest --test-dir build-static --output-on-failure -j"$JOBS" \
    -R 'StaticTsa|AmtfmmLint'
else
  echo "clang++ not installed; skipping thread-safety + amtfmm_lint legs" \
       "(CI enforces them)"
fi

echo "== Kernel/operator tests with SIMD dispatch forced to scalar =="
AMTFMM_FORCE_ISA=scalar ctest --test-dir build --output-on-failure \
  -j"$JOBS" -R 'Simd|Kernel|M2lRotation|Evaluator|Engine|Dag'

echo "== rtcheck: exhaustive DFS sweep =="
./build/tools/rtcheck --mode dfs
echo "== rtcheck: seeded-mutation detection =="
for m in steal-bottom-relaxed lco-set-input-no-lock \
         coalescer-count-after-insert gas-resolve-relaxed \
         counters-count-early; do
  ./build/tools/rtcheck --mutation "$m"
done
echo "== rtcheck: randomized (PCT) quick pass =="
./build/tools/rtcheck --mode pct --executions 64 --seed 1

echo "== Debug build (multi-locality parity, LCO semantics, GAS checks) =="
cmake -B build-debug -S . -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-debug -j"$JOBS" --target \
  expansion_lco_test gas_test evaluator_test sim_test
ctest --test-dir build-debug --output-on-failure -j"$JOBS" \
  -R 'MultiLocality|ExpansionLco|GasTest|GasDeathTest'

echo "== ThreadSanitizer build (runtime stress tests) =="
cmake -B build-tsan -S . -DAMTFMM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" --target \
  ws_deque_test executor_test coalescer_test trace_test gas_test \
  counters_test net_frame_test net_transport_test
./build-tsan/tests/runtime/ws_deque_test
./build-tsan/tests/runtime/executor_test
./build-tsan/tests/runtime/coalescer_test
./build-tsan/tests/runtime/trace_test
./build-tsan/tests/runtime/gas_test
./build-tsan/tests/runtime/counters_test
./build-tsan/tests/runtime/net_frame_test
./build-tsan/tests/runtime/net_transport_test

echo "== AddressSanitizer build + full test suite =="
cmake -B build-asan -S . -DAMTFMM_SANITIZE=address >/dev/null
cmake --build build-asan -j"$JOBS"
ctest --test-dir build-asan --output-on-failure -j"$JOBS"

echo "== UndefinedBehaviorSanitizer build + full test suite =="
cmake -B build-ubsan -S . -DAMTFMM_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j"$JOBS"
ctest --test-dir build-ubsan --output-on-failure -j"$JOBS"

echo "== clang-format check =="
if command -v clang-format >/dev/null 2>&1; then
  git ls-files 'src/**/*.hpp' 'src/**/*.cpp' 'bench/*.hpp' 'bench/*.cpp' \
    'tests/**/*.cpp' 'examples/*.cpp' \
    | xargs clang-format --dry-run -Werror
else
  echo "clang-format not installed; skipping (CI enforces it)"
fi

echo "== Benchmark smoke (JSON) =="
mkdir -p build/bench-smoke
./build/bench/micro_operators --benchmark_min_time=0.05 \
  --json build/bench-smoke/micro_operators.json
./build/bench/micro_runtime --benchmark_min_time=0.05 \
  --json build/bench-smoke/micro_runtime.json

echo "== SIMD kernel sweep (BENCH_kernels.json) =="
./build/bench/micro_operators \
  --kernels-json build/bench-smoke/BENCH_kernels.json
./build/bench/micro_operators --isa scalar \
  --kernels-json build/bench-smoke/BENCH_kernels_scalar.json
python3 scripts/check_bench_kernels.py build/bench-smoke/BENCH_kernels.json \
  --ref build/bench-smoke/BENCH_kernels_scalar.json

echo "== Socket transport sweep (BENCH_transport.json) =="
./build/bench/micro_runtime --benchmark_filter=NONE \
  --transport-json build/bench-smoke/BENCH_transport.json
python3 scripts/check_bench_transport.py \
  build/bench-smoke/BENCH_transport.json

echo "== Multi-process loopback (real socket localities) =="
for np in 2 4; do
  for transport in unix tcp; do
    ./build/tools/amtfmm_launch --np="$np" --transport="$transport" \
      --timeout=120 -- ./build/tools/amtfmm_loopback --n=3000 --cores=2
  done
done

echo "== Resident pipeline steady state (BENCH_serve.json) =="
./build/tools/amtfmm_serve --n=4000 --epochs=6 --localities=2 --cores=2 \
  --json=build/bench-smoke/BENCH_serve_inproc.json
./build/tools/amtfmm_launch --np=2 --transport=unix --timeout=120 \
  -- ./build/tools/amtfmm_serve --n=4000 --epochs=6 --cores=2 \
  --json=build/bench-smoke/BENCH_serve_net.json
python3 scripts/check_bench_serve.py \
  build/bench-smoke/BENCH_serve_inproc.json \
  build/bench-smoke/BENCH_serve_net.json \
  --out build/bench-smoke/BENCH_serve.json

echo "== Telemetry channel, trace merge, watchdog dump =="
python3 scripts/check_telemetry.py --build-dir build

echo "== Trace export + critical-path analysis =="
./build/bench/fig4_utilization --n 20000 --intervals 20 \
  --trace-out=build/bench-smoke/fig4_trace.json \
  --json=build/bench-smoke/fig4_summary.json
./build/tools/trace_report build/bench-smoke/fig4_trace.json \
  --out build/bench-smoke/fig4_report.json
python3 -m json.tool build/bench-smoke/fig4_trace.json > /dev/null
python3 -m json.tool build/bench-smoke/fig4_summary.json > /dev/null
python3 -m json.tool build/bench-smoke/fig4_report.json > /dev/null

echo "== All checks passed =="
