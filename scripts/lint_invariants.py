#!/usr/bin/env python3
"""Repository concurrency/robustness invariant linter.

Machine-checkable rules the code review relies on:

  1. threading-primitives: raw std::thread / std::mutex /
     std::condition_variable only inside src/runtime/ (the execution
     substrate) and src/rtcheck/ (the model checker's own machinery).
     Everything else goes through the Executor interface or SyncMutex /
     SyncCondVar.  Escape: `// thread-ok: <reason>` on the line or within
     two lines above, for the rare documented exception.

  2. relaxed-ordering: `memory_order_relaxed` needs a
     `// relaxed-ok: <reason>` comment (same line or up to two lines
     above) stating why the weak order is safe.  Exempt files, where
     relaxed is the reviewed default: src/runtime/counters.* (sharded
     statistics, snapshot() documents the merge ordering),
     src/runtime/ws_deque.hpp (the Chase-Lev memory-order table lives in
     DESIGN.md §3d), src/runtime/sync_hook.hpp (hook dispatch constants,
     not atomic operations), src/runtime/net/ transport and executor
     (NetStats diagnostic counters, and termination-protocol counts whose
     soundness rests on two-round stability, not ordering — DESIGN.md §5),
     and src/rtcheck/ (the harness serializes all model threads; its
     control flags carry no data).

  3. payload-raw-pointers: parcel payload structs (serialized with memcpy
     and shipped between localities) must not contain raw pointers —
     addresses are meaningless on the wire.  Checked structurally for the
     known wire structs: WireRecord, ExpansionPayload, ParcelHeader,
     SectionHeader, ContribHeader.

  4. seeded-randomness: no rand()/srand()/std::random_device in src/ —
     every stochastic component (PCT exploration, benchmark point clouds)
     takes an explicit seed so runs replay exactly.  Escape:
     `// rand-ok: <reason>`.

  5. simd-confinement: vector intrinsics (<immintrin.h>, <arm_neon.h>,
     _mm*/__m256/__m512/__mmask/float64x2_t spellings, `#ifdef __AVX*`
     gates, __builtin_cpu_supports) only inside src/kernels/simd/ — every
     other layer calls the dispatched amtfmm::simd API so portability and
     the scalar-parity tests stay meaningful.  Escape:
     `// simd-ok: <reason>`, mirroring the threading-confinement rule.

  6. net-confinement: raw socket syscalls and headers (<sys/socket.h>,
     <sys/un.h>, <netinet/*>, <arpa/inet.h>, ::socket/::connect/::bind/
     ::listen/::accept, sockaddr) only inside src/runtime/net/ — every
     other layer talks to peers through NetTransport / the Executor
     parcel API, so transport policy (framing, backpressure, shutdown)
     stays in one reviewed place.  Escape: `// net-ok: <reason>`.

  7. wall-clock-confinement: wall-clock time sources (system_clock,
     gettimeofday, CLOCK_REALTIME, time(nullptr)) only inside the
     trace/telemetry layer (src/runtime/trace.cpp, src/runtime/
     telemetry.cpp) — everything else runs on the steady clock so clock
     adjustments (NTP slews, DST) can never corrupt latency measurements,
     the termination protocol, or cross-rank clock sync; the trace
     wall-anchor is the ONE place real time enters, and the merge
     corrects everything else against it.  Escape: `// time-ok: <reason>`.

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

THREAD_RE = re.compile(
    r"std::(thread|jthread|mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"condition_variable(_any)?)\b"
)
RELAXED_RE = re.compile(r"memory_order_relaxed")
RANDOM_RE = re.compile(r"std::random_device|(?<![\w.])s?rand\s*\(")
# A struct member that is (or contains) a raw pointer:  `T* name;`,
# `T *name = ...;`, `std::array<T*, N> name;`.
POINTER_MEMBER_RE = re.compile(r"^\s*[\w:<>,\s]+\*+\s*\w+\s*(=[^;]*)?;|<[^>]*\*")

SIMD_RE = re.compile(
    r"immintrin\.h|x86intrin\.h|arm_neon\.h|__builtin_cpu_supports|"
    r"\b_mm\d*_\w+|\b__m(128|256|512)[di]?\b|\b__mmask\d+\b|"
    r"\b(float|uint|int)64x2(x\d)?_t\b|__AVX\w*__"
)

# Socket headers and syscalls.  The lookbehind on the `::` forms keeps
# qualified member definitions (`ThreadExecutor::send(`) from matching —
# only global-namespace calls like `::send(fd, ...)` count.
NET_RE = re.compile(
    r"sys/socket\.h|sys/un\.h|netinet/|arpa/inet\.h|\bsockaddr\b|"
    r"(?<![\w)])::(socket|connect|bind|listen|accept4?|recv|send|"
    r"sendmsg|recvmsg|setsockopt|getsockopt|getsockname|shutdown)\s*\("
)

# Wall-clock reads (rule 7).  The negative lookbehind keeps identifiers
# like `steady_time(` from matching the bare `time(` call form.
WALLCLOCK_RE = re.compile(
    r"system_clock|gettimeofday|CLOCK_REALTIME|"
    r"(?<![\w.])time\s*\(\s*(nullptr|NULL|0)?\s*\)"
)

THREAD_DIRS = ("src/runtime/", "src/rtcheck/")
SIMD_DIRS = ("src/kernels/simd/",)
NET_DIRS = ("src/runtime/net/",)
RELAXED_EXEMPT = (
    "src/runtime/counters.hpp",
    "src/runtime/counters.cpp",
    "src/runtime/ws_deque.hpp",
    "src/runtime/sync_hook.hpp",
    # NetStats mirrors counters.*: independent monotone counts and
    # high-water marks, read for diagnostics.  The termination-protocol
    # counters (sent/recvd parcels) are deliberately relaxed too — the
    # protocol's soundness comes from requiring two consecutive probe
    # rounds with identical counter cuts, not from memory ordering
    # (DESIGN.md §5).
    "src/runtime/net/transport.cpp",
    "src/runtime/net/net_executor.cpp",
)
RELAXED_EXEMPT_DIRS = ("src/rtcheck/",)
# The trace wall-anchor (make_trace_clock) and the telemetry layer are the
# sanctioned homes for wall time; trace.cpp still carries an explanatory
# `// time-ok:` at its single read site.
WALLCLOCK_FILES = (
    "src/runtime/trace.cpp",
    "src/runtime/telemetry.cpp",
)
PAYLOAD_STRUCTS = (
    "WireRecord",
    "ExpansionPayload",
    "ParcelHeader",
    "SectionHeader",
    "ContribHeader",
)


def has_escape(lines: list[str], idx: int, tag: str) -> bool:
    """True when `// <tag>:` appears on the line or up to two lines above."""
    for j in range(max(0, idx - 2), idx + 1):
        if f"// {tag}:" in lines[j]:
            return True
    return False


def code_lines(lines: list[str]) -> list[str]:
    """Returns `lines` with comments and literal contents blanked out.

    Strips `//` line comments, `/* ... */` block comments (including
    multi-line ones), and the contents of string / character / raw-string
    literals, leaving empty `""` / `''` placeholders so adjacent tokens do
    not fuse.  C++14 digit separators (`1'000'000`) are preserved.  The
    rule regexes match against this view, so `"std::mutex"` inside a log
    message or a commented-out `memory_order_relaxed` can no longer
    produce false violations; `has_escape` still reads the ORIGINAL lines
    (escape hatches are comments).
    """
    out: list[str] = []
    block = False  # inside /* ... */
    raw_term = ""  # inside a raw string; holds the `)delim"` terminator
    for line in lines:
        kept: list[str] = []
        i, n = 0, len(line)
        while i < n:
            if block:
                j = line.find("*/", i)
                if j < 0:
                    i = n
                else:
                    block = False
                    i = j + 2
                continue
            if raw_term:
                j = line.find(raw_term, i)
                if j < 0:
                    i = n
                else:
                    i = j + len(raw_term)
                    raw_term = ""
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break  # rest of the line is a comment
            if ch == "/" and nxt == "*":
                block = True
                i += 2
                continue
            if ch == "'" and i > 0 and line[i - 1].isalnum() and nxt.isalnum():
                kept.append(ch)  # digit separator, not a char literal
                i += 1
                continue
            if ch == '"' and i > 0 and line[i - 1] == "R" and (
                i < 2 or not (line[i - 2].isalnum() or line[i - 2] == "_")
            ):
                m = re.match(r'"([^()\\ ]{0,16})\(', line[i:])
                if m:
                    raw_term = ")" + m.group(1) + '"'
                    j = line.find(raw_term, i + m.end())
                    kept.append('""')
                    if j < 0:
                        i = n
                    else:
                        i = j + len(raw_term)
                        raw_term = ""
                    continue
            if ch in ('"', "'"):
                j = i + 1
                closed = False
                while j < n:
                    if line[j] == "\\":
                        j += 2
                        continue
                    if line[j] == ch:
                        closed = True
                        break
                    j += 1
                kept.append(ch + ch)
                i = j + 1 if closed else n
                continue
            kept.append(ch)
            i += 1
        out.append("".join(kept))
    return out


def struct_body(lines: list[str], start: int):
    """Yields (index, line) of a struct body starting at its `struct` line."""
    depth = 0
    opened = False
    for i in range(start, len(lines)):
        depth += lines[i].count("{") - lines[i].count("}")
        if "{" in lines[i]:
            opened = True
        if opened:
            yield i, lines[i]
        if opened and depth <= 0:
            return


def lint_lines(rel: str, lines: list[str]) -> list[str]:
    """Runs every rule against one file's lines; returns violation strings.

    Rule regexes match the comment/literal-stripped view from
    `code_lines`; escape-hatch detection reads the original lines.
    Factored out of main() so scripts/test_lint_invariants.py can feed
    synthetic content.
    """
    violations: list[str] = []
    codes = code_lines(lines)

    in_thread_zone = rel.startswith(THREAD_DIRS)
    in_simd_zone = rel.startswith(SIMD_DIRS)
    in_net_zone = rel.startswith(NET_DIRS)
    relaxed_exempt = rel in RELAXED_EXEMPT or rel.startswith(
        RELAXED_EXEMPT_DIRS
    )

    for i, code in enumerate(codes):
        if not in_thread_zone and THREAD_RE.search(code):
            if not has_escape(lines, i, "thread-ok"):
                violations.append(
                    f"{rel}:{i + 1}: threading primitive outside "
                    "src/runtime/ (use the Executor / SyncMutex layer, "
                    "or add '// thread-ok: <reason>')"
                )
        if not relaxed_exempt and RELAXED_RE.search(code):
            if not has_escape(lines, i, "relaxed-ok"):
                violations.append(
                    f"{rel}:{i + 1}: memory_order_relaxed without a "
                    "'// relaxed-ok: <reason>' comment"
                )
        if RANDOM_RE.search(code):
            if not has_escape(lines, i, "rand-ok"):
                violations.append(
                    f"{rel}:{i + 1}: unseeded randomness (rand/"
                    "random_device); use an explicit seed or add "
                    "'// rand-ok: <reason>'"
                )
        if not in_simd_zone and SIMD_RE.search(code):
            if not has_escape(lines, i, "simd-ok"):
                violations.append(
                    f"{rel}:{i + 1}: vector intrinsics outside "
                    "src/kernels/simd/ (call the amtfmm::simd API, or "
                    "add '// simd-ok: <reason>')"
                )
        if not in_net_zone and NET_RE.search(code):
            if not has_escape(lines, i, "net-ok"):
                violations.append(
                    f"{rel}:{i + 1}: raw socket usage outside "
                    "src/runtime/net/ (go through NetTransport, or "
                    "add '// net-ok: <reason>')"
                )
        if rel not in WALLCLOCK_FILES and WALLCLOCK_RE.search(code):
            if not has_escape(lines, i, "time-ok"):
                violations.append(
                    f"{rel}:{i + 1}: wall-clock time source outside "
                    "the trace/telemetry layer (use the steady clock, "
                    "or add '// time-ok: <reason>')"
                )

    for i, code in enumerate(codes):
        m = re.match(r"\s*struct\s+(\w+)\b(?!.*;\s*$)", code)
        if not m or m.group(1) not in PAYLOAD_STRUCTS:
            continue
        for j, body_line in struct_body(codes, i):
            if "(" in body_line or ")" in body_line:
                continue  # member functions may take/return pointers
            if POINTER_MEMBER_RE.search(body_line):
                violations.append(
                    f"{rel}:{j + 1}: raw pointer member in parcel "
                    f"payload struct {m.group(1)} (addresses do not "
                    "survive the wire)"
                )

    return violations


def main() -> int:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = path.relative_to(REPO).as_posix()
        violations.extend(lint_lines(rel, path.read_text().splitlines()))

    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)")
        for v in violations:
            print("  " + v)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
