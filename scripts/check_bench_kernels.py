#!/usr/bin/env python3
"""Gate on BENCH_kernels.json from `micro_operators --kernels-json`.

Checks, in order:

1. Cross-ISA checksum parity: within one file, every ISA row of an op must
   match the op's scalar row to 1e-12 relative — a wide kernel that drifts
   from the scalar reference is a correctness bug, not a perf result.
2. AVX2 P2P speedup: when AVX2 rows are present, every P2P_* op must show
   speedup_vs_scalar >= the floor (default 2.0).  M2L rows are exempt (the
   rotation inner loops are short; their win is modest by design).
3. --ref FILE: rows with the same name in both files must agree to 1e-12
   relative.  CI uses this to diff the scalar rows of the full sweep
   against a run forced with AMTFMM_FORCE_ISA=scalar — a mismatch means
   the env override and the runtime dispatcher disagree about what
   "scalar" executes.

Exits non-zero with one line per violation.
"""

import argparse
import json
import sys

CHECKSUM_RTOL = 1e-12


def load(path):
    with open(path) as f:
        rows = json.load(f)
    out = {}
    for row in rows:
        op, _, isa = row["name"].rpartition("/")
        if not op:
            raise SystemExit(f"{path}: row name {row['name']!r} is not op/isa")
        out[(op, isa)] = row
    return out


def rel_close(a, b, rtol=CHECKSUM_RTOL):
    return abs(a - b) <= rtol * max(1.0, abs(a), abs(b))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", help="BENCH_kernels.json to check")
    ap.add_argument("--ref", help="second sweep file to diff checksums against")
    ap.add_argument("--min-p2p-avx2-speedup", type=float, default=2.0)
    args = ap.parse_args()

    rows = load(args.bench_json)
    errors = []

    ops = sorted({op for op, _ in rows})
    for op in ops:
        scalar = rows.get((op, "scalar"))
        if scalar is None:
            continue  # forced non-scalar sweep: nothing to compare within
        for (o, isa), row in rows.items():
            if o != op or isa == "scalar":
                continue
            if not rel_close(row["checksum"], scalar["checksum"]):
                errors.append(
                    f"{op}: {isa} checksum {row['checksum']!r} != scalar "
                    f"{scalar['checksum']!r} (rtol {CHECKSUM_RTOL})"
                )

    for (op, isa), row in rows.items():
        if isa == "avx2" and op.startswith("P2P"):
            s = row["speedup_vs_scalar"]
            if s < args.min_p2p_avx2_speedup:
                errors.append(
                    f"{op}: avx2 speedup {s:.2f}x below the "
                    f"{args.min_p2p_avx2_speedup}x floor"
                )

    if args.ref:
        ref = load(args.ref)
        shared = sorted(set(rows) & set(ref))
        if not shared:
            errors.append(f"--ref {args.ref}: no rows in common")
        for key in shared:
            a, b = rows[key]["checksum"], ref[key]["checksum"]
            if not rel_close(a, b):
                errors.append(
                    f"{key[0]}/{key[1]}: checksum {a!r} != ref {b!r}"
                )

    if errors:
        for e in errors:
            print(f"check_bench_kernels: {e}", file=sys.stderr)
        return 1
    print(
        f"check_bench_kernels: {len(rows)} rows OK "
        f"({len(ops)} ops; checksum rtol {CHECKSUM_RTOL})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
