#!/usr/bin/env python3
"""End-to-end gate for the live telemetry channel and post-mortem path.

Drives real binaries (no mocks) through four scenarios:

  1. live metrics, 2-process world: amtfmm_launch runs a 2-rank
     amtfmm_serve with --telemetry; the rank-0 aggregator's snapshot must
     hold samples from EVERY rank, and `amtfmm_top --once --prom` scraped
     from it must satisfy the Prometheus text-exposition grammar and
     expose the expected metric families;
  2. cross-rank trace merge: a 2-process amtfmm_loopback writes per-rank
     traces; `trace_report --merge` must exit 0 with no negative
     cross-rank flows and sub-millisecond clock uncertainty;
  3. forced watchdog dump: amtfmm_serve with an injected stall and a
     shorter watchdog timeout must leave a loadable flight dump whose
     reason names the watchdog;
  4. (in-process) telemetry-on bench parity is gated separately by
     check_bench_serve.py; this script only asserts the channel works.

Usage: scripts/check_telemetry.py [--build-dir build] [--n 2000]
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys
import tempfile

# Prometheus text exposition: `# TYPE name gauge` lines and
# `name{rank="N"} value` samples, nothing else.
TYPE_RE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* gauge$")
SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*\{rank="\d+"\} '
    r"[-+]?(\d+\.?\d*([eE][-+]?\d+)?|inf|nan)$"
)
# Metric families every serving rank must expose.
REQUIRED_METRICS = (
    "amtfmm_sched_tasks_run_rate",
    "amtfmm_serve_epoch_us_window_count",
    "amtfmm_serve_epoch_us_p50",
    "amtfmm_serve_epoch_us_p99",
    "amtfmm_gas_objects_hw",
)


def run(cmd, **kw):
    print("+ " + " ".join(str(c) for c in cmd), flush=True)
    return subprocess.run([str(c) for c in cmd], **kw)


def check_live_metrics(tools, args, violations):
    with tempfile.TemporaryDirectory(prefix="amtfmm_tel.") as tel:
        r = run([
            tools / "amtfmm_launch", "--np=2", "--transport=unix",
            f"--dir={tel}", "--timeout=300", "--",
            tools / "amtfmm_serve", f"--n={args.n}", "--epochs=6",
            "--cores=2", f"--telemetry={tel}", "--telemetry-interval=0.1",
        ])
        if r.returncode != 0:
            violations.append(f"2-process telemetry serve exited {r.returncode}")
            return

        snap = json.loads((pathlib.Path(tel) / "telemetry.json").read_text())
        if snap.get("world") != 2:
            violations.append(f"snapshot world {snap.get('world')} != 2")
        for rank_entry in snap.get("ranks", []):
            if not rank_entry.get("samples"):
                violations.append(
                    f"rank {rank_entry.get('rank')}: no telemetry samples"
                    " reached the aggregator")
        if snap.get("rejected", 0) != 0:
            violations.append(f"{snap['rejected']} samples rejected")

        r = run([tools / "amtfmm_top", f"--dir={tel}", "--once", "--prom"],
                capture_output=True, text=True)
        if r.returncode != 0:
            violations.append(f"amtfmm_top --once --prom exited {r.returncode}")
            return
        seen_ranks, seen_names = set(), set()
        for line in r.stdout.splitlines():
            if not line:
                continue
            if line.startswith("#"):
                if not TYPE_RE.match(line):
                    violations.append(f"bad exposition comment: {line!r}")
                continue
            if not SAMPLE_RE.match(line):
                violations.append(f"bad exposition sample: {line!r}")
                continue
            seen_names.add(line.split("{", 1)[0])
            seen_ranks.add(re.search(r'rank="(\d+)"', line).group(1))
        if seen_ranks != {"0", "1"}:
            violations.append(f"exposition covers ranks {sorted(seen_ranks)},"
                              " want 0 and 1")
        for name in REQUIRED_METRICS:
            if name not in seen_names:
                violations.append(f"metric family {name} missing from"
                                  " exposition")


def check_trace_merge(tools, args, violations):
    with tempfile.TemporaryDirectory(prefix="amtfmm_mrg.") as d:
        d = pathlib.Path(d)
        r = run([
            tools / "amtfmm_launch", "--np=2", "--transport=unix",
            "--timeout=300", "--",
            tools / "amtfmm_loopback", f"--n={args.n}", "--cores=2",
            f"--trace-out={d / 'trace'}",
        ])
        if r.returncode != 0:
            violations.append(f"2-process traced loopback exited {r.returncode}")
            return
        r = run([
            tools / "trace_report", f"--merge={d / 'merged.json'}",
            d / "trace.0", d / "trace.1",
        ], capture_output=True, text=True)
        if r.returncode != 0:
            violations.append(
                f"trace_report --merge exited {r.returncode}: {r.stderr}")
            return
        report = json.loads(r.stdout)
        if report.get("negative_flows", -1) != 0:
            violations.append(
                f"{report.get('negative_flows')} negative cross-rank flows"
                " after clock correction")
        if report.get("max_uncertainty_s", 1.0) >= 1e-3:
            violations.append(
                f"clock uncertainty {report.get('max_uncertainty_s')}s not"
                " sub-millisecond")
        cp = report.get("cross_critical_path_s", 0.0)
        for rank in report.get("ranks", []):
            if cp < rank.get("critical_path_s", 0.0):
                violations.append(
                    f"cross-rank critical path {cp} below rank"
                    f" {rank.get('rank')}'s {rank.get('critical_path_s')}")
        # The merged file itself must be valid JSON (Perfetto-loadable).
        json.loads((d / "merged.json").read_text())


def check_watchdog_dump(tools, args, violations):
    with tempfile.TemporaryDirectory(prefix="amtfmm_wd.") as d:
        d = pathlib.Path(d)
        r = run([
            tools / "amtfmm_serve", f"--n={args.n}", "--epochs=3",
            "--localities=2", "--cores=2", f"--telemetry={d}",
            "--watchdog=0.5", "--stall=2.0",
        ])
        if r.returncode != 0:
            violations.append(f"stalled serve exited {r.returncode}")
            return
        dump_path = d / "flight.0.json"
        if not dump_path.exists():
            violations.append("watchdog fired but left no flight dump")
            return
        dump = json.loads(dump_path.read_text())
        meta = dump.get("amtfmm_flight", {})
        if "watchdog" not in meta.get("reason", ""):
            violations.append(
                f"flight dump reason {meta.get('reason')!r} does not name"
                " the watchdog")
        if not dump.get("traceEvents"):
            violations.append("flight dump holds no events")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--n", type=int, default=2000)
    args = ap.parse_args()
    tools = pathlib.Path(args.build_dir).resolve() / "tools"

    violations = []
    check_live_metrics(tools, args, violations)
    check_trace_merge(tools, args, violations)
    check_watchdog_dump(tools, args, violations)

    if violations:
        print(f"check_telemetry: {len(violations)} violation(s)")
        for v in violations:
            print("  " + v)
        return 1
    print("check_telemetry: live metrics, trace merge, and watchdog dump OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
