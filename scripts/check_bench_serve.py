#!/usr/bin/env python3
"""Gate for BENCH_serve.json (amtfmm_serve --json).

Merges one or more amtfmm_serve row files (in-process and socket-world
runs) into a single BENCH_serve.json and gates the resident-pipeline
contract on every row:

  * steady state is allocation-free: gas_allocs_steady == 0 — epoch 2+
    re-arms the resident GAS/LCO arena, it never grows it;
  * the epoch-2 re-arm is cheap: reset_s / epoch1_s stays under 5% (the
    measured ratio is ~0.01%; the gate only catches an accidental
    rebuild-per-epoch regression);
  * repeat epochs and a fresh one-shot build agree with epoch 1 at the
    1e-12 relative floor;
  * steady-state throughput is real (evals_per_s > 0) and the latency
    tail is sane: 0 < p50 <= p99 <= tail_factor * p50 (generous — CI
    machines are shared).

Expected rows are serve_inproc and serve_net; --require lists which of
them must be present (default: both).
"""

import argparse
import json
import sys

EXPECTED_FIELDS = (
    "n", "world", "epochs", "epoch1_s", "reset_ratio", "evals_per_s",
    "p50_s", "p99_s", "gas_allocs_steady", "repeat_rel_err",
    "fresh_rel_err", "wire_bytes",
)


def check_row(row, args, violations):
    name = row.get("name", "?")
    for f in EXPECTED_FIELDS:
        if f not in row:
            violations.append(f"{name}: missing field {f}")
            return

    if row["gas_allocs_steady"] != 0:
        violations.append(
            f"{name}: {row['gas_allocs_steady']} GAS allocations in steady"
            " state (resident arena must re-arm, not grow)")
    if row["reset_ratio"] > args.max_reset_ratio:
        violations.append(
            f"{name}: reset_ratio {row['reset_ratio']:.4f} above"
            f" {args.max_reset_ratio:.2f} (epoch re-arm should be a tiny"
            " fraction of the first build)")
    for key in ("repeat_rel_err", "fresh_rel_err"):
        if row[key] > args.max_rel_err:
            violations.append(
                f"{name}: {key} {row[key]:.3e} above {args.max_rel_err:.0e}")
    if row["evals_per_s"] <= 0.0:
        violations.append(f"{name}: no steady-state throughput")
    p50, p99 = row["p50_s"], row["p99_s"]
    if not 0.0 < p50 <= p99:
        violations.append(f"{name}: bad latency order p50={p50} p99={p99}")
    elif p99 > args.tail_factor * p50:
        violations.append(
            f"{name}: p99 {p99 * 1e3:.1f}ms more than {args.tail_factor:.0f}x"
            f" p50 {p50 * 1e3:.1f}ms")
    if row["wire_bytes"] <= 0 and row["world"] > 1:
        violations.append(f"{name}: multi-rank run moved no wire bytes")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("row_files", nargs="+",
                    help="amtfmm_serve --json outputs to merge and gate")
    ap.add_argument("--out", help="write the merged BENCH_serve.json here")
    ap.add_argument("--require", default="serve_inproc,serve_net",
                    help="comma-separated row names that must be present")
    ap.add_argument("--max-reset-ratio", type=float, default=0.05,
                    help="ceiling for reset_s / epoch1_s (default 0.05)")
    ap.add_argument("--max-rel-err", type=float, default=1e-12,
                    help="ceiling for repeat/fresh parity (default 1e-12)")
    ap.add_argument("--tail-factor", type=float, default=50.0,
                    help="ceiling for p99 as a multiple of p50 (default 50)")
    args = ap.parse_args()

    rows = []
    for path in args.row_files:
        with open(path, encoding="utf-8") as f:
            rows.extend(json.load(f))

    violations = []
    names = [r.get("name") for r in rows]
    for want in filter(None, args.require.split(",")):
        if want not in names:
            violations.append(f"missing required row: {want}")
    for row in rows:
        check_row(row, args, violations)

    if args.out and not violations:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(rows, f, indent=1)
            f.write("\n")

    if violations:
        for v in violations:
            print(f"check_bench_serve: {v}", file=sys.stderr)
        return 1
    print(f"check_bench_serve: OK ({', '.join(map(str, names))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
