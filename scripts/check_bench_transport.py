#!/usr/bin/env python3
"""Gate for BENCH_transport.json (micro_runtime --transport-json).

Checks, per transport kind (unix, tcp):
  * all four rows are present with the expected fields,
  * the one-way message rate clears a conservative floor (CI machines are
    slow and shared, so the floor is far below the measured ~300k/s),
  * payload-byte parity is exact: every byte posted by rank 0 was decoded
    by rank 1 (the wire_bytes == bytes_sent invariant, end to end).

Frame counts are NOT required to match: msgs_sent counts every frame
written including the kGoodbye control frame from stop(), while the
receive side counts decoded batches only.
"""

import argparse
import json
import sys

KINDS = ("unix", "tcp")
ROWS = ("transport_roundtrip", "transport_msg_rate", "transport_bandwidth",
        "transport_parity")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_path", help="BENCH_transport.json to check")
    ap.add_argument("--min-msgs-per-s", type=float, default=3000.0,
                    help="floor for the one-way message rate (default 3000)")
    args = ap.parse_args()

    with open(args.json_path, encoding="utf-8") as f:
        entries = {e["name"]: e for e in json.load(f)}

    violations = []
    for kind in KINDS:
        for row in ROWS:
            name = f"{row}/{kind}"
            if name not in entries:
                violations.append(f"missing row: {name}")
        if violations:
            continue

        rate = entries[f"transport_msg_rate/{kind}"]
        if rate.get("msgs_per_s", 0.0) < args.min_msgs_per_s:
            violations.append(
                f"transport_msg_rate/{kind}: {rate.get('msgs_per_s', 0.0):.0f}"
                f" msgs/s below floor {args.min_msgs_per_s:.0f}")

        rtt = entries[f"transport_roundtrip/{kind}"]
        if rtt.get("ns_per_op", 0.0) <= 0.0:
            violations.append(f"transport_roundtrip/{kind}: non-positive time")

        bw = entries[f"transport_bandwidth/{kind}"]
        if bw.get("bytes_per_s", 0.0) <= 0.0:
            violations.append(f"transport_bandwidth/{kind}: no bandwidth")

        par = entries[f"transport_parity/{kind}"]
        posted = par.get("posted_payload_bytes")
        recvd = par.get("recvd_payload_bytes")
        if posted is None or recvd is None:
            violations.append(f"transport_parity/{kind}: missing byte counts")
        elif posted != recvd or posted <= 0:
            violations.append(
                f"transport_parity/{kind}: posted {posted} != received"
                f" {recvd} payload bytes")

    if violations:
        for v in violations:
            print(f"check_bench_transport: {v}", file=sys.stderr)
        return 1
    print(f"check_bench_transport: OK ({len(entries)} rows, "
          f"{', '.join(KINDS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
