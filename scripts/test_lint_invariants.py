#!/usr/bin/env python3
"""Self-test for scripts/lint_invariants.py (run by scripts/check.sh).

Pins the behaviors the tree-wide run cannot exercise: that rule regexes
no longer match inside string literals or block comments, that escape
hatches still work (they are comments, so they must be read from the
ORIGINAL lines, not the stripped view), and that each rule both fires on
a seeded violation and stays quiet on the compliant spelling.  Plain
asserts, no test-framework dependency; exit 0 on success.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "lint_invariants", Path(__file__).resolve().parent / "lint_invariants.py"
)
lint = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(lint)

OUTSIDE = "src/core/example.cpp"  # not in any confinement zone


def run(text: str, rel: str = OUTSIDE) -> list[str]:
    return lint.lint_lines(rel, text.splitlines())


def checks_of(violations: list[str]) -> list[str]:
    # The rule is identifiable from the message tail; keep it coarse.
    return violations


def main() -> int:
    # --- code_lines: stripping mechanics ------------------------------
    cl = lint.code_lines

    assert cl(['x = "std::mutex in a string";'])[0] == 'x = "";'
    assert cl(["int a = 1; // std::mutex in a comment"])[0] == "int a = 1; "
    assert cl(["/* std::mutex", "still comment */ int b;"]) == [
        "",
        " int b;",
    ]
    assert cl(["/* one line */ std::mutex m;"])[0] == " std::mutex m;"
    # Digit separators are not char literals; the line keeps scanning.
    assert cl(["int n = 1'000'000; std::mutex m;"])[0] == (
        "int n = 1'000'000; std::mutex m;"
    )
    # Char literal with an escaped quote does not derail the scanner.
    assert cl(["char c = '\\''; std::mutex m;"])[0] == "char c = ''; std::mutex m;"
    # Raw strings, including multi-line ones, are blanked (the R prefix
    # survives as a harmless `R""` placeholder).
    assert cl(['auto s = R"(memory_order_relaxed)"; int x;'])[0] == (
        'auto s = R""; int x;'
    )
    assert cl(['auto s = R"(rand(', 'gettimeofday)"; int y;']) == [
        'auto s = R""',
        "; int y;",
    ]

    # --- rule firing vs literals/comments -----------------------------
    assert run('void f() { log("uses std::mutex"); }') == []
    assert run("/* memory_order_relaxed */ int x;") == []
    assert run("// ::socket(2, 1, 0)\nint y;") == []
    assert len(run("std::mutex m;")) == 1
    assert "threading primitive" in run("std::mutex m;")[0]

    # Zones still exempt.
    assert run("std::mutex m;", "src/runtime/foo.cpp") == []

    # --- escape hatches read the original lines -----------------------
    assert run("// thread-ok: documented exception\nstd::mutex m;") == []
    assert run("// relaxed-ok: why\n\nx.load(std::memory_order_relaxed);") == []
    # Three lines above is out of the escape window.
    assert len(run("// thread-ok: too far\n\n\nstd::mutex m;")) == 1

    # --- one seeded violation per remaining rule ----------------------
    assert "memory_order_relaxed" in run(
        "x.load(std::memory_order_relaxed);"
    )[0]
    assert "unseeded randomness" in run("int r = rand();")[0]
    assert "vector intrinsics" in run("__m256d v;")[0]
    assert "raw socket" in run("int fd = ::socket(2, 1, 0);")[0]
    assert "wall-clock" in run("auto t = system_clock::now();")[0]
    assert run("auto t = system_clock::now();", "src/runtime/trace.cpp") == []

    # --- payload struct pointer members -------------------------------
    bad = "struct WireRecord {\n  double q;\n  int* owner;\n};"
    v = run(bad)
    assert len(v) == 1 and "raw pointer member" in v[0], v
    # A pointer in a comment inside the struct no longer trips the rule.
    ok = "struct WireRecord {\n  double q;  // was: int* owner\n};"
    assert run(ok) == []
    # Non-payload structs may hold pointers.
    assert run("struct Cursor {\n  int* p;\n};") == []

    print("test_lint_invariants: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
