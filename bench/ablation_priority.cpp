// Ablation for the paper's section VI estimate: "If this could be addressed
// by the introduction of priorities for the tasks, even so simple a system
// as a binary choice between low and high priority, this underutilization
// could largely be eliminated ... The effect is to increase the scaling
// efficiency by 10% or more."
//
// We implement exactly that binary priority (upward-pass S->M / M->M / M->I
// tasks high, everything else low) and compare against the plain
// work-stealing schedule on the same DAG, plus a FIFO baseline.

#include "../bench/common.hpp"

int main(int argc, char** argv) {
  using namespace amtfmm;
  using namespace amtfmm::bench;
  Cli cli("ablation_priority: section VI priority-hint estimate");
  cli.add_flag("n", static_cast<std::int64_t>(500000), "points per ensemble");
  cli.add_flag("threshold", static_cast<std::int64_t>(60), "refinement threshold");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.i64("n"));
  Ensembles e = make_ensembles(Distribution::kCube, n, 11);
  EvalConfig cfg;
  cfg.threshold = static_cast<int>(cli.i64("threshold"));
  Evaluator eval(make_kernel("laplace"), cfg);

  print_header("Priority ablation: scaling efficiency with and without the "
               "binary priority extension");
  std::printf("%zu points cube Laplace; efficiency relative to the same "
              "scheduler at 32 cores\n\n", n);
  std::printf("%8s %16s %16s %16s %14s\n", "cores", "t work-steal [s]",
              "t priority [s]", "t fifo [s]", "eff gain");

  double base_ws = -1, base_prio = -1, base_fifo = -1;
  for (int cores = 32; cores <= 2048; cores *= 2) {
    SimConfig sim;
    sim.localities = cores / 32;
    sim.cores_per_locality = 32;
    sim.cost = CostModel::paper("laplace");

    sim.policy = SchedPolicy::kWorkStealing;
    sim.split_priority = false;
    const double t_ws = eval.simulate(e.sources, e.targets, sim).virtual_time;

    sim.split_priority = true;  // engine splits tasks; scheduler honours them
    const double t_prio = eval.simulate(e.sources, e.targets, sim).virtual_time;

    sim.split_priority = false;
    sim.policy = SchedPolicy::kFifo;
    const double t_fifo = eval.simulate(e.sources, e.targets, sim).virtual_time;

    if (base_ws < 0) {
      base_ws = t_ws;
      base_prio = t_prio;
      base_fifo = t_fifo;
    }
    const double eff_ws = base_ws / t_ws / (cores / 32.0);
    const double eff_prio = base_prio / t_prio / (cores / 32.0);
    std::printf("%8d %16.4f %16.4f %16.4f %12.1f%%\n", cores, t_ws, t_prio,
                t_fifo, 100.0 * (eff_prio - eff_ws));
  }
  std::printf("\npaper estimate: priorities recover >= 10%% scaling "
              "efficiency at high core counts.\n");
  return 0;
}
