// Micro-benchmarks of the eleven DAG operators for both kernels — the
// native equivalent of the paper's Table II t_avg column, and the input to
// the "host" cost profile of the scaling simulation.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "kernels/kernel.hpp"
#include "support/rng.hpp"

namespace {

using namespace amtfmm;

constexpr int kLevel = 3;
constexpr double kW = 1.0 / 8;

struct Fixture {
  std::unique_ptr<Kernel> kernel;
  std::vector<Vec3> spts, tpts;
  std::vector<double> q;
  Vec3 cs{0.5625, 0.5625, 0.5625};
  Vec3 ct;
  CoeffVec m, l, x, xin;

  explicit Fixture(const std::string& name, int pts = 60) {
    kernel = make_kernel(name, 2.0);
    kernel->setup(1.0, 8, 3);
    ct = cs + Vec3{2 * kW, 0, kW};
    Rng rng(99);
    for (int i = 0; i < pts; ++i) {
      spts.push_back(cs + Vec3{rng.uniform(-.5, .5), rng.uniform(-.5, .5),
                               rng.uniform(-.5, .5)} * kW);
      tpts.push_back(ct + Vec3{rng.uniform(-.5, .5), rng.uniform(-.5, .5),
                               rng.uniform(-.5, .5)} * kW);
      q.push_back(rng.uniform(0.1, 1.0));
    }
    kernel->s2m(spts, q, cs, kLevel, m);
    l.assign(kernel->l_count(kLevel), cdouble{});
    if (kernel->supports_merge_and_shift()) {
      kernel->m2i(m, kLevel, Axis::kPlusZ, x);
      xin.assign(kernel->x_count(kLevel), cdouble{});
      kernel->i2i_acc(x, Axis::kPlusZ, ct - cs, kLevel, xin);
    }
  }
};

Fixture& fx(const std::string& name) {
  static Fixture laplace("laplace");
  static Fixture yukawa("yukawa");
  return name == "laplace" ? laplace : yukawa;
}

void BM_S2M(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out;
  for (auto _ : state) {
    f.kernel->s2m(f.spts, f.q, f.cs, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_M2M(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->m_count(kLevel - 1), cdouble{});
  const Vec3 cp = f.cs + Vec3{kW / 2, kW / 2, kW / 2};
  for (auto _ : state) {
    f.kernel->m2m_acc(f.m, f.cs, cp, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_M2L(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->l_count(kLevel), cdouble{});
  for (auto _ : state) {
    f.kernel->m2l_acc(f.m, f.cs, f.ct, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
// The O(p^4) reference path, kept for the rotation-vs-naive comparison
// (Table II note in EXPERIMENTS.md).  The fixture kernel is shared, so the
// mode is flipped around the timing loop and restored afterwards.
void BM_M2L_naive(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->l_count(kLevel), cdouble{});
  const M2LMode prev = f.kernel->m2l_mode();
  f.kernel->set_m2l_mode(M2LMode::kNaive);
  for (auto _ : state) {
    f.kernel->m2l_acc(f.m, f.cs, f.ct, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
  f.kernel->set_m2l_mode(prev);
}
void BM_M2T(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  for (auto _ : state) {
    double acc = 0;
    for (const auto& t : f.tpts) acc += f.kernel->m2t(f.m, f.cs, kLevel, t);
    benchmark::DoNotOptimize(acc);
  }
}
void BM_S2L(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->l_count(kLevel), cdouble{});
  for (auto _ : state) {
    f.kernel->s2l_acc(f.spts, f.q, f.ct, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_L2L(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->l_count(kLevel + 1), cdouble{});
  const Vec3 cc = f.ct + Vec3{kW / 4, kW / 4, kW / 4};
  for (auto _ : state) {
    f.kernel->l2l_acc(f.l, f.ct, cc, kLevel + 1, out);
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_L2T(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  for (auto _ : state) {
    double acc = 0;
    for (const auto& t : f.tpts) acc += f.kernel->l2t(f.l, f.ct, kLevel, t);
    benchmark::DoNotOptimize(acc);
  }
}
void BM_S2T(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  for (auto _ : state) {
    double acc = 0;
    for (const auto& t : f.tpts)
      for (std::size_t i = 0; i < f.spts.size(); ++i)
        acc += f.q[i] * f.kernel->direct(t, f.spts[i]);
    benchmark::DoNotOptimize(acc);
  }
}
void BM_M2I(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out;
  for (auto _ : state) {
    for (Axis d : kAllAxes) {
      f.kernel->m2i(f.m, kLevel, d, out);
      benchmark::DoNotOptimize(out.data());
    }
  }
}
void BM_I2I(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->x_count(kLevel), cdouble{});
  for (auto _ : state) {
    f.kernel->i2i_acc(f.x, Axis::kPlusZ, f.ct - f.cs, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_I2L(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->l_count(kLevel), cdouble{});
  for (auto _ : state) {
    f.kernel->i2l_acc(f.xin, Axis::kPlusZ, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}

#define REGISTER(op)                                              \
  BENCHMARK_CAPTURE(BM_##op, laplace, std::string("laplace"));    \
  BENCHMARK_CAPTURE(BM_##op, yukawa, std::string("yukawa"))

REGISTER(S2M);
REGISTER(M2M);
REGISTER(M2L);
REGISTER(M2L_naive);
REGISTER(M2T);
REGISTER(S2L);
REGISTER(L2L);
REGISTER(L2T);
REGISTER(S2T);
REGISTER(M2I);
REGISTER(I2I);
REGISTER(I2L);

// Console reporter that also collects (name, ns/op) so a machine-readable
// summary can be written next to the usual console table.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<bench::BenchEntry> entries;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        // p = 3 * digits; the fixtures run setup(1.0, 8, 3).
        entries.push_back({run.benchmark_name(), run.GetAdjustedRealTime(),
                           {{"p", 9.0}}});
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

// BENCHMARK_MAIN() plus a `--json <path>` flag: when given, a JSON array of
// {name, p, ns_per_op} records is written to <path> after the run.  The flag
// is stripped before the remaining argv is handed to the benchmark library.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered = static_cast<int>(args.size());
  benchmark::Initialize(&filtered, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered, args.data())) return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (!json_path.empty() &&
      !bench::write_bench_json(json_path, reporter.entries)) {
    std::fprintf(stderr, "micro_operators: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
