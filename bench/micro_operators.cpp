// Micro-benchmarks of the eleven DAG operators for both kernels — the
// native equivalent of the paper's Table II t_avg column, and the input to
// the "host" cost profile of the scaling simulation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "kernels/kernel.hpp"
#include "kernels/simd/simd.hpp"
#include "support/rng.hpp"

namespace {

using namespace amtfmm;

constexpr int kLevel = 3;
constexpr double kW = 1.0 / 8;

struct Fixture {
  std::unique_ptr<Kernel> kernel;
  std::vector<Vec3> spts, tpts;
  std::vector<double> q;
  Vec3 cs{0.5625, 0.5625, 0.5625};
  Vec3 ct;
  CoeffVec m, l, x, xin;

  explicit Fixture(const std::string& name, int pts = 60) {
    kernel = make_kernel(name, 2.0);
    kernel->setup(1.0, 8, 3);
    ct = cs + Vec3{2 * kW, 0, kW};
    Rng rng(99);
    for (int i = 0; i < pts; ++i) {
      spts.push_back(cs + Vec3{rng.uniform(-.5, .5), rng.uniform(-.5, .5),
                               rng.uniform(-.5, .5)} * kW);
      tpts.push_back(ct + Vec3{rng.uniform(-.5, .5), rng.uniform(-.5, .5),
                               rng.uniform(-.5, .5)} * kW);
      q.push_back(rng.uniform(0.1, 1.0));
    }
    kernel->s2m(spts, q, cs, kLevel, m);
    l.assign(kernel->l_count(kLevel), cdouble{});
    if (kernel->supports_merge_and_shift()) {
      kernel->m2i(m, kLevel, Axis::kPlusZ, x);
      xin.assign(kernel->x_count(kLevel), cdouble{});
      kernel->i2i_acc(x, Axis::kPlusZ, ct - cs, kLevel, xin);
    }
  }
};

Fixture& fx(const std::string& name) {
  static Fixture laplace("laplace");
  static Fixture yukawa("yukawa");
  return name == "laplace" ? laplace : yukawa;
}

void BM_S2M(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out;
  for (auto _ : state) {
    f.kernel->s2m(f.spts, f.q, f.cs, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_M2M(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->m_count(kLevel - 1), cdouble{});
  const Vec3 cp = f.cs + Vec3{kW / 2, kW / 2, kW / 2};
  for (auto _ : state) {
    f.kernel->m2m_acc(f.m, f.cs, cp, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_M2L(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->l_count(kLevel), cdouble{});
  for (auto _ : state) {
    f.kernel->m2l_acc(f.m, f.cs, f.ct, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
// The O(p^4) reference path, kept for the rotation-vs-naive comparison
// (Table II note in EXPERIMENTS.md).  The fixture kernel is shared, so the
// mode is flipped around the timing loop and restored afterwards.
void BM_M2L_naive(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->l_count(kLevel), cdouble{});
  const M2LMode prev = f.kernel->m2l_mode();
  f.kernel->set_m2l_mode(M2LMode::kNaive);
  for (auto _ : state) {
    f.kernel->m2l_acc(f.m, f.cs, f.ct, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
  f.kernel->set_m2l_mode(prev);
}
void BM_M2T(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  for (auto _ : state) {
    double acc = 0;
    for (const auto& t : f.tpts) acc += f.kernel->m2t(f.m, f.cs, kLevel, t);
    benchmark::DoNotOptimize(acc);
  }
}
void BM_S2L(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->l_count(kLevel), cdouble{});
  for (auto _ : state) {
    f.kernel->s2l_acc(f.spts, f.q, f.ct, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_L2L(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->l_count(kLevel + 1), cdouble{});
  const Vec3 cc = f.ct + Vec3{kW / 4, kW / 4, kW / 4};
  for (auto _ : state) {
    f.kernel->l2l_acc(f.l, f.ct, cc, kLevel + 1, out);
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_L2T(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  for (auto _ : state) {
    double acc = 0;
    for (const auto& t : f.tpts) acc += f.kernel->l2t(f.l, f.ct, kLevel, t);
    benchmark::DoNotOptimize(acc);
  }
}
void BM_S2T(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  for (auto _ : state) {
    double acc = 0;
    for (const auto& t : f.tpts)
      for (std::size_t i = 0; i < f.spts.size(); ++i)
        acc += f.q[i] * f.kernel->direct(t, f.spts[i]);
    benchmark::DoNotOptimize(acc);
  }
}
void BM_M2I(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out;
  for (auto _ : state) {
    for (Axis d : kAllAxes) {
      f.kernel->m2i(f.m, kLevel, d, out);
      benchmark::DoNotOptimize(out.data());
    }
  }
}
void BM_I2I(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->x_count(kLevel), cdouble{});
  for (auto _ : state) {
    f.kernel->i2i_acc(f.x, Axis::kPlusZ, f.ct - f.cs, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
void BM_I2L(benchmark::State& state, const std::string& k) {
  auto& f = fx(k);
  CoeffVec out(f.kernel->l_count(kLevel), cdouble{});
  for (auto _ : state) {
    f.kernel->i2l_acc(f.xin, Axis::kPlusZ, kLevel, out);
    benchmark::DoNotOptimize(out.data());
  }
}

#define REGISTER(op)                                              \
  BENCHMARK_CAPTURE(BM_##op, laplace, std::string("laplace"));    \
  BENCHMARK_CAPTURE(BM_##op, yukawa, std::string("yukawa"))

REGISTER(S2M);
REGISTER(M2M);
REGISTER(M2L);
REGISTER(M2L_naive);
REGISTER(M2T);
REGISTER(S2L);
REGISTER(L2L);
REGISTER(L2T);
REGISTER(S2T);
REGISTER(M2I);
REGISTER(I2I);
REGISTER(I2L);

// ---------------------------------------------------------------------------
// Per-ISA sweep of the SIMD batch kernels (--kernels-json): times each op
// under every runner-supported ISA, records ns/interaction, speedup over the
// scalar reference, and a result checksum (the cross-ISA parity gate for
// scripts/check_bench_kernels.py).

/// Best-of-three ns per call, each sample auto-scaled to >= ~20 ms.
template <typename F>
double best_ns_per_call(F&& run) {
  using clock = std::chrono::steady_clock;
  run();  // warm-up (pools, tables, frequency)
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    long iters = 1;
    for (;;) {
      const auto t0 = clock::now();
      for (long i = 0; i < iters; ++i) run();
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                               t0)
              .count());
      if (ns > 2e7 || iters >= (1L << 22)) {
        const double per_call = ns / static_cast<double>(iters);
        if (best == 0.0 || per_call < best) best = per_call;
        break;
      }
      iters *= 4;
    }
  }
  return best;
}

/// SoA batch for the P2P sweep rows.
struct SweepBatch {
  std::vector<double> tx, ty, tz, sx, sy, sz, sq, phi, ax, ay, az;
  std::size_t nt, ns;

  SweepBatch(std::size_t nt_, std::size_t ns_) : nt(nt_), ns(ns_) {
    Rng rng(2024);
    auto fill = [&](std::vector<double>& v, std::size_t n) {
      v.resize(n);
      for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    };
    fill(tx, nt);
    fill(ty, nt);
    fill(tz, nt);
    fill(sx, ns);
    fill(sy, ns);
    fill(sz, ns);
    fill(sq, ns);
    phi.resize(nt);
    ax.resize(nt);
    ay.resize(nt);
    az.resize(nt);
  }

  simd::P2PBatch view(bool grad) {
    simd::P2PBatch b;
    b.tx = tx.data();
    b.ty = ty.data();
    b.tz = tz.data();
    b.nt = nt;
    b.sx = sx.data();
    b.sy = sy.data();
    b.sz = sz.data();
    b.sq = sq.data();
    b.ns = ns;
    b.phi = phi.data();
    if (grad) {
      b.ax = ax.data();
      b.ay = ay.data();
      b.az = az.data();
    }
    return b;
  }

  double checksum(bool grad) const {
    double s = 0;
    for (std::size_t i = 0; i < nt; ++i) {
      s += phi[i];
      if (grad) s += ax[i] + ay[i] + az[i];
    }
    return s;
  }
};

/// One sweep row: `run()` computes the op once and returns its checksum.
/// `interactions` converts ns/call into ns/interaction (1 for whole-op rows
/// like M2L, where per-interaction has no natural meaning).
struct SweepOp {
  std::string name;
  double interactions;
  std::function<double()> run;
};

int run_kernel_sweep(const std::string& path, bool forced) {
  constexpr std::size_t kNt = 256, kNs = 256;
  static SweepBatch sb(kNt, kNs);
  const double p2p_inter = static_cast<double>(kNt * kNs);

  auto p2p = [&](bool yukawa, bool grad) {
    return [yukawa, grad] {
      std::fill(sb.phi.begin(), sb.phi.end(), 0.0);
      if (grad) {
        std::fill(sb.ax.begin(), sb.ax.end(), 0.0);
        std::fill(sb.ay.begin(), sb.ay.end(), 0.0);
        std::fill(sb.az.begin(), sb.az.end(), 0.0);
      }
      const simd::P2PBatch b = sb.view(grad);
      if (yukawa) {
        simd::p2p_yukawa(b, 2.0);
      } else {
        simd::p2p_laplace(b);
      }
      return sb.checksum(grad);
    };
  };
  auto m2l = [&](const std::string& kernel) {
    return [kernel] {
      auto& f = fx(kernel);
      CoeffVec out(f.kernel->l_count(kLevel), cdouble{});
      f.kernel->m2l_acc(f.m, f.cs, f.ct, kLevel, out);
      double s = 0;
      for (const cdouble& c : out) s += std::abs(c);
      return s;
    };
  };

  const SweepOp ops[] = {
      {"P2P_laplace", p2p_inter, p2p(false, false)},
      {"P2P_laplace_grad", p2p_inter, p2p(false, true)},
      {"P2P_yukawa", p2p_inter, p2p(true, false)},
      {"P2P_yukawa_grad", p2p_inter, p2p(true, true)},
      {"M2L_laplace", 1.0, m2l("laplace")},
      {"M2L_yukawa", 1.0, m2l("yukawa")},
  };

  // When an ISA was forced via --isa (or AMTFMM_FORCE_ISA), sweep only that
  // variant — the CI forced-scalar leg diffs such a file against the scalar
  // rows of a full sweep.  Otherwise sweep everything the host supports
  // (scalar always comes first, providing the speedup baseline).
  const simd::Isa entry = simd::active_isa();
  std::vector<simd::Isa> isas = simd::supported_isas();
  if (forced) isas = {entry};

  std::vector<bench::BenchEntry> entries;
  std::printf("%-22s %-8s %14s %10s\n", "op", "isa", "ns/interaction",
              "speedup");
  for (const SweepOp& op : ops) {
    double scalar_ns = 0.0;
    for (const simd::Isa isa : isas) {
      if (!simd::set_active_isa(isa)) continue;
      const double checksum = op.run();
      const double ns = best_ns_per_call(op.run) / op.interactions;
      if (isa == simd::Isa::kScalar) scalar_ns = ns;
      const double speedup = scalar_ns > 0.0 ? scalar_ns / ns : 0.0;
      std::printf("%-22s %-8s %14.3f %9.2fx\n", op.name.c_str(),
                  simd::to_string(isa), ns, speedup);
      entries.push_back({op.name + "/" + simd::to_string(isa),
                         ns,
                         {{"ns_per_interaction", ns},
                          {"speedup_vs_scalar", speedup},
                          {"checksum", checksum}}});
    }
  }
  simd::set_active_isa(entry);

  if (!bench::write_bench_json(path, entries)) {
    std::fprintf(stderr, "micro_operators: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nkernel sweep written to %s\n", path.c_str());
  return 0;
}

// Console reporter that also collects (name, ns/op) so a machine-readable
// summary can be written next to the usual console table.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<bench::BenchEntry> entries;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        // p = 3 * digits; the fixtures run setup(1.0, 8, 3).
        entries.push_back({run.benchmark_name(), run.GetAdjustedRealTime(),
                           {{"p", 9.0}}});
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

// BENCHMARK_MAIN() plus three flags stripped before the remaining argv is
// handed to the benchmark library:
//   --json <path>          write {name, p, ns_per_op} records after the run
//   --isa <name>           force the SIMD dispatch ISA (scalar|neon|avx2|
//                          avx512); errors out if unsupported on this host
//   --kernels-json <path>  run the per-ISA SIMD kernel sweep instead of the
//                          operator benchmarks and write BENCH_kernels.json
int main(int argc, char** argv) {
  std::string json_path, kernels_json, isa_name;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::string(argv[i]) == "--kernels-json" && i + 1 < argc) {
      kernels_json = argv[++i];
    } else if (std::string(argv[i]) == "--isa" && i + 1 < argc) {
      isa_name = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!isa_name.empty()) {
    simd::Isa isa{};
    if (!simd::parse_isa(isa_name, isa) || !simd::set_active_isa(isa)) {
      std::fprintf(stderr,
                   "micro_operators: --isa '%s' unknown or unsupported on "
                   "this host\n",
                   isa_name.c_str());
      return 1;
    }
  }
  if (!kernels_json.empty()) {
    const bool forced =
        !isa_name.empty() || std::getenv("AMTFMM_FORCE_ISA") != nullptr;
    return run_kernel_sweep(kernels_json, forced);
  }

  int filtered = static_cast<int>(args.size());
  benchmark::Initialize(&filtered, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered, args.data())) return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (!json_path.empty() &&
      !bench::write_bench_json(json_path, reporter.entries)) {
    std::fprintf(stderr, "micro_operators: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
