// Reproduces Figure 5 of the paper: per-class utilization fractions f_k^(i)
// for the 128-core cube/Laplace run, in the paper's three panels:
//   (top)    operations up the source tree:          S->M, M->M
//   (middle) operations bridging source -> target:   M->I, I->I, I->L
//   (bottom) operations finishing at the targets:    S->T, L->L, L->T
// The diagnostic the paper draws from this figure: without priorities, the
// cheap-but-critical upward work is scheduled throughout the run (top
// panel), starving the bridge/downward phases near the end.

#include "../bench/common.hpp"

int main(int argc, char** argv) {
  using namespace amtfmm;
  using namespace amtfmm::bench;
  Cli cli("fig5_class_utilization: paper Figure 5 (utilization by class)");
  cli.add_flag("n", static_cast<std::int64_t>(500000),
               "points per ensemble (paper: 30M)");
  cli.add_flag("threshold", static_cast<std::int64_t>(60), "refinement threshold");
  cli.add_flag("cores", static_cast<std::int64_t>(128), "total cores");
  cli.add_flag("intervals", static_cast<std::int64_t>(100), "time intervals M");
  add_trace_out_flag(cli);
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.i64("n"));
  const int intervals = static_cast<int>(cli.i64("intervals"));
  Ensembles e = make_ensembles(Distribution::kCube, n, 11);

  EvalConfig cfg;
  cfg.threshold = static_cast<int>(cli.i64("threshold"));
  Evaluator eval(make_kernel("laplace"), cfg);
  SimConfig sim;
  sim.localities = static_cast<int>(cli.i64("cores")) / 32;
  sim.cores_per_locality = 32;
  sim.cost = CostModel::paper("laplace");
  sim.trace = true;
  sim.counters = true;
  const SimResult r = eval.simulate(e.sources, e.targets, sim);
  const UtilizationProfile p =
      utilization(r.trace, 0.0, r.virtual_time, intervals, r.total_cores);

  print_header("Figure 5: utilization fraction by operator class, " +
               std::to_string(cli.i64("cores")) + "-core run");
  std::printf("%zu points cube Laplace; evaluation time %.3f s (paper: 17.6 s "
              "at 30M points)\n\n", n, r.virtual_time);
  auto cls = [&](Operator op) {
    return p.by_class[static_cast<std::size_t>(op)];
  };
  std::printf("%4s | %8s %8s | %8s %8s %8s | %8s %8s %8s\n", "k", "S->M",
              "M->M", "M->I", "I->I", "I->L", "S->T", "L->L", "L->T");
  for (int k = 0; k < intervals; ++k) {
    const auto i = static_cast<std::size_t>(k);
    std::printf("%4d | %8.4f %8.4f | %8.4f %8.4f %8.4f | %8.4f %8.4f %8.4f\n",
                k, cls(Operator::kS2M)[i], cls(Operator::kM2M)[i],
                cls(Operator::kM2I)[i], cls(Operator::kI2I)[i],
                cls(Operator::kI2L)[i], cls(Operator::kS2T)[i],
                cls(Operator::kL2L)[i], cls(Operator::kL2T)[i]);
  }

  // The paper's headline observation: the last interval in which upward
  // (S->M / M->M) work still runs, as a fraction of the execution.
  int last_up = 0;
  for (int k = 0; k < intervals; ++k) {
    const auto i = static_cast<std::size_t>(k);
    if (cls(Operator::kS2M)[i] + cls(Operator::kM2M)[i] > 1e-4) last_up = k;
  }
  std::printf("\nupward-pass work still scheduled at %d%% of the execution "
              "(paper: \"up to 83%%\" without priorities)\n",
              100 * last_up / intervals);
  if (!export_trace_if_requested(cli, r, 32)) return 1;
  return 0;
}
