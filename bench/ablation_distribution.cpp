// Ablation for the paper's distribution policy (section IV): the implicit
// DAG's intermediate nodes are "placed by trying to minimize communication
// cost".  Compares owner placement (every node on its box's locality)
// against the communication-minimizing placement of It nodes, reporting
// cross-locality traffic and the simulated evaluation time.

#include "../bench/common.hpp"

int main(int argc, char** argv) {
  using namespace amtfmm;
  using namespace amtfmm::bench;
  Cli cli("ablation_distribution: It-node placement policy (paper section IV)");
  cli.add_flag("n", static_cast<std::int64_t>(500000), "points per ensemble");
  cli.add_flag("threshold", static_cast<std::int64_t>(60), "refinement threshold");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.i64("n"));
  Ensembles e = make_ensembles(Distribution::kCube, n, 11);

  print_header("Distribution-policy ablation: owner vs comm-min It placement");
  std::printf("%zu points cube Laplace, 32 cores/locality\n\n", n);
  std::printf("%8s %12s | %14s %12s | %14s %12s %10s\n", "cores", "",
              "owner t [s]", "owner GB", "comm-min t [s]", "comm-min GB",
              "GB saved");

  for (int cores : {128, 512, 2048}) {
    double t[2], gb[2];
    int i = 0;
    for (Placement pl : {Placement::kOwner, Placement::kCommMin}) {
      EvalConfig cfg;
      cfg.threshold = static_cast<int>(cli.i64("threshold"));
      cfg.placement = pl;
      Evaluator eval(make_kernel("laplace"), cfg);
      SimConfig sim;
      sim.localities = cores / 32;
      sim.cores_per_locality = 32;
      sim.cost = CostModel::paper("laplace");
      const SimResult r = eval.simulate(e.sources, e.targets, sim);
      t[i] = r.virtual_time;
      gb[i] = static_cast<double>(r.bytes_sent) / 1e9;
      ++i;
    }
    std::printf("%8d %12s | %14.4f %12.3f | %14.4f %12.3f %9.1f%%\n", cores,
                "", t[0], gb[0], t[1], gb[1],
                100.0 * (gb[0] - gb[1]) / std::max(gb[0], 1e-12));
  }
  std::printf("\nleaf expansions stay pinned to the data distribution under "
              "both policies (the paper's placement constraint).\n");
  return 0;
}
