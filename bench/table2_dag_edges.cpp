// Reproduces Table II of the paper: count, message size, and average
// execution time of the DAG edge classes.  Counts and sizes come from the
// explicit DAG; execution times are measured natively on this host by
// running each operator (the paper measured them on a Big Red II 128-core
// run, reported alongside).

#include "../bench/common.hpp"
#include "core/cost_model.hpp"
#include "core/dag.hpp"
#include "tree/lists.hpp"

int main(int argc, char** argv) {
  using namespace amtfmm;
  using namespace amtfmm::bench;
  Cli cli("table2_dag_edges: paper Table II (DAG edge classes)");
  cli.add_flag("n", static_cast<std::int64_t>(2000000), "points per ensemble");
  cli.add_flag("threshold", static_cast<std::int64_t>(60), "refinement threshold");
  cli.add_flag("kernel", std::string("laplace"), "laplace|yukawa");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.i64("n"));
  Ensembles e = make_ensembles(Distribution::kCube, n, 7);
  const DualTree dt = build_dual_tree(e.sources, e.targets,
                                      static_cast<int>(cli.i64("threshold")), 1);
  auto kernel = make_kernel(cli.str("kernel"), 2.0);
  const int max_level =
      std::max(dt.source.max_level(), dt.target.max_level()) + 1;
  kernel->setup(dt.source.domain().size, max_level, 3);
  const InteractionLists lists = build_lists(dt);
  const Dag dag = build_dag(dt, lists, *kernel, DagBuildConfig{}, 1);
  const DagStats s = dag.stats();

  // Native per-operator timings at the tree's typical leaf level.
  const CostModel host = CostModel::measured(*kernel, 3, 60);
  const CostModel paper = CostModel::paper(cli.str("kernel"));

  print_header("Table II: count, message size and avg execution time of DAG edges");
  std::printf("%zu sources + %zu targets (cube), threshold %ld, kernel %s\n\n",
              n, n, cli.i64("threshold"), cli.str("kernel").c_str());
  std::printf("%-6s %12s %14s %16s %16s\n", "Type", "Count", "Size [B]",
              "t_avg host [us]", "t_avg paper [us]");
  const Operator order[] = {Operator::kS2T, Operator::kS2M, Operator::kM2M,
                            Operator::kM2I, Operator::kI2I, Operator::kI2L,
                            Operator::kL2L, Operator::kL2T, Operator::kM2T,
                            Operator::kS2L, Operator::kM2L};
  // Typical cost metrics for a threshold-60 tree, for the host profile.
  auto metric_of = [&](Operator op) -> double {
    switch (op) {
      case Operator::kS2T: return 45.0 * 45.0;
      case Operator::kS2M:
      case Operator::kS2L: return 45.0;
      case Operator::kM2T:
      case Operator::kL2T: return 45.0;
      case Operator::kI2I: return static_cast<double>(kernel->x_count(4));
      case Operator::kI2L: return 6.0;
      default: return 1.0;
    }
  };
  for (Operator op : order) {
    const auto& c = s.edges[static_cast<std::size_t>(op)];
    if (c.count == 0) continue;
    std::printf("%-6s %12zu %14s %16.2f %16.2f\n", to_string(op), c.count,
                byte_range(c.min_bytes, c.max_bytes).c_str(),
                1e6 * host.cost(op, metric_of(op)),
                1e6 * paper.cost(op, metric_of(op)));
  }
  std::printf(
      "\nPaper (30M cube): S->T 55742860 / 1.89us, S->M 2097148 / 10.9us,\n"
      "M->M 2396668 / 4.60us, M->I 2396732 / 29.6us, I->I 59992216 / 1.75us,\n"
      "I->L 2396736 / 38.4us, L->L 2396672 / 4.45us, L->T 2097152 / 13.5us.\n"
      "I->I dominates the edge count in both (merge-and-shift bulk), and the\n"
      "upward-pass edge counts track the box counts exactly as in the paper.\n");

  // How the edge traffic lands on the wire: remote edges become parcels,
  // and the runtime's per-locality coalescing compresses them into batched
  // messages.  Simulated at 4 localities on a scaled-down ensemble.
  {
    const auto n_sim = std::min<std::size_t>(n, 200000);
    Ensembles es = make_ensembles(Distribution::kCube, n_sim, 7);
    EvalConfig ecfg;
    ecfg.threshold = static_cast<int>(cli.i64("threshold"));
    Evaluator eval(make_kernel("counting"), ecfg);
    SimConfig sim;
    sim.localities = 4;
    sim.cores_per_locality = 32;
    sim.cost = CostModel::paper(cli.str("kernel"));
    const SimResult off = eval.simulate(es.sources, es.targets, sim);
    sim.coalesce.enabled = true;
    const SimResult on = eval.simulate(es.sources, es.targets, sim);
    std::printf(
        "\nWire traffic at 4x32 simulated cores (%zu points):\n"
        "%-12s %12s %12s %10s %12s %14s\n", n_sim, "coalescing", "parcels",
        "batches", "factor", "bytes [MB]", "virt time [s]");
    for (const auto* r : {&off, &on}) {
      std::printf("%-12s %12llu %12llu %10.2f %12.2f %14.4f\n",
                  r == &off ? "off" : "on",
                  static_cast<unsigned long long>(r->comm.parcels),
                  static_cast<unsigned long long>(r->comm.batches),
                  r->comm.coalescing_factor(),
                  static_cast<double>(r->comm.bytes) / 1e6, r->virtual_time);
    }
  }
  return 0;
}
