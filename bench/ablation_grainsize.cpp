// Grain-size ablation.  The paper (section I) notes that DASHMM stresses
// the runtime along independent axes: "Adjusting the required accuracy
// adjusts the grain size (FLOPS and bytes transferred per task)" and the
// refinement threshold trades leaf work (S->T) against tree work.  This
// bench sweeps both knobs at a fixed core count and reports the simulated
// evaluation time, task grain, and efficiency — the mechanism behind the
// Yukawa-scales-better-than-Laplace observation of Figure 3.

#include "../bench/common.hpp"
#include "tree/lists.hpp"

int main(int argc, char** argv) {
  using namespace amtfmm;
  using namespace amtfmm::bench;
  Cli cli("ablation_grainsize: threshold and accuracy vs scaling (paper sec. I)");
  cli.add_flag("n", static_cast<std::int64_t>(300000), "points per ensemble");
  cli.add_flag("cores", static_cast<std::int64_t>(1024), "total cores");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.i64("n"));
  const int cores = static_cast<int>(cli.i64("cores"));
  Ensembles e = make_ensembles(Distribution::kCube, n, 13);

  print_header("Grain-size ablation at " + std::to_string(cores) + " cores");
  std::printf("%zu points cube; grain multiplier scales every operator cost "
              "(1x = paper Laplace, 3x = paper Yukawa)\n\n", n);
  std::printf("%10s %8s | %12s %12s %12s | %12s\n", "threshold", "grain",
              "t_32 [s]", "t_n [s]", "efficiency", "tasks");

  for (int threshold : {20, 60, 150}) {
    for (double grain : {1.0, 3.0, 9.0}) {
      EvalConfig cfg;
      cfg.threshold = threshold;
      Evaluator eval(make_kernel("laplace"), cfg);
      SimConfig sim;
      sim.cores_per_locality = 32;
      sim.cost = CostModel::paper("laplace");
      for (auto& b : sim.cost.base) b *= grain;
      for (auto& u : sim.cost.per_unit) u *= grain;

      sim.localities = 1;
      const SimResult base = eval.simulate(e.sources, e.targets, sim);
      sim.localities = cores / 32;
      const SimResult r = eval.simulate(e.sources, e.targets, sim);
      const double eff =
          base.virtual_time / r.virtual_time / (cores / 32.0);
      std::printf("%10d %7.0fx | %12.4f %12.4f %11.1f%% | %12zu\n", threshold,
                  grain, base.virtual_time, r.virtual_time, 100.0 * eff,
                  r.dag.total_nodes);
    }
  }
  std::printf("\nheavier grains scale better at fixed concurrency (the "
              "paper's Laplace-vs-Yukawa contrast); larger thresholds\n"
              "shift work into S->T leaves and shrink the DAG.\n");
  return 0;
}
