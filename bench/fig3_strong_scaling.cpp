// Reproduces Figure 3 of the paper: strong scaling of the DAG evaluation for
// the four configurations (cube/sphere x Laplace/Yukawa) from 32 to
// --max-cores cores, 32 cores per locality (Big Red II node shape).
//
// The evaluation runs on the discrete-event simulator with the paper's
// Table II operator-cost profile by default (see DESIGN.md for the
// substitution rationale); --cost-profile=host uses operator times measured
// on this machine instead.  Problem sizes are scaled to this host's memory
// (--n to raise them; the paper used 60M cube / 42M sphere points).

#include "../bench/common.hpp"

int main(int argc, char** argv) {
  using namespace amtfmm;
  using namespace amtfmm::bench;
  Cli cli("fig3_strong_scaling: paper Figure 3 (time-to-completion and speedup)");
  cli.add_flag("n", static_cast<std::int64_t>(1000000),
               "points per ensemble (cube; sphere uses 0.7x, as 42/60)");
  cli.add_flag("max-cores", static_cast<std::int64_t>(4096), "largest core count");
  cli.add_flag("threshold", static_cast<std::int64_t>(60), "refinement threshold");
  cli.add_flag("cost-profile", std::string("paper"), "paper|host operator costs");
  cli.add_flag("seed", static_cast<std::int64_t>(1), "rng seed");
  cli.parse(argc, argv);

  const auto n_cube = static_cast<std::size_t>(cli.i64("n"));
  const auto n_sphere = static_cast<std::size_t>(0.7 * n_cube);
  const int max_cores = static_cast<int>(cli.i64("max-cores"));

  struct Config {
    const char* name;
    Distribution dist;
    const char* kernel;
    std::size_t n;
  };
  const Config configs[] = {
      {"cube   Laplace", Distribution::kCube, "laplace", n_cube},
      {"cube   Yukawa ", Distribution::kCube, "yukawa", n_cube},
      {"sphere Laplace", Distribution::kSphere, "laplace", n_sphere},
      {"sphere Yukawa ", Distribution::kSphere, "yukawa", n_sphere},
  };

  print_header("Figure 3: strong scaling t_n and speedup t_32/t_n "
               "(simulated cluster, 32 cores/locality)");
  std::printf("points: cube %zu, sphere %zu; threshold %ld; cost profile %s\n",
              n_cube, n_sphere, cli.i64("threshold"),
              cli.str("cost-profile").c_str());
  std::printf("paper reference at 4096 cores: efficiency 60%% (cube Laplace), "
              "74%% (cube Yukawa), 62%% (sphere Laplace), 69%% (sphere Yukawa)\n");

  for (const Config& c : configs) {
    Ensembles e = make_ensembles(c.dist, c.n, static_cast<std::uint64_t>(cli.i64("seed")));
    EvalConfig cfg;
    cfg.threshold = static_cast<int>(cli.i64("threshold"));
    Evaluator eval(make_kernel(c.kernel, 2.0), cfg);

    SimConfig sim;
    sim.cores_per_locality = 32;
    if (cli.str("cost-profile") == "host") {
      auto probe = make_kernel(c.kernel, 2.0);
      probe->setup(1.0, 8, 3);
      sim.cost = CostModel::measured(*probe);
    } else {
      sim.cost = CostModel::paper(c.kernel);
    }

    std::printf("\n%s\n", c.name);
    std::printf("  %8s %12s %10s %12s %12s\n", "cores", "t_n [s]", "speedup",
                "efficiency", "GB sent");
    double t32 = -1.0;
    for (int cores = 32; cores <= max_cores; cores *= 2) {
      sim.localities = cores / 32;
      const SimResult r = eval.simulate(e.sources, e.targets, sim);
      if (t32 < 0) t32 = r.virtual_time;
      const double speedup = t32 / r.virtual_time;
      const double eff = speedup / (cores / 32.0);
      std::printf("  %8d %12.4f %10.2f %11.1f%% %12.3f\n", cores,
                  r.virtual_time, speedup, 100.0 * eff,
                  static_cast<double>(r.bytes_sent) / 1e9);
    }
  }
  std::printf("\nNote: the knee moves left relative to the paper when --n is "
              "far below the paper's 60M points (fewer tasks per core).\n");
  return 0;
}
