#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "geom/distributions.hpp"
#include "runtime/trace_export.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"

namespace amtfmm::bench {

/// Source and target ensembles as in the paper's runs: same size, distinct
/// (different draws), same distribution type.
struct Ensembles {
  std::vector<Vec3> sources;
  std::vector<Vec3> targets;
  std::vector<double> charges;
};

inline Ensembles make_ensembles(Distribution d, std::size_t n,
                                std::uint64_t seed) {
  Rng rs(seed), rt(seed + 1000), rq(seed + 2000);
  Ensembles e;
  e.sources = generate_points(d, n, rs);
  e.targets = generate_points(d, n, rt);
  e.charges = generate_charges(n, rq, 0.1, 1.0);
  return e;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Formats a byte range like the paper's tables ("32-1920" or "880").
inline std::string byte_range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) return "-";  // empty class
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + "-" + std::to_string(hi);
}

/// One row of a micro-benchmark `--json` summary.
struct BenchEntry {
  std::string name;
  double ns_per_op = 0.0;
  std::vector<std::pair<std::string, double>> counters;
};

/// Writes entries as a JSON array of flat {name, ns_per_op, counters...}
/// objects — the single writer behind every bench `--json` output, so the
/// schema (escaping, number formatting) is identical everywhere.
inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchEntry>& entries) {
  JsonWriter w;
  w.begin_array();
  for (const auto& e : entries) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("ns_per_op", e.ns_per_op);
    for (const auto& [k, v] : e.counters) w.kv(k, v);
    w.end_object();
  }
  w.end_array();
  return w.write_file(path);
}

/// Serializes comm statistics under the given key — shared by the fig
/// benches' `--json` outputs.
inline void append_comm_json(JsonWriter& w, const CommStats& c) {
  w.begin_object();
  w.kv("parcels", static_cast<std::uint64_t>(c.parcels));
  w.kv("batches", static_cast<std::uint64_t>(c.batches));
  w.kv("bytes", static_cast<std::uint64_t>(c.bytes));
  w.kv("coalescing_factor", c.coalescing_factor());
  w.end_object();
}

/// Registers the shared `--trace-out=FILE` flag.
inline void add_trace_out_flag(Cli& cli) {
  cli.add_flag("trace-out", std::string(),
               "write a Chrome/Perfetto trace of the run to FILE");
}

/// Exports a run as a Chrome trace when `--trace-out` was given.  Returns
/// false only when the flag was set and the export failed.
inline bool export_trace_if_requested(const Cli& cli, const SimResult& r,
                                      int cores_per_locality) {
  const std::string path = cli.str("trace-out");
  if (path.empty()) return true;
  ChromeTraceOptions opt;
  opt.cores_per_locality = cores_per_locality;
  opt.makespan = r.virtual_time;
  opt.sim = true;
  opt.dag_edges = r.dag_edges;
  opt.counters = r.counters.empty() ? nullptr : &r.counters;
  const bool ok =
      trace_export_chrome(path, r.trace, r.comm_trace, r.instants, opt);
  std::printf(ok ? "\ntrace written to %s (open in ui.perfetto.dev or run "
                   "tools/trace_report)\n"
                 : "\nERROR: could not write trace to %s\n",
              path.c_str());
  return ok;
}

/// Wall-clock-run overload (EvalResult from the threaded executor).
inline bool export_trace_if_requested(const Cli& cli, const EvalResult& r,
                                      int cores_per_locality) {
  const std::string path = cli.str("trace-out");
  if (path.empty()) return true;
  ChromeTraceOptions opt;
  opt.cores_per_locality = cores_per_locality;
  opt.makespan = r.makespan;
  opt.sim = false;
  opt.dag_edges = r.dag_edges;
  opt.counters = r.counters.empty() ? nullptr : &r.counters;
  const bool ok =
      trace_export_chrome(path, r.trace, r.comm_trace, r.instants, opt);
  std::printf(ok ? "\ntrace written to %s (open in ui.perfetto.dev or run "
                   "tools/trace_report)\n"
                 : "\nERROR: could not write trace to %s\n",
              path.c_str());
  return ok;
}

}  // namespace amtfmm::bench
