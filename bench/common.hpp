#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "geom/distributions.hpp"
#include "support/cli.hpp"

namespace amtfmm::bench {

/// Source and target ensembles as in the paper's runs: same size, distinct
/// (different draws), same distribution type.
struct Ensembles {
  std::vector<Vec3> sources;
  std::vector<Vec3> targets;
  std::vector<double> charges;
};

inline Ensembles make_ensembles(Distribution d, std::size_t n,
                                std::uint64_t seed) {
  Rng rs(seed), rt(seed + 1000), rq(seed + 2000);
  Ensembles e;
  e.sources = generate_points(d, n, rs);
  e.targets = generate_points(d, n, rt);
  e.charges = generate_charges(n, rq, 0.1, 1.0);
  return e;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Formats a byte range like the paper's tables ("32-1920" or "880").
inline std::string byte_range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) return "-";  // empty class
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + "-" + std::to_string(hi);
}

}  // namespace amtfmm::bench
