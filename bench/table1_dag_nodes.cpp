// Reproduces Table I of the paper: count, payload size, and min/max in-/out-
// degree of the six DAG node classes, for cube data with the advanced FMM.
// The paper used 30M source + 30M target points; the default here is scaled
// to this host (--n to raise).

#include "../bench/common.hpp"
#include "core/dag.hpp"
#include "tree/lists.hpp"

int main(int argc, char** argv) {
  using namespace amtfmm;
  using namespace amtfmm::bench;
  Cli cli("table1_dag_nodes: paper Table I (DAG node classes)");
  cli.add_flag("n", static_cast<std::int64_t>(2000000), "points per ensemble");
  cli.add_flag("threshold", static_cast<std::int64_t>(60), "refinement threshold");
  cli.add_flag("kernel", std::string("laplace"), "laplace|yukawa|counting");
  cli.add_flag("dist", std::string("cube"), "cube|sphere|plummer");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.i64("n"));
  Ensembles e = make_ensembles(parse_distribution(cli.str("dist")), n, 7);

  const DualTree dt = build_dual_tree(e.sources, e.targets,
                                      static_cast<int>(cli.i64("threshold")), 1);
  auto kernel = make_kernel(cli.str("kernel"), 2.0);
  kernel->setup(dt.source.domain().size,
                std::max(dt.source.max_level(), dt.target.max_level()) + 1, 3);
  const InteractionLists lists = build_lists(dt);
  const Dag dag = build_dag(dt, lists, *kernel, DagBuildConfig{}, 1);
  const DagStats s = dag.stats();

  print_header("Table I: count, size and min/max in-/out-degree of DAG nodes");
  std::printf("%zu sources + %zu targets (%s), threshold %ld, kernel %s\n",
              n, n, cli.str("dist").c_str(), cli.i64("threshold"),
              cli.str("kernel").c_str());
  std::printf("total: %zu nodes, %zu edges\n\n", s.total_nodes, s.total_edges);
  std::printf("%-5s %12s %14s %8s %8s %8s %8s\n", "Type", "Count", "Size [B]",
              "din min", "din max", "dout min", "dout max");
  const NodeKind order[] = {NodeKind::kS, NodeKind::kM, NodeKind::kIs,
                            NodeKind::kIt, NodeKind::kL, NodeKind::kT};
  for (NodeKind k : order) {
    const auto& c = s.nodes[static_cast<std::size_t>(k)];
    if (c.count == 0) {
      std::printf("%-5s %12s\n", to_string(k), "-");
      continue;
    }
    std::printf("%-5s %12zu %14s %8u %8u %8u %8u\n", to_string(k), c.count,
                byte_range(c.min_bytes, c.max_bytes).c_str(), c.din_min,
                c.din_max, c.dout_min, c.dout_max);
  }
  std::printf(
      "\nPaper (30M points): S 2097148 / 32-1920 B, M 2396732 / 880 B,\n"
      "Is 2396732 / 5472 B, It 2396672 / 25536 B, L 2396672 / 880 B,\n"
      "T 2097152 / 40-2400 B.  Our M/L sizes match (880 B at p=9); the\n"
      "intermediate nodes are larger because the plane-wave quadrature is\n"
      "generated, not table-optimized (see DESIGN.md).\n");
  return 0;
}
