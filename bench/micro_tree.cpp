// Micro-benchmarks of the setup phase: dual-tree construction, interaction
// lists, and explicit-DAG construction (the paper amortizes these over many
// evaluations; they bound the first-iteration cost).

#include <benchmark/benchmark.h>

#include "core/dag.hpp"
#include "geom/distributions.hpp"
#include "tree/lists.hpp"

namespace {

using namespace amtfmm;

void BM_TreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto pts = generate_points(Distribution::kCube, n, rng);
  const Cube domain = bounding_cube(pts, {});
  for (auto _ : state) {
    Tree t = Tree::build(pts, domain, 60, 4);
    benchmark::DoNotOptimize(t.boxes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_TreeBuild)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_InteractionLists(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const DualTree dt = build_dual_tree(src, tgt, 60, 1);
  for (auto _ : state) {
    InteractionLists lists = build_lists(dt);
    benchmark::DoNotOptimize(lists.l2.data());
  }
}
BENCHMARK(BM_InteractionLists)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_DagBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const DualTree dt = build_dual_tree(src, tgt, 60, 4);
  auto kernel = make_kernel("laplace");
  kernel->setup(dt.source.domain().size, dt.source.max_level() + 1, 3);
  const InteractionLists lists = build_lists(dt);
  for (auto _ : state) {
    Dag dag = build_dag(dt, lists, *kernel, DagBuildConfig{}, 4);
    benchmark::DoNotOptimize(dag.nodes.data());
  }
}
BENCHMARK(BM_DagBuild)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_SphereTreeDepth(benchmark::State& state) {
  // Sphere-surface data: the adaptive worst case of the paper's inputs.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const auto pts = generate_points(Distribution::kSphere, n, rng);
  const Cube domain = bounding_cube(pts, {});
  for (auto _ : state) {
    Tree t = Tree::build(pts, domain, 60, 1);
    benchmark::DoNotOptimize(t.max_level());
  }
}
BENCHMARK(BM_SphereTreeDepth)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
