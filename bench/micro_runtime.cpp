// Micro-benchmarks of the AMT substrate: task spawn/drain throughput, LCO
// reduction rate, parcel round-trips, parcel-coalescing fan-out, and
// discrete-event simulation rate — the runtime-overhead side of the paper's
// grain-size discussion (tasks of a few microseconds must not be swamped by
// scheduler costs).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/expansion_lco.hpp"
#include "kernels/kernel.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace amtfmm;

void BM_SpawnDrain(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  ThreadExecutor ex(1, 2);
  std::atomic<int> count{0};
  for (auto _ : state) {
    count.store(0);
    for (int i = 0; i < tasks; ++i) {
      Task t;
      t.fn = [&count] { count.fetch_add(1, std::memory_order_relaxed); };
      ex.spawn(std::move(t));
    }
    ex.drain();
    benchmark::DoNotOptimize(count.load());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SpawnDrain)->Arg(1000)->Arg(10000);

void BM_LcoReduction(benchmark::State& state) {
  ThreadExecutor ex(1, 2);
  const int inputs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SumLCO sum(ex, inputs);
    for (int i = 0; i < inputs; ++i) sum.add(1.0);
    benchmark::DoNotOptimize(sum.triggered());
  }
  state.SetItemsProcessed(state.iterations() * inputs);
}
BENCHMARK(BM_LcoReduction)->Arg(100)->Arg(10000);

void BM_ParcelRoundTrip(benchmark::State& state) {
  RuntimeConfig cfg;
  cfg.localities = 2;
  cfg.cores_per_locality = 1;
  Runtime rt(cfg);
  std::atomic<int> hits{0};
  const std::uint32_t action = rt.register_action(
      [&hits](Runtime&, const Parcel&) { hits.fetch_add(1); });
  for (auto _ : state) {
    Parcel p;
    p.action = action;
    p.target = GlobalAddress{1, 0};
    p.payload.resize(880);  // one multipole expansion
    rt.send_parcel(0, std::move(p));
    rt.drain();
  }
  benchmark::DoNotOptimize(hits.load());
}
BENCHMARK(BM_ParcelRoundTrip);

void BM_SimEventRate(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SimExecutor ex(4, 32, SchedPolicy::kWorkStealing, NetworkModel{});
    for (int i = 0; i < tasks; ++i) {
      Task t;
      t.locality = static_cast<std::uint32_t>(i % 4);
      t.items = {{kClsOther, 1e-6}};
      ex.spawn(std::move(t));
    }
    ex.drain();
    benchmark::DoNotOptimize(ex.now());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SimEventRate)->Arg(10000)->Arg(100000);

/// Coefficient-accumulating LCO with the ExpansionLCO reduction shape:
/// parses WireRecord kMain messages and adds into a vector under the lock.
class CoeffSinkLCO final : public LCO {
 public:
  CoeffSinkLCO(Executor& ex, int inputs) : LCO(ex, inputs) {}

 protected:
  void reduce(std::span<const std::byte> data) override {
    WireRecord h;
    std::memcpy(&h, data.data(), sizeof(h));
    const auto* in =
        reinterpret_cast<const cdouble*>(data.data() + sizeof(h));
    if (acc_.size() < h.count) acc_.resize(h.count);
    for (std::uint32_t i = 0; i < h.count; ++i) acc_[i] += in[i];
  }

 private:
  CoeffVec acc_;
};

// Fan-in: N set_input calls, each carrying one wire-record message with a
// coefficient payload, racing from every worker into one LCO — the
// contention shape of a high-in-degree expansion node.
void BM_LcoFanIn(benchmark::State& state) {
  const int inputs = 4096;
  const std::uint32_t coeffs = static_cast<std::uint32_t>(state.range(0));
  ThreadExecutor ex(1, 4);
  std::vector<std::byte> msg;
  const CoeffVec contribution(coeffs, cdouble(1.0, -1.0));
  append_record(msg, Operator::kM2M, PayloadSlot::kMain, 0,
                contribution.data(), coeffs * sizeof(cdouble), coeffs);
  for (auto _ : state) {
    CoeffSinkLCO sink(ex, inputs);
    for (int i = 0; i < inputs; ++i) {
      Task t;
      t.fn = [&sink, &msg] { sink.set_input(msg); };
      ex.spawn(std::move(t));
    }
    ex.drain();
    benchmark::DoNotOptimize(sink.triggered());
  }
  state.SetItemsProcessed(state.iterations() * inputs);
  state.SetBytesProcessed(state.iterations() * inputs *
                          static_cast<std::int64_t>(msg.size()));
}
BENCHMARK(BM_LcoFanIn)->Arg(1)->Arg(55)->Arg(220);

// Fan-out: one trigger spawning N registered continuations — the shape of
// a root expansion feeding a wide out-edge CSR.
void BM_LcoFanOut(benchmark::State& state) {
  const int outs = static_cast<int>(state.range(0));
  ThreadExecutor ex(1, 4);
  std::atomic<int> hits{0};
  for (auto _ : state) {
    hits.store(0);
    CoeffSinkLCO src(ex, 1);
    for (int i = 0; i < outs; ++i) {
      Task t;
      t.fn = [&hits] { hits.fetch_add(1, std::memory_order_relaxed); };
      src.register_continuation(std::move(t));
    }
    src.set_input(dep_record());
    ex.drain();
    benchmark::DoNotOptimize(hits.load());
  }
  state.SetItemsProcessed(state.iterations() * outs);
}
BENCHMARK(BM_LcoFanOut)->Arg(64)->Arg(1024);

// Serialize + deserialize cost of one expansion through the kernel wire
// codec — the per-parcel CPU price of the no-pointers-cross-localities
// rule.  Arg is the expansion order stand-in: accuracy digits.
void BM_ExpansionSerialize(benchmark::State& state) {
  auto kernel = make_kernel("laplace");
  kernel->setup(1.0, 4, static_cast<int>(state.range(0)));
  const int level = 2;
  CoeffVec m(kernel->m_count(level), cdouble(0.5, -0.25));
  std::vector<std::byte> wire(kernel->m_wire_bytes(level));
  CoeffVec back;
  for (auto _ : state) {
    kernel->pack_m(m, level, wire.data());
    kernel->unpack_m(wire, level, back);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
  state.counters["wire_bytes"] = static_cast<double>(wire.size());
  state.counters["full_bytes"] =
      static_cast<double>(m.size() * sizeof(cdouble));
}
BENCHMARK(BM_ExpansionSerialize)->Arg(3)->Arg(6);

CoalesceConfig coalesce_arg(std::int64_t on) {
  CoalesceConfig c;
  c.enabled = on != 0;
  return c;
}

// Many small parcels fanned out round-robin to the remote localities —
// the traffic shape of the engine's per-node edge parcels.  Arg(0)/Arg(1)
// toggle coalescing; the coalescing_factor counter reports how many
// parcels shared a wire message.
void BM_ParcelFanOutReal(benchmark::State& state) {
  constexpr int kParcels = 4096;
  RuntimeConfig cfg;
  cfg.localities = 4;
  cfg.cores_per_locality = 1;
  cfg.coalesce = coalesce_arg(state.range(0));
  Runtime rt(cfg);
  std::atomic<int> hits{0};
  const std::uint32_t action = rt.register_action(
      [&hits](Runtime&, const Parcel&) {
        hits.fetch_add(1, std::memory_order_relaxed);
      });
  for (auto _ : state) {
    for (int i = 0; i < kParcels; ++i) {
      Parcel p;
      p.action = action;
      p.target = GlobalAddress{static_cast<std::uint32_t>(1 + i % 3), 0};
      p.payload.resize(64);
      rt.send_parcel(0, std::move(p));
    }
    rt.drain();
    benchmark::DoNotOptimize(hits.load());
  }
  state.SetItemsProcessed(state.iterations() * kParcels);
  const CommStats s = rt.executor().comm_stats();
  state.counters["coalescing_factor"] = s.coalescing_factor();
}
BENCHMARK(BM_ParcelFanOutReal)->Arg(0)->Arg(1);

// The same fan-out on the simulated alpha-beta network: virtual_time shows
// the modelled win of paying one alpha per batch instead of one per parcel.
void BM_ParcelFanOutSim(benchmark::State& state) {
  constexpr int kParcels = 4096;
  double virtual_time = 0.0;
  double factor = 1.0;
  for (auto _ : state) {
    SimExecutor ex(4, 1, SchedPolicy::kFifo, NetworkModel{}, 1,
                   coalesce_arg(state.range(0)));
    for (int i = 0; i < kParcels; ++i) {
      Task t;
      t.fn = [] {};
      ex.send(0, static_cast<std::uint32_t>(1 + i % 3), 64, std::move(t));
    }
    virtual_time = ex.drain();
    factor = ex.comm_stats().coalescing_factor();
    benchmark::DoNotOptimize(virtual_time);
  }
  state.SetItemsProcessed(state.iterations() * kParcels);
  state.counters["virtual_time"] = virtual_time;
  state.counters["coalescing_factor"] = factor;
}
BENCHMARK(BM_ParcelFanOutSim)->Arg(0)->Arg(1);

// Console reporter that also collects (name, ns/op, counters) so a
// machine-readable summary can be written next to the console table.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<bench::BenchEntry> entries;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        bench::BenchEntry e{run.benchmark_name(), run.GetAdjustedRealTime(),
                            {}};
        for (const auto& [name, counter] : run.counters) {
          e.counters.emplace_back(name, counter.value);
        }
        entries.push_back(std::move(e));
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

// BENCHMARK_MAIN() plus a `--json <path>` flag: when given, a JSON array of
// {name, ns_per_op, counters...} records is written to <path> after the
// run.  The flag is stripped before argv is handed to the benchmark
// library.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered = static_cast<int>(args.size());
  benchmark::Initialize(&filtered, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered, args.data())) return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (!json_path.empty() &&
      !bench::write_bench_json(json_path, reporter.entries)) {
    std::fprintf(stderr, "micro_runtime: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
