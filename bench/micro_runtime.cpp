// Micro-benchmarks of the AMT substrate: task spawn/drain throughput, LCO
// reduction rate, parcel round-trips, and discrete-event simulation rate —
// the runtime-overhead side of the paper's grain-size discussion (tasks of
// a few microseconds must not be swamped by scheduler costs).

#include <benchmark/benchmark.h>

#include <atomic>

#include "runtime/runtime.hpp"

namespace {

using namespace amtfmm;

void BM_SpawnDrain(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  ThreadExecutor ex(1, 2);
  std::atomic<int> count{0};
  for (auto _ : state) {
    count.store(0);
    for (int i = 0; i < tasks; ++i) {
      Task t;
      t.fn = [&count] { count.fetch_add(1, std::memory_order_relaxed); };
      ex.spawn(std::move(t));
    }
    ex.drain();
    benchmark::DoNotOptimize(count.load());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SpawnDrain)->Arg(1000)->Arg(10000);

void BM_LcoReduction(benchmark::State& state) {
  ThreadExecutor ex(1, 2);
  const int inputs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SumLCO sum(ex, inputs);
    for (int i = 0; i < inputs; ++i) sum.add(1.0);
    benchmark::DoNotOptimize(sum.triggered());
  }
  state.SetItemsProcessed(state.iterations() * inputs);
}
BENCHMARK(BM_LcoReduction)->Arg(100)->Arg(10000);

void BM_ParcelRoundTrip(benchmark::State& state) {
  RuntimeConfig cfg;
  cfg.localities = 2;
  cfg.cores_per_locality = 1;
  Runtime rt(cfg);
  std::atomic<int> hits{0};
  const std::uint32_t action = rt.register_action(
      [&hits](Runtime&, const Parcel&) { hits.fetch_add(1); });
  for (auto _ : state) {
    Parcel p;
    p.action = action;
    p.target = GlobalAddress{1, 0};
    p.payload.resize(880);  // one multipole expansion
    rt.send_parcel(0, std::move(p));
    rt.drain();
  }
  benchmark::DoNotOptimize(hits.load());
}
BENCHMARK(BM_ParcelRoundTrip);

void BM_SimEventRate(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SimExecutor ex(4, 32, SchedPolicy::kWorkStealing, NetworkModel{});
    for (int i = 0; i < tasks; ++i) {
      Task t;
      t.locality = static_cast<std::uint32_t>(i % 4);
      t.items = {{kClsOther, 1e-6}};
      ex.spawn(std::move(t));
    }
    ex.drain();
    benchmark::DoNotOptimize(ex.now());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SimEventRate)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
