// Micro-benchmarks of the AMT substrate: task spawn/drain throughput, LCO
// reduction rate, parcel round-trips, parcel-coalescing fan-out, and
// discrete-event simulation rate — the runtime-overhead side of the paper's
// grain-size discussion (tasks of a few microseconds must not be swamped by
// scheduler costs).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/expansion_lco.hpp"
#include "kernels/kernel.hpp"
#include "runtime/net/transport.hpp"
#include "runtime/runtime.hpp"
#include "support/timer.hpp"

namespace {

using namespace amtfmm;

void BM_SpawnDrain(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  ThreadExecutor ex(1, 2);
  std::atomic<int> count{0};
  for (auto _ : state) {
    count.store(0);
    for (int i = 0; i < tasks; ++i) {
      Task t;
      t.fn = [&count] { count.fetch_add(1, std::memory_order_relaxed); };
      ex.spawn(std::move(t));
    }
    ex.drain();
    benchmark::DoNotOptimize(count.load());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SpawnDrain)->Arg(1000)->Arg(10000);

void BM_LcoReduction(benchmark::State& state) {
  ThreadExecutor ex(1, 2);
  const int inputs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SumLCO sum(ex, inputs);
    for (int i = 0; i < inputs; ++i) sum.add(1.0);
    benchmark::DoNotOptimize(sum.triggered());
  }
  state.SetItemsProcessed(state.iterations() * inputs);
}
BENCHMARK(BM_LcoReduction)->Arg(100)->Arg(10000);

void BM_ParcelRoundTrip(benchmark::State& state) {
  RuntimeConfig cfg;
  cfg.localities = 2;
  cfg.cores_per_locality = 1;
  Runtime rt(cfg);
  std::atomic<int> hits{0};
  const std::uint32_t action = rt.register_action(
      [&hits](Runtime&, const Parcel&) { hits.fetch_add(1); });
  for (auto _ : state) {
    Parcel p;
    p.action = action;
    p.target = GlobalAddress{1, 0};
    p.payload.resize(880);  // one multipole expansion
    rt.send_parcel(0, std::move(p));
    rt.drain();
  }
  benchmark::DoNotOptimize(hits.load());
}
BENCHMARK(BM_ParcelRoundTrip);

void BM_SimEventRate(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SimExecutor ex(4, 32, SchedPolicy::kWorkStealing, NetworkModel{});
    for (int i = 0; i < tasks; ++i) {
      Task t;
      t.locality = static_cast<std::uint32_t>(i % 4);
      t.items = {{kClsOther, 1e-6}};
      ex.spawn(std::move(t));
    }
    ex.drain();
    benchmark::DoNotOptimize(ex.now());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SimEventRate)->Arg(10000)->Arg(100000);

/// Coefficient-accumulating LCO with the ExpansionLCO reduction shape:
/// parses WireRecord kMain messages and adds into a vector under the lock.
class CoeffSinkLCO final : public LCO {
 public:
  CoeffSinkLCO(Executor& ex, int inputs) : LCO(ex, inputs) {}

 protected:
  void reduce(std::span<const std::byte> data) override {
    WireRecord h;
    std::memcpy(&h, data.data(), sizeof(h));
    const auto* in =
        reinterpret_cast<const cdouble*>(data.data() + sizeof(h));
    if (acc_.size() < h.count) acc_.resize(h.count);
    for (std::uint32_t i = 0; i < h.count; ++i) acc_[i] += in[i];
  }

 private:
  CoeffVec acc_;
};

// Fan-in: N set_input calls, each carrying one wire-record message with a
// coefficient payload, racing from every worker into one LCO — the
// contention shape of a high-in-degree expansion node.
void BM_LcoFanIn(benchmark::State& state) {
  const int inputs = 4096;
  const std::uint32_t coeffs = static_cast<std::uint32_t>(state.range(0));
  ThreadExecutor ex(1, 4);
  std::vector<std::byte> msg;
  const CoeffVec contribution(coeffs, cdouble(1.0, -1.0));
  append_record(msg, Operator::kM2M, PayloadSlot::kMain, 0,
                contribution.data(), coeffs * sizeof(cdouble), coeffs);
  for (auto _ : state) {
    CoeffSinkLCO sink(ex, inputs);
    for (int i = 0; i < inputs; ++i) {
      Task t;
      t.fn = [&sink, &msg] { sink.set_input(msg); };
      ex.spawn(std::move(t));
    }
    ex.drain();
    benchmark::DoNotOptimize(sink.triggered());
  }
  state.SetItemsProcessed(state.iterations() * inputs);
  state.SetBytesProcessed(state.iterations() * inputs *
                          static_cast<std::int64_t>(msg.size()));
}
BENCHMARK(BM_LcoFanIn)->Arg(1)->Arg(55)->Arg(220);

// Fan-out: one trigger spawning N registered continuations — the shape of
// a root expansion feeding a wide out-edge CSR.
void BM_LcoFanOut(benchmark::State& state) {
  const int outs = static_cast<int>(state.range(0));
  ThreadExecutor ex(1, 4);
  std::atomic<int> hits{0};
  for (auto _ : state) {
    hits.store(0);
    CoeffSinkLCO src(ex, 1);
    for (int i = 0; i < outs; ++i) {
      Task t;
      t.fn = [&hits] { hits.fetch_add(1, std::memory_order_relaxed); };
      src.register_continuation(std::move(t));
    }
    src.set_input(dep_record());
    ex.drain();
    benchmark::DoNotOptimize(hits.load());
  }
  state.SetItemsProcessed(state.iterations() * outs);
}
BENCHMARK(BM_LcoFanOut)->Arg(64)->Arg(1024);

// Serialize + deserialize cost of one expansion through the kernel wire
// codec — the per-parcel CPU price of the no-pointers-cross-localities
// rule.  Arg is the expansion order stand-in: accuracy digits.
void BM_ExpansionSerialize(benchmark::State& state) {
  auto kernel = make_kernel("laplace");
  kernel->setup(1.0, 4, static_cast<int>(state.range(0)));
  const int level = 2;
  CoeffVec m(kernel->m_count(level), cdouble(0.5, -0.25));
  std::vector<std::byte> wire(kernel->m_wire_bytes(level));
  CoeffVec back;
  for (auto _ : state) {
    kernel->pack_m(m, level, wire.data());
    kernel->unpack_m(wire, level, back);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
  state.counters["wire_bytes"] = static_cast<double>(wire.size());
  state.counters["full_bytes"] =
      static_cast<double>(m.size() * sizeof(cdouble));
}
BENCHMARK(BM_ExpansionSerialize)->Arg(3)->Arg(6);

CoalesceConfig coalesce_arg(std::int64_t on) {
  CoalesceConfig c;
  c.enabled = on != 0;
  return c;
}

// Many small parcels fanned out round-robin to the remote localities —
// the traffic shape of the engine's per-node edge parcels.  Arg(0)/Arg(1)
// toggle coalescing; the coalescing_factor counter reports how many
// parcels shared a wire message.
void BM_ParcelFanOutReal(benchmark::State& state) {
  constexpr int kParcels = 4096;
  RuntimeConfig cfg;
  cfg.localities = 4;
  cfg.cores_per_locality = 1;
  cfg.coalesce = coalesce_arg(state.range(0));
  Runtime rt(cfg);
  std::atomic<int> hits{0};
  const std::uint32_t action = rt.register_action(
      [&hits](Runtime&, const Parcel&) {
        hits.fetch_add(1, std::memory_order_relaxed);
      });
  for (auto _ : state) {
    for (int i = 0; i < kParcels; ++i) {
      Parcel p;
      p.action = action;
      p.target = GlobalAddress{static_cast<std::uint32_t>(1 + i % 3), 0};
      p.payload.resize(64);
      rt.send_parcel(0, std::move(p));
    }
    rt.drain();
    benchmark::DoNotOptimize(hits.load());
  }
  state.SetItemsProcessed(state.iterations() * kParcels);
  const CommStats s = rt.executor().comm_stats();
  state.counters["coalescing_factor"] = s.coalescing_factor();
}
BENCHMARK(BM_ParcelFanOutReal)->Arg(0)->Arg(1);

// The same fan-out on the simulated alpha-beta network: virtual_time shows
// the modelled win of paying one alpha per batch instead of one per parcel.
void BM_ParcelFanOutSim(benchmark::State& state) {
  constexpr int kParcels = 4096;
  double virtual_time = 0.0;
  double factor = 1.0;
  for (auto _ : state) {
    SimExecutor ex(4, 1, SchedPolicy::kFifo, NetworkModel{}, 1,
                   coalesce_arg(state.range(0)));
    for (int i = 0; i < kParcels; ++i) {
      Task t;
      t.fn = [] {};
      ex.send(0, static_cast<std::uint32_t>(1 + i % 3), 64, std::move(t));
    }
    virtual_time = ex.drain();
    factor = ex.comm_stats().coalescing_factor();
    benchmark::DoNotOptimize(virtual_time);
  }
  state.SetItemsProcessed(state.iterations() * kParcels);
  state.counters["virtual_time"] = virtual_time;
  state.counters["coalescing_factor"] = factor;
}
BENCHMARK(BM_ParcelFanOutSim)->Arg(0)->Arg(1);

// Console reporter that also collects (name, ns/op, counters) so a
// machine-readable summary can be written next to the console table.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<bench::BenchEntry> entries;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        bench::BenchEntry e{run.benchmark_name(), run.GetAdjustedRealTime(),
                            {}};
        for (const auto& [name, counter] : run.counters) {
          e.counters.emplace_back(name, counter.value);
        }
        entries.push_back(std::move(e));
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
};

// --- Socket transport micro-benchmark (--transport-json) -------------------
//
// Round-trip latency, one-way message rate, and bandwidth over a real
// two-rank socket mesh inside this process, plus an exact sent==received
// parity check.  Written as BENCH_transport.json and gated by
// scripts/check_bench_transport.py in CI.

net::NetConfig transport_cfg(std::uint32_t rank, const std::string& dir,
                             net::TransportKind kind) {
  net::NetConfig cfg;
  cfg.rank = rank;
  cfg.world = 2;
  cfg.kind = kind;
  cfg.dir = dir;
  cfg.connect_timeout_s = 10.0;
  return cfg;
}

net::WireBatch transport_batch(std::uint32_t src, std::size_t payload_bytes) {
  net::WireBatch b;
  b.src = src;
  b.dst = 1 - src;
  b.coalesced = false;
  net::WireParcel p;
  p.kind = 1;
  p.payload.resize(payload_bytes);
  b.parcels.push_back(std::move(p));
  return b;
}

/// Runs the ping-pong / streaming measurements over one transport kind and
/// appends result rows.  The echo logic lives in rank 1's batch callback,
/// so every round trip crosses the progress engines of both ranks.
void run_transport_bench(net::TransportKind kind, const std::string& kind_name,
                         std::vector<bench::BenchEntry>& out) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("amtfmm_bench_net_" + std::to_string(::getpid()) + "_" + kind_name);
  fs::create_directories(dir);

  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t echoes = 0;       // batches arriving back at rank 0
  std::uint64_t recvd1 = 0;       // batches arriving at rank 1
  std::uint64_t recvd1_bytes = 0; // summed parcel payload bytes at rank 1
  std::atomic<bool> echo_enabled{true};

  auto fail = [](const std::string& why) {
    std::fprintf(stderr, "transport bench: transport failed: %s\n",
                 why.c_str());
    std::exit(1);
  };
  auto ctrl = [](const net::ControlMsg&) {};

  net::NetTransport* t1_ptr = nullptr;
  net::NetTransport t0(
      transport_cfg(0, dir.string(), kind),
      [&](net::WireBatch&&) {
        std::lock_guard<std::mutex> lk(mu);
        ++echoes;
        cv.notify_all();
      },
      ctrl, fail);
  net::NetTransport t1(
      transport_cfg(1, dir.string(), kind),
      [&](net::WireBatch&& b) {
        {
          std::lock_guard<std::mutex> lk(mu);
          ++recvd1;
          recvd1_bytes += b.payload_bytes();
          cv.notify_all();
        }
        // Echo from the progress thread: post_control-style non-blocking
        // is not needed; the reply is one small frame.
        if (echo_enabled.load(std::memory_order_relaxed)) {
          t1_ptr->post_batch(0, transport_batch(1, 8));
        }
      },
      ctrl, fail);
  t1_ptr = &t1;
  std::thread peer([&] { t1.start(); });
  t0.start();
  peer.join();

  auto wait_until = [&](auto pred) {
    std::unique_lock<std::mutex> lk(mu);
    if (!cv.wait_for(lk, std::chrono::seconds(60), pred)) {
      std::fprintf(stderr, "transport bench: timed out\n");
      std::exit(1);
    }
  };

  // Round-trip latency: sequential ping-pong, one message in flight.
  const std::uint64_t kWarmup = 50, kRoundTrips = 2000;
  for (std::uint64_t i = 0; i < kWarmup; ++i) {
    t0.post_batch(1, transport_batch(0, 8));
    const std::uint64_t want = i + 1;
    wait_until([&] { return echoes >= want; });
  }
  Timer rtt_timer;
  for (std::uint64_t i = 0; i < kRoundTrips; ++i) {
    t0.post_batch(1, transport_batch(0, 8));
    const std::uint64_t want = kWarmup + i + 1;
    wait_until([&] { return echoes >= want; });
  }
  const double rtt_s = rtt_timer.seconds();
  {
    bench::BenchEntry e;
    e.name = "transport_roundtrip/" + kind_name;
    e.ns_per_op = rtt_s * 1e9 / static_cast<double>(kRoundTrips);
    e.counters.emplace_back("round_trips", static_cast<double>(kRoundTrips));
    out.push_back(std::move(e));
  }

  // One-way message rate: a burst of small batches against the window.
  echo_enabled.store(false);
  const std::uint64_t base = [&] {
    std::lock_guard<std::mutex> lk(mu);
    return recvd1;
  }();
  const std::uint64_t kMsgs = 20000;
  Timer rate_timer;
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    t0.post_batch(1, transport_batch(0, 32));
  }
  wait_until([&] { return recvd1 >= base + kMsgs; });
  const double rate_s = rate_timer.seconds();
  {
    bench::BenchEntry e;
    e.name = "transport_msg_rate/" + kind_name;
    e.ns_per_op = rate_s * 1e9 / static_cast<double>(kMsgs);
    e.counters.emplace_back("msgs_per_s",
                            static_cast<double>(kMsgs) / rate_s);
    out.push_back(std::move(e));
  }

  // Bandwidth: few large payloads.
  const std::uint64_t kBig = 200, kBigBytes = 256 * 1024;
  const std::uint64_t base2 = [&] {
    std::lock_guard<std::mutex> lk(mu);
    return recvd1;
  }();
  Timer bw_timer;
  for (std::uint64_t i = 0; i < kBig; ++i) {
    t0.post_batch(1, transport_batch(0, kBigBytes));
  }
  wait_until([&] { return recvd1 >= base2 + kBig; });
  const double bw_s = bw_timer.seconds();
  {
    bench::BenchEntry e;
    e.name = "transport_bandwidth/" + kind_name;
    e.ns_per_op = bw_s * 1e9 / static_cast<double>(kBig);
    e.counters.emplace_back(
        "bytes_per_s", static_cast<double>(kBig * kBigBytes) / bw_s);
    out.push_back(std::move(e));
  }

  // Parity: every posted frame was fully written and fully decoded, and
  // the logical payload bytes survived exactly (wire == sent invariant).
  t0.stop();
  t1.stop();
  const std::uint64_t sent_msgs = t0.stats().msgs_sent.load();
  const std::uint64_t sent_bytes =
      (kWarmup + kRoundTrips) * 8 + kMsgs * 32 + kBig * kBigBytes;
  {
    bench::BenchEntry e;
    e.name = "transport_parity/" + kind_name;
    e.ns_per_op = 0.0;
    e.counters.emplace_back("posted_payload_bytes",
                            static_cast<double>(sent_bytes));
    e.counters.emplace_back("recvd_payload_bytes",
                            static_cast<double>(recvd1_bytes));
    e.counters.emplace_back("sent_frames", static_cast<double>(sent_msgs));
    e.counters.emplace_back("recvd_frames", static_cast<double>(recvd1));
    out.push_back(std::move(e));
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace

// BENCHMARK_MAIN() plus a `--json <path>` flag: when given, a JSON array of
// {name, ns_per_op, counters...} records is written to <path> after the
// run.  A separate `--transport-json <path>` runs the socket-transport
// measurements and writes BENCH_transport.json-style rows.  Both flags are
// stripped before argv is handed to the benchmark library.
int main(int argc, char** argv) {
  std::string json_path;
  std::string transport_json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::string(argv[i]) == "--transport-json" && i + 1 < argc) {
      transport_json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!transport_json_path.empty()) {
    std::vector<bench::BenchEntry> rows;
    run_transport_bench(net::TransportKind::kUnix, "unix", rows);
    run_transport_bench(net::TransportKind::kTcp, "tcp", rows);
    if (!bench::write_bench_json(transport_json_path, rows)) {
      std::fprintf(stderr, "micro_runtime: cannot write %s\n",
                   transport_json_path.c_str());
      return 1;
    }
    for (const auto& r : rows) {
      std::printf("%-32s %12.0f ns/op\n", r.name.c_str(), r.ns_per_op);
    }
  }
  int filtered = static_cast<int>(args.size());
  benchmark::Initialize(&filtered, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered, args.data())) return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (!json_path.empty() &&
      !bench::write_bench_json(json_path, reporter.entries)) {
    std::fprintf(stderr, "micro_runtime: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
