// Reproduces Figure 4 of the paper: total utilization fraction f_k over 100
// uniform intervals of the evaluation, for 64-, 128- and 512-core runs of
// cube data with the Laplace kernel (2, 4 and 16 localities).  Shows the
// ramp-up, the ~90% plateau, and the trailing under-utilization dip whose
// relative width grows with core count — the paper's primary scaling
// diagnosis.

#include "../bench/common.hpp"

int main(int argc, char** argv) {
  using namespace amtfmm;
  using namespace amtfmm::bench;
  Cli cli("fig4_utilization: paper Figure 4 (total utilization fraction)");
  cli.add_flag("n", static_cast<std::int64_t>(500000),
               "points per ensemble (paper: 30M)");
  cli.add_flag("threshold", static_cast<std::int64_t>(60), "refinement threshold");
  cli.add_flag("intervals", static_cast<std::int64_t>(100), "time intervals M");
  cli.add_flag("json", std::string(),
               "write a machine-readable summary (incl. counters) to FILE");
  add_trace_out_flag(cli);
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.i64("n"));
  const int intervals = static_cast<int>(cli.i64("intervals"));
  Ensembles e = make_ensembles(Distribution::kCube, n, 11);

  EvalConfig cfg;
  cfg.threshold = static_cast<int>(cli.i64("threshold"));
  Evaluator eval(make_kernel("laplace"), cfg);

  const int core_counts[] = {64, 128, 512};
  std::vector<UtilizationProfile> profiles;
  std::vector<double> times;
  std::vector<CommStats> comms;
  std::vector<CounterSnapshot> snaps;
  SimResult largest;  // 512-core run kept for the --trace-out export
  for (const int cores : core_counts) {
    SimConfig sim;
    sim.localities = cores / 32;
    sim.cores_per_locality = 32;
    sim.cost = CostModel::paper("laplace");
    sim.coalesce.enabled = true;  // HPX-5 coalesces parcels per locality
    sim.trace = true;
    sim.counters = true;
    SimResult r = eval.simulate(e.sources, e.targets, sim);
    profiles.push_back(utilization(r.trace, 0.0, r.virtual_time, intervals,
                                   r.total_cores));
    times.push_back(r.virtual_time);
    comms.push_back(r.comm);
    snaps.push_back(r.counters);
    if (cores == core_counts[2]) largest = std::move(r);
  }

  print_header("Figure 4: total utilization fraction f_k per time interval k");
  std::printf("%zu source + %zu target points, cube, Laplace; intervals of "
              "the total evaluation time\n", n, n);
  std::printf("evaluation times: %.3f s (64 cores), %.3f s (128), %.3f s (512)\n",
              times[0], times[1], times[2]);
  std::printf("paper: 34.6 s / 17.6 s / 4.55 s for 30M points\n\n");
  std::printf("%6s %12s %12s %12s\n", "k", "f_k n=64", "f_k n=128", "f_k n=512");
  for (int k = 0; k < intervals; ++k) {
    std::printf("%6d %12.3f %12.3f %12.3f\n", k,
                profiles[0].total[static_cast<std::size_t>(k)],
                profiles[1].total[static_cast<std::size_t>(k)],
                profiles[2].total[static_cast<std::size_t>(k)]);
  }

  // Summary figures of merit matching the paper's narrative.
  std::printf("\n%10s %10s %12s %16s\n", "cores", "mean f_k", "plateau f_k",
              "dip width [%]");
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& f = profiles[i].total;
    double mean = 0;
    for (double v : f) mean += v;
    mean /= static_cast<double>(f.size());
    // Plateau: average of the middle half; dip width: trailing intervals
    // below 60% of the plateau, excluding the final wind-down interval.
    double plateau = 0;
    for (int k = intervals / 4; k < 3 * intervals / 4; ++k)
      plateau += f[static_cast<std::size_t>(k)];
    plateau /= static_cast<double>(intervals / 2);
    int dip = 0;
    for (int k = intervals - 2; k >= 0; --k) {
      if (f[static_cast<std::size_t>(k)] < 0.6 * plateau) {
        ++dip;
      } else if (k < 3 * intervals / 4) {
        break;
      }
    }
    std::printf("%10d %10.3f %12.3f %15d%%\n", core_counts[i], mean, plateau,
                100 * dip / intervals);
  }
  std::printf("\npaper: ~90%% plateau; the dip's relative width grows with "
              "locality count (the predominant scaling inefficiency).\n");

  // Interconnect traffic behind each run: how much the per-locality parcel
  // coalescing compressed the wire-message stream.
  std::printf("\n%10s %12s %12s %10s %14s\n", "cores", "parcels", "batches",
              "factor", "bytes [MB]");
  for (std::size_t i = 0; i < comms.size(); ++i) {
    const CommStats& c = comms[i];
    std::printf("%10d %12llu %12llu %10.2f %14.2f\n", core_counts[i],
                static_cast<unsigned long long>(c.parcels),
                static_cast<unsigned long long>(c.batches),
                c.coalescing_factor(),
                static_cast<double>(c.bytes) / 1e6);
  }

  // One coalescing-off run at the largest configuration: the network-time
  // cost of sending every parcel as its own message.
  {
    SimConfig sim;
    sim.localities = core_counts[2] / 32;
    sim.cores_per_locality = 32;
    sim.cost = CostModel::paper("laplace");
    const SimResult r = eval.simulate(e.sources, e.targets, sim);
    std::printf("\n512 cores without coalescing: %.3f s (vs %.3f s; "
                "%llu wire messages vs %llu)\n",
                r.virtual_time, times[2],
                static_cast<unsigned long long>(r.comm.batches),
                static_cast<unsigned long long>(comms[2].batches));
  }

  if (!export_trace_if_requested(cli, largest, 32)) return 1;

  if (!cli.str("json").empty()) {
    JsonWriter w;
    w.begin_object();
    w.kv("bench", "fig4_utilization");
    w.kv("n", static_cast<std::uint64_t>(n));
    w.kv("threshold", cli.i64("threshold"));
    w.kv("intervals", intervals);
    w.key("runs");
    w.begin_array();
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      w.begin_object();
      w.kv("cores", core_counts[i]);
      w.kv("virtual_time", times[i]);
      w.key("utilization");
      w.begin_array();
      for (double f : profiles[i].total) w.value(f);
      w.end_array();
      w.key("comm");
      append_comm_json(w, comms[i]);
      w.key("counters");
      snaps[i].append_json(w);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write_file(cli.str("json"))) {
      std::fprintf(stderr, "cannot write %s\n", cli.str("json").c_str());
      return 1;
    }
    std::printf("summary written to %s\n", cli.str("json").c_str());
  }
  return 0;
}
