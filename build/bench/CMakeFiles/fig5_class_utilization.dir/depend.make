# Empty dependencies file for fig5_class_utilization.
# This may be replaced when dependencies are built.
