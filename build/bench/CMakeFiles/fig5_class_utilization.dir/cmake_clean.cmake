file(REMOVE_RECURSE
  "CMakeFiles/fig5_class_utilization.dir/fig5_class_utilization.cpp.o"
  "CMakeFiles/fig5_class_utilization.dir/fig5_class_utilization.cpp.o.d"
  "fig5_class_utilization"
  "fig5_class_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_class_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
