file(REMOVE_RECURSE
  "CMakeFiles/table1_dag_nodes.dir/table1_dag_nodes.cpp.o"
  "CMakeFiles/table1_dag_nodes.dir/table1_dag_nodes.cpp.o.d"
  "table1_dag_nodes"
  "table1_dag_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dag_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
