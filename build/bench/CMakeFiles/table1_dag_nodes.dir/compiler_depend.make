# Empty compiler generated dependencies file for table1_dag_nodes.
# This may be replaced when dependencies are built.
