
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_dag_nodes.cpp" "bench/CMakeFiles/table1_dag_nodes.dir/table1_dag_nodes.cpp.o" "gcc" "bench/CMakeFiles/table1_dag_nodes.dir/table1_dag_nodes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/amtfmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/amtfmm_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/amtfmm_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/amtfmm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/amtfmm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/amtfmm_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amtfmm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
