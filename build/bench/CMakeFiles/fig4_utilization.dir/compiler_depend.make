# Empty compiler generated dependencies file for fig4_utilization.
# This may be replaced when dependencies are built.
