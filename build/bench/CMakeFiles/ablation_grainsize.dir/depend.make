# Empty dependencies file for ablation_grainsize.
# This may be replaced when dependencies are built.
