file(REMOVE_RECURSE
  "CMakeFiles/ablation_grainsize.dir/ablation_grainsize.cpp.o"
  "CMakeFiles/ablation_grainsize.dir/ablation_grainsize.cpp.o.d"
  "ablation_grainsize"
  "ablation_grainsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grainsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
