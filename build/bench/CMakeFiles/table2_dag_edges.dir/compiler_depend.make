# Empty compiler generated dependencies file for table2_dag_edges.
# This may be replaced when dependencies are built.
