file(REMOVE_RECURSE
  "CMakeFiles/table2_dag_edges.dir/table2_dag_edges.cpp.o"
  "CMakeFiles/table2_dag_edges.dir/table2_dag_edges.cpp.o.d"
  "table2_dag_edges"
  "table2_dag_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dag_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
