# Empty dependencies file for screened_coulomb.
# This may be replaced when dependencies are built.
