file(REMOVE_RECURSE
  "CMakeFiles/screened_coulomb.dir/screened_coulomb.cpp.o"
  "CMakeFiles/screened_coulomb.dir/screened_coulomb.cpp.o.d"
  "screened_coulomb"
  "screened_coulomb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screened_coulomb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
