file(REMOVE_RECURSE
  "CMakeFiles/gravity_plummer.dir/gravity_plummer.cpp.o"
  "CMakeFiles/gravity_plummer.dir/gravity_plummer.cpp.o.d"
  "gravity_plummer"
  "gravity_plummer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gravity_plummer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
