# Empty compiler generated dependencies file for gravity_plummer.
# This may be replaced when dependencies are built.
