file(REMOVE_RECURSE
  "CMakeFiles/amtfmm_support.dir/cli.cpp.o"
  "CMakeFiles/amtfmm_support.dir/cli.cpp.o.d"
  "libamtfmm_support.a"
  "libamtfmm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtfmm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
