file(REMOVE_RECURSE
  "libamtfmm_support.a"
)
