# Empty dependencies file for amtfmm_support.
# This may be replaced when dependencies are built.
