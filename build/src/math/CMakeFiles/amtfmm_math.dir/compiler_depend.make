# Empty compiler generated dependencies file for amtfmm_math.
# This may be replaced when dependencies are built.
