file(REMOVE_RECURSE
  "libamtfmm_math.a"
)
