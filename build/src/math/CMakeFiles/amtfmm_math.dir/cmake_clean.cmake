file(REMOVE_RECURSE
  "CMakeFiles/amtfmm_math.dir/bessel.cpp.o"
  "CMakeFiles/amtfmm_math.dir/bessel.cpp.o.d"
  "CMakeFiles/amtfmm_math.dir/gauss.cpp.o"
  "CMakeFiles/amtfmm_math.dir/gauss.cpp.o.d"
  "CMakeFiles/amtfmm_math.dir/planewave.cpp.o"
  "CMakeFiles/amtfmm_math.dir/planewave.cpp.o.d"
  "CMakeFiles/amtfmm_math.dir/rotation.cpp.o"
  "CMakeFiles/amtfmm_math.dir/rotation.cpp.o.d"
  "CMakeFiles/amtfmm_math.dir/solid.cpp.o"
  "CMakeFiles/amtfmm_math.dir/solid.cpp.o.d"
  "CMakeFiles/amtfmm_math.dir/sphere.cpp.o"
  "CMakeFiles/amtfmm_math.dir/sphere.cpp.o.d"
  "libamtfmm_math.a"
  "libamtfmm_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtfmm_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
