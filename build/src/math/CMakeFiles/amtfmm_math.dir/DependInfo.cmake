
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/bessel.cpp" "src/math/CMakeFiles/amtfmm_math.dir/bessel.cpp.o" "gcc" "src/math/CMakeFiles/amtfmm_math.dir/bessel.cpp.o.d"
  "/root/repo/src/math/gauss.cpp" "src/math/CMakeFiles/amtfmm_math.dir/gauss.cpp.o" "gcc" "src/math/CMakeFiles/amtfmm_math.dir/gauss.cpp.o.d"
  "/root/repo/src/math/planewave.cpp" "src/math/CMakeFiles/amtfmm_math.dir/planewave.cpp.o" "gcc" "src/math/CMakeFiles/amtfmm_math.dir/planewave.cpp.o.d"
  "/root/repo/src/math/rotation.cpp" "src/math/CMakeFiles/amtfmm_math.dir/rotation.cpp.o" "gcc" "src/math/CMakeFiles/amtfmm_math.dir/rotation.cpp.o.d"
  "/root/repo/src/math/solid.cpp" "src/math/CMakeFiles/amtfmm_math.dir/solid.cpp.o" "gcc" "src/math/CMakeFiles/amtfmm_math.dir/solid.cpp.o.d"
  "/root/repo/src/math/sphere.cpp" "src/math/CMakeFiles/amtfmm_math.dir/sphere.cpp.o" "gcc" "src/math/CMakeFiles/amtfmm_math.dir/sphere.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/amtfmm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/amtfmm_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
