# Empty compiler generated dependencies file for amtfmm_tree.
# This may be replaced when dependencies are built.
