file(REMOVE_RECURSE
  "libamtfmm_tree.a"
)
