file(REMOVE_RECURSE
  "CMakeFiles/amtfmm_tree.dir/lists.cpp.o"
  "CMakeFiles/amtfmm_tree.dir/lists.cpp.o.d"
  "CMakeFiles/amtfmm_tree.dir/tree.cpp.o"
  "CMakeFiles/amtfmm_tree.dir/tree.cpp.o.d"
  "libamtfmm_tree.a"
  "libamtfmm_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtfmm_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
