file(REMOVE_RECURSE
  "libamtfmm_geom.a"
)
