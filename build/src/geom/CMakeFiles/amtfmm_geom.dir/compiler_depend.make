# Empty compiler generated dependencies file for amtfmm_geom.
# This may be replaced when dependencies are built.
