file(REMOVE_RECURSE
  "CMakeFiles/amtfmm_geom.dir/distributions.cpp.o"
  "CMakeFiles/amtfmm_geom.dir/distributions.cpp.o.d"
  "libamtfmm_geom.a"
  "libamtfmm_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtfmm_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
