file(REMOVE_RECURSE
  "CMakeFiles/amtfmm_kernels.dir/kernel.cpp.o"
  "CMakeFiles/amtfmm_kernels.dir/kernel.cpp.o.d"
  "CMakeFiles/amtfmm_kernels.dir/laplace.cpp.o"
  "CMakeFiles/amtfmm_kernels.dir/laplace.cpp.o.d"
  "CMakeFiles/amtfmm_kernels.dir/yukawa.cpp.o"
  "CMakeFiles/amtfmm_kernels.dir/yukawa.cpp.o.d"
  "libamtfmm_kernels.a"
  "libamtfmm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtfmm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
