
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/kernel.cpp" "src/kernels/CMakeFiles/amtfmm_kernels.dir/kernel.cpp.o" "gcc" "src/kernels/CMakeFiles/amtfmm_kernels.dir/kernel.cpp.o.d"
  "/root/repo/src/kernels/laplace.cpp" "src/kernels/CMakeFiles/amtfmm_kernels.dir/laplace.cpp.o" "gcc" "src/kernels/CMakeFiles/amtfmm_kernels.dir/laplace.cpp.o.d"
  "/root/repo/src/kernels/yukawa.cpp" "src/kernels/CMakeFiles/amtfmm_kernels.dir/yukawa.cpp.o" "gcc" "src/kernels/CMakeFiles/amtfmm_kernels.dir/yukawa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/amtfmm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/amtfmm_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/amtfmm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
