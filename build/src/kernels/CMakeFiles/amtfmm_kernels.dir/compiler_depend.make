# Empty compiler generated dependencies file for amtfmm_kernels.
# This may be replaced when dependencies are built.
