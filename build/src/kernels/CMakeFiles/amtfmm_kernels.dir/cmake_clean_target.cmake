file(REMOVE_RECURSE
  "libamtfmm_kernels.a"
)
