file(REMOVE_RECURSE
  "libamtfmm_rt.a"
)
