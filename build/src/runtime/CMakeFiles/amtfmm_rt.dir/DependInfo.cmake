
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/lco.cpp" "src/runtime/CMakeFiles/amtfmm_rt.dir/lco.cpp.o" "gcc" "src/runtime/CMakeFiles/amtfmm_rt.dir/lco.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/amtfmm_rt.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/amtfmm_rt.dir/runtime.cpp.o.d"
  "/root/repo/src/runtime/sim_executor.cpp" "src/runtime/CMakeFiles/amtfmm_rt.dir/sim_executor.cpp.o" "gcc" "src/runtime/CMakeFiles/amtfmm_rt.dir/sim_executor.cpp.o.d"
  "/root/repo/src/runtime/thread_executor.cpp" "src/runtime/CMakeFiles/amtfmm_rt.dir/thread_executor.cpp.o" "gcc" "src/runtime/CMakeFiles/amtfmm_rt.dir/thread_executor.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/runtime/CMakeFiles/amtfmm_rt.dir/trace.cpp.o" "gcc" "src/runtime/CMakeFiles/amtfmm_rt.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/amtfmm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/amtfmm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/amtfmm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/amtfmm_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
