# Empty dependencies file for amtfmm_rt.
# This may be replaced when dependencies are built.
