file(REMOVE_RECURSE
  "CMakeFiles/amtfmm_rt.dir/lco.cpp.o"
  "CMakeFiles/amtfmm_rt.dir/lco.cpp.o.d"
  "CMakeFiles/amtfmm_rt.dir/runtime.cpp.o"
  "CMakeFiles/amtfmm_rt.dir/runtime.cpp.o.d"
  "CMakeFiles/amtfmm_rt.dir/sim_executor.cpp.o"
  "CMakeFiles/amtfmm_rt.dir/sim_executor.cpp.o.d"
  "CMakeFiles/amtfmm_rt.dir/thread_executor.cpp.o"
  "CMakeFiles/amtfmm_rt.dir/thread_executor.cpp.o.d"
  "CMakeFiles/amtfmm_rt.dir/trace.cpp.o"
  "CMakeFiles/amtfmm_rt.dir/trace.cpp.o.d"
  "libamtfmm_rt.a"
  "libamtfmm_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtfmm_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
