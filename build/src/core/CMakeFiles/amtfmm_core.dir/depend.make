# Empty dependencies file for amtfmm_core.
# This may be replaced when dependencies are built.
