file(REMOVE_RECURSE
  "CMakeFiles/amtfmm_core.dir/cost_model.cpp.o"
  "CMakeFiles/amtfmm_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/amtfmm_core.dir/dag.cpp.o"
  "CMakeFiles/amtfmm_core.dir/dag.cpp.o.d"
  "CMakeFiles/amtfmm_core.dir/engine.cpp.o"
  "CMakeFiles/amtfmm_core.dir/engine.cpp.o.d"
  "CMakeFiles/amtfmm_core.dir/evaluator.cpp.o"
  "CMakeFiles/amtfmm_core.dir/evaluator.cpp.o.d"
  "libamtfmm_core.a"
  "libamtfmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amtfmm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
