file(REMOVE_RECURSE
  "libamtfmm_core.a"
)
