file(REMOVE_RECURSE
  "CMakeFiles/lists_test.dir/lists_test.cpp.o"
  "CMakeFiles/lists_test.dir/lists_test.cpp.o.d"
  "lists_test"
  "lists_test.pdb"
  "lists_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
