# CMake generated Testfile for 
# Source directory: /root/repo/tests/tree
# Build directory: /root/repo/build/tests/tree
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tree/tree_test[1]_include.cmake")
include("/root/repo/build/tests/tree/lists_test[1]_include.cmake")
