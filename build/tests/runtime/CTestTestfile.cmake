# CMake generated Testfile for 
# Source directory: /root/repo/tests/runtime
# Build directory: /root/repo/build/tests/runtime
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/runtime/trace_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/executor_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/lco_test[1]_include.cmake")
