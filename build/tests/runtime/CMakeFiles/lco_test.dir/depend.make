# Empty dependencies file for lco_test.
# This may be replaced when dependencies are built.
