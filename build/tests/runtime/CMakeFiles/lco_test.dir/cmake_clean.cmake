file(REMOVE_RECURSE
  "CMakeFiles/lco_test.dir/lco_test.cpp.o"
  "CMakeFiles/lco_test.dir/lco_test.cpp.o.d"
  "lco_test"
  "lco_test.pdb"
  "lco_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lco_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
