# CMake generated Testfile for 
# Source directory: /root/repo/tests/math
# Build directory: /root/repo/build/tests/math
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/math/special_test[1]_include.cmake")
include("/root/repo/build/tests/math/solid_test[1]_include.cmake")
include("/root/repo/build/tests/math/rotation_test[1]_include.cmake")
include("/root/repo/build/tests/math/planewave_test[1]_include.cmake")
