file(REMOVE_RECURSE
  "CMakeFiles/planewave_test.dir/planewave_test.cpp.o"
  "CMakeFiles/planewave_test.dir/planewave_test.cpp.o.d"
  "planewave_test"
  "planewave_test.pdb"
  "planewave_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planewave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
