# Empty dependencies file for planewave_test.
# This may be replaced when dependencies are built.
