#pragma once

#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace amtfmm {

/// n! as a double.  Exact for n <= 22, adequate to double precision for the
/// expansion orders used here (p <= ~30).
inline double factorial(int n) {
  static const std::vector<double> table = [] {
    std::vector<double> t(171);
    t[0] = 1.0;
    for (int i = 1; i < 171; ++i) t[i] = t[i - 1] * i;
    return t;
  }();
  AMTFMM_ASSERT(n >= 0 && n < 171);
  return table[static_cast<std::size_t>(n)];
}

/// (2n-1)!! with the convention (-1)!! = 1.
inline double double_factorial_odd(int n) {
  double r = 1.0;
  for (int k = 2 * n - 1; k > 1; k -= 2) r *= k;
  return r;
}

/// Associated Legendre functions P_n^m(x) without the Condon-Shortley phase,
/// for 0 <= m <= n <= p, at real argument x.
///
/// Two regimes share the same recurrences:
///  - |x| <= 1 (angular use):  P_m^m = (2m-1)!! (1-x^2)^{m/2}
///  - x  >  1 (Gegenbauer/plane-wave use, e.g. P_n^m(mu/kappa) in the Yukawa
///    exponential expansion): P_m^m = (2m-1)!! (x^2-1)^{m/2}
///
/// Output is written row-major into `out` with layout out[n*(n+1)/2 + m].
inline void legendre_table(int p, double x, std::vector<double>& out) {
  const std::size_t count = static_cast<std::size_t>((p + 1) * (p + 2) / 2);
  out.resize(count);
  auto at = [&](int n, int m) -> double& {
    return out[static_cast<std::size_t>(n * (n + 1) / 2 + m)];
  };
  const double s2 = (x > 1.0) ? (x * x - 1.0) : std::max(0.0, 1.0 - x * x);
  const double s = std::sqrt(s2);
  at(0, 0) = 1.0;
  for (int m = 1; m <= p; ++m) {
    at(m, m) = at(m - 1, m - 1) * (2 * m - 1) * s;
  }
  for (int m = 0; m < p; ++m) {
    at(m + 1, m) = x * (2 * m + 1) * at(m, m);
    for (int n = m + 2; n <= p; ++n) {
      at(n, m) = (x * (2 * n - 1) * at(n - 1, m) - (n + m - 1) * at(n - 2, m)) /
                 (n - m);
    }
  }
}

/// Index into a triangular (n, m>=0) table laid out as in legendre_table.
inline std::size_t tri_index(int n, int m) {
  return static_cast<std::size_t>(n * (n + 1) / 2 + m);
}

}  // namespace amtfmm
