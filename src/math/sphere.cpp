#include "math/sphere.hpp"

#include <cmath>
#include <numbers>

#include "math/gauss.hpp"
#include "math/special.hpp"
#include "support/error.hpp"
#include "support/scratch_arena.hpp"

namespace amtfmm {

void angular_basis(int p, const Vec3& dir, CoeffVec& out) {
  out.assign(sq_count(p), cdouble{});
  const Spherical s = to_spherical(dir);
  auto& arena = ScratchArena::local();
  auto leg_lease = arena.reals();
  auto phase_lease = arena.coeffs();
  std::vector<double>& leg = *leg_lease;
  legendre_table(p, s.cos_theta, leg);
  std::vector<cdouble>& phase = *phase_lease;
  phase.assign(static_cast<std::size_t>(p) + 1, cdouble{});
  phase[0] = 1.0;
  const cdouble e{std::cos(s.phi), std::sin(s.phi)};
  for (int m = 1; m <= p; ++m) phase[static_cast<std::size_t>(m)] = phase[static_cast<std::size_t>(m - 1)] * e;
  for (int n = 0; n <= p; ++n) {
    for (int m = 0; m <= n; ++m) {
      const double pv = leg[tri_index(n, m)];
      out[sq_index(n, m)] = pv * phase[static_cast<std::size_t>(m)];
      if (m > 0) out[sq_index(n, -m)] = pv * std::conj(phase[static_cast<std::size_t>(m)]);
    }
  }
}

SphereRule::SphereRule(int band) : band_(band) {
  AMTFMM_ASSERT(band >= 0);
  const int ntheta = band + 1;
  const int nphi = 2 * band + 2;
  const Quadrature gl = gauss_legendre(ntheta);
  dirs_.reserve(static_cast<std::size_t>(ntheta) * nphi);
  w_.reserve(dirs_.capacity());
  for (int i = 0; i < ntheta; ++i) {
    const double ct = gl.x[static_cast<std::size_t>(i)];
    const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
    for (int j = 0; j < nphi; ++j) {
      const double phi = 2.0 * std::numbers::pi * j / nphi;
      dirs_.push_back({st * std::cos(phi), st * std::sin(phi), ct});
      w_.push_back(gl.w[static_cast<std::size_t>(i)] * 2.0 * std::numbers::pi / nphi);
    }
  }
}

void SphereRule::prepare(int pmax) const {
  AMTFMM_ASSERT_MSG(pmax <= band_, "projection order exceeds rule band");
  if (table_p_ == pmax) return;
  // Build the projection table: conj(A_n^m(dir_q)) * w_q / N_nm.
  table_p_ = pmax;
  const std::size_t nc = sq_count(pmax);
  table_.assign(dirs_.size() * nc, cdouble{});
  CoeffVec basis;
  for (std::size_t q = 0; q < dirs_.size(); ++q) {
    angular_basis(pmax, dirs_[q], basis);
    for (int n = 0; n <= pmax; ++n) {
      for (int m = -n; m <= n; ++m) {
        const double nnm = 4.0 * std::numbers::pi / (2 * n + 1) *
                           factorial(n + std::abs(m)) /
                           factorial(n - std::abs(m));
        table_[q * nc + sq_index(n, m)] =
            std::conj(basis[sq_index(n, m)]) * (w_[q] / nnm);
      }
    }
  }
}

void SphereRule::project(std::span<const cdouble> samples, int pmax,
                         CoeffVec& out) const {
  AMTFMM_ASSERT(samples.size() == dirs_.size());
  prepare(pmax);
  const std::size_t nc = sq_count(pmax);
  out.assign(nc, cdouble{});
  for (std::size_t q = 0; q < dirs_.size(); ++q) {
    const cdouble f = samples[q];
    const cdouble* row = &table_[q * nc];
    for (std::size_t i = 0; i < nc; ++i) out[i] += f * row[i];
  }
}

}  // namespace amtfmm
