#include "math/planewave.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "math/bessel.hpp"
#include "math/gauss.hpp"
#include "math/special.hpp"
#include "support/error.hpp"

namespace amtfmm {
namespace {

constexpr double kZMin = 1.0;           // validity range in box units
constexpr double kRhoMax = 5.6568542494923806;  // 4 sqrt 2

/// Estimated relative error of an n-point Gauss-Legendre rule applied to an
/// oscillation with half-width phase s (standard analytic bound shape).
double gl_osc_error(int n, double s) {
  if (2 * n >= 170) return 0.0;
  return std::pow(s, 2 * n) / factorial(2 * n);
}

}  // namespace

PlaneWaveQuadrature make_planewave_quadrature(double eps, double kappa) {
  AMTFMM_ASSERT(eps > 0.0 && eps < 0.1);
  AMTFMM_ASSERT(kappa >= 0.0);
  PlaneWaveQuadrature q;
  q.kappa = kappa;
  q.eps = eps;

  // Truncation: contributions beyond lambda_max are bounded by
  // e^{-mu(lambda) zmin}; keep them below eps/100.
  const double decay_budget = std::log(100.0 / eps);
  if (kappa >= decay_budget) {
    // Screening alone kills the far field at one box separation; an empty
    // expansion is the correct (and GH02-consistent) limit.
    return q;
  }
  const double lambda_max =
      std::sqrt(decay_budget * decay_budget - kappa * kappa);
  const int npanel = std::max(1, static_cast<int>(std::ceil(lambda_max)));
  const double width = lambda_max / npanel;

  // Pass 1: lambda nodes from per-panel Gauss-Legendre rules whose order is
  // chosen against the J0 oscillation, with the exponential amplitude decay
  // relaxing the tolerance of later panels.
  for (int pnl = 0; pnl < npanel; ++pnl) {
    const double a = pnl * width;
    const double b = a + width;
    const double mu_a = std::sqrt(a * a + kappa * kappa);
    const double amp = std::exp(-mu_a * kZMin);
    if (amp < 0.01 * eps) break;  // the rest of the tail is negligible
    // Root-sum-square budget across panels: individual panel errors are
    // oscillatory and do not add coherently.
    const double tol =
        std::min(1.0, 0.3 * eps / (amp * std::sqrt(static_cast<double>(npanel))));
    const double s = 0.5 * width * kRhoMax;  // half-width phase
    int order = 3;
    while (order < 16 && gl_osc_error(order, s) > tol) ++order;
    const Quadrature gl = gauss_legendre(order, a, b);
    for (int i = 0; i < order; ++i) {
      const double lam = gl.x[static_cast<std::size_t>(i)];
      const double mu = std::sqrt(lam * lam + kappa * kappa);
      q.lambda.push_back(lam);
      q.mu.push_back(mu);
      q.weight.push_back(gl.w[static_cast<std::size_t>(i)] * lam /
                         std::max(mu, 1e-300));
    }
  }
  q.count = static_cast<int>(q.lambda.size());

  // Pass 2: angular counts.  The M-point trapezoid rule for the alpha
  // integral has error ~ 2 J_M(lambda rho); size M so the weighted sum of
  // these stays below eps/4.
  std::vector<double> jtab;
  for (int k = 0; k < q.count; ++k) {
    const double x = q.lambda[static_cast<std::size_t>(k)] * kRhoMax;
    const double amp = q.weight[static_cast<std::size_t>(k)] *
                       std::exp(-q.mu[static_cast<std::size_t>(k)] * kZMin);
    const double tol =
        0.4 * eps /
        (std::max(amp, 1e-300) * std::sqrt(static_cast<double>(std::max(1, q.count))));
    const int nmax = static_cast<int>(x) + 60;
    bessel_j(nmax, x, jtab);
    int m = 4;
    while (m + 1 < nmax &&
           std::abs(jtab[static_cast<std::size_t>(m)]) +
                   std::abs(jtab[static_cast<std::size_t>(m + 1)]) >
               tol) {
      m += 2;
    }
    q.m_count.push_back(m);
    q.offset.push_back(q.total);
    q.total += static_cast<std::size_t>(m);
  }

  // Angular node tables.
  q.cos_alpha.resize(q.total);
  q.sin_alpha.resize(q.total);
  for (int k = 0; k < q.count; ++k) {
    const int mk = q.m_count[static_cast<std::size_t>(k)];
    for (int j = 0; j < mk; ++j) {
      const double alpha = 2.0 * std::numbers::pi * j / mk;
      q.cos_alpha[q.offset[static_cast<std::size_t>(k)] + static_cast<std::size_t>(j)] = std::cos(alpha);
      q.sin_alpha[q.offset[static_cast<std::size_t>(k)] + static_cast<std::size_t>(j)] = std::sin(alpha);
    }
  }
  return q;
}

double planewave_eval(const PlaneWaveQuadrature& q, double x, double y,
                      double z) {
  double phi = 0.0;
  for (int k = 0; k < q.count; ++k) {
    const int mk = q.m_count[static_cast<std::size_t>(k)];
    const std::size_t off = q.offset[static_cast<std::size_t>(k)];
    double ang = 0.0;
    for (int j = 0; j < mk; ++j) {
      ang += std::cos(q.lambda[static_cast<std::size_t>(k)] *
                      (x * q.cos_alpha[off + static_cast<std::size_t>(j)] +
                       y * q.sin_alpha[off + static_cast<std::size_t>(j)]));
    }
    // The 1/(2 pi) prefactor of the Sommerfeld identity cancels against the
    // 2 pi of the alpha integral once the trapezoid average replaces it.
    phi += q.weight[static_cast<std::size_t>(k)] *
           std::exp(-q.mu[static_cast<std::size_t>(k)] * z) * ang / mk;
  }
  return phi;
}

}  // namespace amtfmm
