#include "math/bessel.hpp"

#include <cmath>
#include <numbers>

#include "math/special.hpp"
#include "support/error.hpp"

namespace amtfmm {

void sph_bessel_i(int p, double x, std::vector<double>& out) {
  out.assign(static_cast<std::size_t>(p) + 1, 0.0);
  AMTFMM_ASSERT(x >= 0.0 && x < 600.0);
  if (x < 1e-8) {
    // i_n(x) ~ x^n / (2n+1)!! near zero.
    double xn = 1.0;
    for (int n = 0; n <= p; ++n) {
      out[static_cast<std::size_t>(n)] = xn / double_factorial_odd(n + 1);
      xn *= x;
    }
    return;
  }
  // Miller's algorithm: downward recurrence from well above p, normalized
  // against the analytically known i_0 = sinh(x)/x.
  const int start = p + 16 + static_cast<int>(x);
  std::vector<double> t(static_cast<std::size_t>(start) + 2, 0.0);
  t[static_cast<std::size_t>(start)] = 1e-30;
  for (int n = start; n >= 1; --n) {
    t[static_cast<std::size_t>(n - 1)] =
        t[static_cast<std::size_t>(n + 1)] + (2 * n + 1) / x * t[static_cast<std::size_t>(n)];
    if (std::abs(t[static_cast<std::size_t>(n - 1)]) > 1e270) {
      for (auto& v : t) v *= 1e-270;
    }
  }
  const double scale = (std::sinh(x) / x) / t[0];
  for (int n = 0; n <= p; ++n) {
    out[static_cast<std::size_t>(n)] = t[static_cast<std::size_t>(n)] * scale;
  }
}

void sph_bessel_k(int p, double x, std::vector<double>& out) {
  out.assign(static_cast<std::size_t>(p) + 1, 0.0);
  AMTFMM_ASSERT(x > 0.0);
  const double k0 = 0.5 * std::numbers::pi * std::exp(-x) / x;
  out[0] = k0;
  if (p == 0) return;
  out[1] = k0 * (1.0 + 1.0 / x);
  for (int n = 2; n <= p; ++n) {
    // k_n = k_{n-2} + (2n-1)/x k_{n-1}  (upward is stable for k)
    out[static_cast<std::size_t>(n)] =
        out[static_cast<std::size_t>(n - 2)] +
        (2 * n - 1) / x * out[static_cast<std::size_t>(n - 1)];
  }
}

void bessel_j(int nmax, double x, std::vector<double>& out) {
  out.assign(static_cast<std::size_t>(nmax) + 1, 0.0);
  if (x < 1e-12) {
    out[0] = 1.0;
    return;
  }
  // Downward recurrence with the sum rule J_0 + 2 sum_{even n>0} J_n = 1.
  const int start = nmax + 20 + static_cast<int>(1.3 * x);
  std::vector<double> j(static_cast<std::size_t>(start) + 2, 0.0);
  j[static_cast<std::size_t>(start)] = 1e-30;
  for (int n = start; n >= 1; --n) {
    j[static_cast<std::size_t>(n - 1)] =
        (2.0 * n) / x * j[static_cast<std::size_t>(n)] - j[static_cast<std::size_t>(n + 1)];
    if (std::abs(j[static_cast<std::size_t>(n - 1)]) > 1e270) {
      for (auto& v : j) v *= 1e-270;
    }
  }
  double norm = j[0];
  for (int n = 2; n <= start; n += 2) norm += 2.0 * j[static_cast<std::size_t>(n)];
  for (int n = 0; n <= nmax; ++n) {
    out[static_cast<std::size_t>(n)] = j[static_cast<std::size_t>(n)] / norm;
  }
}

}  // namespace amtfmm
