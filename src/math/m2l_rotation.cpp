#include "math/m2l_rotation.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <tuple>

#include "support/error.hpp"
#include "support/scratch_arena.hpp"

namespace amtfmm {
namespace {

constexpr int kMaxOffset = 3;
constexpr int kLutSide = 2 * kMaxOffset + 1;

int lut_index(int x, int y, int z) {
  return (x + kMaxOffset) * kLutSide * kLutSide + (y + kMaxOffset) * kLutSide +
         (z + kMaxOffset);
}

}  // namespace

M2LRotationSet::M2LRotationSet(int p) : p_(p) {
  lut_.assign(kLutSide * kLutSide * kLutSide, -1);
  // Theta classes keyed by the exact rational (sign(nu_z) * nu_z^2 / |nu|^2)
  // in lowest terms, so offsets sharing a polar angle share one transform
  // pair regardless of azimuth.
  std::map<std::tuple<int, int, int>, int> theta_ix;
  std::map<int, int> dist_ix;  // |nu|^2 -> dist class
  for (int x = -kMaxOffset; x <= kMaxOffset; ++x) {
    for (int y = -kMaxOffset; y <= kMaxOffset; ++y) {
      for (int z = -kMaxOffset; z <= kMaxOffset; ++z) {
        const int cheb = std::max({std::abs(x), std::abs(y), std::abs(z)});
        if (cheb < 2) continue;  // adjacent boxes never take an M2L edge
        const int n2 = x * x + y * y + z * z;
        const int g = std::gcd(z * z, n2);
        const auto tkey = std::make_tuple((z > 0) - (z < 0), z * z / g, n2 / g);
        auto [tit, tnew] = theta_ix.try_emplace(
            tkey, static_cast<int>(thetas_.size()));
        if (tnew) {
          const double norm = std::sqrt(static_cast<double>(n2));
          const double ct = z / norm;
          const double st = std::sqrt(static_cast<double>(x * x + y * y)) / norm;
          const Mat3 ry = rotation_y(ct, -st);  // R_y(-theta)
          thetas_.emplace_back(AngularTransform(p, ry),
                               AngularTransform(p, ry.transpose()));
        }
        auto [dit, dnew] =
            dist_ix.try_emplace(n2, static_cast<int>(dists_.size()));
        if (dnew) dists_.push_back(std::sqrt(static_cast<double>(n2)));
        const double rxy = std::sqrt(static_cast<double>(x * x + y * y));
        const cdouble phase =
            (rxy > 0.0) ? cdouble{x / rxy, y / rxy} : cdouble{1.0, 0.0};
        lut_[static_cast<std::size_t>(lut_index(x, y, z))] =
            static_cast<int>(dirs_.size());
        dirs_.push_back({tit->second, dit->second, phase});
      }
    }
  }
}

const M2LDirection* M2LRotationSet::find(const Vec3& t, double box_size) const {
  if (p_ < 0) return nullptr;
  const double inv_w = 1.0 / box_size;
  const double fx = t.x * inv_w, fy = t.y * inv_w, fz = t.z * inv_w;
  const long x = std::lround(fx), y = std::lround(fy), z = std::lround(fz);
  constexpr double kTol = 1e-6;  // box units
  if (std::abs(fx - x) > kTol || std::abs(fy - y) > kTol ||
      std::abs(fz - z) > kTol) {
    return nullptr;
  }
  if (std::abs(x) > kMaxOffset || std::abs(y) > kMaxOffset ||
      std::abs(z) > kMaxOffset) {
    return nullptr;
  }
  const int ix = lut_[static_cast<std::size_t>(lut_index(
      static_cast<int>(x), static_cast<int>(y), static_cast<int>(z)))];
  return (ix >= 0) ? &dirs_[static_cast<std::size_t>(ix)] : nullptr;
}

void M2LRotationSet::rotate_forward(const M2LDirection& dir,
                                    const CoeffVec& in,
                                    const std::vector<double>& g, int s,
                                    CoeffVec& out) const {
  AMTFMM_ASSERT(in.size() == sq_count(p_));
  // E(Q) = E(R_z(-phi)) E(R_y(-theta)) and E(R_z(-phi)) is the diagonal
  // e^{i m phi}, so pre-phase the input (at the basis azimuthal index s*m)
  // and apply the shared polar transform.
  auto lease = ScratchArena::local().coeffs();
  CoeffVec& tmp = *lease;
  tmp.resize(in.size());
  const cdouble ph = dir.phase;
  cdouble pw{1.0, 0.0};  // phase^{s*m} for the current m >= 0
  for (int m = 0; m <= p_; ++m) {
    if (m > 0) pw *= (s > 0) ? ph : std::conj(ph);
    const cdouble pn = std::conj(pw);
    for (int n = m; n <= p_; ++n) {
      tmp[sq_index(n, m)] = in[sq_index(n, m)] * pw;
      if (m > 0) tmp[sq_index(n, -m)] = in[sq_index(n, -m)] * pn;
    }
  }
  thetas_[static_cast<std::size_t>(dir.theta_class)].first.apply(tmp, g, s,
                                                                 out);
}

void M2LRotationSet::rotate_inverse(const M2LDirection& dir,
                                    const CoeffVec& in,
                                    const std::vector<double>& g, int s,
                                    CoeffVec& out) const {
  AMTFMM_ASSERT(in.size() == sq_count(p_));
  // E(Q^T) = E(R_y(theta)) E(R_z(phi)): polar transform, then the diagonal
  // post-phase e^{-i m' phi} at the basis azimuthal index s*m'.
  thetas_[static_cast<std::size_t>(dir.theta_class)].second.apply(in, g, s,
                                                                  out);
  const cdouble ph = dir.phase;
  cdouble pw{1.0, 0.0};  // phase^{-s*m'} for the current m' >= 0
  for (int m = 1; m <= p_; ++m) {
    pw *= (s > 0) ? std::conj(ph) : ph;
    const cdouble pn = std::conj(pw);
    for (int n = m; n <= p_; ++n) {
      out[sq_index(n, m)] *= pw;
      out[sq_index(n, -m)] *= pn;
    }
  }
}

}  // namespace amtfmm
