#pragma once

#include <cstddef>
#include <vector>

namespace amtfmm {

/// Discretization of the Sommerfeld plane-wave representation
///
///   e^{-kappa R}/R = (1/2pi) int_0^inf (lam/mu) e^{-mu z}
///                    int_0^{2pi} e^{i lam (x cos a + y sin a)} da dlam,
///   mu = sqrt(lam^2 + kappa^2),  R = sqrt(x^2+y^2+z^2),  z > 0,
///
/// valid (to tolerance eps) over the merge-and-shift geometry z in [1, 4],
/// rho = sqrt(x^2+y^2) in [0, 4 sqrt 2], in units of the box size.  kappa = 0
/// gives the Laplace kernel 1/R.  This is the mathematical foundation of the
/// intermediate (exponential) expansions: the "I" nodes of the paper's DAG.
///
/// Nodes are generated at startup from panel Gauss-Legendre rules in lambda
/// with adaptively chosen trapezoid counts in alpha (see DESIGN.md: this is
/// our substitution for the published generalized-Gaussian tables; it meets
/// the same tolerance with more terms).
struct PlaneWaveQuadrature {
  int count = 0;                    ///< number of lambda nodes s
  std::vector<double> lambda;       ///< lambda_k (box-size units)
  std::vector<double> mu;           ///< sqrt(lambda_k^2 + kappa^2)
  std::vector<double> weight;      ///< w_k * lambda_k / mu_k  (combined weight)
  std::vector<int> m_count;        ///< angular counts M_k
  std::vector<std::size_t> offset; ///< start of node k's angular slots
  std::size_t total = 0;           ///< sum_k M_k = expansion length
  double kappa = 0.0;              ///< kappa in box-size units
  double eps = 0.0;                ///< target tolerance

  /// cos/sin tables of alpha_{k,j} = 2 pi j / M_k, laid out per offset.
  std::vector<double> cos_alpha;
  std::vector<double> sin_alpha;
};

/// Builds a quadrature for tolerance eps and (box-size-scaled) kappa.
/// kappa = 0 selects the Laplace kernel.  The Yukawa kernel calls this per
/// tree level (kappa * box_size changes with depth), which is exactly the
/// paper's "the length of the intermediate expansion depends on the depth".
PlaneWaveQuadrature make_planewave_quadrature(double eps, double kappa);

/// Direct evaluation of the discretized representation at (x, y, z) in
/// box-size units; used by tests to verify the quadrature against the
/// analytic kernel over the valid region.
double planewave_eval(const PlaneWaveQuadrature& q, double x, double y,
                      double z);

}  // namespace amtfmm
