#pragma once

#include <array>

#include "geom/vec3.hpp"
#include "math/coeffs.hpp"

namespace amtfmm {

/// 3x3 orthogonal matrix (rotation or reflection) acting on Vec3.
struct Mat3 {
  std::array<double, 9> a{1, 0, 0, 0, 1, 0, 0, 0, 1};

  Vec3 operator*(const Vec3& v) const {
    return {a[0] * v.x + a[1] * v.y + a[2] * v.z,
            a[3] * v.x + a[4] * v.y + a[5] * v.z,
            a[6] * v.x + a[7] * v.y + a[8] * v.z};
  }
  Mat3 transpose() const {
    return Mat3{{a[0], a[3], a[6], a[1], a[4], a[7], a[2], a[5], a[8]}};
  }
};

/// Per-degree angular transform matrices for an orthogonal map Q:
///   A_n^m(Q^T dir) = sum_{m'} E^n_{m,m'} A_n^{m'}(dir).
/// Constructed numerically by sphere-quadrature projection, which works
/// uniformly for rotations and reflections — no Wigner recurrences.
///
/// This is how the directional (merge-and-shift) operators reuse the
/// +z-cone exponential machinery for the other five directions: multipole
/// coefficients are rotated into a frame where the direction becomes +z,
/// the diagonal plane-wave work happens there, and local coefficients are
/// rotated back (CGR99 technique, as implemented in DASHMM).
class AngularTransform {
 public:
  AngularTransform() = default;

  /// Builds transforms up to degree p for the map Q.
  AngularTransform(int p, const Mat3& q);

  int order() const { return p_; }

  /// Transforms coefficients of a field expanded as
  ///   Phi = sum c_n^m f_n(rho) g(n,m) A_n^{s*m}(dir),   s = +1 or -1,
  /// into coefficients of Phi(Q^T x) in the same basis.  `g` is the basis
  /// weight in square layout (real), `s` selects the plain (+1, multipole /
  /// irregular) or conjugated (-1, local / conj-regular) azimuthal index.
  void apply(const CoeffVec& in, const std::vector<double>& g, int s,
             CoeffVec& out) const;

 private:
  int p_ = -1;
  // blocks_[n] is a (2n+1) x (2n+1) row-major matrix, index (m+n, m'+n).
  std::vector<std::vector<cdouble>> blocks_;
};

/// Rotation about the y axis by the angle with the given cosine/sine:
/// (x, y, z) -> (x cos + z sin, y, -x sin + z cos).
Mat3 rotation_y(double cos_a, double sin_a);

/// The six axis directions of the merge-and-shift decomposition.
enum class Axis { kPlusZ, kMinusZ, kPlusY, kMinusY, kPlusX, kMinusX };

/// Orthogonal map taking the given axis direction to +z.
Mat3 axis_to_z(Axis d);

/// Unit vector of the axis.
Vec3 axis_vector(Axis d);

constexpr std::array<Axis, 6> kAllAxes = {Axis::kPlusZ,  Axis::kMinusZ,
                                          Axis::kPlusY,  Axis::kMinusY,
                                          Axis::kPlusX,  Axis::kMinusX};

}  // namespace amtfmm
