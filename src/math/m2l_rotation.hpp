#pragma once

#include <vector>

#include "geom/vec3.hpp"
#include "math/rotation.hpp"

namespace amtfmm {

/// One M2L interaction direction from the precomputed offset set.
struct M2LDirection {
  int theta_class;  ///< index of the shared polar-rotation pair
  int dist_class;   ///< index of the |nu| distance class
  cdouble phase;    ///< e^{i phi}, azimuth of the offset direction
};

/// Precomputed rotation plans for the rotation-based ("point-and-shoot")
/// M2L of both kernels.
///
/// In the advanced method every M2L edge connects same-level boxes of one
/// shared domain cube, so the translation vector is an exact integer
/// multiple nu of the box size with |nu_i| <= 3 and max_i |nu_i| >= 2 —
/// the 316 offsets enumerated here.  For each offset the rotation taking
/// nu to +z is factored as Q = R_y(-theta) R_z(-phi); the azimuthal part
/// acts as a diagonal phase on the coefficients, so only one numerically
/// built AngularTransform pair per *distinct polar angle* is stored
/// (~50 classes instead of ~290 directions), keyed by the exact rational
/// cos^2(theta) = nu_z^2 / |nu|^2.
///
/// Kernels use it as:
///   rotate_forward(dir, M, g, s, Mrot)   // multipole into the nu->z frame
///   ... kernel-specific axial translation, O(p^3) ...
///   rotate_inverse(dir, Lrot, g, s, L)   // local back into the grid frame
/// with the same (g, s) basis-weight conventions as AngularTransform.
class M2LRotationSet {
 public:
  M2LRotationSet() = default;
  /// Builds the transforms up to order p for all tabulated offsets.
  explicit M2LRotationSet(int p);

  int order() const { return p_; }
  bool ready() const { return p_ >= 0; }

  /// Looks up the direction plan for the translation `to - from` between
  /// boxes of edge length `box_size`.  Returns nullptr when the offset is
  /// not (within tolerance) one of the tabulated integer offsets — callers
  /// fall back to the naive path.
  const M2LDirection* find(const Vec3& to_minus_from, double box_size) const;

  std::size_t dist_class_count() const { return dists_.size(); }
  /// |nu| of the class, in box units.
  double dist(int dist_class) const {
    return dists_[static_cast<std::size_t>(dist_class)];
  }

  /// Rotates multipole-type coefficients into the frame where the offset
  /// direction is +z (diagonal pre-phase, then the polar block transform).
  void rotate_forward(const M2LDirection& dir, const CoeffVec& in,
                      const std::vector<double>& g, int s,
                      CoeffVec& out) const;
  /// Rotates local-type coefficients back into the grid frame (polar block
  /// transform of the inverse rotation, then diagonal post-phase).
  void rotate_inverse(const M2LDirection& dir, const CoeffVec& in,
                      const std::vector<double>& g, int s,
                      CoeffVec& out) const;

 private:
  int p_ = -1;
  // lut_[(x+3)*49 + (y+3)*7 + (z+3)] -> index into dirs_, or -1.
  std::vector<int> lut_;
  std::vector<M2LDirection> dirs_;
  // Per theta class: transforms for R_y(-theta) (forward) and R_y(theta)
  // (inverse).
  std::vector<std::pair<AngularTransform, AngularTransform>> thetas_;
  std::vector<double> dists_;
};

}  // namespace amtfmm
