#pragma once

#include "geom/vec3.hpp"
#include "math/coeffs.hpp"

namespace amtfmm {

/// Normalized solid harmonics in the White & Head-Gordon convention:
///
///   R_n^m(v) = rho^n  P_n^m(cos th) e^{i m phi} / (n+m)!      (regular)
///   S_n^m(v) = (n-m)! P_n^m(cos th) e^{i m phi} / rho^{n+1}   (irregular)
///
/// for m >= 0, extended to m < 0 by X_n^{-m} = (-1)^m conj(X_n^m).
/// With this normalization the Laplace expansion identities are clean
/// convolutions (all verified by tests/math/solid_test.cpp):
///
///   1/|x-y|      = sum_{n,m} conj(R_n^m(y)) S_n^m(x)        (|y| < |x|)
///   R_n^m(a+b)   = sum_{j,k} R_j^k(a) R_{n-j}^{m-k}(b)
///   S_n^m(x-a)   = sum_{j,k} conj(R_j^k(a)) S_{n+j}^{m+k}(x) (|a| < |x|)
///
/// Gradient ladder identities (used for forces):
///   d/dz R_n^m = R_{n-1}^m         (dx - i dy) R_n^m =  R_{n-1}^{m-1}
///   (dx + i dy) R_n^m = -R_{n-1}^{m+1}
///   d/dz S_n^m = -S_{n+1}^m        (dx - i dy) S_n^m =  S_{n+1}^{m-1}
///   (dx + i dy) S_n^m = -S_{n+1}^{m+1}
///
/// An optional `scale` parameter (characteristic box radius) rescales the
/// bases as R_n^m * scale^-n and S_n^m * scale^{n+1} so coefficient
/// magnitudes stay O(1) across tree levels.
void regular_solid(int p, const Vec3& v, double scale, CoeffVec& out);
void irregular_solid(int p, const Vec3& v, double scale, CoeffVec& out);

/// Evaluates sum_{n,m} c_n^m conj(R_n^m(v)) (local-expansion evaluation).
double eval_conj_regular(int p, const CoeffVec& c, const Vec3& v, double scale);

/// Evaluates sum_{n,m} c_n^m S_n^m(v) (multipole far-field evaluation).
double eval_irregular(int p, const CoeffVec& c, const Vec3& v, double scale);

/// Gradient versions of the two evaluators (for force computation).
Vec3 grad_conj_regular(int p, const CoeffVec& c, const Vec3& v, double scale);
Vec3 grad_irregular(int p, const CoeffVec& c, const Vec3& v, double scale);

}  // namespace amtfmm
