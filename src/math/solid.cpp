#include "math/solid.hpp"

#include <cmath>

#include "math/special.hpp"
#include "support/error.hpp"
#include "support/scratch_arena.hpp"

namespace amtfmm {
namespace {

/// Shared scaffolding: legendre values at cos(theta) plus the azimuthal
/// phases e^{i m phi} for m = 0..p.  Both tables live in the calling
/// thread's scratch arena so repeated evaluations stay allocation free.
struct Angular {
  ScratchLease<double> leg_lease;
  ScratchLease<cdouble> phase_lease;
  std::vector<double>& legendre;
  std::vector<cdouble>& phase;  // e^{i m phi}
  double rho;

  Angular(int p, const Vec3& v)
      : leg_lease(ScratchArena::local().reals()),
        phase_lease(ScratchArena::local().coeffs()),
        legendre(*leg_lease),
        phase(*phase_lease) {
    const Spherical s = to_spherical(v);
    rho = s.r;
    legendre_table(p, s.cos_theta, legendre);
    phase.assign(static_cast<std::size_t>(p) + 1, cdouble{});
    phase[0] = 1.0;
    const cdouble e{std::cos(s.phi), std::sin(s.phi)};
    for (int m = 1; m <= p; ++m) phase[m] = phase[m - 1] * e;
  }
};

void fill_negative_m(int p, CoeffVec& out) {
  for (int n = 1; n <= p; ++n) {
    for (int m = 1; m <= n; ++m) {
      out[sq_index(n, -m)] =
          ((m & 1) ? -1.0 : 1.0) * std::conj(out[sq_index(n, m)]);
    }
  }
}

}  // namespace

void regular_solid(int p, const Vec3& v, double scale, CoeffVec& out) {
  out.assign(sq_count(p), cdouble{});
  const Angular a(p, v);
  double rn = 1.0;  // (rho/scale)^n
  const double ratio = a.rho / scale;
  for (int n = 0; n <= p; ++n) {
    for (int m = 0; m <= n; ++m) {
      out[sq_index(n, m)] =
          rn / factorial(n + m) * a.legendre[tri_index(n, m)] * a.phase[m];
    }
    rn *= ratio;
  }
  fill_negative_m(p, out);
}

void irregular_solid(int p, const Vec3& v, double scale, CoeffVec& out) {
  out.assign(sq_count(p), cdouble{});
  const Angular a(p, v);
  AMTFMM_ASSERT_MSG(a.rho > 0.0, "irregular solid harmonic at the origin");
  // scale^{n+1} / rho^{n+1}
  double sr = scale / a.rho;
  const double ratio = scale / a.rho;
  for (int n = 0; n <= p; ++n) {
    for (int m = 0; m <= n; ++m) {
      out[sq_index(n, m)] =
          sr * factorial(n - m) * a.legendre[tri_index(n, m)] * a.phase[m];
    }
    sr *= ratio;
  }
  fill_negative_m(p, out);
}

double eval_conj_regular(int p, const CoeffVec& c, const Vec3& v,
                         double scale) {
  auto r_lease = ScratchArena::local().coeffs();
  CoeffVec& r = *r_lease;
  regular_solid(p, v, scale, r);
  cdouble acc{};
  for (std::size_t i = 0; i < c.size(); ++i) acc += c[i] * std::conj(r[i]);
  return acc.real();
}

double eval_irregular(int p, const CoeffVec& c, const Vec3& v, double scale) {
  auto s_lease = ScratchArena::local().coeffs();
  CoeffVec& s = *s_lease;
  irregular_solid(p, v, scale, s);
  cdouble acc{};
  for (std::size_t i = 0; i < c.size(); ++i) acc += c[i] * s[i];
  return acc.real() / scale;
}

Vec3 grad_conj_regular(int p, const CoeffVec& c, const Vec3& v, double scale) {
  // d/dz conj(Rh_j^k) = conj(Rh_{j-1}^k)/s,
  // (dx - i dy) conj(Rh_j^k) = -conj(Rh_{j-1}^{k+1})/s.
  auto r_lease = ScratchArena::local().coeffs();
  CoeffVec& r = *r_lease;
  regular_solid(p, v, scale, r);
  cdouble dz{}, dxmidy{};
  for (int j = 1; j <= p; ++j) {
    for (int k = -j; k <= j; ++k) {
      const cdouble cjk = c[sq_index(j, k)];
      if (k >= -(j - 1) && k <= j - 1) {
        dz += cjk * std::conj(r[sq_index(j - 1, k)]);
      }
      if (k + 1 >= -(j - 1) && k + 1 <= j - 1) {
        dxmidy -= cjk * std::conj(r[sq_index(j - 1, k + 1)]);
      }
    }
  }
  const double inv_s = 1.0 / scale;
  return {dxmidy.real() * inv_s, -dxmidy.imag() * inv_s, dz.real() * inv_s};
}

Vec3 grad_irregular(int p, const CoeffVec& c, const Vec3& v, double scale) {
  // Needs irregular harmonics to order p+1.
  auto s_lease = ScratchArena::local().coeffs();
  CoeffVec& s = *s_lease;
  irregular_solid(p + 1, v, scale, s);
  cdouble dz{}, dxmidy{};
  for (int n = 0; n <= p; ++n) {
    for (int m = -n; m <= n; ++m) {
      const cdouble cnm = c[sq_index(n, m)];
      dz -= cnm * s[sq_index(n + 1, m)];
      dxmidy += cnm * s[sq_index(n + 1, m - 1)];
    }
  }
  const double f = 1.0 / (scale * scale);
  return {dxmidy.real() * f, -dxmidy.imag() * f, dz.real() * f};
}

}  // namespace amtfmm
