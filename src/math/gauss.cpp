#include "math/gauss.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace amtfmm {

Quadrature gauss_legendre(int n) {
  AMTFMM_ASSERT(n >= 1);
  Quadrature q;
  q.x.resize(static_cast<std::size_t>(n));
  q.w.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Chebyshev-like initial guess for the i-th root.
    double x = std::cos(std::numbers::pi * (i + 0.75) / (n + 0.5));
    double dp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_n(x) and P'_n(x) by recurrence.
      double p0 = 1.0, p1 = x;
      for (int k = 2; k <= n; ++k) {
        const double p2 = ((2 * k - 1) * x * p1 - (k - 1) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      dp = n * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    q.x[static_cast<std::size_t>(i)] = x;
    q.w[static_cast<std::size_t>(i)] = 2.0 / ((1.0 - x * x) * dp * dp);
  }
  return q;
}

Quadrature gauss_legendre(int n, double a, double b) {
  Quadrature q = gauss_legendre(n);
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  for (std::size_t i = 0; i < q.x.size(); ++i) {
    q.x[i] = mid + half * q.x[i];
    q.w[i] *= half;
  }
  return q;
}

}  // namespace amtfmm
