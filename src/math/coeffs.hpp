#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace amtfmm {

using cdouble = std::complex<double>;
using CoeffVec = std::vector<cdouble>;

/// Expansion coefficients c_n^m for 0 <= n <= p, -n <= m <= n are stored in
/// a dense "square" layout of (p+1)^2 complex values:
///   index(n, m) = n*(n+1) + m.
/// Full-m storage keeps every translation operator a plain convolution with
/// no conjugate-symmetry case analysis.  For real-valued kernels the
/// coefficients obey c_n^{-m} = (-1)^m conj(c_n^m), which the wire format
/// (see wire_count) exploits, matching DASHMM's triangular storage.
inline std::size_t sq_index(int n, int m) {
  return static_cast<std::size_t>(n * (n + 1) + m);
}

/// Number of complex values in the square (full-m) storage for order p.
inline std::size_t sq_count(int p) {
  return static_cast<std::size_t>((p + 1) * (p + 1));
}

/// Number of complex values actually transferred for a conjugate-symmetric
/// expansion of order p (m >= 0 only): (p+1)(p+2)/2.  At p = 9 this is 55
/// complex doubles = 880 bytes, the M/L node size in the paper's Table I.
inline std::size_t wire_count(int p) {
  return static_cast<std::size_t>((p + 1) * (p + 2) / 2);
}

inline std::size_t wire_bytes(int p) { return wire_count(p) * sizeof(cdouble); }

/// Packs the m >= 0 half of a square-layout expansion (the wire format).
inline void pack_wire(int p, const CoeffVec& full, CoeffVec& wire) {
  wire.resize(wire_count(p));
  std::size_t w = 0;
  for (int n = 0; n <= p; ++n)
    for (int m = 0; m <= n; ++m) wire[w++] = full[sq_index(n, m)];
}

/// Reconstructs full-m storage from the wire format using conjugate
/// symmetry.  `condon_phase` selects the symmetry convention:
///  - true:  c_n^{-m} = (-1)^m conj(c_n^m)   (solid-harmonic bases; Laplace)
///  - false: c_n^{-m} =        conj(c_n^m)   (gamma-weighted angular bases;
///                                            Yukawa)
inline void unpack_wire(int p, const CoeffVec& wire, CoeffVec& full,
                        bool condon_phase = true) {
  full.assign(sq_count(p), cdouble{});
  std::size_t w = 0;
  for (int n = 0; n <= p; ++n) {
    for (int m = 0; m <= n; ++m) {
      const cdouble v = wire[w++];
      full[sq_index(n, m)] = v;
      if (m > 0) {
        const double sign = (condon_phase && (m & 1)) ? -1.0 : 1.0;
        full[sq_index(n, -m)] = sign * std::conj(v);
      }
    }
  }
}

}  // namespace amtfmm
