#pragma once

#include <vector>

namespace amtfmm {

/// Modified spherical Bessel functions of the first kind, i_n(x), for
/// n = 0..p.  Computed by Miller's downward recurrence normalized against
/// i_0 = sinh(x)/x; near x = 0 a series expansion is used.  These are the
/// regular radial functions of the Yukawa (screened Coulomb) expansions.
void sph_bessel_i(int p, double x, std::vector<double>& out);

/// Modified spherical Bessel functions of the second kind, k_n(x), for
/// n = 0..p, with the convention k_0(x) = (pi/2) e^{-x}/x.  Computed by
/// (stable) upward recurrence.  These are the singular radial functions of
/// the Yukawa expansions.
void sph_bessel_k(int p, double x, std::vector<double>& out);

/// Regular cylindrical Bessel J_n(x) for n = 0..nmax, via downward
/// recurrence (used when sizing the plane-wave quadrature's angular counts).
void bessel_j(int nmax, double x, std::vector<double>& out);

}  // namespace amtfmm
