#pragma once

#include <vector>

namespace amtfmm {

/// One-dimensional quadrature rule: sum_i w[i] f(x[i]).
struct Quadrature {
  std::vector<double> x;
  std::vector<double> w;
};

/// n-point Gauss-Legendre rule on [-1, 1], computed by Newton iteration on
/// the Legendre polynomial (standard Golub-Welsch-free construction).
Quadrature gauss_legendre(int n);

/// Gauss-Legendre rule mapped to [a, b].
Quadrature gauss_legendre(int n, double a, double b);

}  // namespace amtfmm
