#include "math/rotation.hpp"

#include "math/sphere.hpp"
#include "support/error.hpp"

namespace amtfmm {

AngularTransform::AngularTransform(int p, const Mat3& q) : p_(p) {
  const Mat3 qt = q.transpose();
  const SphereRule rule(p);
  blocks_.resize(static_cast<std::size_t>(p) + 1);
  std::vector<cdouble> samples(rule.size());
  CoeffVec basis, proj;
  for (int n = 0; n <= p; ++n) {
    auto& block = blocks_[static_cast<std::size_t>(n)];
    block.assign(static_cast<std::size_t>(2 * n + 1) * (2 * n + 1), cdouble{});
    for (int m = -n; m <= n; ++m) {
      // Sample A_n^m(Q^T dir) over the rule and project back onto A_n^{m'}.
      for (std::size_t s = 0; s < rule.size(); ++s) {
        angular_basis(n, qt * rule.directions()[s], basis);
        samples[s] = basis[sq_index(n, m)];
      }
      rule.project(std::span<const cdouble>(samples.data(), rule.size()), n,
                   proj);
      for (int mp = -n; mp <= n; ++mp) {
        block[static_cast<std::size_t>(m + n) * (2 * n + 1) +
              static_cast<std::size_t>(mp + n)] = proj[sq_index(n, mp)];
      }
    }
  }
}

void AngularTransform::apply(const CoeffVec& in, const std::vector<double>& g,
                             int s, CoeffVec& out) const {
  AMTFMM_ASSERT(s == 1 || s == -1);
  AMTFMM_ASSERT(in.size() == sq_count(p_));
  out.assign(sq_count(p_), cdouble{});
  for (int n = 0; n <= p_; ++n) {
    const auto& block = blocks_[static_cast<std::size_t>(n)];
    const int w = 2 * n + 1;
    for (int mp = -n; mp <= n; ++mp) {
      cdouble acc{};
      for (int m = -n; m <= n; ++m) {
        const cdouble e = block[static_cast<std::size_t>(s * m + n) * w +
                                static_cast<std::size_t>(s * mp + n)];
        acc += in[sq_index(n, m)] * g[sq_index(n, m)] * e;
      }
      out[sq_index(n, mp)] = acc / g[sq_index(n, mp)];
    }
  }
}

Mat3 axis_to_z(Axis d) {
  switch (d) {
    case Axis::kPlusZ:
      return Mat3{{1, 0, 0, 0, 1, 0, 0, 0, 1}};
    case Axis::kMinusZ:
      // Rotation by pi about x: (x, y, z) -> (x, -y, -z).
      return Mat3{{1, 0, 0, 0, -1, 0, 0, 0, -1}};
    case Axis::kPlusY:
      return Mat3{{1, 0, 0, 0, 0, -1, 0, 1, 0}};
    case Axis::kMinusY:
      return Mat3{{1, 0, 0, 0, 0, 1, 0, -1, 0}};
    case Axis::kPlusX:
      return Mat3{{0, 0, -1, 0, 1, 0, 1, 0, 0}};
    case Axis::kMinusX:
      return Mat3{{0, 0, 1, 0, 1, 0, -1, 0, 0}};
  }
  AMTFMM_ASSERT(false);
  return {};
}

Vec3 axis_vector(Axis d) {
  switch (d) {
    case Axis::kPlusZ: return {0, 0, 1};
    case Axis::kMinusZ: return {0, 0, -1};
    case Axis::kPlusY: return {0, 1, 0};
    case Axis::kMinusY: return {0, -1, 0};
    case Axis::kPlusX: return {1, 0, 0};
    case Axis::kMinusX: return {-1, 0, 0};
  }
  AMTFMM_ASSERT(false);
  return {};
}

}  // namespace amtfmm
