#include "math/rotation.hpp"

#include <cmath>
#include <numbers>

#include "kernels/simd/simd.hpp"
#include "math/special.hpp"
#include "math/sphere.hpp"
#include "support/error.hpp"
#include "support/scratch_arena.hpp"

namespace amtfmm {

AngularTransform::AngularTransform(int p, const Mat3& q) : p_(p) {
  // E^n_{m,m'} = sum_q  A_n^m(Q^T dir_q) * conj(A_n^{m'}(dir_q)) w_q / N_nm',
  // exact because the integrand is bandlimited to degree 2n <= 2p, within
  // the rule's 2p+1 polynomial exactness.  Both basis tables are sampled
  // once per quadrature node, so the build is O(rule * p^3) instead of the
  // O(rule * p^4)-with-allocations of projecting each (n, m) separately.
  const Mat3 qt = q.transpose();
  const SphereRule rule(p);
  const std::size_t nc = sq_count(p);
  const std::size_t nq = rule.size();
  std::vector<cdouble> rot(nq * nc);    // A_n^m(Q^T dir_q)
  std::vector<cdouble> proj(nq * nc);   // conj(A_n^{m'}(dir_q)) w_q / N_nm'
  CoeffVec basis;
  for (std::size_t s = 0; s < nq; ++s) {
    angular_basis(p, qt * rule.directions()[s], basis);
    std::copy(basis.begin(), basis.end(), rot.begin() + s * nc);
    angular_basis(p, rule.directions()[s], basis);
    const double w = rule.weights()[s];
    for (int n = 0; n <= p; ++n) {
      for (int m = -n; m <= n; ++m) {
        const double nnm = 4.0 * std::numbers::pi / (2 * n + 1) *
                           factorial(n + std::abs(m)) /
                           factorial(n - std::abs(m));
        proj[s * nc + sq_index(n, m)] =
            std::conj(basis[sq_index(n, m)]) * (w / nnm);
      }
    }
  }
  blocks_.resize(static_cast<std::size_t>(p) + 1);
  for (int n = 0; n <= p; ++n) {
    auto& block = blocks_[static_cast<std::size_t>(n)];
    const std::size_t w = static_cast<std::size_t>(2 * n + 1);
    block.assign(w * w, cdouble{});
    for (std::size_t s = 0; s < nq; ++s) {
      const cdouble* rrow = rot.data() + s * nc + sq_index(n, -n);
      const cdouble* prow = proj.data() + s * nc + sq_index(n, -n);
      for (std::size_t i = 0; i < w; ++i) {
        const cdouble ri = rrow[i];
        cdouble* brow = block.data() + i * w;
        for (std::size_t j = 0; j < w; ++j) brow[j] += ri * prow[j];
      }
    }
  }
}

void AngularTransform::apply(const CoeffVec& in, const std::vector<double>& g,
                             int s, CoeffVec& out) const {
  AMTFMM_ASSERT(s == 1 || s == -1);
  AMTFMM_ASSERT(in.size() == sq_count(p_));
  out.assign(sq_count(p_), cdouble{});
  // out[n, mp] = sum_m in[n, m] g[n, m] E^n_{m, mp}.  For fixed m the
  // E-row over mp is contiguous in the block (ascending for s = +1,
  // descending for s = -1), so each m contributes one zaxpy over the row
  // and the order index becomes the vector dimension.  Per output entry
  // the m-summation order matches the scalar loop this replaces.
  auto acc_lease = ScratchArena::local().coeffs();
  auto& acc = *acc_lease;
  for (int n = 0; n <= p_; ++n) {
    const auto& block = blocks_[static_cast<std::size_t>(n)];
    const std::size_t w = static_cast<std::size_t>(2 * n + 1);
    acc.assign(w, cdouble{});
    for (int m = -n; m <= n; ++m) {
      const cdouble c = in[sq_index(n, m)] * g[sq_index(n, m)];
      if (c == cdouble{}) continue;
      const cdouble* row =
          block.data() + static_cast<std::size_t>(s * m + n) * w;
      simd::zaxpy(c, row, acc.data(), w);
    }
    for (std::size_t i = 0; i < w; ++i) {
      const int mp = s * (static_cast<int>(i) - n);
      out[sq_index(n, mp)] = acc[i] / g[sq_index(n, mp)];
    }
  }
}

Mat3 rotation_y(double cos_a, double sin_a) {
  return Mat3{{cos_a, 0, sin_a, 0, 1, 0, -sin_a, 0, cos_a}};
}

Mat3 axis_to_z(Axis d) {
  switch (d) {
    case Axis::kPlusZ:
      return Mat3{{1, 0, 0, 0, 1, 0, 0, 0, 1}};
    case Axis::kMinusZ:
      // Rotation by pi about x: (x, y, z) -> (x, -y, -z).
      return Mat3{{1, 0, 0, 0, -1, 0, 0, 0, -1}};
    case Axis::kPlusY:
      return Mat3{{1, 0, 0, 0, 0, -1, 0, 1, 0}};
    case Axis::kMinusY:
      return Mat3{{1, 0, 0, 0, 0, 1, 0, -1, 0}};
    case Axis::kPlusX:
      return Mat3{{0, 0, -1, 0, 1, 0, 1, 0, 0}};
    case Axis::kMinusX:
      return Mat3{{0, 0, 1, 0, 1, 0, -1, 0, 0}};
  }
  AMTFMM_ASSERT(false);
  return {};
}

Vec3 axis_vector(Axis d) {
  switch (d) {
    case Axis::kPlusZ: return {0, 0, 1};
    case Axis::kMinusZ: return {0, 0, -1};
    case Axis::kPlusY: return {0, 1, 0};
    case Axis::kMinusY: return {0, -1, 0};
    case Axis::kPlusX: return {1, 0, 0};
    case Axis::kMinusX: return {-1, 0, 0};
  }
  AMTFMM_ASSERT(false);
  return {};
}

}  // namespace amtfmm
