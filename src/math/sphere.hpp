#pragma once

#include <span>

#include "geom/vec3.hpp"
#include "math/coeffs.hpp"

namespace amtfmm {

/// The raw angular basis used throughout the expansion math:
///   A_n^m(dir) = P_n^{|m|}(cos th) e^{i m phi},   0 <= n <= p, -n <= m <= n,
/// written in square layout (see coeffs.hpp).  Both the regular and the
/// irregular solid harmonics, and the Yukawa bases, are radial functions
/// times A_n^m times an (n, m)-dependent real weight.
void angular_basis(int p, const Vec3& dir, CoeffVec& out);

/// Product quadrature on the unit sphere (Gauss-Legendre in cos th, uniform
/// in phi) together with precomputable projection tables.  A rule of band B
/// integrates exactly any spherical polynomial of degree <= 2B+1, which
/// makes the projection of a degree-B-bandlimited field onto A_n^m exact.
///
/// This is the workhorse behind two "numerically generated operator"
/// mechanisms (see DESIGN.md):
///  - angular rotation matrices (rotation.hpp), and
///  - Yukawa translation operators (kernels/yukawa.cpp), which evaluate a
///    translated expansion on a sphere and project it back onto the basis.
class SphereRule {
 public:
  /// Builds a rule exact for fields bandlimited to degree `band`.
  explicit SphereRule(int band);

  int band() const { return band_; }
  std::size_t size() const { return dirs_.size(); }
  const std::vector<Vec3>& directions() const { return dirs_; }
  const std::vector<double>& weights() const { return w_; }

  /// Builds the projection table for order pmax.  NOT thread safe; call
  /// once during setup.  project() afterwards is const and thread safe.
  void prepare(int pmax) const;

  /// Projects sampled field values f(dir_q) onto A_n^m for n <= pmax:
  ///   out[n,m] = (1/N_nm) sum_q w_q f_q conj(A_n^m(dir_q)),
  /// N_nm = 4 pi / (2n+1) * (n+|m|)!/(n-|m|)!.
  /// Exact when f is bandlimited to degree band().  Concurrent calls are
  /// safe once prepare(pmax) has run (it is invoked lazily otherwise).
  void project(std::span<const cdouble> samples, int pmax, CoeffVec& out) const;

 private:
  int band_;
  std::vector<Vec3> dirs_;
  std::vector<double> w_;
  // Lazily built projection table for the last pmax requested.
  mutable int table_p_ = -1;
  mutable std::vector<cdouble> table_;  // [q * sq_count(p) + idx]
};

}  // namespace amtfmm
