#include "tree/lists.hpp"

#include <cmath>

#include "support/error.hpp"

namespace amtfmm {
namespace {

/// Traversal state: builds lists for every target box given, per box, the
/// set of source boxes adjacent to its parent.
class ListBuilder {
 public:
  ListBuilder(const DualTree& dt, InteractionLists& out)
      : src_(dt.source), tgt_(dt.target), out_(out) {}

  void run() {
    const std::size_t nt = tgt_.boxes().size();
    out_.l1.resize(nt);
    out_.l2.resize(nt);
    out_.l3.resize(nt);
    out_.l4.resize(nt);
    out_.dag_leaf.assign(nt, 0);
    if (src_.num_points() == 0 || tgt_.num_points() == 0) {
      // Degenerate: everything is a dag leaf with empty lists.
      for (std::size_t b = 0; b < nt; ++b) out_.dag_leaf[b] = 1;
      return;
    }
    // Roots share the domain cube, hence are adjacent by construction.
    const TreeBox& tb = tgt_.box(tgt_.root());
    const BoxIndex sroot = src_.root();
    if (tb.is_leaf()) {
      out_.dag_leaf[tgt_.root()] = 1;
      descend_near(tgt_.root(), sroot);
    } else {
      std::vector<BoxIndex> adj{sroot};
      // The source root acts as the "parent-level adjacent" seed.
      for (const BoxIndex c : tb.child) {
        if (c != kNoBox) visit(c, adj);
      }
    }
  }

 private:
  /// parent_adj: source boxes adjacent to parent(b), one level coarser than
  /// b (or coarser leaves deferred from higher up).
  void visit(BoxIndex b, const std::vector<BoxIndex>& parent_adj) {
    const TreeBox& box = tgt_.box(b);
    std::vector<BoxIndex> my_adj;
    for (const BoxIndex e : parent_adj) {
      const TreeBox& src = src_.box(e);
      if (src.is_leaf()) {
        // A coarser (or parent-level) source leaf: either still near (defer
        // to children) or resolved here through list 4.
        if (cubes_adjacent(src.cube, box.cube)) {
          my_adj.push_back(e);
        } else {
          out_.l4[b].push_back(e);
        }
        continue;
      }
      for (const BoxIndex c : src.child) {
        if (c == kNoBox) continue;
        const TreeBox& cb = src_.box(c);
        if (cubes_adjacent(cb.cube, box.cube)) {
          my_adj.push_back(c);
        } else if (cb.level == box.level) {
          out_.l2[b].push_back(make_l2(c, b));
        } else {
          // A non-leaf source deeper than b can only appear when b is a
          // leaf, which is handled by descend_near; a coarser non-leaf is
          // expanded above.  Same-level is the only case here.
          AMTFMM_ASSERT(false);
        }
      }
    }
    if (box.is_leaf()) {
      out_.dag_leaf[b] = 1;
      for (const BoxIndex e : my_adj) descend_near(b, e);
      return;
    }
    if (my_adj.empty()) {
      // Dual-tree pruning: no adjacent source at this level means every
      // deeper interaction is already resolved; stop refining the DAG here.
      out_.dag_leaf[b] = 1;
      return;
    }
    for (const BoxIndex c : box.child) {
      if (c != kNoBox) visit(c, my_adj);
    }
  }

  /// b is a target leaf; s is a source box adjacent to b (same level as b
  /// or deeper as we recurse).  Collects list 1 and list 3.
  void descend_near(BoxIndex b, BoxIndex s) {
    const TreeBox& src = src_.box(s);
    const TreeBox& box = tgt_.box(b);
    if (src.is_leaf()) {
      out_.l1[b].push_back(s);
      return;
    }
    for (const BoxIndex c : src.child) {
      if (c == kNoBox) continue;
      if (cubes_adjacent(src_.box(c).cube, box.cube)) {
        descend_near(b, c);
      } else {
        out_.l3[b].push_back(c);
      }
    }
  }

  List2Entry make_l2(BoxIndex s, BoxIndex b) const {
    const TreeBox& src = src_.box(s);
    const TreeBox& tgt = tgt_.box(b);
    const double w = tgt.cube.size;
    const Vec3 d = src.cube.center() - tgt.cube.center();
    auto q = [&](double v) {
      return static_cast<std::int8_t>(std::lround(v / w));
    };
    return List2Entry{s, q(d.x), q(d.y), q(d.z)};
  }

  const Tree& src_;
  const Tree& tgt_;
  InteractionLists& out_;
};

}  // namespace

bool cubes_adjacent(const Cube& a, const Cube& b) {
  // Distance between the two axis-aligned cubes, with a relative epsilon so
  // grid-aligned touching counts as adjacent despite roundoff.
  const double eps = 1e-9 * std::max(a.size, b.size);
  const Vec3 ahi = a.high(), bhi = b.high();
  const double dx = std::max({a.low.x - bhi.x, b.low.x - ahi.x, 0.0});
  const double dy = std::max({a.low.y - bhi.y, b.low.y - ahi.y, 0.0});
  const double dz = std::max({a.low.z - bhi.z, b.low.z - ahi.z, 0.0});
  return dx <= eps && dy <= eps && dz <= eps;
}

std::size_t InteractionLists::total_l1() const {
  std::size_t n = 0;
  for (const auto& v : l1) n += v.size();
  return n;
}
std::size_t InteractionLists::total_l2() const {
  std::size_t n = 0;
  for (const auto& v : l2) n += v.size();
  return n;
}
std::size_t InteractionLists::total_l3() const {
  std::size_t n = 0;
  for (const auto& v : l3) n += v.size();
  return n;
}
std::size_t InteractionLists::total_l4() const {
  std::size_t n = 0;
  for (const auto& v : l4) n += v.size();
  return n;
}

InteractionLists build_lists(const DualTree& dt) {
  InteractionLists out;
  ListBuilder(dt, out).run();
  return out;
}

}  // namespace amtfmm
