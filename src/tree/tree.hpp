#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace amtfmm {

using BoxIndex = std::uint32_t;
inline constexpr BoxIndex kNoBox = std::numeric_limits<BoxIndex>::max();

/// One box of an adaptive octree.  Boxes are stored contiguously in the
/// Tree; children hold contiguous Morton-sorted point ranges nested inside
/// the parent's range.
struct TreeBox {
  Cube cube;
  BoxIndex parent = kNoBox;
  std::array<BoxIndex, 8> child{kNoBox, kNoBox, kNoBox, kNoBox,
                                kNoBox, kNoBox, kNoBox, kNoBox};
  std::uint32_t first = 0;  ///< first point (index into sorted order)
  std::uint32_t count = 0;  ///< number of points under this box
  std::uint16_t level = 0;
  std::uint8_t num_children = 0;
  std::uint32_t locality = 0;  ///< owning locality (coarse Morton partition)

  bool is_leaf() const { return num_children == 0; }
};

/// Adaptive octree over one point ensemble (the paper's source or target
/// tree).  Construction mirrors DASHMM's three steps (section IV):
///  1. coarse Morton sort assigning contiguous chunks to localities,
///  2. adaptive partitioning (refine while count > threshold, prune empty
///     children),
///  3. a single compact array-of-boxes representation shared by all
///     localities (our in-process stand-in for the "compactly shared"
///     exchange).
class Tree {
 public:
  /// Builds the tree.  `domain` must contain every point (use
  /// bounding_cube over both ensembles so the dual trees share a domain).
  /// `threshold` is the paper's refinement threshold (60 in all their runs).
  static Tree build(std::span<const Vec3> points, const Cube& domain,
                    int threshold, int num_localities);

  const Cube& domain() const { return domain_; }
  const std::vector<TreeBox>& boxes() const { return boxes_; }
  const TreeBox& box(BoxIndex b) const { return boxes_[b]; }
  BoxIndex root() const { return 0; }
  int max_level() const { return max_level_; }
  std::size_t num_points() const { return sorted_.size(); }

  /// Points in Morton order; box point ranges index into this.
  const std::vector<Vec3>& sorted_points() const { return sorted_; }

  /// original_index[i] = index in the caller's array of sorted point i.
  const std::vector<std::uint32_t>& original_index() const { return perm_; }

  /// Locality owning sorted point i (contiguous chunks).
  std::uint32_t point_locality(std::uint32_t sorted_i) const;

  /// Number of leaves and per-level box counts (diagnostics).
  std::size_t num_leaves() const;
  std::vector<std::size_t> boxes_per_level() const;

 private:
  Cube domain_;
  std::vector<TreeBox> boxes_;
  std::vector<Vec3> sorted_;
  std::vector<std::uint32_t> perm_;
  std::uint32_t num_localities_ = 1;
  int max_level_ = 0;
};

/// Source and target trees over a common domain: the paper's "dual tree".
struct DualTree {
  Tree source;
  Tree target;
};

/// Convenience builder handling the shared bounding cube.
DualTree build_dual_tree(std::span<const Vec3> sources,
                         std::span<const Vec3> targets, int threshold,
                         int num_localities);

}  // namespace amtfmm
