#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace amtfmm {

using BoxIndex = std::uint32_t;
inline constexpr BoxIndex kNoBox = std::numeric_limits<BoxIndex>::max();

/// One box of an adaptive octree.  Boxes are stored contiguously in the
/// Tree; children hold contiguous Morton-sorted point ranges nested inside
/// the parent's range.
struct TreeBox {
  Cube cube;
  BoxIndex parent = kNoBox;
  std::array<BoxIndex, 8> child{kNoBox, kNoBox, kNoBox, kNoBox,
                                kNoBox, kNoBox, kNoBox, kNoBox};
  std::uint32_t first = 0;  ///< first point (index into sorted order)
  std::uint32_t count = 0;  ///< number of points under this box
  std::uint16_t level = 0;
  std::uint8_t num_children = 0;
  std::uint32_t locality = 0;  ///< owning locality (coarse Morton partition)

  bool is_leaf() const { return num_children == 0; }
};

/// One point relocation for Tree::update: the point's index in the caller's
/// original array and its new position.
struct PointMove {
  std::uint32_t index = 0;
  Vec3 position;
};

/// What an incremental Tree::update changed.
struct TreeUpdateStats {
  std::size_t dirty_leaves = 0;  ///< leaves whose point range was re-sorted
  std::size_t moved = 0;
  std::size_t inserted = 0;
  std::size_t erased = 0;
};

/// Adaptive octree over one point ensemble (the paper's source or target
/// tree).  Construction mirrors DASHMM's three steps (section IV):
///  1. coarse Morton sort assigning contiguous chunks to localities,
///  2. adaptive partitioning (refine while count > threshold, prune empty
///     children),
///  3. a single compact array-of-boxes representation shared by all
///     localities (our in-process stand-in for the "compactly shared"
///     exchange).
class Tree {
 public:
  /// Builds the tree.  `domain` must contain every point (use
  /// bounding_cube over both ensembles so the dual trees share a domain).
  /// `threshold` is the paper's refinement threshold (60 in all their runs).
  static Tree build(std::span<const Vec3> points, const Cube& domain,
                    int threshold, int num_localities);

  const Cube& domain() const { return domain_; }
  const std::vector<TreeBox>& boxes() const { return boxes_; }
  const TreeBox& box(BoxIndex b) const { return boxes_[b]; }
  BoxIndex root() const { return 0; }
  int max_level() const { return max_level_; }
  std::size_t num_points() const { return sorted_.size(); }

  /// Points in Morton order; box point ranges index into this.
  const std::vector<Vec3>& sorted_points() const { return sorted_; }

  /// original_index[i] = index in the caller's array of sorted point i.
  const std::vector<std::uint32_t>& original_index() const { return perm_; }

  /// Morton key of sorted point i (stored for incremental updates).
  const std::vector<std::uint64_t>& sorted_keys() const { return skeys_; }

  /// Incrementally applies point updates while preserving the box
  /// structure: moved and inserted points are routed to their leaf by key
  /// descent, erased points are dropped, and only the affected (dirty)
  /// leaves are re-sorted — clean leaf ranges are block-copied.  Original
  /// indices follow vector-erase semantics: erasing index set E shifts
  /// every surviving index o to o - |{e in E : e < o}|, and inserted
  /// points are appended after the survivors.  `erased` must be sorted and
  /// unique.
  ///
  /// Returns nullopt — with the tree untouched — whenever the update would
  /// change the box structure a fresh build would produce: a leaf emptied
  /// or pushed over the refinement threshold, an internal box falling to
  /// the threshold, a point routed into a pruned (empty) region, or a new
  /// position outside the fixed domain (a rebuild would recompute the
  /// bounding cube).  Box localities are NOT reassigned: they stay on the
  /// build-time partition, which keeps placement deterministic across
  /// ranks.
  std::optional<TreeUpdateStats> update(std::span<const PointMove> moves,
                                        std::span<const std::uint32_t> erased,
                                        std::span<const Vec3> inserted);

  /// Locality owning sorted point i (contiguous chunks).
  std::uint32_t point_locality(std::uint32_t sorted_i) const;

  /// Number of leaves and per-level box counts (diagnostics).
  std::size_t num_leaves() const;
  std::vector<std::size_t> boxes_per_level() const;

 private:
  Cube domain_;
  std::vector<TreeBox> boxes_;
  std::vector<Vec3> sorted_;
  std::vector<std::uint64_t> skeys_;
  std::vector<std::uint32_t> perm_;
  std::uint32_t num_localities_ = 1;
  int max_level_ = 0;
  int threshold_ = 1;
};

/// Source and target trees over a common domain: the paper's "dual tree".
struct DualTree {
  Tree source;
  Tree target;
};

/// Convenience builder handling the shared bounding cube.
DualTree build_dual_tree(std::span<const Vec3> sources,
                         std::span<const Vec3> targets, int threshold,
                         int num_localities);

}  // namespace amtfmm
