#include "tree/tree.hpp"

#include <algorithm>
#include <numeric>

#include "geom/morton.hpp"
#include "support/error.hpp"

namespace amtfmm {
namespace {

constexpr int kMaxLevel = 20;  // Morton keys carry 21 levels; keep margin

/// Extracts the octant of a key at `level` (level 1 = children of root).
int octant_at(std::uint64_t key, int level) {
  return static_cast<int>((key >> (3 * (21 - level))) & 7u);
}

}  // namespace

Tree Tree::build(std::span<const Vec3> points, const Cube& domain,
                 int threshold, int num_localities) {
  AMTFMM_ASSERT(threshold >= 1);
  AMTFMM_ASSERT(num_localities >= 1);
  Tree t;
  t.domain_ = domain;
  t.num_localities_ = static_cast<std::uint32_t>(num_localities);
  t.threshold_ = threshold;

  const std::size_t n = points.size();
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = morton_key(points[i], domain);

  t.perm_.resize(n);
  std::iota(t.perm_.begin(), t.perm_.end(), 0u);
  std::sort(t.perm_.begin(), t.perm_.end(),
            [&](std::uint32_t a, std::uint32_t b) { return keys[a] < keys[b]; });

  t.sorted_.resize(n);
  t.skeys_.resize(n);
  std::vector<std::uint64_t>& skeys = t.skeys_;
  for (std::size_t i = 0; i < n; ++i) {
    t.sorted_[i] = points[t.perm_[i]];
    skeys[i] = keys[t.perm_[i]];
  }

  // Iterative refinement with an explicit work stack.  Child point ranges
  // are found by binary search on the sorted keys.
  struct Work {
    BoxIndex box;
  };
  t.boxes_.push_back(TreeBox{});
  t.boxes_[0].cube = domain;
  t.boxes_[0].first = 0;
  t.boxes_[0].count = static_cast<std::uint32_t>(n);
  std::vector<Work> stack{{0}};
  while (!stack.empty()) {
    const BoxIndex bi = stack.back().box;
    stack.pop_back();
    // Copy the POD fields we need; boxes_ may reallocate below.
    const std::uint32_t first = t.boxes_[bi].first;
    const std::uint32_t count = t.boxes_[bi].count;
    const std::uint16_t level = t.boxes_[bi].level;
    const Cube cube = t.boxes_[bi].cube;
    t.max_level_ = std::max(t.max_level_, static_cast<int>(level));
    if (count <= static_cast<std::uint32_t>(threshold) || level >= kMaxLevel) {
      continue;  // leaf
    }
    const int child_level = level + 1;
    std::uint32_t begin = first;
    const std::uint32_t end = first + count;
    for (int oct = 0; oct < 8 && begin < end; ++oct) {
      // Range of keys whose octant at child_level equals oct.
      std::uint32_t stop = begin;
      if (octant_at(skeys[begin], child_level) == oct) {
        // Binary search for the end of this octant run.
        std::uint32_t lo = begin, hi = end;
        while (lo < hi) {
          const std::uint32_t mid = lo + (hi - lo) / 2;
          if (octant_at(skeys[mid], child_level) <= oct) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        stop = lo;
      }
      if (stop == begin) continue;  // empty child pruned
      TreeBox cb;
      cb.cube = cube.child(oct);
      cb.parent = bi;
      cb.first = begin;
      cb.count = stop - begin;
      cb.level = static_cast<std::uint16_t>(child_level);
      const BoxIndex ci = static_cast<BoxIndex>(t.boxes_.size());
      t.boxes_.push_back(cb);
      t.boxes_[bi].child[static_cast<std::size_t>(oct)] = ci;
      t.boxes_[bi].num_children++;
      stack.push_back({ci});
      begin = stop;
    }
    AMTFMM_ASSERT_MSG(begin == end, "child ranges must cover the parent");
  }

  // Locality assignment: contiguous Morton chunks of points; a box belongs
  // to the locality owning its median point (leaf expansions are thereby
  // pinned to the data distribution, the paper's placement constraint).
  for (auto& b : t.boxes_) {
    const std::uint32_t median = b.first + b.count / 2;
    b.locality = t.point_locality(b.count == 0 ? b.first : median);
  }
  return t;
}

std::optional<TreeUpdateStats> Tree::update(
    std::span<const PointMove> moves, std::span<const std::uint32_t> erased,
    std::span<const Vec3> inserted) {
  TreeUpdateStats stats;
  if (moves.empty() && erased.empty() && inserted.empty()) {
    return stats;  // empty dirty set: nothing to re-sort, structure intact
  }
  const std::uint32_t n = static_cast<std::uint32_t>(sorted_.size());
  for (std::size_t i = 0; i < erased.size(); ++i) {
    AMTFMM_ASSERT(erased[i] < n);
    AMTFMM_ASSERT_MSG(i == 0 || erased[i - 1] < erased[i],
                      "erased indices must be sorted and unique");
  }

  std::vector<std::uint32_t> slot_of(n);
  for (std::uint32_t i = 0; i < n; ++i) slot_of[perm_[i]] = i;

  // Leaf covering every slot (leaf ranges partition the sorted order).
  std::vector<BoxIndex> leaf_of(n);
  for (BoxIndex bi = 0; bi < boxes_.size(); ++bi) {
    const TreeBox& b = boxes_[bi];
    if (!b.is_leaf()) continue;
    for (std::uint32_t s = b.first; s < b.first + b.count; ++s) {
      leaf_of[s] = bi;
    }
  }

  // Root descent by octant; kNoBox when the path enters a pruned (empty)
  // region — a fresh build would create boxes there.
  auto descend = [&](std::uint64_t key) -> BoxIndex {
    BoxIndex bi = 0;
    while (!boxes_[bi].is_leaf()) {
      const int oct = octant_at(key, boxes_[bi].level + 1);
      const BoxIndex ci = boxes_[bi].child[static_cast<std::size_t>(oct)];
      if (ci == kNoBox) return kNoBox;
      bi = ci;
    }
    return bi;
  };

  // Vector-erase renumbering of a surviving original index.
  auto renumber = [&](std::uint32_t orig) {
    const auto it = std::lower_bound(erased.begin(), erased.end(), orig);
    return orig - static_cast<std::uint32_t>(it - erased.begin());
  };

  // Staging: nothing below mutates the tree until every feasibility check
  // has passed, so a nullopt return leaves the tree untouched.
  struct Arrival {
    std::uint64_t key;
    Vec3 pos;
    std::uint32_t orig;  ///< post-renumbering original index
  };
  std::vector<bool> gone(n, false);  ///< slot erased or moved away
  std::vector<std::vector<Arrival>> arrivals(boxes_.size());
  std::vector<std::int64_t> delta(boxes_.size(), 0);
  std::vector<bool> dirty(boxes_.size(), false);

  for (std::uint32_t o : erased) {
    const std::uint32_t s = slot_of[o];
    gone[s] = true;
    delta[leaf_of[s]] -= 1;
    dirty[leaf_of[s]] = true;
  }
  stats.erased = erased.size();

  for (const PointMove& m : moves) {
    AMTFMM_ASSERT(m.index < n);
    const std::uint32_t s = slot_of[m.index];
    AMTFMM_ASSERT_MSG(!gone[s], "point moved twice or erased-and-moved");
    if (!domain_.contains(m.position)) return std::nullopt;
    const std::uint64_t key = morton_key(m.position, domain_);
    const BoxIndex dst = descend(key);
    if (dst == kNoBox) return std::nullopt;
    gone[s] = true;
    delta[leaf_of[s]] -= 1;
    dirty[leaf_of[s]] = true;
    arrivals[dst].push_back({key, m.position, renumber(m.index)});
    delta[dst] += 1;
    dirty[dst] = true;
  }
  stats.moved = moves.size();

  const std::uint32_t base = n - static_cast<std::uint32_t>(erased.size());
  for (std::size_t j = 0; j < inserted.size(); ++j) {
    if (!domain_.contains(inserted[j])) return std::nullopt;
    const std::uint64_t key = morton_key(inserted[j], domain_);
    const BoxIndex dst = descend(key);
    if (dst == kNoBox) return std::nullopt;
    arrivals[dst].push_back(
        {key, inserted[j], base + static_cast<std::uint32_t>(j)});
    delta[dst] += 1;
    dirty[dst] = true;
  }
  stats.inserted = inserted.size();

  // Feasibility: the new counts must reproduce the classification a fresh
  // build would make — refine iff count > threshold below the level cap,
  // prune empty children.  Parents precede children in boxes_, so a
  // reverse walk sums bottom-up.
  std::vector<std::uint32_t> ncount(boxes_.size(), 0);
  for (BoxIndex bi = static_cast<BoxIndex>(boxes_.size()); bi-- > 0;) {
    const TreeBox& b = boxes_[bi];
    if (b.is_leaf()) {
      const std::int64_t c = static_cast<std::int64_t>(b.count) + delta[bi];
      if (c <= 0) return std::nullopt;  // leaf would be pruned
      if (c > threshold_ && b.level < kMaxLevel) return std::nullopt;
      ncount[bi] = static_cast<std::uint32_t>(c);
    } else {
      std::uint64_t c = 0;
      for (BoxIndex ci : b.child) {
        if (ci != kNoBox) c += ncount[ci];
      }
      // An internal box at or below the threshold would be a leaf.
      if (c <= static_cast<std::uint64_t>(threshold_)) return std::nullopt;
      ncount[bi] = static_cast<std::uint32_t>(c);
    }
  }

  // Commit.  Rebuild the sorted arrays leaf by leaf in `first` order so
  // parent ranges stay contiguous and nested; within one leaf every key
  // shares the leaf's Morton prefix, so a per-leaf sort by full key
  // reproduces the global sorted order.
  std::vector<BoxIndex> leaves;
  for (BoxIndex bi = 0; bi < boxes_.size(); ++bi) {
    if (boxes_[bi].is_leaf()) leaves.push_back(bi);
  }
  std::sort(leaves.begin(), leaves.end(), [&](BoxIndex a, BoxIndex b) {
    return boxes_[a].first < boxes_[b].first;
  });

  const std::size_t n_new = base + inserted.size();
  std::vector<Vec3> nsorted;
  std::vector<std::uint64_t> nskeys;
  std::vector<std::uint32_t> nperm;
  nsorted.reserve(n_new);
  nskeys.reserve(n_new);
  nperm.reserve(n_new);

  struct Entry {
    std::uint64_t key;
    Vec3 pos;
    std::uint32_t orig;
  };
  std::vector<Entry> ents;
  for (BoxIndex bi : leaves) {
    TreeBox& b = boxes_[bi];
    ents.clear();
    for (std::uint32_t s = b.first; s < b.first + b.count; ++s) {
      if (!gone[s]) ents.push_back({skeys_[s], sorted_[s], renumber(perm_[s])});
    }
    for (const Arrival& a : arrivals[bi]) {
      ents.push_back({a.key, a.pos, a.orig});
    }
    if (dirty[bi]) {
      ++stats.dirty_leaves;
      std::sort(ents.begin(), ents.end(),
                [](const Entry& x, const Entry& y) { return x.key < y.key; });
    }
    b.first = static_cast<std::uint32_t>(nsorted.size());
    b.count = static_cast<std::uint32_t>(ents.size());
    for (const Entry& e : ents) {
      nsorted.push_back(e.pos);
      nskeys.push_back(e.key);
      nperm.push_back(e.orig);
    }
  }
  AMTFMM_ASSERT(nsorted.size() == n_new);
  sorted_ = std::move(nsorted);
  skeys_ = std::move(nskeys);
  perm_ = std::move(nperm);

  // Internal ranges from the new leaf ranges, bottom-up.
  for (BoxIndex bi = static_cast<BoxIndex>(boxes_.size()); bi-- > 0;) {
    TreeBox& b = boxes_[bi];
    if (b.is_leaf()) continue;
    std::uint32_t first = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t count = 0;
    for (BoxIndex ci : b.child) {
      if (ci == kNoBox) continue;
      first = std::min(first, boxes_[ci].first);
      count += boxes_[ci].count;
    }
    b.first = first;
    b.count = count;
  }
  return stats;
}

std::uint32_t Tree::point_locality(std::uint32_t sorted_i) const {
  if (sorted_.empty() || num_localities_ <= 1) return 0;
  const std::size_t chunk =
      (sorted_.size() + num_localities_ - 1) / num_localities_;
  return static_cast<std::uint32_t>(sorted_i / chunk);
}

std::size_t Tree::num_leaves() const {
  std::size_t n = 0;
  for (const auto& b : boxes_) n += b.is_leaf() ? 1 : 0;
  return n;
}

std::vector<std::size_t> Tree::boxes_per_level() const {
  std::vector<std::size_t> out(static_cast<std::size_t>(max_level_) + 1, 0);
  for (const auto& b : boxes_) out[b.level]++;
  return out;
}

DualTree build_dual_tree(std::span<const Vec3> sources,
                         std::span<const Vec3> targets, int threshold,
                         int num_localities) {
  const Cube domain = bounding_cube(sources, targets);
  DualTree dt{Tree::build(sources, domain, threshold, num_localities),
              Tree::build(targets, domain, threshold, num_localities)};
  return dt;
}

}  // namespace amtfmm
