#include "tree/tree.hpp"

#include <algorithm>
#include <numeric>

#include "geom/morton.hpp"
#include "support/error.hpp"

namespace amtfmm {
namespace {

constexpr int kMaxLevel = 20;  // Morton keys carry 21 levels; keep margin

/// Extracts the octant of a key at `level` (level 1 = children of root).
int octant_at(std::uint64_t key, int level) {
  return static_cast<int>((key >> (3 * (21 - level))) & 7u);
}

}  // namespace

Tree Tree::build(std::span<const Vec3> points, const Cube& domain,
                 int threshold, int num_localities) {
  AMTFMM_ASSERT(threshold >= 1);
  AMTFMM_ASSERT(num_localities >= 1);
  Tree t;
  t.domain_ = domain;
  t.num_localities_ = static_cast<std::uint32_t>(num_localities);

  const std::size_t n = points.size();
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = morton_key(points[i], domain);

  t.perm_.resize(n);
  std::iota(t.perm_.begin(), t.perm_.end(), 0u);
  std::sort(t.perm_.begin(), t.perm_.end(),
            [&](std::uint32_t a, std::uint32_t b) { return keys[a] < keys[b]; });

  t.sorted_.resize(n);
  std::vector<std::uint64_t> skeys(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.sorted_[i] = points[t.perm_[i]];
    skeys[i] = keys[t.perm_[i]];
  }

  // Iterative refinement with an explicit work stack.  Child point ranges
  // are found by binary search on the sorted keys.
  struct Work {
    BoxIndex box;
  };
  t.boxes_.push_back(TreeBox{});
  t.boxes_[0].cube = domain;
  t.boxes_[0].first = 0;
  t.boxes_[0].count = static_cast<std::uint32_t>(n);
  std::vector<Work> stack{{0}};
  while (!stack.empty()) {
    const BoxIndex bi = stack.back().box;
    stack.pop_back();
    // Copy the POD fields we need; boxes_ may reallocate below.
    const std::uint32_t first = t.boxes_[bi].first;
    const std::uint32_t count = t.boxes_[bi].count;
    const std::uint16_t level = t.boxes_[bi].level;
    const Cube cube = t.boxes_[bi].cube;
    t.max_level_ = std::max(t.max_level_, static_cast<int>(level));
    if (count <= static_cast<std::uint32_t>(threshold) || level >= kMaxLevel) {
      continue;  // leaf
    }
    const int child_level = level + 1;
    std::uint32_t begin = first;
    const std::uint32_t end = first + count;
    for (int oct = 0; oct < 8 && begin < end; ++oct) {
      // Range of keys whose octant at child_level equals oct.
      std::uint32_t stop = begin;
      if (octant_at(skeys[begin], child_level) == oct) {
        // Binary search for the end of this octant run.
        std::uint32_t lo = begin, hi = end;
        while (lo < hi) {
          const std::uint32_t mid = lo + (hi - lo) / 2;
          if (octant_at(skeys[mid], child_level) <= oct) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        stop = lo;
      }
      if (stop == begin) continue;  // empty child pruned
      TreeBox cb;
      cb.cube = cube.child(oct);
      cb.parent = bi;
      cb.first = begin;
      cb.count = stop - begin;
      cb.level = static_cast<std::uint16_t>(child_level);
      const BoxIndex ci = static_cast<BoxIndex>(t.boxes_.size());
      t.boxes_.push_back(cb);
      t.boxes_[bi].child[static_cast<std::size_t>(oct)] = ci;
      t.boxes_[bi].num_children++;
      stack.push_back({ci});
      begin = stop;
    }
    AMTFMM_ASSERT_MSG(begin == end, "child ranges must cover the parent");
  }

  // Locality assignment: contiguous Morton chunks of points; a box belongs
  // to the locality owning its median point (leaf expansions are thereby
  // pinned to the data distribution, the paper's placement constraint).
  for (auto& b : t.boxes_) {
    const std::uint32_t median = b.first + b.count / 2;
    b.locality = t.point_locality(b.count == 0 ? b.first : median);
  }
  return t;
}

std::uint32_t Tree::point_locality(std::uint32_t sorted_i) const {
  if (sorted_.empty() || num_localities_ <= 1) return 0;
  const std::size_t chunk =
      (sorted_.size() + num_localities_ - 1) / num_localities_;
  return static_cast<std::uint32_t>(sorted_i / chunk);
}

std::size_t Tree::num_leaves() const {
  std::size_t n = 0;
  for (const auto& b : boxes_) n += b.is_leaf() ? 1 : 0;
  return n;
}

std::vector<std::size_t> Tree::boxes_per_level() const {
  std::vector<std::size_t> out(static_cast<std::size_t>(max_level_) + 1, 0);
  for (const auto& b : boxes_) out[b.level]++;
  return out;
}

DualTree build_dual_tree(std::span<const Vec3> sources,
                         std::span<const Vec3> targets, int threshold,
                         int num_localities) {
  const Cube domain = bounding_cube(sources, targets);
  DualTree dt{Tree::build(sources, domain, threshold, num_localities),
              Tree::build(targets, domain, threshold, num_localities)};
  return dt;
}

}  // namespace amtfmm
