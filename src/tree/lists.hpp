#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"

namespace amtfmm {

/// Entry of list 2 (the "V" list): a same-level well-separated source box
/// together with its integer offset (in box widths) from the target box.
/// The offset drives the directional classification of the merge-and-shift
/// technique and the diagonal plane-wave translations.
struct List2Entry {
  BoxIndex src;
  std::int8_t di;
  std::int8_t dj;
  std::int8_t dk;
};

/// The four interaction lists of the adaptive FMM, per target box, for a
/// dual (source/target) tree — Figure 1b of the paper:
///  - l1 (U): leaf target only; adjacent source leaves  -> S->T
///  - l2 (V): same-level well-separated, parents adjacent -> M->L (basic)
///            or M->I -> I->I -> I->L (advanced)
///  - l3 (W): leaf target only; smaller source boxes whose parent is
///            adjacent but which are themselves well separated -> M->T
///  - l4 (X): coarser source leaves separated from the box but not from its
///            parent -> S->L
///
/// `dag_leaf[b]` marks where the downward (L) recursion terminates: true
/// for real leaves and for subtree roots pruned because no same-level
/// source box is adjacent (the dual-tree pruning of reference [11] that the
/// paper adopts for non-identical ensembles).
struct InteractionLists {
  std::vector<std::vector<BoxIndex>> l1;
  std::vector<std::vector<List2Entry>> l2;
  std::vector<std::vector<BoxIndex>> l3;
  std::vector<std::vector<BoxIndex>> l4;
  std::vector<std::uint8_t> dag_leaf;

  std::size_t total_l1() const;
  std::size_t total_l2() const;
  std::size_t total_l3() const;
  std::size_t total_l4() const;
};

/// Builds all lists by a dual-tree traversal.
InteractionLists build_lists(const DualTree& dt);

/// True if the two cubes touch or overlap (share at least a boundary
/// point), i.e. they are NOT well separated.  Works across levels.
bool cubes_adjacent(const Cube& a, const Cube& b);

}  // namespace amtfmm
