#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "rtcheck/vclock.hpp"

namespace amtfmm::rtcheck {

/// FastTrack-style happens-before race checker driven by the sync_hook
/// event stream (DESIGN.md §3d).
///
/// Per-thread vector clocks advance on every tracked access; every atomic
/// location and mutex carries a release clock.  A release store assigns the
/// writer's clock to the location, a release RMW merges into it (RMWs
/// continue a release sequence), an acquire load/RMW joins it into the
/// reader, and relaxed operations create no edges at all.  Mutex unlock
/// assigns, lock joins.
///
/// Deliberate modeling choice: seq_cst operations contribute only their
/// acquire/release halves — there is NO global seq_cst clock.  The single
/// total order of seq_cst operations can order *other* locations' accesses
/// in ways this per-location model does not credit, so the checker verifies
/// the stronger per-location release/acquire discipline the runtime
/// documents.  This is what keeps a weakened fence detectable: crediting SC
/// totality would hand the deque's steal exactly the edge the
/// kStealBottomLoadRelaxed mutation removes.
class HbChecker {
 public:
  /// What a flagged plain access conflicted with.
  struct Race {
    int other_tid = -1;
    std::uint32_t other_step = 0;
    bool other_write = false;
  };

  void reset(int threads);

  void atomic_load(int tid, const void* a, std::memory_order mo);
  void atomic_store(int tid, const void* a, std::memory_order mo);
  void atomic_rmw(int tid, const void* a, std::memory_order mo);
  void mutex_acquire(int tid, const void* m);
  void mutex_release(int tid, const void* m);

  /// Checks one non-atomic shared access; returns the conflicting prior
  /// access when the two are not happens-before ordered.  `step` is the
  /// harness's schedule-point index, echoed back in reports.  Condition
  /// variables need no handling here: a waiter re-acquires the mutex, and
  /// the mutex edges carry the ordering.
  std::optional<Race> plain_access(int tid, const void* a, bool write,
                                   std::uint32_t step);

 private:
  struct Access {
    int tid = -1;
    std::uint32_t clk = 0;
    std::uint32_t step = 0;
  };
  struct PlainState {
    bool has_write = false;
    Access write;
    std::vector<Access> reads;  ///< one live entry per reading thread
  };

  static bool acquires(std::memory_order mo) {
    return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
           mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
  }
  static bool releases(std::memory_order mo) {
    return mo == std::memory_order_release ||
           mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
  }
  /// True when the recorded access happens-before thread `tid`'s present.
  bool ordered(const Access& a, int tid) const {
    return clocks_[static_cast<std::size_t>(tid)].at(
               static_cast<std::size_t>(a.tid)) >= a.clk;
  }

  std::vector<VClock> clocks_;
  std::map<const void*, VClock> atomic_rel_;
  std::map<const void*, VClock> mutex_rel_;
  std::map<const void*, PlainState> plain_;
};

}  // namespace amtfmm::rtcheck
