#include <array>
#include <cstring>
#include <memory>
#include <set>
#include <span>

#include "rtcheck/harness.hpp"
#include "rtcheck/model_executor.hpp"
#include "runtime/coalescer.hpp"
#include "runtime/counters.hpp"
#include "runtime/gas.hpp"
#include "runtime/lco.hpp"
#include "runtime/ws_deque.hpp"

// The scenario suites: each builds fresh runtime objects per execution and
// runs *unmodified* runtime code on the harness's model threads; the sync
// hooks inside WsDeque/LCO/ParcelCoalescer/Gas/CounterRegistry are the
// schedule points.  Scenario-owned payloads are declared to the checker via
// ScenarioContext::plain_read/plain_write so the happens-before verifier
// covers the ownership-transfer edges the structures promise.

namespace amtfmm::rtcheck {

namespace {

struct DequeItem {
  int payload = 0;
};

/// LCO whose reduction writes a plain accumulator, making the "reductions
/// are serialized per LCO" promise visible to the happens-before checker.
class ProbeLco final : public LCO {
 public:
  ProbeLco(Executor& ex, int inputs) : LCO(ex, inputs) {}

  void add(int v) { set_input(std::as_bytes(std::span<const int>(&v, 1))); }
  int total() const { return total_; }

 protected:
  void reduce(std::span<const std::byte> data) override {
    int v = 0;
    std::memcpy(&v, data.data(), sizeof v);
    sync_plain_write(&total_);
    total_ += v;
  }

 private:
  int total_ = 0;
};

Task make_task(std::function<void()> fn) {
  Task t;
  t.fn = std::move(fn);
  return t;
}

CoalesceConfig coalesce_cfg() {
  CoalesceConfig cfg;
  cfg.enabled = true;
  cfg.max_parcels = 8;
  cfg.max_bytes = 1 << 20;
  return cfg;
}

Scenario deque_steal_vs_pop() {
  Scenario s;
  s.name = "deque.steal_vs_pop";
  s.summary =
      "owner pushes two items and pops; one thief steals — verifies the "
      "payload ownership transfer and that no item is lost or duplicated";
  s.make = [](ScenarioContext& ctx) {
    struct St {
      WsDeque<DequeItem> dq{8};
      std::array<DequeItem, 2> items{};
      std::array<DequeItem*, 2> popped{};
      DequeItem* stolen = nullptr;
      int stolen_val = -1;
      std::array<int, 2> popped_val{-1, -1};
    };
    auto st = std::make_shared<St>();
    ctx.label(&st->items[0].payload, "items[0].payload");
    ctx.label(&st->items[1].payload, "items[1].payload");
    ScenarioRun run;
    run.bodies.push_back([st, &ctx] {  // T0: owner
      for (int i = 0; i < 2; ++i) {
        ctx.plain_write(&st->items[static_cast<std::size_t>(i)].payload);
        st->items[static_cast<std::size_t>(i)].payload = 10 + i;
        st->dq.push(&st->items[static_cast<std::size_t>(i)]);
      }
      for (int i = 0; i < 2; ++i) {
        DequeItem* it = st->dq.pop();
        st->popped[static_cast<std::size_t>(i)] = it;
        if (it != nullptr) {
          ctx.plain_read(&it->payload);
          st->popped_val[static_cast<std::size_t>(i)] = it->payload;
        }
      }
    });
    run.bodies.push_back([st, &ctx] {  // T1: thief
      DequeItem* it = st->dq.steal();
      st->stolen = it;
      if (it != nullptr) {
        ctx.plain_read(&it->payload);
        st->stolen_val = it->payload;
      }
    });
    run.finish = [st, &ctx] {
      std::set<DequeItem*> seen;
      int delivered = 0;
      for (DequeItem* p : {st->popped[0], st->popped[1], st->stolen}) {
        if (p == nullptr) continue;
        ++delivered;
        ctx.check(seen.insert(p).second, "item delivered twice");
      }
      ctx.check(delivered == 2, "an item was lost");
      if (st->stolen != nullptr) {
        ctx.check(st->stolen_val == st->stolen->payload,
                  "thief read a torn payload");
      }
    };
    return run;
  };
  return s;
}

Scenario deque_two_thieves() {
  Scenario s;
  s.name = "deque.two_thieves";
  s.summary =
      "two thieves race each other and the owner's pop for two items — "
      "verifies the top-CAS hands each item to exactly one consumer";
  s.make = [](ScenarioContext& ctx) {
    struct St {
      WsDeque<DequeItem> dq{8};
      std::array<DequeItem, 2> items{};
      std::array<DequeItem*, 3> got{};  // [owner, thief1, thief2]
    };
    auto st = std::make_shared<St>();
    ctx.label(&st->items[0].payload, "items[0].payload");
    ctx.label(&st->items[1].payload, "items[1].payload");
    ScenarioRun run;
    run.bodies.push_back([st, &ctx] {  // T0: owner pushes 2, pops 1
      for (int i = 0; i < 2; ++i) {
        ctx.plain_write(&st->items[static_cast<std::size_t>(i)].payload);
        st->items[static_cast<std::size_t>(i)].payload = 20 + i;
        st->dq.push(&st->items[static_cast<std::size_t>(i)]);
      }
      st->got[0] = st->dq.pop();
      if (st->got[0] != nullptr) ctx.plain_read(&st->got[0]->payload);
    });
    for (int thief = 1; thief <= 2; ++thief) {
      run.bodies.push_back([st, &ctx, thief] {
        DequeItem* it = st->dq.steal();
        st->got[static_cast<std::size_t>(thief)] = it;
        if (it != nullptr) ctx.plain_read(&it->payload);
      });
    }
    run.finish = [st, &ctx] {
      std::set<DequeItem*> seen;
      int delivered = 0;
      for (DequeItem* p : st->got) {
        if (p == nullptr) continue;
        ++delivered;
        ctx.check(seen.insert(p).second, "item delivered twice");
      }
      // Anything not delivered must still be in the deque.
      while (DequeItem* p = st->dq.pop()) {
        ++delivered;
        ctx.check(seen.insert(p).second, "item delivered twice");
      }
      ctx.check(delivered == 2, "an item was lost");
    };
    return run;
  };
  return s;
}

Scenario deque_stress() {
  Scenario s;
  s.name = "deque.stress";
  s.summary =
      "owner interleaves four pushes with pops against two looping thieves "
      "(randomized exploration only; the space defeats bounded DFS)";
  s.dfs_feasible = false;
  s.make = [](ScenarioContext& ctx) {
    struct St {
      WsDeque<DequeItem> dq{8};
      std::array<DequeItem, 4> items{};
      std::array<std::set<DequeItem*>, 3> got{};
    };
    auto st = std::make_shared<St>();
    for (std::size_t i = 0; i < st->items.size(); ++i) {
      ctx.label(&st->items[i].payload,
                "items[" + std::to_string(i) + "].payload");
    }
    ScenarioRun run;
    run.bodies.push_back([st, &ctx] {  // T0: owner
      for (std::size_t i = 0; i < st->items.size(); ++i) {
        ctx.plain_write(&st->items[i].payload);
        st->items[i].payload = static_cast<int>(30 + i);
        st->dq.push(&st->items[i]);
        if (i % 2 == 1) {
          if (DequeItem* p = st->dq.pop()) {
            ctx.plain_read(&p->payload);
            ctx.check(st->got[0].insert(p).second, "owner popped an item twice");
          }
        }
      }
    });
    for (int thief = 1; thief <= 2; ++thief) {
      run.bodies.push_back([st, &ctx, thief] {
        for (int i = 0; i < 2; ++i) {
          if (DequeItem* p = st->dq.steal()) {
            ctx.plain_read(&p->payload);
            ctx.check(st->got[static_cast<std::size_t>(thief)].insert(p).second,
                      "thief stole an item twice");
          }
        }
      });
    }
    run.finish = [st, &ctx] {
      std::set<DequeItem*> seen;
      std::size_t delivered = 0;
      for (const auto& g : st->got) {
        for (DequeItem* p : g) {
          ++delivered;
          ctx.check(seen.insert(p).second, "item delivered twice");
        }
      }
      while (DequeItem* p = st->dq.pop()) {
        ++delivered;
        ctx.check(seen.insert(p).second, "item delivered twice");
      }
      ctx.check(delivered == st->items.size(), "an item was lost");
    };
    return run;
  };
  return s;
}

Scenario lco_trigger_once() {
  Scenario s;
  s.name = "lco.trigger_once";
  s.summary =
      "two threads race set_input on a 2-input LCO — verifies the LCO fires "
      "exactly once and the reductions are serialized under the LCO lock";
  s.make = [](ScenarioContext& ctx) {
    struct St {
      ModelExecutor ex;
      ProbeLco lco{ex, 2};
      int continuation_runs = 0;
    };
    auto st = std::make_shared<St>();
    ctx.label(&st->lco, "lco");
    st->lco.register_continuation(make_task([st] { ++st->continuation_runs; }));
    ScenarioRun run;
    for (int t = 0; t < 2; ++t) {
      run.bodies.push_back([st] { st->lco.add(1); });
    }
    run.finish = [st, &ctx] {
      st->ex.drain();
      ctx.check(st->lco.triggered(), "LCO did not trigger");
      ctx.check(st->lco.total() == 2, "a reduction was lost");
      ctx.check(st->continuation_runs == 1,
                "continuation ran " + std::to_string(st->continuation_runs) +
                    " times");
    };
    return run;
  };
  return s;
}

Scenario lco_late_continuation() {
  Scenario s;
  s.name = "lco.late_continuation";
  s.summary =
      "register_continuation races the fire — verifies the continuation "
      "runs exactly once whether it registered before or after the trigger";
  s.make = [](ScenarioContext& ctx) {
    struct St {
      ModelExecutor ex;
      ProbeLco lco{ex, 1};
      int continuation_runs = 0;
    };
    auto st = std::make_shared<St>();
    ctx.label(&st->lco, "lco");
    ScenarioRun run;
    run.bodies.push_back([st] { st->lco.add(7); });
    run.bodies.push_back([st] {
      st->lco.register_continuation(
          make_task([st] { ++st->continuation_runs; }));
    });
    run.finish = [st, &ctx] {
      st->ex.drain();
      ctx.check(st->lco.triggered(), "LCO did not trigger");
      ctx.check(st->continuation_runs == 1,
                "continuation ran " + std::to_string(st->continuation_runs) +
                    " times");
    };
    return run;
  };
  return s;
}

Scenario lco_wait_vs_fire() {
  Scenario s;
  s.name = "lco.wait_vs_fire";
  s.summary =
      "a waiter blocks on the LCO condition variable while another thread "
      "delivers the final input — a lost wakeup shows up as a model deadlock";
  s.make = [](ScenarioContext& ctx) {
    struct St {
      ModelExecutor ex;
      ProbeLco lco{ex, 1};
      bool woke = false;
    };
    auto st = std::make_shared<St>();
    ctx.label(&st->lco, "lco");
    ScenarioRun run;
    run.bodies.push_back([st] {
      st->lco.wait();
      st->woke = true;
    });
    run.bodies.push_back([st] { st->lco.add(1); });
    run.finish = [st, &ctx] {
      ctx.check(st->woke, "waiter did not wake");
      ctx.check(st->lco.total() == 1, "reduction lost");
    };
    return run;
  };
  return s;
}

Scenario coalescer_flush_vs_enqueue() {
  Scenario s;
  s.name = "coalescer.flush_vs_enqueue";
  s.summary =
      "enqueues race a quiescence flush — verifies pending_per_src_ never "
      "under-reports the buffered parcels (idle-path emptiness probes)";
  s.make = [](ScenarioContext& ctx) {
    struct St {
      ParcelCoalescer co{2, coalesce_cfg()};
      std::size_t taken = 0;
    };
    auto st = std::make_shared<St>();
    ctx.label(&st->co, "coalescer");
    ScenarioRun run;
    run.bodies.push_back([st] {  // T0: two enqueues from locality 0
      for (int i = 0; i < 2; ++i) {
        st->co.enqueue(0, 1, 16, Task{}, 0.0);
      }
    });
    run.bodies.push_back([st] {  // T1: quiescence flush of locality 0
      for (auto& b : st->co.take_all_from(0)) st->taken += b.tasks.size();
    });
    run.finish = [st, &ctx] {
      std::size_t total = st->taken;
      for (auto& b : st->co.take_all()) total += b.tasks.size();
      ctx.check(total == 2, "parcels lost across flush (" +
                                std::to_string(total) + " of 2)");
    };
    return run;
  };
  return s;
}

Scenario coalescer_quiescence() {
  Scenario s;
  s.name = "coalescer.quiescence";
  s.summary =
      "two producers against an idle prober that trusts pending_from()==0 — "
      "randomized exploration of the emptiness-probe invariant";
  s.dfs_feasible = false;
  s.make = [](ScenarioContext& ctx) {
    struct St {
      ParcelCoalescer co{2, coalesce_cfg()};
      std::size_t taken = 0;
    };
    auto st = std::make_shared<St>();
    ctx.label(&st->co, "coalescer");
    ScenarioRun run;
    run.bodies.push_back([st] {
      st->co.enqueue(0, 1, 16, Task{}, 0.0);
      st->co.enqueue(0, 0, 16, Task{}, 0.0);
    });
    run.bodies.push_back([st] { st->co.enqueue(0, 1, 16, Task{}, 0.0); });
    run.bodies.push_back([st] {  // idle path: probe, flush only if pending
      for (int i = 0; i < 3; ++i) {
        if (!st->co.pending_from(0)) continue;
        for (auto& b : st->co.take_all_from(0)) st->taken += b.tasks.size();
      }
    });
    run.finish = [st, &ctx] {
      std::size_t total = st->taken;
      for (auto& b : st->co.take_all()) total += b.tasks.size();
      ctx.check(total == 3, "parcels lost across quiescence flush");
    };
    return run;
  };
  return s;
}

Scenario gas_alloc_resolve() {
  Scenario s;
  s.name = "gas.alloc_resolve";
  s.summary =
      "one thread allocates a GAS object while another resolves it — "
      "verifies the release/acquire edge on the heap size covers the slot";
  s.make = [](ScenarioContext& ctx) {
    struct St {
      ModelExecutor ex;
      Gas gas{1};
      LCO* resolved = nullptr;
    };
    auto st = std::make_shared<St>();
    // Pre-create chunk 0 on the controller so the test isolates the size
    // edge: otherwise the chunk-pointer release store (first alloc) would
    // order the slot contents even with the size edge broken.
    st->gas.alloc(0, std::make_unique<ProbeLco>(st->ex, 1));
    ScenarioRun run;
    run.bodies.push_back([st] {  // T0: publish slot 1
      st->gas.alloc(0, std::make_unique<ProbeLco>(st->ex, 1));
    });
    run.bodies.push_back([st] {  // T1: resolve slot 1 once it is published
      if (st->gas.objects_on(0) >= 2) {
        st->resolved = st->gas.resolve(GlobalAddress{0, 1});
      }
    });
    run.finish = [st, &ctx] {
      ctx.check(st->gas.objects_on(0) == 2, "allocation lost");
      if (st->resolved != nullptr) {
        ctx.check(!st->resolved->triggered(), "resolved object corrupt");
      }
    };
    return run;
  };
  return s;
}

Scenario gas_concurrent_alloc() {
  Scenario s;
  s.name = "gas.concurrent_alloc";
  s.summary =
      "two threads allocate on the same locality — verifies the heap lock "
      "serializes slot assignment and both objects stay resolvable";
  s.make = [](ScenarioContext& ctx) {
    struct St {
      ModelExecutor ex;
      Gas gas{1};
      std::array<GlobalAddress, 2> addr{};
    };
    auto st = std::make_shared<St>();
    ScenarioRun run;
    for (int t = 0; t < 2; ++t) {
      run.bodies.push_back([st, t] {
        st->addr[static_cast<std::size_t>(t)] =
            st->gas.alloc(0, std::make_unique<ProbeLco>(st->ex, 1));
      });
    }
    run.finish = [st, &ctx] {
      ctx.check(st->gas.objects_on(0) == 2, "allocation lost");
      ctx.check(st->addr[0].slot != st->addr[1].slot, "slot assigned twice");
      for (const GlobalAddress& a : st->addr) {
        ctx.check(st->gas.resolve(a) != nullptr, "object unresolvable");
      }
    };
    return run;
  };
  return s;
}

Scenario counters_snapshot_consistency() {
  Scenario s;
  s.name = "counters.snapshot_consistency";
  s.summary =
      "a snapshot races a histogram observe — verifies count-last with "
      "release keeps count covered by the sum and buckets it reports";
  s.make = [](ScenarioContext& ctx) {
    struct St {
      CounterRegistry reg{2};
      CounterRegistry::Id h = CounterRegistry::kNoId;
      St() {
        h = reg.histogram("rtcheck.probe");
        reg.set_enabled(true);
      }
    };
    auto st = std::make_shared<St>();
    ScenarioRun run;
    run.bodies.push_back([st] { st->reg.observe(0, st->h, 4); });
    run.bodies.push_back([st, &ctx] {
      const CounterSnapshot snap = st->reg.snapshot();
      for (const auto& h : snap.histograms) {
        if (h.name != "rtcheck.probe") continue;
        std::uint64_t in_buckets = 0;
        for (std::uint64_t b : h.buckets) in_buckets += b;
        ctx.check(h.sum >= h.count * 4,
                  "snapshot count outruns its sum (count=" +
                      std::to_string(h.count) +
                      " sum=" + std::to_string(h.sum) + ")");
        ctx.check(in_buckets >= h.count, "snapshot count outruns its buckets");
      }
    });
    run.finish = [st, &ctx] {
      const CounterSnapshot snap = st->reg.snapshot();
      ctx.check(!snap.histograms.empty() && snap.histograms[0].count == 1 &&
                    snap.histograms[0].sum == 4,
                "final snapshot wrong");
    };
    return run;
  };
  return s;
}

// Self-check scenarios: deliberately buggy micro-programs that validate the
// detectors themselves; the harness must flag every one of them.

Scenario selfcheck_double_fire() {
  Scenario s;
  s.name = "selfcheck.double_fire";
  s.summary = "emits kLcoFire twice — the trigger-once detector must flag it";
  s.expect_fail = true;
  s.make = [](ScenarioContext& ctx) {
    auto st = std::make_shared<int>(0);
    ctx.label(st.get(), "probe-lco");
    ScenarioRun run;
    for (int t = 0; t < 2; ++t) {
      run.bodies.push_back(
          [st] { sync_event(SyncKind::kLcoFire, st.get(), 0); });
    }
    return run;
  };
  return s;
}

Scenario selfcheck_plain_race() {
  Scenario s;
  s.name = "selfcheck.plain_race";
  s.summary =
      "two unsynchronized plain writes — the happens-before checker must "
      "flag them in every schedule";
  s.expect_fail = true;
  s.make = [](ScenarioContext& ctx) {
    auto st = std::make_shared<int>(0);
    ctx.label(st.get(), "shared-int");
    ScenarioRun run;
    for (int t = 0; t < 2; ++t) {
      run.bodies.push_back([st, &ctx] {
        ctx.plain_write(st.get());
        *st += 1;
      });
    }
    return run;
  };
  return s;
}

Scenario selfcheck_deadlock() {
  Scenario s;
  s.name = "selfcheck.deadlock";
  s.summary =
      "classic lock-order inversion over two SyncMutexes — DFS must reach "
      "the deadlocking interleaving and report it";
  s.expect_fail = true;
  s.make = [](ScenarioContext& ctx) {
    struct St {
      SyncMutex a;
      SyncMutex b;
    };
    auto st = std::make_shared<St>();
    ctx.label(&st->a, "mutex-a");
    ctx.label(&st->b, "mutex-b");
    ScenarioRun run;
    run.bodies.push_back([st] {
      std::lock_guard la(st->a);
      std::lock_guard lb(st->b);
    });
    run.bodies.push_back([st] {
      std::lock_guard lb(st->b);
      std::lock_guard la(st->a);
    });
    return run;
  };
  return s;
}

Scenario serve_lco_reset_epoch() {
  Scenario s;
  s.name = "serve.lco_reset_epoch";
  s.summary =
      "two threads race the final inputs of epoch 1, then the boundary "
      "re-arms the LCO and delivers epoch 2 — verifies rearm() resets the "
      "trigger-once state without tripping the double-fire detector";
  s.make = [](ScenarioContext& ctx) {
    struct St {
      ModelExecutor ex;
      ProbeLco lco{ex, 2};
      int continuation_runs = 0;
    };
    auto st = std::make_shared<St>();
    ctx.label(&st->lco, "lco");
    st->lco.register_continuation(make_task([st] { ++st->continuation_runs; }));
    ScenarioRun run;
    for (int t = 0; t < 2; ++t) {
      run.bodies.push_back([st] { st->lco.add(1); });
    }
    run.finish = [st, &ctx] {
      st->ex.drain();
      ctx.check(st->lco.triggered(), "epoch 1 did not trigger");
      ctx.check(st->lco.total() == 2, "an epoch-1 reduction was lost");
      // Epoch boundary: the transport is drained (bodies joined), so the
      // re-arm is legal; the detector's budget resets to one fire.
      st->lco.rearm(2);
      ctx.check(!st->lco.triggered(), "rearm left the LCO triggered");
      st->lco.add(1);
      st->lco.add(1);
      st->ex.drain();
      ctx.check(st->lco.triggered(), "epoch 2 did not trigger");
      ctx.check(st->lco.total() == 4, "an epoch-2 reduction was lost");
      ctx.check(st->continuation_runs == 1,
                "epoch-1 continuation ran " +
                    std::to_string(st->continuation_runs) + " times");
    };
    return run;
  };
  return s;
}

Scenario serve_reset_vs_late_input() {
  Scenario s;
  s.name = "serve.reset_vs_late_input";
  s.summary =
      "an epoch re-arm races a straggler fire from the previous epoch "
      "(modeled as raw sync events: set_input on real LCOs aborts) — the "
      "detector must reach a schedule where the late fire lands after the "
      "re-arm and charge it to the new epoch's once-only budget";
  s.expect_fail = true;
  s.make = [](ScenarioContext& ctx) {
    auto st = std::make_shared<int>(0);
    ctx.label(st.get(), "resident-lco");
    ScenarioRun run;
    // Epoch 1's fire, possibly late: a boundary that does NOT wait for
    // quiescence lets this land after the re-arm.
    run.bodies.push_back([st] { sync_event(SyncKind::kLcoFire, st.get(), 0); });
    // The boundary re-arms and epoch 2 runs to completion (its own fire).
    run.bodies.push_back([st] {
      sync_event(SyncKind::kLcoRearm, st.get(), 1);
      sync_event(SyncKind::kLcoFire, st.get(), 0);
    });
    return run;
  };
  return s;
}

Scenario serve_epoch_quiescence() {
  Scenario s;
  s.name = "serve.epoch_quiescence";
  s.summary =
      "a quiescence-gated epoch boundary (flush the coalescer, then re-arm) "
      "races a producer and the epoch-1 fire — randomized exploration that "
      "the drained-then-rearm protocol never loses parcels or double-fires";
  s.dfs_feasible = false;
  s.make = [](ScenarioContext& ctx) {
    struct St {
      ModelExecutor ex;
      ParcelCoalescer co{2, coalesce_cfg()};
      ProbeLco lco{ex, 1};
      std::size_t flushed = 0;
      bool rearmed = false;
    };
    auto st = std::make_shared<St>();
    ctx.label(&st->co, "coalescer");
    ctx.label(&st->lco, "lco");
    ScenarioRun run;
    run.bodies.push_back([st] { st->lco.add(1); });  // epoch-1 final input
    run.bodies.push_back([st] {                      // epoch-1 parcel traffic
      st->co.enqueue(0, 1, 16, Task{}, 0.0);
      st->co.enqueue(0, 1, 16, Task{}, 0.0);
    });
    run.bodies.push_back([st] {  // boundary: only past a quiescent transport
      if (!st->lco.triggered()) return;  // epoch 1 still running
      if (st->co.pending_from(0)) {
        for (auto& b : st->co.take_all_from(0)) {
          st->flushed += b.tasks.size();
        }
      }
      st->lco.rearm(1);
      st->rearmed = true;
    });
    run.finish = [st, &ctx] {
      st->ex.drain();
      std::size_t total = st->flushed;
      for (auto& b : st->co.take_all()) total += b.tasks.size();
      ctx.check(total == 2, "parcels lost across the epoch boundary");
      if (st->rearmed) {
        st->lco.add(1);  // epoch 2 on the re-armed LCO
        st->ex.drain();
        ctx.check(st->lco.triggered(), "epoch 2 did not trigger");
        ctx.check(st->lco.total() == 2, "an epoch-2 reduction was lost");
      } else {
        ctx.check(st->lco.triggered() && st->lco.total() == 1,
                  "epoch 1 lost its reduction");
      }
    };
    return run;
  };
  return s;
}

}  // namespace

const std::vector<Scenario>& all_scenarios() {
  static const std::vector<Scenario> kScenarios = {
      deque_steal_vs_pop(),
      deque_two_thieves(),
      deque_stress(),
      lco_trigger_once(),
      lco_late_continuation(),
      lco_wait_vs_fire(),
      coalescer_flush_vs_enqueue(),
      coalescer_quiescence(),
      gas_alloc_resolve(),
      gas_concurrent_alloc(),
      counters_snapshot_consistency(),
      serve_lco_reset_epoch(),
      serve_reset_vs_late_input(),
      serve_epoch_quiescence(),
      selfcheck_double_fire(),
      selfcheck_plain_race(),
      selfcheck_deadlock(),
  };
  return kScenarios;
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : all_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace amtfmm::rtcheck
