#include "rtcheck/model_executor.hpp"

#include <memory>
#include <mutex>
#include <utility>

#include "runtime/locality_runtime.hpp"

namespace amtfmm::rtcheck {

ModelExecutor::ModelExecutor(int localities) : localities_(localities) {
  rt_ = std::make_unique<LocalityRuntime>(localities, /*total_workers=*/1,
                                          CoalesceConfig{});
}

void ModelExecutor::spawn(Task t) {
  std::lock_guard lk(mu_);
  queue_.push_back(std::move(t));
  ++spawned_total_;
}

void ModelExecutor::send(std::uint32_t from, std::uint32_t to,
                         std::size_t bytes, Task t) {
  (void)from;
  (void)bytes;
  t.locality = to;
  spawn(std::move(t));
}

double ModelExecutor::drain() {
  for (;;) {
    Task t;
    {
      std::lock_guard lk(mu_);
      if (queue_.empty()) return 0.0;
      t = std::move(queue_.front());
      queue_.pop_front();
    }
    if (t.fn) t.fn();
  }
}

}  // namespace amtfmm::rtcheck
