#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rtcheck/hb.hpp"
#include "rtcheck/strategy.hpp"
#include "runtime/sync_hook.hpp"

namespace amtfmm {
class JsonWriter;
}

namespace amtfmm::rtcheck {

/// How the harness walks the schedule space of a scenario.
struct RtOptions {
  enum class Mode { kDfs, kPct, kReplay };

  Mode mode = Mode::kDfs;
  /// DFS: involuntary-context-switch budget per schedule.
  int preemption_bound = 2;
  /// DFS: schedule budget; exploration reports complete=false when hit.
  std::uint64_t max_executions = 1u << 20;
  /// Per-execution schedule-point budget (runaway/livelock guard).
  std::uint64_t max_steps = 1u << 16;
  /// PCT: base seed; execution i runs from seed + i and replays from that
  /// seed alone.
  std::uint64_t seed = 1;
  std::uint64_t pct_executions = 256;
  int pct_depth = 3;
  /// Replay: the pick sequence of a previously reported failure.
  std::vector<int> replay_schedule;
  /// Fault injection: which seeded bug to enable (kNone for clean runs).
  Mutation mutation = Mutation::kNone;
};

/// One schedule-point record of the failing execution.
struct RtTraceEvent {
  std::uint32_t step = 0;
  int tid = -1;
  SyncKind kind = SyncKind::kAtomicLoad;
  std::uint64_t info = 0;
  std::string label;  ///< scenario label of the address, or its hex form
};

/// Result of exploring one scenario.
struct RtReport {
  std::string scenario;
  std::string mode;
  Mutation mutation = Mutation::kNone;
  bool failed = false;
  bool complete = false;  ///< DFS: bounded space exhausted within budgets
  bool diverged = false;  ///< replay: recorded schedule did not match
  std::uint64_t executions = 0;  ///< schedules explored
  std::uint64_t seed = 0;        ///< failing execution's seed (PCT)
  std::string message;
  std::vector<int> schedule;  ///< failing execution's pick sequence
  std::vector<RtTraceEvent> trace;

  /// Serializes the report (schedule as a pick array, trace inline).
  void append_json(JsonWriter& w) const;
};

class Harness;

/// Handed to a scenario's make(): labels addresses for reports, tracks
/// scenario-owned plain shared data, and raises checked failures.
class ScenarioContext {
 public:
  explicit ScenarioContext(Harness* h) : h_(h) {}

  void label(const void* addr, std::string name);
  /// Declare a non-atomic access to scenario-owned shared data; the
  /// happens-before checker verifies it against all concurrent accesses.
  void plain_read(const void* addr) const { sync_plain_read(addr); }
  void plain_write(const void* addr) const { sync_plain_write(addr); }
  /// Fails the current execution (recording its schedule) when !cond.
  void check(bool cond, const std::string& msg);
  void fail(const std::string& msg);

 private:
  Harness* h_;
};

/// One execution's thread bodies plus an optional post-join check, built
/// fresh for every explored schedule.
struct ScenarioRun {
  std::vector<std::function<void()>> bodies;
  std::function<void()> finish;  ///< runs single-threaded after all bodies
};

/// A named concurrency scenario over real runtime code.
struct Scenario {
  std::string name;     ///< "suite.case", e.g. "deque.steal_vs_pop"
  std::string summary;
  bool dfs_feasible = true;  ///< false: schedule space too large, PCT only
  bool expect_fail = false;  ///< self-check scenarios that must be flagged
  std::function<ScenarioRun(ScenarioContext&)> make;
};

const std::vector<Scenario>& all_scenarios();
const Scenario* find_scenario(const std::string& name);

/// The canonical scenario that detects a given seeded mutation.
const char* mutation_scenario(Mutation m);
const char* mutation_name(Mutation m);
/// kNone for "" or "none"; aborts on unknown names via config_error.
Mutation mutation_from_name(const std::string& name);
const char* sync_kind_name(SyncKind k);
std::string format_schedule(const std::vector<int>& s);
std::vector<int> parse_schedule(const std::string& csv);

/// The model checker: runs a scenario's threads as real OS threads under a
/// serialized token-passing scheduler whose only switch points are the
/// sync_hook sites, explores schedules with the configured strategy, and
/// layers the happens-before checker plus protocol invariants (LCO fires
/// at most once, the coalescer's pending counter never under-reports its
/// buffers) over the event stream.  Deterministic: a pick sequence or a
/// PCT seed replays an execution exactly.
class Harness final : public SyncObserver {
 public:
  Harness(const Scenario& sc, const RtOptions& opt);
  ~Harness() override = default;

  RtReport run();

  // SyncObserver (called from model threads only):
  void pre(SyncKind k, const void* addr, std::memory_order mo,
           std::uint64_t info) override;
  void post_load(const void* addr, std::memory_order mo) override;
  void post_store(const void* addr, std::memory_order mo) override;
  void post_rmw(const void* addr, std::memory_order mo) override;
  void mutex_lock(const void* m) override;
  bool mutex_try_lock(const void* m) override;
  void mutex_unlock(const void* m) override;
  void cv_register(const void* cv) override;
  void cv_block(const void* cv) override;
  void cv_notify_all(const void* cv) override;
  std::memory_order order_at(Mutation point, std::memory_order d) override;
  bool mutation_on(Mutation point) override;

 private:
  friend class ScenarioContext;

  /// Unwind token: thrown through scenario/runtime frames to stop a model
  /// thread at its current schedule point when the execution aborts.
  struct AbortExecution {};

  enum class TState : std::uint8_t {
    kNotStarted,
    kRunnable,
    kBlockedMutex,
    kBlockedCv,
    kFinished,
  };
  struct ModelThread {
    TState state = TState::kNotStarted;
    const void* wait_addr = nullptr;
    const void* cv_wait = nullptr;  ///< cv registered on (pre-block window)
    bool cv_notified = false;
    std::thread th;
  };

  static constexpr std::size_t kMaxTraceEvents = 1u << 16;

  void run_one(Strategy& strat);
  void thread_main(int tid);
  void on_thread_done(int me);

  /// Entry guard for hooks that may yield: false when the caller is not a
  /// model thread or the execution is tearing down mid-unwind; throws
  /// AbortExecution when the execution aborted and we can still unwind.
  bool enter_hook();
  bool enter_hook_nothrow() const;
  void bump_step_or_fail();
  void record(int tid, SyncKind k, const void* addr, std::uint64_t info);
  std::string label_of(const void* addr) const;

  /// Consults the strategy; records the pick.  Returns -1 when every
  /// thread finished; raises a deadlock failure (and throws) when all
  /// remaining threads are blocked.
  int select_next(int me, bool me_runnable);
  /// Standard schedule point of a runnable thread: pick and hand over.
  void yield_point(int me);
  void resume(int next);
  void resume_and_wait(int next, int me);
  [[noreturn]] void fail_now(const std::string& msg);
  void scenario_fail(const std::string& msg);
  void do_abort();
  void check_coalescer(const void* c);
  std::string deadlock_message() const;

  const Scenario& sc_;
  RtOptions opt_;
  ScenarioContext ctx_;
  Strategy* strat_ = nullptr;
  ScenarioRun run_state_;

  // Token passing: cmu_/ccv_ guard active_ only; all other model state is
  // touched exclusively by the token holder (execution is serialized).
  std::mutex cmu_;
  std::condition_variable ccv_;
  int active_ = -1;  ///< tid holding the token (-1: controller)
  std::atomic<bool> abort_{false};

  std::vector<ModelThread> threads_;
  std::uint32_t step_ = 0;
  std::vector<int> schedule_;
  std::vector<RtTraceEvent> trace_;
  HbChecker hb_;
  std::map<const void*, int> mutexes_;  ///< model holder tid, -1 free
  std::map<const void*, int> fires_;
  std::map<const void*, std::int64_t> buffered_;
  std::map<const void*, std::int64_t> pending_;
  std::map<const void*, std::string> labels_;
  mutable std::map<const void*, std::size_t> anon_;  ///< see label_of()

  std::string failure_;
  std::vector<int> failed_schedule_;
  std::vector<RtTraceEvent> failed_trace_;
};

}  // namespace amtfmm::rtcheck
