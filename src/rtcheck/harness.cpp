#include "rtcheck/harness.hpp"

#include <exception>
#include <memory>

#include "support/error.hpp"
#include "support/json.hpp"

namespace amtfmm::rtcheck {

namespace {

/// Model-thread id of the calling OS thread; -1 on the controller and on
/// any thread the harness does not own.
thread_local int tls_tid = -1;

}  // namespace

// ---------------------------------------------------------------------------
// Names and formats.

const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kNone:
      return "none";
    case Mutation::kStealBottomLoadRelaxed:
      return "steal-bottom-relaxed";
    case Mutation::kLcoSetInputNoLock:
      return "lco-set-input-no-lock";
    case Mutation::kCoalescerCountAfterInsert:
      return "coalescer-count-after-insert";
    case Mutation::kGasResolveRelaxed:
      return "gas-resolve-relaxed";
    case Mutation::kCountersCountEarly:
      return "counters-count-early";
  }
  return "unknown";
}

Mutation mutation_from_name(const std::string& name) {
  for (Mutation m :
       {Mutation::kNone, Mutation::kStealBottomLoadRelaxed,
        Mutation::kLcoSetInputNoLock, Mutation::kCoalescerCountAfterInsert,
        Mutation::kGasResolveRelaxed, Mutation::kCountersCountEarly}) {
    if (name == mutation_name(m)) return m;
  }
  if (name.empty()) return Mutation::kNone;
  throw config_error("unknown mutation: " + name);
}

const char* mutation_scenario(Mutation m) {
  switch (m) {
    case Mutation::kNone:
      return "";
    case Mutation::kStealBottomLoadRelaxed:
      return "deque.steal_vs_pop";
    case Mutation::kLcoSetInputNoLock:
      return "lco.trigger_once";
    case Mutation::kCoalescerCountAfterInsert:
      return "coalescer.flush_vs_enqueue";
    case Mutation::kGasResolveRelaxed:
      return "gas.alloc_resolve";
    case Mutation::kCountersCountEarly:
      return "counters.snapshot_consistency";
  }
  return "";
}

const char* sync_kind_name(SyncKind k) {
  switch (k) {
    case SyncKind::kAtomicLoad:
      return "atomic-load";
    case SyncKind::kAtomicStore:
      return "atomic-store";
    case SyncKind::kAtomicRmw:
      return "atomic-rmw";
    case SyncKind::kPlainRead:
      return "plain-read";
    case SyncKind::kPlainWrite:
      return "plain-write";
    case SyncKind::kLcoInput:
      return "lco-input";
    case SyncKind::kLcoFire:
      return "lco-fire";
    case SyncKind::kLcoRearm:
      return "lco-rearm";
    case SyncKind::kLcoContinuation:
      return "lco-continuation";
    case SyncKind::kBatchEnqueue:
      return "batch-enqueue";
    case SyncKind::kBatchFlush:
      return "batch-flush";
    case SyncKind::kPendingRaise:
      return "pending-raise";
    case SyncKind::kPendingLower:
      return "pending-lower";
    case SyncKind::kGasAlloc:
      return "gas-alloc";
    case SyncKind::kGasResolve:
      return "gas-resolve";
    case SyncKind::kMutexLock:
      return "mutex-lock";
    case SyncKind::kMutexUnlock:
      return "mutex-unlock";
    case SyncKind::kCvWait:
      return "cv-wait";
    case SyncKind::kCvNotify:
      return "cv-notify";
  }
  return "unknown";
}

std::string format_schedule(const std::vector<int>& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(s[i]);
  }
  return out;
}

std::vector<int> parse_schedule(const std::string& csv) {
  std::vector<int> out;
  std::size_t i = 0;
  while (i < csv.size()) {
    std::size_t end = csv.find(',', i);
    if (end == std::string::npos) end = csv.size();
    const std::string tok = csv.substr(i, end - i);
    if (!tok.empty()) {
      try {
        out.push_back(std::stoi(tok));
      } catch (const std::exception&) {
        throw config_error("bad schedule element: " + tok);
      }
    }
    i = end + 1;
  }
  return out;
}

void RtReport::append_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("scenario", scenario);
  w.kv("mode", mode);
  w.kv("mutation", mutation_name(mutation));
  w.kv("failed", failed);
  w.kv("complete", complete);
  w.kv("diverged", diverged);
  w.kv("executions", executions);
  w.kv("seed", seed);
  w.kv("message", message);
  w.kv("schedule", format_schedule(schedule));
  w.key("trace");
  w.begin_array();
  for (const RtTraceEvent& e : trace) {
    w.begin_object();
    w.kv("step", static_cast<std::uint64_t>(e.step));
    w.kv("tid", e.tid);
    w.kv("kind", sync_kind_name(e.kind));
    w.kv("label", e.label);
    w.kv("info", e.info);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

// ---------------------------------------------------------------------------
// ScenarioContext.

void ScenarioContext::label(const void* addr, std::string name) {
  h_->labels_[addr] = std::move(name);
}

void ScenarioContext::check(bool cond, const std::string& msg) {
  if (!cond) fail(msg);
}

void ScenarioContext::fail(const std::string& msg) { h_->scenario_fail(msg); }

// ---------------------------------------------------------------------------
// Harness.

Harness::Harness(const Scenario& sc, const RtOptions& opt)
    : sc_(sc), opt_(opt), ctx_(this) {}

RtReport Harness::run() {
  RtReport rep;
  rep.scenario = sc_.name;
  rep.mutation = opt_.mutation;
  std::unique_ptr<Strategy> strat;
  switch (opt_.mode) {
    case RtOptions::Mode::kDfs:
      strat = std::make_unique<DfsStrategy>(opt_.preemption_bound,
                                            opt_.max_executions);
      rep.mode = "dfs";
      break;
    case RtOptions::Mode::kPct:
      strat = std::make_unique<PctStrategy>(opt_.seed, opt_.pct_executions,
                                            opt_.pct_depth);
      rep.mode = "pct";
      break;
    case RtOptions::Mode::kReplay:
      strat = std::make_unique<ReplayStrategy>(opt_.replay_schedule);
      rep.mode = "replay";
      break;
  }
  for (;;) {
    run_one(*strat);
    ++rep.executions;
    if (!failure_.empty()) {
      rep.failed = true;
      rep.message = failure_;
      rep.schedule = failed_schedule_;
      rep.trace = failed_trace_;
      rep.seed = strat->execution_seed();
      break;
    }
    if (!strat->next_execution()) break;
  }
  rep.complete = strat->complete() && !rep.failed;
  rep.diverged = strat->diverged();
  return rep;
}

void Harness::run_one(Strategy& strat) {
  abort_.store(false, std::memory_order_relaxed);
  step_ = 0;
  schedule_.clear();
  trace_.clear();
  fires_.clear();
  buffered_.clear();
  pending_.clear();
  mutexes_.clear();
  labels_.clear();
  anon_.clear();
  failure_.clear();
  strat_ = &strat;
  strat.begin_execution();

  // Scenario state is built fresh per execution on the controller, with no
  // observer installed: construction-time accesses are invisible to the
  // checker, which matches their run-before-all-threads semantics.
  run_state_ = sc_.make(ctx_);
  const int n = static_cast<int>(run_state_.bodies.size());
  AMTFMM_ASSERT_MSG(n >= 1, "scenario with no thread bodies");
  hb_.reset(n);
  threads_.clear();
  threads_.resize(static_cast<std::size_t>(n));
  {
    std::lock_guard lk(cmu_);
    active_ = -1;
  }
  for (int t = 0; t < n; ++t) {
    threads_[static_cast<std::size_t>(t)].th =
        std::thread([this, t] { thread_main(t); });
  }
  const int first = select_next(-1, false);
  AMTFMM_ASSERT(first >= 0);
  resume(first);
  for (auto& mt : threads_) mt.th.join();
  strat_ = nullptr;
  if (failure_.empty() && run_state_.finish) {
    run_state_.finish();
  }
  run_state_ = ScenarioRun{};
  threads_.clear();
}

void Harness::thread_main(int tid) {
  tls_tid = tid;
  tls_sync_observer = this;
  {
    std::unique_lock lk(cmu_);
    ccv_.wait(lk, [&] {
      return active_ == tid || abort_.load(std::memory_order_relaxed);
    });
  }
  if (!abort_.load(std::memory_order_relaxed)) {
    try {
      run_state_.bodies[static_cast<std::size_t>(tid)]();
    } catch (const AbortExecution&) {
    }
  }
  tls_sync_observer = nullptr;
  try {
    on_thread_done(tid);
  } catch (const AbortExecution&) {
    // Deadlock recorded by select_next; everyone else was woken.
  }
  tls_tid = -1;
}

void Harness::on_thread_done(int me) {
  threads_[static_cast<std::size_t>(me)].state = TState::kFinished;
  if (abort_.load(std::memory_order_relaxed)) {
    std::lock_guard lk(cmu_);
    ccv_.notify_all();
    return;
  }
  const int next = select_next(me, false);
  if (next >= 0) resume(next);
  // next == -1: every thread finished; the controller's joins take over.
}

bool Harness::enter_hook() {
  if (tls_tid < 0) return false;
  if (abort_.load(std::memory_order_relaxed)) {
    // Stop the body at this schedule point — unless we are mid-unwind
    // (a destructor is releasing locks), where throwing would terminate.
    if (std::uncaught_exceptions() == 0) throw AbortExecution{};
    return false;
  }
  return true;
}

bool Harness::enter_hook_nothrow() const {
  return tls_tid >= 0 && !abort_.load(std::memory_order_relaxed);
}

void Harness::bump_step_or_fail() {
  if (++step_ > opt_.max_steps) {
    fail_now("schedule-point budget exceeded (possible livelock)");
  }
}

void Harness::record(int tid, SyncKind k, const void* addr,
                     std::uint64_t info) {
  if (trace_.size() >= kMaxTraceEvents) return;
  trace_.push_back(RtTraceEvent{step_, tid, k, info, label_of(addr)});
}

std::string Harness::label_of(const void* addr) const {
  auto it = labels_.find(addr);
  if (it != labels_.end()) return it->second;
  // Unlabeled addresses get a per-execution sequence name: first-use order
  // is deterministic under a fixed schedule, so replayed failure messages
  // match byte-for-byte (a raw pointer would differ between runs).
  auto [ait, inserted] = anon_.try_emplace(addr, anon_.size());
  return "obj#" + std::to_string(ait->second);
}

int Harness::select_next(int me, bool me_runnable) {
  std::vector<int> runnable;
  bool all_finished = true;
  for (int t = 0; t < static_cast<int>(threads_.size()); ++t) {
    const TState s = threads_[static_cast<std::size_t>(t)].state;
    if (s != TState::kFinished) all_finished = false;
    if (s == TState::kNotStarted || s == TState::kRunnable) {
      runnable.push_back(t);
    }
  }
  if (runnable.empty()) {
    if (all_finished) return -1;
    fail_now(deadlock_message());
  }
  (void)me_runnable;
  const bool cur_in =
      me >= 0 && (threads_[static_cast<std::size_t>(me)].state ==
                      TState::kRunnable ||
                  threads_[static_cast<std::size_t>(me)].state ==
                      TState::kNotStarted);
  const int pick = strat_->choose(me, cur_in, runnable);
  schedule_.push_back(pick);
  ModelThread& mt = threads_[static_cast<std::size_t>(pick)];
  if (mt.state == TState::kNotStarted) mt.state = TState::kRunnable;
  return pick;
}

void Harness::yield_point(int me) {
  const int next = select_next(me, true);
  if (next != me) {
    resume_and_wait(next, me);
    if (abort_.load(std::memory_order_relaxed)) throw AbortExecution{};
  }
}

void Harness::resume(int next) {
  std::lock_guard lk(cmu_);
  active_ = next;
  ccv_.notify_all();
}

void Harness::resume_and_wait(int next, int me) {
  std::unique_lock lk(cmu_);
  active_ = next;
  ccv_.notify_all();
  ccv_.wait(lk, [&] {
    return active_ == me || abort_.load(std::memory_order_relaxed);
  });
}

void Harness::fail_now(const std::string& msg) {
  if (failure_.empty()) {
    failure_ = msg;
    failed_schedule_ = schedule_;
    failed_trace_ = trace_;
  }
  do_abort();
  throw AbortExecution{};
}

void Harness::scenario_fail(const std::string& msg) {
  const std::string full = "scenario check failed: " + msg;
  if (tls_tid >= 0) fail_now(full);
  // finish() runs on the controller after every thread joined: record the
  // failure against the execution's completed schedule, no abort needed.
  if (failure_.empty()) {
    failure_ = full;
    failed_schedule_ = schedule_;
    failed_trace_ = trace_;
  }
}

void Harness::do_abort() {
  abort_.store(true, std::memory_order_relaxed);
  std::lock_guard lk(cmu_);
  ccv_.notify_all();
}

void Harness::check_coalescer(const void* c) {
  if (pending_[c] < buffered_[c]) {
    fail_now("coalescer pending counter under-reports buffered parcels (" +
             std::to_string(pending_[c]) + " < " +
             std::to_string(buffered_[c]) + " on " + label_of(c) + ")");
  }
}

std::string Harness::deadlock_message() const {
  std::string msg = "deadlock:";
  bool cv = false;
  for (int t = 0; t < static_cast<int>(threads_.size()); ++t) {
    const ModelThread& mt = threads_[static_cast<std::size_t>(t)];
    msg += " T" + std::to_string(t);
    switch (mt.state) {
      case TState::kFinished:
        msg += "=finished";
        break;
      case TState::kBlockedMutex:
        msg += "=blocked-mutex(" + label_of(mt.wait_addr) + ")";
        break;
      case TState::kBlockedCv:
        msg += "=blocked-cv(" + label_of(mt.wait_addr) + ")";
        cv = true;
        break;
      default:
        msg += "=runnable?";
        break;
    }
  }
  if (cv) msg += " [possible lost wakeup]";
  return msg;
}

// ---------------------------------------------------------------------------
// SyncObserver.

void Harness::pre(SyncKind k, const void* addr, std::memory_order mo,
                  std::uint64_t info) {
  (void)mo;
  if (!enter_hook()) return;
  const int me = tls_tid;
  bump_step_or_fail();
  record(me, k, addr, info);
  switch (k) {
    case SyncKind::kPlainRead:
    case SyncKind::kPlainWrite: {
      const bool write = k == SyncKind::kPlainWrite;
      if (auto race = hb_.plain_access(me, addr, write, step_)) {
        fail_now(std::string("data race on ") + label_of(addr) + ": " +
                 (write ? "write" : "read") + " by T" + std::to_string(me) +
                 " (step " + std::to_string(step_) + ") unordered with " +
                 (race->other_write ? "write" : "read") + " by T" +
                 std::to_string(race->other_tid) + " (step " +
                 std::to_string(race->other_step) + ")");
      }
      break;
    }
    case SyncKind::kLcoFire:
      if (++fires_[addr] > 1) {
        fail_now("LCO " + label_of(addr) +
                 " fired twice (trigger-once protocol violation)");
      }
      break;
    case SyncKind::kLcoRearm:
      // Epoch boundary: the re-armed LCO may legally fire once more.  A
      // fire that lands between the re-arm and the next epoch's final
      // input still counts against the new epoch's budget of one.
      fires_[addr] = 0;
      break;
    case SyncKind::kBatchEnqueue:
      buffered_[addr] += static_cast<std::int64_t>(info);
      check_coalescer(addr);
      break;
    case SyncKind::kBatchFlush:
      buffered_[addr] -= static_cast<std::int64_t>(info);
      if (buffered_[addr] < 0) {
        fail_now("coalescer drained more parcels than were buffered on " +
                 label_of(addr));
      }
      break;
    case SyncKind::kPendingRaise:
      pending_[addr] += static_cast<std::int64_t>(info);
      break;
    case SyncKind::kPendingLower:
      pending_[addr] -= static_cast<std::int64_t>(info);
      check_coalescer(addr);
      break;
    default:
      break;
  }
  yield_point(me);
}

void Harness::post_load(const void* addr, std::memory_order mo) {
  if (!enter_hook_nothrow()) return;
  hb_.atomic_load(tls_tid, addr, mo);
}

void Harness::post_store(const void* addr, std::memory_order mo) {
  if (!enter_hook_nothrow()) return;
  hb_.atomic_store(tls_tid, addr, mo);
}

void Harness::post_rmw(const void* addr, std::memory_order mo) {
  if (!enter_hook_nothrow()) return;
  hb_.atomic_rmw(tls_tid, addr, mo);
}

void Harness::mutex_lock(const void* m) {
  if (!enter_hook()) return;
  const int me = tls_tid;
  bump_step_or_fail();
  record(me, SyncKind::kMutexLock, m, 0);
  yield_point(me);
  auto [it, inserted] = mutexes_.try_emplace(m, -1);
  while (it->second != -1) {
    ModelThread& mt = threads_[static_cast<std::size_t>(me)];
    mt.state = TState::kBlockedMutex;
    mt.wait_addr = m;
    const int next = select_next(me, false);
    AMTFMM_ASSERT(next >= 0);
    resume_and_wait(next, me);
    if (abort_.load(std::memory_order_relaxed)) throw AbortExecution{};
  }
  it->second = me;
  hb_.mutex_acquire(me, m);
}

bool Harness::mutex_try_lock(const void* m) {
  if (!enter_hook()) return true;  // teardown: defer to the real try_lock
  const int me = tls_tid;
  bump_step_or_fail();
  record(me, SyncKind::kMutexLock, m, 1);
  yield_point(me);
  auto [it, inserted] = mutexes_.try_emplace(m, -1);
  if (it->second != -1) return false;
  it->second = me;
  hb_.mutex_acquire(me, m);
  return true;
}

void Harness::mutex_unlock(const void* m) {
  // Called from destructors: must never throw, even on abort.
  if (!enter_hook_nothrow()) return;
  const int me = tls_tid;
  auto it = mutexes_.find(m);
  if (it == mutexes_.end() || it->second != me) {
    return;  // locked before hooks were active (controller setup)
  }
  hb_.mutex_release(me, m);
  it->second = -1;
  for (auto& t : threads_) {
    if (t.state == TState::kBlockedMutex && t.wait_addr == m) {
      t.state = TState::kRunnable;
    }
  }
  if (step_ < opt_.max_steps) {
    ++step_;
    record(me, SyncKind::kMutexUnlock, m, 0);
  }
  // Schedule point after the release; no-throw variant of yield_point (the
  // unlocker is runnable, so no deadlock is possible here).
  const int next = select_next(me, true);
  if (next != me) resume_and_wait(next, me);
}

void Harness::cv_register(const void* cv) {
  if (!enter_hook()) return;
  ModelThread& mt = threads_[static_cast<std::size_t>(tls_tid)];
  mt.cv_wait = cv;
  mt.cv_notified = false;
}

void Harness::cv_block(const void* cv) {
  if (!enter_hook()) return;
  const int me = tls_tid;
  bump_step_or_fail();
  record(me, SyncKind::kCvWait, cv, 0);
  ModelThread& mt = threads_[static_cast<std::size_t>(me)];
  if (!mt.cv_notified) {
    mt.state = TState::kBlockedCv;
    mt.wait_addr = cv;
    const int next = select_next(me, false);  // deadlock => lost wakeup
    AMTFMM_ASSERT(next >= 0);
    resume_and_wait(next, me);
    if (abort_.load(std::memory_order_relaxed)) throw AbortExecution{};
  } else {
    yield_point(me);
  }
  mt.cv_wait = nullptr;
  mt.cv_notified = false;
}

void Harness::cv_notify_all(const void* cv) {
  if (!enter_hook()) return;
  const int me = tls_tid;
  bump_step_or_fail();
  record(me, SyncKind::kCvNotify, cv, 0);
  for (auto& t : threads_) {
    if (t.cv_wait == cv) {
      t.cv_notified = true;
      if (t.state == TState::kBlockedCv) t.state = TState::kRunnable;
    }
  }
  yield_point(me);
}

std::memory_order Harness::order_at(Mutation point, std::memory_order d) {
  return point == opt_.mutation ? std::memory_order_relaxed : d;
}

bool Harness::mutation_on(Mutation point) { return point == opt_.mutation; }

}  // namespace amtfmm::rtcheck
