#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace amtfmm::rtcheck {

/// Vector clock over the model threads of one rtcheck execution.  Component
/// i is thread i's logical time; the usual component-wise join/compare give
/// the happens-before partial order the checker reasons over.
class VClock {
 public:
  VClock() = default;
  explicit VClock(std::size_t threads) : c_(threads, 0) {}

  std::uint32_t at(std::size_t i) const { return i < c_.size() ? c_[i] : 0; }

  void tick(std::size_t i) {
    grow(i + 1);
    ++c_[i];
  }

  /// Component-wise maximum (acquire: merge the release clock into ours).
  void join(const VClock& o) {
    grow(o.c_.size());
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      c_[i] = std::max(c_[i], o.c_[i]);
    }
  }

  void clear() { c_.clear(); }

 private:
  void grow(std::size_t n) {
    if (c_.size() < n) c_.resize(n, 0);
  }

  std::vector<std::uint32_t> c_;
};

}  // namespace amtfmm::rtcheck
