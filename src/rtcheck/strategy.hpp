#pragma once

#include <cstdint>
#include <vector>

namespace amtfmm::rtcheck {

/// Deterministic pseudo-random stream (splitmix64).  Hand-rolled so PCT
/// schedules replay bit-identically from a seed on every platform —
/// std::uniform_int_distribution is not portable across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed) {}

  std::uint64_t next() {
    s_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

 private:
  std::uint64_t s_;
};

/// Scheduling strategy: the harness consults it at every schedule point
/// with the runnable set; the strategy picks who executes next.  Exactly
/// one choose() call happens per schedule point, so a recorded sequence of
/// picks replays an execution deterministically.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Called before each execution starts.
  virtual void begin_execution() = 0;

  /// Picks the next thread from `runnable` (ascending tids, nonempty).
  /// `current` is the thread standing at the schedule point (-1 for the
  /// execution's initial pick); `cur_runnable` says whether it may simply
  /// continue — picking someone else then counts as a preemption.
  virtual int choose(int current, bool cur_runnable,
                     const std::vector<int>& runnable) = 0;

  /// Advances to the next execution; false when the space or budget is
  /// exhausted.
  virtual bool next_execution() = 0;

  /// DFS only: the bounded schedule space was fully explored.
  virtual bool complete() const { return false; }
  /// PCT only: seed identifying the current execution (replayable alone).
  virtual std::uint64_t execution_seed() const { return 0; }
  /// Replay only: the recorded schedule did not match this program.
  virtual bool diverged() const { return false; }
};

/// Exhaustive depth-first exploration with a preemption bound: every
/// schedule reachable with at most `bound` involuntary context switches is
/// executed exactly once (CHESS-style).  Voluntary switches — the current
/// thread blocked or finished — are free.
class DfsStrategy final : public Strategy {
 public:
  DfsStrategy(int bound, std::uint64_t max_executions)
      : bound_(bound), max_executions_(max_executions) {}

  void begin_execution() override;
  int choose(int current, bool cur_runnable,
             const std::vector<int>& runnable) override;
  bool next_execution() override;
  bool complete() const override { return exhausted_; }

 private:
  struct Node {
    std::vector<int> alts;  ///< runnable set, default choice first
    std::size_t chosen = 0;
    int current = -1;
    bool cur_runnable = false;
    int preempt_before = 0;  ///< preemptions on the path above this node
  };

  int bound_;
  std::uint64_t max_executions_;
  std::uint64_t executions_ = 0;
  int preempts_ = 0;
  bool exhausted_ = false;
  std::vector<Node> nodes_;   ///< decision stack of the current execution
  std::vector<int> prefix_;   ///< forced picks replayed at the next start
};

/// Probabilistic concurrency testing (Burckhardt et al.): each execution
/// draws random thread priorities plus depth-1 priority-change points; the
/// highest-priority runnable thread always runs.  Finds depth-d bugs with
/// probability >= 1/(n * k^(d-1)) per execution, and each execution is
/// identified by a single seed that replays it exactly.
class PctStrategy final : public Strategy {
 public:
  PctStrategy(std::uint64_t base_seed, std::uint64_t executions, int depth)
      : base_seed_(base_seed), budget_(executions), depth_(depth), rng_(0) {}

  void begin_execution() override;
  int choose(int current, bool cur_runnable,
             const std::vector<int>& runnable) override;
  bool next_execution() override;
  std::uint64_t execution_seed() const override { return base_seed_ + index_; }

 private:
  /// Horizon the change points are drawn from.  Fixed (never adapted to the
  /// observed execution length) so a seed alone replays the schedule.
  static constexpr std::uint64_t kHorizon = 512;

  std::uint64_t base_seed_;
  std::uint64_t budget_;
  int depth_;
  std::uint64_t index_ = 0;
  Rng rng_;
  std::uint64_t steps_ = 0;
  std::vector<int> priorities_;        ///< per tid; larger runs first
  std::vector<std::uint64_t> changes_;  ///< sorted change-point steps
  std::size_t next_change_ = 0;
};

/// Replays a recorded pick sequence; past its end (or on divergence) the
/// current thread just keeps running.
class ReplayStrategy final : public Strategy {
 public:
  explicit ReplayStrategy(std::vector<int> schedule)
      : schedule_(std::move(schedule)) {}

  void begin_execution() override { idx_ = 0; }
  int choose(int current, bool cur_runnable,
             const std::vector<int>& runnable) override;
  bool next_execution() override { return false; }
  bool diverged() const override { return diverged_; }

 private:
  std::vector<int> schedule_;
  std::size_t idx_ = 0;
  bool diverged_ = false;
};

}  // namespace amtfmm::rtcheck
