#pragma once

#include <cstdint>
#include <deque>

#include "runtime/executor.hpp"
#include "runtime/sync_hook.hpp"

namespace amtfmm::rtcheck {

/// Minimal Executor for rtcheck scenarios: spawn() queues tasks under a
/// SyncMutex (so enqueues from model threads are themselves schedule
/// points), and drain() runs them inline on the calling thread.  There are
/// no worker threads — the harness's model threads are the only
/// concurrency, which keeps the schedule space exactly the scenario's own.
class ModelExecutor final : public Executor {
 public:
  explicit ModelExecutor(int localities = 1);

  int num_localities() const override { return localities_; }
  int cores_per_locality() const override { return 1; }
  int current_locality() const override { return 0; }
  void spawn(Task t) override;
  void send(std::uint32_t from, std::uint32_t to, std::size_t bytes,
            Task t) override;
  double drain() override;
  double now() const override { return 0.0; }

  std::size_t spawned_total() const { return spawned_total_; }

 private:
  int localities_;
  mutable SyncMutex mu_;
  std::deque<Task> queue_;
  std::size_t spawned_total_ = 0;
};

}  // namespace amtfmm::rtcheck
