#include "rtcheck/hb.hpp"

namespace amtfmm::rtcheck {

void HbChecker::reset(int threads) {
  clocks_.assign(static_cast<std::size_t>(threads),
                 VClock(static_cast<std::size_t>(threads)));
  atomic_rel_.clear();
  mutex_rel_.clear();
  plain_.clear();
}

void HbChecker::atomic_load(int tid, const void* a, std::memory_order mo) {
  if (!acquires(mo)) return;
  auto it = atomic_rel_.find(a);
  if (it != atomic_rel_.end()) {
    clocks_[static_cast<std::size_t>(tid)].join(it->second);
  }
}

void HbChecker::atomic_store(int tid, const void* a, std::memory_order mo) {
  auto& c = clocks_[static_cast<std::size_t>(tid)];
  c.tick(static_cast<std::size_t>(tid));
  if (releases(mo)) {
    atomic_rel_[a] = c;
  } else {
    // A relaxed store replaces the location's value without releasing: a
    // later acquire that reads it synchronizes with nothing, so the
    // location's release clock is dropped (the serialized scheduler means
    // the last store is the one every later load reads).
    atomic_rel_.erase(a);
  }
}

void HbChecker::atomic_rmw(int tid, const void* a, std::memory_order mo) {
  auto& c = clocks_[static_cast<std::size_t>(tid)];
  if (acquires(mo)) {
    auto it = atomic_rel_.find(a);
    if (it != atomic_rel_.end()) c.join(it->second);
  }
  c.tick(static_cast<std::size_t>(tid));
  if (releases(mo)) {
    // Merge, not assign: an RMW continues the release sequence headed by
    // the earlier release store, so prior releasers stay visible.
    atomic_rel_[a].join(c);
  }
  // A relaxed RMW also continues the release sequence (C++20 [intro.races]),
  // so the existing release clock is kept as-is.
}

void HbChecker::mutex_acquire(int tid, const void* m) {
  auto it = mutex_rel_.find(m);
  if (it != mutex_rel_.end()) {
    clocks_[static_cast<std::size_t>(tid)].join(it->second);
  }
}

void HbChecker::mutex_release(int tid, const void* m) {
  auto& c = clocks_[static_cast<std::size_t>(tid)];
  c.tick(static_cast<std::size_t>(tid));
  // Assign suffices: the next locker joins this clock, which already
  // includes every earlier critical section (joined at our own lock).
  mutex_rel_[m] = c;
}

std::optional<HbChecker::Race> HbChecker::plain_access(int tid, const void* a,
                                                       bool write,
                                                       std::uint32_t step) {
  auto& st = plain_[a];
  std::optional<Race> race;
  if (st.has_write && !ordered(st.write, tid)) {
    race = Race{st.write.tid, st.write.step, true};
  }
  if (write && !race) {
    for (const Access& r : st.reads) {
      if (!ordered(r, tid)) {
        race = Race{r.tid, r.step, false};
        break;
      }
    }
  }
  auto& c = clocks_[static_cast<std::size_t>(tid)];
  c.tick(static_cast<std::size_t>(tid));
  const Access now{tid, c.at(static_cast<std::size_t>(tid)), step};
  if (write) {
    st.has_write = true;
    st.write = now;
    st.reads.clear();
  } else {
    for (Access& r : st.reads) {
      if (r.tid == tid) {
        r = now;
        return race;
      }
    }
    st.reads.push_back(now);
  }
  return race;
}

}  // namespace amtfmm::rtcheck
