#include "rtcheck/strategy.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace amtfmm::rtcheck {

void DfsStrategy::begin_execution() {
  nodes_.clear();
  preempts_ = 0;
}

int DfsStrategy::choose(int current, bool cur_runnable,
                        const std::vector<int>& runnable) {
  Node n;
  n.current = current;
  n.cur_runnable = cur_runnable;
  n.alts = runnable;
  if (cur_runnable) {
    // Default choice first: continuing the current thread costs nothing.
    auto it = std::find(n.alts.begin(), n.alts.end(), current);
    AMTFMM_ASSERT(it != n.alts.end());
    std::rotate(n.alts.begin(), it, it + 1);
  }
  n.preempt_before = preempts_;
  const std::size_t idx = nodes_.size();
  if (idx < prefix_.size()) {
    auto it = std::find(n.alts.begin(), n.alts.end(), prefix_[idx]);
    AMTFMM_ASSERT_MSG(it != n.alts.end(),
                      "DFS prefix replay diverged: scenario is nondeterministic"
                      " under a fixed schedule");
    n.chosen = static_cast<std::size_t>(it - n.alts.begin());
  } else {
    n.chosen = 0;
  }
  const int pick = n.alts[n.chosen];
  if (cur_runnable && pick != current) ++preempts_;
  nodes_.push_back(std::move(n));
  return pick;
}

bool DfsStrategy::next_execution() {
  ++executions_;
  if (executions_ >= max_executions_) return false;  // budget; not complete
  // Backtrack to the deepest node with an untried alternative that stays
  // within the preemption bound; everything below restarts at defaults.
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    const Node& n = nodes_[i];
    for (std::size_t a = n.chosen + 1; a < n.alts.size(); ++a) {
      const int cost = (n.cur_runnable && n.alts[a] != n.current) ? 1 : 0;
      if (n.preempt_before + cost > bound_) continue;
      prefix_.resize(i);
      for (std::size_t j = 0; j < i; ++j) {
        prefix_[j] = nodes_[j].alts[nodes_[j].chosen];
      }
      prefix_.push_back(n.alts[a]);
      return true;
    }
  }
  exhausted_ = true;
  return false;
}

void PctStrategy::begin_execution() {
  rng_ = Rng(base_seed_ + index_);
  steps_ = 0;
  priorities_.clear();
  changes_.clear();
  for (int i = 0; i + 1 < depth_; ++i) {
    changes_.push_back(1 + rng_.below(kHorizon));
  }
  std::sort(changes_.begin(), changes_.end());
  next_change_ = 0;
}

int PctStrategy::choose(int current, bool cur_runnable,
                        const std::vector<int>& runnable) {
  (void)cur_runnable;
  if (priorities_.empty()) {
    // First point of the execution: every thread is runnable, so size the
    // priority band here (the harness launches all threads up front).
    const int n = runnable.back() + 1;
    priorities_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) priorities_[static_cast<std::size_t>(i)] =
        depth_ + i;
    // Fisher-Yates over the initial (high) band.
    for (int i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          rng_.below(static_cast<std::uint64_t>(i) + 1));
      std::swap(priorities_[static_cast<std::size_t>(i)], priorities_[j]);
    }
  }
  ++steps_;
  while (next_change_ < changes_.size() && steps_ == changes_[next_change_]) {
    // Priority-change point: demote whoever is running into the low band.
    if (current >= 0) {
      priorities_[static_cast<std::size_t>(current)] =
          static_cast<int>(next_change_) - static_cast<int>(changes_.size());
    }
    ++next_change_;
  }
  int pick = runnable.front();
  for (int t : runnable) {
    if (priorities_[static_cast<std::size_t>(t)] >
        priorities_[static_cast<std::size_t>(pick)]) {
      pick = t;
    }
  }
  return pick;
}

bool PctStrategy::next_execution() {
  ++index_;
  return index_ < budget_;
}

int ReplayStrategy::choose(int current, bool cur_runnable,
                           const std::vector<int>& runnable) {
  if (idx_ < schedule_.size()) {
    const int want = schedule_[idx_++];
    if (std::find(runnable.begin(), runnable.end(), want) != runnable.end()) {
      return want;
    }
    diverged_ = true;
  }
  return cur_runnable ? current : runnable.front();
}

}  // namespace amtfmm::rtcheck
