#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/counters.hpp"
#include "runtime/sync_hook.hpp"

namespace amtfmm {

class JsonWriter;

/// One periodic per-rank metrics sample: the counter *deltas* over the
/// sampling window, current gauge values, and histogram deltas.  Shipping
/// window deltas (rather than cumulative values) means a sample is useful
/// on its own — tasks/s is delta/dt, serve p50/p99 come straight from the
/// window's histogram — and a lost sample degrades to a gap instead of a
/// permanently skewed rate.
struct TelemetrySample {
  std::uint32_t rank = 0;
  std::uint64_t seq = 0;  ///< per-rank sample index (gaps = drops)
  double t_s = 0.0;       ///< steady-clock seconds since the sampler started
  double dt_s = 0.0;      ///< window the deltas cover
  std::vector<CounterSnapshot::Scalar> counters;    ///< window deltas
  std::vector<CounterSnapshot::Scalar> gauges;      ///< current values
  std::vector<CounterSnapshot::Histogram> hists;    ///< window deltas

  /// Value of a counter delta / gauge by name; 0 when absent.
  std::uint64_t value(const std::string& name) const;
  /// Histogram delta by name; nullptr when absent.
  const CounterSnapshot::Histogram* hist(const std::string& name) const;
};

/// Window delta between two snapshots of the same registry: counters and
/// histograms subtract (clamped at 0 in case of a clear() between them),
/// gauges pass through as current values.
TelemetrySample telemetry_delta(const CounterSnapshot& prev,
                                const CounterSnapshot& cur);

/// Sample wire format is one JSON object (the same schema the aggregator
/// snapshot embeds): {"v":1,"rank":..,"seq":..,"t_s":..,"dt_s":..,
/// "counters":{..},"gauges":{..},"hists":{name:{count,sum,buckets}}}.
void telemetry_append_json(JsonWriter& w, const TelemetrySample& s);
std::string telemetry_encode(const TelemetrySample& s);
bool telemetry_decode(const std::string& text, TelemetrySample& out,
                      std::string& error);

/// Prometheus-style text exposition of the latest sample per rank:
/// counters become per-second rate gauges (`amtfmm_<name>_rate`), gauges
/// map directly, histograms expose window count/p50/p99.  Metric names
/// sanitize '.' to '_'.  Grammar is validated by scripts/check_telemetry.py.
std::string telemetry_render_prom(const std::vector<TelemetrySample>& latest);

/// Per-locality sampling thread: every `interval_s` it snapshots the
/// registry, computes the window delta against the previous snapshot, and
/// hands the encoded sample to `ship`.  The registry snapshot is lock-free
/// (relaxed/acquire loads over the shards), so sampling never perturbs
/// worker hot paths; the sampler thread itself does the allocation and
/// encoding work.  `ship` runs on the sampler thread — for rank > 0 it
/// posts the bytes over the transport's telemetry side channel, on rank 0
/// it enqueues straight into the aggregator.
class TelemetrySampler {
 public:
  using ShipFn = std::function<void(std::string&&)>;

  TelemetrySampler(CounterRegistry& reg, std::uint32_t rank,
                   double interval_s, ShipFn ship);
  ~TelemetrySampler();

  /// Stops the thread; idempotent.  A final sample is taken on stop so
  /// short runs (shorter than one interval) still produce data.
  void stop();

  std::uint64_t samples() const { return seq_; }

 private:
  void loop();
  void take_sample(bool final_flush);

  CounterRegistry& reg_;
  std::uint32_t rank_;
  double interval_s_;
  ShipFn ship_;
  CounterSnapshot prev_;
  std::chrono::steady_clock::time_point origin_;
  std::chrono::steady_clock::time_point last_;
  std::uint64_t seq_ = 0;
  SyncMutex mu_;
  SyncCondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread th_;
};

/// Rank-0 collection point: samples arrive as raw JSON (local sampler or
/// the transport's telemetry frames), a writer thread parses them into
/// bounded per-rank series and republishes the whole series as one atomic
/// snapshot file (write tmp, rename) that amtfmm_top polls.  enqueue() is
/// called from the transport progress thread, so it only appends to a
/// queue under a mutex — parsing, bookkeeping, and file I/O all happen on
/// the writer thread.
class TelemetryAggregator {
 public:
  /// `keep` bounds the per-rank series (oldest samples drop).
  TelemetryAggregator(std::uint32_t world, std::string snapshot_path,
                      std::size_t keep = 120);
  ~TelemetryAggregator();

  /// Thread-safe, cheap: queue append + notify.  Dropped after stop().
  void enqueue(std::string&& sample_json);
  /// Drains the queue, writes a final snapshot, joins.  Idempotent.
  void stop();

  const std::string& snapshot_path() const { return path_; }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  void loop();
  bool ingest(const std::string& text);
  void write_snapshot();

  std::uint32_t world_;
  std::string path_;
  std::size_t keep_;
  std::vector<std::deque<TelemetrySample>> series_;  ///< writer thread only
  std::uint64_t accepted_ = 0;  ///< writer thread writes, readers race benignly
  std::uint64_t rejected_ = 0;
  SyncMutex mu_;
  SyncCondVar cv_;
  std::deque<std::string> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread th_;
};

/// Parses an aggregator snapshot file back into per-rank series (outer
/// index = rank).  Used by amtfmm_top and the telemetry tests.
bool telemetry_load_snapshot(const std::string& path,
                             std::vector<std::vector<TelemetrySample>>& out,
                             std::string& error);

}  // namespace amtfmm
