#pragma once

#include <span>
#include <string>

#include "runtime/counters.hpp"
#include "runtime/trace.hpp"

namespace amtfmm {

/// Options for trace_export_chrome().  `dag_edges` is the DAG flattened as
/// [src0, dst0, src1, dst1, ...] in edge-id order (EvalResult::dag_edges);
/// it is embedded under the custom top-level "amtfmm" key so the trace file
/// is self-contained for the critical-path analyzer (tools/trace_report).
/// Perfetto and chrome://tracing ignore unknown top-level keys.
struct ChromeTraceOptions {
  int cores_per_locality = 1;
  /// Seconds; echoed into the "amtfmm" metadata.  For a multi-epoch trace
  /// this is the LARGEST per-epoch makespan (each epoch's critical path is
  /// checked against it independently).
  double makespan = 0.0;
  bool sim = false;  ///< virtual-time (DES) run vs wall-clock run
  std::span<const std::uint32_t> dag_edges;
  /// Executor-clock start time of each epoch for a resident-pipeline trace
  /// (EvalPipeline::epoch_start_times()).  Empty = single-epoch trace; the
  /// analyzer then behaves exactly as before.  When present, the analyzer
  /// buckets span weights by epoch and reports a per-epoch critical path.
  std::span<const double> epochs;
  const CounterSnapshot* counters = nullptr;  ///< optional snapshot echo
  /// Socket-locality identity: this trace covers rank `rank` of `world`
  /// processes.  The exporter offsets local pids by `rank` so every rank
  /// of a distributed run occupies its own process row, and embeds
  /// `clock` in the metadata so `trace_report --merge` can correct each
  /// rank's timestamps onto rank 0's timeline:
  ///   rank0_t = steady_origin_s + t - offset_s - rank0_steady_origin_s.
  /// In-process runs keep the defaults (rank 0 of world 1, clock from
  /// Executor::trace_clock()).
  std::uint32_t rank = 0;
  std::uint32_t world = 1;
  TraceClock clock{};
};

/// Writes Chrome/Perfetto `trace_event` JSON: one process per locality, one
/// thread per worker plus a "net" pseudo-thread per locality; operator
/// spans as "X" complete events (args.edge carries the DAG edge id),
/// scheduler instants as "i" events, and wire messages as NIC-occupancy
/// slices on the destination's net thread connected by "s"/"f" flow
/// arrows.  Timestamps are microseconds; events are emitted in
/// non-decreasing ts order.  Returns false on I/O failure.
bool trace_export_chrome(const std::string& path,
                         std::span<const TraceEvent> spans,
                         std::span<const CommEvent> comm,
                         std::span<const InstantEvent> instants,
                         const ChromeTraceOptions& opt);

}  // namespace amtfmm
