#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace amtfmm {

/// Result of merging N per-rank Chrome traces onto rank 0's timeline
/// (`trace_report --merge`).  Each input carries its own TraceClock in the
/// "amtfmm" metadata; rank r's events shift by
///   delta_r = (steady_origin_r - offset_r) - (steady_origin_0 - offset_0)
/// which expresses them on rank 0's executor clock (rank 0's own delta is
/// 0 by construction).  Cross-rank parcel flows are then re-derived by
/// FIFO-matching each sender's parcel_send instants against the
/// destination's parcel_recv instants — the transport preserves
/// per-(src,dst) order — giving real NIC/net spans with endpoints on two
/// different clocks, the quantity single-rank traces cannot show.
struct TraceMergeReport {
  struct Rank {
    std::uint32_t rank = 0;
    double delta_s = 0.0;        ///< correction applied to this rank's ts
    double offset_s = 0.0;       ///< clock-sync offset from the metadata
    double uncertainty_s = 0.0;  ///< clock-sync error bound
    double t_min_s = 0.0;        ///< corrected earliest event
    double t_max_s = 0.0;        ///< corrected latest event
    double critical_path_s = 0.0;  ///< this rank's own DAG critical path
  };

  bool valid = false;
  std::string error;
  std::uint32_t world = 0;
  std::vector<Rank> ranks;

  double max_uncertainty_s = 0.0;

  /// Cross-rank flows re-derived from matched send/recv instants, on the
  /// corrected timeline.  `negative_flows` counts pairs where the
  /// corrected receive precedes the corrected send — zero when the clock
  /// correction is sound (sync error below the one-way latency).
  std::uint64_t cross_flows = 0;
  std::uint64_t unmatched_sends = 0;  ///< sends with no recv (rank died?)
  std::uint64_t negative_flows = 0;
  double min_flow_s = 0.0;
  double max_flow_s = 0.0;

  /// Weighted critical path of the merged execution: the embedded DAG
  /// pathed with span weights summed over every rank (each edge's spans
  /// run on exactly one owning rank, so the sum never double-counts), per
  /// epoch, maximum taken.  Monotone in the per-rank weights, so always
  /// >= every single-rank critical path.
  double cross_critical_path_s = 0.0;
  /// Longest causal chain through the matched flows: alternating NIC/net
  /// spans and the on-rank time between a receive and the next send.  The
  /// communication backbone of the merged timeline.
  double net_chain_s = 0.0;
  /// max(cross_critical_path_s, net_chain_s): the reported cross-rank
  /// critical path including net spans.
  double critical_path_s = 0.0;
};

/// Merges per-rank traces into one corrected Chrome trace at `out_path`
/// (empty: analysis only).  Inputs may be in any rank order; rank identity
/// comes from each file's metadata.  A missing rank 0 makes the
/// lowest-rank input the timeline reference.
TraceMergeReport trace_merge(const std::vector<std::string>& inputs,
                             const std::string& out_path);

/// The merge report as a compact JSON object.
std::string merge_report_json(const TraceMergeReport& r);

}  // namespace amtfmm
