#include "runtime/sim_executor.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "support/error.hpp"

namespace amtfmm {

SimExecutor::SimExecutor(int num_localities, int cores_per_locality,
                         SchedPolicy policy, NetworkModel net,
                         std::uint64_t seed, CoalesceConfig coalesce)
    : num_localities_(num_localities),
      cores_(cores_per_locality),
      policy_(policy),
      net_(net),
      locs_(static_cast<std::size_t>(num_localities)) {
  AMTFMM_ASSERT(num_localities >= 1 && cores_per_locality >= 1);
  rt_ = std::make_unique<LocalityRuntime>(num_localities, total_workers(),
                                          coalesce);
  std::uint64_t sm = seed;
  for (auto& l : locs_) l.rng = Rng(splitmix64(sm));
}

void SimExecutor::post(double time, std::function<void()> fn, bool live) {
  if (live) ++live_events_;
  events_.push(Event{time, seq_++, live, std::move(fn)});
}

void SimExecutor::spawn(Task t) {
  AMTFMM_ASSERT(t.locality < static_cast<std::uint32_t>(num_localities_));
  const std::uint32_t loc = t.locality;
  auto& ls = locs_[loc];
  const bool hi = policy_ == SchedPolicy::kPriority && t.high_priority;
  (hi ? ls.high : ls.low).push_back(std::move(t));
  try_dispatch(loc);
}

void SimExecutor::send(std::uint32_t from, std::uint32_t to,
                       std::size_t bytes, Task t) {
  t.locality = to;
  if (from == to) {
    spawn(std::move(t));
    return;
  }
  auto out = rt_->submit(from, to, bytes, std::move(t), now_);
  if (out.batch) {
    transmit(std::move(*out.batch), out.coalesced);
  } else if (out.first) {
    // Arm a deadline flush for this fill of the buffer.  The timer is a
    // non-live event: if the buffer already flushed (epoch moved on), the
    // timer is stale and must neither flush nor advance the clock.
    const double tfire = now_ + rt_->coalesce_config().flush_deadline;
    post(
        tfire,
        [this, from, to, epoch = out.epoch, tfire] {
          if (auto b = rt_->take_if_epoch(from, to, epoch)) {
            now_ = std::max(now_, tfire);
            transmit(std::move(*b), /*coalesced=*/true);
          }
        },
        /*live=*/false);
  }
}

void SimExecutor::transmit(ParcelBatch b, bool coalesced) {
  // One wire message occupies the destination NIC for alpha + beta * bytes
  // and is delivered when the occupancy ends.
  auto& dst = locs_[b.dst];
  const double start = std::max(dst.nic_free, now_);
  dst.nic_free =
      start + net_.latency + static_cast<double>(b.bytes) / net_.bandwidth;
  const double arrival = dst.nic_free;
  rt_->account_batch(b, start, arrival, coalesced);
  if (coalesced) {
    rt_->note_batch_consumed(static_cast<std::int64_t>(b.tasks.size()));
  }
  auto batch = std::make_shared<ParcelBatch>(std::move(b));
  post(arrival, [this, batch] {
    for (Task& t : batch->tasks) spawn(std::move(t));
  });
}

void SimExecutor::try_dispatch(std::uint32_t loc) {
  auto& ls = locs_[loc];
  while (ls.busy_cores < cores_ && (!ls.high.empty() || !ls.low.empty())) {
    Task t;
    if (!ls.high.empty()) {
      // Priority class drains oldest-first.
      t = std::move(ls.high.front());
      ls.high.pop_front();
    } else if (policy_ == SchedPolicy::kFifo) {
      t = std::move(ls.low.front());
      ls.low.pop_front();
    } else {
      // Randomized work stealing in aggregate: with many per-core deques
      // and random steal victims, the pool is serviced in near-uniform
      // random order — which is exactly why the paper observes critical
      // upward-pass tasks being scheduled "up to 83% through the
      // execution": the scheduler is oblivious to the critical path.
      const std::size_t idx = ls.rng.below(ls.low.size());
      std::swap(ls.low[idx], ls.low.back());
      t = std::move(ls.low.back());
      ls.low.pop_back();
    }
    ls.busy_cores++;
    run_task(loc, std::move(t));
  }
}

void SimExecutor::run_task(std::uint32_t loc, Task t) {
  const double start = now_ + net_.task_overhead;
  double finish = start;
  if (rt_->trace().enabled()) {
    const int core = locs_[loc].busy_cores - 1;  // stable enough for traces
    const std::uint32_t worker =
        loc * static_cast<std::uint32_t>(cores_) +
        static_cast<std::uint32_t>(std::min(core, cores_ - 1));
    for (const CostItem& it : t.items) {
      rt_->trace().record(worker, it.cls, finish, finish + it.cost, it.arg);
      finish += it.cost;
    }
  } else {
    for (const CostItem& it : t.items) finish += it.cost;
  }
  rt_->counters().add(0, rt_->ids().tasks_run);
  post(finish, [this, loc, fn = std::move(t.fn)]() {
    current_loc_ = static_cast<int>(loc);
    if (fn) fn();
    current_loc_ = -1;
    auto& ls = locs_[loc];
    ls.busy_cores--;
    try_dispatch(loc);
  });
}

double SimExecutor::drain() {
  const double t0 = now_;
  for (;;) {
    // Quiescence: no live work left, only (possibly stale) deadline timers
    // — flush everything still buffered before giving up.
    if (live_events_ == 0 && rt_->pending()) {
      for (auto& b : rt_->take_all()) {
        transmit(std::move(b), /*coalesced=*/true);
      }
      continue;
    }
    if (events_.empty()) break;
    // Pull the event without holding a reference across fn() — handlers
    // push new events and would invalidate it.
    Event e = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    if (e.live) {
      --live_events_;
      AMTFMM_ASSERT(e.time >= now_ - 1e-12);
      now_ = std::max(now_, e.time);
    }
    e.fn();
  }
  return now_ - t0;
}

}  // namespace amtfmm
