#include "runtime/sim_executor.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace amtfmm {

SimExecutor::SimExecutor(int num_localities, int cores_per_locality,
                         SchedPolicy policy, NetworkModel net,
                         std::uint64_t seed)
    : num_localities_(num_localities),
      cores_(cores_per_locality),
      policy_(policy),
      net_(net),
      locs_(static_cast<std::size_t>(num_localities)) {
  AMTFMM_ASSERT(num_localities >= 1 && cores_per_locality >= 1);
  trace_ = std::make_unique<TraceSink>(total_workers());
  std::uint64_t sm = seed;
  for (auto& l : locs_) l.rng = Rng(splitmix64(sm));
}

void SimExecutor::post(double time, std::function<void()> fn) {
  events_.push(Event{time, seq_++, std::move(fn)});
}

void SimExecutor::spawn(Task t) {
  AMTFMM_ASSERT(t.locality < static_cast<std::uint32_t>(num_localities_));
  const std::uint32_t loc = t.locality;
  auto& ls = locs_[loc];
  const bool hi = policy_ == SchedPolicy::kPriority && t.high_priority;
  (hi ? ls.high : ls.low).push_back(std::move(t));
  try_dispatch(loc);
}

void SimExecutor::send(std::uint32_t from, std::uint32_t to,
                       std::size_t bytes, Task t) {
  t.locality = to;
  if (from == to) {
    spawn(std::move(t));
    return;
  }
  bytes_sent_ += bytes;
  parcels_sent_ += 1;
  auto& src = locs_[from];
  src.nic_free = std::max(src.nic_free, now_) +
                 static_cast<double>(bytes) / net_.bandwidth;
  const double arrival = src.nic_free + net_.latency;
  post(arrival, [this, task = std::move(t)]() mutable {
    spawn(std::move(task));
  });
}

void SimExecutor::try_dispatch(std::uint32_t loc) {
  auto& ls = locs_[loc];
  while (ls.busy_cores < cores_ && (!ls.high.empty() || !ls.low.empty())) {
    Task t;
    if (!ls.high.empty()) {
      // Priority class drains oldest-first.
      t = std::move(ls.high.front());
      ls.high.pop_front();
    } else if (policy_ == SchedPolicy::kFifo) {
      t = std::move(ls.low.front());
      ls.low.pop_front();
    } else {
      // Randomized work stealing in aggregate: with many per-core deques
      // and random steal victims, the pool is serviced in near-uniform
      // random order — which is exactly why the paper observes critical
      // upward-pass tasks being scheduled "up to 83% through the
      // execution": the scheduler is oblivious to the critical path.
      const std::size_t idx = ls.rng.below(ls.low.size());
      std::swap(ls.low[idx], ls.low.back());
      t = std::move(ls.low.back());
      ls.low.pop_back();
    }
    ls.busy_cores++;
    run_task(loc, std::move(t));
  }
}

void SimExecutor::run_task(std::uint32_t loc, Task t) {
  const double start = now_ + net_.task_overhead;
  double finish = start;
  if (trace_->enabled()) {
    const int core = locs_[loc].busy_cores - 1;  // stable enough for traces
    const std::uint32_t worker =
        loc * static_cast<std::uint32_t>(cores_) +
        static_cast<std::uint32_t>(std::min(core, cores_ - 1));
    for (const CostItem& it : t.items) {
      trace_->record(worker, it.cls, finish, finish + it.cost);
      finish += it.cost;
    }
  } else {
    for (const CostItem& it : t.items) finish += it.cost;
  }
  post(finish, [this, loc, fn = std::move(t.fn)]() {
    if (fn) fn();
    auto& ls = locs_[loc];
    ls.busy_cores--;
    try_dispatch(loc);
  });
}

double SimExecutor::drain() {
  const double t0 = now_;
  while (!events_.empty()) {
    // Pull the event without holding a reference across fn() — handlers
    // push new events and would invalidate it.
    Event e = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    AMTFMM_ASSERT(e.time >= now_ - 1e-12);
    now_ = std::max(now_, e.time);
    e.fn();
  }
  return now_ - t0;
}

}  // namespace amtfmm
