#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <thread>

#include "runtime/executor.hpp"
#include "runtime/locality_runtime.hpp"
#include "runtime/sync_hook.hpp"
#include "runtime/ws_deque.hpp"
#include "support/rng.hpp"

namespace amtfmm {

/// Real execution: L x C std::thread workers with per-worker double-ended
/// queues and locality-local randomized work stealing, matching the paper's
/// HPX-5 configuration ("local randomized workstealing for node-local
/// thread scheduling").  Localities are in-process; send() delivers the
/// parcel task to a worker of the destination locality and accounts bytes.
///
/// Scheduling fabric (lock-light):
///  - each worker owns bounded Chase-Lev deques (ws_deque.hpp); push/pop/
///    steal are lock-free, with an owner-only spill list when a ring fills,
///  - cross-thread spawns land in the target worker's MPSC inbox (a Treiber
///    stack) and are drained into its deque by the owner,
///  - idle workers back off spin -> yield -> park; parking uses a Dekker
///    protocol (publish work seq_cst, then read sleepers / increment
///    sleepers seq_cst, then re-check work) with an epoch counter bumped
///    under the idle mutex so wakeups cannot be lost.
///
/// Under kPriority, each worker keeps a second deque that is always drained
/// first — the binary priority extension the paper proposes in section VI.
///
/// Parcel coalescing (CoalesceConfig.enabled): remote sends buffer per
/// (src, dst) locality pair and flush as one batch task on threshold; idle
/// workers flush their locality's expired buffers (deadline) and flush
/// everything outbound before parking (quiescence), and drain() flushes any
/// remainder, so no parcel is ever stranded.  Batches of one pair are
/// re-sequenced at the destination, so per-(src,dst) parcel delivery stays
/// FIFO even when batch tasks land on different workers.
class ThreadExecutor final : public Executor {
 public:
  ThreadExecutor(int num_localities, int cores_per_locality,
                 SchedPolicy policy = SchedPolicy::kWorkStealing,
                 std::uint64_t seed = 1, CoalesceConfig coalesce = {});
  ~ThreadExecutor() override;

  ThreadExecutor(const ThreadExecutor&) = delete;
  ThreadExecutor& operator=(const ThreadExecutor&) = delete;

  int num_localities() const override { return num_localities_; }
  int cores_per_locality() const override { return cores_; }
  int current_locality() const override;

  void spawn(Task t) override;
  void send(std::uint32_t from, std::uint32_t to, std::size_t bytes,
            Task t) override;
  double drain() override;
  double now() const override;
  TraceClock trace_clock() const override;

 private:
  struct TaskNode {
    Task task;
    TaskNode* next = nullptr;
  };

  struct WorkerState {
    WsDeque<TaskNode> high{1024};
    WsDeque<TaskNode> low{1024};
    std::atomic<TaskNode*> inbox{nullptr};  // MPSC Treiber stack
    // Owner-only spill when a bounded ring fills; never stolen from.
    std::deque<TaskNode*> overflow_high;
    std::deque<TaskNode*> overflow_low;
    Rng rng{0};
  };

  /// Destination-side re-sequencing of one (src, dst) pair's batches:
  /// batch tasks may land on any destination worker, so arrivals are
  /// reordered by sequence number and run serially, preserving FIFO.
  struct InOrder {
    SyncMutex mu;
    std::uint64_t expected GUARDED_BY(mu) = 0;
    bool running GUARDED_BY(mu) = false;
    std::map<std::uint64_t, ParcelBatch> ready GUARDED_BY(mu);
  };

  void worker_loop(int w);
  TaskNode* next_task(int w);
  TaskNode* try_steal(int w);
  void push_local(int w, TaskNode* n);
  void drain_inbox(int w);
  bool work_available(int w) const;
  void wake_all();
  void park(int w);

  /// Wraps a flushed batch into one task at the destination and spawns it.
  void deliver(ParcelBatch b);
  /// Runs at the destination: re-sequences and executes batches in order.
  void run_batch_in_order(ParcelBatch b);
  /// Deadline flush of the worker's locality; returns true if any flushed.
  bool flush_expired(int w);
  /// Quiescence flush of everything outbound from the worker's locality.
  bool flush_outbound(int w);

  int num_localities_;
  int cores_;
  SchedPolicy policy_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::thread> threads_;

  SyncMutex idle_mu_;
  SyncCondVar idle_cv_;
  SyncCondVar drain_cv_;
  std::atomic<std::uint64_t> wake_epoch_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<std::int64_t> outstanding_{0};
  // Buffered-parcel quiescence counter lives in the shared LocalityRuntime
  // (rt_).  Invariant: a parcel moves from buffered to outstanding_ by
  // spawning its batch task *before* note_batch_consumed(), so
  // outstanding_ == 0 && rt_->buffered() == 0 implies true quiescence.
  std::atomic<bool> stop_{false};
  std::vector<InOrder> inorder_;  // src * L + dst
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> spawn_rr_{0};
};

}  // namespace amtfmm
