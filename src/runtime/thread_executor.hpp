#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "runtime/executor.hpp"
#include "support/rng.hpp"

namespace amtfmm {

/// Real execution: L x C std::thread workers with per-worker double-ended
/// queues and locality-local randomized work stealing, matching the paper's
/// HPX-5 configuration ("local randomized workstealing for node-local
/// thread scheduling").  Localities are in-process; send() delivers the
/// parcel task to a worker of the destination locality and accounts bytes.
///
/// Under kPriority, each worker keeps a second deque that is always drained
/// first — the binary priority extension the paper proposes in section VI.
class ThreadExecutor final : public Executor {
 public:
  ThreadExecutor(int num_localities, int cores_per_locality,
                 SchedPolicy policy = SchedPolicy::kWorkStealing,
                 std::uint64_t seed = 1);
  ~ThreadExecutor() override;

  ThreadExecutor(const ThreadExecutor&) = delete;
  ThreadExecutor& operator=(const ThreadExecutor&) = delete;

  int num_localities() const override { return num_localities_; }
  int cores_per_locality() const override { return cores_; }

  void spawn(Task t) override;
  void send(std::uint32_t from, std::uint32_t to, std::size_t bytes,
            Task t) override;
  double drain() override;
  double now() const override;

  std::uint64_t bytes_sent() const override { return bytes_sent_.load(); }
  std::uint64_t parcels_sent() const override { return parcels_sent_.load(); }

 private:
  struct WorkerState {
    std::mutex mu;
    std::deque<Task> high;
    std::deque<Task> low;
    Rng rng{0};
  };

  void worker_loop(int w);
  bool try_pop(int w, Task& out);
  bool try_steal(int w, Task& out);
  void push(int w, Task t);

  int num_localities_;
  int cores_;
  SchedPolicy policy_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::thread> threads_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::condition_variable drain_cv_;
  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> parcels_sent_{0};
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> spawn_rr_{0};
};

}  // namespace amtfmm
