#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "runtime/sync_hook.hpp"

namespace amtfmm {

/// Serve-epoch watchdog: a tiny monitor thread that fires `on_stall` when
/// an armed period goes `timeout_s` seconds without a beat().  The serve
/// loop arms it around each epoch and beats it on epoch completion, so a
/// wedged drain (peer death the termination protocol cannot see, a
/// deadlocked handler) produces a flight-recorder dump instead of a
/// silent hang.  Fires at most once per stall episode; a subsequent
/// beat() re-arms detection.
class Watchdog {
 public:
  using StallFn = std::function<void(double stalled_s)>;

  /// Starts the monitor thread immediately (disarmed).
  Watchdog(double timeout_s, StallFn on_stall);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Progress marker; resets the stall clock and stall-reported latch.
  void beat();
  /// Only armed periods are watched; disarm while idle between requests.
  void arm();
  void disarm();

  /// True once on_stall has fired at least once.
  bool fired() const {
    // relaxed-ok: diagnostic latch read after the fact; the monitor
    // thread sets it before invoking on_stall.
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  const double timeout_s_;
  StallFn on_stall_;

  SyncMutex mu_;
  SyncCondVar cv_;
  std::uint64_t beats_ GUARDED_BY(mu_) = 0;
  bool armed_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;

  std::atomic<bool> fired_{false};
  std::thread th_;
};

}  // namespace amtfmm
