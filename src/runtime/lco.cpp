#include "runtime/lco.hpp"

#include "support/error.hpp"

namespace amtfmm {

void LCO::set_input(std::span<const std::byte> data) {
  bool now_triggered = false;
  {
    std::lock_guard lk(mu_);
    AMTFMM_ASSERT_MSG(!triggered_.load(std::memory_order_relaxed),
                      "input to an already-triggered LCO");
    reduce(data);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      now_triggered = true;
    }
  }
  if (now_triggered) fire();
}

void LCO::fire() {
  std::vector<Task> to_run;
  {
    std::lock_guard lk(mu_);
    on_trigger();
    triggered_.store(true, std::memory_order_release);
    to_run.swap(continuations_);
  }
  cv_.notify_all();
  on_fire();
  for (auto& t : to_run) ex_.spawn(std::move(t));
}

void LCO::register_continuation(Task t) {
  {
    std::lock_guard lk(mu_);
    if (!triggered_.load(std::memory_order_relaxed)) {
      continuations_.push_back(std::move(t));
      return;
    }
  }
  ex_.spawn(std::move(t));
}

void LCO::wait() {
  AMTFMM_ASSERT_MSG(current_worker() < 0,
                    "LCO::wait would deadlock a scheduler thread");
  std::unique_lock lk(mu_);
  cv_.wait(lk, [this] { return triggered_.load(std::memory_order_acquire); });
}

}  // namespace amtfmm
