#include "runtime/lco.hpp"

#include "runtime/locality_runtime.hpp"
#include "support/error.hpp"

namespace amtfmm {

void LCO::set_input(std::span<const std::byte> data) {
  bool now_triggered = false;
  {
    // rtcheck mutation point: eliding this lock lets concurrent reduce()
    // calls race (the checker flags the unordered accesses).  Normal builds
    // always lock.
    MaybeLockGuard lk(mu_, Mutation::kLcoSetInputNoLock);
    // relaxed-ok: guarded by mu_; fire() publishes triggered_ under mu_.
    AMTFMM_ASSERT_MSG(!hooked_load(triggered_, std::memory_order_relaxed),
                      "input to an already-triggered LCO");
    // Input-wait latency: stamp the first arrival, observe on trigger.  The
    // clock read is skipped entirely while the registry is disabled.  The
    // release store pairs with fire()'s acquire load outside the lock.
    if (hooked_load(first_input_t_, std::memory_order_acquire) < 0.0 &&
        ex_.counters().enabled()) {
      hooked_store(first_input_t_, ex_.now(), std::memory_order_release);
    }
    reduce(data);
    sync_event(SyncKind::kLcoInput, this);
    if (hooked_fetch_sub(remaining_, 1, std::memory_order_acq_rel) == 1) {
      now_triggered = true;
    }
  }
  if (now_triggered) fire();
}

void LCO::fire() {
  std::vector<Task> to_run;
  {
    SyncLockGuard lk(mu_);
    on_trigger();
    hooked_store(triggered_, true, std::memory_order_release);
    to_run.swap(continuations_);
  }
  cv_.notify_all();
  // Trigger-once protocol event: rtcheck reports a second fire on the same
  // object as a double-fire violation.
  sync_event(SyncKind::kLcoFire, this);
  const double tn =
      (ex_.counters().enabled() || ex_.trace().enabled()) ? ex_.now() : -1.0;
  if (tn >= 0.0) {
    const int w = LocalityRuntime::metric_worker();
    // Stored by the first input under mu_; this read is outside the lock
    // (cold path), so the stamp is atomic — acquire pairs with the release
    // store, on top of the acq_rel chain on remaining_.
    const double t0 = hooked_load(first_input_t_, std::memory_order_acquire);
    if (t0 >= 0.0) {
      ex_.counters().observe(
          w, ex_.runtime().ids().lco_input_wait_us,
          static_cast<std::uint64_t>((tn - t0) * 1e6));
    }
    if (ex_.trace().enabled()) {
      ex_.trace().record_instant(static_cast<std::uint32_t>(w),
                                 InstantKind::kLcoFire, tn);
    }
  }
  on_fire();
  for (auto& t : to_run) ex_.spawn(std::move(t));
}

void LCO::rearm(int inputs_needed) {
  SyncLockGuard lk(mu_);
  // The epoch boundary is a synchronization point: announce it before the
  // state flips so rtcheck orders the re-arm after the previous fire and
  // resets its trigger-once detector for this object.
  sync_event(SyncKind::kLcoRearm, this, static_cast<std::uint64_t>(
                                            inputs_needed < 0 ? 0
                                                              : inputs_needed));
  hooked_store(remaining_, inputs_needed, std::memory_order_release);
  hooked_store(triggered_, inputs_needed == 0, std::memory_order_release);
  hooked_store(first_input_t_, -1.0, std::memory_order_release);
}

void LCO::register_continuation(Task t) {
  {
    SyncLockGuard lk(mu_);
    sync_event(SyncKind::kLcoContinuation, this);
    // relaxed-ok: guarded by mu_; fire() publishes triggered_ under mu_.
    if (!hooked_load(triggered_, std::memory_order_relaxed)) {
      continuations_.push_back(std::move(t));
      return;
    }
  }
  ex_.spawn(std::move(t));
}

void LCO::wait() {
  AMTFMM_ASSERT_MSG(current_worker() < 0,
                    "LCO::wait would deadlock a scheduler thread");
  SyncUniqueLock lk(mu_);
  // Explicit predicate loop: SyncCondVar has no wait(pred) overload (a
  // predicate lambda defeats the thread-safety analysis; see sync_hook.hpp).
  while (!triggered_.load(std::memory_order_acquire)) cv_.wait(lk);
}

}  // namespace amtfmm
