#include "runtime/lco.hpp"

#include "runtime/locality_runtime.hpp"
#include "support/error.hpp"

namespace amtfmm {

void LCO::set_input(std::span<const std::byte> data) {
  bool now_triggered = false;
  {
    std::lock_guard lk(mu_);
    AMTFMM_ASSERT_MSG(!triggered_.load(std::memory_order_relaxed),
                      "input to an already-triggered LCO");
    // Input-wait latency: stamp the first arrival, observe on trigger.  The
    // clock read is skipped entirely while the registry is disabled.
    if (first_input_t_ < 0.0 && ex_.counters().enabled()) {
      first_input_t_ = ex_.now();
    }
    reduce(data);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      now_triggered = true;
    }
  }
  if (now_triggered) fire();
}

void LCO::fire() {
  std::vector<Task> to_run;
  {
    std::lock_guard lk(mu_);
    on_trigger();
    triggered_.store(true, std::memory_order_release);
    to_run.swap(continuations_);
  }
  cv_.notify_all();
  const double tn =
      (ex_.counters().enabled() || ex_.trace().enabled()) ? ex_.now() : -1.0;
  if (tn >= 0.0) {
    const int w = LocalityRuntime::metric_worker();
    if (first_input_t_ >= 0.0) {
      ex_.counters().observe(
          w, ex_.runtime().ids().lco_input_wait_us,
          static_cast<std::uint64_t>((tn - first_input_t_) * 1e6));
    }
    if (ex_.trace().enabled()) {
      ex_.trace().record_instant(static_cast<std::uint32_t>(w),
                                 InstantKind::kLcoFire, tn);
    }
  }
  on_fire();
  for (auto& t : to_run) ex_.spawn(std::move(t));
}

void LCO::register_continuation(Task t) {
  {
    std::lock_guard lk(mu_);
    if (!triggered_.load(std::memory_order_relaxed)) {
      continuations_.push_back(std::move(t));
      return;
    }
  }
  ex_.spawn(std::move(t));
}

void LCO::wait() {
  AMTFMM_ASSERT_MSG(current_worker() < 0,
                    "LCO::wait would deadlock a scheduler thread");
  std::unique_lock lk(mu_);
  cv_.wait(lk, [this] { return triggered_.load(std::memory_order_acquire); });
}

}  // namespace amtfmm
