#include "runtime/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "support/json.hpp"

namespace amtfmm {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Prometheus metric-name charset: [a-zA-Z0-9_]; everything else ('.' in
/// the registry taxonomy) maps to '_'.
std::string prom_name(const std::string& name, const char* suffix) {
  std::string out = "amtfmm_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  out += suffix;
  return out;
}

void prom_line(std::string& out, const std::string& metric,
               std::uint32_t rank, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out += metric;
  out += "{rank=\"";
  out += std::to_string(rank);
  out += "\"} ";
  out += buf;
  out += '\n';
}

}  // namespace

std::uint64_t TelemetrySample::value(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const CounterSnapshot::Histogram* TelemetrySample::hist(
    const std::string& name) const {
  for (const auto& h : hists) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TelemetrySample telemetry_delta(const CounterSnapshot& prev,
                                const CounterSnapshot& cur) {
  TelemetrySample s;
  // Snapshots of one registry list metrics in registration order, so the
  // common case is index alignment; fall back to a name scan if the shapes
  // ever diverge (a metric registered between the two snapshots).
  auto prev_scalar = [](const std::vector<CounterSnapshot::Scalar>& v,
                        const std::string& name,
                        std::size_t hint) -> std::uint64_t {
    if (hint < v.size() && v[hint].name == name) return v[hint].value;
    for (const auto& p : v) {
      if (p.name == name) return p.value;
    }
    return 0;
  };
  s.counters.reserve(cur.counters.size());
  for (std::size_t i = 0; i < cur.counters.size(); ++i) {
    const auto& c = cur.counters[i];
    const std::uint64_t p = prev_scalar(prev.counters, c.name, i);
    // Clamp at 0: a clear() between snapshots makes cur < prev.
    s.counters.push_back({c.name, c.value >= p ? c.value - p : c.value});
  }
  s.gauges = cur.gauges;  // high-water marks: current value, not a delta
  s.hists.reserve(cur.histograms.size());
  for (std::size_t i = 0; i < cur.histograms.size(); ++i) {
    const auto& c = cur.histograms[i];
    const CounterSnapshot::Histogram* p = nullptr;
    if (i < prev.histograms.size() && prev.histograms[i].name == c.name) {
      p = &prev.histograms[i];
    } else {
      for (const auto& ph : prev.histograms) {
        if (ph.name == c.name) {
          p = &ph;
          break;
        }
      }
    }
    CounterSnapshot::Histogram d;
    d.name = c.name;
    if (p != nullptr && c.count >= p->count) {
      d.count = c.count - p->count;
      d.sum = c.sum >= p->sum ? c.sum - p->sum : 0;
      for (std::size_t b = 0; b < d.buckets.size(); ++b) {
        d.buckets[b] = c.buckets[b] >= p->buckets[b]
                           ? c.buckets[b] - p->buckets[b]
                           : 0;
      }
    } else {
      d.count = c.count;
      d.sum = c.sum;
      d.buckets = c.buckets;
    }
    s.hists.push_back(std::move(d));
  }
  return s;
}

void telemetry_append_json(JsonWriter& w, const TelemetrySample& s) {
  w.begin_object();
  w.kv("v", std::uint64_t{1});
  w.kv("rank", static_cast<std::uint64_t>(s.rank));
  w.kv("seq", s.seq);
  w.kv("t_s", s.t_s);
  w.kv("dt_s", s.dt_s);
  w.key("counters");
  w.begin_object();
  for (const auto& c : s.counters) w.kv(c.name, c.value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& g : s.gauges) w.kv(g.name, g.value);
  w.end_object();
  w.key("hists");
  w.begin_object();
  for (const auto& h : s.hists) {
    w.key(h.name);
    w.begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.key("buckets");
    w.begin_array();
    std::size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (std::size_t i = 0; i < last; ++i) w.value(h.buckets[i]);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string telemetry_encode(const TelemetrySample& s) {
  JsonWriter w;
  telemetry_append_json(w, s);
  return w.str();
}

namespace {

bool sample_from_value(const JsonValue& v, TelemetrySample& out,
                       std::string& error) {
  if (!v.is_object()) {
    error = "telemetry sample is not an object";
    return false;
  }
  if (static_cast<int>(v.num_or("v", 0)) != 1) {
    error = "telemetry sample has unknown version";
    return false;
  }
  out = TelemetrySample{};
  out.rank = static_cast<std::uint32_t>(v.num_or("rank", 0));
  out.seq = static_cast<std::uint64_t>(v.num_or("seq", 0));
  out.t_s = v.num_or("t_s", 0.0);
  out.dt_s = v.num_or("dt_s", 0.0);
  auto scalars = [](const JsonValue* obj,
                    std::vector<CounterSnapshot::Scalar>& dst) {
    if (obj == nullptr || !obj->is_object()) return;
    for (const auto& [name, val] : obj->object) {
      dst.push_back({name, static_cast<std::uint64_t>(val.number)});
    }
  };
  scalars(v.find("counters"), out.counters);
  scalars(v.find("gauges"), out.gauges);
  if (const JsonValue* hs = v.find("hists"); hs != nullptr && hs->is_object()) {
    for (const auto& [name, hv] : hs->object) {
      CounterSnapshot::Histogram h;
      h.name = name;
      h.count = static_cast<std::uint64_t>(hv.num_or("count", 0));
      h.sum = static_cast<std::uint64_t>(hv.num_or("sum", 0));
      if (const JsonValue* bs = hv.find("buckets");
          bs != nullptr && bs->is_array()) {
        const std::size_t n = std::min(bs->array.size(), h.buckets.size());
        for (std::size_t i = 0; i < n; ++i) {
          h.buckets[i] = static_cast<std::uint64_t>(bs->array[i].number);
        }
      }
      out.hists.push_back(std::move(h));
    }
  }
  return true;
}

}  // namespace

bool telemetry_decode(const std::string& text, TelemetrySample& out,
                      std::string& error) {
  JsonValue v;
  if (!json_parse(text, v, error)) return false;
  return sample_from_value(v, out, error);
}

std::string telemetry_render_prom(
    const std::vector<TelemetrySample>& latest) {
  // One # TYPE line per metric, then the per-rank series.  Collect names
  // first so ranks with different metric sets (they shouldn't differ, but
  // a late-starting rank may have shipped nothing yet) still merge.
  std::string out;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;
  auto note = [](std::vector<std::string>& v, const std::string& n) {
    if (std::find(v.begin(), v.end(), n) == v.end()) v.push_back(n);
  };
  for (const auto& s : latest) {
    for (const auto& c : s.counters) note(counter_names, c.name);
    for (const auto& g : s.gauges) note(gauge_names, g.name);
    for (const auto& h : s.hists) note(hist_names, h.name);
  }
  for (const auto& name : counter_names) {
    const std::string metric = prom_name(name, "_rate");
    out += "# TYPE " + metric + " gauge\n";
    for (const auto& s : latest) {
      prom_line(out, metric, s.rank,
                s.dt_s > 0.0
                    ? static_cast<double>(s.value(name)) / s.dt_s
                    : 0.0);
    }
  }
  for (const auto& name : gauge_names) {
    const std::string metric = prom_name(name, "");
    out += "# TYPE " + metric + " gauge\n";
    for (const auto& s : latest) {
      prom_line(out, metric, s.rank, static_cast<double>(s.value(name)));
    }
  }
  for (const auto& name : hist_names) {
    const std::string count_m = prom_name(name, "_window_count");
    const std::string p50_m = prom_name(name, "_p50");
    const std::string p99_m = prom_name(name, "_p99");
    out += "# TYPE " + count_m + " gauge\n";
    out += "# TYPE " + p50_m + " gauge\n";
    out += "# TYPE " + p99_m + " gauge\n";
    for (const auto& s : latest) {
      const CounterSnapshot::Histogram* h = s.hist(name);
      const double count = h != nullptr ? static_cast<double>(h->count) : 0.0;
      prom_line(out, count_m, s.rank, count);
      prom_line(out, p50_m, s.rank,
                h != nullptr ? histogram_quantile(*h, 0.5) : 0.0);
      prom_line(out, p99_m, s.rank,
                h != nullptr ? histogram_quantile(*h, 0.99) : 0.0);
    }
  }
  return out;
}

TelemetrySampler::TelemetrySampler(CounterRegistry& reg, std::uint32_t rank,
                                   double interval_s, ShipFn ship)
    : reg_(reg),
      rank_(rank),
      interval_s_(std::max(interval_s, 0.01)),
      ship_(std::move(ship)),
      prev_(reg.snapshot()),
      origin_(Clock::now()),
      last_(origin_) {
  th_ = std::thread([this] { loop(); });
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::stop() {
  {
    SyncLockGuard lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (th_.joinable()) th_.join();
  // Final flush off-thread so runs shorter than one interval still ship
  // one sample (check_telemetry.py scrapes right after a short serve run).
  take_sample(true);
}

void TelemetrySampler::take_sample(bool final_flush) {
  const Clock::time_point now = Clock::now();
  const double dt = seconds_between(last_, now);
  if (final_flush && dt < 1e-4) return;  // nothing meaningful to report
  CounterSnapshot cur = reg_.snapshot();
  TelemetrySample s = telemetry_delta(prev_, cur);
  prev_ = std::move(cur);
  s.rank = rank_;
  s.seq = seq_++;
  s.t_s = seconds_between(origin_, now);
  s.dt_s = dt;
  last_ = now;
  if (ship_) ship_(telemetry_encode(s));
}

void TelemetrySampler::loop() {
  SyncUniqueLock lk(mu_);
  while (!stop_) {
    // Explicit deadline loop (no predicate overload; see sync_hook.hpp):
    // re-wait after spurious wakeups until the interval elapses or stop().
    const auto deadline =
        Clock::now() + std::chrono::duration<double>(interval_s_);
    while (!stop_) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
    if (stop_) break;
    lk.unlock();
    take_sample(false);
    lk.lock();
  }
}

TelemetryAggregator::TelemetryAggregator(std::uint32_t world,
                                         std::string snapshot_path,
                                         std::size_t keep)
    : world_(world),
      path_(std::move(snapshot_path)),
      keep_(std::max<std::size_t>(keep, 1)),
      series_(std::max<std::uint32_t>(world, 1)) {
  th_ = std::thread([this] { loop(); });
}

TelemetryAggregator::~TelemetryAggregator() { stop(); }

void TelemetryAggregator::enqueue(std::string&& sample_json) {
  {
    SyncLockGuard lk(mu_);
    if (stop_) return;
    queue_.push_back(std::move(sample_json));
  }
  cv_.notify_all();
}

void TelemetryAggregator::stop() {
  {
    SyncLockGuard lk(mu_);
    if (stop_ && !th_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (th_.joinable()) th_.join();
}

bool TelemetryAggregator::ingest(const std::string& text) {
  TelemetrySample s;
  std::string err;
  if (!telemetry_decode(text, s, err) || s.rank >= series_.size()) {
    ++rejected_;
    return false;
  }
  auto& series = series_[s.rank];
  series.push_back(std::move(s));
  while (series.size() > keep_) series.pop_front();
  ++accepted_;
  return true;
}

void TelemetryAggregator::write_snapshot() {
  if (path_.empty()) return;
  JsonWriter w;
  w.begin_object();
  w.kv("v", std::uint64_t{1});
  w.kv("world", static_cast<std::uint64_t>(world_));
  w.kv("accepted", accepted_);
  w.kv("rejected", rejected_);
  w.key("ranks");
  w.begin_array();
  for (std::size_t r = 0; r < series_.size(); ++r) {
    w.begin_object();
    w.kv("rank", static_cast<std::uint64_t>(r));
    w.key("samples");
    w.begin_array();
    for (const auto& s : series_[r]) telemetry_append_json(w, s);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  // Atomic publish: a reader polling the file either sees the previous
  // snapshot or this one, never a torn write.
  const std::string tmp = path_ + ".tmp";
  if (w.write_file(tmp)) std::rename(tmp.c_str(), path_.c_str());
}

void TelemetryAggregator::loop() {
  SyncUniqueLock lk(mu_);
  for (;;) {
    // Explicit deadline loop (no predicate overload; see sync_hook.hpp).
    const auto deadline = Clock::now() + std::chrono::milliseconds(250);
    while (!stop_ && queue_.empty()) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
    std::deque<std::string> batch;
    batch.swap(queue_);
    const bool stopping = stop_;
    lk.unlock();
    bool changed = false;
    for (const auto& text : batch) changed |= ingest(text);
    if (changed || stopping) write_snapshot();
    if (stopping) return;
    lk.lock();
  }
}

bool telemetry_load_snapshot(const std::string& path,
                             std::vector<std::vector<TelemetrySample>>& out,
                             std::string& error) {
  std::string text;
  if (!read_file(path, text)) {
    error = "unreadable snapshot file: " + path;
    return false;
  }
  JsonValue v;
  if (!json_parse(text, v, error)) return false;
  const JsonValue* ranks = v.find("ranks");
  if (ranks == nullptr || !ranks->is_array()) {
    error = "snapshot has no ranks array";
    return false;
  }
  const auto world =
      static_cast<std::size_t>(std::max(v.num_or("world", 0.0), 0.0));
  out.assign(std::max(world, ranks->array.size()), {});
  for (const auto& rv : ranks->array) {
    const auto rank = static_cast<std::size_t>(rv.num_or("rank", 0));
    if (rank >= out.size()) continue;
    const JsonValue* samples = rv.find("samples");
    if (samples == nullptr || !samples->is_array()) continue;
    for (const auto& sv : samples->array) {
      TelemetrySample s;
      std::string err;
      if (sample_from_value(sv, s, err)) out[rank].push_back(std::move(s));
    }
  }
  return true;
}

}  // namespace amtfmm
