#include "runtime/trace_merge.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "runtime/trace.hpp"
#include "runtime/trace_report.hpp"
#include "support/json.hpp"

namespace amtfmm {
namespace {

constexpr double kUs = 1e6;  // seconds -> trace_event microseconds

/// One parsed input file plus its merge-relevant metadata.
struct RankTrace {
  JsonValue root;
  std::uint32_t rank = 0;
  int cores = 1;
  double steady_origin_s = 0.0;
  double offset_s = 0.0;
  double uncertainty_s = 0.0;
  double delta_s = 0.0;  ///< correction onto the reference rank's clock
  std::string path;
};

/// A matched cross-rank parcel flow on the corrected timeline.
struct Flow {
  double send_s;
  double recv_s;
  std::uint32_t src;
  std::uint32_t dst;
};

/// Re-serializes a parsed JSON value (the merge mutates parsed events —
/// shifted ts, remapped flow ids — and must write them back out).
void emit_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      w.null();
      break;
    case JsonValue::Kind::kBool:
      w.value(v.boolean);
      break;
    case JsonValue::Kind::kNumber:
      // Integers survive the double round trip exactly below 2^53; emit
      // them without a fractional part so pids/tids/ids stay integral.
      if (v.number == std::floor(v.number) &&
          std::abs(v.number) < 9.0e15) {
        w.value(static_cast<std::int64_t>(v.number));
      } else {
        w.value(v.number);
      }
      break;
    case JsonValue::Kind::kString:
      w.value(v.string);
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& e : v.array) emit_value(w, e);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [k, e] : v.object) {
        w.key(k);
        emit_value(w, e);
      }
      w.end_object();
      break;
  }
}

}  // namespace

TraceMergeReport trace_merge(const std::vector<std::string>& inputs,
                             const std::string& out_path) {
  TraceMergeReport r;
  auto fail = [&r](const std::string& what) {
    r.valid = false;
    if (r.error.empty()) r.error = what;
    return r;
  };
  if (inputs.empty()) return fail("no input traces");
  if (out_path.empty()) return fail("merge needs an output path");

  // Parse every input and pull the clock metadata.
  std::vector<RankTrace> ranks(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    RankTrace& rt = ranks[i];
    rt.path = inputs[i];
    std::string text;
    if (!read_file(inputs[i], text)) {
      return fail("cannot read " + inputs[i]);
    }
    std::string perr;
    if (!json_parse(text, rt.root, perr)) {
      return fail(inputs[i] + ": malformed JSON: " + perr);
    }
    const JsonValue* meta = rt.root.find("amtfmm");
    if (meta == nullptr || !meta->is_object()) {
      return fail(inputs[i] + ": missing \"amtfmm\" metadata");
    }
    rt.rank = static_cast<std::uint32_t>(meta->num_or("rank", 0.0));
    rt.cores = static_cast<int>(meta->num_or("cores_per_locality", 1.0));
    if (const JsonValue* clk = meta->find("clock");
        clk != nullptr && clk->is_object()) {
      rt.steady_origin_s = clk->num_or("steady_origin_s", 0.0);
      rt.offset_s = clk->num_or("offset_s", 0.0);
      rt.uncertainty_s = clk->num_or("uncertainty_s", 0.0);
    }
  }
  std::sort(ranks.begin(), ranks.end(),
            [](const RankTrace& a, const RankTrace& b) {
              return a.rank < b.rank;
            });
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    if (ranks[i].rank == ranks[i - 1].rank) {
      return fail("duplicate rank " + std::to_string(ranks[i].rank) +
                  " across inputs");
    }
  }

  // The lowest rank present anchors the merged timeline (rank 0 in any
  // complete set); its own delta is identically 0.
  const RankTrace& ref = ranks.front();
  const double ref_origin = ref.steady_origin_s - ref.offset_s;
  r.world = 0;
  for (RankTrace& rt : ranks) {
    rt.delta_s = (rt.steady_origin_s - rt.offset_s) - ref_origin;
    r.world = std::max(r.world, rt.rank + 1);
    r.max_uncertainty_s = std::max(r.max_uncertainty_s, rt.uncertainty_s);
  }

  // Walk every rank's events: shift timestamps, re-key flow ids into a
  // disjoint per-rank range, and harvest the parcel_send / parcel_recv
  // instants that re-derive cross-rank flows.
  struct Ordered {
    double ts_us;
    JsonValue ev;
  };
  std::deque<Ordered> merged;
  std::vector<JsonValue> meta_events;
  const char* send_name = instant_kind_name(InstantKind::kParcelSend);
  const char* recv_name = instant_kind_name(InstantKind::kParcelRecv);
  // sends[src][dst] / recvs[dst][src]: corrected times in trace order —
  // the transport preserves per-(src,dst) FIFO order, so the k-th send
  // pairs with the k-th receive.
  const std::size_t world = r.world;
  std::vector<std::vector<std::deque<double>>> sends(
      world, std::vector<std::deque<double>>(world));
  std::vector<std::vector<std::deque<double>>> recvs(
      world, std::vector<std::deque<double>>(world));
  double id_base = 0.0;

  for (RankTrace& rt : ranks) {
    const JsonValue* events = rt.root.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      return fail(rt.path + ": missing traceEvents array");
    }
    const double delta_us = rt.delta_s * kUs;
    double max_id = -1.0;
    TraceMergeReport::Rank out;
    out.rank = rt.rank;
    out.delta_s = rt.delta_s;
    out.offset_s = rt.offset_s;
    out.uncertainty_s = rt.uncertainty_s;
    bool any_time = false;
    for (const JsonValue& ev : events->array) {
      if (!ev.is_object()) return fail(rt.path + ": non-object event");
      JsonValue copy = ev;
      const std::string ph = copy.str_or("ph", "");
      if (ph == "M") {
        meta_events.push_back(std::move(copy));
        continue;
      }
      auto it = copy.object.find("ts");
      if (it == copy.object.end() || !it->second.is_number()) {
        return fail(rt.path + ": event without ts");
      }
      it->second.number += delta_us;
      const double ts = it->second.number;
      double t1 = ts;
      if (ph == "X") t1 += copy.num_or("dur", 0.0);
      if (!any_time) {
        out.t_min_s = ts / kUs;
        out.t_max_s = t1 / kUs;
        any_time = true;
      } else {
        out.t_min_s = std::min(out.t_min_s, ts / kUs);
        out.t_max_s = std::max(out.t_max_s, t1 / kUs);
      }
      if (ph == "s" || ph == "f") {
        auto idit = copy.object.find("id");
        if (idit != copy.object.end() && idit->second.is_number()) {
          max_id = std::max(max_id, idit->second.number);
          idit->second.number += id_base;
        }
      }
      if (ph == "i") {
        const std::string name = copy.str_or("name", "");
        const bool is_send = name == send_name;
        const bool is_recv = name == recv_name;
        if (is_send || is_recv) {
          const JsonValue* args = copy.find("args");
          const double peer = args != nullptr ? args->num_or("arg", -1.0)
                                              : -1.0;
          if (peer >= 0.0 && peer < static_cast<double>(world) &&
              rt.rank < world) {
            const auto p = static_cast<std::uint32_t>(peer);
            if (is_send && p != rt.rank) {
              sends[rt.rank][p].push_back(ts / kUs);
            } else if (is_recv && p != rt.rank) {
              recvs[rt.rank][p].push_back(ts / kUs);
            }
          }
        }
      }
      merged.push_back(Ordered{ts, std::move(copy)});
    }
    id_base += max_id + 1.0;
    r.ranks.push_back(out);
  }

  // FIFO-match sends to receives and synthesize cross-rank flow arrows
  // plus a NIC/net wire span on the destination's net thread.  These are
  // the only events in the merged file whose two endpoints come from two
  // different clocks — negative durations here mean the correction (or
  // the sync bound) is wrong.
  std::vector<Flow> flows;
  r.min_flow_s = std::numeric_limits<double>::infinity();
  auto cores_of = [&](std::uint32_t rank) {
    for (const RankTrace& rt : ranks) {
      if (rt.rank == rank) return rt.cores;
    }
    return 1;
  };
  for (std::uint32_t s = 0; s < world; ++s) {
    for (std::uint32_t d = 0; d < world; ++d) {
      if (s == d) continue;
      auto& sq = sends[s][d];
      auto& rq = recvs[d][s];
      const std::size_t n = std::min(sq.size(), rq.size());
      r.unmatched_sends += sq.size() - n;
      for (std::size_t k = 0; k < n; ++k) {
        Flow f{sq[k], rq[k], s, d};
        const double dur = f.recv_s - f.send_s;
        ++r.cross_flows;
        if (dur < 0.0) ++r.negative_flows;
        r.min_flow_s = std::min(r.min_flow_s, dur);
        r.max_flow_s = std::max(r.max_flow_s, dur);
        const double id = id_base + static_cast<double>(flows.size());
        JsonValue fs;
        fs.kind = JsonValue::Kind::kObject;
        auto num = [](double x) {
          JsonValue v;
          v.kind = JsonValue::Kind::kNumber;
          v.number = x;
          return v;
        };
        auto str = [](const char* x) {
          JsonValue v;
          v.kind = JsonValue::Kind::kString;
          v.string = x;
          return v;
        };
        fs.object["name"] = str("xparcel");
        fs.object["cat"] = str("comm");
        fs.object["ph"] = str("s");
        fs.object["id"] = num(id);
        fs.object["ts"] = num(f.send_s * kUs);
        fs.object["pid"] = num(s);
        fs.object["tid"] = num(cores_of(s));
        merged.push_back(Ordered{f.send_s * kUs, fs});
        JsonValue wire = fs;
        wire.object["name"] = str("xwire");
        wire.object["ph"] = str("X");
        wire.object.erase("id");
        wire.object["ts"] = num(std::min(f.send_s, f.recv_s) * kUs);
        wire.object["dur"] = num(std::max(dur, 0.0) * kUs);
        wire.object["pid"] = num(d);
        wire.object["tid"] = num(cores_of(d));
        JsonValue args;
        args.kind = JsonValue::Kind::kObject;
        args.object["src"] = num(s);
        wire.object["args"] = std::move(args);
        merged.push_back(
            Ordered{std::min(f.send_s, f.recv_s) * kUs, std::move(wire)});
        JsonValue fe = std::move(fs);
        fe.object["ph"] = str("f");
        fe.object["bp"] = str("e");
        fe.object["ts"] = num(f.recv_s * kUs);
        fe.object["pid"] = num(d);
        fe.object["tid"] = num(cores_of(d));
        merged.push_back(Ordered{f.recv_s * kUs, std::move(fe)});
        flows.push_back(f);
      }
    }
  }
  if (!std::isfinite(r.min_flow_s)) r.min_flow_s = 0.0;

  // Longest causal chain through the matched flows: NIC/net spans linked
  // by the on-rank dwell between a receive and a later send from that
  // rank.  Flows are processed in send order, so every chain-extending
  // predecessor (recv <= this send <= ...) is already scored.  The inner
  // scan is linear per flow — fine at tool scale (thousands of batches).
  std::sort(flows.begin(), flows.end(),
            [](const Flow& a, const Flow& b) { return a.send_s < b.send_s; });
  std::vector<std::vector<std::pair<double, double>>> done(world);  // recv, L
  for (const Flow& f : flows) {
    const double net = std::max(f.recv_s - f.send_s, 0.0);
    double best_prev = 0.0;
    for (const auto& [recv_s, len] : done[f.src]) {
      if (recv_s <= f.send_s + 1e-12) {
        best_prev = std::max(best_prev, len + (f.send_s - recv_s));
      }
    }
    const double L = net + best_prev;
    done[f.dst].push_back({f.recv_s, L});
    r.net_chain_s = std::max(r.net_chain_s, L);
  }

  // Merged metadata comes from the reference rank: the epoch starts are
  // already on its clock (delta 0) and every rank embeds the identical
  // SPMD DAG edge list.
  const JsonValue* ref_meta = ref.root.find("amtfmm");
  double t_min = 0.0;
  double t_max = 0.0;
  bool any = false;
  for (const auto& rk : r.ranks) {
    t_min = any ? std::min(t_min, rk.t_min_s) : rk.t_min_s;
    t_max = any ? std::max(t_max, rk.t_max_s) : rk.t_max_s;
    any = true;
  }

  std::stable_sort(merged.begin(), merged.end(),
                   [](const Ordered& a, const Ordered& b) {
                     return a.ts_us < b.ts_us;
                   });
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const JsonValue& m : meta_events) emit_value(w, m);
  for (const Ordered& o : merged) emit_value(w, o.ev);
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.key("amtfmm");
  w.begin_object();
  w.kv("version", 1);
  w.kv("sim", false);
  w.kv("merged", true);
  w.kv("makespan", t_max - t_min);
  w.kv("localities", static_cast<std::uint64_t>(world));
  int cores = 1;
  for (const RankTrace& rt : ranks) cores = std::max(cores, rt.cores);
  w.kv("cores_per_locality", cores);
  w.kv("rank", 0);
  w.kv("world", static_cast<std::uint64_t>(world));
  if (ref_meta != nullptr) {
    if (const JsonValue* eps = ref_meta->find("epochs");
        eps != nullptr && eps->is_array()) {
      w.key("epochs");
      emit_value(w, *eps);
    }
    if (const JsonValue* edges = ref_meta->find("edges");
        edges != nullptr && edges->is_array()) {
      w.key("edges");
      emit_value(w, *edges);
    }
  }
  w.key("ranks");
  w.begin_array();
  for (const auto& rk : r.ranks) {
    w.begin_object();
    w.kv("rank", rk.rank);
    w.kv("delta_s", rk.delta_s);
    w.kv("offset_s", rk.offset_s);
    w.kv("uncertainty_s", rk.uncertainty_s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  if (!w.write_file(out_path)) return fail("cannot write " + out_path);

  // Per-rank and merged critical paths via the standard analyzer — the
  // merged file carries every rank's edge-attributed spans, so analyzing
  // it sums weights across ranks (each edge runs on exactly one owning
  // rank; the merged path is therefore >= every single-rank path).
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const TraceReport tr = analyze_trace_file(ranks[i].path);
    if (!tr.valid) {
      return fail(ranks[i].path + ": " + tr.error);
    }
    r.ranks[i].critical_path_s = tr.critical_path_seconds;
  }
  const TraceReport mr = analyze_trace_file(out_path);
  if (!mr.valid) return fail("merged trace invalid: " + mr.error);
  r.cross_critical_path_s = mr.critical_path_seconds;
  r.critical_path_s = std::max(r.cross_critical_path_s, r.net_chain_s);

  r.valid = true;
  return r;
}

std::string merge_report_json(const TraceMergeReport& r) {
  JsonWriter w;
  w.begin_object();
  w.kv("valid", r.valid);
  if (!r.valid) w.kv("error", r.error);
  w.kv("world", static_cast<std::uint64_t>(r.world));
  w.kv("max_uncertainty_s", r.max_uncertainty_s);
  w.kv("cross_flows", r.cross_flows);
  w.kv("unmatched_sends", r.unmatched_sends);
  w.kv("negative_flows", r.negative_flows);
  w.kv("min_flow_s", r.min_flow_s);
  w.kv("max_flow_s", r.max_flow_s);
  w.kv("cross_critical_path_s", r.cross_critical_path_s);
  w.kv("net_chain_s", r.net_chain_s);
  w.kv("critical_path_s", r.critical_path_s);
  w.key("ranks");
  w.begin_array();
  for (const auto& rk : r.ranks) {
    w.begin_object();
    w.kv("rank", rk.rank);
    w.kv("delta_s", rk.delta_s);
    w.kv("offset_s", rk.offset_s);
    w.kv("uncertainty_s", rk.uncertainty_s);
    w.kv("window_s", rk.t_max_s - rk.t_min_s);
    w.kv("critical_path_s", rk.critical_path_s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace amtfmm
