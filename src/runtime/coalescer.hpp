#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/executor.hpp"
#include "runtime/sync_hook.hpp"

namespace amtfmm {

/// Why a buffered batch was handed to the network.
enum class FlushReason : std::uint8_t { kThreshold, kDeadline, kQuiescence };

/// One wire message: every parcel buffered for one (source, destination
/// locality) pair since the last flush, in append (send) order.
struct ParcelBatch {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t seq = 0;  ///< per-(src,dst) batch sequence number
  std::size_t bytes = 0;  ///< summed wire bytes of the parcels
  bool any_high = false;  ///< at least one high-priority parcel
  FlushReason reason = FlushReason::kThreshold;
  std::vector<Task> tasks;  ///< delivery order == send order
};

/// Per-(source, destination-locality) outgoing parcel buffers — the
/// executor-agnostic half of the coalescing layer.  Thread safe: appends to
/// the same pair serialize on the pair's mutex, which also defines the FIFO
/// order the executors preserve on delivery.  The executors own the flush
/// policy: enqueue() reports threshold crossings, the take_*() families
/// implement deadline and quiescence flushes.
class ParcelCoalescer {
 public:
  struct Enqueued {
    /// Set when the append crossed a threshold; the caller delivers it.
    std::optional<ParcelBatch> ready;
    bool first = false;      ///< parcel landed in an empty buffer
    std::uint64_t epoch = 0; ///< buffer epoch, for deadline timers
  };

  ParcelCoalescer(int localities, const CoalesceConfig& cfg);

  /// Appends one parcel to the (src, dst) buffer.  `now` is the executor
  /// clock, used for deadline accounting.
  Enqueued enqueue(std::uint32_t src, std::uint32_t dst, std::size_t bytes,
                   Task t, double now);

  /// The (src, dst) batch if the buffer has not flushed since `epoch`
  /// (deadline timers); nullopt when it flushed in the meantime.
  std::optional<ParcelBatch> take_if_epoch(std::uint32_t src,
                                           std::uint32_t dst,
                                           std::uint64_t epoch);

  /// Buffers from `src` whose oldest parcel is older than the deadline.
  std::vector<ParcelBatch> take_expired_from(std::uint32_t src, double now);

  /// Everything buffered (quiescence / shutdown flushes).
  std::vector<ParcelBatch> take_all();
  std::vector<ParcelBatch> take_all_from(std::uint32_t src);

  bool pending() const;
  bool pending_from(std::uint32_t src) const;

  const CoalesceConfig& config() const { return cfg_; }

 private:
  struct Buffer {
    SyncMutex mu;
    std::vector<Task> tasks GUARDED_BY(mu);
    std::size_t bytes GUARDED_BY(mu) = 0;
    bool any_high GUARDED_BY(mu) = false;
    /// Enqueue time of the first buffered parcel.
    double oldest GUARDED_BY(mu) = 0.0;
    std::uint64_t next_seq GUARDED_BY(mu) = 0;
    /// Bumped on every flush.
    std::uint64_t epoch GUARDED_BY(mu) = 0;
  };

  Buffer& buffer(std::uint32_t src, std::uint32_t dst) {
    return buffers_[static_cast<std::size_t>(src) * localities_ + dst];
  }
  /// Drains a buffer into a batch; b must be nonempty.  The REQUIRES turns
  /// the old "requires b.mu held" comment into a compiler-checked contract.
  ParcelBatch take_locked(Buffer& b, std::uint32_t src, std::uint32_t dst,
                          FlushReason reason) REQUIRES(b.mu);

  CoalesceConfig cfg_;
  std::uint32_t localities_;
  std::vector<Buffer> buffers_;  // indexed src * localities + dst
  /// Buffered parcel counts, for cheap emptiness probes on idle paths.
  /// Invariant (rtcheck-verified): the count never under-reports — it is
  /// raised *before* a parcel enters a buffer and lowered *after* parcels
  /// leave one, so a probe reading 0 can trust that nothing is buffered
  /// once no enqueue is in flight from that source.
  std::unique_ptr<std::atomic<std::uint64_t>[]> pending_per_src_;
};

/// Communication counters shared by both executors.  Lock free; per-parcel
/// updates happen on the send path, per-batch updates at flush time.
class CommCounters {
 public:
  explicit CommCounters(int localities);

  void on_parcel(std::uint32_t dst, std::size_t bytes);
  void on_batch(std::uint32_t dst, std::size_t parcels, std::size_t bytes);
  void on_reason(FlushReason r);

  std::uint64_t parcels() const {
    // relaxed-ok: monotonic statistic, diagnostics only.
    return parcels_.load(std::memory_order_relaxed);
  }
  std::uint64_t batches() const {
    // relaxed-ok: monotonic statistic, diagnostics only.
    return batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes() const {
    // relaxed-ok: monotonic statistic, diagnostics only.
    return bytes_.load(std::memory_order_relaxed);
  }

  CommStats snapshot() const;

 private:
  int localities_;
  std::atomic<std::uint64_t> parcels_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> flush_threshold_{0};
  std::atomic<std::uint64_t> flush_deadline_{0};
  std::atomic<std::uint64_t> flush_quiescence_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> parcels_to_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> batches_to_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> bytes_to_;
  std::array<std::atomic<std::uint64_t>, 16> hist_{};
};

}  // namespace amtfmm
