#include "runtime/locality_runtime.hpp"

#include "runtime/executor.hpp"

namespace amtfmm {

// Executor's runtime accessors live here because executor.hpp only
// forward-declares LocalityRuntime (the runtime includes executor.hpp for
// Task/CoalesceConfig, so the header dependency must point this way).

Executor::~Executor() = default;

TraceSink& Executor::trace() { return rt_->trace(); }
const TraceSink& Executor::trace() const { return rt_->trace(); }

CounterRegistry& Executor::counters() { return rt_->counters(); }
const CounterRegistry& Executor::counters() const { return rt_->counters(); }

std::uint64_t Executor::bytes_sent() const { return rt_->bytes(); }
std::uint64_t Executor::parcels_sent() const { return rt_->parcels(); }
CommStats Executor::comm_stats() const { return rt_->comm_stats(); }

LocalityRuntime& Executor::runtime() { return *rt_; }

}  // namespace amtfmm
