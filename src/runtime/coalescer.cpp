#include "runtime/coalescer.hpp"

#include <bit>

#include "support/error.hpp"

namespace amtfmm {

ParcelCoalescer::ParcelCoalescer(int localities, const CoalesceConfig& cfg)
    : cfg_(cfg),
      localities_(static_cast<std::uint32_t>(localities)),
      buffers_(static_cast<std::size_t>(localities) *
               static_cast<std::size_t>(localities)),
      pending_per_src_(new std::atomic<std::uint64_t>[
          static_cast<std::size_t>(localities)]) {
  AMTFMM_ASSERT(localities >= 1);
  AMTFMM_ASSERT(cfg_.max_parcels >= 1);
  AMTFMM_ASSERT(cfg_.max_bytes >= 1);
  for (int i = 0; i < localities; ++i) {
    pending_per_src_[static_cast<std::size_t>(i)].store(
        0, std::memory_order_relaxed);
  }
}

ParcelBatch ParcelCoalescer::take_locked(Buffer& b, std::uint32_t src,
                                         std::uint32_t dst,
                                         FlushReason reason) {
  ParcelBatch out;
  out.src = src;
  out.dst = dst;
  out.seq = b.next_seq++;
  out.bytes = b.bytes;
  out.any_high = b.any_high;
  out.reason = reason;
  out.tasks = std::move(b.tasks);
  b.tasks.clear();
  b.bytes = 0;
  b.any_high = false;
  b.epoch++;
  pending_per_src_[src].fetch_sub(out.tasks.size(),
                                  std::memory_order_seq_cst);
  return out;
}

ParcelCoalescer::Enqueued ParcelCoalescer::enqueue(std::uint32_t src,
                                                   std::uint32_t dst,
                                                   std::size_t bytes, Task t,
                                                   double now) {
  Buffer& b = buffer(src, dst);
  Enqueued r;
  std::lock_guard lk(b.mu);
  if (b.tasks.empty()) {
    b.oldest = now;
    r.first = true;
    r.epoch = b.epoch;
  }
  b.tasks.push_back(std::move(t));
  b.bytes += bytes;
  b.any_high = b.any_high || b.tasks.back().high_priority;
  pending_per_src_[src].fetch_add(1, std::memory_order_seq_cst);
  if (b.tasks.size() >= cfg_.max_parcels || b.bytes >= cfg_.max_bytes) {
    r.ready = take_locked(b, src, dst, FlushReason::kThreshold);
  }
  return r;
}

std::optional<ParcelBatch> ParcelCoalescer::take_if_epoch(
    std::uint32_t src, std::uint32_t dst, std::uint64_t epoch) {
  Buffer& b = buffer(src, dst);
  std::lock_guard lk(b.mu);
  if (b.epoch != epoch || b.tasks.empty()) return std::nullopt;
  return take_locked(b, src, dst, FlushReason::kDeadline);
}

std::vector<ParcelBatch> ParcelCoalescer::take_expired_from(std::uint32_t src,
                                                            double now) {
  std::vector<ParcelBatch> out;
  if (pending_per_src_[src].load(std::memory_order_seq_cst) == 0) return out;
  for (std::uint32_t dst = 0; dst < localities_; ++dst) {
    Buffer& b = buffer(src, dst);
    std::lock_guard lk(b.mu);
    if (!b.tasks.empty() && now - b.oldest >= cfg_.flush_deadline) {
      out.push_back(take_locked(b, src, dst, FlushReason::kDeadline));
    }
  }
  return out;
}

std::vector<ParcelBatch> ParcelCoalescer::take_all_from(std::uint32_t src) {
  std::vector<ParcelBatch> out;
  if (pending_per_src_[src].load(std::memory_order_seq_cst) == 0) return out;
  for (std::uint32_t dst = 0; dst < localities_; ++dst) {
    Buffer& b = buffer(src, dst);
    std::lock_guard lk(b.mu);
    if (!b.tasks.empty()) {
      out.push_back(take_locked(b, src, dst, FlushReason::kQuiescence));
    }
  }
  return out;
}

std::vector<ParcelBatch> ParcelCoalescer::take_all() {
  std::vector<ParcelBatch> out;
  for (std::uint32_t src = 0; src < localities_; ++src) {
    auto from = take_all_from(src);
    for (auto& b : from) out.push_back(std::move(b));
  }
  return out;
}

bool ParcelCoalescer::pending() const {
  for (std::uint32_t src = 0; src < localities_; ++src) {
    if (pending_per_src_[src].load(std::memory_order_seq_cst) != 0) {
      return true;
    }
  }
  return false;
}

bool ParcelCoalescer::pending_from(std::uint32_t src) const {
  return pending_per_src_[src].load(std::memory_order_seq_cst) != 0;
}

CommCounters::CommCounters(int localities)
    : localities_(localities),
      parcels_to_(new std::atomic<std::uint64_t>[
          static_cast<std::size_t>(localities)]),
      batches_to_(new std::atomic<std::uint64_t>[
          static_cast<std::size_t>(localities)]),
      bytes_to_(new std::atomic<std::uint64_t>[
          static_cast<std::size_t>(localities)]) {
  for (int i = 0; i < localities; ++i) {
    const auto s = static_cast<std::size_t>(i);
    parcels_to_[s].store(0, std::memory_order_relaxed);
    batches_to_[s].store(0, std::memory_order_relaxed);
    bytes_to_[s].store(0, std::memory_order_relaxed);
  }
}

void CommCounters::on_parcel(std::uint32_t dst, std::size_t bytes) {
  parcels_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  parcels_to_[dst].fetch_add(1, std::memory_order_relaxed);
  bytes_to_[dst].fetch_add(bytes, std::memory_order_relaxed);
}

void CommCounters::on_batch(std::uint32_t dst, std::size_t parcels,
                            std::size_t bytes) {
  (void)bytes;  // per-parcel bytes already counted in on_parcel
  batches_.fetch_add(1, std::memory_order_relaxed);
  batches_to_[dst].fetch_add(1, std::memory_order_relaxed);
  const auto bucket = std::min<std::size_t>(
      hist_.size() - 1,
      static_cast<std::size_t>(std::bit_width(std::max<std::size_t>(
          parcels, 1)) - 1));
  hist_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void CommCounters::on_reason(FlushReason r) {
  switch (r) {
    case FlushReason::kThreshold:
      flush_threshold_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kDeadline:
      flush_deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kQuiescence:
      flush_quiescence_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

CommStats CommCounters::snapshot() const {
  CommStats s;
  s.parcels = parcels_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.flush_threshold = flush_threshold_.load(std::memory_order_relaxed);
  s.flush_deadline = flush_deadline_.load(std::memory_order_relaxed);
  s.flush_quiescence = flush_quiescence_.load(std::memory_order_relaxed);
  const auto n = static_cast<std::size_t>(localities_);
  s.parcels_to.resize(n);
  s.batches_to.resize(n);
  s.bytes_to.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.parcels_to[i] = parcels_to_[i].load(std::memory_order_relaxed);
    s.batches_to[i] = batches_to_[i].load(std::memory_order_relaxed);
    s.bytes_to[i] = bytes_to_[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < hist_.size(); ++i) {
    s.batch_size_log2[i] = hist_[i].load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace amtfmm
