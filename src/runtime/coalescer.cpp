#include "runtime/coalescer.hpp"

#include <bit>

#include "support/error.hpp"

namespace amtfmm {

ParcelCoalescer::ParcelCoalescer(int localities, const CoalesceConfig& cfg)
    : cfg_(cfg),
      localities_(static_cast<std::uint32_t>(localities)),
      buffers_(static_cast<std::size_t>(localities) *
               static_cast<std::size_t>(localities)),
      pending_per_src_(new std::atomic<std::uint64_t>[
          static_cast<std::size_t>(localities)]) {
  AMTFMM_ASSERT(localities >= 1);
  AMTFMM_ASSERT(cfg_.max_parcels >= 1);
  AMTFMM_ASSERT(cfg_.max_bytes >= 1);
  for (int i = 0; i < localities; ++i) {
    // relaxed-ok: single-threaded construction; publication orders these.
    pending_per_src_[static_cast<std::size_t>(i)].store(
        0, std::memory_order_relaxed);
  }
}

ParcelBatch ParcelCoalescer::take_locked(Buffer& b, std::uint32_t src,
                                         std::uint32_t dst,
                                         FlushReason reason) {
  ParcelBatch out;
  out.src = src;
  out.dst = dst;
  out.seq = b.next_seq++;
  out.bytes = b.bytes;
  out.any_high = b.any_high;
  out.reason = reason;
  out.tasks = std::move(b.tasks);
  b.tasks.clear();
  b.bytes = 0;
  b.any_high = false;
  b.epoch++;
  // Count-after-remove: the probe counter may transiently over-report but
  // never under-reports (see the pending_per_src_ invariant).
  sync_event(SyncKind::kBatchFlush, this, out.tasks.size());
  hooked_fetch_sub(pending_per_src_[src], out.tasks.size(),
                   std::memory_order_seq_cst);
  sync_event(SyncKind::kPendingLower, this, out.tasks.size());
  return out;
}

ParcelCoalescer::Enqueued ParcelCoalescer::enqueue(std::uint32_t src,
                                                   std::uint32_t dst,
                                                   std::size_t bytes, Task t,
                                                   double now) {
  Buffer& b = buffer(src, dst);
  Enqueued r;
  SyncLockGuard lk(b.mu);
  if (b.tasks.empty()) {
    b.oldest = now;
    r.first = true;
    r.epoch = b.epoch;
  }
  // Count-before-insert: lock-free probes (pending_from) must never
  // under-report, or an idle-path flush could skip a buffer that a
  // concurrent enqueue has already filled.  rtcheck mutation point: the
  // pre-fix insert-then-count order violates the invariant.
  const bool count_late = rt_mutation(Mutation::kCoalescerCountAfterInsert);
  if (!count_late) {
    hooked_fetch_add(pending_per_src_[src], 1, std::memory_order_seq_cst);
    sync_event(SyncKind::kPendingRaise, this, 1);
  }
  b.tasks.push_back(std::move(t));
  b.bytes += bytes;
  b.any_high = b.any_high || b.tasks.back().high_priority;
  sync_event(SyncKind::kBatchEnqueue, this, 1);
  if (count_late) {
    hooked_fetch_add(pending_per_src_[src], 1, std::memory_order_seq_cst);
    sync_event(SyncKind::kPendingRaise, this, 1);
  }
  if (b.tasks.size() >= cfg_.max_parcels || b.bytes >= cfg_.max_bytes) {
    r.ready = take_locked(b, src, dst, FlushReason::kThreshold);
  }
  return r;
}

std::optional<ParcelBatch> ParcelCoalescer::take_if_epoch(
    std::uint32_t src, std::uint32_t dst, std::uint64_t epoch) {
  Buffer& b = buffer(src, dst);
  SyncLockGuard lk(b.mu);
  if (b.epoch != epoch || b.tasks.empty()) return std::nullopt;
  return take_locked(b, src, dst, FlushReason::kDeadline);
}

std::vector<ParcelBatch> ParcelCoalescer::take_expired_from(std::uint32_t src,
                                                            double now) {
  std::vector<ParcelBatch> out;
  if (hooked_load(pending_per_src_[src], std::memory_order_seq_cst) == 0) {
    return out;
  }
  for (std::uint32_t dst = 0; dst < localities_; ++dst) {
    Buffer& b = buffer(src, dst);
    SyncLockGuard lk(b.mu);
    if (!b.tasks.empty() && now - b.oldest >= cfg_.flush_deadline) {
      out.push_back(take_locked(b, src, dst, FlushReason::kDeadline));
    }
  }
  return out;
}

std::vector<ParcelBatch> ParcelCoalescer::take_all_from(std::uint32_t src) {
  std::vector<ParcelBatch> out;
  if (hooked_load(pending_per_src_[src], std::memory_order_seq_cst) == 0) {
    return out;
  }
  for (std::uint32_t dst = 0; dst < localities_; ++dst) {
    Buffer& b = buffer(src, dst);
    SyncLockGuard lk(b.mu);
    if (!b.tasks.empty()) {
      out.push_back(take_locked(b, src, dst, FlushReason::kQuiescence));
    }
  }
  return out;
}

std::vector<ParcelBatch> ParcelCoalescer::take_all() {
  std::vector<ParcelBatch> out;
  for (std::uint32_t src = 0; src < localities_; ++src) {
    auto from = take_all_from(src);
    for (auto& b : from) out.push_back(std::move(b));
  }
  return out;
}

bool ParcelCoalescer::pending() const {
  for (std::uint32_t src = 0; src < localities_; ++src) {
    if (hooked_load(pending_per_src_[src], std::memory_order_seq_cst) != 0) {
      return true;
    }
  }
  return false;
}

bool ParcelCoalescer::pending_from(std::uint32_t src) const {
  return hooked_load(pending_per_src_[src], std::memory_order_seq_cst) != 0;
}

namespace {

// relaxed-ok: CommCounters are monotonic, independently merged statistics.
// Readers (snapshot() and the scalar accessors) tolerate torn cross-counter
// views — the numbers are diagnostics, never control flow — so individual
// updates and reads need no ordering.  All relaxed statistics traffic in
// this file goes through these three helpers.
std::uint64_t stat_read(const std::atomic<std::uint64_t>& a) {
  return a.load(std::memory_order_relaxed);  // relaxed-ok: see above
}
void stat_add(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  a.fetch_add(v, std::memory_order_relaxed);  // relaxed-ok: see above
}
void stat_zero(std::atomic<std::uint64_t>& a) {
  a.store(0, std::memory_order_relaxed);  // relaxed-ok: see above
}

}  // namespace

CommCounters::CommCounters(int localities)
    : localities_(localities),
      parcels_to_(new std::atomic<std::uint64_t>[
          static_cast<std::size_t>(localities)]),
      batches_to_(new std::atomic<std::uint64_t>[
          static_cast<std::size_t>(localities)]),
      bytes_to_(new std::atomic<std::uint64_t>[
          static_cast<std::size_t>(localities)]) {
  for (int i = 0; i < localities; ++i) {
    const auto s = static_cast<std::size_t>(i);
    stat_zero(parcels_to_[s]);
    stat_zero(batches_to_[s]);
    stat_zero(bytes_to_[s]);
  }
}

void CommCounters::on_parcel(std::uint32_t dst, std::size_t bytes) {
  stat_add(parcels_, 1);
  stat_add(bytes_, bytes);
  stat_add(parcels_to_[dst], 1);
  stat_add(bytes_to_[dst], bytes);
}

void CommCounters::on_batch(std::uint32_t dst, std::size_t parcels,
                            std::size_t bytes) {
  (void)bytes;  // per-parcel bytes already counted in on_parcel
  stat_add(batches_, 1);
  stat_add(batches_to_[dst], 1);
  const auto bucket = std::min<std::size_t>(
      hist_.size() - 1,
      static_cast<std::size_t>(std::bit_width(std::max<std::size_t>(
          parcels, 1)) - 1));
  stat_add(hist_[bucket], 1);
}

void CommCounters::on_reason(FlushReason r) {
  switch (r) {
    case FlushReason::kThreshold:
      stat_add(flush_threshold_, 1);
      break;
    case FlushReason::kDeadline:
      stat_add(flush_deadline_, 1);
      break;
    case FlushReason::kQuiescence:
      stat_add(flush_quiescence_, 1);
      break;
  }
}

CommStats CommCounters::snapshot() const {
  CommStats s;
  s.parcels = stat_read(parcels_);
  s.batches = stat_read(batches_);
  s.bytes = stat_read(bytes_);
  s.flush_threshold = stat_read(flush_threshold_);
  s.flush_deadline = stat_read(flush_deadline_);
  s.flush_quiescence = stat_read(flush_quiescence_);
  const auto n = static_cast<std::size_t>(localities_);
  s.parcels_to.resize(n);
  s.batches_to.resize(n);
  s.bytes_to.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.parcels_to[i] = stat_read(parcels_to_[i]);
    s.batches_to[i] = stat_read(batches_to_[i]);
    s.bytes_to[i] = stat_read(bytes_to_[i]);
  }
  for (std::size_t i = 0; i < hist_.size(); ++i) {
    s.batch_size_log2[i] = stat_read(hist_[i]);
  }
  return s;
}

}  // namespace amtfmm
