#include "runtime/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/json.hpp"

namespace amtfmm {
namespace {

constexpr double kUs = 1e6;  // seconds -> trace_event microseconds

/// One renderable record, used only to order the heterogeneous event
/// streams by timestamp before emission.
struct Rec {
  double ts;
  std::uint8_t stream;  // 0 = span, 1 = instant, 2+k = comm part k (s, X, f)
  std::uint32_t index;
};

}  // namespace

bool trace_export_chrome(const std::string& path,
                         std::span<const TraceEvent> spans,
                         std::span<const CommEvent> comm,
                         std::span<const InstantEvent> instants,
                         const ChromeTraceOptions& opt) {
  const int cores = std::max(opt.cores_per_locality, 1);
  int localities = 1;  // local: process rows this file emits
  auto note_worker = [&](std::uint32_t w) {
    localities = std::max(localities, static_cast<int>(w) / cores + 1);
  };
  for (const TraceEvent& e : spans) note_worker(e.worker);
  for (const InstantEvent& e : instants) note_worker(e.worker);
  // Global locality count for the analyzer: local rows are offset by the
  // rank, comm events address peers by global rank, and a distributed
  // rank's file must span the whole world even if it never spoke to the
  // last rank.
  int global_localities =
      std::max(localities + static_cast<int>(opt.rank),
               static_cast<int>(opt.world));
  for (const CommEvent& e : comm) {
    global_localities = std::max({global_localities,
                                  static_cast<int>(e.src) + 1,
                                  static_cast<int>(e.dst) + 1});
  }

  std::vector<Rec> recs;
  recs.reserve(spans.size() + instants.size() + 3 * comm.size());
  for (std::uint32_t i = 0; i < spans.size(); ++i) {
    recs.push_back(Rec{spans[i].t0, 0, i});
  }
  for (std::uint32_t i = 0; i < instants.size(); ++i) {
    recs.push_back(Rec{instants[i].t, 1, i});
  }
  for (std::uint32_t i = 0; i < comm.size(); ++i) {
    recs.push_back(Rec{comm[i].t0, 2, i});  // flow start at the source
    recs.push_back(Rec{comm[i].t0, 3, i});  // NIC occupancy slice
    recs.push_back(Rec{comm[i].t1, 4, i});  // flow end at the destination
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Rec& a, const Rec& b) { return a.ts < b.ts; });

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Metadata: process per locality, thread per worker, one net thread per
  // locality (tid == cores, past the real workers).  A distributed rank
  // hosts only its own locality, so its pids start at opt.rank — comm
  // events already address peers by global rank.
  const int pid0 = static_cast<int>(opt.rank);
  // In-process runs host every locality, so name every row the comm
  // events reference; a distributed rank names only its own rows (peers
  // name theirs in their own files, concatenated by trace_merge).
  const int row_localities =
      opt.world > 1 ? localities : global_localities;
  for (int l = 0; l < row_localities; ++l) {
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", pid0 + l);
    w.key("args");
    w.begin_object();
    w.kv("name", std::string("locality ") + std::to_string(pid0 + l));
    w.end_object();
    w.end_object();
    for (int c = 0; c <= cores; ++c) {
      w.begin_object();
      w.kv("name", "thread_name");
      w.kv("ph", "M");
      w.kv("pid", pid0 + l);
      w.kv("tid", c);
      w.key("args");
      w.begin_object();
      w.kv("name", c == cores
                       ? std::string("net")
                       : std::string("worker ") +
                             std::to_string((pid0 + l) * cores + c));
      w.end_object();
      w.end_object();
    }
  }

  auto pid_tid = [&](std::uint32_t worker) {
    const int pid = pid0 + static_cast<int>(worker) / cores;
    const int tid = static_cast<int>(worker) % cores;
    w.kv("pid", pid);
    w.kv("tid", tid);
  };

  for (const Rec& r : recs) {
    switch (r.stream) {
      case 0: {
        const TraceEvent& e = spans[r.index];
        w.begin_object();
        w.kv("name", trace_class_name(e.cls));
        w.kv("cat", "task");
        w.kv("ph", "X");
        w.kv("ts", e.t0 * kUs);
        w.kv("dur", (e.t1 - e.t0) * kUs);
        pid_tid(e.worker);
        if (e.arg != kNoTraceArg) {
          w.key("args");
          w.begin_object();
          w.kv("edge", e.arg);
          w.end_object();
        }
        w.end_object();
        break;
      }
      case 1: {
        const InstantEvent& e = instants[r.index];
        w.begin_object();
        w.kv("name", instant_kind_name(e.kind));
        w.kv("cat", "sched");
        w.kv("ph", "i");
        w.kv("s", "t");  // thread-scoped instant
        w.kv("ts", e.t * kUs);
        pid_tid(e.worker);
        if (e.arg != kNoTraceArg) {
          w.key("args");
          w.begin_object();
          w.kv("arg", e.arg);
          w.end_object();
        }
        w.end_object();
        break;
      }
      case 2: {  // flow start on the source locality's net thread
        const CommEvent& e = comm[r.index];
        w.begin_object();
        w.kv("name", "parcel");
        w.kv("cat", "comm");
        w.kv("ph", "s");
        w.kv("id", r.index);
        w.kv("ts", e.t0 * kUs);
        w.kv("pid", e.src);
        w.kv("tid", cores);
        w.end_object();
        break;
      }
      case 3: {  // NIC occupancy on the destination's net thread
        const CommEvent& e = comm[r.index];
        w.begin_object();
        w.kv("name", "wire");
        w.kv("cat", "comm");
        w.kv("ph", "X");
        w.kv("ts", e.t0 * kUs);
        w.kv("dur", (e.t1 - e.t0) * kUs);
        w.kv("pid", e.dst);
        w.kv("tid", cores);
        w.key("args");
        w.begin_object();
        w.kv("src", e.src);
        w.kv("parcels", e.parcels);
        w.kv("bytes", e.bytes);
        w.end_object();
        w.end_object();
        break;
      }
      default: {  // flow end, binding enclosing the wire slice's close
        const CommEvent& e = comm[r.index];
        w.begin_object();
        w.kv("name", "parcel");
        w.kv("cat", "comm");
        w.kv("ph", "f");
        w.kv("bp", "e");
        w.kv("id", r.index);
        w.kv("ts", e.t1 * kUs);
        w.kv("pid", e.dst);
        w.kv("tid", cores);
        w.end_object();
        break;
      }
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");

  // Self-contained analyzer metadata (ignored by Perfetto).
  w.key("amtfmm");
  w.begin_object();
  w.kv("version", 1);
  w.kv("sim", opt.sim);
  w.kv("makespan", opt.makespan);
  // Global locality count: a distributed rank's pids start at opt.rank,
  // so the analyzer's worker range must span the whole world even when
  // this file only holds one rank's events.
  w.kv("localities", global_localities);
  w.kv("cores_per_locality", cores);
  w.kv("rank", opt.rank);
  w.kv("world", opt.world);
  w.key("clock");
  w.begin_object();
  w.kv("steady_origin_s", opt.clock.steady_origin_s);
  w.kv("wall_anchor_s", opt.clock.wall_anchor_s);
  w.kv("offset_s", opt.clock.offset_s);
  w.kv("uncertainty_s", opt.clock.uncertainty_s);
  w.end_object();
  if (!opt.epochs.empty()) {
    w.key("epochs");
    w.begin_array();
    for (const double t : opt.epochs) w.value(t);
    w.end_array();
  }
  w.key("edges");
  w.begin_array();
  for (const std::uint32_t v : opt.dag_edges) w.value(v);
  w.end_array();
  if (opt.counters != nullptr && !opt.counters->empty()) {
    w.key("counters");
    opt.counters->append_json(w);
  }
  w.end_object();
  w.end_object();
  return w.write_file(path);
}

}  // namespace amtfmm
