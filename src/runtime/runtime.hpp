#pragma once

#include <functional>

#include "runtime/gas.hpp"
#include "runtime/sim_executor.hpp"
#include "runtime/thread_executor.hpp"

namespace amtfmm {

/// An active message: the description of an action, its argument data, and
/// the global address it acts on.  Sending a parcel is the only way to
/// spawn work, and parcel == lightweight thread once delivered — the HPX-5
/// equivalence the paper's section III describes.
struct Parcel {
  std::uint32_t action = 0;
  GlobalAddress target;
  std::vector<std::byte> payload;
};

class Runtime;
using ActionFn = std::function<void(Runtime&, const Parcel&)>;

/// Execution substrate selection.
enum class ExecMode {
  kThreads,  ///< real std::thread workers (correctness, host benchmarks)
  kSim,      ///< discrete-event simulation (scaling reproduction)
};

struct RuntimeConfig {
  int localities = 1;
  int cores_per_locality = 1;
  ExecMode mode = ExecMode::kThreads;
  SchedPolicy policy = SchedPolicy::kWorkStealing;
  NetworkModel network{};
  CoalesceConfig coalesce{};
  std::uint64_t seed = 1;
};

/// The runtime facade: global address space + action registry + executor.
/// DASHMM-equivalent applications allocate LCOs through gas(), register
/// actions once, and drive everything by sending parcels.
class Runtime {
 public:
  explicit Runtime(const RuntimeConfig& cfg);

  Executor& executor() { return *exec_; }
  const Executor& executor() const { return *exec_; }
  Gas& gas() { return gas_; }
  const RuntimeConfig& config() const { return cfg_; }

  /// Registers an action handler; returns its id (stable for the runtime's
  /// lifetime).  Must be called before execution starts.
  std::uint32_t register_action(ActionFn fn);

  /// Sends a parcel from `from` to the locality owning the target address.
  /// The action runs at the destination; cost items attribute its virtual
  /// time in sim mode.
  void send_parcel(std::uint32_t from, Parcel p,
                   std::vector<CostItem> items = {},
                   bool high_priority = false);

  /// Runs to quiescence; returns makespan.
  double drain() { return exec_->drain(); }

 private:
  RuntimeConfig cfg_;
  std::unique_ptr<Executor> exec_;
  Gas gas_;
  std::vector<ActionFn> actions_;
};

}  // namespace amtfmm
