#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include "runtime/lco.hpp"
#include "runtime/sync_hook.hpp"
#include "support/error.hpp"

namespace amtfmm {

/// Address of an object in the global address space: a locality plus a slot
/// in that locality's heap.  Raw global addresses are the targets of
/// parcels, exactly as in HPX-5's PGAS (section III of the paper).
struct GlobalAddress {
  std::uint32_t locality = 0;
  std::uint32_t slot = 0;

  bool operator==(const GlobalAddress&) const = default;
};

/// The global address space: per-locality heaps of globally addressable
/// LCOs.  In this in-process reproduction, "address translation" resolves
/// to a local pointer on every locality — the distributed behaviour (who
/// pays for access) is carried by the executors' send() accounting and the
/// engine's serialized parcels, which is the part the paper's evaluation
/// measures.
///
/// Storage is a per-locality slab: fixed-size chunks of object slots,
/// appended under that locality's lock only, so concurrent allocation on
/// different localities never serializes (DAG instantiation allocates tens
/// of thousands of LCOs).  resolve() is lock free: it acquire-loads the
/// published size and the chunk pointer, both release-stored by alloc(),
/// and never touches a mutex.  The size load is unconditional (not just the
/// debug bounds check): it is the acquire half of the release/acquire pair
/// that makes the slot contents visible even when the address reached the
/// resolving thread over a channel with no ordering of its own — an edge
/// the rtcheck happens-before checker verifies (gas.alloc_resolve
/// scenario).  Chunks are never moved or freed before the heap itself
/// dies, so resolved pointers stay stable for the heap's lifetime.
///
/// Allocation supports the block-cyclic and user-defined placements of
/// HPX-5's allocators via the explicit locality argument; DASHMM's
/// distribution policy picks the locality per DAG node.
class Gas {
 public:
  static constexpr std::uint32_t kChunkBits = 9;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;  // 512 slots
  static constexpr std::uint32_t kMaxChunks = 1u << 12;  // 2M objects/locality

  explicit Gas(int num_localities) {
    heaps_.reserve(static_cast<std::size_t>(num_localities));
    for (int i = 0; i < num_localities; ++i) {
      heaps_.push_back(std::make_unique<Heap>());
    }
  }

  /// Allocates an object on the given locality; returns its address.
  /// Serializes only with other allocations on the *same* locality.
  GlobalAddress alloc(std::uint32_t locality, std::unique_ptr<LCO> obj) {
    AMTFMM_ASSERT(locality < heaps_.size());
    Heap& h = *heaps_[locality];
    SyncLockGuard lk(h.mu);
    // relaxed-ok: size is only written under h.mu; this is the owner's read.
    const std::uint32_t slot = hooked_load(h.size, std::memory_order_relaxed);
    const std::uint32_t ci = slot >> kChunkBits;
    AMTFMM_ASSERT_MSG(ci < kMaxChunks, "GAS locality heap exhausted");
    // relaxed-ok: chunk pointers are only written under h.mu (just below).
    Chunk* chunk = hooked_load(h.chunks[ci], std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Chunk();
      hooked_store(h.chunks[ci], chunk, std::memory_order_release);
    }
    sync_plain_write(&(*chunk)[slot & (kChunkSize - 1)]);
    (*chunk)[slot & (kChunkSize - 1)] = std::move(obj);
    // Publish after the slot is filled: a resolve() that observes the new
    // size also observes the object (release/acquire on size).
    hooked_store(h.size, slot + 1, std::memory_order_release);
    sync_event(SyncKind::kGasAlloc, &h, slot);
    // relaxed-ok: diagnostic allocation count; the slot publication above
    // carries the release ordering.
    allocs_.fetch_add(1, std::memory_order_relaxed);
    return GlobalAddress{locality, slot};
  }

  /// Resolves an address to the object; lock free.  Valid from any locality
  /// (shared memory); remote use must go through parcels for correct
  /// accounting — the engine's debug ownership check enforces this for
  /// expansion payloads.
  LCO* resolve(const GlobalAddress& a) const {
    AMTFMM_ASSERT(a.locality < heaps_.size());
    const Heap& h = *heaps_[a.locality];
    // The acquire half of alloc()'s release on size: without it the slot
    // contents would only be visible through whatever ordering the address
    // channel happens to provide.  rtcheck mutation point: weakening this
    // to relaxed reintroduces the race on the slot.
    const std::uint32_t n = hooked_load(
        h.size,
        rt_order(Mutation::kGasResolveRelaxed, std::memory_order_acquire));
    AMTFMM_ASSERT_MSG(a.slot < n, "resolve of an unallocated GAS slot");
    Chunk* chunk =
        hooked_load(h.chunks[a.slot >> kChunkBits], std::memory_order_acquire);
    AMTFMM_ASSERT(chunk != nullptr);
    sync_event(SyncKind::kGasResolve, &h, a.slot);
    sync_plain_read(&(*chunk)[a.slot & (kChunkSize - 1)]);
    return (*chunk)[a.slot & (kChunkSize - 1)].get();
  }

  std::size_t objects_on(std::uint32_t locality) const {
    AMTFMM_ASSERT(locality < heaps_.size());
    return heaps_[locality]->size.load(std::memory_order_acquire);
  }

  /// Cumulative allocation count since construction; reset() does NOT clear
  /// it.  Steady-state epochs assert zero new allocations by differencing
  /// this counter across the epoch boundary.
  std::uint64_t total_allocs() const {
    // relaxed-ok: diagnostic count, read between epochs while quiescent.
    return allocs_.load(std::memory_order_relaxed);
  }

  /// Destroys every object and empties all heaps.  Not thread safe: the
  /// caller must guarantee no concurrent alloc/resolve (the engine calls
  /// this between evaluations, when the executor is drained).
  void reset() {
    for (auto& hp : heaps_) {
      Heap& h = *hp;
      // relaxed-ok: reset() is documented single-threaded (drained).
      const std::uint32_t n = h.size.load(std::memory_order_relaxed);
      for (std::uint32_t ci = 0; ci <= (n >> kChunkBits) && ci < kMaxChunks;
           ++ci) {
        // relaxed-ok: reset() is documented single-threaded (drained).
        if (Chunk* c = h.chunks[ci].load(std::memory_order_relaxed)) {
          for (auto& slot : *c) slot.reset();
        }
      }
      h.size.store(0, std::memory_order_release);
    }
  }

 private:
  using Chunk = std::array<std::unique_ptr<LCO>, kChunkSize>;

  struct Heap {
    /// Serializes alloc() on this locality.  size/chunks are deliberately
    /// NOT GUARDED_BY(mu): resolve() reads them lock-free through the
    /// release/acquire protocol documented on the class, and guarded_by
    /// would demand the lock on every access.
    SyncMutex mu;
    std::atomic<std::uint32_t> size{0};
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks{};

    ~Heap() {
      // relaxed-ok: destruction is single-threaded by construction.
      for (auto& c : chunks) delete c.load(std::memory_order_relaxed);
    }
  };

  std::vector<std::unique_ptr<Heap>> heaps_;
  std::atomic<std::uint64_t> allocs_{0};
};

}  // namespace amtfmm
