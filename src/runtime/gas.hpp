#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "runtime/lco.hpp"
#include "support/error.hpp"

namespace amtfmm {

/// Address of an object in the global address space: a locality plus a slot
/// in that locality's heap.  Raw global addresses are the targets of
/// parcels, exactly as in HPX-5's PGAS (section III of the paper).
struct GlobalAddress {
  std::uint32_t locality = 0;
  std::uint32_t slot = 0;

  bool operator==(const GlobalAddress&) const = default;
};

/// The global address space: per-locality heaps of globally addressable
/// LCOs.  In this in-process reproduction, "address translation" resolves
/// to a local pointer on every locality — the distributed behaviour (who
/// pays for access) is carried by the executors' send() accounting, which
/// is the part the paper's evaluation measures.
///
/// Allocation supports the block-cyclic and user-defined placements of
/// HPX-5's allocators via the explicit locality argument; DASHMM's
/// distribution policy picks the locality per DAG node.
class Gas {
 public:
  explicit Gas(int num_localities)
      : heaps_(static_cast<std::size_t>(num_localities)) {}

  /// Allocates an object on the given locality; returns its address.
  GlobalAddress alloc(std::uint32_t locality, std::unique_ptr<LCO> obj) {
    std::lock_guard lk(mu_);
    AMTFMM_ASSERT(locality < heaps_.size());
    auto& heap = heaps_[locality];
    heap.push_back(std::move(obj));
    return GlobalAddress{locality,
                         static_cast<std::uint32_t>(heap.size() - 1)};
  }

  /// Resolves an address to the object.  Valid from any locality (shared
  /// memory); remote use must go through parcels for correct accounting.
  LCO* resolve(const GlobalAddress& a) const {
    AMTFMM_ASSERT(a.locality < heaps_.size());
    AMTFMM_ASSERT(a.slot < heaps_[a.locality].size());
    return heaps_[a.locality][a.slot].get();
  }

  std::size_t objects_on(std::uint32_t locality) const {
    return heaps_[locality].size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<std::unique_ptr<LCO>>> heaps_;
};

}  // namespace amtfmm
