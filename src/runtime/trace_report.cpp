#include "runtime/trace_report.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/json.hpp"

namespace amtfmm {
namespace {

constexpr double kSec = 1e-6;  // trace_event microseconds -> seconds

int class_of(const std::string& name) {
  for (int c = 0; c < kNumTraceClasses; ++c) {
    if (name == trace_class_name(static_cast<std::uint8_t>(c))) return c;
  }
  return -1;
}

int instant_of(const std::string& name) {
  for (int k = 0; k < kNumInstantKinds; ++k) {
    if (name == instant_kind_name(static_cast<InstantKind>(k))) return k;
  }
  return -1;
}

CounterSnapshot parse_counters(const JsonValue& v) {
  CounterSnapshot snap;
  auto scalars = [](const JsonValue* obj,
                    std::vector<CounterSnapshot::Scalar>& out) {
    if (obj == nullptr || !obj->is_object()) return;
    for (const auto& [name, val] : obj->object) {
      if (val.is_number()) {
        out.push_back({name, static_cast<std::uint64_t>(val.number)});
      }
    }
  };
  scalars(v.find("counters"), snap.counters);
  scalars(v.find("gauges"), snap.gauges);
  if (const JsonValue* hs = v.find("histograms");
      hs != nullptr && hs->is_object()) {
    for (const auto& [name, h] : hs->object) {
      CounterSnapshot::Histogram out;
      out.name = name;
      out.count = static_cast<std::uint64_t>(h.num_or("count", 0.0));
      out.sum = static_cast<std::uint64_t>(h.num_or("sum", 0.0));
      if (const JsonValue* b = h.find("buckets");
          b != nullptr && b->is_array()) {
        for (std::size_t i = 0; i < b->array.size() && i < out.buckets.size();
             ++i) {
          out.buckets[i] =
              static_cast<std::uint64_t>(b->array[i].number);
        }
      }
      snap.histograms.push_back(std::move(out));
    }
  }
  return snap;
}

/// Longest path through the DAG with the given per-edge weights (seconds).
/// Edges are [src, dst] pairs in edge-id order; Kahn topological order plus
/// a max-plus DP.  Returns {length, edges on the path}.
std::pair<double, std::uint64_t> critical_path(
    const std::vector<std::uint32_t>& flat,
    const std::vector<double>& weight) {
  const std::size_t m = flat.size() / 2;
  if (m == 0) return {0.0, 0};
  std::uint32_t n = 0;
  for (const std::uint32_t v : flat) n = std::max(n, v + 1);

  std::vector<std::uint32_t> indeg(n, 0);
  for (std::size_t e = 0; e < m; ++e) ++indeg[flat[2 * e + 1]];
  // CSR of out-edges by source for the traversal.
  std::vector<std::uint32_t> head(n + 1, 0);
  for (std::size_t e = 0; e < m; ++e) ++head[flat[2 * e] + 1];
  for (std::uint32_t v = 0; v < n; ++v) head[v + 1] += head[v];
  std::vector<std::uint32_t> out_edge(m);
  {
    std::vector<std::uint32_t> cur(head.begin(), head.end() - 1);
    for (std::size_t e = 0; e < m; ++e) {
      out_edge[cur[flat[2 * e]]++] = static_cast<std::uint32_t>(e);
    }
  }

  std::vector<double> dist(n, 0.0);
  std::vector<std::uint64_t> hops(n, 0);
  std::vector<std::uint32_t> queue;
  queue.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  std::size_t qi = 0;
  std::size_t seen = 0;
  while (qi < queue.size()) {
    const std::uint32_t u = queue[qi++];
    ++seen;
    for (std::uint32_t i = head[u]; i < head[u + 1]; ++i) {
      const std::uint32_t e = out_edge[i];
      const std::uint32_t v = flat[2 * e + 1];
      const double cand = dist[u] + weight[e];
      if (cand > dist[v]) {
        dist[v] = cand;
        hops[v] = hops[u] + 1;
      }
      if (--indeg[v] == 0) queue.push_back(v);
    }
  }
  if (seen != n) return {-1.0, 0};  // cycle: not a DAG
  double best = 0.0;
  std::uint64_t best_hops = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (dist[v] > best) {
      best = dist[v];
      best_hops = hops[v];
    }
  }
  return {best, best_hops};
}

}  // namespace

TraceReport analyze_trace_file(const std::string& path) {
  TraceReport r;
  auto fail = [&r](const std::string& what) {
    r.valid = false;
    if (r.error.empty()) r.error = what;
    return r;
  };

  std::string text;
  if (!read_file(path, text)) return fail("cannot read " + path);
  JsonValue root;
  std::string perr;
  if (!json_parse(text, root, perr)) return fail("malformed JSON: " + perr);
  if (!root.is_object()) return fail("top level is not an object");

  const JsonValue* meta = root.find("amtfmm");
  if (meta == nullptr || !meta->is_object()) {
    return fail("missing \"amtfmm\" metadata");
  }
  r.sim = meta->find("sim") != nullptr && meta->find("sim")->boolean;
  r.makespan = meta->num_or("makespan", 0.0);
  r.localities = static_cast<int>(meta->num_or("localities", 1.0));
  r.cores_per_locality =
      static_cast<int>(meta->num_or("cores_per_locality", 1.0));
  if (r.localities < 1 || r.cores_per_locality < 1) {
    return fail("bad localities/cores_per_locality metadata");
  }
  r.workers = r.localities * r.cores_per_locality;

  std::vector<std::uint32_t> flat;
  if (const JsonValue* edges = meta->find("edges");
      edges != nullptr && edges->is_array()) {
    if (edges->array.size() % 2 != 0) return fail("odd edge list length");
    flat.reserve(edges->array.size());
    for (const JsonValue& v : edges->array) {
      if (!v.is_number()) return fail("non-numeric edge entry");
      flat.push_back(static_cast<std::uint32_t>(v.number));
    }
  }
  r.dag_edges = flat.size() / 2;
  if (const JsonValue* eps = meta->find("epochs");
      eps != nullptr && eps->is_array()) {
    for (const JsonValue& v : eps->array) {
      if (!v.is_number()) return fail("non-numeric epoch start");
      r.epoch_starts.push_back(v.number);
    }
    if (!std::is_sorted(r.epoch_starts.begin(), r.epoch_starts.end())) {
      return fail("epoch starts not sorted");
    }
  }
  if (const JsonValue* ctr = meta->find("counters"); ctr != nullptr) {
    r.counters = parse_counters(*ctr);
  }

  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("missing traceEvents array");
  }

  // One weight vector per epoch: the resident pipeline re-traverses the
  // same DAG each epoch, so each epoch is pathed independently (summing
  // a span's weight into a single pot would fabricate a chain longer than
  // any one evaluation).
  const std::size_t num_epochs = std::max<std::size_t>(r.epoch_starts.size(), 1);
  auto epoch_of = [&](double t0) -> std::size_t {
    if (r.epoch_starts.size() <= 1) return 0;
    const auto it = std::upper_bound(r.epoch_starts.begin(),
                                     r.epoch_starts.end(), t0 + 1e-12);
    return it == r.epoch_starts.begin()
               ? 0
               : static_cast<std::size_t>(it - r.epoch_starts.begin()) - 1;
  };
  std::vector<std::vector<double>> edge_weight(
      num_epochs, std::vector<double>(r.dag_edges, 0.0));
  std::vector<double> worker_busy(static_cast<std::size_t>(r.workers), 0.0);
  std::map<std::uint64_t, std::pair<int, int>> flows;  // id -> (#s, #f)
  double last_ts = -1e300;
  bool any_time = false;
  r.monotonic_ok = true;

  for (const JsonValue& ev : events->array) {
    if (!ev.is_object()) return fail("non-object trace event");
    const std::string ph = ev.str_or("ph", "");
    if (ph == "M") continue;  // metadata records carry no timestamp
    const JsonValue* tsv = ev.find("ts");
    if (tsv == nullptr || !tsv->is_number()) {
      return fail("event without ts");
    }
    const double ts = tsv->number;
    if (ts < last_ts - 1e-9) r.monotonic_ok = false;
    last_ts = std::max(last_ts, ts);

    const double t0 = ts * kSec;
    double t1 = t0;
    if (ph == "X") t1 = t0 + ev.num_or("dur", 0.0) * kSec;
    if (!any_time) {
      r.t_min = t0;
      r.t_max = t1;
      any_time = true;
    } else {
      r.t_min = std::min(r.t_min, t0);
      r.t_max = std::max(r.t_max, t1);
    }

    const std::string name = ev.str_or("name", "");
    const std::string cat = ev.str_or("cat", "");
    if (ph == "X" && cat == "task") {
      ++r.num_spans;
      const int cls = class_of(name);
      if (cls < 0) return fail("unknown span class: " + name);
      const double dur = t1 - t0;
      r.class_seconds[static_cast<std::size_t>(cls)] += dur;
      const int worker = static_cast<int>(ev.num_or("pid", 0.0)) *
                             r.cores_per_locality +
                         static_cast<int>(ev.num_or("tid", 0.0));
      if (worker < 0 || worker >= r.workers) {
        return fail("span worker out of range");
      }
      worker_busy[static_cast<std::size_t>(worker)] += dur;
      if (const JsonValue* args = ev.find("args"); args != nullptr) {
        const double edge = args->num_or("edge", -1.0);
        if (edge >= 0.0) {
          const auto e = static_cast<std::size_t>(edge);
          if (e >= r.dag_edges) return fail("span edge id out of range");
          edge_weight[epoch_of(t0)][e] += dur;
        }
      }
    } else if (ph == "i") {
      ++r.num_instants;
      const int k = instant_of(name);
      if (k >= 0) ++r.instant_counts[static_cast<std::size_t>(k)];
    } else if (ph == "s" || ph == "f") {
      const JsonValue* id = ev.find("id");
      if (id == nullptr || !id->is_number()) return fail("flow without id");
      auto& [starts, ends] = flows[static_cast<std::uint64_t>(id->number)];
      (ph == "s" ? starts : ends) += 1;
    }
  }

  r.num_comm = flows.size();
  r.flows_paired = true;
  for (const auto& [id, se] : flows) {
    if (se.first != 1 || se.second != 1) r.flows_paired = false;
  }

  for (int c = 0; c < kNumTraceClasses; ++c) {
    r.busy_seconds += r.class_seconds[static_cast<std::size_t>(c)];
  }
  const double window = r.t_max - r.t_min;
  r.worker_utilization.resize(worker_busy.size(), 0.0);
  if (window > 0.0) {
    for (std::size_t i = 0; i < worker_busy.size(); ++i) {
      r.worker_utilization[i] = worker_busy[i] / window;
    }
  }

  r.epoch_critical_path_seconds.reserve(num_epochs);
  for (std::size_t ep = 0; ep < num_epochs; ++ep) {
    const auto [cp, cp_edges] = critical_path(flat, edge_weight[ep]);
    if (cp < 0.0) return fail("embedded edge list contains a cycle");
    r.epoch_critical_path_seconds.push_back(cp);
    if (cp >= r.critical_path_seconds) {
      r.critical_path_seconds = cp;
      r.critical_path_edges = cp_edges;
    }
  }

  // Internal consistency: concurrency cannot exceed the worker count, and
  // a dependency chain cannot finish after the sim makespan (virtual time
  // is exact; real time gets slack for timer granularity).
  const double slack = 1e-9 + 1e-6 * std::max(window, r.makespan);
  if (r.busy_seconds > r.workers * window + slack) {
    return fail("per-class time exceeds workers * wall time");
  }
  if (r.sim && r.makespan > 0.0 &&
      r.critical_path_seconds > r.makespan + slack) {
    return fail("critical path exceeds sim makespan");
  }
  if (!r.monotonic_ok) return fail("timestamps not monotonic");
  if (!r.flows_paired) return fail("unpaired flow events");

  r.valid = true;
  return r;
}

std::string report_json(const TraceReport& r) {
  JsonWriter w;
  w.begin_object();
  w.kv("valid", r.valid);
  if (!r.valid) w.kv("error", r.error);
  w.kv("sim", r.sim);
  w.kv("localities", r.localities);
  w.kv("cores_per_locality", r.cores_per_locality);
  w.kv("workers", r.workers);
  w.kv("makespan_s", r.makespan);
  w.kv("window_s", r.t_max - r.t_min);
  w.kv("num_spans", r.num_spans);
  w.kv("num_instants", r.num_instants);
  w.kv("num_comm", r.num_comm);
  w.kv("monotonic_ok", r.monotonic_ok);
  w.kv("flows_paired", r.flows_paired);
  w.kv("busy_seconds", r.busy_seconds);
  w.key("class_seconds");
  w.begin_object();
  for (int c = 0; c < kNumTraceClasses; ++c) {
    const double s = r.class_seconds[static_cast<std::size_t>(c)];
    if (s > 0.0) w.kv(trace_class_name(static_cast<std::uint8_t>(c)), s);
  }
  w.end_object();
  w.key("worker_utilization");
  w.begin_array();
  for (const double u : r.worker_utilization) w.value(u);
  w.end_array();
  w.key("critical_path");
  w.begin_object();
  w.kv("seconds", r.critical_path_seconds);
  w.kv("edges", r.critical_path_edges);
  w.kv("dag_edges", r.dag_edges);
  w.kv("epochs", static_cast<std::uint64_t>(
                     std::max<std::size_t>(r.epoch_starts.size(), 1)));
  w.key("per_epoch_seconds");
  w.begin_array();
  for (const double s : r.epoch_critical_path_seconds) w.value(s);
  w.end_array();
  w.end_object();
  w.key("instants");
  w.begin_object();
  for (int k = 0; k < kNumInstantKinds; ++k) {
    w.kv(instant_kind_name(static_cast<InstantKind>(k)),
         r.instant_counts[static_cast<std::size_t>(k)]);
  }
  w.end_object();
  if (!r.counters.empty()) {
    w.key("counters");
    r.counters.append_json(w);
  }
  w.end_object();
  return w.str();
}

}  // namespace amtfmm
