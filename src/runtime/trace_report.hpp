#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/counters.hpp"
#include "runtime/trace.hpp"

namespace amtfmm {

/// Post-mortem summary of one Chrome trace produced by
/// trace_export_chrome(): validity checks, per-class time totals,
/// per-worker utilization, scheduler/coalescing counter echoes, and the
/// weighted critical path through the embedded DAG.  Designed to be small,
/// machine-readable (report_json()), and internally consistent:
///   - sum of per-class busy time <= workers * (t_max - t_min),
///   - critical_path_seconds <= makespan in sim mode (virtual time has no
///     measurement noise, so the bound is exact by construction).
struct TraceReport {
  bool valid = false;     ///< file parsed and all structural checks passed
  std::string error;      ///< first failure when !valid

  bool sim = false;
  int localities = 0;
  int cores_per_locality = 0;
  int workers = 0;        ///< localities * cores_per_locality
  double makespan = 0.0;  ///< from the trace metadata (seconds)
  double t_min = 0.0;     ///< earliest event start (seconds)
  double t_max = 0.0;     ///< latest event end (seconds)

  std::uint64_t num_spans = 0;
  std::uint64_t num_instants = 0;
  std::uint64_t num_comm = 0;  ///< wire messages (flow pairs)
  bool monotonic_ok = false;   ///< traceEvents emitted in ts order
  bool flows_paired = false;   ///< every flow id has one "s" and one "f"

  /// Busy seconds per trace class (indexed like kNumTraceClasses).
  std::array<double, kNumTraceClasses> class_seconds{};
  double busy_seconds = 0.0;  ///< sum over classes
  /// Busy fraction of [t_min, t_max] per worker, indexed locality-major.
  std::vector<double> worker_utilization;

  /// Epoch start times from the "amtfmm" metadata (resident-pipeline
  /// traces accumulate spans across epochs).  Empty for single-epoch
  /// traces from one-shot runs.
  std::vector<double> epoch_starts;
  /// Weighted critical path per epoch: span weights are bucketed into the
  /// epoch whose [start, next-start) window contains their t0, and each
  /// epoch's DAG is pathed independently (the resident DAG is re-armed, so
  /// every epoch traverses the same edges).  Single-epoch traces get one
  /// entry.
  std::vector<double> epoch_critical_path_seconds;

  /// Weighted critical path through the embedded DAG: each edge weighs the
  /// summed duration of the spans attributed to it (args.edge).  For a
  /// multi-epoch trace this is the LARGEST per-epoch critical path — the
  /// quantity bounded by the metadata makespan, where summing across
  /// epochs would not be.
  double critical_path_seconds = 0.0;
  std::uint64_t critical_path_edges = 0;
  std::uint64_t dag_edges = 0;  ///< edges embedded in the trace

  /// Scheduler/coalescing instant tallies from the trace itself.
  std::array<std::uint64_t, kNumInstantKinds> instant_counts{};
  /// Counter-registry snapshot echoed from the trace metadata (empty when
  /// the producing run had counters disabled).
  CounterSnapshot counters;
};

/// Reads and analyzes a Chrome trace file written by trace_export_chrome().
/// A malformed file yields valid == false with `error` set; the remaining
/// fields hold whatever was recovered before the failure.
TraceReport analyze_trace_file(const std::string& path);

/// The report as a compact JSON object (CI regression artifact).
std::string report_json(const TraceReport& r);

}  // namespace amtfmm
