#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/sync_hook.hpp"
#include "runtime/trace.hpp"

namespace amtfmm {

/// Always-on post-mortem recorder: per-worker fixed-size ring buffers
/// holding the most recent trace events even when full tracing is off,
/// dumped to a Chrome trace when something goes wrong (fatal signal, net
/// failure teardown, serve-epoch watchdog).  A hung or crashed
/// multi-process run then always yields a "last N events of every worker
/// on every rank" artifact.
///
/// Memory model (DESIGN.md §7): each ring is single-writer — worker w is
/// the only thread that ever writes ring w, advancing a monotone head
/// cursor with a release store after the slot write.  The dump path reads
/// heads with acquire and copies the newest min(head, capacity) slots.
/// A dump racing live writers (the crash/watchdog case) can observe a
/// torn slot at the overwrite frontier; the dumper drops events whose
/// times fail basic sanity instead of synchronizing with the hot path —
/// a flight recorder trades perfect fidelity at the crash instant for a
/// zero-coordination steady state.
class FlightRecorder {
 public:
  struct Event {
    double t0 = 0.0;
    double t1 = 0.0;
    std::uint32_t arg = kNoTraceArg;
    std::uint8_t cls = 0;
    std::uint8_t kind = 0;  ///< InstantKind when instant
    bool instant = false;
  };

  /// `events_per_worker` is rounded up to a power of two.
  explicit FlightRecorder(int workers, std::size_t events_per_worker = 4096);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Where dump() writes.  Copied into a fixed internal buffer so the
  /// crash path never allocates; over-long paths are truncated.
  void set_dump_path(const std::string& path);
  const char* dump_path() const { return path_; }

  /// Identity + clock metadata embedded in the dump so merged multi-rank
  /// flight dumps can be aligned like regular traces.
  void set_meta(std::uint32_t rank, int cores, const TraceClock& clock);

  /// Hot-path writes, routed here by TraceSink when flight mode is on.
  /// Single-writer per ring: only worker w records to ring w.
  void record_span(std::uint32_t worker, std::uint8_t cls, double t0,
                   double t1, std::uint32_t arg) {
    Ring& r = rings_[worker];
    // relaxed-ok: single-writer cursor; the paired release store below
    // publishes the slot, and only this worker ever advances the head.
    const std::uint64_t h = r.head.load(std::memory_order_relaxed);
    Event& e = r.slots[h & mask_];
    e.t0 = t0;
    e.t1 = t1;
    e.arg = arg;
    e.cls = cls;
    e.kind = 0;
    e.instant = false;
    r.head.store(h + 1, std::memory_order_release);
  }
  void record_instant(std::uint32_t worker, InstantKind kind, double t,
                      std::uint32_t arg) {
    Ring& r = rings_[worker];
    // relaxed-ok: single-writer cursor (see record_span).
    const std::uint64_t h = r.head.load(std::memory_order_relaxed);
    Event& e = r.slots[h & mask_];
    e.t0 = t;
    e.t1 = t;
    e.arg = arg;
    e.cls = 0;
    e.kind = static_cast<std::uint8_t>(kind);
    e.instant = true;
    r.head.store(h + 1, std::memory_order_release);
  }
  /// Wire messages (rare): a small mutex-guarded ring.  The dump path
  /// only try_locks it, so a thread crashing while holding the lock can
  /// never deadlock the signal handler.
  void record_comm(const CommEvent& e);

  /// Writes the ring contents to dump_path() as a Chrome trace (JSON),
  /// with `reason` in the metadata.  Avoids allocation and stdio streams:
  /// snprintf into a fixed buffer + write(2), so it is safe to call from
  /// a fatal-signal handler.  Returns false when the file cannot be
  /// opened or no path was configured.  Idempotent per call (truncates).
  bool dump(const char* reason) const;

  int workers() const { return static_cast<int>(rings_.size()); }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Ring {
    std::unique_ptr<Event[]> slots;
    /// Monotone event count; slot (head-1) & mask_ is the newest event.
    alignas(64) std::atomic<std::uint64_t> head{0};
  };

  std::vector<Ring> rings_;
  std::uint64_t mask_ = 0;

  mutable SyncMutex comm_mu_;
  std::vector<CommEvent> comm_ GUARDED_BY(comm_mu_);
  std::size_t comm_head_ GUARDED_BY(comm_mu_) = 0;

  char path_[512] = {};
  std::uint32_t rank_ = 0;
  int cores_ = 0;
  TraceClock clock_{};
};

/// Process-wide registry feeding the crash paths: fatal-signal handler,
/// net-failure teardown, and watchdogs call flight_dump_all() to dump
/// every live recorder.  Registration is bounded (a process hosts a
/// handful of recorders at most) and lock-free on the dump side so the
/// signal handler never blocks.
void flight_register(FlightRecorder* fr);
void flight_unregister(FlightRecorder* fr);

/// Dumps every registered recorder; returns how many dumps were written.
/// Safe from a signal handler.
int flight_dump_all(const char* reason);

/// Installs fatal-signal handlers (SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT)
/// that dump all registered recorders, then re-raise with the default
/// disposition so the process still dies with the original signal.
/// Idempotent.
void flight_install_crash_handler();

}  // namespace amtfmm
