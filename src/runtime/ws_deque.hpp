#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace amtfmm {

/// Bounded Chase-Lev work-stealing deque of pointers.
///
/// The owning worker pushes and pops at the bottom; any other thread steals
/// from the top.  All index operations use seq_cst atomics rather than the
/// standalone fences of the original formulation: the push/steal and
/// pop/steal races are Dekker-style and need the total order, and
/// ThreadSanitizer models seq_cst operations but not fences.  Slot accesses
/// are relaxed — a thief that loses the top CAS discards whatever pointer it
/// read, and a successful CAS orders the read before any reuse of the slot.
///
/// The deque is bounded (capacity fixed at construction, a power of two);
/// push() reports failure when full and the caller spills elsewhere.
template <typename T>
class WsDeque {
 public:
  explicit WsDeque(std::size_t capacity = 1024)
      : mask_(static_cast<std::int64_t>(capacity) - 1), slots_(capacity) {
    AMTFMM_ASSERT_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                      "WsDeque capacity must be a power of two");
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner only.  Returns false when the ring is full.
  bool push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t > mask_) return false;
    slots_[static_cast<std::size_t>(b & mask_)].store(
        item, std::memory_order_relaxed);
    // Publishes the slot to thieves and takes part in the Dekker protocol
    // against a concurrent steal of the same element.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only.  nullptr when empty.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: restore
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = slots_[static_cast<std::size_t>(b & mask_)].load(
        std::memory_order_relaxed);
    if (t != b) return item;  // more than one element left, no race
    // Last element: race a concurrent steal for it via the top CAS.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      item = nullptr;  // a thief got it
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return item;
  }

  /// Any thread.  nullptr when empty or when the CAS race is lost (callers
  /// treat both as "try another victim").
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    T* item = slots_[static_cast<std::size_t>(t & mask_)].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Racy size hint for idle/park decisions; may be stale immediately.
  std::int64_t size_estimate() const {
    return bottom_.load(std::memory_order_seq_cst) -
           top_.load(std::memory_order_seq_cst);
  }
  bool maybe_nonempty() const { return size_estimate() > 0; }

  std::size_t capacity() const { return slots_.size(); }

 private:
  std::int64_t mask_;
  std::vector<std::atomic<T*>> slots_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace amtfmm
