#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/sync_hook.hpp"
#include "support/error.hpp"

namespace amtfmm {

/// Bounded Chase-Lev work-stealing deque of pointers.
///
/// The owning worker pushes and pops at the bottom; any other thread steals
/// from the top.  All index operations use seq_cst atomics rather than the
/// standalone fences of the original formulation: the push/steal and
/// pop/steal races are Dekker-style and need the total order, and
/// ThreadSanitizer models seq_cst operations but not fences.  Slot accesses
/// are relaxed — a thief that loses the top CAS discards whatever pointer it
/// read, and a successful CAS orders the read before any reuse of the slot.
///
/// Every atomic routes through the sync_hook wrappers so the rtcheck model
/// checker (src/rtcheck/) can explore interleavings and verify the
/// happens-before edges; in normal builds the wrappers compile to the raw
/// operations.  The memory-order table lives in DESIGN.md §3d.
///
/// The deque is bounded (capacity fixed at construction, a power of two);
/// push() reports failure when full and the caller spills elsewhere.
template <typename T>
class WsDeque {
 public:
  explicit WsDeque(std::size_t capacity = 1024)
      : mask_(static_cast<std::int64_t>(capacity) - 1), slots_(capacity) {
    AMTFMM_ASSERT_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                      "WsDeque capacity must be a power of two");
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner only.  Returns false when the ring is full.
  bool push(T* item) {
    const std::int64_t b = hooked_load(bottom_, std::memory_order_relaxed);
    const std::int64_t t = hooked_load(top_, std::memory_order_acquire);
    if (b - t > mask_) return false;
    hooked_store(slots_[static_cast<std::size_t>(b & mask_)], item,
                 std::memory_order_relaxed);
    // Publishes the slot to thieves and takes part in the Dekker protocol
    // against a concurrent steal of the same element.
    hooked_store(bottom_, b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only.  nullptr when empty.
  T* pop() {
    const std::int64_t b = hooked_load(bottom_, std::memory_order_relaxed) - 1;
    hooked_store(bottom_, b, std::memory_order_seq_cst);
    std::int64_t t = hooked_load(top_, std::memory_order_seq_cst);
    if (t > b) {  // empty: restore
      hooked_store(bottom_, b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = hooked_load(slots_[static_cast<std::size_t>(b & mask_)],
                          std::memory_order_relaxed);
    if (t != b) return item;  // more than one element left, no race
    // Last element: race a concurrent steal for it via the top CAS.
    if (!hooked_cas(top_, t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_seq_cst)) {
      item = nullptr;  // a thief got it
    }
    hooked_store(bottom_, b + 1, std::memory_order_relaxed);
    return item;
  }

  /// Any thread.  nullptr when empty or when the CAS race is lost (callers
  /// treat both as "try another victim").
  T* steal() {
    std::int64_t t = hooked_load(top_, std::memory_order_seq_cst);
    // rtcheck mutation point: weakening this to relaxed drops the acquire
    // edge from push()'s bottom_ publication, racing the item payload.
    const std::int64_t b = hooked_load(
        bottom_,
        rt_order(Mutation::kStealBottomLoadRelaxed, std::memory_order_seq_cst));
    if (t >= b) return nullptr;
    T* item = hooked_load(slots_[static_cast<std::size_t>(t & mask_)],
                          std::memory_order_relaxed);
    if (!hooked_cas(top_, t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Racy size hint for idle/park decisions; may be stale immediately.
  std::int64_t size_estimate() const {
    return bottom_.load(std::memory_order_seq_cst) -
           top_.load(std::memory_order_seq_cst);
  }
  bool maybe_nonempty() const { return size_estimate() > 0; }

  std::size_t capacity() const { return slots_.size(); }

 private:
  std::int64_t mask_;
  std::vector<std::atomic<T*>> slots_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace amtfmm
