#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace amtfmm {

/// Synchronization-event kinds observed by the rtcheck harness (see
/// src/rtcheck/ and DESIGN.md §3d).  The runtime's lock-free and locked
/// structures funnel every synchronizing operation through the hooks below;
/// in normal builds the hooks are empty inline functions and vanish
/// entirely, so the production code paths are byte-identical to the
/// un-instrumented ones.  In AMTFMM_RTCHECK builds each hook is a single
/// thread-local load + branch, and under the rtcheck controlled scheduler
/// the hooks become the schedule points of the model checker.
enum class SyncKind : std::uint8_t {
  kAtomicLoad,
  kAtomicStore,
  kAtomicRmw,
  kPlainRead,   ///< non-atomic shared read (happens-before checked)
  kPlainWrite,  ///< non-atomic shared write (happens-before checked)
  kLcoInput,    ///< LCO::set_input applied one input
  kLcoFire,     ///< LCO fired (must be at most once per object)
  kLcoRearm,    ///< LCO re-armed for a new epoch (resets trigger-once)
  kLcoContinuation,  ///< continuation registered or late-spawned
  kBatchEnqueue,     ///< parcel appended to a coalescing buffer
  kBatchFlush,       ///< parcels drained from a coalescing buffer
  kPendingRaise,     ///< coalescer emptiness-probe counter raised
  kPendingLower,     ///< coalescer emptiness-probe counter lowered
  kGasAlloc,         ///< GAS slot published
  kGasResolve,       ///< GAS slot resolved
  kMutexLock,        ///< SyncMutex lock/try_lock (trace only)
  kMutexUnlock,      ///< SyncMutex unlock (trace only)
  kCvWait,           ///< SyncCondVar wait block (trace only)
  kCvNotify,         ///< SyncCondVar notify (trace only)
};

/// Named fault-injection points.  rtcheck validates itself by re-running
/// its scenario suites with one of these mutations enabled: each mutation
/// reintroduces a specific ordering/locking bug (a dropped fence, a removed
/// lock) that the checker must detect and report with a deterministic
/// replay schedule.  Outside AMTFMM_RTCHECK builds every query below folds
/// to the unmutated constant, so production code is unaffected.
enum class Mutation : std::uint8_t {
  kNone = 0,
  /// WsDeque::steal loads bottom_ relaxed instead of seq_cst: the thief no
  /// longer acquires the owner's slot publication, so item-payload accesses
  /// race.
  kStealBottomLoadRelaxed,
  /// LCO::set_input skips the LCO lock: concurrent reduce() calls race.
  kLcoSetInputNoLock,
  /// ParcelCoalescer::enqueue raises pending_per_src_ after inserting into
  /// the buffer instead of before, so emptiness probes can under-report.
  kCoalescerCountAfterInsert,
  /// Gas::resolve loads the heap size relaxed instead of acquire, breaking
  /// the release/acquire edge from alloc() to the slot contents.
  kGasResolveRelaxed,
  /// CounterRegistry::observe bumps the histogram count before the sum and
  /// buckets (the pre-fix order), so snapshots can see count > contents.
  kCountersCountEarly,
};

#if defined(AMTFMM_RTCHECK)

/// Interface the rtcheck harness implements; installed per model thread.
/// pre() is the schedule point (it may block the calling thread until the
/// controlled scheduler resumes it); the post_*() callbacks report the
/// memory-order effect that actually took place and never block.
class SyncObserver {
 public:
  virtual ~SyncObserver() = default;

  /// Schedule point immediately before the operation executes.
  virtual void pre(SyncKind k, const void* addr, std::memory_order mo,
                   std::uint64_t info) = 0;
  /// Happens-before effects after the operation executed (no yield).
  virtual void post_load(const void* addr, std::memory_order mo) = 0;
  virtual void post_store(const void* addr, std::memory_order mo) = 0;
  virtual void post_rmw(const void* addr, std::memory_order mo) = 0;

  /// Mutex modelling: lock() blocks until the model grants the mutex,
  /// acquired()/release() apply the happens-before transfer.
  virtual void mutex_lock(const void* m) = 0;
  virtual bool mutex_try_lock(const void* m) = 0;
  virtual void mutex_unlock(const void* m) = 0;

  /// Condition-variable modelling (registration before release is what
  /// makes lost wakeups detectable as model deadlocks).
  virtual void cv_register(const void* cv) = 0;
  virtual void cv_block(const void* cv) = 0;
  virtual void cv_notify_all(const void* cv) = 0;

  /// Fault injection: the memory order / mutation state for a named point.
  virtual std::memory_order order_at(Mutation point, std::memory_order d) = 0;
  virtual bool mutation_on(Mutation point) = 0;
};

/// The observer of the calling thread; null outside the rtcheck harness.
/// NOLINTNEXTLINE(readability-identifier-naming): TLS slot, not a constant.
inline thread_local SyncObserver* tls_sync_observer = nullptr;

inline void sync_pre(SyncKind k, const void* addr, std::memory_order mo,
                     std::uint64_t info = 0) {
  if (SyncObserver* o = tls_sync_observer) o->pre(k, addr, mo, info);
}
inline void sync_post_load(const void* addr, std::memory_order mo) {
  if (SyncObserver* o = tls_sync_observer) o->post_load(addr, mo);
}
inline void sync_post_store(const void* addr, std::memory_order mo) {
  if (SyncObserver* o = tls_sync_observer) o->post_store(addr, mo);
}
inline void sync_post_rmw(const void* addr, std::memory_order mo) {
  if (SyncObserver* o = tls_sync_observer) o->post_rmw(addr, mo);
}
inline void sync_plain_read(const void* addr) {
  if (SyncObserver* o = tls_sync_observer) {
    o->pre(SyncKind::kPlainRead, addr, std::memory_order_relaxed, 0);
  }
}
inline void sync_plain_write(const void* addr) {
  if (SyncObserver* o = tls_sync_observer) {
    o->pre(SyncKind::kPlainWrite, addr, std::memory_order_relaxed, 0);
  }
}
/// Protocol event (LCO fire, batch flush, ...); `info` carries a count or
/// delta where the event kind needs one.
inline void sync_event(SyncKind k, const void* addr, std::uint64_t info = 0) {
  if (SyncObserver* o = tls_sync_observer) {
    o->pre(k, addr, std::memory_order_relaxed, info);
  }
}

/// The memory order to use at a named mutation point: the annotated order
/// normally, the weakened order when the harness enabled the mutation.
inline std::memory_order rt_order(Mutation point, std::memory_order d) {
  if (SyncObserver* o = tls_sync_observer) return o->order_at(point, d);
  return d;
}
/// Whether the harness enabled a named mutation (always false outside it).
inline bool rt_mutation(Mutation point) {
  if (SyncObserver* o = tls_sync_observer) return o->mutation_on(point);
  return false;
}

/// True when the calling thread runs under the model scheduler.  The sync
/// primitives below branch on this to route blocking through the model.
inline bool sync_observed() { return tls_sync_observer != nullptr; }

/// Mutex/cv hook points used by SyncMutex/SyncCondVar.  The model grant
/// happens before the real lock: when the harness resumes the thread the
/// real mutex is guaranteed free (the model admits one holder), so the
/// real operation never blocks under the serialized scheduler.
inline void sync_mutex_lock_hook(const void* m) {
  if (SyncObserver* o = tls_sync_observer) o->mutex_lock(m);
}
inline bool sync_mutex_try_lock_hook(const void* m) {
  if (SyncObserver* o = tls_sync_observer) return o->mutex_try_lock(m);
  return true;
}
inline void sync_mutex_unlock_hook(const void* m) {
  if (SyncObserver* o = tls_sync_observer) o->mutex_unlock(m);
}
inline void sync_cv_register_hook(const void* cv) {
  if (SyncObserver* o = tls_sync_observer) o->cv_register(cv);
}
inline void sync_cv_block_hook(const void* cv) {
  if (SyncObserver* o = tls_sync_observer) o->cv_block(cv);
}
inline void sync_cv_notify_hook(const void* cv) {
  if (SyncObserver* o = tls_sync_observer) o->cv_notify_all(cv);
}

#else  // !AMTFMM_RTCHECK — every hook vanishes.

inline void sync_pre(SyncKind, const void*, std::memory_order,
                     std::uint64_t = 0) {}
inline void sync_post_load(const void*, std::memory_order) {}
inline void sync_post_store(const void*, std::memory_order) {}
inline void sync_post_rmw(const void*, std::memory_order) {}
inline void sync_plain_read(const void*) {}
inline void sync_plain_write(const void*) {}
inline void sync_event(SyncKind, const void*, std::uint64_t = 0) {}
inline std::memory_order rt_order(Mutation, std::memory_order d) { return d; }
inline bool rt_mutation(Mutation) { return false; }

inline bool sync_observed() { return false; }
inline void sync_mutex_lock_hook(const void*) {}
inline bool sync_mutex_try_lock_hook(const void*) { return true; }
inline void sync_mutex_unlock_hook(const void*) {}
inline void sync_cv_register_hook(const void*) {}
inline void sync_cv_block_hook(const void*) {}
inline void sync_cv_notify_hook(const void*) {}

#endif  // AMTFMM_RTCHECK

/// The runtime's mutex: a std::mutex wrapper that (a) carries the Clang
/// thread-safety CAPABILITY annotations — libstdc++'s std::mutex has none,
/// so locking through it is invisible to -Wthread-safety — and (b) funnels
/// lock/unlock through the rtcheck schedule-point hooks.  In production
/// builds the hooks are empty and every method inlines to the raw
/// std::mutex call.
class CAPABILITY("mutex") SyncMutex {
 public:
  SyncMutex() = default;
  SyncMutex(const SyncMutex&) = delete;
  SyncMutex& operator=(const SyncMutex&) = delete;

  void lock() ACQUIRE() {
    sync_mutex_lock_hook(this);
    m_.lock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!sync_mutex_try_lock_hook(this)) return false;
    return m_.try_lock();
  }
  void unlock() RELEASE() {
    m_.unlock();
    sync_mutex_unlock_hook(this);
  }

  /// The wrapped mutex — for SyncCondVar's adopt-lock wait only; never
  /// lock through this (it would bypass both the annotations and the
  /// model hooks).
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard over a SyncMutex, annotated as a scoped capability so
/// the analysis tracks the critical section.
class SCOPED_CAPABILITY SyncLockGuard {
 public:
  explicit SyncLockGuard(SyncMutex& m) ACQUIRE(m) : m_(m) { m_.lock(); }
  ~SyncLockGuard() RELEASE() { m_.unlock(); }

  SyncLockGuard(const SyncLockGuard&) = delete;
  SyncLockGuard& operator=(const SyncLockGuard&) = delete;

 private:
  SyncMutex& m_;
};

/// std::unique_lock over a SyncMutex: supports the runtime's
/// unlock-work-relock pattern (drop the lock across a blocking write or a
/// task body, reacquire after) and condition-variable waits.  Annotated as
/// a scoped capability; manual lock()/unlock() keep the analysis's view of
/// the critical section exact.
class SCOPED_CAPABILITY SyncUniqueLock {
 public:
  explicit SyncUniqueLock(SyncMutex& m) ACQUIRE(m) : m_(&m), owned_(true) {
    m_->lock();
  }
  SyncUniqueLock(SyncMutex& m, std::defer_lock_t) EXCLUDES(m)
      : m_(&m), owned_(false) {}
  ~SyncUniqueLock() RELEASE() {
    if (owned_) m_->unlock();
  }

  SyncUniqueLock(const SyncUniqueLock&) = delete;
  SyncUniqueLock& operator=(const SyncUniqueLock&) = delete;

  void lock() ACQUIRE() {
    m_->lock();
    owned_ = true;
  }
  void unlock() RELEASE() {
    m_->unlock();
    owned_ = false;
  }

  bool owns_lock() const { return owned_; }
  SyncMutex* mutex() const { return m_; }

 private:
  SyncMutex* m_;
  bool owned_;
};

/// Condition variable paired with SyncMutex.  There is deliberately no
/// wait(lock, predicate) overload: -Wthread-safety analyzes a predicate
/// lambda as a separate unannotated function, so a predicate reading
/// GUARDED_BY state can never be annotation-clean — callers write the
/// explicit `while (!cond) cv.wait(lk);` loop instead, which the analysis
/// checks exactly.
///
/// Under the rtcheck model scheduler, waiting registers the thread with
/// the model *before* releasing the lock (so a notify between release and
/// block is never lost) and blocks on the model; a wait with no reachable
/// notify is reported as a deadlock (lost wakeup).  notify_one wakes all
/// model waiters (the model then explores the re-race for the lock); the
/// model has no clock, so timed waits are a single schedule point that
/// expires immediately — no current scenario exercises a timed wait.
class SyncCondVar {
 public:
  /// NO_THREAD_SAFETY_ANALYSIS: the body hands lk's capability through
  /// std::adopt_lock / model unlock-relock steps the analysis cannot
  /// follow; callers hold the lock across the call, which is exactly what
  /// the analysis observes at the call site.
  void wait(SyncUniqueLock& lk) NO_THREAD_SAFETY_ANALYSIS {
    if (sync_observed()) {
      sync_cv_register_hook(this);
      lk.unlock();
      sync_cv_block_hook(this);
      lk.lock();
      return;
    }
    std::unique_lock<std::mutex> inner(lk.mutex()->native(), std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }

  /// See wait() for the NO_THREAD_SAFETY_ANALYSIS rationale and the
  /// model-clock caveat.
  template <class Rep, class Period>
  std::cv_status wait_for(SyncUniqueLock& lk,
                          const std::chrono::duration<Rep, Period>& d)
      NO_THREAD_SAFETY_ANALYSIS {
    if (sync_observed()) {
      sync_event(SyncKind::kCvWait, this);
      return std::cv_status::timeout;
    }
    std::unique_lock<std::mutex> inner(lk.mutex()->native(), std::adopt_lock);
    const std::cv_status s = cv_.wait_for(inner, d);
    inner.release();
    return s;
  }

  /// See wait() for the NO_THREAD_SAFETY_ANALYSIS rationale and the
  /// model-clock caveat.
  template <class Clock, class Duration>
  std::cv_status wait_until(SyncUniqueLock& lk,
                            const std::chrono::time_point<Clock, Duration>& t)
      NO_THREAD_SAFETY_ANALYSIS {
    if (sync_observed()) {
      sync_event(SyncKind::kCvWait, this);
      return std::cv_status::timeout;
    }
    std::unique_lock<std::mutex> inner(lk.mutex()->native(), std::adopt_lock);
    const std::cv_status s = cv_.wait_until(inner, t);
    inner.release();
    return s;
  }

  void notify_one() {
    sync_cv_notify_hook(this);
    cv_.notify_one();
  }
  void notify_all() {
    sync_cv_notify_hook(this);
    cv_.notify_all();
  }

 private:
  std::condition_variable cv_;
};

/// Lock guard for a named lock-elision mutation point: takes the lock
/// normally, skips it when the rtcheck harness enabled the mutation (the
/// deliberately reintroduced bug the checker must catch).  The annotations
/// claim the capability unconditionally — the skip exists only under the
/// model, where -Wthread-safety is not the checker on duty.
class SCOPED_CAPABILITY MaybeLockGuard {
 public:
  MaybeLockGuard(SyncMutex& m, Mutation point) ACQUIRE(m)
      : m_(m), skip_(rt_mutation(point)) {
    if (!skip_) m_.lock();
  }
  ~MaybeLockGuard() RELEASE() {
    if (!skip_) m_.unlock();
  }
  MaybeLockGuard(const MaybeLockGuard&) = delete;
  MaybeLockGuard& operator=(const MaybeLockGuard&) = delete;

 private:
  SyncMutex& m_;
  bool skip_;
};

/// Hooked wrappers over the std::atomic operations the runtime's
/// concurrent structures use.  Each wrapper is the annotated operation plus
/// a pre-hook (the model checker's schedule point) and a post-hook (the
/// happens-before effect that actually occurred); in normal builds both
/// hooks are empty and the wrapper compiles to exactly the raw operation.
template <typename V>
inline V hooked_load(const std::atomic<V>& a, std::memory_order mo) {
  sync_pre(SyncKind::kAtomicLoad, &a, mo);
  V v = a.load(mo);
  sync_post_load(&a, mo);
  return v;
}

template <typename V, typename U>
inline void hooked_store(std::atomic<V>& a, U v, std::memory_order mo) {
  sync_pre(SyncKind::kAtomicStore, &a, mo);
  a.store(v, mo);
  sync_post_store(&a, mo);
}

template <typename V, typename U>
inline V hooked_fetch_add(std::atomic<V>& a, U v, std::memory_order mo) {
  sync_pre(SyncKind::kAtomicRmw, &a, mo, static_cast<std::uint64_t>(v));
  V r = a.fetch_add(v, mo);
  sync_post_rmw(&a, mo);
  return r;
}

template <typename V, typename U>
inline V hooked_fetch_sub(std::atomic<V>& a, U v, std::memory_order mo) {
  sync_pre(SyncKind::kAtomicRmw, &a, mo, static_cast<std::uint64_t>(v));
  V r = a.fetch_sub(v, mo);
  sync_post_rmw(&a, mo);
  return r;
}

template <typename V>
inline V hooked_exchange(std::atomic<V>& a, V v, std::memory_order mo) {
  sync_pre(SyncKind::kAtomicRmw, &a, mo);
  V r = a.exchange(v, mo);
  sync_post_rmw(&a, mo);
  return r;
}

/// compare_exchange_strong with the failure path reported as a load with
/// the failure order (a failed CAS synchronizes only as a load).
template <typename V>
inline bool hooked_cas(std::atomic<V>& a, V& expected, V desired,
                       std::memory_order success, std::memory_order failure) {
  sync_pre(SyncKind::kAtomicRmw, &a, success);
  const bool ok = a.compare_exchange_strong(expected, desired, success,
                                            failure);
  if (ok) {
    sync_post_rmw(&a, success);
  } else {
    sync_post_load(&a, failure);
  }
  return ok;
}

}  // namespace amtfmm
