#include "runtime/trace.hpp"

#include <algorithm>
#include <chrono>

#include "kernels/kernel.hpp"
#include "runtime/flight_recorder.hpp"
#include "support/error.hpp"

namespace amtfmm {

TraceClock make_trace_clock(double steady_origin_s) {
  TraceClock c;
  c.steady_origin_s = steady_origin_s;
  // Read both clocks back to back: the pair correlates the steady
  // timeline traces run on with real time.  The microseconds between the
  // two reads are noise well below the clock-sync error bound.
  const double steady_now =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  // time-ok: the trace wall-clock anchor is the one sanctioned wall time
  // read in the runtime (lint rule 7); everything else is steady-clock.
  const double wall_now =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  c.wall_anchor_s = wall_now - (steady_now - steady_origin_s);
  return c;
}

const char* trace_class_name(std::uint8_t cls) {
  if (cls < kNumOperators) return to_string(static_cast<Operator>(cls));
  if (cls == kClsNetwork) return "network";
  if (cls == kClsOther) return "other";
  return "?";
}

const char* instant_kind_name(InstantKind kind) {
  switch (kind) {
    case InstantKind::kSteal: return "steal";
    case InstantKind::kParcelSend: return "parcel_send";
    case InstantKind::kParcelRecv: return "parcel_recv";
    case InstantKind::kLcoFire: return "lco_fire";
  }
  return "?";
}

std::vector<TraceEvent> TraceSink::collect() const {
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const auto& b : buffers_) total += b.size();
  out.reserve(total);
  for (const auto& b : buffers_) out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.t0 < b.t0; });
  return out;
}

std::vector<InstantEvent> TraceSink::collect_instants() const {
  std::vector<InstantEvent> out;
  std::size_t total = 0;
  for (const auto& b : instants_) total += b.size();
  out.reserve(total);
  for (const auto& b : instants_) out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end(),
            [](const InstantEvent& a, const InstantEvent& b) { return a.t < b.t; });
  return out;
}

void TraceSink::record_comm(const CommEvent& e) {
  // relaxed-ok: control flag, no ordering required (see set_enabled).
  const std::uint8_t m = mode_.load(std::memory_order_relaxed);
  if (m == 0) return;
  if ((m & kModeFlight) != 0) flight_->record_comm(e);
  if ((m & kModeFull) == 0) return;
  SyncLockGuard lk(comm_mu_);
  comm_.push_back(e);
}

void TraceSink::flight_span(std::uint32_t worker, std::uint8_t cls, double t0,
                            double t1, std::uint32_t arg) {
  flight_->record_span(worker, cls, t0, t1, arg);
}

void TraceSink::flight_instant(std::uint32_t worker, InstantKind kind,
                               double t, std::uint32_t arg) {
  flight_->record_instant(worker, kind, t, arg);
}

std::vector<CommEvent> TraceSink::collect_comm() const {
  SyncLockGuard lk(comm_mu_);
  std::vector<CommEvent> out = comm_;
  std::sort(out.begin(), out.end(),
            [](const CommEvent& a, const CommEvent& b) { return a.t0 < b.t0; });
  return out;
}

void TraceSink::clear() {
  for (auto& b : buffers_) b.clear();
  for (auto& b : instants_) b.clear();
  SyncLockGuard lk(comm_mu_);
  comm_.clear();
}

UtilizationProfile utilization(std::span<const TraceEvent> events,
                               double t_begin, double t_end, int intervals,
                               int num_workers) {
  AMTFMM_ASSERT(intervals >= 1);
  AMTFMM_ASSERT(num_workers >= 1);
  UtilizationProfile p;
  p.t_begin = t_begin;
  p.t_end = t_end;
  p.total.assign(static_cast<std::size_t>(intervals), 0.0);
  for (auto& v : p.by_class) v.assign(static_cast<std::size_t>(intervals), 0.0);
  // Degenerate window: all-zero fractions, never divide by zero below.
  if (!(t_end > t_begin)) return p;

  const double dt = (t_end - t_begin) / intervals;
  for (const TraceEvent& e : events) {
    double a = std::max(e.t0, t_begin);
    double b = std::min(e.t1, t_end);
    if (b <= a) continue;
    int k0 = static_cast<int>((a - t_begin) / dt);
    int k1 = static_cast<int>((b - t_begin) / dt);
    k0 = std::clamp(k0, 0, intervals - 1);
    k1 = std::clamp(k1, 0, intervals - 1);
    for (int k = k0; k <= k1; ++k) {
      const double lo = t_begin + k * dt;
      const double hi = lo + dt;
      const double overlap = std::min(b, hi) - std::max(a, lo);
      if (overlap <= 0.0) continue;
      p.by_class[e.cls][static_cast<std::size_t>(k)] += overlap;
    }
  }
  const double denom = num_workers * dt;
  for (int c = 0; c < kNumTraceClasses; ++c) {
    for (int k = 0; k < intervals; ++k) {
      p.by_class[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)] /= denom;
      p.total[static_cast<std::size_t>(k)] +=
          p.by_class[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)];
    }
  }
  return p;
}

}  // namespace amtfmm
