#include "runtime/counters.hpp"

#include <algorithm>

#include "support/json.hpp"

namespace amtfmm {

std::uint64_t CounterSnapshot::value(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

void CounterSnapshot::append_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& c : counters) w.kv(c.name, c.value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& g : gauges) w.kv(g.name, g.value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : histograms) {
    w.key(h.name);
    w.begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.key("buckets");
    w.begin_array();
    // Trailing zero buckets are elided; bucket i spans [2^i, 2^(i+1)).
    std::size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (std::size_t i = 0; i < last; ++i) w.value(h.buckets[i]);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

double histogram_quantile(const CounterSnapshot::Histogram& h, double q) {
  if (h.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile among the count observations, 1-based
  // so q=1 lands exactly on the last observation.
  const double rank = q * static_cast<double>(h.count);
  std::uint64_t below = 0;
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    const std::uint64_t n = h.buckets[b];
    if (n == 0) continue;
    if (static_cast<double>(below + n) >= rank) {
      const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << b);
      // Top bucket is open-ended; clamp to twice its lower edge, the best
      // bound a log2 layout can state.
      const double hi = b + 1 < h.buckets.size()
                            ? static_cast<double>(1ull << (b + 1))
                            : 2.0 * static_cast<double>(1ull << b);
      const double frac =
          std::clamp((rank - static_cast<double>(below)) /
                         static_cast<double>(n),
                     0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    below += n;
  }
  return 0.0;  // unreachable with a consistent snapshot
}

CounterRegistry::CounterRegistry(int workers) {
  const int n = std::max(workers, 1);
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

CounterRegistry::Id CounterRegistry::reg(const std::string& name, Kind kind) {
  for (std::size_t i = 0; i < scalar_names_.size(); ++i) {
    if (scalar_names_[i] == name) {
      AMTFMM_ASSERT_MSG(scalar_kinds_[i] == kind,
                        "counter/gauge kind mismatch on re-registration");
      return static_cast<Id>(i);
    }
  }
  AMTFMM_ASSERT_MSG(scalar_names_.size() < kMaxScalars,
                    "CounterRegistry scalar capacity exhausted");
  scalar_names_.push_back(name);
  scalar_kinds_.push_back(kind);
  return static_cast<Id>(scalar_names_.size() - 1);
}

CounterRegistry::Id CounterRegistry::histogram(const std::string& name) {
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    if (hist_names_[i] == name) return static_cast<Id>(i);
  }
  AMTFMM_ASSERT_MSG(hist_names_.size() < kMaxHistograms,
                    "CounterRegistry histogram capacity exhausted");
  hist_names_.push_back(name);
  return static_cast<Id>(hist_names_.size() - 1);
}

CounterRegistry::Id CounterRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < scalar_names_.size(); ++i) {
    if (scalar_names_[i] == name) return static_cast<Id>(i);
  }
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    if (hist_names_[i] == name) return static_cast<Id>(i);
  }
  return kNoId;
}

CounterSnapshot CounterRegistry::snapshot() const {
  CounterSnapshot snap;
  for (std::size_t i = 0; i < scalar_names_.size(); ++i) {
    std::uint64_t sum = 0;
    std::uint64_t mx = 0;
    for (const auto& s : shards_) {
      const std::uint64_t v = s->scalars[i].load(std::memory_order_relaxed);
      sum += v;
      mx = std::max(mx, v);
    }
    CounterSnapshot::Scalar out{scalar_names_[i],
                                scalar_kinds_[i] == Kind::kGauge ? mx : sum};
    if (scalar_kinds_[i] == Kind::kGauge) {
      snap.gauges.push_back(std::move(out));
    } else {
      snap.counters.push_back(std::move(out));
    }
  }
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    CounterSnapshot::Histogram h;
    h.name = hist_names_[i];
    for (const auto& s : shards_) {
      const auto& hs = s->hists[i];
      // Acquire pairs with observe()'s count-last release: every counted
      // observation's sum and bucket updates are visible to the reads
      // below, so count never exceeds what sum/buckets account for.
      h.count += hooked_load(hs.count, std::memory_order_acquire);
      h.sum += hooked_load(hs.sum, std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        h.buckets[b] += hooked_load(hs.buckets[b], std::memory_order_relaxed);
      }
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void CounterRegistry::clear() {
  for (auto& s : shards_) {
    for (auto& v : s->scalars) v.store(0, std::memory_order_relaxed);
    for (auto& h : s->hists) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace amtfmm
