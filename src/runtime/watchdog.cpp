#include "runtime/watchdog.hpp"

#include <algorithm>
#include <chrono>

#include "support/error.hpp"

namespace amtfmm {

Watchdog::Watchdog(double timeout_s, StallFn on_stall)
    : timeout_s_(timeout_s), on_stall_(std::move(on_stall)) {
  AMTFMM_ASSERT(timeout_s_ > 0.0);
  // thread-ok: the watchdog IS a monitor thread by design; it never
  // touches executor state, only its own beat counter.
  th_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() {
  {
    SyncLockGuard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  th_.join();
}

void Watchdog::beat() {
  {
    SyncLockGuard lk(mu_);
    ++beats_;
  }
  cv_.notify_all();
}

void Watchdog::arm() {
  {
    SyncLockGuard lk(mu_);
    armed_ = true;
    ++beats_;  // arming restarts the stall clock
  }
  cv_.notify_all();
}

void Watchdog::disarm() {
  {
    SyncLockGuard lk(mu_);
    armed_ = false;
  }
  cv_.notify_all();
}

void Watchdog::loop() {
  using clock = std::chrono::steady_clock;
  const auto poll = std::chrono::duration<double>(
      std::min(timeout_s_ / 4.0, 0.05));
  SyncUniqueLock lk(mu_);
  std::uint64_t last = beats_;
  auto last_change = clock::now();
  bool reported = false;
  while (!stop_) {
    cv_.wait_for(lk, poll);
    if (stop_) return;
    if (!armed_ || beats_ != last) {
      last = beats_;
      last_change = clock::now();
      reported = false;
      continue;
    }
    const double stalled =
        std::chrono::duration<double>(clock::now() - last_change).count();
    if (!reported && stalled >= timeout_s_) {
      reported = true;
      // relaxed-ok: diagnostic latch; set before the callback so fired()
      // observed from the callback is already true.
      fired_.store(true, std::memory_order_relaxed);
      StallFn fn = on_stall_;  // copy: the call runs outside the lock
      lk.unlock();
      if (fn) fn(stalled);
      lk.lock();
    }
  }
}

}  // namespace amtfmm
