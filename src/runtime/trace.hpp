#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "runtime/sync_hook.hpp"

namespace amtfmm {

/// Trace event classes: the eleven DAG operators (numbered as
/// kernels/kernel.hpp Operator) plus runtime-internal work.  Matches the
/// paper's section V.B instrumentation: "events marking the beginning and
/// ending of the various operations performed by DASHMM".
inline constexpr std::uint8_t kClsNetwork = 11;
inline constexpr std::uint8_t kClsOther = 12;
inline constexpr int kNumTraceClasses = 13;

const char* trace_class_name(std::uint8_t cls);

/// Sentinel for TraceEvent::arg / InstantEvent::arg: "no attribution".
inline constexpr std::uint32_t kNoTraceArg = 0xffffffffu;

/// One traced interval on one scheduler thread (times in seconds — wall
/// time in real mode, virtual time in sim mode).  `arg` attributes the span
/// to a DAG entity: for operator-class spans it is the DAG edge id whose
/// apply produced the work (kNoTraceArg when the span covers runtime work
/// with no single edge, e.g. parcel deserialization).  Edge ids index
/// Dag::edges, which the Chrome exporter embeds in the trace file so the
/// analyzer can rebuild the weighted dependency graph.
struct TraceEvent {
  double t0;
  double t1;
  std::uint32_t worker;
  std::uint8_t cls;
  std::uint32_t arg = kNoTraceArg;
};

/// One wire message on the interconnect: a parcel, or a coalesced batch of
/// parcels, from one locality to another.  In sim mode [t0, t1] is the NIC
/// occupancy interval (departure to arrival on the modelled network); in
/// real mode both ends carry the flush time (delivery is in-process).
struct CommEvent {
  double t0;
  double t1;
  std::uint32_t src;
  std::uint32_t dst;
  std::uint32_t parcels;  ///< logical parcels carried by this message
  std::uint64_t bytes;
};

/// Zero-duration scheduler events, rendered as Chrome instant events.
enum class InstantKind : std::uint8_t {
  kSteal = 0,       ///< successful steal; arg = victim worker
  kParcelSend = 1,  ///< batch handed to the wire; arg = destination locality
  kParcelRecv = 2,  ///< batch delivered; arg = source locality
  kLcoFire = 3,     ///< LCO trigger (all inputs arrived); arg = kNoTraceArg
};
inline constexpr int kNumInstantKinds = 4;

const char* instant_kind_name(InstantKind kind);

struct InstantEvent {
  double t;
  std::uint32_t worker;
  InstantKind kind;
  std::uint32_t arg = kNoTraceArg;
};

/// Clock anchoring for one rank's trace: how this executor's t=0 relates
/// to the machine's steady clock, to wall-clock time, and (for socket
/// localities) to rank 0's steady clock.  Recorded in trace metadata at
/// export time so merged multi-rank / multi-epoch traces can be aligned:
///   rank0_time(t) = steady_origin_s + t - offset_s - rank0_steady_origin_s
struct TraceClock {
  double steady_origin_s = 0.0;  ///< executor t=0 on the steady clock
  double wall_anchor_s = 0.0;    ///< Unix wall time at that same instant
  double offset_s = 0.0;         ///< local steady minus rank 0's (net only)
  double uncertainty_s = 0.0;    ///< clock-sync error bound (≤ RTT/2)
};

/// Captures the wall/steady correspondence for an executor whose t=0 sits
/// at `steady_origin_s` on the steady clock.  The only sanctioned wall
/// clock read in the runtime (see lint rule 7): traces anchor to real
/// time here, everything else stays on the steady clock.
TraceClock make_trace_clock(double steady_origin_s);

class FlightRecorder;

/// Collects events from many workers with per-worker buffers (no contention
/// on the hot path).
///
/// Two recording modes share one flag so the disabled hot path stays a
/// single relaxed load + branch: full tracing (unbounded per-worker
/// vectors, collected after drain) and flight recording (bounded
/// per-worker rings owned by a FlightRecorder, overwritten forever and
/// dumped only on a crash/stall).  Either, both, or neither can be on.
class TraceSink {
 public:
  static constexpr std::uint8_t kModeFull = 1;
  static constexpr std::uint8_t kModeFlight = 2;

  explicit TraceSink(int workers)
      : buffers_(static_cast<std::size_t>(workers)),
        instants_(static_cast<std::size_t>(workers)) {}

  // The flag carries no data: workers read it on idle paths (steal/park)
  // while the main thread toggles it, and toggles happen only while the
  // executor is quiescent, so no ordering with event payloads is needed.
  void set_enabled(bool on) {
    if (on) {
      // relaxed-ok: control flag, no ordering required (see above).
      mode_.fetch_or(kModeFull, std::memory_order_relaxed);
    } else {
      // relaxed-ok: control flag, no ordering required (see above).
      mode_.fetch_and(static_cast<std::uint8_t>(~kModeFull),
                      std::memory_order_relaxed);
    }
  }
  /// True when ANY recording mode is on — the hot-path guard call sites
  /// use before computing timestamps.
  // relaxed-ok: control flag, no ordering required (see above).
  bool enabled() const { return mode_.load(std::memory_order_relaxed) != 0; }
  /// True when full (collectable) tracing specifically is on.
  // relaxed-ok: control flag, no ordering required (see above).
  bool full_enabled() const {
    return (mode_.load(std::memory_order_relaxed) & kModeFull) != 0;
  }

  /// Attaches (nullptr: detaches) the flight recorder.  Same quiescence
  /// contract as set_enabled: toggled only while no worker is recording.
  void set_flight(FlightRecorder* fr) {
    flight_ = fr;
    if (fr != nullptr) {
      // relaxed-ok: control flag, no ordering required (see set_enabled).
      mode_.fetch_or(kModeFlight, std::memory_order_relaxed);
    } else {
      // relaxed-ok: control flag, no ordering required (see set_enabled).
      mode_.fetch_and(static_cast<std::uint8_t>(~kModeFlight),
                      std::memory_order_relaxed);
    }
  }
  FlightRecorder* flight() const { return flight_; }

  void record(std::uint32_t worker, std::uint8_t cls, double t0, double t1,
              std::uint32_t arg = kNoTraceArg) {
    // relaxed-ok: control flag, no ordering required (see set_enabled).
    const std::uint8_t m = mode_.load(std::memory_order_relaxed);
    if (m == 0) return;
    assert(worker < buffers_.size() && "trace worker id out of range");
    if ((m & kModeFull) != 0) {
      buffers_[worker].push_back(TraceEvent{t0, t1, worker, cls, arg});
    }
    if ((m & kModeFlight) != 0) flight_span(worker, cls, t0, t1, arg);
  }

  void record_instant(std::uint32_t worker, InstantKind kind, double t,
                      std::uint32_t arg = kNoTraceArg) {
    // relaxed-ok: control flag, no ordering required (see set_enabled).
    const std::uint8_t m = mode_.load(std::memory_order_relaxed);
    if (m == 0) return;
    assert(worker < instants_.size() && "trace worker id out of range");
    if ((m & kModeFull) != 0) {
      instants_[worker].push_back(InstantEvent{t, worker, kind, arg});
    }
    if ((m & kModeFlight) != 0) flight_instant(worker, kind, t, arg);
  }

  /// Records one wire message.  Thread safe; no-op when disabled.  Flushes
  /// are orders of magnitude rarer than task events, so a mutex suffices.
  void record_comm(const CommEvent& e);

  /// Merges all per-worker buffers (call after drain()).
  std::vector<TraceEvent> collect() const;

  /// Merges all per-worker instant buffers (call after drain()).
  std::vector<InstantEvent> collect_instants() const;

  /// Wire messages in departure order (call after drain()).
  std::vector<CommEvent> collect_comm() const;

  void clear();

 private:
  /// Out-of-line flight-ring writes: keeps trace.hpp free of the
  /// FlightRecorder definition (trace.cpp includes it) while the full-off
  /// and full-only paths above stay fully inlined.
  void flight_span(std::uint32_t worker, std::uint8_t cls, double t0,
                   double t1, std::uint32_t arg);
  void flight_instant(std::uint32_t worker, InstantKind kind, double t,
                      std::uint32_t arg);

  std::atomic<std::uint8_t> mode_{0};
  FlightRecorder* flight_ = nullptr;
  std::vector<std::vector<TraceEvent>> buffers_;
  std::vector<std::vector<InstantEvent>> instants_;
  mutable SyncMutex comm_mu_;
  std::vector<CommEvent> comm_ GUARDED_BY(comm_mu_);
};

/// Utilization fractions per the paper's equations (1) and (2):
///   f_k^(i) = dt_k^(i) / (n dt_k),   f_k = sum_i f_k^(i)
/// over M uniform intervals of [t_begin, t_end], where n is the total
/// number of scheduler threads.  Events spanning interval boundaries are
/// split proportionally; events entirely at or past t_end and zero-length
/// events contribute nothing.  A degenerate window (t_end <= t_begin)
/// yields all-zero fractions rather than NaN.
struct UtilizationProfile {
  std::vector<double> total;  // f_k, one per interval
  std::array<std::vector<double>, kNumTraceClasses> by_class;  // f_k^(i)
  double t_begin = 0.0;
  double t_end = 0.0;
};

UtilizationProfile utilization(std::span<const TraceEvent> events,
                               double t_begin, double t_end, int intervals,
                               int num_workers);

}  // namespace amtfmm
