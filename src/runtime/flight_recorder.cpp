#include "runtime/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "support/error.hpp"

namespace amtfmm {

namespace {

/// Buffered writer over write(2): no stdio streams, no allocation, so the
/// dump path stays usable from a fatal-signal handler.
struct RawWriter {
  int fd = -1;
  char buf[1 << 15];
  std::size_t len = 0;
  bool ok = true;

  void flush() {
    std::size_t off = 0;
    while (ok && off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) {
        ok = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void put(const char* s, std::size_t n) {
    if (n > sizeof(buf)) n = sizeof(buf);  // single token never this long
    if (len + n > sizeof(buf)) flush();
    std::memcpy(buf + len, s, n);
    len += n;
  }
  // Formats one JSON token/line into a bounded stack buffer.
  void fmt(const char* f, ...) __attribute__((format(printf, 2, 3))) {
    char line[1024];
    va_list ap;
    va_start(ap, f);
    const int n = std::vsnprintf(line, sizeof(line), f, ap);
    va_end(ap);
    if (n > 0) put(line, std::min(static_cast<std::size_t>(n), sizeof(line)));
  }
};

bool sane_time(double t) { return std::isfinite(t) && t >= 0.0 && t < 1e9; }

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

constexpr int kMaxRecorders = 8;
// relaxed-ok: registry slots are independent pointers; dump iterates a
// snapshot and registration happens on quiescent setup paths.
std::atomic<FlightRecorder*> g_recorders[kMaxRecorders] = {};

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    case SIGTERM: return "SIGTERM";
  }
  return "signal";
}

void crash_handler(int sig) {
  char reason[64];
  std::snprintf(reason, sizeof(reason), "fatal signal %s (%d)",
                signal_name(sig), sig);
  flight_dump_all(reason);
  // Restore the default disposition and re-raise: the process must still
  // die with the original signal (exit status, core dumps, waitpid).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

FlightRecorder::FlightRecorder(int workers, std::size_t events_per_worker) {
  AMTFMM_ASSERT(workers >= 1 && events_per_worker >= 1);
  const std::size_t cap = round_up_pow2(events_per_worker);
  mask_ = cap - 1;
  rings_ = std::vector<Ring>(static_cast<std::size_t>(workers));
  for (auto& r : rings_) r.slots = std::make_unique<Event[]>(cap);
  comm_.resize(256);
  flight_register(this);
}

FlightRecorder::~FlightRecorder() { flight_unregister(this); }

void FlightRecorder::set_dump_path(const std::string& path) {
  std::snprintf(path_, sizeof(path_), "%s", path.c_str());
}

void FlightRecorder::set_meta(std::uint32_t rank, int cores,
                              const TraceClock& clock) {
  rank_ = rank;
  cores_ = cores;
  clock_ = clock;
}

void FlightRecorder::record_comm(const CommEvent& e) {
  SyncLockGuard lk(comm_mu_);
  comm_[comm_head_ % comm_.size()] = e;
  ++comm_head_;
}

bool FlightRecorder::dump(const char* reason) const {
  if (path_[0] == '\0') return false;
  RawWriter w;
  w.fd = ::open(path_, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (w.fd < 0) return false;

  w.fmt("{\"traceEvents\":[\n");
  w.fmt("{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
        "\"args\":{\"name\":\"locality %u (flight)\"}}",
        rank_, rank_);
  for (std::size_t wk = 0; wk < rings_.size(); ++wk) {
    w.fmt(",\n{\"ph\":\"M\",\"pid\":%u,\"tid\":%zu,\"name\":"
          "\"thread_name\",\"args\":{\"name\":\"worker %zu\"}}",
          rank_, wk, wk);
  }
  for (std::uint32_t wk = 0; wk < rings_.size(); ++wk) {
    const Ring& r = rings_[wk];
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t cap = mask_ + 1;
    const std::uint64_t n = head < cap ? head : cap;
    for (std::uint64_t i = head - n; i < head; ++i) {
      const Event e = r.slots[i & mask_];  // copy: writer may still run
      if (!sane_time(e.t0) || !sane_time(e.t1) || e.t1 < e.t0) continue;
      if (e.instant) {
        if (e.kind >= kNumInstantKinds) continue;  // torn slot
        w.fmt(",\n{\"ph\":\"i\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f,"
              "\"name\":\"%s\",\"cat\":\"sched\",\"s\":\"t\"}",
              rank_, wk, e.t0 * 1e6,
              instant_kind_name(static_cast<InstantKind>(e.kind)));
      } else {
        if (e.cls >= kNumTraceClasses) continue;  // torn slot
        w.fmt(",\n{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f,"
              "\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"task\","
              "\"args\":{\"edge\":%lld}}",
              rank_, wk, e.t0 * 1e6, (e.t1 - e.t0) * 1e6,
              trace_class_name(e.cls),
              e.arg == kNoTraceArg ? -1ll
                                   : static_cast<long long>(e.arg));
      }
    }
  }
  // Comm ring: try_lock only — a thread that crashed while holding the
  // lock must not deadlock the handler; we just lose the comm slice.
  if (comm_mu_.try_lock()) {
    const std::size_t n = comm_head_ < comm_.size() ? comm_head_
                                                    : comm_.size();
    for (std::size_t i = comm_head_ - n; i < comm_head_; ++i) {
      const CommEvent& e = comm_[i % comm_.size()];
      if (!sane_time(e.t0) || !sane_time(e.t1) || e.t1 < e.t0) continue;
      w.fmt(",\n{\"ph\":\"X\",\"pid\":%u,\"tid\":%d,\"ts\":%.3f,"
            "\"dur\":%.3f,\"name\":\"wire\",\"cat\":\"comm\","
            "\"args\":{\"src\":%u,\"dst\":%u,\"parcels\":%u,"
            "\"bytes\":%llu}}",
            rank_, cores_, e.t0 * 1e6, (e.t1 - e.t0) * 1e6, e.src, e.dst,
            e.parcels, static_cast<unsigned long long>(e.bytes));
    }
    comm_mu_.unlock();
  }
  w.fmt("\n],\n\"amtfmm_flight\":{\"reason\":\"%s\",\"rank\":%u,"
        "\"cores\":%d,\"steady_origin_s\":%.9f,\"wall_anchor_s\":%.9f,"
        "\"clock_offset_s\":%.9f,\"clock_uncertainty_s\":%.9f}}\n",
        reason != nullptr ? reason : "", rank_, cores_,
        clock_.steady_origin_s, clock_.wall_anchor_s, clock_.offset_s,
        clock_.uncertainty_s);
  w.flush();
  ::close(w.fd);
  return w.ok;
}

void flight_register(FlightRecorder* fr) {
  for (auto& slot : g_recorders) {
    FlightRecorder* expected = nullptr;
    if (slot.compare_exchange_strong(expected, fr,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
  // More live recorders than slots: the newest simply is not crash-dumped.
}

void flight_unregister(FlightRecorder* fr) {
  for (auto& slot : g_recorders) {
    FlightRecorder* expected = fr;
    if (slot.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
}

int flight_dump_all(const char* reason) {
  int dumped = 0;
  for (auto& slot : g_recorders) {
    FlightRecorder* fr = slot.load(std::memory_order_acquire);
    if (fr != nullptr && fr->dump(reason)) ++dumped;
  }
  return dumped;
}

void flight_install_crash_handler() {
  // relaxed-ok: idempotence latch; double installation is harmless anyway.
  static std::atomic<bool> installed{false};
  if (installed.exchange(true, std::memory_order_relaxed)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  // SIGTERM is in the list deliberately: when the launcher tears a world
  // down after a peer failure, every surviving rank dumps its last seconds
  // before dying, so a distributed post-mortem has every side of the story.
  for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT, SIGTERM}) {
    sigaction(sig, &sa, nullptr);
  }
}

}  // namespace amtfmm
