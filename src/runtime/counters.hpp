#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/sync_hook.hpp"
#include "support/error.hpp"

namespace amtfmm {

class JsonWriter;

/// Point-in-time view of every registered metric, merged across the
/// per-worker shards: counters sum, gauges take the maximum (they record
/// high-water marks), histograms sum bucket-wise.  Snapshots are attached
/// to EvalResult/SimResult and serialized by the bench `--json` outputs and
/// the Chrome trace exporter.
struct CounterSnapshot {
  struct Scalar {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Histogram {
    std::string name;
    std::uint64_t count = 0;  ///< total observations
    std::uint64_t sum = 0;    ///< summed observed values
    /// Bucket i counts observations in [2^i, 2^(i+1)); bucket 0 is [0, 2).
    std::array<std::uint64_t, 32> buckets{};
  };
  std::vector<Scalar> counters;
  std::vector<Scalar> gauges;
  std::vector<Histogram> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Value of a counter/gauge by name; 0 when absent.
  std::uint64_t value(const std::string& name) const;
  /// Serializes the snapshot as one JSON object (counters/gauges flat,
  /// histograms as {count, sum, buckets}).  One writer everywhere, so
  /// every bench and the trace exporter emit the identical schema.
  void append_json(JsonWriter& w) const;
};

/// Quantile estimate (q in [0, 1]) from a log2-bucketed histogram, used
/// by the serve latency readouts and amtfmm_top.  The rank q*count is
/// located in the cumulative bucket counts and linearly interpolated
/// inside its bucket [2^i, 2^(i+1)) — bucket 0 spans [0, 2).  The top
/// bucket is open-ended; observations saturated there interpolate toward
/// twice its lower edge (the best bound a log2 histogram can give).
/// Returns 0 for an empty histogram.  Accuracy is inherently bucket-
/// limited: the true quantile lies within a factor of 2.
double histogram_quantile(const CounterSnapshot::Histogram& h, double q);

/// Registry of named runtime metrics with per-worker sharded storage.
///
/// Hot-path updates (add / gauge_max / observe) are lock free and touch
/// only the calling worker's cache lines: each shard is a fixed-capacity
/// array of relaxed atomics, preallocated at construction so registration
/// never reallocates under concurrent updates.  With the registry disabled
/// every update is a single relaxed load + branch — the same near-zero
/// disabled cost discipline as TraceSink::enabled().
///
/// Registration (counter()/gauge()/histogram()) is NOT thread safe and must
/// happen before workers start updating — in practice the runtime registers
/// its standard set at construction and the engine registers per-operator
/// counters before seeding the DAG.
class CounterRegistry {
 public:
  using Id = std::uint32_t;
  static constexpr Id kNoId = 0xffffffffu;
  static constexpr std::size_t kMaxScalars = 192;
  static constexpr std::size_t kMaxHistograms = 16;
  static constexpr std::size_t kHistBuckets = 32;

  explicit CounterRegistry(int workers);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Registers a monotonically increasing counter; returns its id.
  /// Registering an existing name returns the existing id.
  Id counter(const std::string& name) { return reg(name, Kind::kCounter); }
  /// Registers a gauge (merged across workers by maximum — high-water use).
  Id gauge(const std::string& name) { return reg(name, Kind::kGauge); }
  /// Registers a log2-bucketed histogram.
  Id histogram(const std::string& name);

  /// Id of a registered scalar/histogram, kNoId when absent.
  Id find(const std::string& name) const;

  int workers() const { return static_cast<int>(shards_.size()); }

  /// Adds to a counter on the given worker shard.  No-op when disabled.
  void add(int worker, Id id, std::uint64_t delta = 1) {
    if (!enabled()) return;
    shard(worker).scalars[id].fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raises a gauge to at least `value` on the given worker shard.
  void gauge_max(int worker, Id id, std::uint64_t value) {
    if (!enabled()) return;
    auto& g = shard(worker).scalars[id];
    std::uint64_t cur = g.load(std::memory_order_relaxed);
    while (cur < value &&
           !g.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  /// Records one histogram observation on the given worker shard.
  ///
  /// `count` is updated last, with release: a snapshot that acquire-reads
  /// a shard's count therefore also sees the bucket and sum updates of
  /// every counted observation, so snapshots never report a count whose
  /// observations are missing from sum/buckets.  rtcheck mutation point:
  /// the pre-fix buckets/count/sum order lets a concurrent snapshot see
  /// count raised while sum still lags (counters.snapshot_consistency).
  void observe(int worker, Id id, std::uint64_t value) {
    if (!enabled()) return;
    auto& h = shard(worker).hists[id];
    const bool count_early = rt_mutation(Mutation::kCountersCountEarly);
    hooked_fetch_add(h.buckets[bucket_of(value)], 1,
                     std::memory_order_relaxed);
    if (count_early) {
      hooked_fetch_add(h.count, 1, std::memory_order_relaxed);
    }
    hooked_fetch_add(h.sum, value, std::memory_order_relaxed);
    if (!count_early) {
      hooked_fetch_add(h.count, 1, std::memory_order_release);
    }
  }

  CounterSnapshot snapshot() const;
  /// Zeroes every shard (registrations are kept).
  void clear();

  /// log2 bucket index of a value (bucket 0 holds 0 and 1).
  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v > 1 && b + 1 < kHistBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge };

  struct HistShard {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kMaxScalars> scalars{};
    std::array<HistShard, kMaxHistograms> hists{};
  };

  Id reg(const std::string& name, Kind kind);

  /// Out-of-range worker ids (main thread, sim event loop) fold onto shard
  /// 0 — updates are atomic, so sharing a shard is merely less parallel.
  Shard& shard(int worker) {
    const auto w = static_cast<std::size_t>(worker);
    return *shards_[w < shards_.size() ? w : 0];
  }

  std::atomic<bool> enabled_{false};
  std::vector<std::string> scalar_names_;
  std::vector<Kind> scalar_kinds_;
  std::vector<std::string> hist_names_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace amtfmm
