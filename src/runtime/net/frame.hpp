#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace amtfmm::net {

/// Thrown for transport-level failures: bootstrap timeouts, peer death
/// during an active drain, malformed byte streams.  Distinct from
/// config_error (user mistakes) and AMTFMM_ASSERT (internal invariants):
/// a remote process dying is an environmental fault the caller may want
/// to report cleanly rather than abort on.
class net_error : public std::runtime_error {
 public:
  explicit net_error(const std::string& what) : std::runtime_error(what) {}
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes.
/// Table-driven, dependency-free; validates frame headers so a corrupted
/// or desynchronized stream fails loudly instead of being interpreted.
std::uint32_t crc32(const void* data, std::size_t n);

inline constexpr std::uint32_t kFrameMagic = 0x414d4650u;  // "PFMA" LE

/// Upper bound on one frame's payload; a header announcing more is
/// malformed by definition (protects the decoder from hostile lengths —
/// a batch near this size would mean the coalescer buffered a gigabyte).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

enum class FrameKind : std::uint8_t {
  kBatch = 1,      ///< payload: one encoded WireBatch
  kControl = 2,    ///< payload: one ControlMsg
  kTelemetry = 3,  ///< payload: opaque telemetry sample (see telemetry.hpp)
};

/// Fixed 16-byte header preceding every frame on a connection.  The CRC
/// covers the first 12 header bytes, so header corruption — including a
/// desynchronized stream making random bytes look like a header — is
/// detected before `payload_bytes` is trusted.
struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint8_t kind = 0;
  std::uint8_t flags = 0;  ///< reserved, must be 0
  std::uint16_t reserved = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t crc = 0;  ///< crc32 of the 12 bytes above
};
static_assert(sizeof(FrameHeader) == 16);

/// Fixed-size control message: connection handshake plus the distributed
/// termination protocol (see DESIGN.md §5).  a/b/c are type-specific.
enum class ControlType : std::uint8_t {
  kHello = 1,      ///< handshake: `rank` identifies the connecting peer
  kProbe = 2,      ///< coordinator probe: a = round id
  kAck = 3,        ///< answer: a = round, b = parcels sent, c = received
  kTerminate = 4,  ///< coordinator decision: a = drain epoch (1-based)
  kGoodbye = 5,    ///< announced close: the following EOF is not a failure
  kPing = 6,       ///< clock sync probe: a = sample id, b = sender steady ns
  kPong = 7,       ///< clock sync reply: a/b echoed, c = replier steady ns
};

struct ControlMsg {
  std::uint8_t type = 0;
  std::uint8_t pad = 0;
  std::uint16_t reserved = 0;
  std::uint32_t rank = 0;  ///< sender rank
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};
static_assert(sizeof(ControlMsg) == 32);

/// One parcel inside a batch frame: the destination handler kind plus the
/// serialized payload.  The payload size IS the parcel's logical
/// wire-byte count (what the sender passed to Executor::send), so
/// `wire_bytes == bytes_sent` stays exact over sockets; framing overhead
/// is accounted separately under net.* counters.
struct WireParcel {
  std::uint8_t kind = 0;
  bool high = false;
  std::vector<std::byte> payload;
};

/// A coalesced ParcelBatch in transit form: everything but the closures,
/// which the destination rebuilds from each parcel's handler kind.
struct WireBatch {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t seq = 0;    ///< per-(src,dst) sequence (coalesced batches)
  std::uint8_t reason = 0;  ///< FlushReason of the flush that produced it
  bool any_high = false;
  /// False for the coalescing-off single-parcel path: no destination
  /// re-sequencing (mirrors the in-process executors' semantics).
  bool coalesced = true;
  std::vector<WireParcel> parcels;

  /// Summed parcel payload bytes (the batch's logical wire bytes).
  std::size_t payload_bytes() const;
};

/// Encodes a complete frame (header + payload) ready for the socket.
std::vector<std::byte> encode_frame(FrameKind kind,
                                    std::span<const std::byte> payload);
std::vector<std::byte> encode_batch_frame(const WireBatch& b);
std::vector<std::byte> encode_control_frame(const ControlMsg& m);

/// Decodes a batch-frame payload.  Returns nullopt (with *err set when
/// non-null) on any malformed or truncated structure; every field is
/// bounds-checked before use, so hostile input cannot read out of range.
std::optional<WireBatch> decode_batch(std::span<const std::byte> payload,
                                      std::string* err);
std::optional<ControlMsg> decode_control(std::span<const std::byte> payload,
                                         std::string* err);

/// Incremental frame reassembly over a byte stream delivered in arbitrary
/// chunks — partial reads are the normal case on a socket.  feed()
/// appends raw bytes; next() yields complete frames as they close.  A
/// malformed header (bad magic, bad CRC, oversized payload, unknown kind,
/// nonzero flags) moves the decoder into a sticky error state: a stream
/// that lost framing cannot be trusted again, the connection must die.
class FrameDecoder {
 public:
  struct Frame {
    FrameKind kind;
    std::vector<std::byte> payload;
  };

  void feed(const std::byte* data, std::size_t n);
  /// The next complete frame, or nullopt (need more bytes / failed()).
  std::optional<Frame> next();

  bool failed() const { return !error_.empty(); }
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  std::string error_;
};

}  // namespace amtfmm::net
