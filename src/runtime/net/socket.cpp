// net-ok: this file is the single home of raw socket/poll syscalls; the
// lint_invariants.py net rule confines them to src/runtime/net.
#include "runtime/net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/net/frame.hpp"  // net_error
#include "support/error.hpp"

namespace amtfmm::net {

namespace {

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  int f = fd_;
  fd_ = -1;
  return f;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw net_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw net_error(errno_text("socket(AF_UNIX)"));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw net_error(errno_text("bind(" + path + ")"));
  }
  if (::listen(fd.get(), 64) != 0) throw net_error(errno_text("listen"));
  return fd;
}

Fd listen_tcp_loopback(int* port) {
  AMTFMM_ASSERT(port != nullptr);
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw net_error(errno_text("socket(AF_INET)"));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned ephemeral port
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw net_error(errno_text("bind(127.0.0.1)"));
  }
  if (::listen(fd.get(), 64) != 0) throw net_error(errno_text("listen"));
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw net_error(errno_text("getsockname"));
  }
  *port = static_cast<int>(ntohs(addr.sin_port));
  return fd;
}

Fd try_connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw net_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw net_error(errno_text("socket(AF_UNIX)"));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Fd();  // peer not listening yet; bootstrap retries
  }
  return fd;
}

Fd try_connect_tcp_loopback(int port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw net_error(errno_text("socket(AF_INET)"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Fd();
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Fd accept_conn(const Fd& listener) {
  int f = ::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC);
  if (f < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return Fd();
    }
    throw net_error(errno_text("accept"));
  }
  Fd fd(f);
  // Harmless on Unix-domain sockets (fails with ENOPROTOOPT, ignored).
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void set_nonblocking(const Fd& fd) {
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) < 0) {
    throw net_error(errno_text("fcntl(O_NONBLOCK)"));
  }
}

IoResult read_some(const Fd& fd, void* buf, std::size_t n) {
  IoResult r;
  for (;;) {
    ssize_t got = ::recv(fd.get(), buf, n, 0);
    if (got > 0) {
      r.bytes = static_cast<std::size_t>(got);
      return r;
    }
    if (got == 0) {
      r.closed = true;
      return r;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return r;
    if (errno == ECONNRESET) {
      r.closed = true;
      return r;
    }
    r.error = errno_text("recv");
    return r;
  }
}

IoResult write_some(const Fd& fd, const void* buf, std::size_t n) {
  IoResult r;
  for (;;) {
    // MSG_NOSIGNAL: a dying peer surfaces as EPIPE, not a fatal SIGPIPE.
    ssize_t put = ::send(fd.get(), buf, n, MSG_NOSIGNAL);
    if (put >= 0) {
      r.bytes = static_cast<std::size_t>(put);
      return r;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return r;
    if (errno == EPIPE || errno == ECONNRESET) {
      r.closed = true;
      return r;
    }
    r.error = errno_text("send");
    return r;
  }
}

WakePipe make_wake_pipe() {
  int p[2];
  if (::pipe2(p, O_CLOEXEC | O_NONBLOCK) != 0) {
    throw net_error(errno_text("pipe2"));
  }
  WakePipe w;
  w.rx = Fd(p[0]);
  w.tx = Fd(p[1]);
  return w;
}

void poke(const WakePipe& p) {
  const char b = 1;
  // EAGAIN (pipe full) is fine: a pending byte already guarantees a wake.
  (void)!::write(p.tx.get(), &b, 1);
}

void drain(const WakePipe& p) {
  char buf[64];
  while (::read(p.rx.get(), buf, sizeof(buf)) > 0) {
  }
}

std::vector<std::size_t> poll_ready(const std::vector<int>& fds,
                                    const std::vector<bool>& want_write,
                                    int timeout_ms) {
  AMTFMM_ASSERT(fds.size() == want_write.size());
  std::vector<pollfd> pfds(fds.size());
  for (std::size_t i = 0; i < fds.size(); ++i) {
    pfds[i].fd = fds[i];
    pfds[i].events = POLLIN;
    if (want_write[i]) pfds[i].events |= POLLOUT;
    pfds[i].revents = 0;
  }
  int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  std::vector<std::size_t> ready;
  if (n <= 0) return ready;  // timeout or EINTR: caller just re-polls
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    if (pfds[i].revents != 0) ready.push_back(i);
  }
  return ready;
}

}  // namespace amtfmm::net
