// net-ok: frame codec is pure byte manipulation (no sockets), but lives in
// src/runtime/net as part of the transport layer.
#include "runtime/net/frame.hpp"

#include <array>
#include <cstring>

namespace amtfmm::net {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

/// Little-endian field access.  The codec reads/writes through memcpy on
/// explicitly laid-out offsets rather than casting structs, so it is
/// byte-order and padding safe on any platform we build for.
template <typename T>
T load_le(const std::byte* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void store_le(std::byte* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

// Batch payload layout (all little-endian):
//   BatchHeader (32 bytes):
//     u32 src, u32 dst, u64 seq, u32 parcel_count,
//     u8 any_high, u8 reason, u8 coalesced, u8 pad, u64 payload_bytes
//   then per parcel:
//     u32 bytes, u8 kind, u8 high, u16 reserved, then `bytes` of payload
constexpr std::size_t kBatchHeaderBytes = 32;
constexpr std::size_t kParcelHeaderBytes = 8;

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::size_t WireBatch::payload_bytes() const {
  std::size_t n = 0;
  for (const auto& p : parcels) n += p.payload.size();
  return n;
}

std::vector<std::byte> encode_frame(FrameKind kind,
                                    std::span<const std::byte> payload) {
  if (payload.size() > kMaxFramePayload) {
    throw net_error("encode_frame: payload exceeds kMaxFramePayload");
  }
  std::vector<std::byte> out(sizeof(FrameHeader) + payload.size());
  std::byte* h = out.data();
  store_le<std::uint32_t>(h + 0, kFrameMagic);
  store_le<std::uint8_t>(h + 4, static_cast<std::uint8_t>(kind));
  store_le<std::uint8_t>(h + 5, 0);   // flags
  store_le<std::uint16_t>(h + 6, 0);  // reserved
  store_le<std::uint32_t>(h + 8, static_cast<std::uint32_t>(payload.size()));
  store_le<std::uint32_t>(h + 12, crc32(h, 12));
  if (!payload.empty()) {
    std::memcpy(out.data() + sizeof(FrameHeader), payload.data(),
                payload.size());
  }
  return out;
}

std::vector<std::byte> encode_batch_frame(const WireBatch& b) {
  std::size_t body = kBatchHeaderBytes;
  for (const auto& p : b.parcels) body += kParcelHeaderBytes + p.payload.size();
  std::vector<std::byte> payload(body);
  std::byte* q = payload.data();
  store_le<std::uint32_t>(q + 0, b.src);
  store_le<std::uint32_t>(q + 4, b.dst);
  store_le<std::uint64_t>(q + 8, b.seq);
  store_le<std::uint32_t>(q + 16,
                          static_cast<std::uint32_t>(b.parcels.size()));
  store_le<std::uint8_t>(q + 20, b.any_high ? 1 : 0);
  store_le<std::uint8_t>(q + 21, b.reason);
  store_le<std::uint8_t>(q + 22, b.coalesced ? 1 : 0);
  store_le<std::uint8_t>(q + 23, 0);
  store_le<std::uint64_t>(q + 24,
                          static_cast<std::uint64_t>(b.payload_bytes()));
  q += kBatchHeaderBytes;
  for (const auto& p : b.parcels) {
    store_le<std::uint32_t>(q + 0,
                            static_cast<std::uint32_t>(p.payload.size()));
    store_le<std::uint8_t>(q + 4, p.kind);
    store_le<std::uint8_t>(q + 5, p.high ? 1 : 0);
    store_le<std::uint16_t>(q + 6, 0);
    q += kParcelHeaderBytes;
    if (!p.payload.empty()) {
      std::memcpy(q, p.payload.data(), p.payload.size());
      q += p.payload.size();
    }
  }
  return encode_frame(FrameKind::kBatch, payload);
}

std::vector<std::byte> encode_control_frame(const ControlMsg& m) {
  std::vector<std::byte> payload(sizeof(ControlMsg));
  std::byte* q = payload.data();
  store_le<std::uint8_t>(q + 0, m.type);
  store_le<std::uint8_t>(q + 1, 0);
  store_le<std::uint16_t>(q + 2, 0);
  store_le<std::uint32_t>(q + 4, m.rank);
  store_le<std::uint64_t>(q + 8, m.a);
  store_le<std::uint64_t>(q + 16, m.b);
  store_le<std::uint64_t>(q + 24, m.c);
  return encode_frame(FrameKind::kControl, payload);
}

std::optional<WireBatch> decode_batch(std::span<const std::byte> payload,
                                      std::string* err) {
  auto fail = [&](const char* why) -> std::optional<WireBatch> {
    if (err) *err = why;
    return std::nullopt;
  };
  if (payload.size() < kBatchHeaderBytes) return fail("batch: short header");
  const std::byte* q = payload.data();
  WireBatch b;
  b.src = load_le<std::uint32_t>(q + 0);
  b.dst = load_le<std::uint32_t>(q + 4);
  b.seq = load_le<std::uint64_t>(q + 8);
  const std::uint32_t count = load_le<std::uint32_t>(q + 16);
  b.any_high = load_le<std::uint8_t>(q + 20) != 0;
  b.reason = load_le<std::uint8_t>(q + 21);
  b.coalesced = load_le<std::uint8_t>(q + 22) != 0;
  const std::uint64_t declared = load_le<std::uint64_t>(q + 24);
  // Each parcel needs at least its 8-byte header, so `count` is bounded by
  // the bytes actually present — rejects hostile counts before reserve().
  if (count > (payload.size() - kBatchHeaderBytes) / kParcelHeaderBytes) {
    return fail("batch: parcel count exceeds payload");
  }
  b.parcels.reserve(count);
  std::size_t off = kBatchHeaderBytes;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (payload.size() - off < kParcelHeaderBytes) {
      return fail("batch: truncated parcel header");
    }
    const std::uint32_t nbytes = load_le<std::uint32_t>(q + off);
    WireParcel p;
    p.kind = load_le<std::uint8_t>(q + off + 4);
    p.high = load_le<std::uint8_t>(q + off + 5) != 0;
    off += kParcelHeaderBytes;
    if (payload.size() - off < nbytes) {
      return fail("batch: truncated parcel payload");
    }
    p.payload.assign(q + off, q + off + nbytes);
    off += nbytes;
    total += nbytes;
    b.parcels.push_back(std::move(p));
  }
  if (off != payload.size()) return fail("batch: trailing garbage");
  if (total != declared) return fail("batch: payload_bytes mismatch");
  return b;
}

std::optional<ControlMsg> decode_control(std::span<const std::byte> payload,
                                         std::string* err) {
  if (payload.size() != sizeof(ControlMsg)) {
    if (err) *err = "control: wrong size";
    return std::nullopt;
  }
  const std::byte* q = payload.data();
  ControlMsg m;
  m.type = load_le<std::uint8_t>(q + 0);
  m.rank = load_le<std::uint32_t>(q + 4);
  m.a = load_le<std::uint64_t>(q + 8);
  m.b = load_le<std::uint64_t>(q + 16);
  m.c = load_le<std::uint64_t>(q + 24);
  if (m.type < static_cast<std::uint8_t>(ControlType::kHello) ||
      m.type > static_cast<std::uint8_t>(ControlType::kPong)) {
    if (err) *err = "control: unknown type";
    return std::nullopt;
  }
  return m;
}

void FrameDecoder::feed(const std::byte* data, std::size_t n) {
  if (failed() || n == 0) return;
  // Compact once the consumed prefix dominates, keeping feed() amortized
  // O(n) without re-copying the tail on every frame.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<FrameDecoder::Frame> FrameDecoder::next() {
  if (failed()) return std::nullopt;
  if (buffered() < sizeof(FrameHeader)) return std::nullopt;
  const std::byte* h = buf_.data() + pos_;
  const std::uint32_t magic = [&] {
    std::uint32_t v;
    std::memcpy(&v, h, 4);
    return v;
  }();
  if (magic != kFrameMagic) {
    error_ = "frame: bad magic";
    return std::nullopt;
  }
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, h + 12, 4);
  if (stored_crc != crc32(h, 12)) {
    error_ = "frame: header crc mismatch";
    return std::nullopt;
  }
  const auto kind = static_cast<std::uint8_t>(h[4]);
  const auto flags = static_cast<std::uint8_t>(h[5]);
  std::uint32_t payload_bytes;
  std::memcpy(&payload_bytes, h + 8, 4);
  if (kind != static_cast<std::uint8_t>(FrameKind::kBatch) &&
      kind != static_cast<std::uint8_t>(FrameKind::kControl) &&
      kind != static_cast<std::uint8_t>(FrameKind::kTelemetry)) {
    error_ = "frame: unknown kind";
    return std::nullopt;
  }
  if (flags != 0) {
    error_ = "frame: nonzero flags";
    return std::nullopt;
  }
  if (payload_bytes > kMaxFramePayload) {
    error_ = "frame: oversized payload";
    return std::nullopt;
  }
  if (buffered() < sizeof(FrameHeader) + payload_bytes) return std::nullopt;
  Frame f;
  f.kind = static_cast<FrameKind>(kind);
  const std::byte* p = h + sizeof(FrameHeader);
  f.payload.assign(p, p + payload_bytes);
  pos_ += sizeof(FrameHeader) + payload_bytes;
  return f;
}

}  // namespace amtfmm::net
