#include "runtime/net/transport.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace amtfmm::net {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string unix_path(const NetConfig& cfg, std::uint32_t rank) {
  return cfg.dir + "/sock." + std::to_string(rank);
}

std::string port_path(const NetConfig& cfg, std::uint32_t rank) {
  return cfg.dir + "/port." + std::to_string(rank);
}

/// Publishes this rank's TCP port.  Write-to-temp + rename so a peer
/// never reads a half-written file.
void publish_port(const NetConfig& cfg, int port) {
  const std::string final_path = port_path(cfg, cfg.rank);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path);
    if (!out) throw net_error("cannot write " + tmp_path);
    out << port << "\n";
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw net_error("cannot publish " + final_path);
  }
}

std::optional<int> read_port(const NetConfig& cfg, std::uint32_t rank) {
  std::ifstream in(port_path(cfg, rank));
  if (!in) return std::nullopt;
  int port = 0;
  in >> port;
  if (!in || port <= 0 || port > 65535) return std::nullopt;
  return port;
}

/// Blocking write of a whole buffer during bootstrap (sockets are still
/// blocking there, so a zero-byte result means EAGAIN cannot happen).
void write_all(const Fd& fd, const std::byte* p, std::size_t n) {
  while (n > 0) {
    IoResult r = write_some(fd, p, n);
    if (!r.ok()) throw net_error("bootstrap write: " + r.error);
    if (r.closed) throw net_error("bootstrap write: peer closed");
    AMTFMM_ASSERT(r.bytes > 0);
    p += r.bytes;
    n -= r.bytes;
  }
}

}  // namespace

std::optional<NetConfig> net_config_from_env() {
  const char* rank_s = std::getenv("AMTFMM_NET_RANK");
  if (rank_s == nullptr) return std::nullopt;
  NetConfig cfg;
  cfg.rank = static_cast<std::uint32_t>(std::atoi(rank_s));
  const char* size_s = std::getenv("AMTFMM_NET_SIZE");
  cfg.world = size_s ? static_cast<std::uint32_t>(std::atoi(size_s)) : 1;
  const char* kind_s = std::getenv("AMTFMM_NET_TRANSPORT");
  if (kind_s != nullptr && std::string(kind_s) == "tcp") {
    cfg.kind = TransportKind::kTcp;
  }
  const char* dir_s = std::getenv("AMTFMM_NET_DIR");
  cfg.dir = dir_s ? dir_s : ".";
  if (const char* w = std::getenv("AMTFMM_NET_WINDOW")) {
    cfg.window_bytes = static_cast<std::size_t>(std::atoll(w));
    if (cfg.window_bytes == 0) cfg.window_bytes = 1;
  }
  if (cfg.world == 0 || cfg.rank >= cfg.world) {
    throw net_error("AMTFMM_NET_RANK/SIZE inconsistent");
  }
  return cfg;
}

NetTransport::NetTransport(NetConfig cfg, BatchFn on_batch,
                           ControlFn on_control, FailFn on_failure)
    : cfg_(std::move(cfg)),
      on_batch_(std::move(on_batch)),
      on_control_(std::move(on_control)),
      on_failure_(std::move(on_failure)) {
  AMTFMM_ASSERT(cfg_.world >= 1 && cfg_.rank < cfg_.world);
}

NetTransport::~NetTransport() { stop(); }

Fd NetTransport::connect_with_retry(std::uint32_t peer, double deadline) {
  for (;;) {
    Fd fd;
    if (cfg_.kind == TransportKind::kUnix) {
      fd = try_connect_unix(unix_path(cfg_, peer));
    } else if (auto port = read_port(cfg_, peer)) {
      fd = try_connect_tcp_loopback(*port);
    }
    if (fd.valid()) return fd;
    if (steady_seconds() > deadline) {
      throw net_error("rank " + std::to_string(cfg_.rank) +
                      ": timed out connecting to rank " +
                      std::to_string(peer));
    }
    sleep_ms(2);
  }
}

Fd NetTransport::accept_with_deadline(double deadline) {
  for (;;) {
    auto ready = poll_ready({listener_.get()}, {false}, 100);
    if (!ready.empty()) {
      Fd c = accept_conn(listener_);
      if (c.valid()) return c;
    }
    if (steady_seconds() > deadline) {
      throw net_error("rank " + std::to_string(cfg_.rank) +
                      ": timed out accepting peer connections");
    }
  }
}

void NetTransport::start() {
  AMTFMM_ASSERT(!started_);
  started_ = true;
  if (cfg_.world == 1) return;  // no peers, no progress engine

  peers_.resize(cfg_.world);
  {
    SyncLockGuard lk(mu_);
    outboxes_.assign(cfg_.world, {});
    peer_closed_.assign(cfg_.world, 0);
  }
  if (cfg_.kind == TransportKind::kUnix) {
    listener_ = listen_unix(unix_path(cfg_, cfg_.rank));
  } else {
    int port = 0;
    listener_ = listen_tcp_loopback(&port);
    publish_port(cfg_, port);
  }

  const double deadline = steady_seconds() + cfg_.connect_timeout_s;

  // Mesh protocol: every rank connects to all lower ranks and accepts
  // from all higher ones — acyclic, so bootstrap cannot deadlock.  The
  // connector introduces itself with one kHello frame; the acceptor
  // learns who arrived from it (accept order is nondeterministic).
  for (std::uint32_t r = 0; r < cfg_.rank; ++r) {
    Fd fd = connect_with_retry(r, deadline);
    ControlMsg hello;
    hello.type = static_cast<std::uint8_t>(ControlType::kHello);
    hello.rank = cfg_.rank;
    auto frame = encode_control_frame(hello);
    write_all(fd, frame.data(), frame.size());
    peers_[r].fd = std::move(fd);
  }
  for (std::uint32_t i = cfg_.rank + 1; i < cfg_.world; ++i) {
    Fd fd = accept_with_deadline(deadline);
    // Read exactly the hello frame (blocking socket).
    FrameDecoder dec;
    std::optional<FrameDecoder::Frame> f;
    std::byte buf[256];
    while (!(f = dec.next())) {
      if (dec.failed()) throw net_error("bootstrap: " + dec.error());
      IoResult r = read_some(fd, buf, sizeof(buf));
      if (!r.ok()) throw net_error("bootstrap read: " + r.error);
      if (r.closed) throw net_error("bootstrap read: peer closed");
      if (r.bytes == 0) continue;  // blocking socket: spurious wake only
      dec.feed(buf, r.bytes);
    }
    std::string err;
    auto hello = decode_control(f->payload, &err);
    if (!hello ||
        hello->type != static_cast<std::uint8_t>(ControlType::kHello)) {
      throw net_error("bootstrap: bad hello (" + err + ")");
    }
    if (hello->rank >= cfg_.world || hello->rank == cfg_.rank ||
        peers_[hello->rank].fd.valid()) {
      throw net_error("bootstrap: duplicate or out-of-range hello rank");
    }
    AMTFMM_ASSERT(dec.buffered() == 0);  // nothing follows hello yet
    peers_[hello->rank].fd = std::move(fd);
  }

  for (std::uint32_t r = 0; r < cfg_.world; ++r) {
    if (r == cfg_.rank) continue;
    AMTFMM_ASSERT(peers_[r].fd.valid());
    set_nonblocking(peers_[r].fd);
  }
  wake_ = make_wake_pipe();
  // thread-ok: the progress engine is the transport's dedicated
  // poll/progress thread (explicit progress, never borrowed from workers).
  progress_ = std::thread([this] { progress_main(); });
}

bool NetTransport::post_batch(std::uint32_t dst, const WireBatch& b) {
  AMTFMM_ASSERT(dst < cfg_.world && dst != cfg_.rank);
  OutMsg m;
  m.bytes = encode_batch_frame(b);
  m.counts_window = true;
  const std::size_t sz = m.bytes.size();
  {
    SyncUniqueLock lk(mu_);
    // Window admission: block while the frame would overflow the window,
    // except that an empty window always admits one frame (a single
    // outsized batch must not deadlock).  The progress thread only ever
    // shrinks outstanding_bytes_, so this wait always terminates unless
    // the transport fails or stops — both of which broadcast.
    bool stalled = false;
    double t0 = 0.0;
    while (!failed_.load(std::memory_order_relaxed) &&
           !stop_requested_.load(std::memory_order_relaxed) &&
           outstanding_bytes_ > 0 &&
           outstanding_bytes_ + sz > cfg_.window_bytes) {
      if (!stalled) {
        stalled = true;
        t0 = steady_seconds();
        stats_.backpressure_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      window_cv_.wait(lk);
    }
    if (stalled) {
      stats_.backpressure_stall_us.fetch_add(
          static_cast<std::uint64_t>((steady_seconds() - t0) * 1e6),
          std::memory_order_relaxed);
    }
    if (failed_.load(std::memory_order_relaxed) ||
        stop_requested_.load(std::memory_order_relaxed)) {
      return false;  // dropped; drain() surfaces the failure
    }
    if (peer_closed_[dst] != 0) {
      // An orderly goodbye makes EOF benign, but batches still have
      // nowhere to go — epochs out of agreement is a protocol bug, and
      // failing beats wedging shutdown on an undeliverable frame.
      lk.unlock();
      fail("posting batch to rank " + std::to_string(dst) +
           " which already closed");
      return false;
    }
    outstanding_bytes_ += sz;
    stats_.inject_bytes_hwm.store(
        std::max(stats_.inject_bytes_hwm.load(std::memory_order_relaxed),
                 static_cast<std::uint64_t>(outstanding_bytes_)),
        std::memory_order_relaxed);
    outboxes_[dst].push_back(std::move(m));
    ++queued_msgs_;
    stats_.inject_depth_hwm.store(
        std::max(stats_.inject_depth_hwm.load(std::memory_order_relaxed),
                 static_cast<std::uint64_t>(queued_msgs_)),
        std::memory_order_relaxed);
  }
  poke(wake_);
  return true;
}

void NetTransport::post_control(std::uint32_t dst, const ControlMsg& m) {
  AMTFMM_ASSERT(dst < cfg_.world && dst != cfg_.rank);
  OutMsg out;
  out.bytes = encode_control_frame(m);
  {
    SyncLockGuard lk(mu_);
    if (failed_.load(std::memory_order_relaxed)) return;
    // A frame queued for a closed peer can never be written and would
    // wedge shutdown's outboxes_empty() check; the peer already left.
    if (peer_closed_[dst] != 0) return;
    outboxes_[dst].push_back(std::move(out));
    ++queued_msgs_;
  }
  stats_.control_msgs.fetch_add(1, std::memory_order_relaxed);
  poke(wake_);
}

void NetTransport::broadcast_control(const ControlMsg& m) {
  for (std::uint32_t r = 0; r < cfg_.world; ++r) {
    if (r != cfg_.rank) post_control(r, m);
  }
}

bool NetTransport::post_telemetry(std::uint32_t dst,
                                  std::span<const std::byte> payload) {
  AMTFMM_ASSERT(dst < cfg_.world && dst != cfg_.rank);
  OutMsg out;
  out.bytes = encode_frame(FrameKind::kTelemetry, payload);
  {
    SyncLockGuard lk(mu_);
    if (failed_.load(std::memory_order_relaxed) ||
        stop_requested_.load(std::memory_order_relaxed)) {
      return false;
    }
    if (peer_closed_[dst] != 0) return false;  // best-effort: drop sample
    outboxes_[dst].push_back(std::move(out));
    ++queued_msgs_;
  }
  stats_.telemetry_sent.fetch_add(1, std::memory_order_relaxed);
  poke(wake_);
  return true;
}

void NetTransport::set_on_telemetry(TelemetryFn fn) {
  SyncLockGuard lk(telem_mu_);
  on_telemetry_ = std::move(fn);
}

ClockSyncResult NetTransport::clock_sync(int rounds) {
  if (cfg_.world == 1 || cfg_.rank == 0) {
    // Rank 0 IS the reference timeline; nothing to estimate.
    SyncLockGuard lk(sync_mu_);
    sync_result_ = ClockSyncResult{};
    sync_result_.samples = 1;
    return sync_result_;
  }
  ClockSyncResult best;
  std::uint64_t best_rtt = ~0ull;
  for (int i = 0; i < rounds; ++i) {
    ControlMsg ping;
    ping.type = static_cast<std::uint8_t>(ControlType::kPing);
    ping.rank = cfg_.rank;
    ping.a = static_cast<std::uint64_t>(i + 1);
    const std::uint64_t t_send = steady_ns();
    ping.b = t_send;
    post_control(0, ping);
    SyncUniqueLock lk(sync_mu_);
    // Deadline loop instead of wait_for(pred): SyncCondVar has no
    // predicate overload (a predicate lambda defeats the thread-safety
    // analysis; see sync_hook.hpp).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    for (;;) {
      if ((sync_pong_valid_ && sync_pong_id_ == ping.a) ||
          failed_.load(std::memory_order_relaxed)) {
        break;
      }
      if (sync_cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
    const bool got = sync_pong_valid_ && sync_pong_id_ == ping.a;
    if (!got || failed_.load(std::memory_order_relaxed)) break;
    sync_pong_valid_ = false;
    const std::uint64_t t_recv = sync_pong_recv_;
    const std::uint64_t remote = sync_pong_remote_;
    lk.unlock();
    if (t_recv < t_send) continue;  // nonsense sample
    const std::uint64_t rtt = t_recv - t_send;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      // Midpoint estimate: remote stamped its clock ~RTT/2 after t_send.
      const double midpoint =
          (static_cast<double>(t_send) + static_cast<double>(t_recv)) / 2.0;
      best.offset_s = (midpoint - static_cast<double>(remote)) * 1e-9;
      best.uncertainty_s = static_cast<double>(rtt) / 2.0 * 1e-9;
    }
    ++best.samples;
  }
  SyncLockGuard lk(sync_mu_);
  sync_result_ = best;
  return best;
}

ClockSyncResult NetTransport::clock_offset() const {
  SyncLockGuard lk(sync_mu_);
  return sync_result_;
}

void NetTransport::allow_peer_close() {
  peer_close_ok_.store(true, std::memory_order_relaxed);
}

void NetTransport::stop() {
  if (!progress_.joinable()) return;
  // Announce the close before the sockets disappear.  Ranks finish their
  // final drain at different times; a peer that is still waiting for its
  // own terminate must not read our EOF as a death.  The goodbye rides
  // the same stream, so it is guaranteed to arrive first.
  if (!failed_.load(std::memory_order_relaxed)) {
    ControlMsg bye;
    bye.type = static_cast<std::uint8_t>(ControlType::kGoodbye);
    bye.rank = cfg_.rank;
    broadcast_control(bye);
  }
  stop_requested_.store(true, std::memory_order_relaxed);
  {
    SyncLockGuard lk(mu_);
    window_cv_.notify_all();
  }
  poke(wake_);
  progress_.join();
  for (auto& p : peers_) p.fd.reset();
  listener_.reset();
}

std::string NetTransport::failure_text() const {
  SyncLockGuard lk(mu_);
  return failure_;
}

void NetTransport::fail(const std::string& why) {
  bool first = false;
  {
    SyncLockGuard lk(mu_);
    if (!failed_.load(std::memory_order_relaxed)) {
      failed_.store(true, std::memory_order_relaxed);
      failure_ = why;
      first = true;
    }
    window_cv_.notify_all();
  }
  {
    SyncLockGuard lk(sync_mu_);
    sync_cv_.notify_all();  // clock_sync() must not outlive the mesh
  }
  if (first) {
    std::fprintf(stderr, "rank %u: NET FAIL: %s\n", cfg_.rank, why.c_str());
  }
  if (first && on_failure_) on_failure_(why);
}

bool NetTransport::outboxes_empty() const { return queued_msgs_ == 0; }

void NetTransport::progress_main() {
  std::vector<std::byte> rbuf(1u << 16);
  std::vector<int> fds;
  std::vector<bool> want_write;
  std::vector<std::uint32_t> idx_rank;
  for (;;) {
    fds.clear();
    want_write.clear();
    idx_rank.clear();
    fds.push_back(wake_.rx.get());
    want_write.push_back(false);
    idx_rank.push_back(cfg_.world);  // sentinel: the wake pipe
    bool any_queued = false;
    {
      SyncLockGuard lk(mu_);
      for (std::uint32_t r = 0; r < cfg_.world; ++r) {
        Peer& p = peers_[r];
        if (r == cfg_.rank || !p.fd.valid()) continue;
        fds.push_back(p.fd.get());
        want_write.push_back(!outboxes_[r].empty());
        idx_rank.push_back(r);
        any_queued = any_queued || !outboxes_[r].empty();
      }
      if (stop_requested_.load(std::memory_order_relaxed) &&
          (outboxes_empty() || failed_.load(std::memory_order_relaxed))) {
        return;  // clean shutdown: everything queued has been written
      }
    }
    auto ready = poll_ready(fds, want_write, 100);
    stats_.progress_iters.fetch_add(1, std::memory_order_relaxed);
    if (ready.empty()) {
      stats_.idle_polls.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    (void)any_queued;
    for (std::size_t i : ready) {
      if (idx_rank[i] == cfg_.world) {
        drain(wake_);
        continue;
      }
      const std::uint32_t r = idx_rank[i];
      if (peers_[r].fd.valid()) do_read(r, rbuf);
      if (peers_[r].fd.valid()) do_write(r);
    }
    // A wake for new outbound frames may race the poll: retry writes for
    // every peer with queued frames, not just poll-ready ones.
    for (std::uint32_t r = 0; r < cfg_.world; ++r) {
      if (r == cfg_.rank || !peers_[r].fd.valid()) continue;
      do_write(r);
    }
  }
}

void NetTransport::do_read(std::uint32_t rank, std::vector<std::byte>& buf) {
  Peer& p = peers_[rank];
  for (;;) {
    IoResult r = read_some(p.fd, buf.data(), buf.size());
    if (!r.ok()) {
      fail("recv from rank " + std::to_string(rank) + ": " + r.error);
      return;
    }
    if (r.bytes > 0) {
      stats_.wire_bytes_recvd.fetch_add(r.bytes, std::memory_order_relaxed);
      p.decoder.feed(buf.data(), r.bytes);
      while (auto f = p.decoder.next()) dispatch(rank, std::move(*f));
      if (p.decoder.failed()) {
        fail("stream from rank " + std::to_string(rank) + ": " +
             p.decoder.error());
        return;
      }
      continue;  // keep reading until EAGAIN
    }
    if (r.closed) {
      on_peer_closed(rank);
      return;
    }
    return;  // EAGAIN
  }
}

void NetTransport::on_peer_closed(std::uint32_t rank) {
  Peer& p = peers_[rank];
  p.fd.reset();
  p.write_off = 0;
  {
    // Frames queued for a dead peer can never be written; drop them so
    // shutdown's outboxes_empty() check still converges.  The closed
    // flag is set under the same critical section — posters read it
    // under mu_ before appending, so they can never observe "open" after
    // the outbox has been cleared.  (Thread-safety analysis caught the
    // old unlocked `closed = true` store racing post_batch's read.)
    SyncLockGuard lk(mu_);
    peer_closed_[rank] = 1;
    for (const OutMsg& m : outboxes_[rank]) {
      if (m.counts_window) outstanding_bytes_ -= m.bytes.size();
    }
    queued_msgs_ -= outboxes_[rank].size();
    outboxes_[rank].clear();
    window_cv_.notify_all();
  }
  if (!p.said_goodbye && !peer_close_ok_.load(std::memory_order_relaxed) &&
      !stop_requested_.load(std::memory_order_relaxed)) {
    fail("rank " + std::to_string(rank) +
         " closed its connection unexpectedly (peer died?)");
  }
}

void NetTransport::do_write(std::uint32_t rank) {
  Peer& p = peers_[rank];
  for (;;) {
    SyncUniqueLock lk(mu_);
    if (outboxes_[rank].empty()) return;
    // std::deque guarantees front() stays valid across concurrent
    // push_back from posters, and only this thread pops — so the write
    // syscall can run unlocked.  Deliberately NOT holding mu_ across the
    // send: a blocked socket would stall every poster on the window.
    OutMsg& m = outboxes_[rank].front();
    lk.unlock();
    IoResult r =
        write_some(p.fd, m.bytes.data() + p.write_off,
                   m.bytes.size() - p.write_off);
    if (!r.ok()) {
      fail("send to rank " + std::to_string(rank) + ": " + r.error);
      return;
    }
    if (r.closed) {
      on_peer_closed(rank);
      return;
    }
    if (r.bytes == 0) {  // EAGAIN mid-frame
      if (p.write_off > 0) {
        stats_.partial_writes.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    stats_.wire_bytes_sent.fetch_add(r.bytes, std::memory_order_relaxed);
    p.write_off += r.bytes;
    if (p.write_off < m.bytes.size()) continue;  // more of this frame
    stats_.msgs_sent.fetch_add(1, std::memory_order_relaxed);
    lk.lock();
    if (m.counts_window) {
      outstanding_bytes_ -= m.bytes.size();
      window_cv_.notify_all();
    }
    outboxes_[rank].pop_front();
    --queued_msgs_;
    p.write_off = 0;
  }
}

void NetTransport::dispatch(std::uint32_t rank, FrameDecoder::Frame&& f) {
  std::string err;
  if (f.kind == FrameKind::kBatch) {
    auto b = decode_batch(f.payload, &err);
    if (!b) {
      fail("batch from rank " + std::to_string(rank) + ": " + err);
      return;
    }
    stats_.msgs_recvd.fetch_add(1, std::memory_order_relaxed);
    if (on_batch_) on_batch_(std::move(*b));
    return;
  }
  if (f.kind == FrameKind::kTelemetry) {
    stats_.telemetry_recvd.fetch_add(1, std::memory_order_relaxed);
    TelemetryFn fn;
    {
      SyncLockGuard lk(telem_mu_);
      fn = on_telemetry_;  // copy: the call runs outside the lock
    }
    if (fn) fn(rank, std::move(f.payload));
    return;
  }
  auto m = decode_control(f.payload, &err);
  if (!m) {
    fail("control from rank " + std::to_string(rank) + ": " + err);
    return;
  }
  if (m->type == static_cast<std::uint8_t>(ControlType::kGoodbye)) {
    peers_[rank].said_goodbye = true;  // transport-internal, not forwarded
    return;
  }
  if (m->type == static_cast<std::uint8_t>(ControlType::kPing)) {
    // Transport-internal: stamp our steady clock and answer immediately
    // from the progress thread, keeping the echoed send timestamp intact.
    ControlMsg pong = *m;
    pong.type = static_cast<std::uint8_t>(ControlType::kPong);
    pong.rank = cfg_.rank;
    pong.c = steady_ns();
    post_control(rank, pong);
    return;
  }
  if (m->type == static_cast<std::uint8_t>(ControlType::kPong)) {
    SyncLockGuard lk(sync_mu_);
    sync_pong_id_ = m->a;
    sync_pong_remote_ = m->c;
    sync_pong_recv_ = steady_ns();
    sync_pong_valid_ = true;
    sync_cv_.notify_all();
    return;
  }
  if (on_control_) on_control_(*m);
}

}  // namespace amtfmm::net
