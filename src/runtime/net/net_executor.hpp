#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/executor.hpp"
#include "runtime/locality_runtime.hpp"
#include "runtime/net/transport.hpp"
#include "runtime/sync_hook.hpp"

namespace amtfmm::net {

/// Socket-locality executor: this process IS one locality (its rank in a
/// world of N processes); the other N-1 localities live in peer processes
/// reached through NetTransport.  The SPMD contract mirrors MPI: every
/// rank constructs the identical global problem, but only tasks whose
/// locality equals the local rank run here (locality_is_local()), and
/// work crosses processes exclusively as serialized parcels — Task::
/// net_kind + net_payload on the way out, a registered NetHandler on the
/// way in.  PR 4's no-pointer-crosses-a-locality guarantee is what makes
/// this a drop-in third substrate: the engine's parcels were already
/// fully serialized bytes.
///
/// Scheduling: a plain mutex/condvar worker pool over high/low FIFO
/// queues.  The in-process executors carry the work-stealing machinery;
/// here the interesting contention is the wire, so the pool stays simple
/// and idle workers double as the coalescer's deadline-flush agents.
///
/// Termination: drain() runs a coordinator/follower protocol over
/// control messages (rank 0 coordinates).  A rank is locally quiescent
/// when its pool is idle and its coalescing buffers are empty; the world
/// terminates when a probe round finds every rank quiescent with
/// globally matching sent==received parcel counts that are *identical to
/// the previous round* (two agreeing rounds make the counter snapshot a
/// consistent cut despite message latency).  drain() is re-armable:
/// post-evaluation gathers can send more parcels and drain again.
class NetExecutor final : public Executor {
 public:
  /// `cfg` describes this rank; `cores` is the local worker count.
  NetExecutor(const NetConfig& cfg, int cores, CoalesceConfig coalesce);
  ~NetExecutor() override;

  int num_localities() const override {
    return static_cast<int>(cfg_.world);
  }
  int cores_per_locality() const override { return cores_; }
  int current_locality() const override;
  bool locality_is_local(std::uint32_t loc) const override {
    return loc == cfg_.rank;
  }
  void register_net_handler(std::uint8_t kind, NetHandler h) override;
  void unregister_net_handler(std::uint8_t kind) override;
  void spawn(Task t) override;
  void send(std::uint32_t from, std::uint32_t to, std::size_t bytes,
            Task t) override;
  /// Runs to global quiescence (all ranks, termination protocol) and
  /// returns the wall-clock makespan.  Throws net_error if a peer died
  /// or the byte stream broke — never hangs on a dead mesh.
  double drain() override;
  double now() const override;
  TraceClock trace_clock() const override;

  std::uint32_t rank() const { return cfg_.rank; }
  std::uint32_t world() const { return cfg_.world; }
  const NetStats& net_stats() const { return transport_.stats(); }

  /// Startup clock-sync result against rank 0 (identity on rank 0).
  /// Measured once right after the mesh comes up; feeds trace metadata so
  /// merged multi-rank timelines can be offset-corrected.
  ClockSyncResult clock_sync_result() const { return clock_sync_; }

  /// Best-effort telemetry side channel (see NetTransport::post_telemetry
  /// — bypasses the injection window and all termination accounting).
  bool post_telemetry(std::uint32_t dst, std::span<const std::byte> payload) {
    if (cfg_.world == 1 || dst == cfg_.rank) return false;
    return transport_.post_telemetry(dst, payload);
  }
  /// Installs the telemetry receive callback (runs on the progress
  /// thread; must be cheap and non-blocking).  Callable any time.
  void set_on_telemetry(NetTransport::TelemetryFn fn);

 private:
  struct InOrder {
    SyncMutex mu;
    std::uint64_t expected GUARDED_BY(mu) = 0;
    bool running GUARDED_BY(mu) = false;
    std::map<std::uint64_t, WireBatch> ready GUARDED_BY(mu);
  };
  struct Ack {
    std::uint64_t round = 0;
    std::uint64_t sent = 0;
    std::uint64_t recvd = 0;
  };
  struct NetCounterIds {
    CounterRegistry::Id msgs_sent, msgs_recvd, wire_bytes_sent,
        wire_bytes_recvd, progress_iters, idle_polls, partial_writes,
        backpressure_stalls, backpressure_stall_us, control_msgs,
        termination_rounds, telemetry_sent, telemetry_recvd;  // counters
    CounterRegistry::Id inject_depth_hwm, inject_bytes_hwm;  // gauges
  };

  void worker_loop(int w);
  /// Serializes and posts one batch to its destination rank.  Counter
  /// ordering is load-bearing for termination: sent_parcels_ rises
  /// BEFORE the frame can possibly be received anywhere.
  void transmit(ParcelBatch b, bool coalesced);
  /// Progress-thread callbacks.
  void on_net_batch(WireBatch&& b);
  void on_net_control(const ControlMsg& m);
  void on_net_failure(const std::string& why);
  /// Worker-side execution of an arrived batch.
  void run_wire_batch(const WireBatch& b);
  void run_in_order(WireBatch b);
  NetHandler wait_handler(std::uint8_t kind);
  /// Idle-worker deadline flush; true if anything went out.
  bool flush_expired();
  /// One coordinator probe round; true when the world terminated.
  bool coordinate_round();
  /// Follower wait: answer probes while quiescent; true on terminate,
  /// false when new local work arrived.
  bool follower_wait();
  void throw_if_failed();
  /// Folds transport stats into the net.* registry counters (deltas, so
  /// repeated drains never double-count).
  void fold_net_counters();

  NetConfig cfg_;
  int cores_;
  std::chrono::steady_clock::time_point epoch_;
  NetTransport transport_;
  ClockSyncResult clock_sync_;  ///< measured once in the constructor

  // Worker pool (mu_ guards the queues and all termination state).
  mutable SyncMutex mu_;
  SyncCondVar work_cv_;   ///< workers: new task / stop
  SyncCondVar state_cv_;  ///< drain: quiescence + control
  std::deque<Task> high_ GUARDED_BY(mu_);
  std::deque<Task> low_ GUARDED_BY(mu_);
  /// Queued + running local tasks.
  std::int64_t outstanding_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;

  // Destination re-sequencing, one slot per source rank.
  std::vector<std::unique_ptr<InOrder>> inorder_;

  SyncMutex handlers_mu_;
  SyncCondVar handlers_cv_;
  std::array<NetHandler, 256> handlers_ GUARDED_BY(handlers_mu_);

  // Termination protocol state (under mu_; the annotations make the old
  // "guarded by mu_ unless noted" comment a compiler-checked contract).
  // relaxed-ok (both): monotone counters; every decision read happens
  // under mu_ with the two-round protocol supplying consistency.
  std::atomic<std::uint64_t> sent_parcels_{0};
  std::atomic<std::uint64_t> recvd_parcels_{0};
  /// Coordinator, per rank.
  std::vector<std::optional<Ack>> acks_ GUARDED_BY(mu_);
  bool prev_round_valid_ GUARDED_BY(mu_) = false;
  std::vector<Ack> prev_acks_ GUARDED_BY(mu_);
  Ack prev_self_ GUARDED_BY(mu_);
  std::uint64_t round_ GUARDED_BY(mu_) = 0;
  bool probe_pending_ GUARDED_BY(mu_) = false;
  std::uint64_t probe_round_ GUARDED_BY(mu_) = 0;
  /// Latest kTerminate received.
  std::uint64_t terminate_epoch_ GUARDED_BY(mu_) = 0;
  std::uint64_t drains_done_ GUARDED_BY(mu_) = 0;
  std::uint64_t term_rounds_stat_ GUARDED_BY(mu_) = 0;
  bool net_failed_ GUARDED_BY(mu_) = false;
  std::string net_failure_ GUARDED_BY(mu_);

  NetCounterIds nid_{};
  std::uint64_t folded_[13] = {};  ///< previously folded counter values
};

}  // namespace amtfmm::net
