#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace amtfmm::net {

/// RAII file descriptor.  Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset();

 private:
  int fd_ = -1;
};

/// Outcome of one non-blocking read/write attempt.  `closed` means the
/// peer shut the connection down (EOF on read, EPIPE/ECONNRESET on
/// write); `bytes == 0 && !closed && error.empty()` means EAGAIN.
struct IoResult {
  std::size_t bytes = 0;
  bool closed = false;
  std::string error;  ///< non-empty on a hard error (errno text)

  bool ok() const { return error.empty(); }
};

/// Binds and listens on a Unix-domain socket at `path` (unlinked first).
Fd listen_unix(const std::string& path);
/// Binds and listens on 127.0.0.1 with an ephemeral port; *port receives
/// the assigned port number.
Fd listen_tcp_loopback(int* port);

/// One non-blocking connect attempt; invalid Fd if the peer is not
/// listening yet (bootstrap retries around this).  The returned socket is
/// connected and blocking; callers flip it non-blocking afterwards.
Fd try_connect_unix(const std::string& path);
Fd try_connect_tcp_loopback(int port);

/// Accepts one pending connection; invalid Fd if none pending.
Fd accept_conn(const Fd& listener);

void set_nonblocking(const Fd& fd);

IoResult read_some(const Fd& fd, void* buf, std::size_t n);
IoResult write_some(const Fd& fd, const void* buf, std::size_t n);

/// poll(2) over the given fds for readability (and writability for the
/// fds listed in want_write).  Returns the subset of indices that are
/// ready (read-ready, write-ready, or error/hup — the caller's read will
/// surface which).  `timeout_ms < 0` blocks indefinitely.
std::vector<std::size_t> poll_ready(const std::vector<int>& fds,
                                    const std::vector<bool>& want_write,
                                    int timeout_ms);

/// Self-pipe for waking a poll loop from other threads.  Both ends are
/// non-blocking; poke() is async-signal-safe-grade cheap and idempotent
/// (a full pipe is already a pending wake).
struct WakePipe {
  Fd rx;
  Fd tx;
};
WakePipe make_wake_pipe();
void poke(const WakePipe& p);
/// Consumes all pending wake bytes from the read end.
void drain(const WakePipe& p);

}  // namespace amtfmm::net
