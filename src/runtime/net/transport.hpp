#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "runtime/net/frame.hpp"
#include "runtime/net/socket.hpp"
#include "runtime/sync_hook.hpp"

namespace amtfmm::net {

/// How peers reach each other on one host.
enum class TransportKind : std::uint8_t {
  kUnix,  ///< Unix-domain stream sockets under the bootstrap dir
  kTcp,   ///< TCP over 127.0.0.1, ports published via the bootstrap dir
};

/// Socket transport configuration, normally filled from the environment
/// that tools/amtfmm_launch exports (AMTFMM_NET_RANK / SIZE / TRANSPORT /
/// DIR / WINDOW).
struct NetConfig {
  std::uint32_t rank = 0;
  std::uint32_t world = 1;
  TransportKind kind = TransportKind::kUnix;
  /// Bootstrap rendezvous directory shared by all ranks: Unix socket
  /// paths (`sock.<rank>`) or published TCP ports (`port.<rank>`).
  std::string dir;
  /// Backpressure: max bytes of encoded frames accepted by post_batch()
  /// but not yet written to a socket.  Posting threads block above this.
  std::size_t window_bytes = 4u << 20;
  double connect_timeout_s = 30.0;
};

/// Reads AMTFMM_NET_* from the environment; nullopt when AMTFMM_NET_RANK
/// is unset (the process is not part of a launched world).
std::optional<NetConfig> net_config_from_env();

/// Raw transport statistics, exported as `net.*` counters by NetExecutor.
/// Plain relaxed atomics: every field is an independent monotone count or
/// high-water mark, read for diagnostics only.
struct NetStats {
  std::atomic<std::uint64_t> msgs_sent{0};    ///< frames fully written
  std::atomic<std::uint64_t> msgs_recvd{0};   ///< frames fully decoded
  std::atomic<std::uint64_t> wire_bytes_sent{0};   ///< raw socket bytes
  std::atomic<std::uint64_t> wire_bytes_recvd{0};  ///< (incl. framing)
  std::atomic<std::uint64_t> progress_iters{0};
  std::atomic<std::uint64_t> idle_polls{0};
  std::atomic<std::uint64_t> partial_writes{0};
  std::atomic<std::uint64_t> inject_depth_hwm{0};  ///< queued frames
  std::atomic<std::uint64_t> inject_bytes_hwm{0};  ///< outstanding bytes
  std::atomic<std::uint64_t> backpressure_stalls{0};
  std::atomic<std::uint64_t> backpressure_stall_us{0};
  std::atomic<std::uint64_t> control_msgs{0};     ///< control frames sent
  std::atomic<std::uint64_t> telemetry_sent{0};   ///< telemetry frames sent
  std::atomic<std::uint64_t> telemetry_recvd{0};  ///< telemetry frames recvd
};

/// Result of the startup clock-sync exchange against rank 0: the
/// estimated steady-clock offset of THIS rank relative to rank 0
/// (rank0_steady ≈ local_steady - offset_s), with a conservative error
/// bound.  Midpoint estimation over ping/pong round trips: each sample
/// gives offset = remote_ts - (t_send + t_recv)/2 with error ≤ RTT/2;
/// the sample with the smallest RTT wins.
struct ClockSyncResult {
  double offset_s = 0.0;       ///< local steady clock minus rank 0's
  double uncertainty_s = 0.0;  ///< ≤ best-sample RTT / 2
  std::uint32_t samples = 0;   ///< round trips that produced an estimate
};

/// Point-to-point socket transport for one locality: a full mesh of
/// stream connections to every peer rank plus one progress-engine thread
/// running an explicit poll/progress loop (the "explicit progress" that
/// PAPERS.md's HPX+LCI study identifies as load-bearing for AMT runtimes
/// — progress never depends on a worker happening to enter the library).
///
/// Threading contract:
///  - start() bootstraps the mesh synchronously, then launches the
///    progress thread; callbacks (on_batch / on_control / on_failure)
///    run ON the progress thread and must not block on transport state.
///  - post_batch()/post_control() are thread safe (worker threads).
///  - post_batch() implements injection backpressure: it blocks while
///    the outstanding-encoded-bytes window is full, so a fast producer
///    cannot buffer unbounded frames.  The progress thread itself never
///    blocks on the window (it only shrinks it), which makes the
///    backpressure deadlock-free: the window always drains.
///  - Control frames bypass the window: the termination protocol must
///    make progress even when the window is saturated with batches.
///
/// Failure model: a peer closing its connection before allow_peer_close()
/// — or any malformed byte stream — moves the transport into a sticky
/// failed state, unblocks all posters (their frames are dropped), and
/// invokes on_failure once.  The owner surfaces the error from drain();
/// quiescence is never waited on a dead mesh.
class NetTransport {
 public:
  using BatchFn = std::function<void(WireBatch&&)>;
  using ControlFn = std::function<void(const ControlMsg&)>;
  using FailFn = std::function<void(const std::string&)>;
  using TelemetryFn =
      std::function<void(std::uint32_t src, std::vector<std::byte>&&)>;

  NetTransport(NetConfig cfg, BatchFn on_batch, ControlFn on_control,
               FailFn on_failure);
  ~NetTransport();

  NetTransport(const NetTransport&) = delete;
  NetTransport& operator=(const NetTransport&) = delete;

  /// Bootstraps the full mesh (listen; connect to lower ranks with retry;
  /// accept from higher ranks; kHello identifies accepted peers), then
  /// starts the progress thread.  Throws net_error on timeout.
  void start();

  /// Encodes and enqueues one batch for `dst`.  Blocks under
  /// backpressure.  Returns false when the frame was dropped because the
  /// transport failed or stopped — the caller's drain() reports the
  /// failure; nothing is silently lost on the success path.
  bool post_batch(std::uint32_t dst, const WireBatch& b);

  void post_control(std::uint32_t dst, const ControlMsg& m);
  /// Sends a control message to every peer rank (not self).
  void broadcast_control(const ControlMsg& m);

  /// Best-effort telemetry side channel.  Telemetry frames bypass the
  /// injection window AND the parcel accounting the termination protocol
  /// cuts over (sent/recvd parcel counters never see them), so a sampler
  /// shipping on a timer can never destabilize a quiescence cut.  Frames
  /// to failed/closed peers are silently dropped — losing a sample is
  /// fine, wedging shutdown on one is not.  Returns false when dropped.
  bool post_telemetry(std::uint32_t dst, std::span<const std::byte> payload);

  /// Installs (or clears) the telemetry receive callback.  Callable any
  /// time; runs ON the progress thread and must be cheap/non-blocking.
  void set_on_telemetry(TelemetryFn fn);

  /// Runs the ping/pong clock-sync exchange against rank 0 (`rounds`
  /// sequential round trips, midpoint estimation, min-RTT sample wins).
  /// On rank 0 / world 1 this is a no-op identity result.  Safe to call
  /// any time after start(); the result is cached for clock_offset().
  ClockSyncResult clock_sync(int rounds = 8);

  /// Last clock_sync() result (identity before the first call).
  ClockSyncResult clock_offset() const;

  /// From now on a peer closing its connection is expected (the world has
  /// agreed to terminate), not a failure.
  void allow_peer_close();

  /// Flushes queued frames, stops the progress thread, closes the mesh.
  /// Idempotent; called by the destructor.
  void stop();

  bool failed() const {
    // relaxed-ok: sticky flag; failure_text() takes the lock for the why.
    return failed_.load(std::memory_order_relaxed);
  }
  std::string failure_text() const;

  const NetStats& stats() const { return stats_; }
  const NetConfig& config() const { return cfg_; }

 private:
  struct OutMsg {
    std::vector<std::byte> bytes;
    bool counts_window = false;  ///< batch frames only
  };
  /// Per-peer state confined to the progress thread: bootstrap fills fd
  /// before the thread starts; afterwards only progress_main and its
  /// callees touch these fields.  The shared pieces (outbox queue, closed
  /// flag) live in outboxes_ / peer_closed_ below so they can carry
  /// GUARDED_BY(mu_) — a nested struct cannot name the outer class's
  /// mutex in a thread-safety annotation.
  struct Peer {
    Fd fd;
    FrameDecoder decoder;
    std::size_t write_off = 0;  ///< progress into the front outbox frame
    /// Peer announced an orderly close (kGoodbye).  Stream FIFO means the
    /// announcement always arrives before the EOF, so an announced EOF is
    /// benign while a crash (EOF with no goodbye) still fails fast.
    bool said_goodbye = false;
  };

  void progress_main();
  /// Reads until EAGAIN, feeding the peer's frame decoder.
  void do_read(std::uint32_t rank, std::vector<std::byte>& buf);
  /// Writes queued frames until EAGAIN or the outbox empties.
  void do_write(std::uint32_t rank);
  void dispatch(std::uint32_t rank, FrameDecoder::Frame&& f);
  void on_peer_closed(std::uint32_t rank);
  void fail(const std::string& why);
  bool outboxes_empty() const REQUIRES(mu_);

  Fd connect_with_retry(std::uint32_t peer, double deadline);
  Fd accept_with_deadline(double deadline);

  NetConfig cfg_;
  BatchFn on_batch_;
  ControlFn on_control_;
  FailFn on_failure_;
  mutable SyncMutex telem_mu_;  ///< set_on_telemetry vs dispatch
  TelemetryFn on_telemetry_ GUARDED_BY(telem_mu_);

  std::vector<Peer> peers_;  // indexed by rank; self entry unused
  Fd listener_;
  WakePipe wake_;
  std::thread progress_;
  NetStats stats_;

  mutable SyncMutex mu_;  ///< outboxes, window accounting, failure text
  SyncCondVar window_cv_;
  /// Outbound frame queues, indexed by rank (self entry unused).  Posters
  /// append under mu_; only the progress thread pops.
  std::vector<std::deque<OutMsg>> outboxes_ GUARDED_BY(mu_);
  /// Peer closed its connection — published under mu_ so posters observe
  /// it coherently with the outbox they would otherwise append to.
  std::vector<char> peer_closed_ GUARDED_BY(mu_);
  /// Posted batch bytes not yet written to a socket.
  std::size_t outstanding_bytes_ GUARDED_BY(mu_) = 0;
  std::size_t queued_msgs_ GUARDED_BY(mu_) = 0;  ///< frames, all outboxes
  std::string failure_ GUARDED_BY(mu_);
  std::atomic<bool> failed_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> peer_close_ok_{false};
  bool started_ = false;

  /// Clock-sync rendezvous between the caller of clock_sync() (worker
  /// side, sends pings) and the progress thread (records pong arrivals).
  mutable SyncMutex sync_mu_;
  SyncCondVar sync_cv_;
  /// Sample id of the last pong.
  std::uint64_t sync_pong_id_ GUARDED_BY(sync_mu_) = 0;
  /// Replier steady ns (ControlMsg.c).
  std::uint64_t sync_pong_remote_ GUARDED_BY(sync_mu_) = 0;
  /// Local steady ns at pong receipt.
  std::uint64_t sync_pong_recv_ GUARDED_BY(sync_mu_) = 0;
  bool sync_pong_valid_ GUARDED_BY(sync_mu_) = false;
  ClockSyncResult sync_result_ GUARDED_BY(sync_mu_);
};

}  // namespace amtfmm::net
