#include "runtime/net/net_executor.hpp"

#include <algorithm>
#include <cstdio>

#include "runtime/flight_recorder.hpp"
#include "support/error.hpp"

namespace amtfmm::net {

NetExecutor::NetExecutor(const NetConfig& cfg, int cores,
                         CoalesceConfig coalesce)
    : cfg_(cfg),
      cores_(cores),
      epoch_(std::chrono::steady_clock::now()),
      transport_(
          cfg, [this](WireBatch&& b) { on_net_batch(std::move(b)); },
          [this](const ControlMsg& m) { on_net_control(m); },
          [this](const std::string& why) { on_net_failure(why); }) {
  AMTFMM_ASSERT(cores_ >= 1);
  // The coalescer/CommStats see the full world (destinations are global
  // ranks); trace and counters see only the local workers.
  rt_ = std::make_unique<LocalityRuntime>(static_cast<int>(cfg_.world),
                                          cores_, coalesce);
  auto& reg = rt_->counters();
  nid_.msgs_sent = reg.counter("net.msgs_sent");
  nid_.msgs_recvd = reg.counter("net.msgs_recvd");
  nid_.wire_bytes_sent = reg.counter("net.wire_bytes_sent");
  nid_.wire_bytes_recvd = reg.counter("net.wire_bytes_recvd");
  nid_.progress_iters = reg.counter("net.progress_iters");
  nid_.idle_polls = reg.counter("net.idle_polls");
  nid_.partial_writes = reg.counter("net.partial_writes");
  nid_.backpressure_stalls = reg.counter("net.backpressure_stalls");
  nid_.backpressure_stall_us = reg.counter("net.backpressure_stall_us");
  nid_.control_msgs = reg.counter("net.control_msgs");
  nid_.termination_rounds = reg.counter("net.termination_rounds");
  nid_.telemetry_sent = reg.counter("net.telemetry_sent");
  nid_.telemetry_recvd = reg.counter("net.telemetry_recvd");
  nid_.inject_depth_hwm = reg.gauge("net.inject_depth_hwm");
  nid_.inject_bytes_hwm = reg.gauge("net.inject_bytes_hwm");

  inorder_.reserve(cfg_.world);
  for (std::uint32_t r = 0; r < cfg_.world; ++r) {
    inorder_.push_back(std::make_unique<InOrder>());
  }
  acks_.resize(cfg_.world);
  prev_acks_.resize(cfg_.world);

  transport_.start();  // mesh up before any worker can send
  // Clock sync rides the fresh mesh before any batch traffic competes
  // for it: the quietest moment this process will ever see, which is
  // exactly when the min-RTT midpoint estimate is tightest.
  clock_sync_ = transport_.clock_sync();
  threads_.reserve(static_cast<std::size_t>(cores_));
  for (int w = 0; w < cores_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

NetExecutor::~NetExecutor() {
  // Transport first: once the progress thread is gone, no callback can
  // race the pool teardown.  No drain — destruction must always succeed,
  // even on a failed mesh.
  transport_.stop();
  {
    SyncLockGuard lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
  for (std::uint32_t r = 0; r < cfg_.world; ++r) {
    InOrder& io = *inorder_[r];
    if (!io.ready.empty()) {
      std::fprintf(stderr,
                   "rank %u: %zu stranded batch(es) from rank %u at shutdown "
                   "(expected seq %llu, first held seq %llu)\n",
                   cfg_.rank, io.ready.size(), r,
                   static_cast<unsigned long long>(io.expected),
                   static_cast<unsigned long long>(io.ready.begin()->first));
    }
  }
}

void NetExecutor::set_on_telemetry(NetTransport::TelemetryFn fn) {
  transport_.set_on_telemetry(std::move(fn));
}

int NetExecutor::current_locality() const {
  return current_worker() >= 0 ? static_cast<int>(cfg_.rank) : -1;
}

double NetExecutor::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

TraceClock NetExecutor::trace_clock() const {
  TraceClock c = make_trace_clock(
      std::chrono::duration<double>(epoch_.time_since_epoch()).count());
  c.offset_s = clock_sync_.offset_s;
  c.uncertainty_s = clock_sync_.uncertainty_s;
  return c;
}

void NetExecutor::register_net_handler(std::uint8_t kind, NetHandler h) {
  {
    SyncLockGuard lk(handlers_mu_);
    handlers_[kind] = std::move(h);
  }
  handlers_cv_.notify_all();
}

void NetExecutor::unregister_net_handler(std::uint8_t kind) {
  SyncLockGuard lk(handlers_mu_);
  handlers_[kind] = nullptr;
}

Executor::NetHandler NetExecutor::wait_handler(std::uint8_t kind) {
  SyncUniqueLock lk(handlers_mu_);
  if (!handlers_[kind]) {
    // A parcel can arrive between transport start and the engine
    // registering its handlers; block briefly rather than drop.  Sixty
    // seconds of no registration is a programming error, not latency.
    // Deadline loop instead of wait_for(pred): see sync_hook.hpp.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!handlers_[kind]) {
      if (handlers_cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    AMTFMM_ASSERT(bool(handlers_[kind]) &&
                  "no handler registered for arriving parcel kind");
  }
  return handlers_[kind];  // copy: the call runs outside the lock
}

void NetExecutor::spawn(Task t) {
  AMTFMM_ASSERT(locality_is_local(t.locality));
  {
    SyncLockGuard lk(mu_);
    ++outstanding_;
    (t.high_priority ? high_ : low_).push_back(std::move(t));
  }
  work_cv_.notify_one();
  state_cv_.notify_all();  // drain predicates watch outstanding_
}

void NetExecutor::send(std::uint32_t from, std::uint32_t to,
                       std::size_t bytes, Task t) {
  AMTFMM_ASSERT(from == cfg_.rank && to < cfg_.world);
  t.locality = to;
  if (to == cfg_.rank) {
    spawn(std::move(t));
    return;
  }
  AMTFMM_ASSERT(t.net_kind != 0 &&
                "remote task without a wire representation");
  AMTFMM_ASSERT(t.net_payload && t.net_payload->size() == bytes);
  auto out = rt_->submit(from, to, bytes, std::move(t), now());
  if (!out.batch) return;  // buffered; deadline/quiescence flush later
  transmit(std::move(*out.batch), out.coalesced);
}

void NetExecutor::transmit(ParcelBatch b, bool coalesced) {
  const double tn = now();
  rt_->account_batch(b, tn, tn, coalesced);
  const int w = current_worker();
  if (w >= 0 && rt_->trace().enabled()) {
    rt_->trace().record_instant(static_cast<std::uint32_t>(w),
                                InstantKind::kParcelSend, tn, b.dst);
  }
  WireBatch wb;
  wb.src = b.src;
  wb.dst = b.dst;
  wb.seq = b.seq;
  wb.reason = static_cast<std::uint8_t>(b.reason);
  wb.any_high = b.any_high;
  wb.coalesced = coalesced;
  wb.parcels.reserve(b.tasks.size());
  for (const Task& t : b.tasks) {
    AMTFMM_ASSERT(t.net_kind != 0 && t.net_payload);
    WireParcel p;
    p.kind = t.net_kind;
    p.high = t.high_priority;
    p.payload = *t.net_payload;
    wb.parcels.push_back(std::move(p));
  }
  const auto n = static_cast<std::int64_t>(b.tasks.size());
  // Ordering contract with the termination protocol: sent is visible
  // before any peer can observe (and count) the arriving frame.
  sent_parcels_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
  // A false return means the transport failed or stopped and dropped the
  // frame; the failure surfaces from drain(), so nothing hangs on it.
  (void)transport_.post_batch(b.dst, wb);
  if (coalesced) rt_->note_batch_consumed(n);
}

void NetExecutor::on_net_batch(WireBatch&& b) {
  AMTFMM_ASSERT(b.dst == cfg_.rank && b.src < cfg_.world);
  const auto n = static_cast<std::uint64_t>(b.parcels.size());
  Task t;
  t.locality = cfg_.rank;
  t.high_priority = b.any_high;
  auto sb = std::make_shared<WireBatch>(std::move(b));
  if (sb->coalesced) {
    t.fn = [this, sb] { run_in_order(std::move(*sb)); };
  } else {
    t.fn = [this, sb] { run_wire_batch(*sb); };
  }
  {
    SyncLockGuard lk(mu_);
    // Once the transport has failed this evaluation is being abandoned:
    // the engine behind the handlers dies during the caller's unwinding,
    // so batches must be dropped, not spawned.  The check shares mu_ with
    // throw_if_failed()'s queue purge, so no task can slip in after it.
    if (net_failed_) return;
    ++outstanding_;
    (t.high_priority ? high_ : low_).push_back(std::move(t));
  }
  work_cv_.notify_one();
  state_cv_.notify_all();
  // Count the receipt only after the work is visible to quiescence
  // detection (outstanding_ > 0): a recvd count with no outstanding work
  // would let the termination protocol declare a balanced cut while the
  // wrapper task is still queued.
  recvd_parcels_.fetch_add(n, std::memory_order_relaxed);
}

void NetExecutor::run_wire_batch(const WireBatch& b) {
  const int w = current_worker();
  if (w >= 0 && rt_->trace().enabled()) {
    rt_->trace().record_instant(static_cast<std::uint32_t>(w),
                                InstantKind::kParcelRecv, now(), b.src);
  }
  for (const WireParcel& p : b.parcels) {
    NetHandler h = wait_handler(p.kind);
    h(p.payload);
  }
}

void NetExecutor::run_in_order(WireBatch b) {
  InOrder& io = *inorder_[b.src];
  {
    SyncLockGuard lk(io.mu);
    io.ready.emplace(b.seq, std::move(b));
    if (io.running || io.ready.begin()->first != io.expected) return;
    io.running = true;
  }
  for (;;) {
    WireBatch cur;
    {
      SyncLockGuard lk(io.mu);
      auto it = io.ready.find(io.expected);
      if (it == io.ready.end()) {
        io.running = false;
        return;
      }
      cur = std::move(it->second);
      io.ready.erase(it);
      ++io.expected;
    }
    run_wire_batch(cur);
  }
}

bool NetExecutor::flush_expired() {
  if (!rt_->coalesce_config().enabled || !rt_->pending_from(cfg_.rank)) {
    return false;
  }
  // The flush must be visible to quiescence detection for its whole
  // take-to-transmit span: it runs outside any task, and between popping
  // a batch (buffered drops to zero) and transmit() raising sent_, every
  // counter the termination protocol reads looks frozen.  Without this
  // guard a stalled flusher lets the world terminate with the frame
  // still in hand — which then arrives in the next drain epoch as a
  // stale parcel.  Counting the span as outstanding work closes the gap.
  {
    SyncLockGuard lk(mu_);
    ++outstanding_;
  }
  auto batches = rt_->take_expired_from(cfg_.rank, now());
  for (auto& b : batches) transmit(std::move(b), /*coalesced=*/true);
  {
    SyncLockGuard lk(mu_);
    if (--outstanding_ == 0) state_cv_.notify_all();
  }
  return !batches.empty();
}

void NetExecutor::worker_loop(int w) {
  detail::set_current_worker(w);
  SyncUniqueLock lk(mu_);
  while (!stop_) {
    if (!high_.empty() || !low_.empty()) {
      auto& q = high_.empty() ? low_ : high_;
      Task t = std::move(q.front());
      q.pop_front();
      lk.unlock();
      if (t.fn) t.fn();
      rt_->counters().add(w, rt_->ids().tasks_run);
      lk.lock();
      --outstanding_;
      if (outstanding_ == 0) state_cv_.notify_all();
      continue;
    }
    // Idle: act as the locality's communication agent (deadline flushes),
    // then nap briefly — the transport's progress thread owns the wire,
    // so the nap bounds only flush latency, not message latency.
    lk.unlock();
    const bool flushed = flush_expired();
    lk.lock();
    if (flushed) continue;
    work_cv_.wait_for(lk, std::chrono::microseconds(200));
  }
  detail::set_current_worker(-1);
}

void NetExecutor::on_net_control(const ControlMsg& m) {
  SyncLockGuard lk(mu_);
  switch (static_cast<ControlType>(m.type)) {
    case ControlType::kProbe:
      probe_pending_ = true;
      probe_round_ = m.a;
      break;
    case ControlType::kAck:
      if (m.rank < cfg_.world) {
        acks_[m.rank] = Ack{m.a, m.b, m.c};
      }
      break;
    case ControlType::kTerminate:
      terminate_epoch_ = std::max(terminate_epoch_, m.a);
      break;
    case ControlType::kHello:
    case ControlType::kGoodbye:
    case ControlType::kPing:
    case ControlType::kPong:
      break;  // bootstrap / shutdown / sync frames; transport-internal
  }
  state_cv_.notify_all();
}

void NetExecutor::on_net_failure(const std::string& why) {
  {
    SyncLockGuard lk(mu_);
    net_failed_ = true;
    if (net_failure_.empty()) net_failure_ = why;
  }
  state_cv_.notify_all();
  work_cv_.notify_all();
  // Failure-path teardown is one of the flight recorder's dump triggers:
  // the surviving ranks each capture their last events, so a peer death
  // leaves a cross-rank post-mortem artifact, not just an error line.
  flight_dump_all("net failure");
}

void NetExecutor::throw_if_failed() {
  std::string why;
  {
    SyncUniqueLock lk(mu_);
    if (!net_failed_) return;
    why = net_failure_;
    // The caller abandons the evaluation: the engine whose handlers the
    // queued wrapper tasks would invoke is destroyed during unwinding.
    // Quiesce local delivery before throwing — drop everything queued and
    // wait out the tasks already running — so no worker touches the dying
    // engine afterwards.  on_net_batch drops new arrivals under the same
    // lock once net_failed_ is set, so the queues stay empty.
    outstanding_ -= high_.size() + low_.size();
    high_.clear();
    low_.clear();
    // Explicit predicate loop (no wait(pred) overload; see sync_hook.hpp).
    while (outstanding_ != 0) state_cv_.wait(lk);
  }
  throw net_error("rank " + std::to_string(cfg_.rank) +
                  ": transport failed: " + why);
}

bool NetExecutor::coordinate_round() {
  std::uint64_t round;
  std::uint64_t epoch;
  {
    SyncLockGuard lk(mu_);
    round = ++round_;
    ++term_rounds_stat_;
    // Snapshot under mu_: the thread-safety analysis caught the decide-
    // termination path below reading drains_done_ with no lock held.
    epoch = drains_done_ + 1;
  }
  const std::uint64_t s0 = sent_parcels_.load(std::memory_order_relaxed);
  const std::uint64_t r0 = recvd_parcels_.load(std::memory_order_relaxed);
  ControlMsg probe;
  probe.type = static_cast<std::uint8_t>(ControlType::kProbe);
  probe.rank = cfg_.rank;
  probe.a = round;
  transport_.broadcast_control(probe);
  {
    SyncUniqueLock lk(mu_);
    // Explicit predicate loop (no wait(pred) overload; see sync_hook.hpp):
    // wake on failure, new local work, or a full set of round-matching acks.
    for (;;) {
      bool done = net_failed_ || outstanding_ > 0;
      if (!done) {
        done = true;
        for (std::uint32_t r = 1; r < cfg_.world; ++r) {
          if (!acks_[r] || acks_[r]->round != round) {
            done = false;
            break;
          }
        }
      }
      if (done) break;
      state_cv_.wait(lk);
    }
    if (net_failed_) return false;       // drain() throws
    if (outstanding_ > 0) return false;  // new work; abandon the round
  }
  const std::uint64_t s1 = sent_parcels_.load(std::memory_order_relaxed);
  const std::uint64_t r1 = recvd_parcels_.load(std::memory_order_relaxed);
  const Ack self{round, s1, r1};
  bool stable = s1 == s0 && r1 == r0;
  std::uint64_t sum_sent = s1;
  std::uint64_t sum_recvd = r1;
  {
    SyncLockGuard lk(mu_);
    for (std::uint32_t r = 1; r < cfg_.world; ++r) {
      sum_sent += acks_[r]->sent;
      sum_recvd += acks_[r]->recvd;
      if (prev_round_valid_ && (acks_[r]->sent != prev_acks_[r].sent ||
                                acks_[r]->recvd != prev_acks_[r].recvd)) {
        stable = false;
      }
    }
    if (prev_round_valid_ &&
        (self.sent != prev_self_.sent || self.recvd != prev_self_.recvd)) {
      stable = false;
    }
    // Persist this round as the comparison base for the next one.
    for (std::uint32_t r = 1; r < cfg_.world; ++r) prev_acks_[r] = *acks_[r];
    prev_self_ = self;
    const bool first = !prev_round_valid_;
    prev_round_valid_ = true;
    if (first || !stable || sum_sent != sum_recvd) return false;
  }
  // Two consecutive rounds saw identical per-rank monotone counters with
  // globally balanced sent/recvd: the counters describe one consistent
  // cut with nothing in flight.  Decide termination.
  ControlMsg term;
  term.type = static_cast<std::uint8_t>(ControlType::kTerminate);
  term.rank = cfg_.rank;
  term.a = epoch;  // 1-based drain epoch, snapshotted under mu_ above
  transport_.broadcast_control(term);
  return true;
}

bool NetExecutor::follower_wait() {
  SyncUniqueLock lk(mu_);
  for (;;) {
    if (net_failed_) return false;  // drain() throws
    if (terminate_epoch_ >= drains_done_ + 1) return true;
    if (outstanding_ > 0) return false;  // new work arrived
    if (probe_pending_ && rt_->buffered() == 0) {
      probe_pending_ = false;
      ControlMsg ack;
      ack.type = static_cast<std::uint8_t>(ControlType::kAck);
      ack.rank = cfg_.rank;
      ack.a = probe_round_;
      // Quiescent under mu_: no task and no idle-worker flush can be
      // mid-transmit (both hold outstanding_ > 0 for their span), so the
      // counter pair is a consistent local snapshot.
      ack.b = sent_parcels_.load(std::memory_order_relaxed);
      ack.c = recvd_parcels_.load(std::memory_order_relaxed);
      ++term_rounds_stat_;
      lk.unlock();
      transport_.post_control(0, ack);
      lk.lock();
      continue;
    }
    state_cv_.wait(lk);
  }
}

double NetExecutor::drain() {
  const double t0 = now();
  for (;;) {
    {
      SyncUniqueLock lk(mu_);
      // Explicit predicate loop (no wait(pred) overload; see sync_hook.hpp).
      while (outstanding_ != 0 && !net_failed_) state_cv_.wait(lk);
    }
    throw_if_failed();
    // Local quiescence flush: everything still buffered for remote ranks
    // goes on the wire now.  Transmits may block on backpressure but
    // never spawn local work; received batches can, hence the re-loop.
    bool flushed = false;
    for (auto& b : rt_->take_all_from(cfg_.rank)) {
      transmit(std::move(b), /*coalesced=*/true);
      flushed = true;
    }
    {
      SyncLockGuard lk(mu_);
      if (flushed || outstanding_ != 0 || rt_->buffered() != 0) continue;
    }
    if (cfg_.world == 1) break;
    if (cfg_.rank == 0) {
      if (coordinate_round()) break;
    } else {
      if (follower_wait()) break;
    }
    throw_if_failed();
  }
  throw_if_failed();
  {
    SyncLockGuard lk(mu_);
    ++drains_done_;
    // Re-arm the probe protocol for the next drain epoch on the same
    // mesh: the stable-cut comparison restarts from scratch (two fresh
    // agreeing rounds) and stale per-rank acks are dropped.  A pending
    // probe is deliberately NOT cleared: on a resident mesh the
    // coordinator can enter the next drain and broadcast its first probe
    // while this follower is still in this epilogue (kTerminate and that
    // probe arrive back to back), and the coordinator never re-probes a
    // round — swallowing it here deadlocks the next drain.  Answering it
    // from the next follower_wait is safe: acks are matched by round
    // number, and the cumulative counter cut is read at answer time.
    prev_round_valid_ = false;
    for (auto& a : acks_) a.reset();
  }
  fold_net_counters();
  return now() - t0;
}

void NetExecutor::fold_net_counters() {
  auto& reg = rt_->counters();
  if (!reg.enabled()) return;
  const NetStats& s = transport_.stats();
  // Snapshot under mu_: followers bump term_rounds_stat_ from worker
  // threads, so the old unlocked read here was a (benign-looking) race
  // the thread-safety analysis rejected.
  std::uint64_t term_rounds = 0;
  {
    SyncLockGuard lk(mu_);
    term_rounds = term_rounds_stat_;
  }
  const std::uint64_t cur[13] = {
      s.msgs_sent.load(std::memory_order_relaxed),
      s.msgs_recvd.load(std::memory_order_relaxed),
      s.wire_bytes_sent.load(std::memory_order_relaxed),
      s.wire_bytes_recvd.load(std::memory_order_relaxed),
      s.progress_iters.load(std::memory_order_relaxed),
      s.idle_polls.load(std::memory_order_relaxed),
      s.partial_writes.load(std::memory_order_relaxed),
      s.backpressure_stalls.load(std::memory_order_relaxed),
      s.backpressure_stall_us.load(std::memory_order_relaxed),
      s.control_msgs.load(std::memory_order_relaxed),
      term_rounds,
      s.telemetry_sent.load(std::memory_order_relaxed),
      s.telemetry_recvd.load(std::memory_order_relaxed),
  };
  const CounterRegistry::Id ids[13] = {
      nid_.msgs_sent,          nid_.msgs_recvd,
      nid_.wire_bytes_sent,    nid_.wire_bytes_recvd,
      nid_.progress_iters,     nid_.idle_polls,
      nid_.partial_writes,     nid_.backpressure_stalls,
      nid_.backpressure_stall_us, nid_.control_msgs,
      nid_.termination_rounds, nid_.telemetry_sent,
      nid_.telemetry_recvd,
  };
  for (int i = 0; i < 13; ++i) {
    reg.add(0, ids[i], cur[i] - folded_[i]);
    folded_[i] = cur[i];
  }
  reg.gauge_max(0, nid_.inject_depth_hwm,
                s.inject_depth_hwm.load(std::memory_order_relaxed));
  reg.gauge_max(0, nid_.inject_bytes_hwm,
                s.inject_bytes_hwm.load(std::memory_order_relaxed));
}

}  // namespace amtfmm::net
