#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/trace.hpp"

namespace amtfmm {

/// One scheduled item of work: in HPX-5 terms this is a parcel that has
/// reached its destination and become a lightweight thread.
///
/// `fn` carries the work (dependency bookkeeping and, in compute mode, the
/// actual expansion math).  `items` is the task's virtual cost breakdown by
/// trace class, consumed only by the sim executor; in real mode the work
/// traces itself via Worker::record.
struct CostItem {
  std::uint8_t cls;
  double cost;  // virtual seconds
  /// DAG attribution carried into the sim trace (see TraceEvent::arg).
  std::uint32_t arg = kNoTraceArg;
};

/// Wire identity of tasks that may cross a *process* boundary (socket
/// localities).  Kinds partition the parcel namespace: the destination
/// looks up the handler registered for the kind and hands it the payload.
/// Values below kNetKindUser are reserved for the engine.
inline constexpr std::uint8_t kNetKindEvalParcel = 1;
inline constexpr std::uint8_t kNetKindContribution = 2;
inline constexpr std::uint8_t kNetKindUser = 0x10;

struct Task {
  std::function<void()> fn;
  std::uint32_t locality = 0;
  bool high_priority = false;
  std::vector<CostItem> items;  // sim-mode cost breakdown
  /// Wire representation for real (multi-process) transports: handler kind
  /// plus the serialized payload the destination's handler receives.  0
  /// means the task cannot cross a process boundary (closures do not
  /// serialize); in-process executors ignore both fields.  The payload
  /// size is the parcel's logical wire-byte count — the `bytes` passed to
  /// send() — so wire_bytes == bytes_sent stays exact over sockets.
  std::uint8_t net_kind = 0;
  std::shared_ptr<const std::vector<std::byte>> net_payload;
};

/// Per-locality parcel coalescing (the HPX-5 behaviour the paper relies on
/// for its distributed runs): outgoing parcels that target the same
/// destination locality are buffered per (source, destination) pair and
/// flushed as one batched wire message when the buffer reaches a parcel or
/// byte threshold, when the oldest buffered parcel exceeds the flush
/// deadline, or when the scheduler detects quiescence.  Per-(src,dst) FIFO
/// delivery order is preserved.  Disabled by default: every parcel is its
/// own message, the pre-coalescing behaviour.
struct CoalesceConfig {
  bool enabled = false;
  std::uint32_t max_parcels = 32;   ///< flush when this many parcels buffer
  std::size_t max_bytes = 1 << 15;  ///< ... or this many payload bytes
  double flush_deadline = 100e-6;   ///< seconds on the executor clock
};

/// Snapshot of the communication counters kept by every executor.  With
/// coalescing disabled, batches == parcels and the coalescing factor is 1.
struct CommStats {
  std::uint64_t parcels = 0;  ///< logical parcels handed to send()
  std::uint64_t batches = 0;  ///< physical wire messages delivered
  std::uint64_t bytes = 0;    ///< summed parcel wire bytes
  std::uint64_t flush_threshold = 0;   ///< batches flushed on size/bytes cap
  std::uint64_t flush_deadline = 0;    ///< ... on flush-deadline expiry
  std::uint64_t flush_quiescence = 0;  ///< ... on scheduler quiescence
  std::vector<std::uint64_t> parcels_to;  ///< per destination locality
  std::vector<std::uint64_t> batches_to;
  std::vector<std::uint64_t> bytes_to;
  /// Histogram of batch sizes: bucket i counts batches of [2^i, 2^(i+1))
  /// parcels.
  std::array<std::uint64_t, 16> batch_size_log2{};

  double coalescing_factor() const {
    return batches == 0 ? 1.0
                        : static_cast<double>(parcels) /
                              static_cast<double>(batches);
  }
};

/// Scheduler policies matched to the paper:
///  - kWorkStealing: per-worker deques, local randomized stealing (HPX-5's
///    configuration in the evaluation),
///  - kFifo: a per-locality FIFO queue (sim executor baseline),
///  - kPriority: the two-level priority extension proposed in section VI.
enum class SchedPolicy { kWorkStealing, kFifo, kPriority };

class LocalityRuntime;
class CounterRegistry;

/// Execution substrate: L localities x C scheduler threads plus an
/// interconnect.  Two implementations share this interface: a real
/// std::thread pool (ThreadExecutor) and a discrete-event simulation
/// (SimExecutor) used for the strong-scaling reproduction (see DESIGN.md).
/// Both are thin schedulers over one shared LocalityRuntime, which owns
/// the coalescing buffers, comm counters, trace sink, and quiescence
/// bookkeeping.
class Executor {
 public:
  virtual ~Executor();

  virtual int num_localities() const = 0;
  virtual int cores_per_locality() const = 0;
  int total_workers() const { return num_localities() * cores_per_locality(); }

  /// Locality of the task currently executing on this thread, or -1 when
  /// called outside a task (main thread, tests).  Used by the engine's
  /// debug ownership checks: expansion payloads may only be touched by
  /// tasks running on the owning locality.
  virtual int current_locality() const = 0;

  /// True when `loc`'s tasks run inside this process.  In-process
  /// executors host every locality; a socket-locality executor
  /// (net::NetExecutor) hosts exactly its own rank, and SPMD drivers use
  /// this to skip seeding/finalizing work that belongs to another process.
  virtual bool locality_is_local(std::uint32_t loc) const {
    return loc < static_cast<std::uint32_t>(num_localities());
  }

  /// Receiver-side materialization of wire tasks (socket localities): the
  /// handler registered for a kind turns an arriving parcel's serialized
  /// payload back into work.  In-process executors ship the closure
  /// itself, so the default registration is a no-op.  Must be called
  /// before the matching parcels can arrive (handlers are consulted at
  /// batch-run time; NetExecutor blocks briefly on late registration).
  using NetHandler = std::function<void(const std::vector<std::byte>&)>;
  virtual void register_net_handler(std::uint8_t /*kind*/, NetHandler /*h*/) {
  }

  /// Removes a kind's handler.  A receiver whose parcels outlive their
  /// producer (e.g. a new evaluation starting on a still-connected mesh)
  /// must unregister on teardown: arrivals for the kind then block in the
  /// late-registration wait instead of running a handler whose captured
  /// state is gone.  Only meaningful on socket localities.
  virtual void unregister_net_handler(std::uint8_t /*kind*/) {}

  /// Enqueues a task at task.locality.
  virtual void spawn(Task t) = 0;

  /// Sends a parcel of `bytes` from one locality to another; the task runs
  /// at the destination after (modelled) transport.  This is the only way
  /// work crosses localities.
  virtual void send(std::uint32_t from, std::uint32_t to, std::size_t bytes,
                    Task t) = 0;

  /// Runs until no task, parcel, or pending event remains.  Returns the
  /// makespan in seconds (wall time for real, virtual time for sim).
  virtual double drain() = 0;

  /// Current time on this executor's clock.
  virtual double now() const = 0;

  /// Clock anchoring for trace metadata: how now()'s t=0 relates to the
  /// steady clock, wall time, and (socket localities) rank 0's clock.
  /// The sim executor's virtual clock has no real-time anchor, so the
  /// default is the all-zero identity.
  virtual TraceClock trace_clock() const { return {}; }

  TraceSink& trace();
  const TraceSink& trace() const;

  /// The runtime's counter registry (sched/coalesce/lco/gas/op metrics).
  CounterRegistry& counters();
  const CounterRegistry& counters() const;

  /// Total bytes sent across localities (diagnostics).
  std::uint64_t bytes_sent() const;
  std::uint64_t parcels_sent() const;

  /// Full communication counters: parcels, batches, bytes, flush triggers,
  /// per-destination histograms.
  CommStats comm_stats() const;

  /// The shared runtime core backing this executor.
  LocalityRuntime& runtime();

 protected:
  std::unique_ptr<LocalityRuntime> rt_;
};

/// Identity of the executing worker thread, for real-mode tracing.
/// Returns -1 outside a worker.
int current_worker();

namespace detail {
/// Binds the calling thread to a worker id for current_worker().
/// Executor implementations only; pass -1 to unbind.
void set_current_worker(int w);
}  // namespace detail

/// Records a trace event on the current worker using the executor clock.
/// No-op when tracing is disabled or called outside a worker.
class ScopedTrace {
 public:
  ScopedTrace(Executor& ex, std::uint8_t cls, std::uint32_t arg = kNoTraceArg);
  ~ScopedTrace();

 private:
  Executor& ex_;
  std::uint8_t cls_;
  std::uint32_t arg_;
  double t0_;
};

}  // namespace amtfmm
