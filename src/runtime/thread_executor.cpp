#include "runtime/thread_executor.hpp"

#include "support/error.hpp"

namespace amtfmm {
namespace {

thread_local int tls_worker = -1;

}  // namespace

int current_worker() { return tls_worker; }

ScopedTrace::ScopedTrace(Executor& ex, std::uint8_t cls)
    : ex_(ex), cls_(cls), t0_(ex.trace().enabled() ? ex.now() : 0.0) {}

ScopedTrace::~ScopedTrace() {
  if (!ex_.trace().enabled()) return;
  const int w = current_worker();
  if (w < 0) return;
  ex_.trace().record(static_cast<std::uint32_t>(w), cls_, t0_, ex_.now());
}

ThreadExecutor::ThreadExecutor(int num_localities, int cores_per_locality,
                               SchedPolicy policy, std::uint64_t seed)
    : num_localities_(num_localities),
      cores_(cores_per_locality),
      policy_(policy),
      epoch_(std::chrono::steady_clock::now()) {
  AMTFMM_ASSERT(num_localities >= 1 && cores_per_locality >= 1);
  trace_ = std::make_unique<TraceSink>(total_workers());
  const int n = total_workers();
  workers_.reserve(static_cast<std::size_t>(n));
  std::uint64_t sm = seed;
  for (int w = 0; w < n; ++w) {
    auto ws = std::make_unique<WorkerState>();
    ws->rng = Rng(splitmix64(sm));
    workers_.push_back(std::move(ws));
  }
  threads_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadExecutor::~ThreadExecutor() {
  drain();
  stop_.store(true);
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

double ThreadExecutor::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void ThreadExecutor::push(int w, Task t) {
  {
    std::lock_guard lk(workers_[static_cast<std::size_t>(w)]->mu);
    auto& ws = *workers_[static_cast<std::size_t>(w)];
    const bool hi = policy_ == SchedPolicy::kPriority && t.high_priority;
    (hi ? ws.high : ws.low).push_back(std::move(t));
  }
  idle_cv_.notify_one();
}

void ThreadExecutor::spawn(Task t) {
  AMTFMM_ASSERT(t.locality < static_cast<std::uint32_t>(num_localities_));
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  const int base = static_cast<int>(t.locality) * cores_;
  int w = current_worker();
  if (w >= 0 && w / cores_ == static_cast<int>(t.locality)) {
    // Stay on the spawning worker's deque (cheap, steals rebalance).
    push(w, std::move(t));
    return;
  }
  const int offset =
      static_cast<int>(spawn_rr_.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<std::uint64_t>(cores_));
  push(base + offset, std::move(t));
}

void ThreadExecutor::send(std::uint32_t from, std::uint32_t to,
                          std::size_t bytes, Task t) {
  if (from != to) {
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
    parcels_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  t.locality = to;
  spawn(std::move(t));
}

bool ThreadExecutor::try_pop(int w, Task& out) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  std::lock_guard lk(ws.mu);
  if (!ws.high.empty()) {
    out = std::move(ws.high.back());
    ws.high.pop_back();
    return true;
  }
  if (!ws.low.empty()) {
    out = std::move(ws.low.back());
    ws.low.pop_back();
    return true;
  }
  return false;
}

bool ThreadExecutor::try_steal(int w, Task& out) {
  // Randomized stealing restricted to the worker's own locality.
  auto& me = *workers_[static_cast<std::size_t>(w)];
  const int loc = w / cores_;
  const int base = loc * cores_;
  if (cores_ <= 1) return false;
  for (int attempt = 0; attempt < 2 * cores_; ++attempt) {
    const int victim =
        base + static_cast<int>(me.rng.below(static_cast<std::uint64_t>(cores_)));
    if (victim == w) continue;
    auto& vs = *workers_[static_cast<std::size_t>(victim)];
    std::lock_guard lk(vs.mu);
    if (!vs.high.empty()) {
      out = std::move(vs.high.front());
      vs.high.pop_front();
      return true;
    }
    if (!vs.low.empty()) {
      out = std::move(vs.low.front());
      vs.low.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadExecutor::worker_loop(int w) {
  tls_worker = w;
  Task t;
  while (true) {
    if (try_pop(w, t) || try_steal(w, t)) {
      if (t.fn) t.fn();
      t = Task{};
      if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        drain_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock lk(idle_mu_);
    if (stop_.load()) return;
    idle_cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
}

double ThreadExecutor::drain() {
  const double t0 = now();
  std::unique_lock lk(idle_mu_);
  drain_cv_.wait(lk, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
  return now() - t0;
}

}  // namespace amtfmm
