#include "runtime/thread_executor.hpp"

#include "support/error.hpp"

namespace amtfmm {
namespace {

thread_local int tls_worker = -1;

constexpr int kSpinRounds = 64;   // busy re-check before yielding
constexpr int kYieldRounds = 16;  // yields before parking on the cv

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

}  // namespace

int current_worker() { return tls_worker; }

namespace detail {
void set_current_worker(int w) { tls_worker = w; }
}  // namespace detail

ScopedTrace::ScopedTrace(Executor& ex, std::uint8_t cls, std::uint32_t arg)
    : ex_(ex), cls_(cls), arg_(arg),
      t0_(ex.trace().enabled() ? ex.now() : 0.0) {}

ScopedTrace::~ScopedTrace() {
  if (!ex_.trace().enabled()) return;
  const int w = current_worker();
  if (w < 0) return;
  ex_.trace().record(static_cast<std::uint32_t>(w), cls_, t0_, ex_.now(),
                     arg_);
}

ThreadExecutor::ThreadExecutor(int num_localities, int cores_per_locality,
                               SchedPolicy policy, std::uint64_t seed,
                               CoalesceConfig coalesce)
    : num_localities_(num_localities),
      cores_(cores_per_locality),
      policy_(policy),
      inorder_(static_cast<std::size_t>(num_localities) *
               static_cast<std::size_t>(num_localities)),
      epoch_(std::chrono::steady_clock::now()) {
  AMTFMM_ASSERT(num_localities >= 1 && cores_per_locality >= 1);
  rt_ = std::make_unique<LocalityRuntime>(num_localities, total_workers(),
                                          coalesce);
  const int n = total_workers();
  workers_.reserve(static_cast<std::size_t>(n));
  std::uint64_t sm = seed;
  for (int w = 0; w < n; ++w) {
    auto ws = std::make_unique<WorkerState>();
    ws->rng = Rng(splitmix64(sm));
    workers_.push_back(std::move(ws));
  }
  threads_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadExecutor::~ThreadExecutor() {
  drain();
  {
    SyncLockGuard lk(idle_mu_);
    stop_.store(true, std::memory_order_seq_cst);
    // relaxed-ok: the epoch bump is published by the idle_mu_ unlock below.
    wake_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
  // drain() guarantees no live tasks, but free anything a misuse left behind.
  for (auto& ws : workers_) {
    // relaxed-ok: all workers joined above; this thread is the only one left.
    TaskNode* n = ws->inbox.exchange(nullptr, std::memory_order_relaxed);
    while (n != nullptr) {
      TaskNode* next = n->next;
      delete n;
      n = next;
    }
    while (TaskNode* d = ws->high.pop()) delete d;
    while (TaskNode* d = ws->low.pop()) delete d;
    for (TaskNode* d : ws->overflow_high) delete d;
    for (TaskNode* d : ws->overflow_low) delete d;
  }
}

int ThreadExecutor::current_locality() const {
  const int w = current_worker();
  return (w >= 0 && w < total_workers()) ? w / cores_ : -1;
}

double ThreadExecutor::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

TraceClock ThreadExecutor::trace_clock() const {
  return make_trace_clock(
      std::chrono::duration<double>(epoch_.time_since_epoch()).count());
}

void ThreadExecutor::push_local(int w, TaskNode* n) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  const bool hi = policy_ == SchedPolicy::kPriority && n->task.high_priority;
  auto& dq = hi ? ws.high : ws.low;
  if (!dq.push(n)) {
    (hi ? ws.overflow_high : ws.overflow_low).push_back(n);
  }
  auto& ctr = rt_->counters();
  if (ctr.enabled()) {
    ctr.gauge_max(w, rt_->ids().deque_depth_hw, dq.size_estimate());
  }
}

void ThreadExecutor::spawn(Task t) {
  AMTFMM_ASSERT(t.locality < static_cast<std::uint32_t>(num_localities_));
  // relaxed-ok: the count only needs atomicity; drain()'s completion check
  // re-reads it under idle_mu_ after the last finish.
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  auto* n = new TaskNode{std::move(t), nullptr};
  const int loc = static_cast<int>(n->task.locality);
  const int w = current_worker();
  if (w >= 0 && w < total_workers() && w / cores_ == loc) {
    // Stay on the spawning worker's deque (cheap, steals rebalance).
    push_local(w, n);
  } else {
    // Foreign thread: hand off via the target worker's MPSC inbox.
    // relaxed-ok: round-robin cursor — any distribution is correct.
    const int offset = static_cast<int>(
        spawn_rr_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<std::uint64_t>(cores_));
    auto& ws = *workers_[static_cast<std::size_t>(loc * cores_ + offset)];
    // relaxed-ok: the speculative head read is validated by the CAS; the
    // successful CAS (seq_cst) publishes the node.
    TaskNode* head = ws.inbox.load(std::memory_order_relaxed);
    do {
      n->next = head;
      // relaxed-ok: CAS failure order — retry re-reads, publishes nothing.
    } while (!ws.inbox.compare_exchange_weak(
        head, n, std::memory_order_seq_cst, std::memory_order_relaxed));
  }
  wake_all();
}

void ThreadExecutor::send(std::uint32_t from, std::uint32_t to,
                          std::size_t bytes, Task t) {
  t.locality = to;
  if (from == to) {
    spawn(std::move(t));
    return;
  }
  auto out = rt_->submit(from, to, bytes, std::move(t), now());
  if (!out.batch) {
    // Below threshold: deadline and quiescence flushes are driven by idle
    // workers of the source locality and by drain().
    return;
  }
  if (out.coalesced) {
    deliver(std::move(*out.batch));
    return;
  }
  // Coalescing off: transmit the single-parcel message directly, no
  // destination re-sequencing (each message carries exactly one task).
  const double tn = now();
  rt_->account_batch(*out.batch, tn, tn, /*coalesced=*/false);
  if (rt_->trace().enabled()) {
    const auto w =
        static_cast<std::uint32_t>(LocalityRuntime::metric_worker());
    rt_->trace().record_instant(w, InstantKind::kParcelSend, tn, to);
    rt_->trace().record_instant(w, InstantKind::kParcelRecv, tn, from);
  }
  for (Task& bt : out.batch->tasks) spawn(std::move(bt));
}

void ThreadExecutor::deliver(ParcelBatch b) {
  const auto n = static_cast<std::int64_t>(b.tasks.size());
  const double tn = now();
  rt_->account_batch(b, tn, tn, /*coalesced=*/true);
  if (rt_->trace().enabled()) {
    rt_->trace().record_instant(
        static_cast<std::uint32_t>(LocalityRuntime::metric_worker()),
        InstantKind::kParcelSend, tn, b.dst);
  }
  Task w;
  w.locality = b.dst;
  w.high_priority = b.any_high;
  // shared_ptr keeps the wrapper copyable for std::function.
  w.fn = [this, batch = std::make_shared<ParcelBatch>(std::move(b))]() {
    run_batch_in_order(std::move(*batch));
  };
  // Spawn before dropping the buffered count: quiescence detection must
  // never observe the parcels in neither counter (see the LocalityRuntime
  // buffered invariant).
  spawn(std::move(w));
  rt_->note_batch_consumed(n);
}

void ThreadExecutor::run_batch_in_order(ParcelBatch b) {
  if (rt_->trace().enabled()) {
    rt_->trace().record_instant(
        static_cast<std::uint32_t>(LocalityRuntime::metric_worker()),
        InstantKind::kParcelRecv, now(), b.src);
  }
  InOrder& io = inorder_[static_cast<std::size_t>(b.src) *
                             static_cast<std::size_t>(num_localities_) +
                         b.dst];
  {
    SyncLockGuard lk(io.mu);
    io.ready.emplace(b.seq, std::move(b));
    // A single runner per pair keeps batches strictly serialized.  If the
    // next expected batch is missing, its (already spawned) wrapper task
    // will become the runner when it arrives.
    if (io.running || io.ready.begin()->first != io.expected) return;
    io.running = true;
  }
  for (;;) {
    ParcelBatch cur;
    {
      SyncLockGuard lk(io.mu);
      auto it = io.ready.find(io.expected);
      if (it == io.ready.end()) {
        io.running = false;
        return;
      }
      cur = std::move(it->second);
      io.ready.erase(it);
      ++io.expected;
    }
    for (Task& t : cur.tasks) {
      if (t.fn) t.fn();
    }
  }
}

bool ThreadExecutor::flush_expired(int w) {
  const auto loc = static_cast<std::uint32_t>(w / cores_);
  if (!rt_->coalesce_config().enabled || !rt_->pending_from(loc)) {
    return false;
  }
  auto batches = rt_->take_expired_from(loc, now());
  for (auto& b : batches) deliver(std::move(b));
  return !batches.empty();
}

bool ThreadExecutor::flush_outbound(int w) {
  const auto loc = static_cast<std::uint32_t>(w / cores_);
  if (!rt_->coalesce_config().enabled || !rt_->pending_from(loc)) {
    return false;
  }
  auto batches = rt_->take_all_from(loc);
  for (auto& b : batches) deliver(std::move(b));
  return !batches.empty();
}

void ThreadExecutor::drain_inbox(int w) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  TaskNode* n = ws.inbox.exchange(nullptr, std::memory_order_seq_cst);
  if (n == nullptr) return;
  int moved = 0;
  while (n != nullptr) {
    TaskNode* next = n->next;
    push_local(w, n);
    ++moved;
    n = next;
  }
  auto& ctr = rt_->counters();
  if (ctr.enabled()) {
    const auto& ids = rt_->ids();
    ctr.add(w, ids.inbox_drains);
    ctr.add(w, ids.inbox_tasks, static_cast<std::uint64_t>(moved));
  }
  // The inbox itself is not stealable; now that the tasks sit in a deque,
  // parked peers can help with everything beyond the one we run next.
  if (moved > 1) wake_all();
}

ThreadExecutor::TaskNode* ThreadExecutor::next_task(int w) {
  auto& ws = *workers_[static_cast<std::size_t>(w)];
  drain_inbox(w);
  if (TaskNode* n = ws.high.pop()) return n;
  if (!ws.overflow_high.empty()) {
    TaskNode* n = ws.overflow_high.back();
    ws.overflow_high.pop_back();
    return n;
  }
  if (TaskNode* n = ws.low.pop()) return n;
  if (!ws.overflow_low.empty()) {
    TaskNode* n = ws.overflow_low.back();
    ws.overflow_low.pop_back();
    return n;
  }
  return nullptr;
}

ThreadExecutor::TaskNode* ThreadExecutor::try_steal(int w) {
  // Randomized stealing restricted to the worker's own locality.  The draw
  // excludes the thief itself (cores_ - 1 candidates, remapped around w) so
  // every attempt lands on a real victim.
  if (cores_ <= 1) return nullptr;
  auto& me = *workers_[static_cast<std::size_t>(w)];
  const int base = (w / cores_) * cores_;
  const int self = w - base;
  auto& ctr = rt_->counters();
  const bool counting = ctr.enabled();
  for (int attempt = 0; attempt < 2 * (cores_ - 1); ++attempt) {
    const int r = static_cast<int>(
        me.rng.below(static_cast<std::uint64_t>(cores_ - 1)));
    const int victim = base + (r >= self ? r + 1 : r);
    auto& vs = *workers_[static_cast<std::size_t>(victim)];
    if (counting) ctr.add(w, rt_->ids().steal_attempts);
    TaskNode* n = vs.high.steal();
    if (n == nullptr) n = vs.low.steal();
    if (n != nullptr) {
      if (counting) ctr.add(w, rt_->ids().steal_success);
      if (rt_->trace().enabled()) {
        rt_->trace().record_instant(static_cast<std::uint32_t>(w),
                                    InstantKind::kSteal, now(),
                                    static_cast<std::uint32_t>(victim));
      }
      return n;
    }
  }
  return nullptr;
}

bool ThreadExecutor::work_available(int w) const {
  const auto& me = *workers_[static_cast<std::size_t>(w)];
  if (me.inbox.load(std::memory_order_seq_cst) != nullptr) return true;
  // Own overflow lists are necessarily empty here: only the owner fills
  // them, and it never parks without draining them first.
  const int base = (w / cores_) * cores_;
  for (int v = base; v < base + cores_; ++v) {
    const auto& vs = *workers_[static_cast<std::size_t>(v)];
    if (vs.high.maybe_nonempty() || vs.low.maybe_nonempty()) return true;
  }
  return false;
}

void ThreadExecutor::wake_all() {
  // Dekker pairing with park(): the producer published its task with a
  // seq_cst operation before this load, the consumer increments sleepers_
  // seq_cst before re-checking for work.  Either we observe the sleeper or
  // it observes the task.
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  {
    SyncLockGuard lk(idle_mu_);
    // relaxed-ok: the epoch bump is published by the idle_mu_ unlock.
    wake_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
}

void ThreadExecutor::park(int w) {
  SyncUniqueLock lk(idle_mu_);
  if (stop_.load(std::memory_order_acquire)) return;
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  if (work_available(w)) {  // re-check after announcing ourselves
    // relaxed-ok: retracting the announcement orders nothing; producers
    // that miss it merely take the notify path, which is harmless.
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  auto& ctr = rt_->counters();
  const bool counting = ctr.enabled();
  const double t0 = counting ? now() : 0.0;
  // relaxed-ok: wake_epoch_ is only read/written under idle_mu_, which
  // supplies the ordering; the atomic silences TSan on the wait re-check.
  const std::uint64_t e = wake_epoch_.load(std::memory_order_relaxed);
  // Explicit predicate loop (no wait(pred) overload; see sync_hook.hpp).
  while (!stop_.load(std::memory_order_acquire) &&
         // relaxed-ok: read under idle_mu_ (held between waits), see above.
         wake_epoch_.load(std::memory_order_relaxed) == e) {
    idle_cv_.wait(lk);
  }
  // relaxed-ok: see the early-return fetch_sub above.
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
  if (counting) {
    const auto& ids = rt_->ids();
    ctr.add(w, ids.park_count);
    ctr.add(w, ids.park_time_us,
            static_cast<std::uint64_t>((now() - t0) * 1e6));
  }
}

void ThreadExecutor::worker_loop(int w) {
  tls_worker = w;
  int idle_rounds = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    TaskNode* n = next_task(w);
    if (n == nullptr) n = try_steal(w);
    if (n != nullptr) {
      Task t = std::move(n->task);
      delete n;
      if (t.fn) t.fn();
      rt_->counters().add(w, rt_->ids().tasks_run);
      if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Take the mutex so the notify cannot slip between drain()'s
        // predicate check and its wait.
        SyncLockGuard lk(idle_mu_);
        drain_cv_.notify_all();
      }
      idle_rounds = 0;
      continue;
    }
    ++idle_rounds;
    if (idle_rounds <= kSpinRounds) {
      cpu_relax();
    } else if (idle_rounds <= kSpinRounds + kYieldRounds) {
      // Deadline flushes ride the idle path: an idle worker acts as the
      // communication agent of its locality.
      flush_expired(w);
      std::this_thread::yield();
    } else {
      // About to park: nothing runnable anywhere in this locality, so
      // treat it as (local) quiescence and push out everything buffered.
      if (flush_outbound(w)) {
        idle_rounds = kSpinRounds;  // re-check queues, skip the spin phase
        continue;
      }
      park(w);
      idle_rounds = 0;
    }
  }
}

double ThreadExecutor::drain() {
  const double t0 = now();
  for (;;) {
    // Wait for running tasks first, flush second: a flush while senders
    // are still running would split their buffers mid-fill.  Delivering a
    // batch re-raises outstanding_, hence the loop.
    {
      SyncUniqueLock lk(idle_mu_);
      // Explicit predicate loop (no wait(pred) overload; see sync_hook.hpp).
      while (outstanding_.load(std::memory_order_acquire) != 0) {
        drain_cv_.wait(lk);
      }
    }
    bool flushed = false;
    for (auto& b : rt_->take_all()) {
      deliver(std::move(b));
      flushed = true;
    }
    if (!flushed && rt_->buffered() == 0 &&
        outstanding_.load(std::memory_order_acquire) == 0) {
      return now() - t0;
    }
  }
}

}  // namespace amtfmm
