#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "runtime/coalescer.hpp"
#include "runtime/executor.hpp"
#include "runtime/trace.hpp"

namespace amtfmm {

/// The executor-agnostic per-process runtime core shared by both execution
/// substrates: parcel coalescing buffers, communication counters, the trace
/// sink, and the buffered-parcel quiescence bookkeeping.  ThreadExecutor
/// and SimExecutor are thin schedulers over this one component — they own
/// *when* tasks run and what transport costs, while LocalityRuntime owns
/// *what* is buffered, counted, and traced.
class LocalityRuntime {
 public:
  /// The outcome of handing one remote parcel to the runtime.
  struct Outgoing {
    /// A wire message to put on the transport now (threshold flush, or the
    /// whole single-parcel message when coalescing is off).
    std::optional<ParcelBatch> batch;
    bool coalesced = false;   ///< batch came from the coalescing buffers
    bool first = false;       ///< parcel landed in an empty buffer
    std::uint64_t epoch = 0;  ///< buffer epoch, for deadline timers
  };

  LocalityRuntime(int num_localities, int total_workers,
                  const CoalesceConfig& coalesce)
      : coalescer_(num_localities, coalesce),
        counters_(num_localities),
        trace_(total_workers) {}

  /// Accounts one logical parcel and either returns it as a ready wire
  /// message or buffers it.  With coalescing off the parcel always comes
  /// back as a single-parcel batch (coalesced == false) for the executor to
  /// transmit directly; with coalescing on, a batch is returned only when
  /// the append crossed a threshold, and the buffered_ quiescence counter
  /// is raised *before* the parcel enters the buffer.
  Outgoing submit(std::uint32_t from, std::uint32_t to, std::size_t bytes,
                  Task t, double now) {
    counters_.on_parcel(to, bytes);
    Outgoing out;
    if (!coalescer_.config().enabled) {
      ParcelBatch b;
      b.src = from;
      b.dst = to;
      b.bytes = bytes;
      b.any_high = t.high_priority;
      b.tasks.push_back(std::move(t));
      out.batch = std::move(b);
      return out;
    }
    out.coalesced = true;
    buffered_.fetch_add(1, std::memory_order_seq_cst);
    auto r = coalescer_.enqueue(from, to, bytes, std::move(t), now);
    if (r.ready) out.batch = std::move(*r.ready);
    out.first = r.first;
    out.epoch = r.epoch;
    return out;
  }

  /// Accounts one wire message at transmission: batch counters, flush
  /// reason (coalesced batches only), and the comm trace event with the
  /// executor-supplied start/arrival times.
  void account_batch(const ParcelBatch& b, double start, double arrival,
                     bool coalesced) {
    counters_.on_batch(b.dst, b.tasks.size(), b.bytes);
    if (coalesced) counters_.on_reason(b.reason);
    if (trace_.enabled()) {
      trace_.record_comm(CommEvent{start, arrival, b.src, b.dst,
                                   static_cast<std::uint32_t>(b.tasks.size()),
                                   b.bytes});
    }
  }

  /// Parcels sitting in coalescing buffers.  Invariant (kept by the
  /// executors): a parcel moves from buffered to scheduled by making its
  /// batch runnable *before* note_batch_consumed(), so buffered() == 0
  /// together with the executor's own task count implies true quiescence.
  std::int64_t buffered() const {
    return buffered_.load(std::memory_order_seq_cst);
  }
  void note_batch_consumed(std::int64_t parcels) {
    buffered_.fetch_sub(parcels, std::memory_order_seq_cst);
  }

  // Flush-policy forwarders (see ParcelCoalescer for semantics).
  std::optional<ParcelBatch> take_if_epoch(std::uint32_t src,
                                           std::uint32_t dst,
                                           std::uint64_t epoch) {
    return coalescer_.take_if_epoch(src, dst, epoch);
  }
  std::vector<ParcelBatch> take_expired_from(std::uint32_t src, double now) {
    return coalescer_.take_expired_from(src, now);
  }
  std::vector<ParcelBatch> take_all() { return coalescer_.take_all(); }
  std::vector<ParcelBatch> take_all_from(std::uint32_t src) {
    return coalescer_.take_all_from(src);
  }
  bool pending() const { return coalescer_.pending(); }
  bool pending_from(std::uint32_t src) const {
    return coalescer_.pending_from(src);
  }

  const CoalesceConfig& coalesce_config() const { return coalescer_.config(); }

  TraceSink& trace() { return trace_; }
  const TraceSink& trace() const { return trace_; }

  std::uint64_t bytes() const { return counters_.bytes(); }
  std::uint64_t parcels() const { return counters_.parcels(); }
  CommStats comm_stats() const { return counters_.snapshot(); }

 private:
  ParcelCoalescer coalescer_;
  CommCounters counters_;
  TraceSink trace_;
  std::atomic<std::int64_t> buffered_{0};
};

}  // namespace amtfmm
