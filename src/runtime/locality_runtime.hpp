#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "kernels/kernel.hpp"
#include "runtime/coalescer.hpp"
#include "runtime/counters.hpp"
#include "runtime/executor.hpp"
#include "runtime/trace.hpp"

namespace amtfmm {

/// Ids of the standard runtime metrics, registered by LocalityRuntime at
/// construction so hot paths never pay a name lookup.  Taxonomy (see
/// DESIGN.md "Observability"): `sched.*` scheduler behaviour, `coalesce.*`
/// the parcel coalescing layer, `lco.*` dataflow synchronization, `gas.*`
/// global-address-space occupancy, `op.<name>.tasks` per-operator task
/// counts filled by the DAG engine, `serve.*` the resident-pipeline epoch
/// lifecycle (re-evaluations, reset latency, incremental-update churn,
/// request-batch high-water).
struct RuntimeCounterIds {
  CounterRegistry::Id steal_attempts = 0;
  CounterRegistry::Id steal_success = 0;
  CounterRegistry::Id park_count = 0;
  CounterRegistry::Id park_time_us = 0;
  CounterRegistry::Id inbox_drains = 0;
  CounterRegistry::Id inbox_tasks = 0;
  CounterRegistry::Id tasks_run = 0;
  CounterRegistry::Id deque_depth_hw = 0;       ///< gauge
  CounterRegistry::Id coalesce_buffered_hw = 0; ///< gauge
  CounterRegistry::Id flush_threshold = 0;
  CounterRegistry::Id flush_deadline = 0;
  CounterRegistry::Id flush_quiescence = 0;
  CounterRegistry::Id gas_objects_hw = 0;       ///< gauge
  CounterRegistry::Id lco_input_wait_us = 0;    ///< histogram
  CounterRegistry::Id serve_epochs = 0;         ///< resident re-evaluations
  CounterRegistry::Id serve_reset_us = 0;       ///< histogram: epoch reset
  CounterRegistry::Id serve_epoch_us = 0;       ///< histogram: epoch latency
  CounterRegistry::Id serve_dirty_leaves = 0;   ///< incremental-update leaves
  CounterRegistry::Id serve_batch_size_hw = 0;  ///< gauge: request batch size
  std::array<CounterRegistry::Id, kNumOperators> op_tasks{};
};

/// The executor-agnostic per-process runtime core shared by both execution
/// substrates: parcel coalescing buffers, communication counters, the trace
/// sink, and the buffered-parcel quiescence bookkeeping.  ThreadExecutor
/// and SimExecutor are thin schedulers over this one component — they own
/// *when* tasks run and what transport costs, while LocalityRuntime owns
/// *what* is buffered, counted, and traced.
class LocalityRuntime {
 public:
  /// The outcome of handing one remote parcel to the runtime.
  struct Outgoing {
    /// A wire message to put on the transport now (threshold flush, or the
    /// whole single-parcel message when coalescing is off).
    std::optional<ParcelBatch> batch;
    bool coalesced = false;   ///< batch came from the coalescing buffers
    bool first = false;       ///< parcel landed in an empty buffer
    std::uint64_t epoch = 0;  ///< buffer epoch, for deadline timers
  };

  LocalityRuntime(int num_localities, int total_workers,
                  const CoalesceConfig& coalesce)
      : coalescer_(num_localities, coalesce),
        counters_(num_localities),
        trace_(total_workers),
        metrics_(total_workers) {
    ids_.steal_attempts = metrics_.counter("sched.steal_attempts");
    ids_.steal_success = metrics_.counter("sched.steal_success");
    ids_.park_count = metrics_.counter("sched.park_count");
    ids_.park_time_us = metrics_.counter("sched.park_time_us");
    ids_.inbox_drains = metrics_.counter("sched.inbox_drains");
    ids_.inbox_tasks = metrics_.counter("sched.inbox_tasks");
    ids_.tasks_run = metrics_.counter("sched.tasks_run");
    ids_.deque_depth_hw = metrics_.gauge("sched.deque_depth_hw");
    ids_.coalesce_buffered_hw = metrics_.gauge("coalesce.buffered_hw");
    ids_.flush_threshold = metrics_.counter("coalesce.flush_threshold");
    ids_.flush_deadline = metrics_.counter("coalesce.flush_deadline");
    ids_.flush_quiescence = metrics_.counter("coalesce.flush_quiescence");
    ids_.gas_objects_hw = metrics_.gauge("gas.objects_hw");
    ids_.lco_input_wait_us = metrics_.histogram("lco.input_wait_us");
    ids_.serve_epochs = metrics_.counter("serve.epochs");
    ids_.serve_reset_us = metrics_.histogram("serve.reset_us");
    ids_.serve_epoch_us = metrics_.histogram("serve.epoch_us");
    ids_.serve_dirty_leaves = metrics_.counter("serve.dirty_leaves");
    ids_.serve_batch_size_hw = metrics_.gauge("serve.batch_size_hw");
    for (int op = 0; op < kNumOperators; ++op) {
      ids_.op_tasks[static_cast<std::size_t>(op)] = metrics_.counter(
          std::string("op.") + to_string(static_cast<Operator>(op)) +
          ".tasks");
    }
  }

  /// Accounts one logical parcel and either returns it as a ready wire
  /// message or buffers it.  With coalescing off the parcel always comes
  /// back as a single-parcel batch (coalesced == false) for the executor to
  /// transmit directly; with coalescing on, a batch is returned only when
  /// the append crossed a threshold, and the buffered_ quiescence counter
  /// is raised *before* the parcel enters the buffer.
  Outgoing submit(std::uint32_t from, std::uint32_t to, std::size_t bytes,
                  Task t, double now) {
    counters_.on_parcel(to, bytes);
    Outgoing out;
    if (!coalescer_.config().enabled) {
      ParcelBatch b;
      b.src = from;
      b.dst = to;
      b.bytes = bytes;
      b.any_high = t.high_priority;
      b.tasks.push_back(std::move(t));
      out.batch = std::move(b);
      return out;
    }
    out.coalesced = true;
    const std::int64_t cur =
        buffered_.fetch_add(1, std::memory_order_seq_cst) + 1;
    metrics_.gauge_max(metric_worker(), ids_.coalesce_buffered_hw,
                       static_cast<std::uint64_t>(cur));
    auto r = coalescer_.enqueue(from, to, bytes, std::move(t), now);
    if (r.ready) out.batch = std::move(*r.ready);
    out.first = r.first;
    out.epoch = r.epoch;
    return out;
  }

  /// Accounts one wire message at transmission: batch counters, flush
  /// reason (coalesced batches only), and the comm trace event with the
  /// executor-supplied start/arrival times.
  void account_batch(const ParcelBatch& b, double start, double arrival,
                     bool coalesced) {
    counters_.on_batch(b.dst, b.tasks.size(), b.bytes);
    if (coalesced) {
      counters_.on_reason(b.reason);
      const int w = metric_worker();
      switch (b.reason) {
        case FlushReason::kThreshold:
          metrics_.add(w, ids_.flush_threshold);
          break;
        case FlushReason::kDeadline:
          metrics_.add(w, ids_.flush_deadline);
          break;
        case FlushReason::kQuiescence:
          metrics_.add(w, ids_.flush_quiescence);
          break;
      }
    }
    if (trace_.enabled()) {
      trace_.record_comm(CommEvent{start, arrival, b.src, b.dst,
                                   static_cast<std::uint32_t>(b.tasks.size()),
                                   b.bytes});
    }
  }

  /// Parcels sitting in coalescing buffers.  Invariant (kept by the
  /// executors): a parcel moves from buffered to scheduled by making its
  /// batch runnable *before* note_batch_consumed(), so buffered() == 0
  /// together with the executor's own task count implies true quiescence.
  std::int64_t buffered() const {
    return buffered_.load(std::memory_order_seq_cst);
  }
  void note_batch_consumed(std::int64_t parcels) {
    buffered_.fetch_sub(parcels, std::memory_order_seq_cst);
  }

  // Flush-policy forwarders (see ParcelCoalescer for semantics).
  std::optional<ParcelBatch> take_if_epoch(std::uint32_t src,
                                           std::uint32_t dst,
                                           std::uint64_t epoch) {
    return coalescer_.take_if_epoch(src, dst, epoch);
  }
  std::vector<ParcelBatch> take_expired_from(std::uint32_t src, double now) {
    return coalescer_.take_expired_from(src, now);
  }
  std::vector<ParcelBatch> take_all() { return coalescer_.take_all(); }
  std::vector<ParcelBatch> take_all_from(std::uint32_t src) {
    return coalescer_.take_all_from(src);
  }
  bool pending() const { return coalescer_.pending(); }
  bool pending_from(std::uint32_t src) const {
    return coalescer_.pending_from(src);
  }

  const CoalesceConfig& coalesce_config() const { return coalescer_.config(); }

  TraceSink& trace() { return trace_; }
  const TraceSink& trace() const { return trace_; }

  CounterRegistry& counters() { return metrics_; }
  const CounterRegistry& counters() const { return metrics_; }
  const RuntimeCounterIds& ids() const { return ids_; }

  /// Shard for metric updates from the calling thread: the worker id, or
  /// shard 0 for non-worker threads (main thread, sim event loop).
  static int metric_worker() {
    const int w = current_worker();
    return w >= 0 ? w : 0;
  }

  std::uint64_t bytes() const { return counters_.bytes(); }
  std::uint64_t parcels() const { return counters_.parcels(); }
  CommStats comm_stats() const { return counters_.snapshot(); }

 private:
  ParcelCoalescer coalescer_;
  CommCounters counters_;
  TraceSink trace_;
  CounterRegistry metrics_;
  RuntimeCounterIds ids_;
  std::atomic<std::int64_t> buffered_{0};
};

}  // namespace amtfmm
