#include "runtime/runtime.hpp"

namespace amtfmm {

Runtime::Runtime(const RuntimeConfig& cfg)
    : cfg_(cfg), gas_(cfg.localities) {
  if (cfg.mode == ExecMode::kThreads) {
    exec_ = std::make_unique<ThreadExecutor>(cfg.localities,
                                             cfg.cores_per_locality,
                                             cfg.policy, cfg.seed,
                                             cfg.coalesce);
  } else {
    exec_ = std::make_unique<SimExecutor>(cfg.localities,
                                          cfg.cores_per_locality, cfg.policy,
                                          cfg.network, cfg.seed,
                                          cfg.coalesce);
  }
}

std::uint32_t Runtime::register_action(ActionFn fn) {
  actions_.push_back(std::move(fn));
  return static_cast<std::uint32_t>(actions_.size() - 1);
}

void Runtime::send_parcel(std::uint32_t from, Parcel p,
                          std::vector<CostItem> items, bool high_priority) {
  const std::uint32_t to = p.target.locality;
  const std::size_t bytes = p.payload.size() + 32;  // header estimate
  Task t;
  t.locality = to;
  t.high_priority = high_priority;
  t.items = std::move(items);
  t.fn = [this, parcel = std::move(p)]() {
    actions_[parcel.action](*this, parcel);
  };
  exec_->send(from, to, bytes, std::move(t));
}

}  // namespace amtfmm
