#pragma once

#include <atomic>
#include <cstring>
#include <span>

#include "runtime/executor.hpp"
#include "runtime/sync_hook.hpp"

namespace amtfmm {

/// Local Control Object: an event-driven, globally addressable
/// synchronization object co-locating data and control (section III of the
/// paper).  An LCO has input slots, a predicate (here: a countdown over the
/// expected number of inputs), and dynamically registered continuations
/// that are spawned as lightweight tasks exactly once, when the predicate
/// first holds.
///
/// Subclasses define what an input *is* by overriding reduce(); the base
/// class owns the concurrency: inputs may arrive from any worker, and
/// continuations may be registered before or after the trigger (a late
/// registration fires immediately) — the behaviour Figure 2 of the paper
/// illustrates.
class LCO {
 public:
  LCO(Executor& ex, int inputs_needed)
      : ex_(ex), remaining_(inputs_needed) {
    if (inputs_needed == 0) triggered_.store(true, std::memory_order_release);
  }
  virtual ~LCO() = default;

  /// Applies one input.  `data` is interpreted by the subclass's reduce().
  /// Thread safe; the reduction itself is serialized per LCO.
  void set_input(std::span<const std::byte> data);

  /// Registers a continuation task; spawned when (or immediately if) the
  /// LCO is triggered.
  void register_continuation(Task t);

  bool triggered() const { return triggered_.load(std::memory_order_acquire); }

  /// Blocks the calling (non-worker) thread until triggered.  Real-mode
  /// only; in sim mode drain the executor instead.
  void wait();

  /// Re-arms the trigger-once state for a new epoch: resets the countdown
  /// to `inputs_needed` and clears the trigger (set immediately when
  /// `inputs_needed == 0`, mirroring the constructor).  NOT thread safe
  /// with respect to set_input/fire: like Gas::reset(), the caller must
  /// guarantee quiescence (executor drained, no in-flight inputs).  Under
  /// rtcheck the kLcoRearm event resets the double-fire detector, so a
  /// re-armed LCO may legally fire once more.
  void rearm(int inputs_needed);

 protected:
  /// Reduction of one input into the LCO's data; called under the LCO lock.
  virtual void reduce(std::span<const std::byte> data) = 0;
  /// Invoked once, after the final input and before continuations run.
  virtual void on_trigger() {}
  /// Invoked once, outside the LCO lock, after the trigger is published and
  /// before the registered continuations are spawned.  Subclasses use this
  /// to run trigger-time work that itself takes locks or spawns tasks
  /// (e.g. ExpansionLCO walking its out-edges).
  virtual void on_fire() {}

  Executor& ex_;

 private:
  void fire();

  // SyncMutex/SyncCondVar wrap std::mutex/std::condition_variable with the
  // thread-safety capability annotations; under AMTFMM_RTCHECK they are
  // also model-checker schedule points.
  SyncMutex mu_;
  SyncCondVar cv_;
  std::vector<Task> continuations_ GUARDED_BY(mu_);
  std::atomic<int> remaining_;
  std::atomic<bool> triggered_{false};
  /// Executor-clock time of the first input (-1 until seen); written under
  /// mu_, read by fire() after the final input *outside* the lock (the
  /// cold metrics path).  Atomic for exactly that unlocked read:
  /// -Wthread-safety rejected the previous plain double under GUARDED_BY,
  /// and without the annotation the read raced formally even though the
  /// acq_rel chain on remaining_ ordered it in practice.
  std::atomic<double> first_input_t_{-1.0};
};

/// Single-assignment future holding a trivially copyable value.
template <typename T>
class FutureLCO final : public LCO {
 public:
  explicit FutureLCO(Executor& ex) : LCO(ex, 1) {}

  void set(const T& value) {
    set_input(std::as_bytes(std::span<const T>(&value, 1)));
  }
  const T& get() {
    wait();
    return value_;
  }

 protected:
  void reduce(std::span<const std::byte> data) override {
    std::memcpy(&value_, data.data(), sizeof(T));
  }

 private:
  T value_{};
};

/// N-input sum reduction over doubles (the paper's example LCO class).
class SumLCO final : public LCO {
 public:
  SumLCO(Executor& ex, int inputs) : LCO(ex, inputs) {}

  void add(double v) {
    set_input(std::as_bytes(std::span<const double>(&v, 1)));
  }
  double value() {
    wait();
    return sum_;
  }

 protected:
  void reduce(std::span<const std::byte> data) override {
    double v;
    std::memcpy(&v, data.data(), sizeof(double));
    sum_ += v;
  }

 private:
  double sum_ = 0.0;
};

}  // namespace amtfmm
