#pragma once

#include <deque>
#include <queue>

#include "runtime/executor.hpp"
#include "support/rng.hpp"

namespace amtfmm {

/// Interconnect model for the simulated cluster: per-locality injection
/// bandwidth plus a flat latency (an alpha-beta model of the paper's Cray
/// Gemini torus).  Defaults approximate Gemini: ~1.5 us latency, ~6 GB/s
/// per-NIC injection bandwidth.
struct NetworkModel {
  double latency = 1.5e-6;          // seconds per message
  double bandwidth = 6.0e9;         // bytes per second per locality NIC
  double task_overhead = 0.25e-6;   // scheduler cost to start a task
};

/// Discrete-event simulation of the runtime: L localities x C cores on a
/// virtual clock.  This executes the *actual* DAG — every LCO trigger and
/// every continuation really runs (with its structural side effects); only
/// the time each one takes is modelled, via the per-task CostItem
/// breakdowns supplied by the caller and calibrated from measured operator
/// times (see core/cost_model.hpp).  This is the substitution for the
/// paper's 4096-core Big Red II runs — see DESIGN.md.
///
/// Scheduling per locality:
///  - kWorkStealing: a shared pool drained in LIFO order with randomized
///    tie-breaking (the aggregate behaviour of per-core deques + stealing),
///  - kFifo: oldest-first,
///  - kPriority: two-level queue, high first (the section VI proposal).
///
/// The simulation is deterministic for a fixed seed.
class SimExecutor final : public Executor {
 public:
  SimExecutor(int num_localities, int cores_per_locality,
              SchedPolicy policy = SchedPolicy::kWorkStealing,
              NetworkModel net = {}, std::uint64_t seed = 1);

  int num_localities() const override { return num_localities_; }
  int cores_per_locality() const override { return cores_; }

  void spawn(Task t) override;
  void send(std::uint32_t from, std::uint32_t to, std::size_t bytes,
            Task t) override;
  double drain() override;
  double now() const override { return now_; }

  std::uint64_t bytes_sent() const override { return bytes_sent_; }
  std::uint64_t parcels_sent() const override { return parcels_sent_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return time > o.time || (time == o.time && seq > o.seq);
    }
  };
  struct LocalityState {
    std::deque<Task> high;
    std::deque<Task> low;
    int busy_cores = 0;
    double nic_free = 0.0;
    Rng rng{0};
  };

  void post(double time, std::function<void()> fn);
  void try_dispatch(std::uint32_t loc);
  void run_task(std::uint32_t loc, Task t);

  int num_localities_;
  int cores_;
  SchedPolicy policy_;
  NetworkModel net_;
  std::vector<LocalityState> locs_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t parcels_sent_ = 0;
};

}  // namespace amtfmm
