#pragma once

#include <deque>
#include <queue>

#include "runtime/executor.hpp"
#include "runtime/locality_runtime.hpp"
#include "support/rng.hpp"

namespace amtfmm {

/// Interconnect model for the simulated cluster: per-locality NIC occupancy
/// plus a per-message latency (an alpha-beta model of the paper's Cray
/// Gemini torus).  Each wire message — a parcel, or a coalesced batch of
/// parcels — occupies the destination locality's NIC for
/// `latency + bytes / bandwidth` seconds and is delivered when the
/// occupancy ends, so successive messages to one locality serialize and
/// the per-message alpha is what coalescing amortizes (the Gemini
/// small-message regime the paper depends on).  Defaults approximate
/// Gemini: ~1.5 us latency, ~6 GB/s per-NIC injection bandwidth.
struct NetworkModel {
  double latency = 1.5e-6;          // seconds per message (alpha)
  double bandwidth = 6.0e9;         // bytes per second per locality NIC
  double task_overhead = 0.25e-6;   // scheduler cost to start a task
};

/// Discrete-event simulation of the runtime: L localities x C cores on a
/// virtual clock.  This executes the *actual* DAG — every LCO trigger and
/// every continuation really runs (with its structural side effects); only
/// the time each one takes is modelled, via the per-task CostItem
/// breakdowns supplied by the caller and calibrated from measured operator
/// times (see core/cost_model.hpp).  This is the substitution for the
/// paper's 4096-core Big Red II runs — see DESIGN.md.
///
/// Scheduling per locality:
///  - kWorkStealing: a shared pool drained in LIFO order with randomized
///    tie-breaking (the aggregate behaviour of per-core deques + stealing),
///  - kFifo: oldest-first,
///  - kPriority: two-level queue, high first (the section VI proposal).
///
/// Parcel coalescing (CoalesceConfig.enabled): remote sends buffer per
/// (src, dst) pair; a batch transmits on threshold, on a flush-deadline
/// timer event armed when a buffer first fills, or when the event loop
/// finds no live work (quiescence).  A batch costs one alpha plus the
/// summed beta * bytes on the destination NIC, so the model rewards
/// coalescing exactly as the paper's interconnect did.  Per-(src,dst)
/// delivery order stays FIFO (NIC occupancy is monotone per destination).
///
/// The simulation is deterministic for a fixed seed.
class SimExecutor final : public Executor {
 public:
  SimExecutor(int num_localities, int cores_per_locality,
              SchedPolicy policy = SchedPolicy::kWorkStealing,
              NetworkModel net = {}, std::uint64_t seed = 1,
              CoalesceConfig coalesce = {});

  int num_localities() const override { return num_localities_; }
  int cores_per_locality() const override { return cores_; }
  int current_locality() const override { return current_loc_; }

  void spawn(Task t) override;
  void send(std::uint32_t from, std::uint32_t to, std::size_t bytes,
            Task t) override;
  double drain() override;
  double now() const override { return now_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    /// Live events are task completions and batch arrivals; timer events
    /// (deadline flushes) do not advance the clock unless they fire and do
    /// not keep quiescence detection from flushing buffers.
    bool live;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return time > o.time || (time == o.time && seq > o.seq);
    }
  };
  struct LocalityState {
    std::deque<Task> high;
    std::deque<Task> low;
    int busy_cores = 0;
    double nic_free = 0.0;
    Rng rng{0};
  };

  void post(double time, std::function<void()> fn, bool live = true);
  void try_dispatch(std::uint32_t loc);
  void run_task(std::uint32_t loc, Task t);
  /// Puts one wire message on the destination NIC and schedules delivery.
  void transmit(ParcelBatch b, bool coalesced);

  int num_localities_;
  int cores_;
  SchedPolicy policy_;
  NetworkModel net_;
  std::vector<LocalityState> locs_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t live_events_ = 0;
  /// Locality of the task body currently running inside the event loop, or
  /// -1 between tasks; backs current_locality() for the engine's debug
  /// ownership checks.
  int current_loc_ = -1;
};

}  // namespace amtfmm
