#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/evaluator.hpp"

namespace amtfmm {

namespace net {
class NetExecutor;
}

/// The setup artifacts of one geometry: dual tree, interaction lists, and
/// the explicit DAG.  Deterministic from the inputs and the configuration
/// alone (the SPMD agreement distributed ranks rely on).
struct PreparedModel {
  DualTree tree;
  InteractionLists lists;
  Dag dag;
};

/// Builds the model for one geometry: tree, kernel tables, lists, DAG.
PreparedModel build_model(Kernel& kernel, const EvalConfig& cfg,
                          std::span<const Vec3> sources,
                          std::span<const Vec3> targets, int localities);

/// One independent target-query set of a batched evaluation: indices into
/// the pipeline's target ensemble (original caller order).
struct EvalRequest {
  std::vector<std::uint32_t> targets;
};

/// A batched evaluation: the combined single-traversal result plus the
/// per-request demux (request r's potentials in its own index order).
struct BatchEvalResult {
  EvalResult combined;
  std::vector<std::vector<double>> per_request;
};

/// One incremental geometry update: point relocations, removals (sorted
/// unique original indices, vector-erase renumbering), and insertions
/// (appended after the survivors).
struct PipelineUpdate {
  std::vector<PointMove> moves;
  std::vector<std::uint32_t> erased;
  std::vector<Vec3> inserted;
};

/// What an update did: patched in place (dirty leaves re-sorted, DAG
/// metrics refreshed, LCO arena kept) or fell back to a full rebuild.
struct PipelineUpdateStats {
  bool rebuilt = false;
  std::size_t dirty_leaves = 0;
};

/// FMM-as-a-service: the resident, reusable evaluation pipeline.  Where
/// Evaluator::evaluate lives one shot — build tree, allocate the GAS/LCO
/// arena, evaluate, tear everything down — the pipeline keeps every layer
/// alive across epochs:
///
///  - the executor (worker pool or socket mesh) stays up; per-epoch
///    transport statistics are deltas against a baseline snapshot, so the
///    wire_bytes == bytes_sent identity holds per epoch on a shared
///    executor,
///  - the DagEngine is resident: epoch 1 instantiates the GAS arena, every
///    later epoch re-arms the same LCOs in place and replays the leaf
///    seeds — zero GAS/LCO allocations in steady state,
///  - geometry changes go through update_sources/update_targets, which
///    re-sort only the dirty leaves and refresh the count-dependent DAG
///    annotations; a structure change falls back to a full rebuild,
///  - independent target-query sets ride one traversal via evaluate_batch
///    with per-request demux.
///
/// With a NetExecutor every rank runs the identical pipeline (SPMD): same
/// updates, same epochs, in the same order.
class EvalPipeline {
 public:
  /// Resident in-process pipeline owning a ThreadExecutor.
  EvalPipeline(Kernel& kernel, const EvalConfig& cfg,
               std::span<const Vec3> sources, std::span<const Vec3> targets);
  /// Resident multi-process pipeline over a borrowed socket executor (one
  /// SPMD rank).  Potentials are this rank's partial result, exactly as in
  /// Evaluator::evaluate_distributed.
  EvalPipeline(Kernel& kernel, const EvalConfig& cfg,
               std::span<const Vec3> sources, std::span<const Vec3> targets,
               net::NetExecutor& ex);
  ~EvalPipeline();

  EvalPipeline(const EvalPipeline&) = delete;
  EvalPipeline& operator=(const EvalPipeline&) = delete;

  /// One epoch: evaluates the resident DAG for `charges` (original order,
  /// one per source).  Trace buffers accumulate across epochs when tracing
  /// is on (export once with epoch metadata); all transport statistics in
  /// the result are this epoch's deltas.
  EvalResult evaluate(std::span<const double> charges);

  /// One epoch carrying many independent target-query sets: a single
  /// traversal computes all potentials, then each request's slice is
  /// demuxed out in its own index order.
  BatchEvalResult evaluate_batch(std::span<const double> charges,
                                 std::span<const EvalRequest> requests);

  /// Applies a geometry update to the source/target ensemble.  Prefers the
  /// structure-preserving incremental path (dirty-leaf re-sort + DAG
  /// metric refresh, LCO arena untouched); rebuilds everything when the
  /// tree structure would change.  Source indices in later `charges` spans
  /// follow the update's vector-erase-then-append renumbering.
  PipelineUpdateStats update_sources(const PipelineUpdate& u);
  PipelineUpdateStats update_targets(const PipelineUpdate& u);

  std::size_t num_sources() const { return src_pts_.size(); }
  std::size_t num_targets() const { return tgt_pts_.size(); }
  const PreparedModel& model() const { return model_; }
  Executor& executor() { return *ex_; }

  /// Completed epochs on the current resident engine (resets on rebuild).
  std::uint64_t epochs() const;
  /// Tree + lists + DAG construction seconds (last build or rebuild).
  double setup_seconds() const { return setup_seconds_; }
  /// Seconds spent re-arming the resident arena before the last epoch.
  double last_reset_seconds() const;
  /// GAS allocations during the last epoch (0 in steady state).
  std::uint64_t gas_allocs_last_epoch() const;
  /// Resident GAS objects on one locality.
  std::size_t gas_objects_on(std::uint32_t locality) const;
  /// Full rebuilds forced by structure-changing updates.
  std::uint64_t rebuilds() const { return rebuilds_; }
  /// Executor-clock start time of each epoch (for multi-epoch trace
  /// exports: ChromeTraceOptions::epochs).
  const std::vector<double>& epoch_start_times() const {
    return epoch_starts_;
  }

 private:
  void build(std::span<const Vec3> sources, std::span<const Vec3> targets);
  void rebuild();
  PipelineUpdateStats apply_update(bool source_side, const PipelineUpdate& u);
  void snapshot_baseline();

  Kernel& kernel_;
  EvalConfig cfg_;
  std::vector<Vec3> src_pts_;  ///< original caller order
  std::vector<Vec3> tgt_pts_;
  PreparedModel model_;
  std::unique_ptr<ThreadExecutor> owned_ex_;
  Executor* ex_ = nullptr;
  std::unique_ptr<DagEngine> engine_;
  std::vector<double> sorted_q_;  ///< reused per-epoch staging
  std::vector<double> sorted_phi_;
  double setup_seconds_ = 0.0;
  std::uint64_t rebuilds_ = 0;
  std::vector<double> epoch_starts_;
  /// Per-epoch transport baselines (the executor's counters are
  /// cumulative; the engine's wire count is per-execute).
  std::uint64_t bytes_base_ = 0;
  std::uint64_t parcels_base_ = 0;
  CommStats comm_base_;
};

}  // namespace amtfmm
