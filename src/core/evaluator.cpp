#include "core/evaluator.hpp"

#include "runtime/locality_runtime.hpp"
#include "runtime/net/net_executor.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace amtfmm {
namespace {

/// Dag::edges flattened to [src, dst, ...] in edge-id order, recovering the
/// implicit CSR source from each node's [first_edge, first_edge+num_edges).
std::vector<std::uint32_t> flatten_edges(const Dag& dag) {
  std::vector<std::uint32_t> flat(2 * dag.edges.size());
  for (NodeIndex ni = 0; ni < dag.nodes.size(); ++ni) {
    const DagNode& n = dag.nodes[ni];
    for (std::uint32_t e = n.first_edge; e < n.first_edge + n.num_edges;
         ++e) {
      flat[2 * e] = ni;
      flat[2 * e + 1] = dag.edges[e].target;
    }
  }
  return flat;
}

}  // namespace

Evaluator::Evaluator(std::unique_ptr<Kernel> kernel, EvalConfig cfg)
    : kernel_(std::move(kernel)), cfg_(cfg) {
  AMTFMM_ASSERT(kernel_ != nullptr);
  if (cfg_.threshold < 1 || cfg_.digits < 1) {
    throw config_error("threshold and digits must be positive");
  }
  kernel_->set_m2l_mode(cfg_.m2l_mode);
}

Evaluator::~Evaluator() = default;

Evaluator::Prepared Evaluator::make_prepared(std::span<const Vec3> sources,
                                             std::span<const Vec3> targets,
                                             int localities) {
  Prepared p{build_dual_tree(sources, targets, cfg_.threshold, localities),
             {},
             {}};
  kernel_->setup(p.tree.source.domain().size,
                 std::max(p.tree.source.max_level(),
                          p.tree.target.max_level()) + 1,
                 cfg_.digits);
  p.lists = build_lists(p.tree);
  DagBuildConfig dcfg;
  dcfg.method = cfg_.method;
  dcfg.placement = cfg_.placement;
  dcfg.bh_theta = cfg_.bh_theta;
  p.dag = build_dag(p.tree, p.lists, *kernel_, dcfg, localities);
  return p;
}

EvalResult Evaluator::run_prepared(const Prepared& p,
                                   std::span<const double> charges) {
  AMTFMM_ASSERT(charges.size() == p.tree.source.num_points());
  EvalResult out;
  out.dag = p.dag.stats();

  // Charges into tree order.
  std::vector<double> sorted_q(charges.size());
  for (std::size_t i = 0; i < charges.size(); ++i) {
    sorted_q[i] = charges[p.tree.source.original_index()[i]];
  }
  std::vector<double> sorted_phi(p.tree.target.num_points(), 0.0);

  ThreadExecutor ex(cfg_.localities, cfg_.cores_per_locality,
                    cfg_.split_priority ? SchedPolicy::kPriority : cfg_.policy,
                    cfg_.seed, cfg_.coalesce);
  ex.trace().set_enabled(cfg_.trace);
  ex.counters().set_enabled(cfg_.counters);
  EngineOptions opt;
  opt.mode = EngineMode::kCompute;
  opt.split_priority = cfg_.split_priority;
  DagEngine engine(p.dag, p.tree, *kernel_, ex, opt);
  out.makespan = engine.execute(sorted_q, sorted_phi);

  out.potentials.assign(sorted_phi.size(), 0.0);
  for (std::size_t i = 0; i < sorted_phi.size(); ++i) {
    out.potentials[p.tree.target.original_index()[i]] = sorted_phi[i];
  }
  out.bytes_sent = ex.bytes_sent();
  out.parcels_sent = ex.parcels_sent();
  out.wire_bytes = engine.wire_bytes();
  // The engine is the executor's only sender, and every remote byte is
  // serialized — the transport count must equal the wire-format count.
  AMTFMM_ASSERT(out.wire_bytes == out.bytes_sent);
  out.comm = ex.comm_stats();
  if (cfg_.trace) {
    out.trace = ex.trace().collect();
    out.comm_trace = ex.trace().collect_comm();
    out.instants = ex.trace().collect_instants();
    out.dag_edges = flatten_edges(p.dag);
  }
  if (cfg_.counters) out.counters = ex.counters().snapshot();
  return out;
}

EvalResult Evaluator::evaluate(std::span<const Vec3> sources,
                               std::span<const double> charges,
                               std::span<const Vec3> targets) {
  AMTFMM_ASSERT(sources.size() == charges.size());
  Timer setup;
  const Prepared p = make_prepared(sources, targets, cfg_.localities);
  const double setup_time = setup.seconds();
  EvalResult out = run_prepared(p, charges);
  out.setup_time = setup_time;
  return out;
}

void Evaluator::prepare(std::span<const Vec3> sources,
                        std::span<const Vec3> targets) {
  Timer setup;
  prepared_ = std::make_unique<Prepared>(
      make_prepared(sources, targets, cfg_.localities));
  prepared_setup_time_ = setup.seconds();
}

EvalResult Evaluator::evaluate_prepared(std::span<const double> charges) {
  if (!prepared_) {
    throw config_error("evaluate_prepared() requires a prior prepare()");
  }
  EvalResult out = run_prepared(*prepared_, charges);
  out.setup_time = prepared_setup_time_;  // amortized across calls
  return out;
}

EvalResult Evaluator::evaluate_distributed(net::NetExecutor& ex,
                                           std::span<const Vec3> sources,
                                           std::span<const double> charges,
                                           std::span<const Vec3> targets) {
  AMTFMM_ASSERT(sources.size() == charges.size());
  Timer setup;
  // Deterministic from the inputs alone: every rank computes the same
  // tree, lists, DAG, and placement — the SPMD agreement the transport
  // relies on (parcels name DAG edges, not pointers).
  const Prepared p = make_prepared(sources, targets, ex.num_localities());
  EvalResult out;
  out.setup_time = setup.seconds();
  out.dag = p.dag.stats();

  std::vector<double> sorted_q(charges.size());
  for (std::size_t i = 0; i < charges.size(); ++i) {
    sorted_q[i] = charges[p.tree.source.original_index()[i]];
  }
  std::vector<double> sorted_phi(p.tree.target.num_points(), 0.0);

  ex.trace().set_enabled(cfg_.trace);
  ex.counters().set_enabled(cfg_.counters);
  EngineOptions opt;
  opt.mode = EngineMode::kCompute;
  opt.split_priority = cfg_.split_priority;
  DagEngine engine(p.dag, p.tree, *kernel_, ex, opt);
  out.makespan = engine.execute(sorted_q, sorted_phi);

  out.potentials.assign(sorted_phi.size(), 0.0);
  for (std::size_t i = 0; i < sorted_phi.size(); ++i) {
    out.potentials[p.tree.target.original_index()[i]] = sorted_phi[i];
  }
  out.bytes_sent = ex.bytes_sent();
  out.parcels_sent = ex.parcels_sent();
  out.wire_bytes = engine.wire_bytes();
  // Per-rank form of the transport identity: this rank serialized
  // exactly the bytes it handed to the socket layer.
  AMTFMM_ASSERT(out.wire_bytes == out.bytes_sent);
  out.comm = ex.comm_stats();
  if (cfg_.trace) {
    out.trace = ex.trace().collect();
    out.comm_trace = ex.trace().collect_comm();
    out.instants = ex.trace().collect_instants();
    out.dag_edges = flatten_edges(p.dag);
  }
  if (cfg_.counters) out.counters = ex.counters().snapshot();
  return out;
}

SimResult Evaluator::simulate(std::span<const Vec3> sources,
                              std::span<const Vec3> targets,
                              const SimConfig& sim) {
  SimResult out;
  const Prepared p = make_prepared(sources, targets, sim.localities);
  out.dag = p.dag.stats();
  out.total_cores = sim.localities * sim.cores_per_locality;

  SimExecutor ex(sim.localities, sim.cores_per_locality,
                 sim.split_priority ? SchedPolicy::kPriority : sim.policy,
                 sim.network, sim.seed, sim.coalesce);
  ex.trace().set_enabled(sim.trace);
  ex.counters().set_enabled(sim.counters);
  EngineOptions opt;
  opt.mode = EngineMode::kCostOnly;
  opt.cost = sim.cost;
  opt.split_priority = sim.split_priority;
  DagEngine engine(p.dag, p.tree, *kernel_, ex, opt);
  out.virtual_time = engine.execute({}, {});
  out.bytes_sent = ex.bytes_sent();
  out.parcels_sent = ex.parcels_sent();
  out.wire_bytes = engine.wire_bytes();
  AMTFMM_ASSERT(out.wire_bytes == out.bytes_sent);
  out.comm = ex.comm_stats();
  if (sim.trace) {
    out.trace = ex.trace().collect();
    out.comm_trace = ex.trace().collect_comm();
    out.instants = ex.trace().collect_instants();
    out.dag_edges = flatten_edges(p.dag);
  }
  if (sim.counters) out.counters = ex.counters().snapshot();
  return out;
}

std::vector<double> direct_sum(const Kernel& kernel,
                               std::span<const Vec3> sources,
                               std::span<const double> charges,
                               std::span<const Vec3> targets) {
  std::vector<double> phi(targets.size(), 0.0);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    double acc = 0.0;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      acc += charges[s] * kernel.direct(targets[t], sources[s]);
    }
    phi[t] = acc;
  }
  return phi;
}

}  // namespace amtfmm
