#include "core/evaluator.hpp"

#include "core/pipeline.hpp"
#include "runtime/locality_runtime.hpp"
#include "runtime/net/net_executor.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace amtfmm {

Evaluator::Evaluator(std::unique_ptr<Kernel> kernel, EvalConfig cfg)
    : kernel_(std::move(kernel)), cfg_(cfg) {
  AMTFMM_ASSERT(kernel_ != nullptr);
  if (cfg_.threshold < 1 || cfg_.digits < 1) {
    throw config_error("threshold and digits must be positive");
  }
  kernel_->set_m2l_mode(cfg_.m2l_mode);
}

Evaluator::~Evaluator() = default;

EvalResult Evaluator::evaluate(std::span<const Vec3> sources,
                               std::span<const double> charges,
                               std::span<const Vec3> targets) {
  AMTFMM_ASSERT(sources.size() == charges.size());
  // One-shot: a pipeline that lives for a single epoch.
  EvalPipeline pipeline(*kernel_, cfg_, sources, targets);
  return pipeline.evaluate(charges);
}

void Evaluator::prepare(std::span<const Vec3> sources,
                        std::span<const Vec3> targets) {
  pipeline_ =
      std::make_unique<EvalPipeline>(*kernel_, cfg_, sources, targets);
}

EvalResult Evaluator::evaluate_prepared(std::span<const double> charges) {
  if (!pipeline_) {
    throw config_error("evaluate_prepared() requires a prior prepare()");
  }
  return pipeline_->evaluate(charges);
}

EvalResult Evaluator::evaluate_distributed(net::NetExecutor& ex,
                                           std::span<const Vec3> sources,
                                           std::span<const double> charges,
                                           std::span<const Vec3> targets) {
  AMTFMM_ASSERT(sources.size() == charges.size());
  // One epoch on a borrowed mesh.  The pipeline's baseline snapshots make
  // the per-rank transport identity hold even when the same connections
  // already carried a previous evaluation.
  EvalPipeline pipeline(*kernel_, cfg_, sources, targets, ex);
  return pipeline.evaluate(charges);
}

SimResult Evaluator::simulate(std::span<const Vec3> sources,
                              std::span<const Vec3> targets,
                              const SimConfig& sim) {
  SimResult out;
  const PreparedModel p =
      build_model(*kernel_, cfg_, sources, targets, sim.localities);
  out.dag = p.dag.stats();
  out.total_cores = sim.localities * sim.cores_per_locality;

  SimExecutor ex(sim.localities, sim.cores_per_locality,
                 sim.split_priority ? SchedPolicy::kPriority : sim.policy,
                 sim.network, sim.seed, sim.coalesce);
  ex.trace().set_enabled(sim.trace);
  ex.counters().set_enabled(sim.counters);
  EngineOptions opt;
  opt.mode = EngineMode::kCostOnly;
  opt.cost = sim.cost;
  opt.split_priority = sim.split_priority;
  DagEngine engine(p.dag, p.tree, *kernel_, ex, opt);
  out.virtual_time = engine.execute({}, {});
  out.bytes_sent = ex.bytes_sent();
  out.parcels_sent = ex.parcels_sent();
  out.wire_bytes = engine.wire_bytes();
  AMTFMM_ASSERT(out.wire_bytes == out.bytes_sent);
  out.comm = ex.comm_stats();
  if (sim.trace) {
    out.trace = ex.trace().collect();
    out.comm_trace = ex.trace().collect_comm();
    out.instants = ex.trace().collect_instants();
    out.dag_edges = flatten_dag_edges(p.dag);
  }
  if (sim.counters) out.counters = ex.counters().snapshot();
  return out;
}

std::vector<double> direct_sum(const Kernel& kernel,
                               std::span<const Vec3> sources,
                               std::span<const double> charges,
                               std::span<const Vec3> targets) {
  std::vector<double> phi(targets.size(), 0.0);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    double acc = 0.0;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      acc += charges[s] * kernel.direct(targets[t], sources[s]);
    }
    phi[t] = acc;
  }
  return phi;
}

}  // namespace amtfmm
