#include "core/dag.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/error.hpp"

namespace amtfmm {

const char* to_string(NodeKind k) {
  switch (k) {
    case NodeKind::kS: return "S";
    case NodeKind::kM: return "M";
    case NodeKind::kIs: return "Is";
    case NodeKind::kIt: return "It";
    case NodeKind::kL: return "L";
    case NodeKind::kT: return "T";
  }
  return "?";
}

Method parse_method(const std::string& name) {
  if (name == "fmm") return Method::kFmmBasic;
  if (name == "fmm-advanced") return Method::kFmmAdvanced;
  if (name == "bh") return Method::kBarnesHut;
  throw config_error("unknown method: " + name +
                     " (expected fmm|fmm-advanced|bh)");
}

const char* to_string(Method m) {
  switch (m) {
    case Method::kFmmBasic: return "fmm";
    case Method::kFmmAdvanced: return "fmm-advanced";
    case Method::kBarnesHut: return "bh";
  }
  return "?";
}

Axis classify_direction(int di, int dj, int dk) {
  // Offsets are source-minus-target; the propagation direction is the
  // dominant axis of target-minus-source, priority z, y, x (CGR99).
  const int tx = -di, ty = -dj, tz = -dk;
  if (tz >= 2) return Axis::kPlusZ;
  if (tz <= -2) return Axis::kMinusZ;
  if (ty >= 2) return Axis::kPlusY;
  if (ty <= -2) return Axis::kMinusY;
  if (tx >= 2) return Axis::kPlusX;
  AMTFMM_ASSERT_MSG(tx <= -2, "list-2 offset must be well separated");
  return Axis::kMinusX;
}

namespace {

/// Shared builder state.  Construction runs in two passes over a single
/// edge-enumeration routine: pass 1 counts per-node out-degrees, pass 2
/// fills the CSR arrays and in-degrees.
class Builder {
 public:
  Builder(const DualTree& dt, const InteractionLists& lists,
          const Kernel& kernel, const DagBuildConfig& cfg, int num_localities)
      : dt_(dt),
        lists_(lists),
        kernel_(kernel),
        cfg_(cfg),
        num_localities_(num_localities) {}

  Dag run() {
    decide_nodes();
    if (cfg_.method == Method::kFmmAdvanced) plan_merges();
    create_nodes();
    // Pass 1: count out-degrees.
    counting_ = true;
    enumerate_edges();
    std::uint32_t total = 0;
    for (auto& n : dag_.nodes) {
      n.first_edge = total;
      total += n.num_edges;
      n.num_edges = 0;  // reused as fill cursor
    }
    dag_.edges.resize(total);
    // Pass 2: fill.
    counting_ = false;
    enumerate_edges();
    place_nodes();
    validate();
    return std::move(dag_);
  }

 private:
  // --- node existence ------------------------------------------------------
  void decide_nodes() {
    const auto& sb = dt_.source.boxes();
    const auto& tb = dt_.target.boxes();
    m_needed_.assign(sb.size(), 0);
    is_needed_.assign(sb.size(), 0);
    s_used_.assign(sb.size(), 0);
    l_active_.assign(tb.size(), 0);
    it_own_.assign(tb.size(), 0);
    it_fwd_.assign(tb.size(), 0);
    on_path_.assign(tb.size(), 0);

    if (cfg_.method == Method::kBarnesHut) {
      decide_nodes_bh();
      return;
    }

    // Mark multipole roots from lists, then close downward (a box's M is
    // built from its children's Ms).
    std::vector<BoxIndex> stack;
    auto mark_m = [&](BoxIndex b) {
      if (m_needed_[b]) return;
      m_needed_[b] = 1;
      stack.push_back(b);
    };
    for (BoxIndex b = 0; b < tb.size(); ++b) {
      for (const List2Entry& e : lists_.l2[b]) {
        mark_m(e.src);
        if (cfg_.method == Method::kFmmAdvanced) is_needed_[e.src] = 1;
      }
      for (BoxIndex s : lists_.l3[b]) mark_m(s);
    }
    while (!stack.empty()) {
      const BoxIndex b = stack.back();
      stack.pop_back();
      for (const BoxIndex c : sb[b].child) {
        if (c != kNoBox) mark_m(c);
      }
    }
    for (BoxIndex b = 0; b < sb.size(); ++b) {
      if (sb[b].is_leaf() && m_needed_[b]) s_used_[b] = 1;
    }
    for (BoxIndex b = 0; b < tb.size(); ++b) {
      for (BoxIndex s : lists_.l1[b]) s_used_[s] = 1;
      for (BoxIndex s : lists_.l4[b]) s_used_[s] = 1;
    }

    // Target side: walk the active path (root to dag leaves), propagating
    // local-expansion activity downward.
    walk_targets(dt_.target.root(), /*parent_l=*/false);
  }

  void walk_targets(BoxIndex b, bool parent_l) {
    on_path_[b] = 1;
    const bool own_content =
        (cfg_.method == Method::kFmmAdvanced
             ? !lists_.l2[b].empty()
             : !lists_.l2[b].empty()) ||
        !lists_.l4[b].empty();
    if (cfg_.method == Method::kFmmAdvanced && !lists_.l2[b].empty()) {
      it_own_[b] = 1;
    }
    l_active_[b] = (own_content || parent_l) ? 1 : 0;
    if (lists_.dag_leaf[b]) return;
    for (const BoxIndex c : dt_.target.box(b).child) {
      if (c != kNoBox) walk_targets(c, l_active_[b] != 0);
    }
  }

  void decide_nodes_bh() {
    // Barnes-Hut: every source box carries a multipole; targets are plain
    // leaves; edges come from the acceptance traversal in enumerate_edges.
    const auto& sb = dt_.source.boxes();
    const auto& tb = dt_.target.boxes();
    for (BoxIndex b = 0; b < sb.size(); ++b) {
      m_needed_[b] = 1;
      if (sb[b].is_leaf()) s_used_[b] = 1;
    }
    for (BoxIndex b = 0; b < tb.size(); ++b) on_path_[b] = 1;
  }

  // --- merge-and-shift planning -------------------------------------------
  void plan_merges() {
    const auto& tb = dt_.target.boxes();
    // Per-box per-direction sorted source lists.
    dir_lists_.assign(tb.size(), {});
    for (BoxIndex b = 0; b < tb.size(); ++b) {
      for (const List2Entry& e : lists_.l2[b]) {
        const Axis d = classify_direction(e.di, e.dj, e.dk);
        dir_lists_[b][static_cast<std::size_t>(d)].push_back(e.src);
      }
      for (auto& v : dir_lists_[b]) std::sort(v.begin(), v.end());
    }
    shared_.assign(tb.size(), {});
    residual_ = dir_lists_;  // residual starts as the full lists
    for (BoxIndex p = 0; p < tb.size(); ++p) {
      if (tb[p].is_leaf() || !on_path_[p] || lists_.dag_leaf[p]) continue;
      if (tb[p].level < 2) continue;  // no It node to merge at
      for (std::size_t d = 0; d < 6; ++d) {
        // Children participating in this direction.
        std::vector<BoxIndex> kids;
        for (const BoxIndex c : tb[p].child) {
          if (c != kNoBox && on_path_[c] &&
              !dir_lists_[c][d].empty()) {
            kids.push_back(c);
          }
        }
        if (kids.size() < 2) continue;
        std::vector<BoxIndex> inter = dir_lists_[kids[0]][d];
        std::vector<BoxIndex> tmp;
        for (std::size_t i = 1; i < kids.size() && !inter.empty(); ++i) {
          tmp.clear();
          std::set_intersection(inter.begin(), inter.end(),
                                dir_lists_[kids[i]][d].begin(),
                                dir_lists_[kids[i]][d].end(),
                                std::back_inserter(tmp));
          inter.swap(tmp);
        }
        if (inter.empty()) continue;
        it_fwd_[p] = 1;
        shared_[p][d] = inter;
        merge_kids_[{p, static_cast<int>(d)}] = kids;
        for (const BoxIndex c : kids) {
          it_own_[c] = 1;  // receives the shift
          tmp.clear();
          std::set_difference(residual_[c][d].begin(), residual_[c][d].end(),
                              inter.begin(), inter.end(),
                              std::back_inserter(tmp));
          residual_[c][d].swap(tmp);
        }
      }
    }
  }

  // --- node creation -------------------------------------------------------
  void create_nodes() {
    const auto& sb = dt_.source.boxes();
    const auto& tb = dt_.target.boxes();
    dag_.s_of_box.assign(sb.size(), kNoNode);
    dag_.m_of_box.assign(sb.size(), kNoNode);
    dag_.is_of_box.assign(sb.size(), kNoNode);
    dag_.it_of_box.assign(tb.size(), kNoNode);
    dag_.l_of_box.assign(tb.size(), kNoNode);
    dag_.t_of_box.assign(tb.size(), kNoNode);

    auto add = [&](NodeKind kind, BoxIndex box, std::uint8_t level,
                   std::uint32_t locality, std::uint64_t bytes) {
      DagNode n;
      n.kind = kind;
      n.box = box;
      n.level = level;
      n.locality = locality;
      n.payload_bytes = bytes;
      dag_.nodes.push_back(n);
      return static_cast<NodeIndex>(dag_.nodes.size() - 1);
    };

    for (BoxIndex b = 0; b < sb.size(); ++b) {
      const TreeBox& box = sb[b];
      const auto lvl = static_cast<std::uint8_t>(box.level);
      if (s_used_[b]) {
        dag_.s_of_box[b] = add(NodeKind::kS, b, lvl, box.locality,
                               box.count * 32ull);
      }
      if (m_needed_[b]) {
        dag_.m_of_box[b] = add(NodeKind::kM, b, lvl, box.locality,
                               kernel_.m_wire_bytes(box.level));
      }
      if (is_needed_[b]) {
        dag_.is_of_box[b] = add(NodeKind::kIs, b, lvl, box.locality,
                                6 * kernel_.x_wire_bytes(box.level));
      }
    }
    for (BoxIndex b = 0; b < tb.size(); ++b) {
      const TreeBox& box = tb[b];
      const auto lvl = static_cast<std::uint8_t>(box.level);
      if (it_own_[b] || it_fwd_[b]) {
        const std::uint64_t own = 6 * kernel_.x_wire_bytes(box.level);
        const std::uint64_t fwd =
            it_fwd_[b] ? 6 * kernel_.x_wire_bytes(box.level + 1) : 0;
        dag_.it_of_box[b] =
            add(NodeKind::kIt, b, lvl, box.locality, own + fwd);
      }
      if (l_active_[b] && on_path_[b]) {
        dag_.l_of_box[b] = add(NodeKind::kL, b, lvl, box.locality,
                               kernel_.l_wire_bytes(box.level));
      }
      if (on_path_[b] && lists_.dag_leaf[b] && box.count > 0 &&
          cfg_.method != Method::kBarnesHut) {
        dag_.t_of_box[b] = add(NodeKind::kT, b, lvl, box.locality,
                               box.count * 40ull);
      }
      if (cfg_.method == Method::kBarnesHut && box.is_leaf()) {
        dag_.t_of_box[b] = add(NodeKind::kT, b, lvl, box.locality,
                               box.count * 40ull);
      }
    }
  }

  // --- edge enumeration ----------------------------------------------------
  void emit(NodeIndex from, NodeIndex to, Operator op, std::uint8_t dir,
            std::uint8_t slot, std::uint32_t bytes, float metric) {
    AMTFMM_ASSERT(from != kNoNode && to != kNoNode);
    DagNode& src = dag_.nodes[from];
    if (counting_) {
      src.num_edges++;
      return;
    }
    DagEdge e;
    e.target = to;
    e.op = op;
    e.dir = dir;
    e.slot = slot;
    e.bytes = bytes;
    e.cost_metric = metric;
    dag_.edges[src.first_edge + src.num_edges++] = e;
    dag_.nodes[to].in_degree++;
  }

  void enumerate_edges() {
    if (cfg_.method == Method::kBarnesHut) {
      enumerate_edges_bh();
      return;
    }
    const auto& sb = dt_.source.boxes();
    const auto& tb = dt_.target.boxes();
    const bool advanced = cfg_.method == Method::kFmmAdvanced;

    // Source tree: S->M, M->M, M->I.
    for (BoxIndex b = 0; b < sb.size(); ++b) {
      if (!m_needed_[b]) continue;
      const int lvl = sb[b].level;
      if (sb[b].is_leaf()) {
        emit(dag_.s_of_box[b], dag_.m_of_box[b], Operator::kS2M, 0, 0,
             static_cast<std::uint32_t>(kernel_.m_wire_bytes(lvl)),
             static_cast<float>(sb[b].count));
      }
      const BoxIndex p = sb[b].parent;
      if (p != kNoBox && m_needed_[p]) {
        emit(dag_.m_of_box[b], dag_.m_of_box[p], Operator::kM2M, 0, 0,
             static_cast<std::uint32_t>(kernel_.m_wire_bytes(lvl)), 1.0f);
      }
      if (advanced && is_needed_[b]) {
        emit(dag_.m_of_box[b], dag_.is_of_box[b], Operator::kM2I, 0, 0,
             static_cast<std::uint32_t>(6 * kernel_.x_wire_bytes(lvl)), 1.0f);
      }
    }

    // Target lists: S->T, S->L, M->T, and (basic) M->L.
    for (BoxIndex b = 0; b < tb.size(); ++b) {
      if (!on_path_[b]) continue;
      const int lvl = tb[b].level;
      for (const BoxIndex s : lists_.l1[b]) {
        emit(dag_.s_of_box[s], dag_.t_of_box[b], Operator::kS2T, 0, 0,
             sb[s].count * 32u,
             static_cast<float>(sb[s].count) * static_cast<float>(tb[b].count));
      }
      for (const BoxIndex s : lists_.l4[b]) {
        emit(dag_.s_of_box[s], dag_.l_of_box[b], Operator::kS2L, 0, 0,
             static_cast<std::uint32_t>(kernel_.l_wire_bytes(lvl)),
             static_cast<float>(sb[s].count));
      }
      for (const BoxIndex s : lists_.l3[b]) {
        emit(dag_.m_of_box[s], dag_.t_of_box[b], Operator::kM2T, 0, 0,
             static_cast<std::uint32_t>(kernel_.m_wire_bytes(sb[s].level)),
             static_cast<float>(tb[b].count));
      }
      if (!advanced) {
        for (const List2Entry& e : lists_.l2[b]) {
          emit(dag_.m_of_box[e.src], dag_.l_of_box[b], Operator::kM2L, 0, 0,
               static_cast<std::uint32_t>(kernel_.m_wire_bytes(lvl)), 1.0f);
        }
      }
    }

    if (advanced) {
      // Merge legs: Is(src) -> It(parent).fwd, then It(parent) -> It(child).
      for (const auto& [key, kids] : merge_kids_) {
        const auto [p, d] = key;
        const int child_level = tb[p].level + 1;
        const auto bytes =
            static_cast<std::uint32_t>(kernel_.x_wire_bytes(child_level));
        const auto metric = static_cast<float>(kernel_.x_count(child_level));
        for (const BoxIndex src : shared_[p][static_cast<std::size_t>(d)]) {
          emit(dag_.is_of_box[src], dag_.it_of_box[p], Operator::kI2I,
               static_cast<std::uint8_t>(d), 1, bytes, metric);
        }
        for (const BoxIndex c : kids) {
          emit(dag_.it_of_box[p], dag_.it_of_box[c], Operator::kI2I,
               static_cast<std::uint8_t>(d), 0, bytes, metric);
        }
      }
      // Residual direct legs and the I->L conversions.
      for (BoxIndex b = 0; b < tb.size(); ++b) {
        if (!on_path_[b]) continue;
        const int lvl = tb[b].level;
        if (it_own_[b]) {
          for (std::size_t d = 0; d < 6; ++d) {
            const auto bytes =
                static_cast<std::uint32_t>(kernel_.x_wire_bytes(lvl));
            const auto metric = static_cast<float>(kernel_.x_count(lvl));
            for (const BoxIndex src : residual_[b][d]) {
              emit(dag_.is_of_box[src], dag_.it_of_box[b], Operator::kI2I,
                   static_cast<std::uint8_t>(d), 0, bytes, metric);
            }
          }
          emit(dag_.it_of_box[b], dag_.l_of_box[b], Operator::kI2L, 0, 0,
               static_cast<std::uint32_t>(kernel_.l_wire_bytes(lvl)), 6.0f);
        }
      }
    }

    // Downward L chain.
    for (BoxIndex b = 0; b < tb.size(); ++b) {
      if (dag_.l_of_box[b] == kNoNode) continue;
      const int lvl = tb[b].level;
      if (lists_.dag_leaf[b]) {
        emit(dag_.l_of_box[b], dag_.t_of_box[b], Operator::kL2T, 0, 0,
             static_cast<std::uint32_t>(kernel_.l_wire_bytes(lvl)),
             static_cast<float>(tb[b].count));
        continue;
      }
      for (const BoxIndex c : tb[b].child) {
        if (c != kNoBox && dag_.l_of_box[c] != kNoNode) {
          emit(dag_.l_of_box[b], dag_.l_of_box[c], Operator::kL2L, 0, 0,
               static_cast<std::uint32_t>(kernel_.l_wire_bytes(lvl)), 1.0f);
        }
      }
    }
  }

  void enumerate_edges_bh() {
    const auto& sb = dt_.source.boxes();
    const auto& tb = dt_.target.boxes();
    // Source chain as in the FMM.
    for (BoxIndex b = 0; b < sb.size(); ++b) {
      if (sb[b].is_leaf()) {
        emit(dag_.s_of_box[b], dag_.m_of_box[b], Operator::kS2M, 0, 0,
             static_cast<std::uint32_t>(kernel_.m_wire_bytes(sb[b].level)),
             static_cast<float>(sb[b].count));
      }
      const BoxIndex p = sb[b].parent;
      if (p != kNoBox) {
        emit(dag_.m_of_box[b], dag_.m_of_box[p], Operator::kM2M, 0, 0,
             static_cast<std::uint32_t>(kernel_.m_wire_bytes(sb[b].level)),
             1.0f);
      }
    }
    // Acceptance traversal per target leaf.
    for (BoxIndex b = 0; b < tb.size(); ++b) {
      if (!tb[b].is_leaf()) continue;
      bh_walk(b, dt_.source.root());
    }
  }

  void bh_walk(BoxIndex tgt, BoxIndex src) {
    const TreeBox& s = dt_.source.box(src);
    const TreeBox& t = dt_.target.box(tgt);
    if (s.is_leaf()) {
      emit(dag_.s_of_box[src], dag_.t_of_box[tgt], Operator::kS2T, 0, 0,
           s.count * 32u,
           static_cast<float>(s.count) * static_cast<float>(t.count));
      return;
    }
    // Conservative MAC: opening angle against the nearest point of the
    // target box.
    const Vec3 c = s.cube.center();
    const Vec3 lo = t.cube.low, hi = t.cube.high();
    const double dx = std::max({lo.x - c.x, c.x - hi.x, 0.0});
    const double dy = std::max({lo.y - c.y, c.y - hi.y, 0.0});
    const double dz = std::max({lo.z - c.z, c.z - hi.z, 0.0});
    const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
    if (dist > 0.0 && s.cube.size / dist < cfg_.bh_theta) {
      emit(dag_.m_of_box[src], dag_.t_of_box[tgt], Operator::kM2T, 0, 0,
           static_cast<std::uint32_t>(kernel_.m_wire_bytes(s.level)),
           static_cast<float>(t.count));
      return;
    }
    for (const BoxIndex ch : s.child) {
      if (ch != kNoBox) bh_walk(tgt, ch);
    }
  }

  // --- placement -----------------------------------------------------------
  void place_nodes() {
    if (cfg_.placement != Placement::kCommMin || num_localities_ <= 1) return;
    // Move each It node to the locality that sends it the most bytes
    // (approximating the paper's communication-minimizing policy; leaf M/L
    // stay pinned to the data distribution as required).
    std::unordered_map<NodeIndex, std::unordered_map<std::uint32_t, std::uint64_t>>
        tally;
    for (const DagNode& n : dag_.nodes) {
      for (std::uint32_t e = n.first_edge; e < n.first_edge + n.num_edges;
           ++e) {
        const DagEdge& edge = dag_.edges[e];
        if (dag_.nodes[edge.target].kind == NodeKind::kIt) {
          tally[edge.target][n.locality] += edge.bytes;
        }
      }
    }
    for (auto& [node, per_loc] : tally) {
      std::uint32_t best = dag_.nodes[node].locality;
      std::uint64_t best_bytes = 0;
      for (const auto& [loc, bytes] : per_loc) {
        if (bytes > best_bytes) {
          best_bytes = bytes;
          best = loc;
        }
      }
      dag_.nodes[node].locality = best;
    }
  }

  void validate() const {
    for (const DagNode& n : dag_.nodes) {
      if (n.kind != NodeKind::kS && n.kind != NodeKind::kT) {
        AMTFMM_ASSERT_MSG(n.in_degree > 0, "non-root DAG node without inputs");
      }
      if (n.kind == NodeKind::kS) {
        AMTFMM_ASSERT(n.in_degree == 0);
      }
    }
  }

  struct PairHash {
    std::size_t operator()(const std::pair<BoxIndex, int>& p) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(p.first) << 3) ^
          static_cast<std::uint64_t>(p.second));
    }
  };

  const DualTree& dt_;
  const InteractionLists& lists_;
  const Kernel& kernel_;
  DagBuildConfig cfg_;
  int num_localities_;

  Dag dag_;
  bool counting_ = true;
  std::vector<std::uint8_t> m_needed_, is_needed_, s_used_;
  std::vector<std::uint8_t> l_active_, it_own_, it_fwd_, on_path_;
  std::vector<std::array<std::vector<BoxIndex>, 6>> dir_lists_;
  std::vector<std::array<std::vector<BoxIndex>, 6>> shared_;
  std::vector<std::array<std::vector<BoxIndex>, 6>> residual_;
  std::unordered_map<std::pair<BoxIndex, int>, std::vector<BoxIndex>, PairHash>
      merge_kids_;
};

}  // namespace

Dag build_dag(const DualTree& dt, const InteractionLists& lists,
              const Kernel& kernel, const DagBuildConfig& cfg,
              int num_localities) {
  return Builder(dt, lists, kernel, cfg, num_localities).run();
}

std::vector<std::uint32_t> flatten_dag_edges(const Dag& dag) {
  std::vector<std::uint32_t> flat(2 * dag.edges.size());
  for (NodeIndex ni = 0; ni < dag.nodes.size(); ++ni) {
    const DagNode& n = dag.nodes[ni];
    for (std::uint32_t e = n.first_edge; e < n.first_edge + n.num_edges;
         ++e) {
      flat[2 * e] = ni;
      flat[2 * e + 1] = dag.edges[e].target;
    }
  }
  return flat;
}

void refresh_dag_metrics(Dag& dag, const DualTree& dt) {
  const auto& sb = dt.source.boxes();
  const auto& tb = dt.target.boxes();
  for (DagNode& n : dag.nodes) {
    // Point payload sizes (32 B/source point, 40 B/target point — the
    // engine's serialization constants).  Expansion payload sizes are
    // level-only and unchanged by a count update.
    if (n.kind == NodeKind::kS) {
      n.payload_bytes = sb[n.box].count * 32ull;
    } else if (n.kind == NodeKind::kT) {
      n.payload_bytes = tb[n.box].count * 40ull;
    }
    for (std::uint32_t ei = n.first_edge; ei < n.first_edge + n.num_edges;
         ++ei) {
      DagEdge& e = dag.edges[ei];
      switch (e.op) {
        case Operator::kS2M:
        case Operator::kS2L:
          e.cost_metric = static_cast<float>(sb[n.box].count);
          break;
        case Operator::kS2T:
          e.bytes = sb[n.box].count * 32u;
          e.cost_metric = static_cast<float>(sb[n.box].count) *
                          static_cast<float>(tb[dag.nodes[e.target].box].count);
          break;
        case Operator::kM2T:
        case Operator::kL2T:
          e.cost_metric =
              static_cast<float>(tb[dag.nodes[e.target].box].count);
          break;
        default:
          break;  // level-only bytes and metrics
      }
    }
  }
}

DagStats Dag::stats() const {
  DagStats s;
  s.total_nodes = nodes.size();
  s.total_edges = edges.size();
  for (const DagNode& n : nodes) {
    auto& cls = s.nodes[static_cast<std::size_t>(n.kind)];
    cls.count++;
    cls.min_bytes = std::min(cls.min_bytes, n.payload_bytes);
    cls.max_bytes = std::max(cls.max_bytes, n.payload_bytes);
    cls.din_min = std::min(cls.din_min, n.in_degree);
    cls.din_max = std::max(cls.din_max, n.in_degree);
    cls.dout_min = std::min(cls.dout_min, n.num_edges);
    cls.dout_max = std::max(cls.dout_max, n.num_edges);
    for (std::uint32_t e = n.first_edge; e < n.first_edge + n.num_edges; ++e) {
      const DagEdge& edge = edges[e];
      auto& ec = s.edges[static_cast<std::size_t>(edge.op)];
      ec.count++;
      ec.min_bytes = std::min<std::uint64_t>(ec.min_bytes, edge.bytes);
      ec.max_bytes = std::max<std::uint64_t>(ec.max_bytes, edge.bytes);
      ec.total_bytes += edge.bytes;
      if (nodes[edge.target].locality != n.locality) s.remote_edges++;
    }
  }
  return s;
}

}  // namespace amtfmm
