#include "core/expansion_lco.hpp"

#include "core/engine.hpp"
#include "support/error.hpp"

namespace amtfmm {

std::span<const std::byte> dep_record() {
  static const WireRecord kDep{0, static_cast<std::uint8_t>(PayloadSlot::kNone),
                               0, 0, 0};
  return std::as_bytes(std::span<const WireRecord>(&kDep, 1));
}

namespace {

/// Accumulates `count` elements at `ptr` into `a`, growing it on first use.
/// Message buffers are built with every payload at an 8-byte-aligned
/// offset (see WireRecord), so the reinterpret_cast is well defined.
template <typename T>
void accumulate(std::vector<T>& a, const std::byte* ptr, std::uint32_t count) {
  AMTFMM_ASSERT(reinterpret_cast<std::uintptr_t>(ptr) % alignof(T) == 0);
  const T* in = reinterpret_cast<const T*>(ptr);
  if (a.size() < count) a.resize(count, T{});
  for (std::uint32_t i = 0; i < count; ++i) a[i] += in[i];
}

}  // namespace

void ExpansionLCO::reduce(std::span<const std::byte> data) {
#ifndef NDEBUG
  check_home();
#endif
  std::size_t off = 0;
  while (off < data.size()) {
    WireRecord h;
    AMTFMM_ASSERT(off + sizeof(h) <= data.size());
    std::memcpy(&h, data.data() + off, sizeof(h));
    off += sizeof(h);
    const auto slot = static_cast<PayloadSlot>(h.slot);
    const std::byte* ptr = data.data() + off;
    switch (slot) {
      case PayloadSlot::kNone:
        break;
      case PayloadSlot::kMain:
        accumulate(payload_.main, ptr, h.count);
        off += h.count * sizeof(cdouble);
        break;
      case PayloadSlot::kOwn:
        AMTFMM_ASSERT(h.dir < 6);
        accumulate(payload_.own[h.dir], ptr, h.count);
        off += h.count * sizeof(cdouble);
        break;
      case PayloadSlot::kFwd:
        AMTFMM_ASSERT(h.dir < 6);
        accumulate(payload_.fwd[h.dir], ptr, h.count);
        off += h.count * sizeof(cdouble);
        break;
      case PayloadSlot::kPhi:
        accumulate(payload_.phi, ptr, h.count);
        off += h.count * sizeof(double);
        break;
      case PayloadSlot::kPoints:
        AMTFMM_ASSERT_MSG(false, "kPoints is a parcel section, not an input");
        break;
    }
  }
  AMTFMM_ASSERT_MSG(off == data.size(), "malformed set_input message");
}

void ExpansionLCO::on_fire() { engine_.on_node_triggered(node_); }

void ExpansionLCO::check_home() const {
  const int loc = ex_.current_locality();
  AMTFMM_ASSERT_MSG(loc < 0 || loc == static_cast<int>(home_),
                    "expansion payload touched off its home locality");
}

}  // namespace amtfmm
