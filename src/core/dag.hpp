#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/kernel.hpp"
#include "tree/lists.hpp"
#include "tree/tree.hpp"

namespace amtfmm {

/// DAG node classes, exactly the six of the paper's Table I.
enum class NodeKind : std::uint8_t { kS, kM, kIs, kIt, kL, kT };
inline constexpr int kNumNodeKinds = 6;
const char* to_string(NodeKind k);

using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kNoNode = 0xffffffffu;

/// One node of the explicit DAG: the representation DASHMM uses for
/// partitioning/distribution before instantiating the implicit LCO graph.
struct DagNode {
  NodeKind kind;
  std::uint8_t level;
  BoxIndex box;            ///< index in the source or target tree
  std::uint32_t locality;  ///< placement chosen by the distribution policy
  std::uint32_t in_degree = 0;
  std::uint32_t first_edge = 0;  ///< CSR range into Dag::edges
  std::uint32_t num_edges = 0;
  std::uint64_t payload_bytes = 0;
};

/// One directed edge: an operator application moving data between nodes.
struct DagEdge {
  NodeIndex target;
  Operator op;
  std::uint8_t dir;   ///< Axis for the I-chain operators
  std::uint8_t slot;  ///< It accumulator: 0 = own (-> I2L), 1 = fwd (-> shift)
  std::uint32_t bytes;      ///< wire bytes transferred along the edge
  float cost_metric;        ///< work units for the cost model
};

/// Method selection for DAG construction.
enum class Method {
  kFmmBasic,     ///< eight operators, M->L across list 2
  kFmmAdvanced,  ///< merge-and-shift: M->I, I->I, I->L (the paper's FMM)
  kBarnesHut,    ///< multipole-acceptance traversal (M->T / S->T only)
};
Method parse_method(const std::string& name);
const char* to_string(Method m);

/// Distribution policies (paper section IV): leaf expansions are always
/// pinned to the locality owning the box; the policies differ in where the
/// remaining nodes go.
enum class Placement {
  kOwner,    ///< every node at its box's owner
  kCommMin,  ///< It nodes moved to the locality sending them the most bytes
};

struct DagStats {
  struct NodeClass {
    std::size_t count = 0;
    std::uint64_t min_bytes = ~0ull, max_bytes = 0;
    std::uint32_t din_min = ~0u, din_max = 0;
    std::uint32_t dout_min = ~0u, dout_max = 0;
  };
  struct EdgeClass {
    std::size_t count = 0;
    std::uint64_t min_bytes = ~0ull, max_bytes = 0;
    std::uint64_t total_bytes = 0;
  };
  std::array<NodeClass, kNumNodeKinds> nodes;
  std::array<EdgeClass, kNumOperators> edges;
  std::size_t total_nodes = 0;
  std::size_t total_edges = 0;
  std::uint64_t remote_edges = 0;  ///< edges crossing localities
};

/// The explicit DAG.
struct Dag {
  std::vector<DagNode> nodes;
  std::vector<DagEdge> edges;

  // Node lookup per box (kNoNode where absent).
  std::vector<NodeIndex> s_of_box;   // source tree
  std::vector<NodeIndex> m_of_box;   // source tree
  std::vector<NodeIndex> is_of_box;  // source tree
  std::vector<NodeIndex> it_of_box;  // target tree
  std::vector<NodeIndex> l_of_box;   // target tree
  std::vector<NodeIndex> t_of_box;   // target tree

  DagStats stats() const;
};

struct DagBuildConfig {
  Method method = Method::kFmmAdvanced;
  Placement placement = Placement::kCommMin;
  double bh_theta = 0.5;  ///< Barnes-Hut opening angle
};

/// Builds the explicit DAG for the dual tree.  For the FMM methods `lists`
/// must be the InteractionLists of the dual tree; Barnes-Hut derives its
/// own edges from the multipole acceptance criterion.
Dag build_dag(const DualTree& dt, const InteractionLists& lists,
              const Kernel& kernel, const DagBuildConfig& cfg,
              int num_localities);

/// Dag::edges flattened to [src0, dst0, src1, dst1, ...] in edge-id order,
/// recovering the implicit CSR source from each node's edge range (trace
/// exports embed this for the critical-path analyzer).
std::vector<std::uint32_t> flatten_dag_edges(const Dag& dag);

/// Refreshes the point-count-dependent annotations of an existing DAG
/// after an incremental (structure-preserving) tree update: S/T node
/// payload bytes, S->T edge bytes, and the cost metrics derived from box
/// counts.  Level-only byte formulas (expansion wire sizes) are untouched
/// — in particular S2L/I2L edge bytes stay the level's L wire size, which
/// the engine's contribution-parcel arithmetic asserts.  The topology
/// (nodes, edges, in-degrees, placement) is reused as-is.
void refresh_dag_metrics(Dag& dag, const DualTree& dt);

/// Classifies the direction of a list-2 interaction: the dominant axis of
/// (target - source), with the CGR99 priority order z, y, x.  `di,dj,dk`
/// are the List2Entry offsets (source - target, in box widths).
Axis classify_direction(int di, int dj, int dk);

}  // namespace amtfmm
