#pragma once

#include <atomic>
#include <memory>

#include "core/cost_model.hpp"
#include "core/dag.hpp"
#include "runtime/executor.hpp"

namespace amtfmm {

/// How the implicit DAG is driven.
enum class EngineMode {
  kCompute,   ///< run the expansion math, produce potentials (real results)
  kCostOnly,  ///< run only the dataflow; task times come from the CostModel
};

struct EngineOptions {
  EngineMode mode = EngineMode::kCompute;
  CostModel cost;        ///< used in kCostOnly mode
  bool split_priority = false;  ///< separate high-priority upward-pass tasks
};

/// Executes the explicit DAG as a dataflow network over an Executor.
///
/// Each DAG node behaves as the paper's custom expansion LCO (section IV
/// and Figure 2): it holds the expansion payload and the out-edge list;
/// inputs reduce into the payload under the node's lock; the final input
/// triggers the node, which spawns one continuation that processes the out
/// edges — local edges are transformed sequentially and fed into their
/// target LCOs, while edges to each remote locality are coalesced into a
/// single parcel carrying the expansion data, evaluated on arrival.
/// Payload buffers are released once every consumer holds its share.
///
/// In kCostOnly mode the same trigger/continuation/parcel structure runs
/// with empty payloads and modelled task durations — this is what the
/// discrete-event scaling reproduction executes (see DESIGN.md).
class DagEngine {
 public:
  DagEngine(const Dag& dag, const DualTree& dt, const Kernel& kernel,
            Executor& ex, EngineOptions opt);

  /// Runs the DAG to completion.  In compute mode, `charges` are the
  /// source strengths and `potentials` receives the target potentials,
  /// both in *tree-sorted* order (see Tree::original_index).  In cost-only
  /// mode both spans may be empty.  Returns the makespan reported by the
  /// executor.
  double execute(std::span<const double> charges,
                 std::span<double> potentials);

 private:
  struct SpinLock {
    std::atomic_flag flag = ATOMIC_FLAG_INIT;
    void lock() {
      while (flag.test_and_set(std::memory_order_acquire)) {}
    }
    void unlock() { flag.clear(std::memory_order_release); }
  };

  /// Expansion payload: which members are used depends on the node kind.
  struct Payload {
    CoeffVec main;                 // M or L coefficients
    std::array<CoeffVec, 6> own;   // Is outgoing / It incoming X
    std::array<CoeffVec, 6> fwd;   // It forward (merge) accumulators
    std::vector<double> phi;       // T potential accumulators
  };

  struct NodeState {
    std::atomic<std::uint32_t> remaining{0};
    SpinLock lock;
    std::shared_ptr<Payload> payload;
  };

  void seed();
  void set_input(NodeIndex ni);
  void trigger(NodeIndex ni);
  void spawn_edge_tasks(NodeIndex ni, std::shared_ptr<Payload> payload);
  void process_edges(NodeIndex ni, std::span<const std::uint32_t> edge_ids,
                     const std::shared_ptr<Payload>& payload);
  void apply_edge(NodeIndex from, const DagEdge& e, const Payload* src);
  void finalize_target(NodeIndex ni);
  Payload& ensure_payload(NodeIndex ni);

  const Dag& dag_;
  const DualTree& dt_;
  const Kernel& kernel_;
  Executor& ex_;
  EngineOptions opt_;
  std::unique_ptr<NodeState[]> states_;
  std::span<const double> charges_;
  std::span<double> potentials_;
};

}  // namespace amtfmm
