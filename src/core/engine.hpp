#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/cost_model.hpp"
#include "core/dag.hpp"
#include "core/expansion_lco.hpp"
#include "runtime/executor.hpp"
#include "runtime/gas.hpp"
#include "support/scratch_arena.hpp"

namespace amtfmm {

/// How the implicit DAG is driven.
enum class EngineMode {
  kCompute,   ///< run the expansion math, produce potentials (real results)
  kCostOnly,  ///< run only the dataflow; task times come from the CostModel
};

struct EngineOptions {
  EngineMode mode = EngineMode::kCompute;
  CostModel cost;        ///< used in kCostOnly mode
  bool split_priority = false;  ///< separate high-priority upward-pass tasks
};

/// Executes the explicit DAG as an implicit network of GAS-resident
/// expansion LCOs over an Executor — the paper's section IV architecture.
///
/// Instantiation allocates one ExpansionLCO per DAG node in the Gas heap of
/// its placement locality; all per-node state (countdown, payload,
/// continuation) lives in those LCOs, the engine itself holds only the
/// address table.  Inputs arrive via LCO::set_input carrying serialized
/// wire records (operator tag, payload slot/direction, coefficients); the
/// final input triggers the node and the engine walks its out-edge CSR:
///
///  - local edges are bucketed into tasks that compute each contribution in
///    the *target's* basis and set_input it into the target LCO,
///  - edges to a remote locality are coalesced into one *eval parcel* per
///    destination carrying the serialized source expansion plus the edge
///    ids; the destination deserializes and evaluates the operators there
///    (the DASHMM scheme — expansion data travels once per locality),
///  - source-computed operators (S2L, I2L, whose DAG edge bytes are the
///    *result* L expansion) ship one *contribution parcel* per edge with
///    the packed L payload computed at the source.
///
/// No pointer crosses a locality boundary: every remote byte is serialized
/// into the parcel buffer and deserialized at the destination, so
/// Executor::bytes_sent() equals the true serialized wire bytes
/// (wire_bytes() cross-checks this).  In kCostOnly mode the identical
/// LCO/parcel dataflow runs with 8-byte dependency records and modelled
/// task durations; parcel sizes come from the same wire-format arithmetic,
/// so simulated bytes match real bytes by construction.
class DagEngine {
 public:
  DagEngine(const Dag& dag, const DualTree& dt, const Kernel& kernel,
            Executor& ex, EngineOptions opt);
  /// Unregisters the net handlers registered by execute(): on a mesh that
  /// outlives this engine, a peer racing into the NEXT evaluation must
  /// have its early parcels block until the next engine registers — not
  /// run a handler capturing a destroyed engine.
  ~DagEngine();

  /// Runs the DAG to completion.  In compute mode, `charges` are the
  /// source strengths and `potentials` receives the target potentials,
  /// both in *tree-sorted* order (see Tree::original_index).  In cost-only
  /// mode both spans may be empty.  Returns the makespan reported by the
  /// executor.
  ///
  /// The engine is resident: the first call allocates the GAS LCO arena
  /// (instantiate); every later call re-arms the same arena in place
  /// (reset_for_epoch) and replays the leaf seeds against the existing
  /// edge CSR — no GAS or LCO allocation happens in steady state
  /// (gas_allocs_last_epoch() == 0 for epoch >= 2).
  double execute(std::span<const double> charges,
                 std::span<double> potentials);

  /// Completed execute() epochs on this engine instance.
  std::uint64_t epochs() const { return epoch_; }
  /// Whether the GAS arena is instantiated (true after the first execute).
  bool resident() const { return instantiated_; }
  /// Wall seconds spent re-arming the resident arena before the last
  /// epoch; 0.0 for the first epoch (which pays instantiate() instead).
  double last_reset_seconds() const { return last_reset_seconds_; }
  /// GAS allocations performed during the last execute(); zero for every
  /// steady-state epoch after the first.
  std::uint64_t gas_allocs_last_epoch() const { return gas_allocs_epoch_; }

  /// Serialized bytes of every parcel handed to Executor::send during the
  /// last execute(); equals Executor::bytes_sent() when the engine is the
  /// only sender.
  std::uint64_t wire_bytes() const {
    // relaxed-ok: statistic; callers read it after drain() quiesces workers.
    return wire_bytes_.load(std::memory_order_relaxed);
  }

  const Gas& gas() const { return gas_; }
  GlobalAddress address_of(NodeIndex ni) const { return addr_[ni]; }

  /// Callback from ExpansionLCO::on_fire (runs on the triggering thread,
  /// which is always on the node's home locality).
  void on_node_triggered(NodeIndex ni);

  /// Wire size of the eval parcel shipping `edge_ids` (out-edges of `ni`)
  /// to one destination: header + edge ids + serialized source sections.
  /// Pure arithmetic over the kernel's wire-byte functions — usable in
  /// cost-only mode and by tests.
  std::uint64_t parcel_wire_bytes(NodeIndex ni,
                                  std::span<const std::uint32_t> edge_ids)
      const;
  /// Wire size of a source-computed contribution parcel for one edge.
  std::uint64_t contribution_wire_bytes(const DagEdge& e) const;
  /// Operators whose remote edges ship the computed L contribution instead
  /// of the source expansion.
  static bool source_computed(Operator op) {
    return op == Operator::kS2L || op == Operator::kI2L;
  }

 private:
  /// Borrowed views of one node's source data, local or deserialized.
  /// Pointers (not copies): operators take const CoeffVec&.
  struct SourceView {
    const CoeffVec* main = nullptr;
    std::array<const CoeffVec*, 6> own{};
    std::array<const CoeffVec*, 6> fwd{};
    std::span<const Vec3> pts;
    std::span<const double> q;
  };

  /// SoA staging for batched S->T edges, leased from the worker's
  /// ScratchArena for the duration of one edge-processing task.  The
  /// buffers are acquired on the first S->T edge only (tasks without one
  /// pay nothing), and the task's source slice is gathered once even when
  /// the task carries many S->T edges — every edge of a task shares one
  /// source node.  Targets and potentials are restaged per edge.
  class P2PScratch {
   public:
    /// Stages (lazily) and returns the batch for one S->T edge; b.phi
    /// holds nt zeroed entries inside the leased buffer, which stays
    /// valid until the next batch() call.
    simd::P2PBatch batch(std::span<const Vec3> src_pts,
                         std::span<const double> src_q,
                         std::span<const Vec3> tgt_pts);

   private:
    struct Buffers {
      SoaLease sx, sy, sz, sq, tx, ty, tz, phi;
      bool sources_staged = false;
    };
    std::optional<Buffers> b_;
  };

  void instantiate();
  /// Re-arms every resident LCO to its DAG in-degree for the next epoch.
  /// Runs between drains (quiescent); the caller's barrier keeps any peer
  /// rank from seeding before every rank has finished resetting.
  void reset_for_epoch();
  void seed();
  void spawn_edge_tasks(NodeIndex ni);
  void process_local(NodeIndex ni, std::span<const std::uint32_t> edge_ids);
  /// Computes the contribution of one edge in the target's basis and
  /// appends it to `msg` as wire records.  `p2p` carries the task-scoped
  /// SoA staging shared by the task's S->T edges.
  void apply_edge(NodeIndex from, const DagEdge& e, const SourceView& src,
                  P2PScratch& p2p, std::vector<std::byte>& msg);
  void finalize_target(NodeIndex ni);

  ExpansionLCO* lco(NodeIndex ni) const {
    return static_cast<ExpansionLCO*>(gas_.resolve(addr_[ni]));
  }
  /// View of a node's payload for same-locality reads (plus source points
  /// and charges for S nodes).
  SourceView local_view(NodeIndex ni);
  std::vector<std::byte> serialize_parcel(
      NodeIndex ni, std::span<const std::uint32_t> edge_ids);
  void process_parcel(const std::vector<std::byte>& buf);
  void send_contribution(NodeIndex ni, std::uint32_t edge_id);
  void process_contribution(const std::vector<std::byte>& buf);

  const Dag& dag_;
  const DualTree& dt_;
  const Kernel& kernel_;
  Executor& ex_;
  EngineOptions opt_;
  Gas gas_;
  std::vector<GlobalAddress> addr_;
  std::atomic<std::uint64_t> wire_bytes_{0};
  std::span<const double> charges_;
  std::span<double> potentials_;
  bool instantiated_ = false;
  bool handlers_registered_ = false;
  std::uint64_t epoch_ = 0;
  double last_reset_seconds_ = 0.0;
  std::uint64_t gas_allocs_epoch_ = 0;
};

}  // namespace amtfmm
