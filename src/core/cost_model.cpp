#include "core/cost_model.hpp"

#include "geom/vec3.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace amtfmm {
namespace {

double us(double v) { return v * 1e-6; }

/// Median-of-repeats timing of a callable.
template <typename F>
double time_op(F&& f, int repeats = 9) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    f();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

CostModel CostModel::paper(const std::string& kernel_name) {
  CostModel m;
  auto set = [&](Operator op, double micros) {
    m.base[static_cast<std::size_t>(op)] = us(micros);
  };
  // Table II of the paper (cube Laplace, 128-core run, threshold 60).
  set(Operator::kS2T, 1.89);
  set(Operator::kS2M, 10.9);
  set(Operator::kM2M, 4.60);
  set(Operator::kM2I, 29.6);
  set(Operator::kI2I, 1.75);
  set(Operator::kI2L, 38.4);
  set(Operator::kL2L, 4.45);
  set(Operator::kL2T, 13.5);
  // Not exercised by the paper's cube runs (lists 3/4 empty on uniform
  // data) or by the advanced method; estimates consistent with the above.
  set(Operator::kM2L, 15.0);
  set(Operator::kM2T, 5.0);
  set(Operator::kS2L, 10.0);
  if (kernel_name == "yukawa") {
    // "the specific operations for the Yukawa kernel are heavier than the
    // equivalent for the Laplace kernel" — grain-size multiplier.
    for (auto& b : m.base) b *= 3.0;
  }
  return m;
}

CostModel CostModel::measured(const Kernel& kernel, int level,
                              int points_per_box) {
  CostModel m;
  const double w = 1.0 / static_cast<double>(1 << level);
  const Vec3 cs{0.5 + 0.5 * w, 0.5 + 0.5 * w, 0.5 + 0.5 * w};
  const Vec3 ct = cs + Vec3{2.0 * w, 0, 0};
  Rng rng(1234);
  std::vector<Vec3> spts, tpts;
  std::vector<double> q;
  for (int i = 0; i < points_per_box; ++i) {
    spts.push_back(cs + Vec3{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                             rng.uniform(-0.5, 0.5)} *
                            w);
    tpts.push_back(ct + Vec3{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                             rng.uniform(-0.5, 0.5)} *
                            w);
    q.push_back(rng.uniform(0.1, 1.0));
  }
  const double n = points_per_box;

  CoeffVec mm, ll(kernel.l_count(level));
  kernel.s2m(spts, q, cs, level, mm);
  auto per = [&](Operator op, double v) {
    m.per_unit[static_cast<std::size_t>(op)] = v;
  };
  auto base = [&](Operator op, double v) {
    m.base[static_cast<std::size_t>(op)] = v;
  };

  per(Operator::kS2M, time_op([&] { kernel.s2m(spts, q, cs, level, mm); }) / n);
  base(Operator::kM2M, time_op([&] {
         CoeffVec up(kernel.m_count(level - 1));
         kernel.m2m_acc(mm, cs, cs + Vec3{w / 2, w / 2, w / 2}, level, up);
       }));
  // ct - cs is the integer offset (2, 0, 0), so this times whichever M2L
  // path the kernel is configured for (rotation by default, naive when the
  // kernel's m2l_mode says so).
  base(Operator::kM2L,
       time_op([&] { kernel.m2l_acc(mm, cs, ct, level, ll); }));
  per(Operator::kM2T, time_op([&] {
        double sink = 0;
        for (const auto& t : tpts) sink += kernel.m2t(mm, cs, level, t);
        (void)sink;
      }) / n);
  per(Operator::kS2L,
      time_op([&] { kernel.s2l_acc(spts, q, ct, level, ll); }) / n);
  base(Operator::kL2L, time_op([&] {
         CoeffVec down(kernel.l_count(level + 1));
         kernel.l2l_acc(ll, ct, ct + Vec3{w / 4, w / 4, w / 4}, level + 1,
                        down);
       }));
  per(Operator::kL2T, time_op([&] {
        double sink = 0;
        for (const auto& t : tpts) sink += kernel.l2t(ll, ct, level, t);
        (void)sink;
      }) / n);
  per(Operator::kS2T, time_op([&] {
        double sink = 0;
        for (const auto& t : tpts)
          for (std::size_t i = 0; i < spts.size(); ++i)
            sink += q[i] * kernel.direct(t, spts[i]);
        (void)sink;
      }) / (n * n));

  if (kernel.supports_merge_and_shift() && kernel.x_count(level) > 0) {
    CoeffVec x;
    base(Operator::kM2I, 6.0 * time_op([&] {
           kernel.m2i(mm, level, Axis::kPlusX, x);
         }));
    kernel.m2i(mm, level, Axis::kPlusZ, x);
    CoeffVec xin(kernel.x_count(level), cdouble{});
    per(Operator::kI2I, time_op([&] {
          kernel.i2i_acc(x, Axis::kPlusZ, ct - cs, level, xin);
        }) / static_cast<double>(kernel.x_count(level)));
    per(Operator::kI2L, time_op([&] {
          kernel.i2l_acc(xin, Axis::kPlusZ, level, ll);
        }));  // metric is the number of active directions
  }
  return m;
}

}  // namespace amtfmm
