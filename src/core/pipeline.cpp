#include "core/pipeline.hpp"

#include <algorithm>

#include "runtime/locality_runtime.hpp"
#include "runtime/net/net_executor.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace amtfmm {
namespace {

/// Per-epoch transport statistics on a resident executor: the executor's
/// counters are cumulative across drains, so each epoch reports the
/// element-wise difference against the snapshot taken after the previous
/// epoch.
CommStats diff_comm(CommStats now, const CommStats& base) {
  now.parcels -= base.parcels;
  now.batches -= base.batches;
  now.bytes -= base.bytes;
  now.flush_threshold -= base.flush_threshold;
  now.flush_deadline -= base.flush_deadline;
  now.flush_quiescence -= base.flush_quiescence;
  for (std::size_t i = 0; i < base.parcels_to.size(); ++i) {
    now.parcels_to[i] -= base.parcels_to[i];
    now.batches_to[i] -= base.batches_to[i];
    now.bytes_to[i] -= base.bytes_to[i];
  }
  for (std::size_t i = 0; i < base.batch_size_log2.size(); ++i) {
    now.batch_size_log2[i] -= base.batch_size_log2[i];
  }
  return now;
}

}  // namespace

PreparedModel build_model(Kernel& kernel, const EvalConfig& cfg,
                          std::span<const Vec3> sources,
                          std::span<const Vec3> targets, int localities) {
  PreparedModel p{build_dual_tree(sources, targets, cfg.threshold, localities),
                  {},
                  {}};
  kernel.setup(p.tree.source.domain().size,
               std::max(p.tree.source.max_level(),
                        p.tree.target.max_level()) + 1,
               cfg.digits);
  p.lists = build_lists(p.tree);
  DagBuildConfig dcfg;
  dcfg.method = cfg.method;
  dcfg.placement = cfg.placement;
  dcfg.bh_theta = cfg.bh_theta;
  p.dag = build_dag(p.tree, p.lists, kernel, dcfg, localities);
  return p;
}

EvalPipeline::EvalPipeline(Kernel& kernel, const EvalConfig& cfg,
                           std::span<const Vec3> sources,
                           std::span<const Vec3> targets)
    : kernel_(kernel),
      cfg_(cfg),
      src_pts_(sources.begin(), sources.end()),
      tgt_pts_(targets.begin(), targets.end()) {
  owned_ex_ = std::make_unique<ThreadExecutor>(
      cfg_.localities, cfg_.cores_per_locality,
      cfg_.split_priority ? SchedPolicy::kPriority : cfg_.policy, cfg_.seed,
      cfg_.coalesce);
  ex_ = owned_ex_.get();
  ex_->trace().set_enabled(cfg_.trace);
  ex_->counters().set_enabled(cfg_.counters);
  build(src_pts_, tgt_pts_);
  snapshot_baseline();
}

EvalPipeline::EvalPipeline(Kernel& kernel, const EvalConfig& cfg,
                           std::span<const Vec3> sources,
                           std::span<const Vec3> targets,
                           net::NetExecutor& ex)
    : kernel_(kernel),
      cfg_(cfg),
      src_pts_(sources.begin(), sources.end()),
      tgt_pts_(targets.begin(), targets.end()) {
  ex_ = &ex;
  ex_->trace().set_enabled(cfg_.trace);
  ex_->counters().set_enabled(cfg_.counters);
  build(src_pts_, tgt_pts_);
  snapshot_baseline();
}

EvalPipeline::~EvalPipeline() = default;

void EvalPipeline::build(std::span<const Vec3> sources,
                         std::span<const Vec3> targets) {
  Timer setup;
  model_ = build_model(kernel_, cfg_, sources, targets,
                       ex_->num_localities());
  setup_seconds_ = setup.seconds();
  EngineOptions opt;
  opt.mode = EngineMode::kCompute;
  opt.split_priority = cfg_.split_priority;
  engine_ = std::make_unique<DagEngine>(model_.dag, model_.tree, kernel_,
                                        *ex_, opt);
}

void EvalPipeline::rebuild() {
  // The old engine references model_'s tree/DAG; drop it before they are
  // replaced, then instantiate a fresh arena on the next evaluate().
  engine_.reset();
  build(src_pts_, tgt_pts_);
  ++rebuilds_;
  snapshot_baseline();
}

void EvalPipeline::snapshot_baseline() {
  bytes_base_ = ex_->bytes_sent();
  parcels_base_ = ex_->parcels_sent();
  comm_base_ = ex_->comm_stats();
}

EvalResult EvalPipeline::evaluate(std::span<const double> charges) {
  AMTFMM_ASSERT(charges.size() == model_.tree.source.num_points());
  EvalResult out;
  out.dag = model_.dag.stats();
  out.setup_time = setup_seconds_;

  // Charges into tree order; the staging vectors are resident and only
  // grow (no steady-state allocation once sized).
  const auto& sperm = model_.tree.source.original_index();
  sorted_q_.resize(charges.size());
  for (std::size_t i = 0; i < charges.size(); ++i) {
    sorted_q_[i] = charges[sperm[i]];
  }
  sorted_phi_.assign(model_.tree.target.num_points(), 0.0);

  epoch_starts_.push_back(ex_->now());
  out.makespan = engine_->execute(sorted_q_, sorted_phi_);

  const auto& tperm = model_.tree.target.original_index();
  out.potentials.assign(sorted_phi_.size(), 0.0);
  for (std::size_t i = 0; i < sorted_phi_.size(); ++i) {
    out.potentials[tperm[i]] = sorted_phi_[i];
  }

  out.bytes_sent = ex_->bytes_sent() - bytes_base_;
  out.parcels_sent = ex_->parcels_sent() - parcels_base_;
  out.wire_bytes = engine_->wire_bytes();
  // Per-epoch form of the transport identity: this epoch serialized
  // exactly the bytes it handed to the transport (the executor counters
  // are cumulative, hence the baseline deltas).
  AMTFMM_ASSERT(out.wire_bytes == out.bytes_sent);
  out.comm = diff_comm(ex_->comm_stats(), comm_base_);
  snapshot_baseline();

  if (cfg_.trace) {
    // Trace buffers accumulate across epochs; exports carry the epoch
    // start times so the analyzer can cut per-epoch critical paths.
    out.trace = ex_->trace().collect();
    out.comm_trace = ex_->trace().collect_comm();
    out.instants = ex_->trace().collect_instants();
    out.dag_edges = flatten_dag_edges(model_.dag);
  }
  if (cfg_.counters) out.counters = ex_->counters().snapshot();
  return out;
}

BatchEvalResult EvalPipeline::evaluate_batch(
    std::span<const double> charges, std::span<const EvalRequest> requests) {
  auto& ctr = ex_->counters();
  if (ctr.enabled()) {
    ctr.gauge_max(0, ex_->runtime().ids().serve_batch_size_hw,
                  requests.size());
  }
  BatchEvalResult out;
  out.combined = evaluate(charges);
  out.per_request.reserve(requests.size());
  for (const EvalRequest& r : requests) {
    std::vector<double> phi(r.targets.size());
    for (std::size_t i = 0; i < r.targets.size(); ++i) {
      AMTFMM_ASSERT(r.targets[i] < out.combined.potentials.size());
      phi[i] = out.combined.potentials[r.targets[i]];
    }
    out.per_request.push_back(std::move(phi));
  }
  return out;
}

PipelineUpdateStats EvalPipeline::apply_update(bool source_side,
                                               const PipelineUpdate& u) {
  auto& pts = source_side ? src_pts_ : tgt_pts_;
  // Patch the original-order ensemble with the same vector-erase-then-
  // append renumbering Tree::update documents.
  for (const PointMove& m : u.moves) {
    AMTFMM_ASSERT(m.index < pts.size());
    pts[m.index] = m.position;
  }
  for (std::size_t i = u.erased.size(); i-- > 0;) {
    AMTFMM_ASSERT(u.erased[i] < pts.size());
    pts.erase(pts.begin() + u.erased[i]);
  }
  pts.insert(pts.end(), u.inserted.begin(), u.inserted.end());

  Tree& tree = source_side ? model_.tree.source : model_.tree.target;
  PipelineUpdateStats st;
  const auto r = tree.update(u.moves, u.erased, u.inserted);
  if (!r) {
    rebuild();
    st.rebuilt = true;
    return st;
  }
  st.dirty_leaves = r->dirty_leaves;
  // Structure preserved: the DAG topology and the resident LCO arena are
  // reused; only the count-dependent annotations change.
  refresh_dag_metrics(model_.dag, model_.tree);
  auto& ctr = ex_->counters();
  if (ctr.enabled() && r->dirty_leaves > 0) {
    ctr.add(0, ex_->runtime().ids().serve_dirty_leaves, r->dirty_leaves);
  }
  return st;
}

PipelineUpdateStats EvalPipeline::update_sources(const PipelineUpdate& u) {
  return apply_update(true, u);
}

PipelineUpdateStats EvalPipeline::update_targets(const PipelineUpdate& u) {
  return apply_update(false, u);
}

std::uint64_t EvalPipeline::epochs() const {
  return engine_ ? engine_->epochs() : 0;
}

double EvalPipeline::last_reset_seconds() const {
  return engine_ ? engine_->last_reset_seconds() : 0.0;
}

std::uint64_t EvalPipeline::gas_allocs_last_epoch() const {
  return engine_ ? engine_->gas_allocs_last_epoch() : 0;
}

std::size_t EvalPipeline::gas_objects_on(std::uint32_t locality) const {
  return engine_ ? engine_->gas().objects_on(locality) : 0;
}

}  // namespace amtfmm
