#pragma once

#include <memory>

#include "core/engine.hpp"
#include "runtime/counters.hpp"
#include "runtime/runtime.hpp"

namespace amtfmm {

namespace net {
class NetExecutor;
}

class EvalPipeline;

/// User-facing configuration.  Everything here is a plain parameter — the
/// DASHMM design point the paper emphasizes: the method, kernel, accuracy
/// and data distribution vary freely while the parallelization underneath
/// stays the same, and no knowledge of the runtime is required.
struct EvalConfig {
  Method method = Method::kFmmAdvanced;
  int threshold = 60;      ///< refinement threshold (paper: 60)
  int digits = 3;          ///< accuracy digits (paper: 3)
  double bh_theta = 0.5;   ///< Barnes-Hut opening angle
  Placement placement = Placement::kCommMin;
  int localities = 1;
  int cores_per_locality = 2;
  SchedPolicy policy = SchedPolicy::kWorkStealing;
  bool split_priority = false;  ///< binary priority for the upward pass
  M2LMode m2l_mode = M2LMode::kRotation;  ///< rotation (O(p^3)) or naive M2L
  CoalesceConfig coalesce{};  ///< per-locality parcel coalescing
  bool trace = false;
  bool counters = false;  ///< runtime counter registry (see counters.hpp)
  std::uint64_t seed = 1;
};

struct EvalResult {
  std::vector<double> potentials;  ///< one per target, in caller order
  double makespan = 0.0;           ///< DAG evaluation time (seconds)
  double setup_time = 0.0;         ///< tree + lists + DAG construction
  DagStats dag;
  std::vector<TraceEvent> trace;
  std::vector<CommEvent> comm_trace;
  std::vector<InstantEvent> instants;
  /// DAG edges flattened as [src0, dst0, src1, dst1, ...] in edge-id order
  /// (so TraceEvent::arg indexes pair `arg`).  Filled when trace is on;
  /// embedded in Chrome exports for the critical-path analyzer.
  std::vector<std::uint32_t> dag_edges;
  std::uint64_t bytes_sent = 0;
  std::uint64_t parcels_sent = 0;
  /// Serialized bytes of every remote parcel as counted by the engine's
  /// wire format; always equals bytes_sent (asserted).
  std::uint64_t wire_bytes = 0;
  CommStats comm;
  CounterSnapshot counters;  ///< filled when EvalConfig::counters is on
};

/// Configuration for a simulated (DES) evaluation of the same DAG.
struct SimConfig {
  int localities = 1;
  int cores_per_locality = 32;  ///< Big Red II: 32 cores per node
  SchedPolicy policy = SchedPolicy::kWorkStealing;
  bool split_priority = false;
  NetworkModel network{};
  CoalesceConfig coalesce{};  ///< per-locality parcel coalescing
  CostModel cost;  ///< fill via CostModel::paper() or ::measured()
  bool trace = false;
  bool counters = false;  ///< runtime counter registry (see counters.hpp)
  std::uint64_t seed = 1;
};

struct SimResult {
  double virtual_time = 0.0;
  DagStats dag;
  std::vector<TraceEvent> trace;
  std::vector<CommEvent> comm_trace;
  std::vector<InstantEvent> instants;
  /// DAG edges flattened as [src, dst, ...] in edge-id order (see
  /// EvalResult::dag_edges).
  std::vector<std::uint32_t> dag_edges;
  std::uint64_t bytes_sent = 0;
  std::uint64_t parcels_sent = 0;
  /// Engine-side wire-format byte count; always equals bytes_sent.
  std::uint64_t wire_bytes = 0;
  CommStats comm;
  CounterSnapshot counters;  ///< filled when SimConfig::counters is on
  int total_cores = 0;
};

/// The top-level HMM evaluator: builds the dual tree, the interaction
/// lists, and the explicit DAG, then evaluates the implicit LCO dataflow
/// network on the requested substrate.
///
///   auto eval = Evaluator(make_kernel("laplace"), {});
///   auto result = eval.evaluate(sources, charges, targets);
///
/// evaluate() computes real potentials on the threaded executor;
/// simulate() replays the identical DAG on the discrete-event simulator to
/// predict time-to-solution on a virtual cluster (the Big Red II
/// substitution of DESIGN.md).
class Evaluator {
 public:
  Evaluator(std::unique_ptr<Kernel> kernel, EvalConfig cfg);
  ~Evaluator();

  EvalResult evaluate(std::span<const Vec3> sources,
                      std::span<const double> charges,
                      std::span<const Vec3> targets);

  /// Iterative use (the opening of the paper's section IV): the FMM is
  /// commonly evaluated many times over the same geometry with different
  /// charges, so the tree/lists/DAG setup is built once and amortized.
  /// prepare() fixes the ensembles; evaluate_prepared() then runs one DAG
  /// evaluation per call, reusing every setup artifact.
  /// Under the hood prepare() stands up a resident EvalPipeline, so every
  /// evaluate_prepared() after the first re-arms the same GAS/LCO arena in
  /// place (epoch reset) instead of re-instantiating it.
  void prepare(std::span<const Vec3> sources, std::span<const Vec3> targets);
  EvalResult evaluate_prepared(std::span<const double> charges);
  bool prepared() const { return pipeline_ != nullptr; }

  /// The resident pipeline behind prepare(), for epoch statistics and
  /// incremental updates (null before prepare()).
  EvalPipeline* pipeline() { return pipeline_.get(); }

  SimResult simulate(std::span<const Vec3> sources,
                     std::span<const Vec3> targets, const SimConfig& sim);

  /// One SPMD rank of a distributed evaluation over socket localities:
  /// every rank calls this with the IDENTICAL inputs and configuration
  /// (the tree/lists/DAG are deterministic, so all processes agree on
  /// placement without communicating), using `ex.num_localities()` as the
  /// locality count.  The returned potentials are this rank's PARTIAL
  /// result — entries for target boxes homed on other ranks are zero, so
  /// the global answer is the element-wise sum across ranks (each target
  /// has exactly one home).  bytes_sent/wire_bytes/comm likewise cover
  /// only this rank's sends, and wire_bytes == bytes_sent stays asserted
  /// per rank.  EvalConfig::localities/cores_per_locality are ignored in
  /// favor of the executor's world and pool.
  EvalResult evaluate_distributed(net::NetExecutor& ex,
                                  std::span<const Vec3> sources,
                                  std::span<const double> charges,
                                  std::span<const Vec3> targets);

  const Kernel& kernel() const { return *kernel_; }
  const EvalConfig& config() const { return cfg_; }

 private:
  std::unique_ptr<Kernel> kernel_;
  EvalConfig cfg_;
  std::unique_ptr<EvalPipeline> pipeline_;
};

/// Reference O(N^2) summation (chunked over the executor's workers); the
/// ground truth every method is validated against.
std::vector<double> direct_sum(const Kernel& kernel,
                               std::span<const Vec3> sources,
                               std::span<const double> charges,
                               std::span<const Vec3> targets);

}  // namespace amtfmm
