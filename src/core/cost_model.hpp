#pragma once

#include <array>
#include <memory>
#include <string>

#include "kernels/kernel.hpp"

namespace amtfmm {

/// Per-operator task-cost model for the sim executor:
///   cost(op, metric) = base[op] + per_unit[op] * metric
/// where metric is the edge's work measure (point pairs for S->T, source
/// points for S->M, expansion elements for I->I, ...; see core/dag.cpp).
///
/// Two calibrations ship with the library:
///  - paper():    the average per-edge execution times of the paper's
///                Table II (Big Red II, 128-core run) — used to reproduce
///                the published scaling shape with their operator costs;
///  - measured(): micro-measured on this host for a given kernel, the
///                profile to use when predicting this machine.
struct CostModel {
  std::array<double, kNumOperators> base{};
  std::array<double, kNumOperators> per_unit{};

  double cost(Operator op, double metric) const {
    const auto i = static_cast<std::size_t>(op);
    return base[i] + per_unit[i] * metric;
  }

  static CostModel paper(const std::string& kernel_name);
  static CostModel measured(const Kernel& kernel, int level = 3,
                            int points_per_box = 60);
};

}  // namespace amtfmm
