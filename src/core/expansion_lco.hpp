#pragma once

#include <array>
#include <atomic>
#include <cstring>
#include <span>
#include <vector>

#include "core/dag.hpp"
#include "math/coeffs.hpp"
#include "runtime/lco.hpp"

namespace amtfmm {

class DagEngine;

/// Which accumulator of an expansion payload a wire record targets.
/// kPoints appears only in parcel section headers (source-point shipping),
/// never in set_input records; kNone is the cost-only dependency record.
enum class PayloadSlot : std::uint8_t {
  kMain = 0,    ///< M or L coefficients
  kOwn = 1,     ///< per-direction outgoing / incoming X (dir selects axis)
  kFwd = 2,     ///< per-direction forward (merge) X accumulator
  kPhi = 3,     ///< target potential accumulators (doubles)
  kPoints = 4,  ///< source points + charges (parcel sections only)
  kNone = 5,    ///< dependency-only record (cost mode)
};

/// Fixed 8-byte header of one record in a set_input message or one section
/// of a parcel.  A set_input message is a sequence of
/// (WireRecord, payload) pairs; `count` is the element count of the payload
/// (cdouble for coefficient slots, double for kPhi, 0 for kNone).  Payload
/// sizes are multiples of 8 bytes, so every record header within a message
/// stays 8-byte aligned.
struct WireRecord {
  std::uint8_t op;    ///< Operator that produced the contribution
  std::uint8_t slot;  ///< PayloadSlot
  std::uint8_t dir;   ///< Axis index for kOwn/kFwd
  std::uint8_t pad = 0;
  std::uint32_t count;  ///< payload element count
};
static_assert(sizeof(WireRecord) == 8);

/// Appends one (header, payload) record to a set_input message buffer.
inline void append_record(std::vector<std::byte>& buf, Operator op,
                          PayloadSlot slot, std::uint8_t dir, const void* data,
                          std::size_t bytes, std::uint32_t count) {
  WireRecord h{static_cast<std::uint8_t>(op),
               static_cast<std::uint8_t>(slot), dir, 0, count};
  const std::size_t off = buf.size();
  buf.resize(off + sizeof(h) + bytes);
  std::memcpy(buf.data() + off, &h, sizeof(h));
  if (bytes != 0) std::memcpy(buf.data() + off + sizeof(h), data, bytes);
}

/// The 8-byte dependency-only input used in cost-only mode: the LCO
/// countdown runs, no data moves.
std::span<const std::byte> dep_record();

/// The expansion accumulators of one DAG node; which members are used
/// depends on the node kind (M/L: main; Is/It: own/fwd; T: phi).
struct ExpansionPayload {
  CoeffVec main;
  std::array<CoeffVec, 6> own;
  std::array<CoeffVec, 6> fwd;
  std::vector<double> phi;

  void release() {
    main = CoeffVec{};
    for (auto& v : own) v = CoeffVec{};
    for (auto& v : fwd) v = CoeffVec{};
    phi = std::vector<double>{};
  }
};

/// The paper's custom expansion LCO (section IV, Figure 2): one per DAG
/// node, GAS-resident, holding the expansion payload and counting down the
/// node's in-edges.  Inputs arrive as serialized wire records (set_input)
/// and reduce into the payload under the LCO lock; the final input fires
/// on_fire(), which hands control back to the engine to walk the node's
/// out-edge CSR (local tasks, serialized parcels to remote localities).
///
/// Ownership discipline: the payload may only be touched by code running on
/// the LCO's home locality (or outside any task — instantiation, tests);
/// check_home() enforces this in debug builds.  Cross-locality readers get
/// a serialized copy via the engine's parcels, never a pointer.
class ExpansionLCO final : public LCO {
 public:
  ExpansionLCO(DagEngine& engine, Executor& ex, NodeIndex node,
               std::uint32_t home, int inputs)
      : LCO(ex, inputs), engine_(engine), node_(node), home_(home) {}

  NodeIndex node() const { return node_; }
  std::uint32_t home() const { return home_; }

  ExpansionPayload& payload() {
#ifndef NDEBUG
    check_home();
#endif
    return payload_;
  }

  /// Reference counting of payload readers: the engine retains once per
  /// spawned consumer task; the last release frees the buffers (the
  /// "buffers free once every consumer holds its share" lifecycle).
  void retain_payload(int n) {
    // relaxed-ok: retains precede the consumer spawns (spawn publishes);
    // the final release (acq_rel below) orders the free against readers.
    consumers_.fetch_add(n, std::memory_order_relaxed);
  }
  void release_payload() {
    if (consumers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      payload_.release();
    }
  }

  /// Epoch reset: re-arms the trigger-once countdown to `inputs` and drops
  /// the previous epoch's accumulators and reader counts.  Same quiescence
  /// contract as LCO::rearm — only between drained evaluations.
  void reset(int inputs) {
    rearm(inputs);
    payload_.release();
    // relaxed-ok: reset runs only between drained evaluations (quiescence
    // contract above), so no thread can race this store.
    consumers_.store(0, std::memory_order_relaxed);
  }

 protected:
  void reduce(std::span<const std::byte> data) override;
  void on_fire() override;

 private:
  void check_home() const;

  DagEngine& engine_;
  NodeIndex node_;
  std::uint32_t home_;
  ExpansionPayload payload_;
  std::atomic<int> consumers_{0};
};

}  // namespace amtfmm
