#include "core/engine.hpp"

#include "support/error.hpp"

namespace amtfmm {

/// Wire bytes per out-edge record in a remote edge-batch parcel (edge id,
/// destination node, operator tag — the metadata beside the expansion).
constexpr std::uint64_t kRemoteEdgeRecordBytes = 16;

DagEngine::DagEngine(const Dag& dag, const DualTree& dt, const Kernel& kernel,
                     Executor& ex, EngineOptions opt)
    : dag_(dag), dt_(dt), kernel_(kernel), ex_(ex), opt_(std::move(opt)) {
  states_ = std::make_unique<NodeState[]>(dag_.nodes.size());
}

double DagEngine::execute(std::span<const double> charges,
                          std::span<double> potentials) {
  charges_ = charges;
  potentials_ = potentials;
  if (opt_.mode == EngineMode::kCompute) {
    AMTFMM_ASSERT(charges.size() == dt_.source.num_points());
    AMTFMM_ASSERT(potentials.size() == dt_.target.num_points());
    std::fill(potentials.begin(), potentials.end(), 0.0);
  }
  for (std::size_t i = 0; i < dag_.nodes.size(); ++i) {
    states_[i].remaining.store(dag_.nodes[i].in_degree,
                               std::memory_order_relaxed);
    states_[i].payload.reset();
  }
  const double t0 = ex_.now();
  seed();
  ex_.drain();
  return ex_.now() - t0;
}

void DagEngine::seed() {
  for (NodeIndex ni = 0; ni < dag_.nodes.size(); ++ni) {
    const DagNode& n = dag_.nodes[ni];
    if (n.kind == NodeKind::kS) {
      trigger(ni);
    } else if (n.in_degree == 0 && n.kind == NodeKind::kT) {
      // A target box no source can see: its potentials are exactly zero.
      Task t;
      t.locality = n.locality;
      t.fn = [this, ni] { finalize_target(ni); };
      ex_.spawn(std::move(t));
    }
  }
}

void DagEngine::set_input(NodeIndex ni) {
  if (states_[ni].remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    trigger(ni);
  }
}

void DagEngine::trigger(NodeIndex ni) {
  const DagNode& n = dag_.nodes[ni];
  if (n.kind == NodeKind::kT) {
    finalize_target(ni);
    return;
  }
  // Detach the payload: continuations share ownership; the buffers free
  // once the last coalesced parcel has been evaluated.
  std::shared_ptr<Payload> payload = std::move(states_[ni].payload);
  spawn_edge_tasks(ni, std::move(payload));
}

void DagEngine::spawn_edge_tasks(NodeIndex ni,
                                 std::shared_ptr<Payload> payload) {
  const DagNode& n = dag_.nodes[ni];
  if (n.num_edges == 0) return;

  // Bucket out edges: local ones (possibly split by priority) and one
  // coalesced bucket per remote locality.
  std::vector<std::uint32_t> local_low, local_high;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> remote;
  auto remote_bucket = [&](std::uint32_t loc) -> std::vector<std::uint32_t>& {
    for (auto& [l, v] : remote) {
      if (l == loc) return v;
    }
    remote.emplace_back(loc, std::vector<std::uint32_t>{});
    return remote.back().second;
  };
  auto is_high = [](Operator op) {
    return op == Operator::kS2M || op == Operator::kM2M ||
           op == Operator::kM2I;
  };
  for (std::uint32_t e = n.first_edge; e < n.first_edge + n.num_edges; ++e) {
    const DagEdge& edge = dag_.edges[e];
    const std::uint32_t tloc = dag_.nodes[edge.target].locality;
    if (tloc == n.locality) {
      (opt_.split_priority && is_high(edge.op) ? local_high : local_low)
          .push_back(e);
    } else {
      remote_bucket(tloc).push_back(e);
    }
  }

  auto make_task = [&](std::vector<std::uint32_t> ids, std::uint32_t loc,
                       bool high) {
    Task t;
    t.locality = loc;
    t.high_priority = high;
    if (opt_.mode == EngineMode::kCostOnly) {
      t.items.reserve(ids.size());
      for (const std::uint32_t e : ids) {
        const DagEdge& edge = dag_.edges[e];
        t.items.push_back(CostItem{
            static_cast<std::uint8_t>(edge.op),
            opt_.cost.cost(edge.op, edge.cost_metric)});
      }
    }
    t.fn = [this, ni, ids = std::move(ids), payload]() {
      process_edges(ni, ids, payload);
    };
    return t;
  };

  if (!local_high.empty()) {
    ex_.spawn(make_task(std::move(local_high), n.locality, true));
  }
  if (!local_low.empty()) {
    ex_.spawn(make_task(std::move(local_low), n.locality, false));
  }
  for (auto& [loc, ids] : remote) {
    // One parcel per destination locality: the expansion data travels once,
    // plus a small record per edge (the paper's manual per-node coalescing;
    // the executor's CoalesceConfig layer batches *across* nodes on top).
    std::uint64_t bytes = kRemoteEdgeRecordBytes * ids.size();
    std::uint64_t payload_bytes = 0;
    for (const std::uint32_t e : ids) {
      payload_bytes = std::max<std::uint64_t>(payload_bytes,
                                              dag_.edges[e].bytes);
    }
    bytes += payload_bytes;
    const bool high =
        opt_.split_priority && is_high(dag_.edges[ids.front()].op);
    ex_.send(n.locality, loc, bytes, make_task(std::move(ids), loc, high));
  }
}

void DagEngine::process_edges(NodeIndex ni,
                              std::span<const std::uint32_t> edge_ids,
                              const std::shared_ptr<Payload>& payload) {
  const bool compute = opt_.mode == EngineMode::kCompute;
  for (const std::uint32_t e : edge_ids) {
    const DagEdge& edge = dag_.edges[e];
    if (compute) {
      ScopedTrace st(ex_, static_cast<std::uint8_t>(edge.op));
      apply_edge(ni, edge, payload.get());
    }
    set_input(edge.target);
  }
}

DagEngine::Payload& DagEngine::ensure_payload(NodeIndex ni) {
  NodeState& st = states_[ni];
  if (!st.payload) st.payload = std::make_shared<Payload>();
  return *st.payload;
}

namespace {

/// Accumulates b into a, resizing on first use.
void acc(CoeffVec& a, const CoeffVec& b) {
  if (a.size() < b.size()) a.resize(b.size(), cdouble{});
  for (std::size_t i = 0; i < b.size(); ++i) a[i] += b[i];
}

}  // namespace

void DagEngine::apply_edge(NodeIndex from, const DagEdge& e,
                           const Payload* src) {
  const DagNode& fn = dag_.nodes[from];
  const DagNode& tn = dag_.nodes[e.target];
  const TreeBox& fbox = (fn.kind == NodeKind::kS || fn.kind == NodeKind::kM ||
                         fn.kind == NodeKind::kIs)
                            ? dt_.source.box(fn.box)
                            : dt_.target.box(fn.box);
  const TreeBox& tbox = (tn.kind == NodeKind::kS || tn.kind == NodeKind::kM ||
                         tn.kind == NodeKind::kIs)
                            ? dt_.source.box(tn.box)
                            : dt_.target.box(tn.box);
  NodeState& tstate = states_[e.target];

  // Source-side inputs for S-originated edges.
  const auto src_pts = std::span<const Vec3>(dt_.source.sorted_points())
                           .subspan(fbox.first, fbox.count);
  const auto src_q = charges_.subspan(
      fn.kind == NodeKind::kS ? fbox.first : 0,
      fn.kind == NodeKind::kS ? fbox.count : 0);
  const auto tgt_pts = std::span<const Vec3>(dt_.target.sorted_points())
                           .subspan(tbox.first, tbox.count);

  switch (e.op) {
    case Operator::kS2M: {
      CoeffVec m;
      kernel_.s2m(src_pts, src_q, tbox.cube.center(), tbox.level, m);
      tstate.lock.lock();
      acc(ensure_payload(e.target).main, m);
      tstate.lock.unlock();
      break;
    }
    case Operator::kM2M: {
      tstate.lock.lock();
      Payload& p = ensure_payload(e.target);
      if (p.main.empty()) p.main.assign(kernel_.m_count(tbox.level), cdouble{});
      kernel_.m2m_acc(src->main, fbox.cube.center(), tbox.cube.center(),
                      fbox.level, p.main);
      tstate.lock.unlock();
      break;
    }
    case Operator::kM2L: {
      tstate.lock.lock();
      Payload& p = ensure_payload(e.target);
      if (p.main.empty()) p.main.assign(kernel_.l_count(tbox.level), cdouble{});
      kernel_.m2l_acc(src->main, fbox.cube.center(), tbox.cube.center(),
                      tbox.level, p.main);
      tstate.lock.unlock();
      break;
    }
    case Operator::kS2L: {
      tstate.lock.lock();
      Payload& p = ensure_payload(e.target);
      if (p.main.empty()) p.main.assign(kernel_.l_count(tbox.level), cdouble{});
      kernel_.s2l_acc(src_pts, src_q, tbox.cube.center(), tbox.level, p.main);
      tstate.lock.unlock();
      break;
    }
    case Operator::kM2T: {
      tstate.lock.lock();
      Payload& p = ensure_payload(e.target);
      if (p.phi.empty()) p.phi.assign(tbox.count, 0.0);
      for (std::uint32_t i = 0; i < tbox.count; ++i) {
        p.phi[i] += kernel_.m2t(src->main, fbox.cube.center(), fbox.level,
                                tgt_pts[i]);
      }
      tstate.lock.unlock();
      break;
    }
    case Operator::kL2L: {
      tstate.lock.lock();
      Payload& p = ensure_payload(e.target);
      if (p.main.empty()) p.main.assign(kernel_.l_count(tbox.level), cdouble{});
      kernel_.l2l_acc(src->main, fbox.cube.center(), tbox.cube.center(),
                      tbox.level, p.main);
      tstate.lock.unlock();
      break;
    }
    case Operator::kL2T: {
      tstate.lock.lock();
      Payload& p = ensure_payload(e.target);
      if (p.phi.empty()) p.phi.assign(tbox.count, 0.0);
      for (std::uint32_t i = 0; i < tbox.count; ++i) {
        p.phi[i] += kernel_.l2t(src->main, fbox.cube.center(), fbox.level,
                                tgt_pts[i]);
      }
      tstate.lock.unlock();
      break;
    }
    case Operator::kS2T: {
      tstate.lock.lock();
      Payload& p = ensure_payload(e.target);
      if (p.phi.empty()) p.phi.assign(tbox.count, 0.0);
      for (std::uint32_t i = 0; i < tbox.count; ++i) {
        double phi = 0.0;
        for (std::size_t j = 0; j < src_pts.size(); ++j) {
          phi += src_q[j] * kernel_.direct(tgt_pts[i], src_pts[j]);
        }
        p.phi[i] += phi;
      }
      tstate.lock.unlock();
      break;
    }
    case Operator::kM2I: {
      tstate.lock.lock();
      Payload& p = ensure_payload(e.target);
      for (std::size_t d = 0; d < 6; ++d) {
        kernel_.m2i(src->main, fbox.level, kAllAxes[d], p.own[d]);
      }
      tstate.lock.unlock();
      break;
    }
    case Operator::kI2I: {
      // Quadrature level: the finer of the two endpoints (merge edges rise
      // a level, shift edges descend one).
      const int qlevel = std::max(fbox.level, tbox.level);
      const auto d = static_cast<std::size_t>(e.dir);
      const CoeffVec& in =
          (fn.kind == NodeKind::kIs) ? src->own[d] : src->fwd[d];
      const Vec3 offset = tbox.cube.center() - fbox.cube.center();
      tstate.lock.lock();
      Payload& p = ensure_payload(e.target);
      CoeffVec& out = (e.slot == 1) ? p.fwd[d] : p.own[d];
      if (out.size() < kernel_.x_count(qlevel)) {
        out.assign(kernel_.x_count(qlevel), cdouble{});
      }
      kernel_.i2i_acc(in, kAllAxes[d], offset, qlevel, out);
      tstate.lock.unlock();
      break;
    }
    case Operator::kI2L: {
      tstate.lock.lock();
      Payload& p = ensure_payload(e.target);
      if (p.main.empty()) p.main.assign(kernel_.l_count(tbox.level), cdouble{});
      for (std::size_t d = 0; d < 6; ++d) {
        if (!src->own[d].empty()) {
          kernel_.i2l_acc(src->own[d], kAllAxes[d], fbox.level, p.main);
        }
      }
      tstate.lock.unlock();
      break;
    }
  }
}

void DagEngine::finalize_target(NodeIndex ni) {
  if (opt_.mode != EngineMode::kCompute) return;
  const DagNode& n = dag_.nodes[ni];
  const TreeBox& box = dt_.target.box(n.box);
  const std::shared_ptr<Payload> p = std::move(states_[ni].payload);
  if (!p || p->phi.empty()) return;  // no contributions: stays zero
  for (std::uint32_t i = 0; i < box.count; ++i) {
    potentials_[box.first + i] = p->phi[i];
  }
}

}  // namespace amtfmm
