#include "core/engine.hpp"

#include <chrono>
#include <cstring>
#include <utility>

#include "runtime/locality_runtime.hpp"
#include "support/error.hpp"
#include "support/scratch_arena.hpp"

namespace amtfmm {
namespace {

/// Fixed header of an eval parcel: the serialized source expansion plus the
/// out-edge ids it feeds at the destination locality.
struct ParcelHeader {
  std::uint32_t source;      ///< source DAG node
  std::uint16_t num_edges;
  std::uint16_t num_sections;
};
static_assert(sizeof(ParcelHeader) == 8);

/// One serialized payload section of an eval parcel.  Sections follow the
/// edge-id table, so their payloads are *not* alignment-guaranteed —
/// deserialization always memcpys into local storage.
struct SectionHeader {
  std::uint8_t slot;  ///< PayloadSlot
  std::uint8_t dir;
  std::uint16_t reserved;
  std::uint32_t bytes;
};
static_assert(sizeof(SectionHeader) == 8);

/// Fixed header of a source-computed contribution parcel (S2L, I2L): the
/// packed L payload follows.
struct ContribHeader {
  std::uint32_t target;  ///< destination DAG node
  std::uint8_t op;
  std::uint8_t pad8 = 0;
  std::uint16_t pad16 = 0;
};
static_assert(sizeof(ContribHeader) == 8);

constexpr std::size_t kBytesPerPoint = 32;  // x, y, z, q doubles

const CoeffVec kEmptyCoeffs;

const CoeffVec& view(const CoeffVec* p) { return p ? *p : kEmptyCoeffs; }

/// Zero-pads `v` to exactly `want` coefficients (staging through `stage`
/// when the stored vector is shorter, e.g. a never-accumulated direction).
const CoeffVec& sized(const CoeffVec& v, std::size_t want, CoeffVec& stage) {
  if (v.size() == want) return v;
  AMTFMM_ASSERT(v.size() < want);
  stage = v;
  stage.resize(want, cdouble{});
  return stage;
}

bool is_high(Operator op) {
  return op == Operator::kS2M || op == Operator::kM2M || op == Operator::kM2I;
}

}  // namespace

DagEngine::DagEngine(const Dag& dag, const DualTree& dt, const Kernel& kernel,
                     Executor& ex, EngineOptions opt)
    : dag_(dag),
      dt_(dt),
      kernel_(kernel),
      ex_(ex),
      opt_(std::move(opt)),
      gas_(ex.num_localities()) {}

DagEngine::~DagEngine() {
  if (handlers_registered_) {
    ex_.unregister_net_handler(kNetKindEvalParcel);
    ex_.unregister_net_handler(kNetKindContribution);
  }
}

double DagEngine::execute(std::span<const double> charges,
                          std::span<double> potentials) {
  charges_ = charges;
  potentials_ = potentials;
  if (opt_.mode == EngineMode::kCompute) {
    AMTFMM_ASSERT(charges.size() == dt_.source.num_points());
    AMTFMM_ASSERT(potentials.size() == dt_.target.num_points());
    std::fill(potentials.begin(), potentials.end(), 0.0);
  }
  // relaxed-ok: statistic reset before any worker runs; executor spawn
  // publishes it.
  wire_bytes_.store(0, std::memory_order_relaxed);
  if (opt_.mode == EngineMode::kCompute) {
    // Socket localities rebuild remote work from serialized payloads; the
    // handlers must exist before any peer's parcels can arrive.  No-op on
    // in-process executors (they ship the closures themselves).
    ex_.register_net_handler(
        kNetKindEvalParcel,
        [this](const std::vector<std::byte>& b) { process_parcel(b); });
    ex_.register_net_handler(
        kNetKindContribution,
        [this](const std::vector<std::byte>& b) { process_contribution(b); });
    handlers_registered_ = true;
  }
  const std::uint64_t allocs_before = gas_.total_allocs();
  if (!instantiated_) {
    instantiate();
    instantiated_ = true;
    last_reset_seconds_ = 0.0;
  } else {
    const auto r0 = std::chrono::steady_clock::now();
    reset_for_epoch();
    last_reset_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - r0)
            .count();
  }
  auto& ctr = ex_.counters();
  if (ctr.enabled()) {
    // GAS slab occupancy high-water: every node's LCO is resident for the
    // whole run, so the peak is the post-instantiate per-locality count.
    const auto& ids = ex_.runtime().ids();
    for (int l = 0; l < ex_.num_localities(); ++l) {
      ctr.gauge_max(0, ids.gas_objects_hw, gas_.objects_on(l));
    }
    ctr.add(0, ids.serve_epochs);
    if (instantiated_ && epoch_ > 0) {
      ctr.observe(0, ids.serve_reset_us,
                  static_cast<std::uint64_t>(last_reset_seconds_ * 1e6));
    }
  }
  if (opt_.mode == EngineMode::kCompute) {
    // Startup barrier for socket localities: an empty drain rendezvouses
    // every rank (the termination protocol agrees on the all-zero counter
    // cut), so no peer can have seeded — and therefore no eval parcel can
    // arrive — until every rank has finished instantiate() and registered
    // its handlers.  Without it a fast peer's parcels race the addr_/GAS
    // fill above.  On later epochs the same barrier keeps any rank from
    // seeding until every rank has re-armed its resident arena, so no
    // cross-epoch parcel can reach an un-reset LCO.  No-op on in-process
    // executors (nothing is in flight).
    ex_.drain();
  }
  const double t0 = ex_.now();
  seed();
  ex_.drain();
  gas_allocs_epoch_ = gas_.total_allocs() - allocs_before;
  ++epoch_;
  const double makespan = ex_.now() - t0;
  if (ctr.enabled()) {
    // Epoch latency histogram: the live-telemetry serve view (amtfmm_top)
    // derives its p50/p99 from per-window deltas of these buckets.
    ctr.observe(0, ex_.runtime().ids().serve_epoch_us,
                static_cast<std::uint64_t>(makespan * 1e6));
  }
  return makespan;
}

void DagEngine::reset_for_epoch() {
  for (NodeIndex ni = 0; ni < dag_.nodes.size(); ++ni) {
    lco(ni)->reset(static_cast<int>(dag_.nodes[ni].in_degree));
  }
}

void DagEngine::instantiate() {
  gas_.reset();
  addr_.resize(dag_.nodes.size());
  for (NodeIndex ni = 0; ni < dag_.nodes.size(); ++ni) {
    const DagNode& n = dag_.nodes[ni];
    addr_[ni] = gas_.alloc(
        n.locality, std::make_unique<ExpansionLCO>(
                        *this, ex_, ni, n.locality,
                        static_cast<int>(n.in_degree)));
  }
}

void DagEngine::seed() {
  for (NodeIndex ni = 0; ni < dag_.nodes.size(); ++ni) {
    const DagNode& n = dag_.nodes[ni];
    // SPMD gating: every rank builds the identical DAG, but a node's
    // initial work is seeded only by the process hosting its locality
    // (in-process executors host all localities, so this skips nothing
    // there).  Downstream work follows the parcels, not the seeds.
    if (!ex_.locality_is_local(n.locality)) continue;
    if (n.kind == NodeKind::kS) {
      // Sources have no inputs: walk their out-edges directly.
      spawn_edge_tasks(ni);
    } else if (n.in_degree == 0 && n.kind == NodeKind::kT) {
      // A target box no source can see: its potentials are exactly zero.
      Task t;
      t.locality = n.locality;
      t.fn = [this, ni] { finalize_target(ni); };
      ex_.spawn(std::move(t));
    }
  }
}

void DagEngine::on_node_triggered(NodeIndex ni) {
  if (dag_.nodes[ni].kind == NodeKind::kT) {
    finalize_target(ni);
    return;
  }
  spawn_edge_tasks(ni);
}

DagEngine::SourceView DagEngine::local_view(NodeIndex ni) {
  const DagNode& n = dag_.nodes[ni];
  SourceView v;
  if (n.kind == NodeKind::kS) {
    const TreeBox& box = dt_.source.box(n.box);
    v.pts = std::span<const Vec3>(dt_.source.sorted_points())
                .subspan(box.first, box.count);
    v.q = charges_.subspan(box.first, box.count);
  } else {
    ExpansionPayload& p = lco(ni)->payload();
    v.main = &p.main;
    for (std::size_t d = 0; d < 6; ++d) {
      v.own[d] = &p.own[d];
      v.fwd[d] = &p.fwd[d];
    }
  }
  return v;
}

void DagEngine::spawn_edge_tasks(NodeIndex ni) {
  const DagNode& n = dag_.nodes[ni];
  if (n.num_edges == 0) return;
  const bool compute = opt_.mode == EngineMode::kCompute;

  // Bucket out edges: local ones (possibly split by priority), one eval
  // parcel per remote locality, and per-edge contribution parcels for the
  // source-computed operators.
  std::vector<std::uint32_t> local_low, local_high, contrib;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> remote;
  auto remote_bucket = [&](std::uint32_t loc) -> std::vector<std::uint32_t>& {
    for (auto& [l, v] : remote) {
      if (l == loc) return v;
    }
    remote.emplace_back(loc, std::vector<std::uint32_t>{});
    return remote.back().second;
  };
  auto& ctr = ex_.counters();
  const bool counting = ctr.enabled();
  const int cw = counting ? LocalityRuntime::metric_worker() : 0;
  for (std::uint32_t e = n.first_edge; e < n.first_edge + n.num_edges; ++e) {
    const DagEdge& edge = dag_.edges[e];
    if (counting) {
      ctr.add(cw, ex_.runtime().ids().op_tasks[static_cast<std::size_t>(
                      edge.op)]);
    }
    const std::uint32_t tloc = dag_.nodes[edge.target].locality;
    if (tloc == n.locality) {
      (opt_.split_priority && is_high(edge.op) ? local_high : local_low)
          .push_back(e);
    } else if (source_computed(edge.op)) {
      contrib.push_back(e);
    } else {
      remote_bucket(tloc).push_back(e);
    }
  }

  auto cost_items = [&](std::span<const std::uint32_t> ids) {
    std::vector<CostItem> items;
    items.reserve(ids.size());
    for (const std::uint32_t e : ids) {
      const DagEdge& edge = dag_.edges[e];
      items.push_back(CostItem{static_cast<std::uint8_t>(edge.op),
                               opt_.cost.cost(edge.op, edge.cost_metric), e});
    }
    return items;
  };

  auto make_local_task = [&](std::vector<std::uint32_t> ids, bool high) {
    Task t;
    t.locality = n.locality;
    t.high_priority = high;
    if (compute) {
      t.fn = [this, ni, ids = std::move(ids)] { process_local(ni, ids); };
    } else {
      t.items = cost_items(ids);
      t.fn = [this, ids = std::move(ids)] {
        for (const std::uint32_t e : ids) {
          lco(dag_.edges[e].target)->set_input(dep_record());
        }
      };
    }
    return t;
  };

  // Serialize eval parcels before any consumer can release the payload
  // (this thread is on the node's home locality — the last input always
  // arrives there).
  struct PendingParcel {
    std::uint32_t loc;
    bool high;
    std::shared_ptr<std::vector<std::byte>> buf;  // wire buffer (compute)
    std::uint64_t bytes;
    std::vector<std::uint32_t> ids;
  };
  std::vector<PendingParcel> parcels;
  parcels.reserve(remote.size());
  for (auto& [loc, ids] : remote) {
    PendingParcel p;
    p.loc = loc;
    p.high = opt_.split_priority && is_high(dag_.edges[ids.front()].op);
    if (compute) {
      p.buf = std::make_shared<std::vector<std::byte>>(
          serialize_parcel(ni, ids));
      p.bytes = p.buf->size();
      AMTFMM_ASSERT(p.bytes == parcel_wire_bytes(ni, ids));
    } else {
      p.bytes = parcel_wire_bytes(ni, ids);
    }
    p.ids = std::move(ids);
    parcels.push_back(std::move(p));
  }

  const bool has_payload = compute && n.kind != NodeKind::kS;
  if (has_payload) {
    const int consumers = static_cast<int>(!local_high.empty()) +
                          static_cast<int>(!local_low.empty()) +
                          static_cast<int>(contrib.size());
    lco(ni)->retain_payload(consumers + 1);
  }

  if (!local_high.empty()) {
    ex_.spawn(make_local_task(std::move(local_high), true));
  }
  if (!local_low.empty()) {
    ex_.spawn(make_local_task(std::move(local_low), false));
  }

  for (const std::uint32_t e : contrib) {
    const DagEdge& edge = dag_.edges[e];
    const std::uint32_t tloc = dag_.nodes[edge.target].locality;
    if (compute) {
      // The contribution is computed by a task on the source locality
      // (reading the payload), then shipped packed.
      Task t;
      t.locality = n.locality;
      t.fn = [this, ni, e] { send_contribution(ni, e); };
      ex_.spawn(std::move(t));
    } else {
      const std::uint64_t bytes = contribution_wire_bytes(edge);
      // relaxed-ok: byte statistic, read only after drain().
      wire_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      Task t;
      t.locality = tloc;
      t.items = cost_items(std::span<const std::uint32_t>(&e, 1));
      t.fn = [this, target = edge.target] {
        lco(target)->set_input(dep_record());
      };
      ex_.send(n.locality, tloc, bytes, std::move(t));
    }
  }

  for (PendingParcel& p : parcels) {
    // relaxed-ok: byte statistic, read only after drain().
    wire_bytes_.fetch_add(p.bytes, std::memory_order_relaxed);
    Task t;
    t.locality = p.loc;
    t.high_priority = p.high;
    if (compute) {
      // Wire identity for socket localities: the same serialized buffer
      // backs both the in-process closure and the cross-process payload,
      // so transported bytes are the logical wire bytes by construction.
      t.net_kind = kNetKindEvalParcel;
      t.net_payload = p.buf;
      t.fn = [this, buf = std::move(p.buf)] { process_parcel(*buf); };
    } else {
      t.items = cost_items(p.ids);
      t.fn = [this, ids = std::move(p.ids)] {
        for (const std::uint32_t e : ids) {
          lco(dag_.edges[e].target)->set_input(dep_record());
        }
      };
    }
    ex_.send(n.locality, p.loc, p.bytes, std::move(t));
  }

  if (has_payload) lco(ni)->release_payload();
}

simd::P2PBatch DagEngine::P2PScratch::batch(std::span<const Vec3> src_pts,
                                            std::span<const double> src_q,
                                            std::span<const Vec3> tgt_pts) {
  if (!b_) {
    auto& arena = ScratchArena::local();
    // emplace: Buffers holds move-only leases (parenthesized agg init).
    b_.emplace(arena.soa(), arena.soa(), arena.soa(), arena.soa(),
               arena.soa(), arena.soa(), arena.soa(), arena.soa());
  }
  Buffers& b = *b_;
  if (!b.sources_staged) {
    b.sources_staged = true;
    const std::size_t ns = src_pts.size();
    b.sx->resize(ns);
    b.sy->resize(ns);
    b.sz->resize(ns);
    b.sq->resize(ns);
    for (std::size_t j = 0; j < ns; ++j) {
      (*b.sx)[j] = src_pts[j].x;
      (*b.sy)[j] = src_pts[j].y;
      (*b.sz)[j] = src_pts[j].z;
      (*b.sq)[j] = src_q[j];
    }
  }
  const std::size_t nt = tgt_pts.size();
  b.tx->resize(nt);
  b.ty->resize(nt);
  b.tz->resize(nt);
  for (std::size_t i = 0; i < nt; ++i) {
    (*b.tx)[i] = tgt_pts[i].x;
    (*b.ty)[i] = tgt_pts[i].y;
    (*b.tz)[i] = tgt_pts[i].z;
  }
  b.phi->assign(nt, 0.0);
  simd::P2PBatch out;
  out.tx = b.tx->data();
  out.ty = b.ty->data();
  out.tz = b.tz->data();
  out.nt = nt;
  out.sx = b.sx->data();
  out.sy = b.sy->data();
  out.sz = b.sz->data();
  out.sq = b.sq->data();
  out.ns = b.sx->size();
  out.phi = b.phi->data();
  return out;
}

void DagEngine::process_local(NodeIndex ni,
                              std::span<const std::uint32_t> edge_ids) {
  const DagNode& n = dag_.nodes[ni];
  const SourceView src = local_view(ni);
  auto msg = ScratchArena::local().bytes();
  P2PScratch p2p;
  for (const std::uint32_t e : edge_ids) {
    const DagEdge& edge = dag_.edges[e];
    {
      ScopedTrace st(ex_, static_cast<std::uint8_t>(edge.op), e);
      msg->clear();
      apply_edge(ni, edge, src, p2p, *msg);
    }
    lco(edge.target)->set_input({msg->data(), msg->size()});
  }
  if (n.kind != NodeKind::kS) lco(ni)->release_payload();
}

void DagEngine::apply_edge(NodeIndex from, const DagEdge& e,
                           const SourceView& src, P2PScratch& p2p,
                           std::vector<std::byte>& msg) {
  const DagNode& fn = dag_.nodes[from];
  const DagNode& tn = dag_.nodes[e.target];
  const TreeBox& fbox = (fn.kind == NodeKind::kS || fn.kind == NodeKind::kM ||
                         fn.kind == NodeKind::kIs)
                            ? dt_.source.box(fn.box)
                            : dt_.target.box(fn.box);
  const TreeBox& tbox = (tn.kind == NodeKind::kS || tn.kind == NodeKind::kM ||
                         tn.kind == NodeKind::kIs)
                            ? dt_.source.box(tn.box)
                            : dt_.target.box(tn.box);
  const auto tgt_pts = std::span<const Vec3>(dt_.target.sorted_points())
                           .subspan(tbox.first, tbox.count);

  auto coeffs = ScratchArena::local().coeffs();
  auto append_main = [&] {
    append_record(msg, e.op, PayloadSlot::kMain, 0, coeffs->data(),
                  coeffs->size() * sizeof(cdouble),
                  static_cast<std::uint32_t>(coeffs->size()));
  };

  switch (e.op) {
    case Operator::kS2M: {
      coeffs->clear();
      kernel_.s2m(src.pts, src.q, tbox.cube.center(), tbox.level, *coeffs);
      append_main();
      break;
    }
    case Operator::kM2M: {
      coeffs->assign(kernel_.m_count(tbox.level), cdouble{});
      kernel_.m2m_acc(view(src.main), fbox.cube.center(), tbox.cube.center(),
                      fbox.level, *coeffs);
      append_main();
      break;
    }
    case Operator::kM2L: {
      coeffs->assign(kernel_.l_count(tbox.level), cdouble{});
      kernel_.m2l_acc(view(src.main), fbox.cube.center(), tbox.cube.center(),
                      tbox.level, *coeffs);
      append_main();
      break;
    }
    case Operator::kS2L: {
      coeffs->assign(kernel_.l_count(tbox.level), cdouble{});
      kernel_.s2l_acc(src.pts, src.q, tbox.cube.center(), tbox.level,
                      *coeffs);
      append_main();
      break;
    }
    case Operator::kM2T: {
      auto phi = ScratchArena::local().reals();
      phi->assign(tbox.count, 0.0);
      for (std::uint32_t i = 0; i < tbox.count; ++i) {
        (*phi)[i] += kernel_.m2t(view(src.main), fbox.cube.center(),
                                 fbox.level, tgt_pts[i]);
      }
      append_record(msg, e.op, PayloadSlot::kPhi, 0, phi->data(),
                    phi->size() * sizeof(double),
                    static_cast<std::uint32_t>(phi->size()));
      break;
    }
    case Operator::kL2L: {
      coeffs->assign(kernel_.l_count(tbox.level), cdouble{});
      kernel_.l2l_acc(view(src.main), fbox.cube.center(), tbox.cube.center(),
                      tbox.level, *coeffs);
      append_main();
      break;
    }
    case Operator::kL2T: {
      auto phi = ScratchArena::local().reals();
      phi->assign(tbox.count, 0.0);
      for (std::uint32_t i = 0; i < tbox.count; ++i) {
        (*phi)[i] += kernel_.l2t(view(src.main), fbox.cube.center(),
                                 fbox.level, tgt_pts[i]);
      }
      append_record(msg, e.op, PayloadSlot::kPhi, 0, phi->data(),
                    phi->size() * sizeof(double),
                    static_cast<std::uint32_t>(phi->size()));
      break;
    }
    case Operator::kS2T: {
      // Leaf near field: SoA-staged batch through the dispatched SIMD
      // kernels (sources gathered once per task, targets per edge).
      const simd::P2PBatch b = p2p.batch(src.pts, src.q, tgt_pts);
      kernel_.s2t_batch(b);
      append_record(msg, e.op, PayloadSlot::kPhi, 0, b.phi,
                    b.nt * sizeof(double), static_cast<std::uint32_t>(b.nt));
      break;
    }
    case Operator::kM2I: {
      // One record per direction; still one input (one edge).
      for (std::uint8_t d = 0; d < 6; ++d) {
        coeffs->clear();
        kernel_.m2i(view(src.main), fbox.level, kAllAxes[d], *coeffs);
        append_record(msg, e.op, PayloadSlot::kOwn, d, coeffs->data(),
                      coeffs->size() * sizeof(cdouble),
                      static_cast<std::uint32_t>(coeffs->size()));
      }
      break;
    }
    case Operator::kI2I: {
      // Quadrature level: the finer of the two endpoints (merge edges rise
      // a level, shift edges descend one).
      const int qlevel = std::max(fbox.level, tbox.level);
      const auto d = static_cast<std::size_t>(e.dir);
      const CoeffVec& in = (fn.kind == NodeKind::kIs) ? view(src.own[d])
                                                      : view(src.fwd[d]);
      const Vec3 offset = tbox.cube.center() - fbox.cube.center();
      coeffs->assign(kernel_.x_count(qlevel), cdouble{});
      kernel_.i2i_acc(in, kAllAxes[d], offset, qlevel, *coeffs);
      append_record(msg, e.op,
                    e.slot == 1 ? PayloadSlot::kFwd : PayloadSlot::kOwn,
                    e.dir, coeffs->data(), coeffs->size() * sizeof(cdouble),
                    static_cast<std::uint32_t>(coeffs->size()));
      break;
    }
    case Operator::kI2L: {
      coeffs->assign(kernel_.l_count(tbox.level), cdouble{});
      for (std::size_t d = 0; d < 6; ++d) {
        const CoeffVec& in = view(src.own[d]);
        if (!in.empty()) {
          kernel_.i2l_acc(in, kAllAxes[d], fbox.level, *coeffs);
        }
      }
      append_main();
      break;
    }
  }
}

std::uint64_t DagEngine::parcel_wire_bytes(
    NodeIndex ni, std::span<const std::uint32_t> edge_ids) const {
  const DagNode& n = dag_.nodes[ni];
  std::uint64_t b =
      sizeof(ParcelHeader) + sizeof(std::uint32_t) * edge_ids.size();
  switch (n.kind) {
    case NodeKind::kS: {
      const TreeBox& box = dt_.source.box(n.box);
      b += sizeof(SectionHeader) +
           static_cast<std::uint64_t>(box.count) * kBytesPerPoint;
      break;
    }
    case NodeKind::kM:
      b += sizeof(SectionHeader) + kernel_.m_wire_bytes(n.level);
      break;
    case NodeKind::kL:
      b += sizeof(SectionHeader) + kernel_.l_wire_bytes(n.level);
      break;
    case NodeKind::kIs:
    case NodeKind::kIt: {
      // One section per direction actually used by the shipped edges.  The
      // It accumulators live at the child quadrature level.
      bool used[6] = {};
      for (const std::uint32_t e : edge_ids) used[dag_.edges[e].dir] = true;
      const int lvl = n.level + (n.kind == NodeKind::kIt ? 1 : 0);
      for (int d = 0; d < 6; ++d) {
        if (used[d]) b += sizeof(SectionHeader) + kernel_.x_wire_bytes(lvl);
      }
      break;
    }
    case NodeKind::kT:
      AMTFMM_ASSERT_MSG(false, "target nodes have no out-edges");
      break;
  }
  return b;
}

std::uint64_t DagEngine::contribution_wire_bytes(const DagEdge& e) const {
  // Header + the packed L expansion (== the DAG's per-edge byte model).
  AMTFMM_ASSERT(e.bytes ==
                kernel_.l_wire_bytes(dag_.nodes[e.target].level));
  return sizeof(ContribHeader) + e.bytes;
}

std::vector<std::byte> DagEngine::serialize_parcel(
    NodeIndex ni, std::span<const std::uint32_t> edge_ids) {
  const DagNode& n = dag_.nodes[ni];
  const SourceView src = local_view(ni);
  AMTFMM_ASSERT(edge_ids.size() <= 0xffff);

  std::vector<std::byte> buf(sizeof(ParcelHeader) +
                             sizeof(std::uint32_t) * edge_ids.size());
  std::memcpy(buf.data() + sizeof(ParcelHeader), edge_ids.data(),
              sizeof(std::uint32_t) * edge_ids.size());

  std::uint16_t num_sections = 0;
  auto open_section = [&](PayloadSlot slot, std::uint8_t dir,
                          std::size_t bytes) -> std::byte* {
    SectionHeader sh{static_cast<std::uint8_t>(slot), dir, 0,
                     static_cast<std::uint32_t>(bytes)};
    const std::size_t off = buf.size();
    buf.resize(off + sizeof(sh) + bytes);
    std::memcpy(buf.data() + off, &sh, sizeof(sh));
    ++num_sections;
    return buf.data() + off + sizeof(sh);
  };

  auto stage = ScratchArena::local().coeffs();
  switch (n.kind) {
    case NodeKind::kS: {
      std::byte* out = open_section(PayloadSlot::kPoints, 0,
                                    src.pts.size() * kBytesPerPoint);
      for (std::size_t i = 0; i < src.pts.size(); ++i) {
        const double rec[4] = {src.pts[i].x, src.pts[i].y, src.pts[i].z,
                               src.q[i]};
        std::memcpy(out + i * kBytesPerPoint, rec, kBytesPerPoint);
      }
      break;
    }
    case NodeKind::kM: {
      std::byte* out = open_section(PayloadSlot::kMain, 0,
                                    kernel_.m_wire_bytes(n.level));
      kernel_.pack_m(sized(view(src.main), kernel_.m_count(n.level), *stage),
                     n.level, out);
      break;
    }
    case NodeKind::kL: {
      std::byte* out = open_section(PayloadSlot::kMain, 0,
                                    kernel_.l_wire_bytes(n.level));
      kernel_.pack_l(sized(view(src.main), kernel_.l_count(n.level), *stage),
                     n.level, out);
      break;
    }
    case NodeKind::kIs:
    case NodeKind::kIt: {
      bool used[6] = {};
      for (const std::uint32_t e : edge_ids) used[dag_.edges[e].dir] = true;
      const bool fwd = n.kind == NodeKind::kIt;
      const int lvl = n.level + (fwd ? 1 : 0);
      const PayloadSlot slot = fwd ? PayloadSlot::kFwd : PayloadSlot::kOwn;
      for (std::uint8_t d = 0; d < 6; ++d) {
        if (!used[d]) continue;
        std::byte* out = open_section(slot, d, kernel_.x_wire_bytes(lvl));
        kernel_.pack_x(sized(fwd ? view(src.fwd[d]) : view(src.own[d]),
                             kernel_.x_count(lvl), *stage),
                       lvl, out);
      }
      break;
    }
    case NodeKind::kT:
      AMTFMM_ASSERT_MSG(false, "target nodes have no out-edges");
      break;
  }

  const ParcelHeader h{ni, static_cast<std::uint16_t>(edge_ids.size()),
                       num_sections};
  std::memcpy(buf.data(), &h, sizeof(h));
  return buf;
}

void DagEngine::process_parcel(const std::vector<std::byte>& buf) {
  ParcelHeader h;
  AMTFMM_ASSERT(buf.size() >= sizeof(h));
  std::memcpy(&h, buf.data(), sizeof(h));
  // Wire input: validate every index before use.  All ranks build the same
  // DAG, so any id out of range means a corrupt or misrouted parcel.
  AMTFMM_ASSERT_MSG(h.source < dag_.nodes.size(),
                    "eval parcel: source node out of range");
  AMTFMM_ASSERT_MSG(
      buf.size() >= sizeof(h) + sizeof(std::uint32_t) * h.num_edges,
      "eval parcel: truncated edge-id list");
  const DagNode& n = dag_.nodes[h.source];

  std::vector<std::uint32_t> ids(h.num_edges);
  std::memcpy(ids.data(), buf.data() + sizeof(h),
              sizeof(std::uint32_t) * h.num_edges);
  for (const std::uint32_t e : ids) {
    AMTFMM_ASSERT_MSG(e < dag_.edges.size(),
                      "eval parcel: edge id out of range");
    AMTFMM_ASSERT_MSG(dag_.edges[e].target < dag_.nodes.size(),
                      "eval parcel: edge target out of range");
  }
  std::size_t off = sizeof(h) + sizeof(std::uint32_t) * h.num_edges;

  // Deserialized source data (sections are unaligned: memcpy everything).
  CoeffVec main;
  std::array<CoeffVec, 6> own{};
  std::array<CoeffVec, 6> fwd{};
  std::vector<Vec3> pts;
  std::vector<double> q;
  for (std::uint16_t s = 0; s < h.num_sections; ++s) {
    SectionHeader sh;
    AMTFMM_ASSERT(off + sizeof(sh) <= buf.size());
    std::memcpy(&sh, buf.data() + off, sizeof(sh));
    off += sizeof(sh);
    AMTFMM_ASSERT(off + sh.bytes <= buf.size());
    const std::span<const std::byte> payload(buf.data() + off, sh.bytes);
    off += sh.bytes;
    switch (static_cast<PayloadSlot>(sh.slot)) {
      case PayloadSlot::kPoints: {
        const std::size_t count = sh.bytes / kBytesPerPoint;
        std::vector<double> tmp(count * 4);
        std::memcpy(tmp.data(), payload.data(), sh.bytes);
        pts.resize(count);
        q.resize(count);
        for (std::size_t i = 0; i < count; ++i) {
          pts[i] = Vec3{tmp[4 * i], tmp[4 * i + 1], tmp[4 * i + 2]};
          q[i] = tmp[4 * i + 3];
        }
        break;
      }
      case PayloadSlot::kMain:
        if (n.kind == NodeKind::kM) {
          kernel_.unpack_m(payload, n.level, main);
        } else {
          kernel_.unpack_l(payload, n.level, main);
        }
        break;
      case PayloadSlot::kOwn:
        AMTFMM_ASSERT(sh.dir < 6);
        kernel_.unpack_x(payload, n.level, own[sh.dir]);
        break;
      case PayloadSlot::kFwd:
        AMTFMM_ASSERT(sh.dir < 6);
        kernel_.unpack_x(payload, n.level + 1, fwd[sh.dir]);
        break;
      case PayloadSlot::kPhi:
      case PayloadSlot::kNone:
        AMTFMM_ASSERT_MSG(false, "unexpected parcel section slot");
        break;
    }
  }
  AMTFMM_ASSERT_MSG(off == buf.size(), "malformed eval parcel");

  SourceView src;
  src.main = &main;
  for (std::size_t d = 0; d < 6; ++d) {
    src.own[d] = &own[d];
    src.fwd[d] = &fwd[d];
  }
  src.pts = pts;
  src.q = q;

  auto msg = ScratchArena::local().bytes();
  P2PScratch p2p;
  for (const std::uint32_t e : ids) {
    const DagEdge& edge = dag_.edges[e];
    {
      ScopedTrace st(ex_, static_cast<std::uint8_t>(edge.op), e);
      msg->clear();
      apply_edge(h.source, edge, src, p2p, *msg);
    }
    lco(edge.target)->set_input({msg->data(), msg->size()});
  }
}

void DagEngine::send_contribution(NodeIndex ni, std::uint32_t edge_id) {
  const DagEdge& e = dag_.edges[edge_id];
  const DagNode& n = dag_.nodes[ni];
  const DagNode& tn = dag_.nodes[e.target];
  const TreeBox& tbox = dt_.target.box(tn.box);
  const SourceView src = local_view(ni);

  auto out = ScratchArena::local().coeffs();
  out->assign(kernel_.l_count(tbox.level), cdouble{});
  {
    ScopedTrace st(ex_, static_cast<std::uint8_t>(e.op), edge_id);
    if (e.op == Operator::kS2L) {
      kernel_.s2l_acc(src.pts, src.q, tbox.cube.center(), tbox.level, *out);
    } else {
      AMTFMM_ASSERT(e.op == Operator::kI2L);
      const TreeBox& fbox = dt_.target.box(n.box);  // It lives in target tree
      for (std::size_t d = 0; d < 6; ++d) {
        const CoeffVec& in = view(src.own[d]);
        if (!in.empty()) {
          kernel_.i2l_acc(in, kAllAxes[d], fbox.level, *out);
        }
      }
    }
  }

  const std::size_t lw = kernel_.l_wire_bytes(tbox.level);
  auto buf =
      std::make_shared<std::vector<std::byte>>(sizeof(ContribHeader) + lw);
  const ContribHeader h{e.target, static_cast<std::uint8_t>(e.op), 0, 0};
  std::memcpy(buf->data(), &h, sizeof(h));
  kernel_.pack_l(*out, tbox.level, buf->data() + sizeof(h));
  AMTFMM_ASSERT(buf->size() == contribution_wire_bytes(e));
  // relaxed-ok: byte statistic, read only after drain().
  wire_bytes_.fetch_add(buf->size(), std::memory_order_relaxed);

  Task t;
  t.locality = tn.locality;
  const std::size_t bytes = buf->size();
  t.net_kind = kNetKindContribution;
  t.net_payload = buf;
  t.fn = [this, buf] { process_contribution(*buf); };
  ex_.send(n.locality, tn.locality, bytes, std::move(t));

  if (n.kind != NodeKind::kS) lco(ni)->release_payload();
}

void DagEngine::process_contribution(const std::vector<std::byte>& buf) {
  ContribHeader h;
  AMTFMM_ASSERT(buf.size() > sizeof(h));
  std::memcpy(&h, buf.data(), sizeof(h));
  AMTFMM_ASSERT_MSG(h.target < dag_.nodes.size(),
                    "contribution parcel: target node out of range");
  const DagNode& tn = dag_.nodes[h.target];

  auto full = ScratchArena::local().coeffs();
  kernel_.unpack_l({buf.data() + sizeof(h), buf.size() - sizeof(h)}, tn.level,
                   *full);

  auto msg = ScratchArena::local().bytes();
  msg->clear();
  append_record(*msg, static_cast<Operator>(h.op), PayloadSlot::kMain, 0,
                full->data(), full->size() * sizeof(cdouble),
                static_cast<std::uint32_t>(full->size()));
  lco(h.target)->set_input({msg->data(), msg->size()});
}

void DagEngine::finalize_target(NodeIndex ni) {
  if (opt_.mode != EngineMode::kCompute) return;
  const DagNode& n = dag_.nodes[ni];
  const TreeBox& box = dt_.target.box(n.box);
  ExpansionPayload& p = lco(ni)->payload();
  if (p.phi.empty()) return;  // no contributions: stays zero
  AMTFMM_ASSERT(p.phi.size() == box.count);
  for (std::uint32_t i = 0; i < box.count; ++i) {
    potentials_[box.first + i] = p.phi[i];
  }
  p.release();
}

}  // namespace amtfmm
