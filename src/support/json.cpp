#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace amtfmm {

void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": pair, no comma
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
}

void JsonWriter::open(char c) {
  comma();
  out_ += c;
  has_elem_.push_back(false);
}

void JsonWriter::close(char c) {
  has_elem_.pop_back();
  out_ += c;
}

void JsonWriter::key(const std::string& k) {
  comma();
  out_ += '"';
  json_escape(out_, k);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma();
  out_ += '"';
  json_escape(out_, v);
  out_ += '"';
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  comma();
  out_ += "null";
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(out_.data(), 1, out_.size(), f);
  const bool ok = n == out_.size() && std::fclose(f) == 0;
  if (n != out_.size()) std::fclose(f);
  return ok;
}

const JsonValue* JsonValue::find(const std::string& k) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(k);
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::num_or(const std::string& k, double def) const {
  const JsonValue* v = find(k);
  return (v != nullptr && v->is_number()) ? v->number : def;
}

std::string JsonValue::str_or(const std::string& k,
                              const std::string& def) const {
  const JsonValue* v = find(k);
  return (v != nullptr && v->is_string()) ? v->string : def;
}

namespace {

/// Recursive-descent parser state.  Depth-limited so adversarial input
/// cannot blow the stack.
struct Parser {
  const char* p;
  const char* end;
  std::string* error;
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    *error = what + " at offset " + std::to_string(pos());
    return false;
  }
  std::size_t pos() const { return static_cast<std::size_t>(p - start); }
  const char* start = nullptr;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool parse_value(JsonValue& out) {
    if (++depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    bool ok = false;
    switch (*p) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"':
        out.kind = JsonValue::Kind::kString;
        ok = parse_string(out.string);
        break;
      case 't':
      case 'f':
        ok = parse_literal(out);
        break;
      case 'n':
        ok = expect("null");
        out.kind = JsonValue::Kind::kNull;
        break;
      default:
        ok = parse_number(out);
    }
    --depth;
    return ok;
  }

  bool expect(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end - p) < n || std::strncmp(p, lit, n) != 0) {
      return fail(std::string("expected '") + lit + "'");
    }
    p += n;
    return true;
  }

  bool parse_literal(JsonValue& out) {
    out.kind = JsonValue::Kind::kBool;
    if (*p == 't') {
      out.boolean = true;
      return expect("true");
    }
    out.boolean = false;
    return expect("false");
  }

  bool parse_number(JsonValue& out) {
    char* num_end = nullptr;
    out.number = std::strtod(p, &num_end);
    if (num_end == p) return fail("malformed value");
    out.kind = JsonValue::Kind::kNumber;
    p = num_end;
    return true;
  }

  bool parse_string(std::string& out) {
    ++p;  // opening quote
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("unterminated escape");
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end - p < 5) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p[i];
              code <<= 4;
              if (c >= '0' && c <= '9') {
                code |= static_cast<unsigned>(c - '0');
              } else if (c >= 'a' && c <= 'f') {
                code |= static_cast<unsigned>(c - 'a' + 10);
              } else if (c >= 'A' && c <= 'F') {
                code |= static_cast<unsigned>(c - 'A' + 10);
              } else {
                return fail("malformed \\u escape");
              }
            }
            p += 4;
            // UTF-8 encode (surrogate pairs not needed by our artifacts;
            // lone surrogates encode as-is).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++p;  // [
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    for (;;) {
      out.array.emplace_back();
      if (!parse_value(out.array.back())) return false;
      skip_ws();
      if (p >= end) return fail("unterminated array");
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == ']') {
        ++p;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++p;  // {
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    for (;;) {
      skip_ws();
      if (p >= end || *p != '"') return fail("expected object key");
      std::string k;
      if (!parse_string(k)) return false;
      skip_ws();
      if (p >= end || *p != ':') return fail("expected ':'");
      ++p;
      if (!parse_value(out.object[std::move(k)])) return false;
      skip_ws();
      if (p >= end) return fail("unterminated object");
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == '}') {
        ++p;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

}  // namespace

bool json_parse(const std::string& text, JsonValue& out, std::string& error) {
  Parser ps{text.data(), text.data() + text.size(), &error};
  ps.start = text.data();
  out = JsonValue{};
  if (!ps.parse_value(out)) return false;
  ps.skip_ws();
  if (ps.p != ps.end) return ps.fail("trailing garbage");
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace amtfmm
