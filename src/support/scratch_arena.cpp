#include "support/scratch_arena.hpp"

#include <mutex>

namespace amtfmm {
namespace {

// Registry of live arenas plus the folded counters of destroyed ones, so
// total() keeps counting across thread exits.
// thread-ok: process-wide registry guarding thread_local lifetimes; it
// cannot route through an Executor (arenas outlive any one executor).
std::mutex reg_mu;
std::vector<const ScratchArena*>& registry() {
  static std::vector<const ScratchArena*> r;
  return r;
}
ScratchArena::Stats& retired() {
  static ScratchArena::Stats s;
  return s;
}

}  // namespace

ScratchArena::ScratchArena() {
  std::lock_guard lk(reg_mu);
  registry().push_back(this);
}

ScratchArena::~ScratchArena() {
  std::lock_guard lk(reg_mu);
  auto& reg = registry();
  std::erase(reg, this);
  const Stats s = stats();
  retired().hits += s.hits;
  retired().misses += s.misses;
}

ScratchArena& ScratchArena::local() {
  thread_local ScratchArena arena;
  return arena;
}

ScratchArena::Stats ScratchArena::total() {
  std::lock_guard lk(reg_mu);
  Stats sum = retired();
  for (const ScratchArena* a : registry()) {
    const Stats s = a->stats();
    sum.hits += s.hits;
    sum.misses += s.misses;
  }
  return sum;
}

}  // namespace amtfmm
