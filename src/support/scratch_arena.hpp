#pragma once

#include <atomic>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/aligned.hpp"

namespace amtfmm {

class ScratchArena;

/// RAII lease of a pooled scratch vector.  The buffer's *capacity* is
/// retained across leases, so a steady-state operator that leases a buffer
/// and assign()s it to the same size every call performs no heap
/// allocation.  Contents on acquisition are unspecified; callers must
/// assign/resize before reading.
///
/// The allocator parameter mirrors the pool's: the soa() pool leases
/// 64-byte-aligned vectors (AlignedVec), everything else defaults to the
/// standard allocator.
template <typename T, typename Alloc = std::allocator<T>>
class ScratchLease {
 public:
  using Vec = std::vector<T, Alloc>;

  ScratchLease(ScratchArena& arena, Vec* v) : arena_(&arena), v_(v) {}
  ScratchLease(ScratchLease&& o) noexcept : arena_(o.arena_), v_(o.v_) {
    o.v_ = nullptr;
  }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;
  ScratchLease& operator=(ScratchLease&&) = delete;
  ~ScratchLease();

  Vec& operator*() const { return *v_; }
  Vec* operator->() const { return v_; }

 private:
  ScratchArena* arena_;
  Vec* v_;
};

/// Per-worker pool of reusable scratch buffers for the expansion operators.
///
/// Every operator in the hot path (S2M, M2M, M2L, L2L, S2L, M2I, I2L and
/// the solid-harmonic internals) needs a handful of temporaries whose sizes
/// repeat exactly from call to call.  Allocating them per invocation puts
/// the allocator on the DAG's dominant edge class; instead each thread owns
/// an arena and operators borrow buffers via RAII leases.  After warm-up
/// every lease is a pool hit and the operators run allocation free — the
/// hit/miss counters make that verifiable (tests/support).
///
/// Arenas are strictly thread local: local() returns the calling thread's
/// instance and leases must be released on the owning thread (guaranteed by
/// the RAII scope).  Counters are relaxed atomics so stats() / total() may
/// be read from any thread.
class ScratchArena {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  ScratchArena();
  ~ScratchArena();
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The calling thread's arena.
  static ScratchArena& local();

  /// Leases a complex scratch buffer (CoeffVec-compatible).
  ScratchLease<std::complex<double>> coeffs() {
    return {*this, complex_.acquire(*this)};
  }
  /// Leases a real scratch buffer.
  ScratchLease<double> reals() { return {*this, real_.acquire(*this)}; }
  /// Leases a raw byte buffer (wire-format staging).
  ScratchLease<std::byte> bytes() { return {*this, byte_.acquire(*this)}; }
  /// Leases a 64-byte-aligned real buffer for SoA kernel batches
  /// (vector-load safe at any ISA width; see support/aligned.hpp).
  ScratchLease<double, AlignedAlloc<double, kSoaAlignment>> soa() {
    return {*this, soa_.acquire(*this)};
  }

  /// This arena's cumulative lease counters.
  Stats stats() const {
    // relaxed-ok: monotonic statistics; a torn hits/misses pair is fine.
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

  /// Counters aggregated over every arena ever created in the process
  /// (live threads plus exited ones).
  static Stats total();

  // Lease return path (used by ScratchLease only).
  void release(std::vector<std::complex<double>>* v) { complex_.put_back(v); }
  void release(std::vector<double>* v) { real_.put_back(v); }
  void release(std::vector<std::byte>* v) { byte_.put_back(v); }
  void release(AlignedVec* v) { soa_.put_back(v); }

 private:
  template <typename T, typename Alloc = std::allocator<T>>
  struct Pool {
    using Vec = std::vector<T, Alloc>;

    // Free buffers; leased buffers are owned by their lease until returned.
    std::vector<std::unique_ptr<Vec>> free;

    Vec* acquire(ScratchArena& a) {
      if (!free.empty()) {
        Vec* v = free.back().release();
        free.pop_back();
        // relaxed-ok: statistic only; the arena itself is thread-local.
        a.hits_.fetch_add(1, std::memory_order_relaxed);
        return v;
      }
      // relaxed-ok: statistic only; the arena itself is thread-local.
      a.misses_.fetch_add(1, std::memory_order_relaxed);
      return new Vec();
    }
    void put_back(Vec* v) { free.emplace_back(v); }
  };

  Pool<std::complex<double>> complex_;
  Pool<double> real_;
  Pool<std::byte> byte_;
  Pool<double, AlignedAlloc<double, kSoaAlignment>> soa_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

template <typename T, typename Alloc>
ScratchLease<T, Alloc>::~ScratchLease() {
  if (v_ != nullptr) arena_->release(v_);
}

/// Lease type returned by ScratchArena::soa() (64-byte-aligned doubles).
using SoaLease = ScratchLease<double, AlignedAlloc<double, kSoaAlignment>>;

}  // namespace amtfmm
