#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace amtfmm {

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

void Cli::add_flag(const std::string& name, std::int64_t def,
                   const std::string& help) {
  Entry e;
  e.kind = Kind::kInt;
  e.help = help;
  e.i = def;
  entries_[name] = std::move(e);
}

void Cli::add_flag(const std::string& name, double def,
                   const std::string& help) {
  Entry e;
  e.kind = Kind::kDouble;
  e.help = help;
  e.d = def;
  entries_[name] = std::move(e);
}

void Cli::add_flag(const std::string& name, const std::string& def,
                   const std::string& help) {
  Entry e;
  e.kind = Kind::kString;
  e.help = help;
  e.s = def;
  entries_[name] = std::move(e);
}

void Cli::add_flag(const std::string& name, bool def, const std::string& help) {
  Entry e;
  e.kind = Kind::kBool;
  e.help = help;
  e.b = def;
  entries_[name] = std::move(e);
}

void Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      std::exit(0);
    }
    if (arg.rfind("--benchmark_", 0) == 0) {
      passthrough_.push_back(arg);
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw config_error("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) throw config_error("unknown flag: --" + name);
    Entry& e = it->second;
    if (!have_value) {
      if (e.kind == Kind::kBool) {
        e.b = true;
        continue;
      }
      if (i + 1 >= argc) throw config_error("flag --" + name + " needs a value");
      value = argv[++i];
    }
    try {
      switch (e.kind) {
        case Kind::kInt:
          e.i = std::stoll(value);
          break;
        case Kind::kDouble:
          e.d = std::stod(value);
          break;
        case Kind::kString:
          e.s = value;
          break;
        case Kind::kBool:
          e.b = (value == "1" || value == "true" || value == "yes");
          break;
      }
    } catch (const std::exception&) {
      throw config_error("bad value for --" + name + ": " + value);
    }
  }
}

const Cli::Entry& Cli::lookup(const std::string& name, Kind kind) const {
  auto it = entries_.find(name);
  AMTFMM_ASSERT_MSG(it != entries_.end(), name.c_str());
  AMTFMM_ASSERT(it->second.kind == kind);
  return it->second;
}

std::int64_t Cli::i64(const std::string& name) const {
  return lookup(name, Kind::kInt).i;
}
double Cli::f64(const std::string& name) const {
  return lookup(name, Kind::kDouble).d;
}
const std::string& Cli::str(const std::string& name) const {
  return lookup(name, Kind::kString).s;
}
bool Cli::flag(const std::string& name) const {
  return lookup(name, Kind::kBool).b;
}

void Cli::print_help() const {
  std::printf("%s\n\nFlags:\n", description_.c_str());
  for (const auto& [name, e] : entries_) {
    std::string def;
    switch (e.kind) {
      case Kind::kInt: def = std::to_string(e.i); break;
      case Kind::kDouble: def = std::to_string(e.d); break;
      case Kind::kString: def = e.s; break;
      case Kind::kBool: def = e.b ? "true" : "false"; break;
    }
    std::printf("  --%-24s %s (default: %s)\n", name.c_str(), e.help.c_str(),
                def.c_str());
  }
}

}  // namespace amtfmm
