#pragma once

// Clang Thread Safety Analysis macros (DESIGN.md §8).  Under clang these
// expand to the capability attributes that drive -Wthread-safety; under
// every other compiler they expand to nothing, so gcc builds see plain
// classes with zero overhead and zero new diagnostics.
//
// Conventions used across the runtime:
//   - SyncMutex is the only CAPABILITY type; raw std::mutex is banned in
//     runtime code (libstdc++'s mutex carries no annotations, so locking
//     through it is invisible to the analysis).
//   - Every member written under a mutex carries GUARDED_BY(mu_).  Atomics
//     accessed lock-free on at least one path are NOT annotated — TSA's
//     guarded_by demands the lock on every access, which would outlaw the
//     documented lock-free reads (GAS resolve, stat counters).
//   - *_locked() helpers take REQUIRES(mu) and never lock themselves.
//   - Functions that must not be entered with a lock held (anything that
//     can block on the network or on another capability) take EXCLUDES.
//   - NO_THREAD_SAFETY_ANALYSIS appears only inside the sync primitives
//     themselves (condition-variable wait bodies, the flight-recorder
//     signal path) — never in ordinary runtime code.

#if defined(__clang__)
#define AMTFMM_TSA_ATTR(x) __attribute__((x))
#else
#define AMTFMM_TSA_ATTR(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define CAPABILITY(x) AMTFMM_TSA_ATTR(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY AMTFMM_TSA_ATTR(scoped_lockable)

/// Data member readable/writable only while holding the named capability.
#define GUARDED_BY(x) AMTFMM_TSA_ATTR(guarded_by(x))

/// Pointer member whose pointee is protected by the named capability.
#define PT_GUARDED_BY(x) AMTFMM_TSA_ATTR(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define ACQUIRED_BEFORE(...) AMTFMM_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) AMTFMM_TSA_ATTR(acquired_after(__VA_ARGS__))

/// Caller must already hold the capability (it is not acquired here).
#define REQUIRES(...) AMTFMM_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  AMTFMM_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ACQUIRE(...) AMTFMM_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  AMTFMM_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))

/// Function releases a held capability.
#define RELEASE(...) AMTFMM_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  AMTFMM_TSA_ATTR(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) AMTFMM_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  AMTFMM_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (guards against self-deadlock and
/// against holding a lock across a blocking call).
#define EXCLUDES(...) AMTFMM_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Runtime-checked assertion that the capability is held (no acquire).
#define ASSERT_CAPABILITY(x) AMTFMM_TSA_ATTR(assert_capability(x))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) AMTFMM_TSA_ATTR(lock_returned(x))

/// Escape hatch: function body is not analyzed.  Reserved for the sync
/// primitives (see file comment); every use must say why.
#define NO_THREAD_SAFETY_ANALYSIS AMTFMM_TSA_ATTR(no_thread_safety_analysis)
