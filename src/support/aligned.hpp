#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace amtfmm {

/// Alignment guarantee for SoA batch buffers: one full cache line, which
/// also covers the widest vector unit we dispatch to (64-byte AVX-512
/// loads).  ScratchArena::soa() buffers are allocated with this.
inline constexpr std::size_t kSoaAlignment = 64;

/// Minimal aligned allocator for std::vector.  All instances are
/// interchangeable (stateless), so vectors move/swap freely.
template <typename T, std::size_t Align>
struct AlignedAlloc {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two no smaller than alignof(T)");

  using value_type = T;

  AlignedAlloc() = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };

  friend bool operator==(const AlignedAlloc&, const AlignedAlloc&) {
    return true;
  }
};

/// 64-byte-aligned double vector — the element type of SoA kernel batches.
using AlignedVec = std::vector<double, AlignedAlloc<double, kSoaAlignment>>;

}  // namespace amtfmm
