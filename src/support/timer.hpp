#pragma once

#include <chrono>

namespace amtfmm {

/// Monotonic wall-clock stopwatch used for real-mode measurements and for
/// calibrating the sim-mode cost model.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed microseconds.
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace amtfmm
