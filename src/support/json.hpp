#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace amtfmm {

/// Streaming JSON writer with correct string escaping and automatic comma
/// placement.  Shared by the bench `--json` outputs, the Chrome trace
/// exporter, and the trace_report analyzer, so every machine-readable
/// artifact of the repo is produced by one implementation.
///
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("fig4");
///   w.key("times"); w.begin_array(); w.value(1.5); w.end_array();
///   w.end_object();
///   w.write_file(path);  // or w.str()
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Object key; the next value (or container) belongs to it.
  void key(const std::string& k);

  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(bool v);
  void null();

  /// Convenience: key + scalar value.
  template <typename T>
  void kv(const std::string& k, const T& v) {
    key(k);
    value(v);
  }

  const std::string& str() const { return out_; }
  /// Writes the buffer to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  void comma();
  void open(char c);
  void close(char c);

  std::string out_;
  /// One entry per open container: true once the first element was written.
  std::vector<bool> has_elem_;
  bool pending_key_ = false;
};

/// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
void json_escape(std::string& out, const std::string& s);

/// Parsed JSON value: a small recursive-descent DOM used by the trace
/// analyzer and the export round-trip tests.  Numbers are stored as double
/// (the exporter never emits integers outside the 2^53 exact range).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& k) const;
  /// Member as number/string with a default when absent or mistyped.
  double num_or(const std::string& k, double def) const;
  std::string str_or(const std::string& k, const std::string& def) const;
};

/// Parses `text` into `out`.  Returns false (and fills `error`) on malformed
/// input; accepts any JSON value at the top level.
bool json_parse(const std::string& text, JsonValue& out, std::string& error);

/// Reads a whole file; returns false when unreadable.
bool read_file(const std::string& path, std::string& out);

}  // namespace amtfmm
