#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace amtfmm {

/// Minimal command-line flag parser shared by the bench and example binaries.
///
/// Flags are declared with a default and a help string, then parsed from
/// `--name=value` or `--name value` arguments.  Unknown flags are an error
/// (so typos in experiment scripts fail loudly), except that flags consumed
/// by google-benchmark (`--benchmark_*`) are passed through untouched.
class Cli {
 public:
  explicit Cli(std::string program_description);

  /// Declare flags before calling parse().
  void add_flag(const std::string& name, std::int64_t def, const std::string& help);
  void add_flag(const std::string& name, double def, const std::string& help);
  void add_flag(const std::string& name, const std::string& def, const std::string& help);
  void add_flag(const std::string& name, bool def, const std::string& help);

  /// Parses argv.  Prints help and exits on --help.  Throws config_error on
  /// unknown flags or malformed values.
  void parse(int argc, char** argv);

  std::int64_t i64(const std::string& name) const;
  double f64(const std::string& name) const;
  const std::string& str(const std::string& name) const;
  bool flag(const std::string& name) const;

  /// argv entries not consumed (e.g. --benchmark_* flags).
  const std::vector<std::string>& passthrough() const { return passthrough_; }

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Entry {
    Kind kind;
    std::string help;
    std::int64_t i = 0;
    double d = 0.0;
    std::string s;
    bool b = false;
  };
  const Entry& lookup(const std::string& name, Kind kind) const;
  void print_help() const;

  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> passthrough_;
};

}  // namespace amtfmm
