#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace amtfmm {

/// Thrown for user-visible configuration errors (bad CLI flags, invalid
/// evaluator parameters).  Internal invariant violations use AMTFMM_ASSERT,
/// which aborts, because continuing after a broken invariant in an
/// asynchronous runtime produces undebuggable downstream corruption (the
/// paper's section VI makes exactly this observation about HPX-5).
class config_error : public std::runtime_error {
 public:
  explicit config_error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "amtfmm: assertion `%s` failed at %s:%d%s%s\n", expr,
               file, line, msg ? ": " : "", msg ? msg : "");
  std::abort();
}

}  // namespace amtfmm

/// Always-on invariant check (kept in release builds: the checks guard
/// structural DAG invariants whose cost is negligible next to the math).
#define AMTFMM_ASSERT(expr)                                              \
  ((expr) ? (void)0                                                     \
          : ::amtfmm::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define AMTFMM_ASSERT_MSG(expr, msg)                                  \
  ((expr) ? (void)0 : ::amtfmm::assert_fail(#expr, __FILE__, __LINE__, msg))
