#pragma once

#include <cmath>

namespace amtfmm {

/// Plain 3-vector of doubles.  Value type; all operations are constexpr-ish
/// and allocation-free, suitable for tight inner loops.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  constexpr bool operator==(const Vec3&) const = default;
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// Spherical coordinates (r, cos(theta), phi) of a vector; the convention
/// used throughout the expansion math.
struct Spherical {
  double r;
  double cos_theta;
  double phi;
};

inline Spherical to_spherical(const Vec3& v) {
  const double r = v.norm();
  const double ct = (r > 0.0) ? v.z / r : 1.0;
  const double phi = std::atan2(v.y, v.x);
  return {r, ct, phi};
}

}  // namespace amtfmm
