#pragma once

#include <cstdint>

#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace amtfmm {

/// 63-bit Morton (Z-order) key: 21 bits per dimension.  Used for the coarse
/// pre-sort that assigns points to localities before per-locality adaptive
/// partitioning (section IV of the paper).
inline std::uint64_t morton_expand(std::uint32_t v) {
  std::uint64_t x = v & 0x1fffff;  // 21 bits
  x = (x | x << 32) & 0x1f00000000ffffull;
  x = (x | x << 16) & 0x1f0000ff0000ffull;
  x = (x | x << 8) & 0x100f00f00f00f00full;
  x = (x | x << 4) & 0x10c30c30c30c30c3ull;
  x = (x | x << 2) & 0x1249249249249249ull;
  return x;
}

/// Morton key of a point within a domain cube.
inline std::uint64_t morton_key(const Vec3& p, const Cube& domain) {
  const double inv = 1.0 / domain.size;
  auto coord = [&](double v, double lo) {
    double t = (v - lo) * inv;
    if (t < 0.0) t = 0.0;
    if (t > 1.0) t = 1.0;
    return static_cast<std::uint32_t>(t * 2097151.0);  // 2^21 - 1
  };
  return morton_expand(coord(p.x, domain.low.x)) |
         (morton_expand(coord(p.y, domain.low.y)) << 1) |
         (morton_expand(coord(p.z, domain.low.z)) << 2);
}

}  // namespace amtfmm
