#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/vec3.hpp"
#include "support/rng.hpp"

namespace amtfmm {

/// Point-ensemble generators for the paper's two test distributions plus a
/// Plummer model used by the gravity example.
///
/// Paper section V.A: "in the first, points were distributed uniformly in a
/// cube; in the second, points were distributed uniformly on the surface of
/// a sphere."  Cube data yields uniform dual trees (short critical path);
/// sphere data yields highly adaptive trees (long critical path).
enum class Distribution {
  kCube,    ///< uniform in the unit cube
  kSphere,  ///< uniform on the surface of a sphere
  kPlummer  ///< Plummer model (centrally concentrated; gravity example)
};

/// Parses "cube" / "sphere" / "plummer".  Throws config_error otherwise.
Distribution parse_distribution(const std::string& name);

const char* to_string(Distribution d);

/// Generates n points from the given distribution.  `offset` shifts the
/// whole ensemble, which is how the benches make source and target ensembles
/// distinct-but-overlapping as in the paper's runs.
std::vector<Vec3> generate_points(Distribution d, std::size_t n, Rng& rng,
                                  const Vec3& offset = {});

/// Generates n charges/masses uniform in [lo, hi).
std::vector<double> generate_charges(std::size_t n, Rng& rng, double lo = 0.0,
                                     double hi = 1.0);

}  // namespace amtfmm
