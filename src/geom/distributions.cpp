#include "geom/distributions.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace amtfmm {

Distribution parse_distribution(const std::string& name) {
  if (name == "cube") return Distribution::kCube;
  if (name == "sphere") return Distribution::kSphere;
  if (name == "plummer") return Distribution::kPlummer;
  throw config_error("unknown distribution: " + name +
                     " (expected cube|sphere|plummer)");
}

const char* to_string(Distribution d) {
  switch (d) {
    case Distribution::kCube: return "cube";
    case Distribution::kSphere: return "sphere";
    case Distribution::kPlummer: return "plummer";
  }
  return "?";
}

std::vector<Vec3> generate_points(Distribution d, std::size_t n, Rng& rng,
                                  const Vec3& offset) {
  std::vector<Vec3> pts;
  pts.reserve(n);
  switch (d) {
    case Distribution::kCube:
      for (std::size_t i = 0; i < n; ++i) {
        pts.push_back(Vec3{rng.uniform(), rng.uniform(), rng.uniform()} +
                      offset);
      }
      break;
    case Distribution::kSphere:
      for (std::size_t i = 0; i < n; ++i) {
        // Uniform on the sphere surface via uniform cos(theta) and phi.
        const double ct = rng.uniform(-1.0, 1.0);
        const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
        const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
        pts.push_back(Vec3{0.5 * st * std::cos(phi) + 0.5,
                           0.5 * st * std::sin(phi) + 0.5, 0.5 * ct + 0.5} +
                      offset);
      }
      break;
    case Distribution::kPlummer:
      for (std::size_t i = 0; i < n; ++i) {
        // Plummer sphere with scale radius a = 0.1, truncated at 10a so the
        // domain stays bounded.
        const double a = 0.1;
        double r;
        do {
          const double m = rng.uniform(1e-8, 1.0 - 1e-8);
          r = a / std::sqrt(std::pow(m, -2.0 / 3.0) - 1.0);
        } while (r > 10.0 * a);
        const double ct = rng.uniform(-1.0, 1.0);
        const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
        const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
        pts.push_back(Vec3{r * st * std::cos(phi) + 0.5,
                           r * st * std::sin(phi) + 0.5, r * ct + 0.5} +
                      offset);
      }
      break;
  }
  return pts;
}

std::vector<double> generate_charges(std::size_t n, Rng& rng, double lo,
                                     double hi) {
  std::vector<double> q(n);
  for (auto& v : q) v = rng.uniform(lo, hi);
  return q;
}

}  // namespace amtfmm
