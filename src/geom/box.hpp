#pragma once

#include <algorithm>
#include <span>

#include "geom/vec3.hpp"

namespace amtfmm {

/// Axis-aligned cube, described by its low corner and edge length.  Tree
/// boxes are always cubes (children divide the parent equally along each
/// dimension), matching the paper's partitioning.
struct Cube {
  Vec3 low;
  double size = 0.0;

  Vec3 center() const { return low + Vec3{size, size, size} * 0.5; }
  Vec3 high() const { return low + Vec3{size, size, size}; }

  /// Radius of the circumscribing sphere (half the diagonal).
  double radius() const { return 0.5 * size * std::sqrt(3.0); }

  /// Child cube for octant index in [0, 8): bit 0 = x-high, bit 1 = y-high,
  /// bit 2 = z-high.
  Cube child(int octant) const {
    const double h = 0.5 * size;
    return Cube{{low.x + ((octant & 1) ? h : 0.0),
                 low.y + ((octant & 2) ? h : 0.0),
                 low.z + ((octant & 4) ? h : 0.0)},
                h};
  }

  /// Octant of a point relative to the cube center.
  int octant_of(const Vec3& p) const {
    const Vec3 c = center();
    return (p.x >= c.x ? 1 : 0) | (p.y >= c.y ? 2 : 0) | (p.z >= c.z ? 4 : 0);
  }

  bool contains(const Vec3& p) const {
    const Vec3 h = high();
    return p.x >= low.x && p.x <= h.x && p.y >= low.y && p.y <= h.y &&
           p.z >= low.z && p.z <= h.z;
  }
};

/// Smallest cube containing every point of both spans: the computational
/// domain of a dual-tree evaluation.  Expanded by a small relative margin so
/// points on the boundary fall strictly inside.
inline Cube bounding_cube(std::span<const Vec3> a, std::span<const Vec3> b) {
  Vec3 lo{1e300, 1e300, 1e300};
  Vec3 hi{-1e300, -1e300, -1e300};
  auto absorb = [&](const Vec3& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  };
  for (const auto& p : a) absorb(p);
  for (const auto& p : b) absorb(p);
  const double size =
      std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 1e-12});
  const double margin = 1e-6 * size;
  const Vec3 mid = (lo + hi) * 0.5;
  const double s = size + 2.0 * margin;
  return Cube{mid - Vec3{s, s, s} * 0.5, s};
}

}  // namespace amtfmm
