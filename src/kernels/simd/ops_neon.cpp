// NEON (aarch64, 2-wide double) variants of the batch kernels.  Same
// contract as the x86 variants: coincident pairs masked to exactly zero,
// 1/sqrt via the hardware estimate (vrsqrte, 8-bit) refined by four
// vrsqrts Newton steps to full double precision.  NEON has no masked
// loads, so the odd source tail falls back to one scalar iteration.

#if defined(__aarch64__)
#include <arm_neon.h>

#include <cmath>
#endif

#include "kernels/simd/ops.hpp"

namespace amtfmm::simd {

#if defined(__aarch64__)

namespace {

/// 1/sqrt(r2): 8-bit estimate plus four Newton steps (8 -> 16 -> 32 -> 64
/// bits, past the 53-bit mantissa).  vrsqrte(0) is +inf; callers mask.
/// Operates in the double domain throughout, so no range guard is needed.
inline float64x2_t rsqrt_nr(float64x2_t r2) {
  float64x2_t y = vrsqrteq_f64(r2);
  for (int it = 0; it < 4; ++it) {
    // vrsqrts(a, b) = (3 - a*b) / 2; Newton: y *= (3 - r2*y*y)/2.
    y = vmulq_f64(y, vrsqrtsq_f64(vmulq_f64(r2, y), y));
  }
  return y;
}

/// e^x — the same Cephes rational as the x86 variants.
inline float64x2_t exp_pd(float64x2_t x) {
  const float64x2_t hi = vdupq_n_f64(709.437);
  const float64x2_t lo = vdupq_n_f64(-709.436139303);
  const float64x2_t log2e = vdupq_n_f64(1.4426950408889634073599);
  const float64x2_t c1 = vdupq_n_f64(0.693145751953125);
  const float64x2_t c2 = vdupq_n_f64(1.42860682030941723212e-6);
  const float64x2_t p0 = vdupq_n_f64(1.26177193074810590878e-4);
  const float64x2_t p1 = vdupq_n_f64(3.02994407707441961300e-2);
  const float64x2_t p2 = vdupq_n_f64(9.99999999999999999910e-1);
  const float64x2_t q0 = vdupq_n_f64(3.00198505138664455042e-6);
  const float64x2_t q1 = vdupq_n_f64(2.52448340349684104192e-3);
  const float64x2_t q2 = vdupq_n_f64(2.27265548208155028766e-1);
  const float64x2_t q3 = vdupq_n_f64(2.00000000000000000005e0);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t half = vdupq_n_f64(0.5);

  x = vminq_f64(vmaxq_f64(x, lo), hi);
  const float64x2_t fx = vrndmq_f64(vfmaq_f64(half, x, log2e));  // floor
  x = vfmsq_f64(x, fx, c1);
  x = vfmsq_f64(x, fx, c2);
  const float64x2_t x2 = vmulq_f64(x, x);
  float64x2_t px = vfmaq_f64(p1, p0, x2);
  px = vfmaq_f64(p2, px, x2);
  px = vmulq_f64(px, x);
  float64x2_t qx = vfmaq_f64(q1, q0, x2);
  qx = vfmaq_f64(q2, qx, x2);
  qx = vfmaq_f64(q3, qx, x2);
  float64x2_t e = vdivq_f64(px, vsubq_f64(qx, px));
  e = vfmaq_f64(one, e, vdupq_n_f64(2.0));
  // e * 2^fx: shift the integral fx into the exponent field.
  const int64x2_t k = vcvtq_s64_f64(fx);
  const int64x2_t pow2 = vshlq_n_s64(vaddq_s64(k, vdupq_n_s64(1023)), 52);
  return vmulq_f64(e, vreinterpretq_f64_s64(pow2));
}

/// Zero lanes of v where r2 == 0 (coincident pair).
inline float64x2_t mask_nonzero(float64x2_t v, float64x2_t r2) {
  const uint64x2_t eq = vceqzq_f64(r2);
  return vreinterpretq_f64_u64(vbicq_u64(vreinterpretq_u64_f64(v), eq));
}

template <bool Grad>
void laplace_impl(const P2PBatch& b) {
  for (std::size_t i = 0; i < b.nt; ++i) {
    const float64x2_t vtx = vdupq_n_f64(b.tx[i]);
    const float64x2_t vty = vdupq_n_f64(b.ty[i]);
    const float64x2_t vtz = vdupq_n_f64(b.tz[i]);
    float64x2_t phi = vdupq_n_f64(0.0);
    float64x2_t ax = phi, ay = phi, az = phi;
    std::size_t j = 0;
    for (; j + 2 <= b.ns; j += 2) {
      const float64x2_t dx = vsubq_f64(vtx, vld1q_f64(b.sx + j));
      const float64x2_t dy = vsubq_f64(vty, vld1q_f64(b.sy + j));
      const float64x2_t dz = vsubq_f64(vtz, vld1q_f64(b.sz + j));
      const float64x2_t qj = vld1q_f64(b.sq + j);
      float64x2_t r2 = vmulq_f64(dx, dx);
      r2 = vfmaq_f64(r2, dy, dy);
      r2 = vfmaq_f64(r2, dz, dz);
      const float64x2_t inv_r = mask_nonzero(rsqrt_nr(r2), r2);
      phi = vfmaq_f64(phi, qj, inv_r);
      if constexpr (Grad) {
        const float64x2_t inv_r3 =
            vmulq_f64(vmulq_f64(inv_r, inv_r), inv_r);
        const float64x2_t w = vmulq_f64(qj, inv_r3);
        ax = vfmsq_f64(ax, w, dx);
        ay = vfmsq_f64(ay, w, dy);
        az = vfmsq_f64(az, w, dz);
      }
    }
    double sp = vaddvq_f64(phi);
    double sx = vaddvq_f64(ax), sy = vaddvq_f64(ay), sz = vaddvq_f64(az);
    for (; j < b.ns; ++j) {  // odd tail, scalar
      const double dx = b.tx[i] - b.sx[j];
      const double dy = b.ty[i] - b.sy[j];
      const double dz = b.tz[i] - b.sz[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 == 0.0) continue;
      const double inv_r = 1.0 / std::sqrt(r2);
      sp += b.sq[j] * inv_r;
      if constexpr (Grad) {
        const double w = -b.sq[j] * inv_r * inv_r * inv_r;
        sx += w * dx;
        sy += w * dy;
        sz += w * dz;
      }
    }
    b.phi[i] += sp;
    if constexpr (Grad) {
      b.ax[i] += sx;
      b.ay[i] += sy;
      b.az[i] += sz;
    }
  }
}

void laplace(const P2PBatch& b) {
  if (b.ax != nullptr) {
    laplace_impl<true>(b);
  } else {
    laplace_impl<false>(b);
  }
}

template <bool Grad>
void yukawa_impl(const P2PBatch& b, double kappa) {
  const float64x2_t vk = vdupq_n_f64(kappa);
  const float64x2_t one = vdupq_n_f64(1.0);
  for (std::size_t i = 0; i < b.nt; ++i) {
    const float64x2_t vtx = vdupq_n_f64(b.tx[i]);
    const float64x2_t vty = vdupq_n_f64(b.ty[i]);
    const float64x2_t vtz = vdupq_n_f64(b.tz[i]);
    float64x2_t phi = vdupq_n_f64(0.0);
    float64x2_t ax = phi, ay = phi, az = phi;
    std::size_t j = 0;
    for (; j + 2 <= b.ns; j += 2) {
      const float64x2_t dx = vsubq_f64(vtx, vld1q_f64(b.sx + j));
      const float64x2_t dy = vsubq_f64(vty, vld1q_f64(b.sy + j));
      const float64x2_t dz = vsubq_f64(vtz, vld1q_f64(b.sz + j));
      const float64x2_t qj = vld1q_f64(b.sq + j);
      float64x2_t r2 = vmulq_f64(dx, dx);
      r2 = vfmaq_f64(r2, dy, dy);
      r2 = vfmaq_f64(r2, dz, dz);
      const float64x2_t inv_r = mask_nonzero(rsqrt_nr(r2), r2);
      const float64x2_t kr = vmulq_f64(vk, vmulq_f64(r2, inv_r));
      const float64x2_t damp = exp_pd(vnegq_f64(kr));
      const float64x2_t e = vmulq_f64(qj, vmulq_f64(damp, inv_r));
      phi = vaddq_f64(phi, e);
      if constexpr (Grad) {
        const float64x2_t inv_r2 = vmulq_f64(inv_r, inv_r);
        const float64x2_t w =
            vmulq_f64(vaddq_f64(one, kr), vmulq_f64(e, inv_r2));
        ax = vfmsq_f64(ax, w, dx);
        ay = vfmsq_f64(ay, w, dy);
        az = vfmsq_f64(az, w, dz);
      }
    }
    double sp = vaddvq_f64(phi);
    double sx = vaddvq_f64(ax), sy = vaddvq_f64(ay), sz = vaddvq_f64(az);
    for (; j < b.ns; ++j) {  // odd tail, scalar
      const double dx = b.tx[i] - b.sx[j];
      const double dy = b.ty[i] - b.sy[j];
      const double dz = b.tz[i] - b.sz[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 == 0.0) continue;
      const double inv_r = 1.0 / std::sqrt(r2);
      const double kr = kappa * r2 * inv_r;
      const double e = b.sq[j] * std::exp(-kr) * inv_r;
      sp += e;
      if constexpr (Grad) {
        const double w = -(1.0 + kr) * e * inv_r * inv_r;
        sx += w * dx;
        sy += w * dy;
        sz += w * dz;
      }
    }
    b.phi[i] += sp;
    if constexpr (Grad) {
      b.ax[i] += sx;
      b.ay[i] += sy;
      b.az[i] += sz;
    }
  }
}

void yukawa(const P2PBatch& b, double kappa) {
  if (b.ax != nullptr) {
    yukawa_impl<true>(b, kappa);
  } else {
    yukawa_impl<false>(b, kappa);
  }
}

void zaxpy_neon(std::complex<double> a, const std::complex<double>* x,
                std::complex<double>* y, std::size_t n) {
  const double* px = reinterpret_cast<const double*>(x);
  double* py = reinterpret_cast<double*>(y);
  const float64x2_t are = vdupq_n_f64(a.real());
  // [-im(a), im(a)] pairs with the swapped [im(x), re(x)] lanes.
  const float64x2_t aim =
      vcombine_f64(vdup_n_f64(-a.imag()), vdup_n_f64(a.imag()));
  for (std::size_t i = 0; i < n; ++i) {
    const float64x2_t xv = vld1q_f64(px + 2 * i);       // [re, im]
    const float64x2_t xs = vextq_f64(xv, xv, 1);        // [im, re]
    float64x2_t r = vmulq_f64(xv, are);
    r = vfmaq_f64(r, xs, aim);
    vst1q_f64(py + 2 * i, vaddq_f64(vld1q_f64(py + 2 * i), r));
  }
}

std::complex<double> zrdot_neon(const std::complex<double>* x,
                                const double* r, std::size_t n) {
  const double* px = reinterpret_cast<const double*>(x);
  float64x2_t acc = vdupq_n_f64(0.0);  // [sum_re, sum_im]
  for (std::size_t i = 0; i < n; ++i) {
    acc = vfmaq_f64(acc, vld1q_f64(px + 2 * i), vdupq_n_f64(r[i]));
  }
  return {vgetq_lane_f64(acc, 0), vgetq_lane_f64(acc, 1)};
}

}  // namespace

const SimdOps& neon_ops() {
  static const SimdOps ops{laplace, yukawa, zaxpy_neon, zrdot_neon};
  return ops;
}

#else  // non-aarch64: variant not compiled in

const SimdOps& neon_ops() {
  static const SimdOps ops{};
  return ops;
}

#endif

}  // namespace amtfmm::simd
