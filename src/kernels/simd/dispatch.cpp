// Runtime ISA dispatch for the batch kernels.
//
// The active ISA is resolved once, on first use: best supported variant by
// default, overridable via the AMTFMM_FORCE_ISA environment variable
// (recognized values: scalar, neon, avx2, avx512).  Forcing a recognized
// but unsupported ISA falls back to scalar — a forced run must never
// silently upgrade to a wider unit than the one requested.  Unrecognized
// values warn on stderr and keep auto-detection.  Tests and benchmarks can
// re-point dispatch at runtime through set_active_isa().

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "kernels/simd/ops.hpp"

namespace amtfmm::simd {

namespace {

const SimdOps* table(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &scalar_ops();
    case Isa::kNeon:
      return &neon_ops();
    case Isa::kAvx2:
      return &avx2_ops();
    case Isa::kAvx512:
      return &avx512_ops();
  }
  return &scalar_ops();
}

bool host_supports(Isa isa) {
  if (!table(isa)->compiled()) return false;
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kNeon:
      // Compiled only on aarch64, where NEON is architecturally required.
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

Isa detect_best() {
  Isa best = Isa::kScalar;
  for (int i = 0; i < kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (host_supports(isa)) best = isa;
  }
  return best;
}

Isa init_from_env() {
  const char* env = std::getenv("AMTFMM_FORCE_ISA");
  if (env == nullptr || *env == '\0') return detect_best();
  Isa forced = Isa::kScalar;
  if (!parse_isa(env, forced)) {
    std::fprintf(stderr,
                 "amtfmm: unrecognized AMTFMM_FORCE_ISA='%s' "
                 "(want scalar|neon|avx2|avx512); auto-detecting\n",
                 env);
    return detect_best();
  }
  if (!host_supports(forced)) return Isa::kScalar;
  return forced;
}

std::atomic<Isa>& active_slot() {
  static std::atomic<Isa> slot{init_from_env()};
  return slot;
}

const SimdOps& active_ops() { return *table(active_slot().load()); }

}  // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kNeon:
      return "neon";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool parse_isa(std::string_view name, Isa& out) {
  for (int i = 0; i < kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (name == to_string(isa)) {
      out = isa;
      return true;
    }
  }
  return false;
}

bool isa_supported(Isa isa) { return host_supports(isa); }

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (int i = 0; i < kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (host_supports(isa)) out.push_back(isa);
  }
  return out;
}

Isa active_isa() { return active_slot().load(); }

bool set_active_isa(Isa isa) {
  if (!host_supports(isa)) return false;
  active_slot().store(isa);
  return true;
}

void p2p_laplace(const P2PBatch& b) { active_ops().p2p_laplace(b); }

void p2p_yukawa(const P2PBatch& b, double kappa) {
  active_ops().p2p_yukawa(b, kappa);
}

void zaxpy(std::complex<double> a, const std::complex<double>* x,
           std::complex<double>* y, std::size_t n) {
  active_ops().zaxpy(a, x, y, n);
}

std::complex<double> zrdot(const std::complex<double>* x, const double* r,
                           std::size_t n) {
  return active_ops().zrdot(x, r, n);
}

}  // namespace amtfmm::simd
