#pragma once

#include "kernels/simd/simd.hpp"

namespace amtfmm::simd {

/// Per-ISA implementation table.  An entry set is either fully populated or
/// all-null (variant not compiled in for this architecture); host CPU
/// support is checked separately by dispatch.cpp.
struct SimdOps {
  void (*p2p_laplace)(const P2PBatch&) = nullptr;
  void (*p2p_yukawa)(const P2PBatch&, double kappa) = nullptr;
  void (*zaxpy)(std::complex<double> a, const std::complex<double>* x,
                std::complex<double>* y, std::size_t n) = nullptr;
  std::complex<double> (*zrdot)(const std::complex<double>* x,
                                const double* r, std::size_t n) = nullptr;

  bool compiled() const { return p2p_laplace != nullptr; }
};

// Defined one per ops_<isa>.cpp translation unit.  Tables for variants not
// compiled on this architecture are all-null.
const SimdOps& scalar_ops();
const SimdOps& avx2_ops();
const SimdOps& avx512_ops();
const SimdOps& neon_ops();

}  // namespace amtfmm::simd
