#pragma once

#include <complex>
#include <cstddef>
#include <string_view>
#include <vector>

namespace amtfmm::simd {

/// Instruction-set variants of the batch kernels.  Every build carries the
/// scalar implementation; the wide variants are compiled with per-function
/// target attributes and selected at runtime, so one binary runs correctly
/// on any host.  Order is ascending preference: dispatch picks the last
/// supported entry.
enum class Isa { kScalar, kNeon, kAvx2, kAvx512 };

inline constexpr int kNumIsas = 4;

const char* to_string(Isa isa);

/// Parses an ISA name ("scalar", "neon", "avx2", "avx512").  Returns false
/// (and leaves `out` untouched) for unknown names.
bool parse_isa(std::string_view name, Isa& out);

/// Whether the variant is compiled in *and* the host CPU supports it.
/// kScalar is always supported.
bool isa_supported(Isa isa);

/// All supported ISAs in ascending preference order (always starts with
/// kScalar).  The parity tests iterate this to cover every variant the
/// host can run.
std::vector<Isa> supported_isas();

/// The ISA the batch kernels currently dispatch to.  On first use this is
/// initialized to the best supported ISA, unless the AMTFMM_FORCE_ISA
/// environment variable names a recognized ISA: a supported one is used
/// as-is, an unsupported one falls back to kScalar (conservative — a
/// "forced" run must never silently upgrade).  Unrecognized values warn on
/// stderr and keep auto-detection.
Isa active_isa();

/// Overrides the dispatch ISA at runtime (tests, benchmarks, the
/// micro_operators --isa flag).  Returns false and leaves the active ISA
/// unchanged when the variant is unsupported on this host.
bool set_active_isa(Isa isa);

/// One S->T (P2P) interaction batch in SoA form:
///   phi[i] += sum_j sq[j] * K(t_i, s_j)
/// and, when ax/ay/az are all non-null,
///   a*[i] += sum_j sq[j] * dK/dt*(t_i, s_j)   (the acceleration / force
///                                              per unit target charge).
/// Coincident pairs (t_i == s_j) contribute exactly zero to every output,
/// matching Kernel::direct / direct_grad.
///
/// All arrays are caller-owned; tx/ty/tz have nt entries, sx/sy/sz/sq have
/// ns entries.  No alignment is required for correctness (the wide kernels
/// use unaligned loads), but buffers staged from ScratchArena::soa() are
/// 64-byte aligned so vector loads never split cache lines.
struct P2PBatch {
  const double* tx = nullptr;
  const double* ty = nullptr;
  const double* tz = nullptr;
  std::size_t nt = 0;
  const double* sx = nullptr;
  const double* sy = nullptr;
  const double* sz = nullptr;
  const double* sq = nullptr;
  std::size_t ns = 0;
  double* phi = nullptr;
  double* ax = nullptr;
  double* ay = nullptr;
  double* az = nullptr;
};

/// Laplace near field: K(t, s) = 1/|t - s|.
void p2p_laplace(const P2PBatch& b);

/// Yukawa (screened Coulomb) near field: K(t, s) = e^{-kappa r}/r.
void p2p_yukawa(const P2PBatch& b, double kappa);

/// y[i] += a * x[i] over interleaved complex doubles — the inner operation
/// of the rotation-M2L block transforms (vectorized over the order index).
void zaxpy(std::complex<double> a, const std::complex<double>* x,
           std::complex<double>* y, std::size_t n);

/// sum_i x[i] * r[i] (complex times real) — the axial M2L translation dot
/// product.
std::complex<double> zrdot(const std::complex<double>* x, const double* r,
                           std::size_t n);

}  // namespace amtfmm::simd
