// AVX2+FMA (4-wide double) variants of the batch kernels.  Compiled with
// per-function target attributes so the translation unit builds on any x86
// toolchain and the dispatcher gates execution on cpuid.
//
// Conventions shared with the other wide variants:
//  - the source index j is the vector dimension; the target is broadcast,
//  - 1/r comes from the hardware reciprocal-sqrt estimate refined by
//    Newton iterations to full double precision (see rsqrt_nr),
//  - coincident pairs are masked to an exactly-zero contribution,
//  - the source tail (ns % 4) uses masked loads with the charge lanes
//    zeroed, which neutralizes every output without a scalar epilogue.

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>

#include <cmath>
#endif

#include "kernels/simd/ops.hpp"

namespace amtfmm::simd {

#if defined(__x86_64__) || defined(__i386__)

#define AMTFMM_AVX2 __attribute__((target("avx2,fma")))

namespace {

// The float-estimate path is only valid where the radius survives the
// round trip through single precision; lanes outside are recomputed
// exactly (they essentially never occur for physical coordinates).
constexpr double kRsqrtTiny = 1e-37;
constexpr double kRsqrtHuge = 1e37;

/// 1/sqrt(r2) to full double precision: 12-bit float rsqrt estimate plus
/// three Newton iterations (12 -> 24 -> 48 -> ~96 bits, capped at the
/// 53-bit double mantissa).  Lanes with r2 == 0 come out non-finite;
/// callers mask them.  Lanes outside [kRsqrtTiny, kRsqrtHuge] are fixed up
/// exactly.
AMTFMM_AVX2 inline __m256d rsqrt_nr(__m256d r2) {
  __m256d y = _mm256_cvtps_pd(_mm_rsqrt_ps(_mm256_cvtpd_ps(r2)));
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d three_half = _mm256_set1_pd(1.5);
  for (int it = 0; it < 3; ++it) {
    const __m256d t = _mm256_mul_pd(_mm256_mul_pd(r2, y), y);
    y = _mm256_mul_pd(y, _mm256_fnmadd_pd(half, t, three_half));
  }
  const __m256d bad =
      _mm256_or_pd(_mm256_cmp_pd(r2, _mm256_set1_pd(kRsqrtTiny), _CMP_LT_OQ),
                   _mm256_cmp_pd(r2, _mm256_set1_pd(kRsqrtHuge), _CMP_GT_OQ));
  if (_mm256_movemask_pd(bad) != 0) {
    alignas(32) double rr[4], yy[4], bb[4];
    _mm256_store_pd(rr, r2);
    _mm256_store_pd(yy, y);
    _mm256_store_pd(bb, bad);
    for (int l = 0; l < 4; ++l) {
      if (bb[l] != 0.0 && rr[l] > 0.0) yy[l] = 1.0 / std::sqrt(rr[l]);
    }
    y = _mm256_load_pd(yy);
  }
  return y;
}

/// e^x, Cephes-style: x = k ln2 + r, e^r by a rational minimax on
/// |r| <= ln2/2, then scale by 2^k through the exponent bits.  Accurate to
/// ~1 ulp over the clamped range, which keeps the Yukawa batch within the
/// 1e-12 parity budget of the libm scalar path.
AMTFMM_AVX2 inline __m256d exp_pd(__m256d x) {
  const __m256d hi = _mm256_set1_pd(709.437);
  const __m256d lo = _mm256_set1_pd(-709.436139303);
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d c1 = _mm256_set1_pd(0.693145751953125);
  const __m256d c2 = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d p0 = _mm256_set1_pd(1.26177193074810590878e-4);
  const __m256d p1 = _mm256_set1_pd(3.02994407707441961300e-2);
  const __m256d p2 = _mm256_set1_pd(9.99999999999999999910e-1);
  const __m256d q0 = _mm256_set1_pd(3.00198505138664455042e-6);
  const __m256d q1 = _mm256_set1_pd(2.52448340349684104192e-3);
  const __m256d q2 = _mm256_set1_pd(2.27265548208155028766e-1);
  const __m256d q3 = _mm256_set1_pd(2.00000000000000000005e0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d half = _mm256_set1_pd(0.5);

  x = _mm256_min_pd(_mm256_max_pd(x, lo), hi);
  const __m256d fx = _mm256_floor_pd(_mm256_fmadd_pd(x, log2e, half));
  x = _mm256_fnmadd_pd(fx, c1, x);
  x = _mm256_fnmadd_pd(fx, c2, x);
  const __m256d x2 = _mm256_mul_pd(x, x);
  __m256d px = _mm256_fmadd_pd(p0, x2, p1);
  px = _mm256_fmadd_pd(px, x2, p2);
  px = _mm256_mul_pd(px, x);
  __m256d qx = _mm256_fmadd_pd(q0, x2, q1);
  qx = _mm256_fmadd_pd(qx, x2, q2);
  qx = _mm256_fmadd_pd(qx, x2, q3);
  __m256d e = _mm256_div_pd(px, _mm256_sub_pd(qx, px));
  e = _mm256_fmadd_pd(e, _mm256_set1_pd(2.0), one);
  // e * 2^fx: shift the integral fx into the exponent field.
  const __m128i k32 = _mm256_cvtpd_epi32(fx);
  const __m256i k64 = _mm256_cvtepi32_epi64(k32);
  const __m256i pow2 =
      _mm256_slli_epi64(_mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(e, _mm256_castsi256_pd(pow2));
}

/// Mask with the low `rem` (1..3) lanes active, for masked tail loads.
AMTFMM_AVX2 inline __m256i tail_mask(std::size_t rem) {
  const __m256i lane = _mm256_setr_epi64x(0, 1, 2, 3);
  return _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<long long>(rem)),
                            lane);
}

AMTFMM_AVX2 inline double hsum(__m256d v) {
  const __m128d s =
      _mm_add_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

template <bool Grad>
AMTFMM_AVX2 void laplace_impl(const P2PBatch& b) {
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t i = 0; i < b.nt; ++i) {
    const __m256d vtx = _mm256_set1_pd(b.tx[i]);
    const __m256d vty = _mm256_set1_pd(b.ty[i]);
    const __m256d vtz = _mm256_set1_pd(b.tz[i]);
    __m256d phi = zero, ax = zero, ay = zero, az = zero;
    for (std::size_t j = 0; j < b.ns; j += 4) {
      __m256d xj, yj, zj, qj;
      if (j + 4 <= b.ns) {
        xj = _mm256_loadu_pd(b.sx + j);
        yj = _mm256_loadu_pd(b.sy + j);
        zj = _mm256_loadu_pd(b.sz + j);
        qj = _mm256_loadu_pd(b.sq + j);
      } else {
        const __m256i m = tail_mask(b.ns - j);
        xj = _mm256_maskload_pd(b.sx + j, m);
        yj = _mm256_maskload_pd(b.sy + j, m);
        zj = _mm256_maskload_pd(b.sz + j, m);
        qj = _mm256_maskload_pd(b.sq + j, m);
      }
      const __m256d dx = _mm256_sub_pd(vtx, xj);
      const __m256d dy = _mm256_sub_pd(vty, yj);
      const __m256d dz = _mm256_sub_pd(vtz, zj);
      __m256d r2 = _mm256_mul_pd(dx, dx);
      r2 = _mm256_fmadd_pd(dy, dy, r2);
      r2 = _mm256_fmadd_pd(dz, dz, r2);
      const __m256d nz = _mm256_cmp_pd(r2, zero, _CMP_NEQ_OQ);
      const __m256d inv_r = _mm256_and_pd(rsqrt_nr(r2), nz);
      phi = _mm256_fmadd_pd(qj, inv_r, phi);
      if constexpr (Grad) {
        const __m256d inv_r3 =
            _mm256_mul_pd(_mm256_mul_pd(inv_r, inv_r), inv_r);
        const __m256d w = _mm256_mul_pd(qj, inv_r3);
        ax = _mm256_fnmadd_pd(w, dx, ax);
        ay = _mm256_fnmadd_pd(w, dy, ay);
        az = _mm256_fnmadd_pd(w, dz, az);
      }
    }
    b.phi[i] += hsum(phi);
    if constexpr (Grad) {
      b.ax[i] += hsum(ax);
      b.ay[i] += hsum(ay);
      b.az[i] += hsum(az);
    }
  }
}

AMTFMM_AVX2 void laplace(const P2PBatch& b) {
  if (b.ax != nullptr) {
    laplace_impl<true>(b);
  } else {
    laplace_impl<false>(b);
  }
}

template <bool Grad>
AMTFMM_AVX2 void yukawa_impl(const P2PBatch& b, double kappa) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d vk = _mm256_set1_pd(kappa);
  const __m256d one = _mm256_set1_pd(1.0);
  for (std::size_t i = 0; i < b.nt; ++i) {
    const __m256d vtx = _mm256_set1_pd(b.tx[i]);
    const __m256d vty = _mm256_set1_pd(b.ty[i]);
    const __m256d vtz = _mm256_set1_pd(b.tz[i]);
    __m256d phi = zero, ax = zero, ay = zero, az = zero;
    for (std::size_t j = 0; j < b.ns; j += 4) {
      __m256d xj, yj, zj, qj;
      if (j + 4 <= b.ns) {
        xj = _mm256_loadu_pd(b.sx + j);
        yj = _mm256_loadu_pd(b.sy + j);
        zj = _mm256_loadu_pd(b.sz + j);
        qj = _mm256_loadu_pd(b.sq + j);
      } else {
        const __m256i m = tail_mask(b.ns - j);
        xj = _mm256_maskload_pd(b.sx + j, m);
        yj = _mm256_maskload_pd(b.sy + j, m);
        zj = _mm256_maskload_pd(b.sz + j, m);
        qj = _mm256_maskload_pd(b.sq + j, m);
      }
      const __m256d dx = _mm256_sub_pd(vtx, xj);
      const __m256d dy = _mm256_sub_pd(vty, yj);
      const __m256d dz = _mm256_sub_pd(vtz, zj);
      __m256d r2 = _mm256_mul_pd(dx, dx);
      r2 = _mm256_fmadd_pd(dy, dy, r2);
      r2 = _mm256_fmadd_pd(dz, dz, r2);
      const __m256d nz = _mm256_cmp_pd(r2, zero, _CMP_NEQ_OQ);
      const __m256d inv_r = _mm256_and_pd(rsqrt_nr(r2), nz);
      // kr = kappa * r2 * inv_r (== kappa * r; 0 on masked lanes).
      const __m256d kr = _mm256_mul_pd(vk, _mm256_mul_pd(r2, inv_r));
      const __m256d damp = exp_pd(_mm256_sub_pd(zero, kr));
      // e = q * e^{-kr} / r; masked lanes: inv_r = 0 -> e = 0.
      const __m256d e = _mm256_mul_pd(qj, _mm256_mul_pd(damp, inv_r));
      phi = _mm256_add_pd(phi, e);
      if constexpr (Grad) {
        const __m256d inv_r2 = _mm256_mul_pd(inv_r, inv_r);
        const __m256d w =
            _mm256_mul_pd(_mm256_add_pd(one, kr), _mm256_mul_pd(e, inv_r2));
        ax = _mm256_fnmadd_pd(w, dx, ax);
        ay = _mm256_fnmadd_pd(w, dy, ay);
        az = _mm256_fnmadd_pd(w, dz, az);
      }
    }
    b.phi[i] += hsum(phi);
    if constexpr (Grad) {
      b.ax[i] += hsum(ax);
      b.ay[i] += hsum(ay);
      b.az[i] += hsum(az);
    }
  }
}

AMTFMM_AVX2 void yukawa(const P2PBatch& b, double kappa) {
  if (b.ax != nullptr) {
    yukawa_impl<true>(b, kappa);
  } else {
    yukawa_impl<false>(b, kappa);
  }
}

AMTFMM_AVX2 void zaxpy_avx2(std::complex<double> a,
                            const std::complex<double>* x,
                            std::complex<double>* y, std::size_t n) {
  const __m256d vre = _mm256_set1_pd(a.real());
  const __m256d vim = _mm256_set1_pd(a.imag());
  const double* px = reinterpret_cast<const double*>(x);
  double* py = reinterpret_cast<double*>(y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d xv = _mm256_loadu_pd(px + 2 * i);
    const __m256d xs = _mm256_permute_pd(xv, 0x5);  // swap re/im per pair
    const __m256d t = _mm256_mul_pd(xs, vim);
    const __m256d r = _mm256_fmaddsub_pd(xv, vre, t);
    _mm256_storeu_pd(py + 2 * i,
                     _mm256_add_pd(_mm256_loadu_pd(py + 2 * i), r));
  }
  if (i < n) y[i] += a * x[i];
}

AMTFMM_AVX2 std::complex<double> zrdot_avx2(const std::complex<double>* x,
                                            const double* r, std::size_t n) {
  const double* px = reinterpret_cast<const double*>(x);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d xv = _mm256_loadu_pd(px + 2 * i);
    // [r_i, r_i, r_{i+1}, r_{i+1}]
    const __m256d rd = _mm256_permute4x64_pd(
        _mm256_castpd128_pd256(_mm_loadu_pd(r + i)), 0x50);
    acc = _mm256_fmadd_pd(xv, rd, acc);
  }
  const __m128d s = _mm_add_pd(_mm256_castpd256_pd128(acc),
                               _mm256_extractf128_pd(acc, 1));
  double re = _mm_cvtsd_f64(s);
  double im = _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  if (i < n) {
    re += x[i].real() * r[i];
    im += x[i].imag() * r[i];
  }
  return {re, im};
}

}  // namespace

const SimdOps& avx2_ops() {
  static const SimdOps ops{laplace, yukawa, zaxpy_avx2, zrdot_avx2};
  return ops;
}

#else  // non-x86: variant not compiled in

const SimdOps& avx2_ops() {
  static const SimdOps ops{};
  return ops;
}

#endif

}  // namespace amtfmm::simd
