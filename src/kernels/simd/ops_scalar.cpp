// Scalar reference implementations of the batch kernels.  These are the
// parity baseline for every wide variant and the dispatch fallback on hosts
// without vector units — keep them straightforward, sequential-summation
// code.

#include <cmath>

#include "kernels/simd/ops.hpp"

namespace amtfmm::simd {
namespace {

template <bool Grad>
void laplace_impl(const P2PBatch& b) {
  for (std::size_t i = 0; i < b.nt; ++i) {
    const double tx = b.tx[i], ty = b.ty[i], tz = b.tz[i];
    double phi = 0.0, ax = 0.0, ay = 0.0, az = 0.0;
    for (std::size_t j = 0; j < b.ns; ++j) {
      const double dx = tx - b.sx[j];
      const double dy = ty - b.sy[j];
      const double dz = tz - b.sz[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 == 0.0) continue;
      const double inv_r = 1.0 / std::sqrt(r2);
      phi += b.sq[j] * inv_r;
      if constexpr (Grad) {
        const double w = -b.sq[j] * inv_r * inv_r * inv_r;
        ax += w * dx;
        ay += w * dy;
        az += w * dz;
      }
    }
    b.phi[i] += phi;
    if constexpr (Grad) {
      b.ax[i] += ax;
      b.ay[i] += ay;
      b.az[i] += az;
    }
  }
}

void laplace(const P2PBatch& b) {
  if (b.ax != nullptr) {
    laplace_impl<true>(b);
  } else {
    laplace_impl<false>(b);
  }
}

template <bool Grad>
void yukawa_impl(const P2PBatch& b, double kappa) {
  for (std::size_t i = 0; i < b.nt; ++i) {
    const double tx = b.tx[i], ty = b.ty[i], tz = b.tz[i];
    double phi = 0.0, ax = 0.0, ay = 0.0, az = 0.0;
    for (std::size_t j = 0; j < b.ns; ++j) {
      const double dx = tx - b.sx[j];
      const double dy = ty - b.sy[j];
      const double dz = tz - b.sz[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 == 0.0) continue;
      const double inv_r = 1.0 / std::sqrt(r2);
      const double kr = kappa * r2 * inv_r;  // kappa * r
      const double e = b.sq[j] * std::exp(-kr) * inv_r;
      phi += e;
      if constexpr (Grad) {
        // grad_t e^{-kr}/r = -(1 + kr) e^{-kr}/r^3 * (t - s)
        const double w = -(1.0 + kr) * e * inv_r * inv_r;
        ax += w * dx;
        ay += w * dy;
        az += w * dz;
      }
    }
    b.phi[i] += phi;
    if constexpr (Grad) {
      b.ax[i] += ax;
      b.ay[i] += ay;
      b.az[i] += az;
    }
  }
}

void yukawa(const P2PBatch& b, double kappa) {
  if (b.ax != nullptr) {
    yukawa_impl<true>(b, kappa);
  } else {
    yukawa_impl<false>(b, kappa);
  }
}

void zaxpy_scalar(std::complex<double> a, const std::complex<double>* x,
                  std::complex<double>* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

std::complex<double> zrdot_scalar(const std::complex<double>* x,
                                  const double* r, std::size_t n) {
  double re = 0.0, im = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    re += x[i].real() * r[i];
    im += x[i].imag() * r[i];
  }
  return {re, im};
}

}  // namespace

const SimdOps& scalar_ops() {
  static const SimdOps ops{laplace, yukawa, zaxpy_scalar, zrdot_scalar};
  return ops;
}

}  // namespace amtfmm::simd
