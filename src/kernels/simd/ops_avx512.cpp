// AVX-512F (8-wide double) variants of the batch kernels.  Same contract
// as ops_avx2.cpp, but the tail path uses native mask registers, 1/sqrt
// starts from the 14-bit vrsqrt14pd estimate (full double domain — no
// float round trip, so no range guard is needed), and 2^k scaling goes
// through vscalefpd.

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "kernels/simd/ops.hpp"

namespace amtfmm::simd {

#if defined(__x86_64__) || defined(__i386__)

#define AMTFMM_AVX512 __attribute__((target("avx512f")))

namespace {

/// 1/sqrt(r2): 14-bit estimate plus two Newton iterations (14 -> 28 -> 56
/// bits, past the 53-bit double mantissa).  r2 == 0 lanes come out inf;
/// callers mask them.
AMTFMM_AVX512 inline __m512d rsqrt_nr(__m512d r2) {
  __m512d y = _mm512_rsqrt14_pd(r2);
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d three_half = _mm512_set1_pd(1.5);
  for (int it = 0; it < 2; ++it) {
    const __m512d t = _mm512_mul_pd(_mm512_mul_pd(r2, y), y);
    y = _mm512_mul_pd(y, _mm512_fnmadd_pd(half, t, three_half));
  }
  return y;
}

/// e^x — the same Cephes rational as the AVX2 variant; 2^k via scalef.
AMTFMM_AVX512 inline __m512d exp_pd(__m512d x) {
  const __m512d hi = _mm512_set1_pd(709.437);
  const __m512d lo = _mm512_set1_pd(-709.436139303);
  const __m512d log2e = _mm512_set1_pd(1.4426950408889634073599);
  const __m512d c1 = _mm512_set1_pd(0.693145751953125);
  const __m512d c2 = _mm512_set1_pd(1.42860682030941723212e-6);
  const __m512d p0 = _mm512_set1_pd(1.26177193074810590878e-4);
  const __m512d p1 = _mm512_set1_pd(3.02994407707441961300e-2);
  const __m512d p2 = _mm512_set1_pd(9.99999999999999999910e-1);
  const __m512d q0 = _mm512_set1_pd(3.00198505138664455042e-6);
  const __m512d q1 = _mm512_set1_pd(2.52448340349684104192e-3);
  const __m512d q2 = _mm512_set1_pd(2.27265548208155028766e-1);
  const __m512d q3 = _mm512_set1_pd(2.00000000000000000005e0);
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d half = _mm512_set1_pd(0.5);

  x = _mm512_min_pd(_mm512_max_pd(x, lo), hi);
  const __m512d fx = _mm512_floor_pd(_mm512_fmadd_pd(x, log2e, half));
  x = _mm512_fnmadd_pd(fx, c1, x);
  x = _mm512_fnmadd_pd(fx, c2, x);
  const __m512d x2 = _mm512_mul_pd(x, x);
  __m512d px = _mm512_fmadd_pd(p0, x2, p1);
  px = _mm512_fmadd_pd(px, x2, p2);
  px = _mm512_mul_pd(px, x);
  __m512d qx = _mm512_fmadd_pd(q0, x2, q1);
  qx = _mm512_fmadd_pd(qx, x2, q2);
  qx = _mm512_fmadd_pd(qx, x2, q3);
  __m512d e = _mm512_div_pd(px, _mm512_sub_pd(qx, px));
  e = _mm512_fmadd_pd(e, _mm512_set1_pd(2.0), one);
  return _mm512_scalef_pd(e, fx);  // e * 2^fx (fx already integral)
}

template <bool Grad>
AMTFMM_AVX512 void laplace_impl(const P2PBatch& b) {
  const __m512d zero = _mm512_setzero_pd();
  for (std::size_t i = 0; i < b.nt; ++i) {
    const __m512d vtx = _mm512_set1_pd(b.tx[i]);
    const __m512d vty = _mm512_set1_pd(b.ty[i]);
    const __m512d vtz = _mm512_set1_pd(b.tz[i]);
    __m512d phi = zero, ax = zero, ay = zero, az = zero;
    for (std::size_t j = 0; j < b.ns; j += 8) {
      const std::size_t rem = b.ns - j;
      const __mmask8 m =
          rem >= 8 ? static_cast<__mmask8>(0xff)
                   : static_cast<__mmask8>((1u << rem) - 1u);
      const __m512d xj = _mm512_maskz_loadu_pd(m, b.sx + j);
      const __m512d yj = _mm512_maskz_loadu_pd(m, b.sy + j);
      const __m512d zj = _mm512_maskz_loadu_pd(m, b.sz + j);
      const __m512d qj = _mm512_maskz_loadu_pd(m, b.sq + j);
      const __m512d dx = _mm512_sub_pd(vtx, xj);
      const __m512d dy = _mm512_sub_pd(vty, yj);
      const __m512d dz = _mm512_sub_pd(vtz, zj);
      __m512d r2 = _mm512_mul_pd(dx, dx);
      r2 = _mm512_fmadd_pd(dy, dy, r2);
      r2 = _mm512_fmadd_pd(dz, dz, r2);
      const __mmask8 nz = _mm512_cmp_pd_mask(r2, zero, _CMP_NEQ_OQ);
      const __m512d inv_r = _mm512_maskz_mov_pd(nz, rsqrt_nr(r2));
      phi = _mm512_fmadd_pd(qj, inv_r, phi);
      if constexpr (Grad) {
        const __m512d inv_r3 =
            _mm512_mul_pd(_mm512_mul_pd(inv_r, inv_r), inv_r);
        const __m512d w = _mm512_mul_pd(qj, inv_r3);
        ax = _mm512_fnmadd_pd(w, dx, ax);
        ay = _mm512_fnmadd_pd(w, dy, ay);
        az = _mm512_fnmadd_pd(w, dz, az);
      }
    }
    b.phi[i] += _mm512_reduce_add_pd(phi);
    if constexpr (Grad) {
      b.ax[i] += _mm512_reduce_add_pd(ax);
      b.ay[i] += _mm512_reduce_add_pd(ay);
      b.az[i] += _mm512_reduce_add_pd(az);
    }
  }
}

AMTFMM_AVX512 void laplace(const P2PBatch& b) {
  if (b.ax != nullptr) {
    laplace_impl<true>(b);
  } else {
    laplace_impl<false>(b);
  }
}

template <bool Grad>
AMTFMM_AVX512 void yukawa_impl(const P2PBatch& b, double kappa) {
  const __m512d zero = _mm512_setzero_pd();
  const __m512d vk = _mm512_set1_pd(kappa);
  const __m512d one = _mm512_set1_pd(1.0);
  for (std::size_t i = 0; i < b.nt; ++i) {
    const __m512d vtx = _mm512_set1_pd(b.tx[i]);
    const __m512d vty = _mm512_set1_pd(b.ty[i]);
    const __m512d vtz = _mm512_set1_pd(b.tz[i]);
    __m512d phi = zero, ax = zero, ay = zero, az = zero;
    for (std::size_t j = 0; j < b.ns; j += 8) {
      const std::size_t rem = b.ns - j;
      const __mmask8 m =
          rem >= 8 ? static_cast<__mmask8>(0xff)
                   : static_cast<__mmask8>((1u << rem) - 1u);
      const __m512d xj = _mm512_maskz_loadu_pd(m, b.sx + j);
      const __m512d yj = _mm512_maskz_loadu_pd(m, b.sy + j);
      const __m512d zj = _mm512_maskz_loadu_pd(m, b.sz + j);
      const __m512d qj = _mm512_maskz_loadu_pd(m, b.sq + j);
      const __m512d dx = _mm512_sub_pd(vtx, xj);
      const __m512d dy = _mm512_sub_pd(vty, yj);
      const __m512d dz = _mm512_sub_pd(vtz, zj);
      __m512d r2 = _mm512_mul_pd(dx, dx);
      r2 = _mm512_fmadd_pd(dy, dy, r2);
      r2 = _mm512_fmadd_pd(dz, dz, r2);
      const __mmask8 nz = _mm512_cmp_pd_mask(r2, zero, _CMP_NEQ_OQ);
      const __m512d inv_r = _mm512_maskz_mov_pd(nz, rsqrt_nr(r2));
      const __m512d kr = _mm512_mul_pd(vk, _mm512_mul_pd(r2, inv_r));
      const __m512d damp = exp_pd(_mm512_sub_pd(zero, kr));
      const __m512d e = _mm512_mul_pd(qj, _mm512_mul_pd(damp, inv_r));
      phi = _mm512_add_pd(phi, e);
      if constexpr (Grad) {
        const __m512d inv_r2 = _mm512_mul_pd(inv_r, inv_r);
        const __m512d w =
            _mm512_mul_pd(_mm512_add_pd(one, kr), _mm512_mul_pd(e, inv_r2));
        ax = _mm512_fnmadd_pd(w, dx, ax);
        ay = _mm512_fnmadd_pd(w, dy, ay);
        az = _mm512_fnmadd_pd(w, dz, az);
      }
    }
    b.phi[i] += _mm512_reduce_add_pd(phi);
    if constexpr (Grad) {
      b.ax[i] += _mm512_reduce_add_pd(ax);
      b.ay[i] += _mm512_reduce_add_pd(ay);
      b.az[i] += _mm512_reduce_add_pd(az);
    }
  }
}

AMTFMM_AVX512 void yukawa(const P2PBatch& b, double kappa) {
  if (b.ax != nullptr) {
    yukawa_impl<true>(b, kappa);
  } else {
    yukawa_impl<false>(b, kappa);
  }
}

AMTFMM_AVX512 void zaxpy_avx512(std::complex<double> a,
                                const std::complex<double>* x,
                                std::complex<double>* y, std::size_t n) {
  const __m512d vre = _mm512_set1_pd(a.real());
  const __m512d vim = _mm512_set1_pd(a.imag());
  const double* px = reinterpret_cast<const double*>(x);
  double* py = reinterpret_cast<double*>(y);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m512d xv = _mm512_loadu_pd(px + 2 * i);
    const __m512d xs = _mm512_permute_pd(xv, 0x55);  // swap re/im per pair
    const __m512d t = _mm512_mul_pd(xs, vim);
    const __m512d r = _mm512_fmaddsub_pd(xv, vre, t);
    _mm512_storeu_pd(py + 2 * i,
                     _mm512_add_pd(_mm512_loadu_pd(py + 2 * i), r));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

AMTFMM_AVX512 std::complex<double> zrdot_avx512(const std::complex<double>* x,
                                                const double* r,
                                                std::size_t n) {
  const double* px = reinterpret_cast<const double*>(x);
  const __m512i dup = _mm512_set_epi64(3, 3, 2, 2, 1, 1, 0, 0);
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m512d xv = _mm512_loadu_pd(px + 2 * i);
    // [r_i, r_i, r_{i+1}, r_{i+1}, ...]
    const __m512d rd = _mm512_permutexvar_pd(
        dup, _mm512_castpd256_pd512(_mm256_loadu_pd(r + i)));
    acc = _mm512_fmadd_pd(xv, rd, acc);
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  double re = lanes[0] + lanes[2] + lanes[4] + lanes[6];
  double im = lanes[1] + lanes[3] + lanes[5] + lanes[7];
  for (; i < n; ++i) {
    re += x[i].real() * r[i];
    im += x[i].imag() * r[i];
  }
  return {re, im};
}

}  // namespace

const SimdOps& avx512_ops() {
  static const SimdOps ops{laplace, yukawa, zaxpy_avx512, zrdot_avx512};
  return ops;
}

#else  // non-x86: variant not compiled in

const SimdOps& avx512_ops() {
  static const SimdOps ops{};
  return ops;
}

#endif

}  // namespace amtfmm::simd
