#include "kernels/kernel.hpp"

#include <cstring>

#include "kernels/counting.hpp"
#include "kernels/laplace.hpp"
#include "kernels/yukawa.hpp"
#include "support/error.hpp"
#include "support/scratch_arena.hpp"

namespace amtfmm {

const char* to_string(Operator op) {
  switch (op) {
    case Operator::kS2T: return "S->T";
    case Operator::kS2M: return "S->M";
    case Operator::kS2L: return "S->L";
    case Operator::kM2M: return "M->M";
    case Operator::kM2L: return "M->L";
    case Operator::kM2T: return "M->T";
    case Operator::kL2L: return "L->L";
    case Operator::kL2T: return "L->T";
    case Operator::kM2I: return "M->I";
    case Operator::kI2I: return "I->I";
    case Operator::kI2L: return "I->L";
  }
  return "?";
}

std::size_t Kernel::m_wire_bytes(int level) const {
  return m_count(level) * sizeof(cdouble);
}
std::size_t Kernel::l_wire_bytes(int level) const {
  return l_count(level) * sizeof(cdouble);
}
std::size_t Kernel::x_wire_bytes(int level) const {
  return x_count(level) * sizeof(cdouble);
}

namespace {

// Default codec: coefficients travel raw (wire bytes == count * 16).
void copy_raw_out(const CoeffVec& full, std::size_t count, std::byte* out) {
  AMTFMM_ASSERT(full.size() >= count);
  std::memcpy(out, full.data(), count * sizeof(cdouble));
}

void copy_raw_in(std::span<const std::byte> wire, std::size_t count,
                 CoeffVec& out) {
  AMTFMM_ASSERT(wire.size() == count * sizeof(cdouble));
  out.resize(count);
  std::memcpy(out.data(), wire.data(), wire.size());
}

}  // namespace

void Kernel::s2t_batch(const simd::P2PBatch& b) const {
  const bool grad = b.ax != nullptr && supports_gradient();
  for (std::size_t i = 0; i < b.nt; ++i) {
    const Vec3 t{b.tx[i], b.ty[i], b.tz[i]};
    double phi = 0.0;
    Vec3 acc{};
    for (std::size_t j = 0; j < b.ns; ++j) {
      const Vec3 s{b.sx[j], b.sy[j], b.sz[j]};
      phi += b.sq[j] * direct(t, s);
      if (grad) acc = acc + direct_grad(t, s) * b.sq[j];
    }
    b.phi[i] += phi;
    if (b.ax != nullptr) {
      b.ax[i] += acc.x;
      b.ay[i] += acc.y;
      b.az[i] += acc.z;
    }
  }
}

void Kernel::pack_m(const CoeffVec& full, int level, std::byte* out) const {
  copy_raw_out(full, m_count(level), out);
}
void Kernel::unpack_m(std::span<const std::byte> wire, int level,
                      CoeffVec& out) const {
  copy_raw_in(wire, m_count(level), out);
}
void Kernel::pack_l(const CoeffVec& full, int level, std::byte* out) const {
  copy_raw_out(full, l_count(level), out);
}
void Kernel::unpack_l(std::span<const std::byte> wire, int level,
                      CoeffVec& out) const {
  copy_raw_in(wire, l_count(level), out);
}
void Kernel::pack_x(const CoeffVec& full, int level, std::byte* out) const {
  copy_raw_out(full, x_count(level), out);
}
void Kernel::unpack_x(std::span<const std::byte> wire, int level,
                      CoeffVec& out) const {
  copy_raw_in(wire, x_count(level), out);
}

void Kernel::pack_symmetric(int p, const CoeffVec& full, std::byte* out) {
  auto scratch = ScratchArena::local().coeffs();
  pack_wire(p, full, *scratch);
  std::memcpy(out, scratch->data(), wire_bytes(p));
}

void Kernel::unpack_symmetric(int p, bool condon_phase,
                              std::span<const std::byte> wire, CoeffVec& out) {
  AMTFMM_ASSERT(wire.size() == wire_bytes(p));
  auto scratch = ScratchArena::local().coeffs();
  scratch->resize(wire_count(p));
  std::memcpy(scratch->data(), wire.data(), wire.size());
  unpack_wire(p, *scratch, out, condon_phase);
}

Vec3 Kernel::direct_grad(const Vec3&, const Vec3&) const {
  AMTFMM_ASSERT_MSG(false, "kernel does not support gradients");
  return {};
}

Vec3 Kernel::l2t_grad(const CoeffVec&, const Vec3&, int, const Vec3&) const {
  AMTFMM_ASSERT_MSG(false, "kernel does not support gradients");
  return {};
}

void Kernel::m2i(const CoeffVec&, int, Axis, CoeffVec&) const {
  AMTFMM_ASSERT_MSG(false, "kernel does not support merge-and-shift");
}
void Kernel::i2i_acc(const CoeffVec&, Axis, const Vec3&, int,
                     CoeffVec&) const {
  AMTFMM_ASSERT_MSG(false, "kernel does not support merge-and-shift");
}
void Kernel::i2l_acc(const CoeffVec&, Axis, int, CoeffVec&) const {
  AMTFMM_ASSERT_MSG(false, "kernel does not support merge-and-shift");
}

std::unique_ptr<Kernel> make_kernel(const std::string& name,
                                    double yukawa_lambda) {
  return make_kernel(name, KernelConfig{}, yukawa_lambda);
}

std::unique_ptr<Kernel> make_kernel(const std::string& name,
                                    const KernelConfig& config,
                                    double yukawa_lambda) {
  std::unique_ptr<Kernel> k;
  if (name == "laplace") {
    k = std::make_unique<LaplaceKernel>();
  } else if (name == "yukawa") {
    k = std::make_unique<YukawaKernel>(yukawa_lambda);
  } else if (name == "counting") {
    k = std::make_unique<CountingKernel>();
  } else {
    throw config_error("unknown kernel: " + name +
                       " (expected laplace|yukawa|counting)");
  }
  k->set_m2l_mode(config.m2l_mode);
  return k;
}

}  // namespace amtfmm
