#pragma once

#include <memory>
#include <span>
#include <string>

#include "geom/vec3.hpp"
#include "kernels/simd/simd.hpp"
#include "math/coeffs.hpp"
#include "math/rotation.hpp"

namespace amtfmm {

/// The eleven FMM operators of the paper's Figure 1c: eight basic (solid
/// lines) plus the three intermediate-expansion operators of the advanced,
/// merge-and-shift FMM (dashed lines).
enum class Operator {
  kS2T,
  kS2M,
  kS2L,
  kM2M,
  kM2L,
  kM2T,
  kL2L,
  kL2T,
  kM2I,
  kI2I,
  kI2L,
};

inline constexpr int kNumOperators = 11;
const char* to_string(Operator op);

/// M2L evaluation strategy.  kRotation is the default: rotate the multipole
/// so the translation vector lies along +z, apply the O(p^2) axial
/// translation (the inner azimuthal sum collapses), rotate back — O(p^3)
/// total instead of the O(p^4) dense double loop.  kNaive keeps the dense
/// path for A/B validation and for translation vectors outside the
/// precomputed integer-offset set.
enum class M2LMode { kRotation, kNaive };

/// Construction-time kernel options (see make_kernel overload below).
struct KernelConfig {
  M2LMode m2l_mode = M2LMode::kRotation;
};

/// Interaction kernel: expansion storage sizes plus the operator set.
///
/// A kernel instance is configured once via setup() for a given domain and
/// accuracy, after which all operator methods are const and thread-safe
/// (they are invoked concurrently from runtime tasks).
///
/// Conventions shared by all kernels:
///  - expansions are arrays of complex<double> (CoeffVec),
///  - "level" is the tree level of the box owning the expansion; kernels
///    that are scale-variant (Yukawa) key their per-level tables on it,
///  - intermediate (exponential/plane-wave) expansions are per-direction
///    arrays; directions are the six axes of rotation.hpp,
///  - all *_acc operators accumulate into their output.
class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual std::string name() const = 0;

  /// Prepares per-level tables.  `domain_size` is the edge length of the
  /// root cube; levels run 0..max_level.  `accuracy_digits` selects the
  /// expansion order (3 digits -> p = 9, the paper's configuration).
  virtual void setup(double domain_size, int max_level,
                     int accuracy_digits) = 0;

  /// Expansion lengths in complex doubles.
  virtual std::size_t m_count(int level) const = 0;
  virtual std::size_t l_count(int level) const = 0;
  /// Per-direction intermediate expansion length (0 if unsupported).
  virtual std::size_t x_count(int level) const = 0;

  /// Bytes actually transferred for each expansion kind (kernels exploiting
  /// conjugate symmetry report the packed size, as DASHMM does).
  virtual std::size_t m_wire_bytes(int level) const;
  virtual std::size_t l_wire_bytes(int level) const;
  virtual std::size_t x_wire_bytes(int level) const;

  // --- Wire serialization --------------------------------------------------
  /// Serializes an expansion into exactly *_wire_bytes(level) bytes at
  /// `out` / reconstructs full square-layout storage from the wire bytes.
  /// The defaults copy the raw coefficients; kernels exploiting conjugate
  /// symmetry (Laplace, Yukawa) override with the packed m >= 0 format.
  /// These are the hooks the engine's parcels use, so wire accounting and
  /// wire content agree by construction.
  virtual void pack_m(const CoeffVec& full, int level, std::byte* out) const;
  virtual void unpack_m(std::span<const std::byte> wire, int level,
                        CoeffVec& out) const;
  virtual void pack_l(const CoeffVec& full, int level, std::byte* out) const;
  virtual void unpack_l(std::span<const std::byte> wire, int level,
                        CoeffVec& out) const;
  virtual void pack_x(const CoeffVec& full, int level, std::byte* out) const;
  virtual void unpack_x(std::span<const std::byte> wire, int level,
                        CoeffVec& out) const;

  /// Whether the advanced (M->I -> I->I -> I->L) path is implemented.
  virtual bool supports_merge_and_shift() const { return false; }

  /// M2L strategy switch.  Configuration, not per-call state: set it before
  /// operators run concurrently.  Kernels without a rotation path ignore it.
  M2LMode m2l_mode() const { return m2l_mode_; }
  void set_m2l_mode(M2LMode mode) { m2l_mode_ = mode; }

  /// Potential at `t` due to a unit charge at `s` (the exact kernel).
  virtual double direct(const Vec3& t, const Vec3& s) const = 0;

  /// Gradient support (forces); kernels may return false.
  virtual bool supports_gradient() const { return false; }
  virtual Vec3 direct_grad(const Vec3& t, const Vec3& s) const;

  /// Batched S->T near field over an SoA batch:
  ///   b.phi[i] += sum_j b.sq[j] * direct(t_i, s_j)
  /// (plus accelerations when b.ax/ay/az are set — only meaningful for
  /// kernels with supports_gradient()).  The default loops over direct();
  /// Laplace and Yukawa override with the runtime-dispatched SIMD batch
  /// kernels, which agree with the default to ~1e-12 (tests/kernels).
  virtual void s2t_batch(const simd::P2PBatch& b) const;

  // --- Basic operators -----------------------------------------------------
  virtual void s2m(std::span<const Vec3> pts, std::span<const double> q,
                   const Vec3& center, int level, CoeffVec& out) const = 0;
  virtual void m2m_acc(const CoeffVec& in, const Vec3& from, const Vec3& to,
                       int from_level, CoeffVec& inout) const = 0;
  virtual void m2l_acc(const CoeffVec& in, const Vec3& from, const Vec3& to,
                       int level, CoeffVec& inout) const = 0;
  virtual void s2l_acc(std::span<const Vec3> pts, std::span<const double> q,
                       const Vec3& center, int level, CoeffVec& inout) const = 0;
  virtual double m2t(const CoeffVec& in, const Vec3& center, int level,
                     const Vec3& t) const = 0;
  virtual void l2l_acc(const CoeffVec& in, const Vec3& from, const Vec3& to,
                       int to_level, CoeffVec& inout) const = 0;
  virtual double l2t(const CoeffVec& in, const Vec3& center, int level,
                     const Vec3& t) const = 0;
  virtual Vec3 l2t_grad(const CoeffVec& in, const Vec3& center, int level,
                        const Vec3& t) const;

  // --- Advanced (intermediate-expansion) operators -------------------------
  /// Outgoing plane-wave expansion of a multipole, for one direction.
  virtual void m2i(const CoeffVec& m, int level, Axis d, CoeffVec& out) const;
  /// Diagonal translation of an X expansion by the physical offset
  /// to_center - from_center, accumulated into the receiver.  `level` keys
  /// the quadrature (the target child level for merge/shift chains).
  virtual void i2i_acc(const CoeffVec& in, Axis d, const Vec3& offset,
                       int level, CoeffVec& inout) const;
  /// Conversion of an accumulated incoming X expansion into the box's local
  /// expansion.
  virtual void i2l_acc(const CoeffVec& in, Axis d, int level,
                       CoeffVec& inout) const;

 protected:
  /// Packed conjugate-symmetric wire codec shared by the Laplace and Yukawa
  /// overrides (wire_count(p) complex values; see math/coeffs.hpp).
  static void pack_symmetric(int p, const CoeffVec& full, std::byte* out);
  static void unpack_symmetric(int p, bool condon_phase,
                               std::span<const std::byte> wire, CoeffVec& out);

 private:
  M2LMode m2l_mode_ = M2LMode::kRotation;
};

/// Factory: "laplace", "yukawa" (with screening parameter), or "counting".
std::unique_ptr<Kernel> make_kernel(const std::string& name,
                                    double yukawa_lambda = 1.0);
std::unique_ptr<Kernel> make_kernel(const std::string& name,
                                    const KernelConfig& config,
                                    double yukawa_lambda = 1.0);

}  // namespace amtfmm
