#pragma once

#include <array>

#include "kernels/kernel.hpp"
#include "math/m2l_rotation.hpp"
#include "math/planewave.hpp"

namespace amtfmm {

/// Laplace kernel 1/r: electrostatics / Newtonian gravity (the paper's
/// scale-invariant interaction).
///
/// Multipole/local expansions use the normalized solid harmonics of
/// math/solid.hpp with per-level scale equal to the box size, so all stored
/// coefficients stay O(q).  The intermediate expansions are plane-wave
/// (exponential) expansions on the numerically generated Sommerfeld
/// quadrature of math/planewave.hpp; because 1/r is scale invariant, a
/// single quadrature serves every tree level.
///
/// Operator algebra (derived and verified in tests/math/solid_test.cpp and
/// tests/kernels/laplace_test.cpp); hats denote per-level scaled bases:
///   S2M:  Mh_n^m = sum_s q_s conj(Rh_n^m(s - c))
///   M2M:  Mh'_v^u += sum conj(Rh_{v-n}^{u-m}(t; sp)) (sc/sp)^n Mh_n^m
///   M2L:  Lh_j^k += (-1)^j / s * sum Mh_n^m Sh_{n+j}^{m+k}(t; s)
///   S2L:  Lh_j^k += q (-1)^j Sh_j^k(c - p; s) / s
///   L2L:  Lh'_i^l += (sc/sp)^i sum conj(Rh_{j-i}^{k-l}(u; sp)) Lh_j^k
///   M2I:  W_d(k,j) = (w_k / M_k) sum_n lam_k^n sum_m (-i)^{|m|} e^{im a_j}
///                    rot_d(Mh)_n^m
///   I2I:  diagonal multiply by e^{-mu_k dz'} e^{i lam_k (dx' c + dy' s)}
///   I2L:  Lrot_n^m = sum_k (-lam_k)^n (-i)^{|m|} sum_j W(k,j) e^{im a_j},
///         then rotate back.
class LaplaceKernel final : public Kernel {
 public:
  std::string name() const override { return "laplace"; }
  void setup(double domain_size, int max_level, int accuracy_digits) override;

  std::size_t m_count(int) const override { return sq_count(p_); }
  std::size_t l_count(int) const override { return sq_count(p_); }
  std::size_t x_count(int) const override { return quad_.total; }
  std::size_t m_wire_bytes(int) const override { return wire_bytes(p_); }
  std::size_t l_wire_bytes(int) const override { return wire_bytes(p_); }
  bool supports_merge_and_shift() const override { return true; }

  // Solid-harmonic bases: c_n^{-m} = (-1)^m conj(c_n^m) on the wire.
  void pack_m(const CoeffVec& full, int, std::byte* out) const override {
    pack_symmetric(p_, full, out);
  }
  void unpack_m(std::span<const std::byte> wire, int,
                CoeffVec& out) const override {
    unpack_symmetric(p_, /*condon_phase=*/true, wire, out);
  }
  void pack_l(const CoeffVec& full, int, std::byte* out) const override {
    pack_symmetric(p_, full, out);
  }
  void unpack_l(std::span<const std::byte> wire, int,
                CoeffVec& out) const override {
    unpack_symmetric(p_, /*condon_phase=*/true, wire, out);
  }

  double direct(const Vec3& t, const Vec3& s) const override;
  bool supports_gradient() const override { return true; }
  Vec3 direct_grad(const Vec3& t, const Vec3& s) const override;
  void s2t_batch(const simd::P2PBatch& b) const override {
    simd::p2p_laplace(b);
  }

  void s2m(std::span<const Vec3> pts, std::span<const double> q,
           const Vec3& center, int level, CoeffVec& out) const override;
  void m2m_acc(const CoeffVec& in, const Vec3& from, const Vec3& to,
               int from_level, CoeffVec& inout) const override;
  void m2l_acc(const CoeffVec& in, const Vec3& from, const Vec3& to, int level,
               CoeffVec& inout) const override;
  void s2l_acc(std::span<const Vec3> pts, std::span<const double> q,
               const Vec3& center, int level, CoeffVec& inout) const override;
  double m2t(const CoeffVec& in, const Vec3& center, int level,
             const Vec3& t) const override;
  void l2l_acc(const CoeffVec& in, const Vec3& from, const Vec3& to,
               int to_level, CoeffVec& inout) const override;
  double l2t(const CoeffVec& in, const Vec3& center, int level,
             const Vec3& t) const override;
  Vec3 l2t_grad(const CoeffVec& in, const Vec3& center, int level,
                const Vec3& t) const override;

  void m2i(const CoeffVec& m, int level, Axis d, CoeffVec& out) const override;
  void i2i_acc(const CoeffVec& in, Axis d, const Vec3& offset, int level,
               CoeffVec& inout) const override;
  void i2l_acc(const CoeffVec& in, Axis d, int level,
               CoeffVec& inout) const override;

  int order() const { return p_; }
  const PlaneWaveQuadrature& quadrature() const { return quad_; }

 private:
  double scale(int level) const;
  void m2l_naive(const CoeffVec& in, const Vec3& from, const Vec3& to,
                 int level, CoeffVec& inout) const;
  void m2l_rotated(const M2LDirection& dir, const CoeffVec& in, int level,
                   CoeffVec& inout) const;

  int p_ = 9;
  double domain_size_ = 1.0;
  PlaneWaveQuadrature quad_;
  M2LRotationSet m2l_rot_;
  // Per distance class: F_l = l! / |nu|^{l+1} for l = 0..2p, the axial
  // irregular-solid values (level independent in box units).
  std::vector<std::vector<double>> m2l_axial_;
  std::array<AngularTransform, 6> fwd_;  // indexed by Axis
  std::array<AngularTransform, 6> inv_;
  std::vector<double> g_multipole_;  // S-basis angular weights
  std::vector<double> g_local_;      // conj(R)-basis angular weights
};

}  // namespace amtfmm
