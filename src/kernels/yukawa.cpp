#include "kernels/yukawa.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "kernels/simd/simd.hpp"
#include "math/bessel.hpp"
#include "math/gauss.hpp"
#include "math/special.hpp"
#include "support/error.hpp"
#include "support/scratch_arena.hpp"

namespace amtfmm {
namespace {

cdouble minus_i_pow(int absm) {
  switch (absm & 3) {
    case 0: return {1.0, 0.0};
    case 1: return {0.0, -1.0};
    case 2: return {-1.0, 0.0};
    default: return {0.0, 1.0};
  }
}

constexpr double kTwoOverPi = 2.0 / std::numbers::pi;

}  // namespace

void YukawaKernel::setup(double domain_size, int max_level,
                         int accuracy_digits) {
  AMTFMM_ASSERT(accuracy_digits >= 1 && accuracy_digits <= 8);
  AMTFMM_ASSERT(kappa_ > 0.0);
  domain_size_ = domain_size;
  max_level_ = max_level;
  p_ = 3 * accuracy_digits;
  eps_ = std::pow(10.0, -accuracy_digits - 1);

  quads_.clear();
  inorm_.clear();
  phyp_.clear();
  for (int l = 0; l <= max_level; ++l) {
    const double w = box_size(l);
    const double kt = kappa_ * w;
    quads_.push_back(make_planewave_quadrature(eps_, kt));
    std::vector<double> iv;
    sph_bessel_i(p_, kt, iv);
    inorm_.push_back(iv);
    // Associated Legendre at the hyperbolic argument mu_k / kt, per node.
    const PlaneWaveQuadrature& q = quads_.back();
    std::vector<double> leg;
    const std::size_t stride = tri_index(p_, p_) + 1;
    std::vector<double> tab(static_cast<std::size_t>(q.count) * stride, 0.0);
    for (int k = 0; k < q.count; ++k) {
      legendre_table(p_, q.mu[static_cast<std::size_t>(k)] / kt, leg);
      std::copy(leg.begin(), leg.end(),
                tab.begin() + static_cast<std::size_t>(k) * stride);
    }
    phyp_.push_back(std::move(tab));
  }

  gamma_.assign(sq_count(p_), 0.0);
  g_unit_.assign(sq_count(p_), 1.0);
  for (int n = 0; n <= p_; ++n) {
    for (int m = -n; m <= n; ++m) {
      gamma_[sq_index(n, m)] = (2 * n + 1) *
                               factorial(n - std::abs(m)) /
                               factorial(n + std::abs(m));
    }
  }
  for (std::size_t d = 0; d < kAllAxes.size(); ++d) {
    const Mat3 q = axis_to_z(kAllAxes[d]);
    fwd_[d] = AngularTransform(p_, q);
    inv_[d] = AngularTransform(p_, q.transpose());
  }
  proj_rule_ = SphereRule(2 * p_);
  // Build the projection table now: the translation operators run
  // concurrently from worker threads and must only read it.
  proj_rule_.prepare(p_);

  // Rotation-based M2L: axial translation matrices T^mu_{jn} such that with
  // the translation d zhat (source -> target) the rotated-frame expansions
  // couple as L'_j^k = sum_{n >= |k|} T^{|k|}_{jn} M'_n^k.  Projecting the
  // translated multipole field onto the local angular basis on a sphere of
  // radius r = d/2 collapses (azimuthal orthogonality) to the 1D integral
  //   T^mu_{jn} = norm_j norm_n kappa / (pi i_j(kappa r))
  //               * int_{-1}^{1} k_n(kappa R) P_n^mu(cosTheta) P_j^mu(x) dx,
  // R = sqrt(d^2 + r^2 + 2 d r x), cosTheta = (d + r x) / R.  The integrand
  // is smooth (R >= d/2 > 0), so Gauss-Legendre converges spectrally.
  m2l_rot_ = M2LRotationSet(p_);
  mu_off_.assign(static_cast<std::size_t>(p_) + 2, 0);
  for (int mu = 0; mu <= p_; ++mu) {
    mu_off_[static_cast<std::size_t>(mu) + 1] =
        mu_off_[static_cast<std::size_t>(mu)] +
        static_cast<std::size_t>(p_ + 1 - mu) *
            static_cast<std::size_t>(p_ + 1 - mu);
  }
  const std::size_t tab_size = mu_off_[static_cast<std::size_t>(p_) + 1];
  const Quadrature gl = gauss_legendre(std::max(32, 2 * p_ + 24));
  std::vector<double> iv_r, kv, leg_src, leg_tgt;
  yk_axial_.assign(static_cast<std::size_t>(max_level) + 1, {});
  for (int l = 0; l <= max_level; ++l) {
    const double w = box_size(l);
    const auto& norm = inorm_[static_cast<std::size_t>(l)];
    auto& tables = yk_axial_[static_cast<std::size_t>(l)];
    tables.reserve(m2l_rot_.dist_class_count());
    for (std::size_t c = 0; c < m2l_rot_.dist_class_count(); ++c) {
      const double d = m2l_rot_.dist(static_cast<int>(c)) * w;
      const double r = 0.5 * d;
      sph_bessel_i(p_, kappa_ * r, iv_r);
      std::vector<double> tab(tab_size, 0.0);
      for (std::size_t q = 0; q < gl.x.size(); ++q) {
        const double x = gl.x[q];
        const double big_r = std::sqrt(d * d + r * r + 2.0 * d * r * x);
        const double ct = std::clamp((d + r * x) / big_r, -1.0, 1.0);
        legendre_table(p_, ct, leg_src);
        legendre_table(p_, x, leg_tgt);
        sph_bessel_k(p_, kappa_ * big_r, kv);
        for (int mu = 0; mu <= p_; ++mu) {
          for (int j = mu; j <= p_; ++j) {
            const double tj = gl.w[q] * leg_tgt[tri_index(j, mu)];
            double* row = tab.data() + axial_index(mu, j, mu);
            for (int n = mu; n <= p_; ++n) {
              row[n - mu] += tj * kv[static_cast<std::size_t>(n)] *
                             leg_src[tri_index(n, mu)];
            }
          }
        }
      }
      const double c0 = kappa_ / std::numbers::pi;
      for (int mu = 0; mu <= p_; ++mu) {
        for (int j = mu; j <= p_; ++j) {
          const double fj =
              c0 * norm[static_cast<std::size_t>(j)] / iv_r[static_cast<std::size_t>(j)];
          double* row = tab.data() + axial_index(mu, j, mu);
          for (int n = mu; n <= p_; ++n) {
            row[n - mu] *= fj * norm[static_cast<std::size_t>(n)];
          }
        }
      }
      tables.push_back(std::move(tab));
    }
  }
}

int YukawaKernel::clamped(int level) const {
  if (level < 0) return 0;
  if (level > max_level_) return max_level_;
  return level;
}

double YukawaKernel::box_size(int level) const {
  return domain_size_ / static_cast<double>(1u << clamped(level));
}

const std::vector<double>& YukawaKernel::inorm(int level) const {
  return inorm_[static_cast<std::size_t>(clamped(level))];
}

double YukawaKernel::direct(const Vec3& t, const Vec3& s) const {
  const double r = (t - s).norm();
  return (r > 0.0) ? std::exp(-kappa_ * r) / r : 0.0;
}

void YukawaKernel::s2m(std::span<const Vec3> pts, std::span<const double> q,
                       const Vec3& center, int level, CoeffVec& out) const {
  out.assign(sq_count(p_), cdouble{});
  const auto& norm = inorm(level);
  auto& arena = ScratchArena::local();
  auto ang_lease = arena.coeffs();
  auto iv_lease = arena.reals();
  CoeffVec& ang = *ang_lease;
  std::vector<double>& iv = *iv_lease;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Vec3 u = pts[i] - center;
    angular_basis(p_, u, ang);
    sph_bessel_i(p_, kappa_ * u.norm(), iv);
    for (int n = 0; n <= p_; ++n) {
      const double radial = q[i] * iv[static_cast<std::size_t>(n)] /
                            norm[static_cast<std::size_t>(n)];
      for (int m = -n; m <= n; ++m) {
        out[sq_index(n, m)] +=
            radial * gamma_[sq_index(n, m)] * ang[sq_index(n, -m)];
      }
    }
  }
}

double YukawaKernel::m2t(const CoeffVec& in, const Vec3& center, int level,
                         const Vec3& t) const {
  const auto& norm = inorm(level);
  const Vec3 u = t - center;
  const double r = u.norm();
  AMTFMM_ASSERT(r > 0.0);
  auto& arena = ScratchArena::local();
  auto ang_lease = arena.coeffs();
  auto kv_lease = arena.reals();
  CoeffVec& ang = *ang_lease;
  angular_basis(p_, u, ang);
  std::vector<double>& kv = *kv_lease;
  sph_bessel_k(p_, kappa_ * r, kv);
  cdouble acc{};
  for (int n = 0; n <= p_; ++n) {
    const double radial =
        norm[static_cast<std::size_t>(n)] * kv[static_cast<std::size_t>(n)];
    for (int m = -n; m <= n; ++m) {
      acc += in[sq_index(n, m)] * radial * ang[sq_index(n, m)];
    }
  }
  return kTwoOverPi * kappa_ * acc.real();
}

void YukawaKernel::s2l_acc(std::span<const Vec3> pts,
                           std::span<const double> q, const Vec3& center,
                           int level, CoeffVec& inout) const {
  const auto& norm = inorm(level);
  auto& arena = ScratchArena::local();
  auto ang_lease = arena.coeffs();
  auto kv_lease = arena.reals();
  CoeffVec& ang = *ang_lease;
  std::vector<double>& kv = *kv_lease;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Vec3 d = pts[i] - center;
    const double r = d.norm();
    AMTFMM_ASSERT(r > 0.0);
    angular_basis(p_, d, ang);
    sph_bessel_k(p_, kappa_ * r, kv);
    for (int n = 0; n <= p_; ++n) {
      const double radial = q[i] * kTwoOverPi * kappa_ *
                            norm[static_cast<std::size_t>(n)] *
                            kv[static_cast<std::size_t>(n)];
      for (int m = -n; m <= n; ++m) {
        inout[sq_index(n, m)] += radial * ang[sq_index(n, -m)];
      }
    }
  }
}

double YukawaKernel::l2t(const CoeffVec& in, const Vec3& center, int level,
                         const Vec3& t) const {
  const auto& norm = inorm(level);
  const Vec3 u = t - center;
  auto& arena = ScratchArena::local();
  auto ang_lease = arena.coeffs();
  auto iv_lease = arena.reals();
  CoeffVec& ang = *ang_lease;
  angular_basis(p_, u, ang);
  std::vector<double>& iv = *iv_lease;
  sph_bessel_i(p_, kappa_ * u.norm(), iv);
  cdouble acc{};
  for (int n = 0; n <= p_; ++n) {
    const double radial =
        iv[static_cast<std::size_t>(n)] / norm[static_cast<std::size_t>(n)];
    for (int m = -n; m <= n; ++m) {
      acc += in[sq_index(n, m)] * radial * gamma_[sq_index(n, m)] *
             ang[sq_index(n, m)];
    }
  }
  return acc.real();
}

void YukawaKernel::m2m_acc(const CoeffVec& in, const Vec3& from,
                           const Vec3& to, int from_level,
                           CoeffVec& inout) const {
  // Numeric translation: evaluate the child expansion on a sphere around
  // the parent center, project, and rescale by the parent radial basis.
  const int to_level = from_level - 1;
  const double radius = 1.5 * box_size(to_level);
  auto& arena = ScratchArena::local();
  auto samples_lease = arena.coeffs();
  auto a_lease = arena.coeffs();
  auto kv_lease = arena.reals();
  std::vector<cdouble>& samples = *samples_lease;
  samples.assign(proj_rule_.size(), cdouble{});
  for (std::size_t i = 0; i < proj_rule_.size(); ++i) {
    samples[i] = m2t(in, from, from_level,
                     to + proj_rule_.directions()[i] * radius);
  }
  CoeffVec& a = *a_lease;
  proj_rule_.project(samples, p_, a);
  const auto& norm = inorm(to_level);
  std::vector<double>& kv = *kv_lease;
  sph_bessel_k(p_, kappa_ * radius, kv);
  for (int n = 0; n <= p_; ++n) {
    const double rescale = 1.0 / (kTwoOverPi * kappa_ *
                                  norm[static_cast<std::size_t>(n)] *
                                  kv[static_cast<std::size_t>(n)]);
    for (int m = -n; m <= n; ++m) {
      inout[sq_index(n, m)] += a[sq_index(n, m)] * rescale;
    }
  }
}

void YukawaKernel::m2l_acc(const CoeffVec& in, const Vec3& from,
                           const Vec3& to, int level, CoeffVec& inout) const {
  if (m2l_mode() == M2LMode::kRotation && !yk_axial_.empty()) {
    const M2LDirection* dir = m2l_rot_.find(to - from, box_size(level));
    if (dir != nullptr) {
      m2l_rotated(*dir, in, level, inout);
      return;
    }
  }
  m2l_naive(in, from, to, level, inout);
}

void YukawaKernel::m2l_naive(const CoeffVec& in, const Vec3& from,
                             const Vec3& to, int level, CoeffVec& inout) const {
  const double radius = 0.8 * box_size(level);
  auto& arena = ScratchArena::local();
  auto samples_lease = arena.coeffs();
  auto a_lease = arena.coeffs();
  auto iv_lease = arena.reals();
  std::vector<cdouble>& samples = *samples_lease;
  samples.assign(proj_rule_.size(), cdouble{});
  for (std::size_t i = 0; i < proj_rule_.size(); ++i) {
    samples[i] =
        m2t(in, from, level, to + proj_rule_.directions()[i] * radius);
  }
  CoeffVec& a = *a_lease;
  proj_rule_.project(samples, p_, a);
  const auto& norm = inorm(level);
  std::vector<double>& iv = *iv_lease;
  sph_bessel_i(p_, kappa_ * radius, iv);
  for (int n = 0; n <= p_; ++n) {
    const double rescale =
        norm[static_cast<std::size_t>(n)] / iv[static_cast<std::size_t>(n)];
    for (int m = -n; m <= n; ++m) {
      inout[sq_index(n, m)] +=
          a[sq_index(n, m)] * rescale / gamma_[sq_index(n, m)];
    }
  }
}

void YukawaKernel::m2l_rotated(const M2LDirection& dir, const CoeffVec& in,
                               int level, CoeffVec& inout) const {
  auto& arena = ScratchArena::local();
  auto mrot_lease = arena.coeffs();
  auto lrot_lease = arena.coeffs();
  auto back_lease = arena.coeffs();
  CoeffVec& mrot = *mrot_lease;
  CoeffVec& lrot = *lrot_lease;
  CoeffVec& back = *back_lease;

  m2l_rot_.rotate_forward(dir, in, g_unit_, 1, mrot);
  const std::vector<double>& t = yk_axial_[static_cast<std::size_t>(
      clamped(level))][static_cast<std::size_t>(dir.dist_class)];
  lrot.assign(sq_count(p_), cdouble{});
  // For fixed k the sources M'_n^k are strided across mrot but reused by
  // every j, while each axial-table row is contiguous in n.  Stage the
  // M-column once per k, then each j is one complex-by-real dot.
  auto mcol_lease = arena.coeffs();
  CoeffVec& mcol = *mcol_lease;
  for (int k = -p_; k <= p_; ++k) {
    const int ak = std::abs(k);
    const std::size_t len = static_cast<std::size_t>(p_ - ak + 1);
    mcol.assign(len, cdouble{});
    for (int n = ak; n <= p_; ++n) {
      mcol[static_cast<std::size_t>(n - ak)] = mrot[sq_index(n, k)];
    }
    for (int j = ak; j <= p_; ++j) {
      lrot[sq_index(j, k)] =
          simd::zrdot(mcol.data(), t.data() + axial_index(ak, j, ak), len);
    }
  }
  m2l_rot_.rotate_inverse(dir, lrot, gamma_, 1, back);
  for (std::size_t i = 0; i < back.size(); ++i) inout[i] += back[i];
}

void YukawaKernel::l2l_acc(const CoeffVec& in, const Vec3& from,
                           const Vec3& to, int to_level,
                           CoeffVec& inout) const {
  const double radius = 0.7 * box_size(to_level);
  auto& arena = ScratchArena::local();
  auto samples_lease = arena.coeffs();
  auto a_lease = arena.coeffs();
  auto iv_lease = arena.reals();
  std::vector<cdouble>& samples = *samples_lease;
  samples.assign(proj_rule_.size(), cdouble{});
  for (std::size_t i = 0; i < proj_rule_.size(); ++i) {
    samples[i] = l2t(in, from, to_level - 1,
                     to + proj_rule_.directions()[i] * radius);
  }
  CoeffVec& a = *a_lease;
  proj_rule_.project(samples, p_, a);
  const auto& norm = inorm(to_level);
  std::vector<double>& iv = *iv_lease;
  sph_bessel_i(p_, kappa_ * radius, iv);
  for (int n = 0; n <= p_; ++n) {
    const double rescale =
        norm[static_cast<std::size_t>(n)] / iv[static_cast<std::size_t>(n)];
    for (int m = -n; m <= n; ++m) {
      inout[sq_index(n, m)] +=
          a[sq_index(n, m)] * rescale / gamma_[sq_index(n, m)];
    }
  }
}

void YukawaKernel::m2i(const CoeffVec& m, int level, Axis d,
                       CoeffVec& out) const {
  const int l = clamped(level);
  const PlaneWaveQuadrature& quad = quads_[static_cast<std::size_t>(l)];
  out.assign(quad.total, cdouble{});
  if (quad.count == 0) return;
  // Box-unit discretization -> physical kernel: one 1/box_size overall.
  const double inv_w = 1.0 / box_size(l);
  auto& arena = ScratchArena::local();
  auto mrot_lease = arena.coeffs();
  auto g_lease = arena.coeffs();
  CoeffVec& mrot = *mrot_lease;
  fwd_[static_cast<std::size_t>(d)].apply(m, g_unit_, 1, mrot);
  const auto& norm = inorm(l);
  const std::size_t stride = tri_index(p_, p_) + 1;
  const double* phyp = phyp_[static_cast<std::size_t>(l)].data();
  std::vector<cdouble>& g = *g_lease;
  g.assign(static_cast<std::size_t>(2 * p_ + 1), cdouble{});
  for (int k = 0; k < quad.count; ++k) {
    const double* leg = phyp + static_cast<std::size_t>(k) * stride;
    for (int mm = -p_; mm <= p_; ++mm) {
      const int am = std::abs(mm);
      cdouble acc{};
      for (int n = am; n <= p_; ++n) {
        acc += mrot[sq_index(n, mm)] * norm[static_cast<std::size_t>(n)] *
               leg[tri_index(n, am)];
      }
      g[static_cast<std::size_t>(mm + p_)] = acc * minus_i_pow(am);
    }
    const int mk = quad.m_count[static_cast<std::size_t>(k)];
    const std::size_t off = quad.offset[static_cast<std::size_t>(k)];
    const double wk = inv_w * quad.weight[static_cast<std::size_t>(k)] / mk;
    for (int j = 0; j < mk; ++j) {
      const cdouble e{quad.cos_alpha[off + static_cast<std::size_t>(j)],
                      quad.sin_alpha[off + static_cast<std::size_t>(j)]};
      cdouble acc = g[static_cast<std::size_t>(p_)];
      cdouble ep{1.0, 0.0};
      for (int mm = 1; mm <= p_; ++mm) {
        ep *= e;
        acc += g[static_cast<std::size_t>(p_ + mm)] * ep +
               g[static_cast<std::size_t>(p_ - mm)] * std::conj(ep);
      }
      out[off + static_cast<std::size_t>(j)] = wk * acc;
    }
  }
}

void YukawaKernel::i2i_acc(const CoeffVec& in, Axis d, const Vec3& offset,
                           int level, CoeffVec& inout) const {
  const int l = clamped(level);
  const PlaneWaveQuadrature& quad = quads_[static_cast<std::size_t>(l)];
  if (quad.count == 0) return;
  const double w = box_size(l);
  const Vec3 o = axis_to_z(d) * offset;
  AMTFMM_ASSERT_MSG(o.z / w > -1.01, "I->I translation leaves the cone");
  const double dz = o.z / w, dx = o.x / w, dy = o.y / w;
  for (int k = 0; k < quad.count; ++k) {
    const double lam = quad.lambda[static_cast<std::size_t>(k)];
    const double damp = std::exp(-quad.mu[static_cast<std::size_t>(k)] * dz);
    const int mk = quad.m_count[static_cast<std::size_t>(k)];
    const std::size_t off = quad.offset[static_cast<std::size_t>(k)];
    for (int j = 0; j < mk; ++j) {
      const double phase =
          lam * (dx * quad.cos_alpha[off + static_cast<std::size_t>(j)] +
                 dy * quad.sin_alpha[off + static_cast<std::size_t>(j)]);
      inout[off + static_cast<std::size_t>(j)] +=
          in[off + static_cast<std::size_t>(j)] * damp *
          cdouble{std::cos(phase), std::sin(phase)};
    }
  }
}

void YukawaKernel::i2l_acc(const CoeffVec& in, Axis d, int level,
                           CoeffVec& inout) const {
  const int l = clamped(level);
  const PlaneWaveQuadrature& quad = quads_[static_cast<std::size_t>(l)];
  if (quad.count == 0) return;
  const auto& norm = inorm(l);
  const std::size_t stride = tri_index(p_, p_) + 1;
  const double* phyp = phyp_[static_cast<std::size_t>(l)].data();
  auto& arena = ScratchArena::local();
  auto lrot_lease = arena.coeffs();
  auto f_lease = arena.coeffs();
  auto lback_lease = arena.coeffs();
  CoeffVec& lrot = *lrot_lease;
  lrot.assign(sq_count(p_), cdouble{});
  std::vector<cdouble>& f = *f_lease;
  f.assign(static_cast<std::size_t>(2 * p_ + 1), cdouble{});
  for (int k = 0; k < quad.count; ++k) {
    std::fill(f.begin(), f.end(), cdouble{});
    const int mk = quad.m_count[static_cast<std::size_t>(k)];
    const std::size_t off = quad.offset[static_cast<std::size_t>(k)];
    for (int j = 0; j < mk; ++j) {
      const cdouble wkj = in[off + static_cast<std::size_t>(j)];
      const cdouble e{quad.cos_alpha[off + static_cast<std::size_t>(j)],
                      quad.sin_alpha[off + static_cast<std::size_t>(j)]};
      // F(k, m) = sum_j W(k, j) e^{-i m alpha_j}
      f[static_cast<std::size_t>(p_)] += wkj;
      cdouble ep{1.0, 0.0};
      for (int mm = 1; mm <= p_; ++mm) {
        ep *= std::conj(e);
        f[static_cast<std::size_t>(p_ + mm)] += wkj * ep;
        f[static_cast<std::size_t>(p_ - mm)] += wkj * std::conj(ep);
      }
    }
    const double* leg = phyp + static_cast<std::size_t>(k) * stride;
    for (int n = 0; n <= p_; ++n) {
      const double par = (n & 1) ? -1.0 : 1.0;
      for (int mm = -n; mm <= n; ++mm) {
        const int am = std::abs(mm);
        lrot[sq_index(n, mm)] += par * norm[static_cast<std::size_t>(n)] *
                                 leg[tri_index(n, am)] * minus_i_pow(am) *
                                 f[static_cast<std::size_t>(mm + p_)];
      }
    }
  }
  CoeffVec& lback = *lback_lease;
  inv_[static_cast<std::size_t>(d)].apply(lrot, gamma_, 1, lback);
  for (std::size_t i = 0; i < lback.size(); ++i) inout[i] += lback[i];
}

}  // namespace amtfmm
