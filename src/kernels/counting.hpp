#pragma once

#include "kernels/kernel.hpp"

namespace amtfmm {

/// Structural validation kernel: the "potential" of a unit charge is 1, and
/// every operator is an exact pass-through sum.  A correct tree/list/DAG
/// decomposition therefore delivers exactly sum(q) (= N for unit charges)
/// to every target, with zero approximation error.  Any double-counted or
/// dropped interaction shows up as an integer discrepancy, making this the
/// sharpest possible test of list construction and DAG wiring — at any
/// problem size, independent of floating-point tolerance.
class CountingKernel final : public Kernel {
 public:
  std::string name() const override { return "counting"; }
  void setup(double, int, int) override {}

  std::size_t m_count(int) const override { return 1; }
  std::size_t l_count(int) const override { return 1; }
  std::size_t x_count(int) const override { return 1; }
  bool supports_merge_and_shift() const override { return true; }

  double direct(const Vec3&, const Vec3&) const override { return 1.0; }

  void s2m(std::span<const Vec3> pts, std::span<const double> q, const Vec3&,
           int, CoeffVec& out) const override {
    out.assign(1, cdouble{});
    for (std::size_t i = 0; i < pts.size(); ++i) out[0] += q[i];
  }
  void m2m_acc(const CoeffVec& in, const Vec3&, const Vec3&, int,
               CoeffVec& inout) const override {
    inout[0] += in[0];
  }
  void m2l_acc(const CoeffVec& in, const Vec3&, const Vec3&, int,
               CoeffVec& inout) const override {
    inout[0] += in[0];
  }
  void s2l_acc(std::span<const Vec3> pts, std::span<const double> q,
               const Vec3&, int, CoeffVec& inout) const override {
    for (std::size_t i = 0; i < pts.size(); ++i) inout[0] += q[i];
  }
  double m2t(const CoeffVec& in, const Vec3&, int, const Vec3&) const override {
    return in[0].real();
  }
  void l2l_acc(const CoeffVec& in, const Vec3&, const Vec3&, int,
               CoeffVec& inout) const override {
    inout[0] += in[0];
  }
  double l2t(const CoeffVec& in, const Vec3&, int, const Vec3&) const override {
    return in[0].real();
  }
  void m2i(const CoeffVec& m, int, Axis, CoeffVec& out) const override {
    out.assign(1, m[0]);
  }
  void i2i_acc(const CoeffVec& in, Axis, const Vec3&, int,
               CoeffVec& inout) const override {
    inout[0] += in[0];
  }
  void i2l_acc(const CoeffVec& in, Axis, int, CoeffVec& inout) const override {
    inout[0] += in[0];
  }
};

}  // namespace amtfmm
