#include "kernels/laplace.hpp"

#include <cmath>

#include "kernels/simd/simd.hpp"
#include "math/solid.hpp"
#include "math/special.hpp"
#include "support/error.hpp"
#include "support/scratch_arena.hpp"

namespace amtfmm {
namespace {

/// (-i)^m for signed integer m ((-i)^{-1} = i).  The plane-wave expansion of
/// the conjugated-regular basis carries the signed power (verified
/// numerically; see tests/kernels/kernel_test.cpp).
cdouble minus_i_pow(int m) {
  switch (((m % 4) + 4) & 3) {
    case 0: return {1.0, 0.0};
    case 1: return {0.0, -1.0};
    case 2: return {-1.0, 0.0};
    default: return {0.0, 1.0};
  }
}

}  // namespace

void LaplaceKernel::setup(double domain_size, int max_level,
                          int accuracy_digits) {
  AMTFMM_ASSERT(accuracy_digits >= 1 && accuracy_digits <= 10);
  (void)max_level;
  domain_size_ = domain_size;
  p_ = 3 * accuracy_digits;
  quad_ = make_planewave_quadrature(std::pow(10.0, -accuracy_digits - 1), 0.0);
  g_multipole_.assign(sq_count(p_), 0.0);
  g_local_.assign(sq_count(p_), 0.0);
  for (int n = 0; n <= p_; ++n) {
    for (int m = -n; m <= n; ++m) {
      const double sign = (m < 0 && (m & 1)) ? -1.0 : 1.0;
      g_multipole_[sq_index(n, m)] = sign * factorial(n - std::abs(m));
      g_local_[sq_index(n, m)] = sign / factorial(n + std::abs(m));
    }
  }
  for (std::size_t d = 0; d < kAllAxes.size(); ++d) {
    const Mat3 q = axis_to_z(kAllAxes[d]);
    fwd_[d] = AngularTransform(p_, q);
    inv_[d] = AngularTransform(p_, q.transpose());
  }
  // Rotation-based M2L tables.  The axial irregular solid harmonic
  // Shh_l^0(d zhat; s) = l! (s/d)^{l+1} depends only on d/s = |nu|, so one
  // F table per distance class serves every level.
  m2l_rot_ = M2LRotationSet(p_);
  m2l_axial_.clear();
  for (std::size_t c = 0; c < m2l_rot_.dist_class_count(); ++c) {
    const double dist = m2l_rot_.dist(static_cast<int>(c));
    std::vector<double> f(static_cast<std::size_t>(2 * p_) + 1);
    double inv_dn = 1.0 / dist;  // |nu|^{-(l+1)}
    for (int l = 0; l <= 2 * p_; ++l) {
      f[static_cast<std::size_t>(l)] = factorial(l) * inv_dn;
      inv_dn /= dist;
    }
    m2l_axial_.push_back(std::move(f));
  }
}

double LaplaceKernel::scale(int level) const {
  return domain_size_ / static_cast<double>(1u << level);
}

double LaplaceKernel::direct(const Vec3& t, const Vec3& s) const {
  const double r = (t - s).norm();
  return (r > 0.0) ? 1.0 / r : 0.0;
}

Vec3 LaplaceKernel::direct_grad(const Vec3& t, const Vec3& s) const {
  const Vec3 d = t - s;
  const double r2 = d.norm2();
  if (r2 == 0.0) return {};
  return d * (-1.0 / (r2 * std::sqrt(r2)));
}

void LaplaceKernel::s2m(std::span<const Vec3> pts, std::span<const double> q,
                        const Vec3& center, int level, CoeffVec& out) const {
  out.assign(sq_count(p_), cdouble{});
  const double s = scale(level);
  auto r_lease = ScratchArena::local().coeffs();
  CoeffVec& r = *r_lease;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    regular_solid(p_, pts[i] - center, s, r);
    for (std::size_t j = 0; j < r.size(); ++j) out[j] += q[i] * std::conj(r[j]);
  }
}

void LaplaceKernel::m2m_acc(const CoeffVec& in, const Vec3& from,
                            const Vec3& to, int from_level,
                            CoeffVec& inout) const {
  const double sc = scale(from_level);
  const double sp = scale(from_level - 1);
  auto& arena = ScratchArena::local();
  auto r_lease = arena.coeffs();
  auto ratio_lease = arena.reals();
  CoeffVec& r = *r_lease;
  regular_solid(p_, from - to, sp, r);
  std::vector<double>& ratio = *ratio_lease;
  ratio.assign(static_cast<std::size_t>(p_) + 1, 0.0);
  ratio[0] = 1.0;
  for (int n = 1; n <= p_; ++n) ratio[static_cast<std::size_t>(n)] = ratio[static_cast<std::size_t>(n - 1)] * (sc / sp);
  for (int v = 0; v <= p_; ++v) {
    for (int u = -v; u <= v; ++u) {
      cdouble acc{};
      for (int n = 0; n <= v; ++n) {
        for (int m = std::max(-n, u - (v - n)); m <= std::min(n, u + (v - n));
             ++m) {
          acc += std::conj(r[sq_index(v - n, u - m)]) *
                 ratio[static_cast<std::size_t>(n)] * in[sq_index(n, m)];
        }
      }
      inout[sq_index(v, u)] += acc;
    }
  }
}

void LaplaceKernel::m2l_acc(const CoeffVec& in, const Vec3& from,
                            const Vec3& to, int level, CoeffVec& inout) const {
  if (m2l_mode() == M2LMode::kRotation) {
    const M2LDirection* dir = m2l_rot_.find(to - from, scale(level));
    if (dir != nullptr) {
      m2l_rotated(*dir, in, level, inout);
      return;
    }
  }
  m2l_naive(in, from, to, level, inout);
}

void LaplaceKernel::m2l_naive(const CoeffVec& in, const Vec3& from,
                              const Vec3& to, int level,
                              CoeffVec& inout) const {
  const double s = scale(level);
  auto big_lease = ScratchArena::local().coeffs();
  CoeffVec& big = *big_lease;
  irregular_solid(2 * p_, to - from, s, big);
  const double inv_s = 1.0 / s;
  for (int j = 0; j <= p_; ++j) {
    const double sign = (j & 1) ? -1.0 : 1.0;
    for (int k = -j; k <= j; ++k) {
      cdouble acc{};
      for (int n = 0; n <= p_; ++n) {
        for (int m = -n; m <= n; ++m) {
          acc += in[sq_index(n, m)] * big[sq_index(n + j, m + k)];
        }
      }
      inout[sq_index(j, k)] += sign * inv_s * acc;
    }
  }
}

void LaplaceKernel::m2l_rotated(const M2LDirection& dir, const CoeffVec& in,
                                int level, CoeffVec& inout) const {
  // Point-and-shoot: in the frame where the translation is d*zhat, only the
  // mu = 0 irregular harmonics survive, collapsing the naive double loop to
  //   L'_j^k = (-1)^j / s * sum_{n >= |k|} M'_n^{-k} F_{n+j}.
  auto& arena = ScratchArena::local();
  auto mrot_lease = arena.coeffs();
  auto lrot_lease = arena.coeffs();
  auto back_lease = arena.coeffs();
  CoeffVec& mrot = *mrot_lease;
  CoeffVec& lrot = *lrot_lease;
  CoeffVec& back = *back_lease;

  m2l_rot_.rotate_forward(dir, in, g_multipole_, 1, mrot);
  const std::vector<double>& f = m2l_axial_[static_cast<std::size_t>(
      dir.dist_class)];
  lrot.assign(sq_count(p_), cdouble{});
  const double inv_s = 1.0 / scale(level);
  // For fixed k the sources M'_n^{-k} are strided across mrot but reused by
  // every j, while the F table is contiguous in n.  Stage the M-column once
  // per k, then each j is one complex-by-real dot over f[ak+j .. p+j].
  auto mcol_lease = arena.coeffs();
  CoeffVec& mcol = *mcol_lease;
  for (int k = -p_; k <= p_; ++k) {
    const int ak = std::abs(k);
    const std::size_t len = static_cast<std::size_t>(p_ - ak + 1);
    mcol.assign(len, cdouble{});
    for (int n = ak; n <= p_; ++n) {
      mcol[static_cast<std::size_t>(n - ak)] = mrot[sq_index(n, -k)];
    }
    for (int j = ak; j <= p_; ++j) {
      const cdouble acc =
          simd::zrdot(mcol.data(), f.data() + ak + j, len);
      lrot[sq_index(j, k)] = ((j & 1) ? -inv_s : inv_s) * acc;
    }
  }
  m2l_rot_.rotate_inverse(dir, lrot, g_local_, -1, back);
  for (std::size_t i = 0; i < back.size(); ++i) inout[i] += back[i];
}

void LaplaceKernel::s2l_acc(std::span<const Vec3> pts,
                            std::span<const double> q, const Vec3& center,
                            int level, CoeffVec& inout) const {
  const double s = scale(level);
  auto shat_lease = ScratchArena::local().coeffs();
  CoeffVec& shat = *shat_lease;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    irregular_solid(p_, center - pts[i], s, shat);
    for (int j = 0; j <= p_; ++j) {
      const double f = q[i] * ((j & 1) ? -1.0 : 1.0) / s;
      for (int k = -j; k <= j; ++k) {
        inout[sq_index(j, k)] += f * shat[sq_index(j, k)];
      }
    }
  }
}

double LaplaceKernel::m2t(const CoeffVec& in, const Vec3& center, int level,
                          const Vec3& t) const {
  return eval_irregular(p_, in, t - center, scale(level));
}

void LaplaceKernel::l2l_acc(const CoeffVec& in, const Vec3& from,
                            const Vec3& to, int to_level,
                            CoeffVec& inout) const {
  const double sc = scale(to_level);
  const double sp = scale(to_level - 1);
  auto& arena = ScratchArena::local();
  auto r_lease = arena.coeffs();
  auto ratio_lease = arena.reals();
  CoeffVec& r = *r_lease;
  regular_solid(p_, to - from, sp, r);
  std::vector<double>& ratio = *ratio_lease;
  ratio.assign(static_cast<std::size_t>(p_) + 1, 0.0);
  ratio[0] = 1.0;
  for (int i = 1; i <= p_; ++i) ratio[static_cast<std::size_t>(i)] = ratio[static_cast<std::size_t>(i - 1)] * (sc / sp);
  for (int i = 0; i <= p_; ++i) {
    for (int l = -i; l <= i; ++l) {
      cdouble acc{};
      for (int j = i; j <= p_; ++j) {
        for (int k = std::max(-j, l - (j - i)); k <= std::min(j, l + (j - i));
             ++k) {
          acc += std::conj(r[sq_index(j - i, k - l)]) * in[sq_index(j, k)];
        }
      }
      inout[sq_index(i, l)] += ratio[static_cast<std::size_t>(i)] * acc;
    }
  }
}

double LaplaceKernel::l2t(const CoeffVec& in, const Vec3& center, int level,
                          const Vec3& t) const {
  return eval_conj_regular(p_, in, t - center, scale(level));
}

Vec3 LaplaceKernel::l2t_grad(const CoeffVec& in, const Vec3& center, int level,
                             const Vec3& t) const {
  return grad_conj_regular(p_, in, t - center, scale(level));
}

void LaplaceKernel::m2i(const CoeffVec& m, int level, Axis d,
                        CoeffVec& out) const {
  // The Sommerfeld identity is discretized in box units; converting the
  // 1/r-dimensioned kernel back to physical units costs one 1/box_size.
  const double inv_w = 1.0 / scale(level);
  out.assign(quad_.total, cdouble{});
  auto& arena = ScratchArena::local();
  auto mrot_lease = arena.coeffs();
  auto g_lease = arena.coeffs();
  CoeffVec& mrot = *mrot_lease;
  fwd_[static_cast<std::size_t>(d)].apply(m, g_multipole_, 1, mrot);
  // G(k, mm) = sum_{n >= |mm|} lam_k^n Mrot_n^mm
  const int s = quad_.count;
  std::vector<cdouble>& g = *g_lease;
  g.assign(static_cast<std::size_t>(2 * p_ + 1), cdouble{});
  for (int k = 0; k < s; ++k) {
    const double lam = quad_.lambda[static_cast<std::size_t>(k)];
    for (int mm = -p_; mm <= p_; ++mm) {
      cdouble acc{};
      double ln = std::pow(lam, std::abs(mm));
      for (int n = std::abs(mm); n <= p_; ++n) {
        acc += ln * mrot[sq_index(n, mm)];
        ln *= lam;
      }
      g[static_cast<std::size_t>(mm + p_)] = acc * minus_i_pow(mm);
    }
    const int mk = quad_.m_count[static_cast<std::size_t>(k)];
    const std::size_t off = quad_.offset[static_cast<std::size_t>(k)];
    const double wk = inv_w * quad_.weight[static_cast<std::size_t>(k)] / mk;
    for (int j = 0; j < mk; ++j) {
      const cdouble e{quad_.cos_alpha[off + static_cast<std::size_t>(j)],
                      quad_.sin_alpha[off + static_cast<std::size_t>(j)]};
      // sum_m g_m e^{i m alpha_j} via incremental powers
      cdouble acc = g[static_cast<std::size_t>(p_)];
      cdouble ep{1.0, 0.0};
      for (int mm = 1; mm <= p_; ++mm) {
        ep *= e;
        acc += g[static_cast<std::size_t>(p_ + mm)] * ep +
               g[static_cast<std::size_t>(p_ - mm)] * std::conj(ep);
      }
      out[off + static_cast<std::size_t>(j)] = wk * acc;
    }
  }
}

void LaplaceKernel::i2i_acc(const CoeffVec& in, Axis d, const Vec3& offset,
                            int level, CoeffVec& inout) const {
  const double w = scale(level);
  const Vec3 o = axis_to_z(d) * offset;  // rotated-frame offset
  // Merge legs ascend the cone; the parent->child shift leg may step back
  // by up to half a (parent) box.  The composed source->target translation
  // always lands in the valid z in [1,4] range.
  AMTFMM_ASSERT_MSG(o.z / w > -1.01, "I->I translation leaves the cone");
  const double dz = o.z / w, dx = o.x / w, dy = o.y / w;
  for (int k = 0; k < quad_.count; ++k) {
    const double lam = quad_.lambda[static_cast<std::size_t>(k)];
    const double damp = std::exp(-quad_.mu[static_cast<std::size_t>(k)] * dz);
    const int mk = quad_.m_count[static_cast<std::size_t>(k)];
    const std::size_t off = quad_.offset[static_cast<std::size_t>(k)];
    for (int j = 0; j < mk; ++j) {
      const double phase =
          lam * (dx * quad_.cos_alpha[off + static_cast<std::size_t>(j)] +
                 dy * quad_.sin_alpha[off + static_cast<std::size_t>(j)]);
      inout[off + static_cast<std::size_t>(j)] +=
          in[off + static_cast<std::size_t>(j)] * damp *
          cdouble{std::cos(phase), std::sin(phase)};
    }
  }
}

void LaplaceKernel::i2l_acc(const CoeffVec& in, Axis d, int level,
                            CoeffVec& inout) const {
  (void)level;
  // F(k, m) = sum_j W(k,j) e^{i m alpha_j}; Lrot_n^m = sum_k (-lam)^n
  // (-i)^{|m|} F(k, m); then rotate back into the unrotated local frame.
  auto& arena = ScratchArena::local();
  auto lrot_lease = arena.coeffs();
  auto f_lease = arena.coeffs();
  auto lback_lease = arena.coeffs();
  CoeffVec& lrot = *lrot_lease;
  lrot.assign(sq_count(p_), cdouble{});
  std::vector<cdouble>& f = *f_lease;
  f.assign(static_cast<std::size_t>(2 * p_ + 1), cdouble{});
  for (int k = 0; k < quad_.count; ++k) {
    std::fill(f.begin(), f.end(), cdouble{});
    const int mk = quad_.m_count[static_cast<std::size_t>(k)];
    const std::size_t off = quad_.offset[static_cast<std::size_t>(k)];
    for (int j = 0; j < mk; ++j) {
      const cdouble wkj = in[off + static_cast<std::size_t>(j)];
      const cdouble e{quad_.cos_alpha[off + static_cast<std::size_t>(j)],
                      quad_.sin_alpha[off + static_cast<std::size_t>(j)]};
      f[static_cast<std::size_t>(p_)] += wkj;
      cdouble ep{1.0, 0.0};
      for (int mm = 1; mm <= p_; ++mm) {
        ep *= e;
        f[static_cast<std::size_t>(p_ + mm)] += wkj * ep;
        f[static_cast<std::size_t>(p_ - mm)] += wkj * std::conj(ep);
      }
    }
    const double lam = quad_.lambda[static_cast<std::size_t>(k)];
    for (int n = 0; n <= p_; ++n) {
      const double radial = std::pow(-lam, n);
      for (int mm = -n; mm <= n; ++mm) {
        lrot[sq_index(n, mm)] += radial * minus_i_pow(mm) *
                                 f[static_cast<std::size_t>(mm + p_)];
      }
    }
  }
  CoeffVec& lback = *lback_lease;
  inv_[static_cast<std::size_t>(d)].apply(lrot, g_local_, -1, lback);
  for (std::size_t i = 0; i < lback.size(); ++i) inout[i] += lback[i];
}

}  // namespace amtfmm
