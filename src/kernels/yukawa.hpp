#pragma once

#include <array>

#include "kernels/kernel.hpp"
#include "math/m2l_rotation.hpp"
#include "math/planewave.hpp"
#include "math/sphere.hpp"

namespace amtfmm {

/// Yukawa (screened Coulomb) kernel e^{-lambda r}/r — the paper's
/// scale-variant interaction with heavier per-operator grain size.
///
/// Expansions follow Greengard & Huang (2002): multipole expansions in the
/// singular radial functions k_n(kappa r), local expansions in the regular
/// i_n(kappa r), both rescaled per tree level by i_n(kappa w_l) so stored
/// coefficients stay O(q) at every depth.  Because kappa * box_size changes
/// with depth, the plane-wave quadrature — and hence the intermediate
/// expansion length — is level dependent, exactly the paper's observation
/// that "the length of the intermediate expansion depends on the depth in
/// the hierarchy".
///
/// M2M / M2L / L2L translations are generated numerically: the translated
/// expansion is evaluated on a sphere around the new center and projected
/// back onto the angular basis (exact for the truncated expansion up to
/// quadrature aliasing; see DESIGN.md).  This sidesteps the Gegenbauer/3j
/// recurrences while preserving the operator's accuracy and its heavier
/// cost relative to Laplace (Table II of the paper).
///
/// M2I / I2L use the analytic continuation of the Gegenbauer plane-wave
/// expansion: A_n^m evaluated at the complex direction
/// (-i lam cos a, -i lam sin a, mu)/kappa, which reduces to associated
/// Legendre functions at real argument mu/kappa > 1.
class YukawaKernel final : public Kernel {
 public:
  explicit YukawaKernel(double lambda) : kappa_(lambda) {}

  std::string name() const override { return "yukawa"; }
  void setup(double domain_size, int max_level, int accuracy_digits) override;

  std::size_t m_count(int) const override { return sq_count(p_); }
  std::size_t l_count(int) const override { return sq_count(p_); }
  std::size_t x_count(int level) const override {
    if (quads_.empty()) return 0;  // not set up yet
    return quads_[static_cast<std::size_t>(clamped(level))].total;
  }
  std::size_t m_wire_bytes(int) const override { return wire_bytes(p_); }
  std::size_t l_wire_bytes(int) const override { return wire_bytes(p_); }
  bool supports_merge_and_shift() const override { return true; }

  // Gamma-weighted angular bases: c_n^{-m} = conj(c_n^m) on the wire.
  void pack_m(const CoeffVec& full, int, std::byte* out) const override {
    pack_symmetric(p_, full, out);
  }
  void unpack_m(std::span<const std::byte> wire, int,
                CoeffVec& out) const override {
    unpack_symmetric(p_, /*condon_phase=*/false, wire, out);
  }
  void pack_l(const CoeffVec& full, int, std::byte* out) const override {
    pack_symmetric(p_, full, out);
  }
  void unpack_l(std::span<const std::byte> wire, int,
                CoeffVec& out) const override {
    unpack_symmetric(p_, /*condon_phase=*/false, wire, out);
  }

  double direct(const Vec3& t, const Vec3& s) const override;
  void s2t_batch(const simd::P2PBatch& b) const override {
    simd::p2p_yukawa(b, kappa_);
  }

  void s2m(std::span<const Vec3> pts, std::span<const double> q,
           const Vec3& center, int level, CoeffVec& out) const override;
  void m2m_acc(const CoeffVec& in, const Vec3& from, const Vec3& to,
               int from_level, CoeffVec& inout) const override;
  void m2l_acc(const CoeffVec& in, const Vec3& from, const Vec3& to, int level,
               CoeffVec& inout) const override;
  void s2l_acc(std::span<const Vec3> pts, std::span<const double> q,
               const Vec3& center, int level, CoeffVec& inout) const override;
  double m2t(const CoeffVec& in, const Vec3& center, int level,
             const Vec3& t) const override;
  void l2l_acc(const CoeffVec& in, const Vec3& from, const Vec3& to,
               int to_level, CoeffVec& inout) const override;
  double l2t(const CoeffVec& in, const Vec3& center, int level,
             const Vec3& t) const override;

  void m2i(const CoeffVec& m, int level, Axis d, CoeffVec& out) const override;
  void i2i_acc(const CoeffVec& in, Axis d, const Vec3& offset, int level,
               CoeffVec& inout) const override;
  void i2l_acc(const CoeffVec& in, Axis d, int level,
               CoeffVec& inout) const override;

  int order() const { return p_; }
  double lambda() const { return kappa_; }

 private:
  int clamped(int level) const;
  double box_size(int level) const;
  /// i_n(kappa * w_level) table for the level.
  const std::vector<double>& inorm(int level) const;
  void m2l_naive(const CoeffVec& in, const Vec3& from, const Vec3& to,
                 int level, CoeffVec& inout) const;
  void m2l_rotated(const M2LDirection& dir, const CoeffVec& in, int level,
                   CoeffVec& inout) const;
  /// Packed index of T^mu_{jn} inside a per-(level, dist) axial table.
  std::size_t axial_index(int mu, int j, int n) const {
    return mu_off_[static_cast<std::size_t>(mu)] +
           static_cast<std::size_t>(j - mu) *
               static_cast<std::size_t>(p_ + 1 - mu) +
           static_cast<std::size_t>(n - mu);
  }

  double kappa_;
  int p_ = 9;
  double domain_size_ = 1.0;
  int max_level_ = 0;
  double eps_ = 1e-4;
  std::vector<PlaneWaveQuadrature> quads_;       // per level
  std::vector<std::vector<double>> inorm_;       // per level: i_n(kappa w)
  std::vector<std::vector<double>> phyp_;        // per level: P_n^m(mu_k/kt), k-major
  std::vector<double> gamma_;                    // (2n+1)(n-|m|)!/(n+|m|)!
  std::array<AngularTransform, 6> fwd_;
  std::array<AngularTransform, 6> inv_;
  std::vector<double> g_unit_;   // all-ones basis weight (multipole basis)
  SphereRule proj_rule_{1};      // projection rule for numeric translations
  M2LRotationSet m2l_rot_;
  // Axial M2L translation matrices T^mu_{jn}, one packed table per
  // (level, distance class); kappa * box_size varies with depth so the
  // tables cannot be shared across levels as in the Laplace kernel.
  std::vector<std::vector<std::vector<double>>> yk_axial_;
  std::vector<std::size_t> mu_off_;  // packed offsets: sum_{a<mu} (p+1-a)^2
};

}  // namespace amtfmm
