// amtfmm_serve: resident FMM-as-a-service driver.
//
// Stands up one EvalPipeline and evaluates it for many epochs on the SAME
// tree + DAG + GAS/LCO arena: epoch 1 pays the build + instantiate cost,
// every later epoch re-arms the arena in place.  Runs either in-process
// (ThreadExecutor, --localities x --cores) or as one SPMD rank of a
// socket world under tools/amtfmm_launch (net_config_from_env, exactly
// like amtfmm_loopback).  The driver measures and checks:
//
//   1. steady state is allocation-free: gas_allocs_last_epoch() == 0 for
//      every epoch >= 2 (hard failure otherwise);
//   2. epoch-2 setup cost (arena re-arm) is a small fraction of the
//      epoch-1 build (reported as reset_ratio; gated by
//      scripts/check_bench_serve.py at 5%);
//   3. repeat evaluations agree with epoch 1 at 1e-12 relative, and (in
//      process) with a fresh one-shot Evaluator AND the DES simulation's
//      wire bytes exactly;
//   4. request batching demuxes correctly: every per-request slice of a
//      batched epoch matches the combined potentials.
//
// Steady-state throughput (evals/s) and latency (p50/p99) go to --json as
// a BENCH row: "serve_inproc" or "serve_net" (rank 0 only).

#include <algorithm>
#include <cinttypes>
#include <numeric>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <span>
#include <thread>

#include "core/pipeline.hpp"
#include "geom/distributions.hpp"
#include "runtime/flight_recorder.hpp"
#include "runtime/net/net_executor.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/watchdog.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace amtfmm;

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto k = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(v.size())));
  return v[std::min(k == 0 ? 0 : k - 1, v.size() - 1)];
}

double max_rel_err(std::span<const double> a, std::span<const double> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]) / std::max(1.0, std::abs(b[i])));
  }
  return m;
}

int run(int argc, char** argv) {
  Cli cli(
      "Resident FMM-as-a-service driver: steady-state epochs on one "
      "pipeline.\n  amtfmm_serve --n=8000 --epochs=8 --json=BENCH.json\n"
      "  amtfmm_launch --np=2 -- amtfmm_serve --n=8000 --epochs=6");
  cli.add_flag("n", std::int64_t{8000}, "source and target count");
  cli.add_flag("distribution", std::string("cube"),
               "point distribution (cube | sphere | plummer)");
  cli.add_flag("kernel", std::string("laplace"), "kernel name");
  cli.add_flag("digits", std::int64_t{3}, "accuracy digits");
  cli.add_flag("threshold", std::int64_t{60}, "refinement threshold");
  cli.add_flag("localities", std::int64_t{2},
               "in-process localities (ignored under a socket world)");
  cli.add_flag("cores", std::int64_t{2}, "worker threads per locality/rank");
  cli.add_flag("epochs", std::int64_t{8}, "total evaluation epochs (>= 2)");
  cli.add_flag("batch", std::int64_t{4},
               "independent target-query sets in the batched epoch");
  cli.add_flag("coalesce", true, "enable parcel coalescing");
  cli.add_flag("seed", std::int64_t{1}, "problem seed (identical on all ranks)");
  cli.add_flag("json", std::string(""),
               "BENCH_serve row output path (rank 0; empty = off)");
  cli.add_flag("telemetry", std::string(""),
               "live-metrics dir: every rank samples its counters, rank 0 "
               "aggregates into DIR/telemetry.json for amtfmm_top (empty = "
               "off)");
  cli.add_flag("telemetry-interval", 0.25,
               "seconds between telemetry samples");
  cli.add_flag("watchdog", 0.0,
               "serve-epoch watchdog timeout in seconds (0 = off); a "
               "stalled epoch dumps the flight recorder");
  cli.add_flag("stall", 0.0,
               "inject an artificial stall of this many seconds before the "
               "final epoch (exercises the watchdog)");
  cli.parse(argc, argv);

  net::NetConfig ncfg;  // standalone default: world of one
  bool net_mode = false;
  if (auto env = net::net_config_from_env()) {
    ncfg = *env;
    net_mode = ncfg.world > 1;
  }

  const auto n = static_cast<std::size_t>(cli.i64("n"));
  const auto seed = static_cast<std::uint64_t>(cli.i64("seed"));
  const int epochs = std::max(2, static_cast<int>(cli.i64("epochs")));
  const Distribution dist = parse_distribution(cli.str("distribution"));

  Rng rs(seed), rt(seed + 1), rq(seed + 2);
  const auto sources = generate_points(dist, n, rs);
  const auto targets = generate_points(dist, n, rt);
  const auto charges = generate_charges(n, rq);

  EvalConfig cfg;
  cfg.digits = static_cast<int>(cli.i64("digits"));
  cfg.threshold = static_cast<int>(cli.i64("threshold"));
  cfg.localities = static_cast<int>(cli.i64("localities"));
  cfg.cores_per_locality = static_cast<int>(cli.i64("cores"));
  cfg.coalesce.enabled = cli.flag("coalesce");
  cfg.counters = true;

  auto kernel = make_kernel(cli.str("kernel"));
  kernel->set_m2l_mode(cfg.m2l_mode);

  std::unique_ptr<net::NetExecutor> nex;
  std::unique_ptr<EvalPipeline> pipeline;
  if (net_mode) {
    nex = std::make_unique<net::NetExecutor>(
        ncfg, cfg.cores_per_locality, cfg.coalesce);
    pipeline = std::make_unique<EvalPipeline>(*kernel, cfg, sources, targets,
                                              *nex);
  } else {
    pipeline =
        std::make_unique<EvalPipeline>(*kernel, cfg, sources, targets);
  }
  const std::uint32_t rank = net_mode ? nex->rank() : 0;
  const std::uint32_t world = net_mode ? nex->world() : 1;
  Executor& ex = pipeline->executor();

  // Flight recorder: always on in serve mode.  Workers stream their last
  // few thousand events into per-worker rings (one relaxed load + branch
  // when nothing else is enabled); a fatal signal, a net-failure teardown,
  // or the epoch watchdog dumps them as a Chrome trace for post-mortems.
  const std::string tel_dir = cli.str("telemetry");
  std::string flight_dir = tel_dir;
  if (flight_dir.empty()) {
    const char* net_dir = std::getenv("AMTFMM_NET_DIR");
    flight_dir = net_dir != nullptr ? net_dir : ".";
  }
  FlightRecorder flight(ex.total_workers());
  flight.set_dump_path(flight_dir + "/flight." + std::to_string(rank) +
                       ".json");
  flight.set_meta(rank, cfg.cores_per_locality, ex.trace_clock());
  ex.trace().set_flight(&flight);
  flight_install_crash_handler();

  // Live telemetry: every rank runs a sampler shipping window deltas of
  // its CounterRegistry; rank 0 aggregates all ranks (its own sampler
  // feeds the aggregator directly, peers arrive over the transport's
  // telemetry side channel) into an atomically-replaced snapshot file
  // that amtfmm_top polls.
  std::unique_ptr<TelemetryAggregator> aggregator;
  std::unique_ptr<TelemetrySampler> sampler;
  if (!tel_dir.empty()) {
    if (rank == 0) {
      aggregator = std::make_unique<TelemetryAggregator>(
          world, tel_dir + "/telemetry.json");
      if (net_mode) {
        TelemetryAggregator* agg = aggregator.get();
        nex->set_on_telemetry(
            [agg](std::uint32_t, std::vector<std::byte>&& payload) {
              agg->enqueue(std::string(
                  reinterpret_cast<const char*>(payload.data()),
                  payload.size()));
            });
      }
    }
    TelemetrySampler::ShipFn ship;
    if (rank == 0) {
      TelemetryAggregator* agg = aggregator.get();
      ship = [agg](std::string&& s) { agg->enqueue(std::move(s)); };
    } else {
      net::NetExecutor* x = nex.get();
      ship = [x](std::string&& s) {
        x->post_telemetry(
            0, std::span<const std::byte>(
                   reinterpret_cast<const std::byte*>(s.data()), s.size()));
      };
    }
    sampler = std::make_unique<TelemetrySampler>(
        ex.counters(), rank, cli.f64("telemetry-interval"), std::move(ship));
  }

  // Epoch watchdog: armed around every evaluation; an epoch that goes
  // `--watchdog` seconds without completing dumps the flight recorder —
  // a wedged drain leaves an artifact instead of a silent hang.
  std::unique_ptr<Watchdog> watchdog;
  if (cli.f64("watchdog") > 0.0) {
    watchdog = std::make_unique<Watchdog>(
        cli.f64("watchdog"), [rank](double stalled_s) {
          std::fprintf(stderr,
                       "SERVE WATCHDOG: rank %u epoch stalled %.2f s, "
                       "dumping flight recorder\n",
                       rank, stalled_s);
          flight_dump_all("serve epoch watchdog");
        });
  }

  // Epoch 1: instantiates the resident arena (build cost is separate —
  // pipeline.setup_seconds() — so epoch 1's latency is instantiate+run).
  if (watchdog) watchdog->arm();
  Timer t1;
  const EvalResult first = pipeline->evaluate(charges);
  const double epoch1_s = t1.seconds() + pipeline->setup_seconds();
  if (watchdog) watchdog->beat();

  // Steady state: epochs 2..E re-arm in place.
  std::vector<double> lat;
  double reset_s = 0.0;
  std::uint64_t steady_allocs = 0;
  double repeat_rel = 0.0;
  std::uint64_t wire = first.wire_bytes;
  bool ok = true;
  for (int e = 2; e <= epochs; ++e) {
    if (e == epochs && cli.f64("stall") > 0.0) {
      // Injected stall: the epoch is armed but makes no progress, so the
      // watchdog (if configured) must fire and leave a flight dump.
      std::this_thread::sleep_for(std::chrono::duration<double>(
          cli.f64("stall")));
    }
    Timer te;
    const EvalResult r = pipeline->evaluate(charges);
    lat.push_back(te.seconds());
    if (watchdog) watchdog->beat();
    if (e == 2) reset_s = pipeline->last_reset_seconds();
    steady_allocs += pipeline->gas_allocs_last_epoch();
    repeat_rel =
        std::max(repeat_rel, max_rel_err(r.potentials, first.potentials));
    if (r.wire_bytes != wire) {
      std::fprintf(stderr,
                   "SERVE FAIL: rank %u epoch %d wire_bytes %" PRIu64
                   " != epoch-1 %" PRIu64 "\n",
                   rank, e, r.wire_bytes, wire);
      ok = false;
    }
  }
  if (watchdog) watchdog->disarm();
  if (steady_allocs != 0) {
    std::fprintf(stderr,
                 "SERVE FAIL: rank %u steady state allocated %" PRIu64
                 " GAS objects (want 0)\n",
                 rank, steady_allocs);
    ok = false;
  }
  if (repeat_rel > 1e-12) {
    std::fprintf(stderr,
                 "SERVE FAIL: rank %u repeat epochs drift from epoch 1 "
                 "(max rel err %.3e > 1e-12)\n",
                 rank, repeat_rel);
    ok = false;
  }

  // Batched epoch: many independent target-query sets, one traversal.
  const auto nreq = static_cast<std::size_t>(cli.i64("batch"));
  std::vector<EvalRequest> requests(nreq);
  Rng rr(seed + 3);
  for (std::size_t r = 0; r < nreq; ++r) {
    const std::size_t len = 1 + rr.below(std::max<std::size_t>(n / 4, 1));
    requests[r].targets.reserve(len);
    for (std::size_t j = 0; j < len; ++j) {
      requests[r].targets.push_back(static_cast<std::uint32_t>(rr.below(n)));
    }
  }
  const BatchEvalResult batch = pipeline->evaluate_batch(charges, requests);
  for (std::size_t r = 0; r < nreq && ok; ++r) {
    for (std::size_t j = 0; j < requests[r].targets.size(); ++j) {
      if (batch.per_request[r][j] !=
          batch.combined.potentials[requests[r].targets[j]]) {
        std::fprintf(stderr, "SERVE FAIL: rank %u batch demux mismatch\n",
                     rank);
        ok = false;
        break;
      }
    }
  }

  // Fresh-build parity: a brand-new one-shot evaluation of the identical
  // problem must match the multi-epoch resident answer at 1e-12 — and in
  // process, the DES simulation's wire bytes must match exactly.
  double fresh_rel = 0.0;
  Evaluator fresh_eval(make_kernel(cli.str("kernel")), cfg);
  if (net_mode) {
    const EvalResult fresh =
        fresh_eval.evaluate_distributed(*nex, sources, charges, targets);
    fresh_rel = max_rel_err(first.potentials, fresh.potentials);
  } else {
    const EvalResult fresh = fresh_eval.evaluate(sources, charges, targets);
    fresh_rel = max_rel_err(first.potentials, fresh.potentials);
    SimConfig scfg;
    scfg.localities = cfg.localities;
    scfg.cores_per_locality = cfg.cores_per_locality;
    scfg.coalesce = cfg.coalesce;
    const SimResult sim = fresh_eval.simulate(sources, targets, scfg);
    if (fresh.wire_bytes != wire || sim.wire_bytes != wire) {
      std::fprintf(stderr,
                   "SERVE FAIL: wire bytes disagree: resident %" PRIu64
                   ", fresh %" PRIu64 ", sim %" PRIu64 "\n",
                   wire, fresh.wire_bytes, sim.wire_bytes);
      ok = false;
    }
  }
  if (fresh_rel > 1e-12) {
    std::fprintf(stderr,
                 "SERVE FAIL: rank %u resident vs fresh-build parity "
                 "(max rel err %.3e > 1e-12)\n",
                 rank, fresh_rel);
    ok = false;
  }
  // Orderly telemetry teardown: the local sampler's final flush must land
  // before the transport callback is cleared, so the aggregator strictly
  // outlives any frame the progress thread may still deliver.
  if (sampler) sampler->stop();
  if (aggregator) {
    if (net_mode) nex->set_on_telemetry(nullptr);
    aggregator->stop();
  }
  if (watchdog && watchdog->fired() && cli.f64("stall") <= 0.0) {
    std::fprintf(stderr,
                 "SERVE FAIL: rank %u watchdog fired without an injected "
                 "stall\n", rank);
    ok = false;
  }
  if (!ok) return 1;

  const double steady_sum =
      std::accumulate(lat.begin(), lat.end(), 0.0);
  const double evals_per_s =
      steady_sum > 0.0 ? static_cast<double>(lat.size()) / steady_sum : 0.0;
  const double p50 = percentile(lat, 0.50);
  const double p99 = percentile(lat, 0.99);
  std::size_t gas_objects = 0;
  for (std::uint32_t l = 0; l < static_cast<std::uint32_t>(
                                    pipeline->executor().num_localities());
       ++l) {
    gas_objects += pipeline->gas_objects_on(l);
  }

  if (rank == 0) {
    std::printf("SERVE OK %s world=%u n=%zu epochs=%d setup=%.3fs "
                "reset=%.1fus ratio=%.5f evals/s=%.2f p50=%.1fms p99=%.1fms "
                "gas_hw=%zu wire=%" PRIu64 "\n",
                net_mode ? "net" : "inproc", world, n, epochs,
                pipeline->setup_seconds(), reset_s * 1e6,
                epoch1_s > 0.0 ? reset_s / epoch1_s : 0.0, evals_per_s,
                p50 * 1e3, p99 * 1e3, gas_objects, wire);
    if (!cli.str("json").empty()) {
      JsonWriter w;
      w.begin_array();
      w.begin_object();
      w.kv("name", net_mode ? std::string("serve_net")
                            : std::string("serve_inproc"));
      w.kv("n", static_cast<std::uint64_t>(n));
      w.kv("world", world);
      w.kv("localities",
           static_cast<std::uint64_t>(pipeline->executor().num_localities()));
      w.kv("cores", static_cast<std::uint64_t>(cfg.cores_per_locality));
      w.kv("epochs", static_cast<std::uint64_t>(epochs));
      w.kv("epoch1_s", epoch1_s);
      w.kv("setup_s", pipeline->setup_seconds());
      w.kv("reset_s", reset_s);
      w.kv("reset_ratio", epoch1_s > 0.0 ? reset_s / epoch1_s : 0.0);
      w.kv("evals_per_s", evals_per_s);
      w.kv("p50_s", p50);
      w.kv("p99_s", p99);
      w.kv("gas_allocs_steady", steady_allocs);
      w.kv("gas_objects_hw", static_cast<std::uint64_t>(gas_objects));
      w.kv("repeat_rel_err", repeat_rel);
      w.kv("fresh_rel_err", fresh_rel);
      w.kv("wire_bytes", wire);
      w.kv("batch_requests", static_cast<std::uint64_t>(nreq));
      w.end_object();
      w.end_array();
      if (!w.write_file(cli.str("json"))) {
        std::fprintf(stderr, "SERVE FAIL: cannot write %s\n",
                     cli.str("json").c_str());
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amtfmm_serve: %s\n", e.what());
    return 1;
  }
}
