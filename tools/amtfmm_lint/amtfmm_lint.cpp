// amtfmm_lint: AST-level concurrency/robustness invariant analyzer.
//
// Re-implements the seven regex rules of scripts/lint_invariants.py on the
// Clang AST (no false matches inside strings/comments, sees through
// typedefs and using-declarations) and adds four checks a regex cannot
// express:
//
//   wire-trivially-copyable  wire structs (WireRecord, ExpansionPayload,
//                            the parcel headers) must be trivially
//                            copyable — they are memcpy-(de)serialized.
//   payload-pointer          no pointer/reference member anywhere in a
//                            wire struct, recursively through nested
//                            records and arrays (addresses die on the
//                            wire).
//   task-blocking-call       no blocking call (sleep, explicit .lock(),
//                            socket syscall, wall-clock read) directly in
//                            a task-body lambda bound to amtfmm::Task::fn
//                            or passed to Executor::spawn/send — tasks
//                            must stay non-blocking so workers never
//                            wedge.  Non-transitive: only the lambda body
//                            itself is scanned.
//   lock-across-send         no scoped capability guard (SyncLockGuard /
//                            SyncUniqueLock / MaybeLockGuard) live across
//                            a NetTransport post_* / broadcast_control or
//                            a coalescer flush take_* call — the send can
//                            block on backpressure and the flush takes
//                            per-buffer locks, so holding a runtime mutex
//                            across either risks deadlock.  A guard
//                            released with .unlock() stops counting until
//                            .lock()ed again.
//
// Escape hatches mirror the regex linter (`// thread-ok:`, `// relaxed-ok:`,
// `// rand-ok:`, `// simd-ok:`, `// net-ok:`, `// time-ok:`) plus
// `// blocking-ok:` and `// lock-across-send-ok:` for the new checks, on
// the flagged line or up to two lines above.
//
// Usage:
//   amtfmm_lint -p build [file...]            # empty file list = every
//                                             # src/ TU in the compile DB
//   amtfmm_lint --repo-root <dir> ...         # default: cwd
//   amtfmm_lint --all-files --main-only ...   # fixture-test mode
//   amtfmm_lint --fix-notes <path> ...        # write suggested escapes
//
// Exit status: 0 clean, 1 violations, 2 tool/compile failure.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"
#include "llvm/Support/raw_ostream.h"

namespace {

llvm::cl::OptionCategory kCategory("amtfmm_lint options");
llvm::cl::opt<std::string> kRepoRoot(
    "repo-root", llvm::cl::desc("Repository root (default: cwd)"),
    llvm::cl::init(""), llvm::cl::cat(kCategory));
llvm::cl::opt<std::string> kFixNotes(
    "fix-notes",
    llvm::cl::desc("Write a notes file with one suggested escape-comment "
                   "insertion per violation"),
    llvm::cl::init(""), llvm::cl::cat(kCategory));
llvm::cl::opt<bool> kAllFiles(
    "all-files",
    llvm::cl::desc("Lint every file under the repo root, not just src/ "
                   "(used by the fixture tests)"),
    llvm::cl::init(false), llvm::cl::cat(kCategory));
llvm::cl::opt<bool> kMainOnly(
    "main-only",
    llvm::cl::desc("Report only diagnostics in each TU's main file "
                   "(used by the fixture tests)"),
    llvm::cl::init(false), llvm::cl::cat(kCategory));

struct Violation {
  std::string file;  // repo-relative
  unsigned line = 0;
  std::string check;
  std::string message;
  std::string escape_tag;  // empty when the violation has no escape hatch

  bool operator<(const Violation& o) const {
    return std::tie(file, line, check, message) <
           std::tie(o.file, o.line, o.check, o.message);
  }
};

// Zone / exemption tables, mirroring scripts/lint_invariants.py.  The
// regex linter's doc header is the canonical statement of each rule.
const char* kThreadZones[] = {"src/runtime/", "src/rtcheck/"};
const char* kSimdZones[] = {"src/kernels/simd/"};
const char* kNetZones[] = {"src/runtime/net/"};
const char* kRelaxedExemptFiles[] = {
    "src/runtime/counters.hpp",     "src/runtime/counters.cpp",
    "src/runtime/ws_deque.hpp",     "src/runtime/sync_hook.hpp",
    "src/runtime/net/transport.cpp", "src/runtime/net/net_executor.cpp",
};
const char* kRelaxedExemptDirs[] = {"src/rtcheck/"};
const char* kWallclockFiles[] = {"src/runtime/trace.cpp",
                                 "src/runtime/telemetry.cpp"};
const char* kWireStructs[] = {"WireRecord", "ExpansionPayload",
                              "ParcelHeader", "SectionHeader",
                              "ContribHeader"};
const char* kSocketFns[] = {"socket",     "connect",    "bind",
                            "listen",     "accept",     "accept4",
                            "recv",       "send",       "sendmsg",
                            "recvmsg",    "setsockopt", "getsockopt",
                            "getsockname", "shutdown"};
const char* kSleepFns[] = {"sleep", "usleep", "nanosleep"};
const char* kSendFamily[] = {
    "amtfmm::net::NetTransport::post_batch",
    "amtfmm::net::NetTransport::post_control",
    "amtfmm::net::NetTransport::broadcast_control",
    "amtfmm::net::NetTransport::post_telemetry",
    "amtfmm::ParcelCoalescer::take_expired_from",
    "amtfmm::ParcelCoalescer::take_all_from",
};
const char* kScopedGuards[] = {"SyncLockGuard", "SyncUniqueLock",
                               "MaybeLockGuard"};

template <std::size_t N>
bool contains(const char* const (&arr)[N], llvm::StringRef s) {
  for (const char* a : arr) {
    if (s == a) return true;
  }
  return false;
}

template <std::size_t N>
bool startsWithAny(llvm::StringRef s, const char* const (&arr)[N]) {
  for (const char* a : arr) {
    if (s.startswith(a)) return true;
  }
  return false;
}

/// Shared across TUs: collects violations, deduplicates header re-parses.
class Linter {
 public:
  explicit Linter(std::string repo_root) : root_(std::move(repo_root)) {}

  const std::string& root() const { return root_; }

  void add(Violation v) { violations_.insert(std::move(v)); }

  int finish() {
    std::vector<Violation> all(violations_.begin(), violations_.end());
    if (!kFixNotes.empty()) {
      std::error_code ec;
      llvm::raw_fd_ostream notes(kFixNotes, ec);
      if (ec) {
        llvm::errs() << "amtfmm_lint: cannot write " << kFixNotes << ": "
                     << ec.message() << "\n";
        return 2;
      }
      for (const Violation& v : all) {
        notes << v.file << ":" << v.line << ": [" << v.check << "] "
              << v.message << "\n";
        if (!v.escape_tag.empty()) {
          notes << "    suggested (only if reviewed as safe): append "
                << "'// " << v.escape_tag << ": <reason>'\n";
        } else {
          notes << "    no escape hatch: the struct/code must be fixed\n";
        }
      }
    }
    if (all.empty()) {
      llvm::outs() << "amtfmm_lint: clean\n";
      return 0;
    }
    llvm::outs() << "amtfmm_lint: " << all.size() << " violation(s)\n";
    for (const Violation& v : all) {
      llvm::outs() << "  " << v.file << ":" << v.line << ": [" << v.check
                   << "] " << v.message << "\n";
    }
    return 1;
  }

 private:
  std::string root_;
  std::set<Violation> violations_;
};

class Visitor : public clang::RecursiveASTVisitor<Visitor> {
 public:
  Visitor(Linter& linter, clang::ASTContext& ctx)
      : linter_(linter), ctx_(ctx), sm_(ctx.getSourceManager()) {}

  // ---- rule 1: threading primitives confined to src/runtime|rtcheck ----

  bool VisitVarDecl(clang::VarDecl* vd) {
    checkThreadPrimitive(vd->getType(), vd->getBeginLoc());
    checkRandomDevice(vd->getType(), vd->getBeginLoc());
    checkSimdType(vd->getType(), vd->getBeginLoc());
    return true;
  }

  bool VisitFieldDecl(clang::FieldDecl* fd) {
    checkThreadPrimitive(fd->getType(), fd->getBeginLoc());
    checkRandomDevice(fd->getType(), fd->getBeginLoc());
    return true;
  }

  // ---- rule 2: memory_order_relaxed needs a justification comment ----

  bool VisitDeclRefExpr(clang::DeclRefExpr* dre) {
    const clang::NamedDecl* d = dre->getDecl();
    llvm::StringRef name = d->getName();
    bool relaxed = false;
    if (name == "memory_order_relaxed" && d->isInStdNamespace()) {
      relaxed = true;  // C++17 inline variable spelling
    } else if (name == "relaxed") {
      if (const auto* ec = llvm::dyn_cast<clang::EnumConstantDecl>(d)) {
        const auto* en =
            llvm::dyn_cast<clang::EnumDecl>(ec->getDeclContext());
        if (en && en->getName() == "memory_order") relaxed = true;
      }
    }
    if (!relaxed) return true;
    std::string rel;
    unsigned line = 0;
    if (!locate(dre->getBeginLoc(), rel, line)) return true;
    if (rel == "src/support/thread_annotations.hpp") return true;
    if (contains(kRelaxedExemptFiles, rel) ||
        startsWithAny(rel, kRelaxedExemptDirs)) {
      return true;  // reviewed-default files; reasons in lint_invariants.py
    }
    if (hasEscape(dre->getBeginLoc(), "relaxed-ok")) return true;
    report(rel, line, "relaxed-justification",
           "memory_order_relaxed without a '// relaxed-ok: <reason>' "
           "comment",
           "relaxed-ok");
    return true;
  }

  // ---- rules 4/6/7 + SIMD builtins: call-site checks ----

  bool VisitCallExpr(clang::CallExpr* ce) {
    const clang::FunctionDecl* callee = ce->getDirectCallee();
    if (callee == nullptr) return true;
    std::string rel;
    unsigned line = 0;
    if (!locate(ce->getBeginLoc(), rel, line)) return true;
    llvm::StringRef name = callee->getName();
    const std::string qual = callee->getQualifiedNameAsString();

    if (isGlobalC(callee) && (name == "rand" || name == "srand")) {
      if (!hasEscape(ce->getBeginLoc(), "rand-ok")) {
        report(rel, line, "seeded-random",
               "unseeded randomness (" + name.str() +
                   "); use an explicit seed or add '// rand-ok: <reason>'",
               "rand-ok");
      }
    }
    if (!startsWithAny(rel, kNetZones) && isGlobalC(callee) &&
        contains(kSocketFns, name)) {
      if (!hasEscape(ce->getBeginLoc(), "net-ok")) {
        report(rel, line, "net-confinement",
               "raw socket call ::" + name.str() +
                   " outside src/runtime/net/ (go through NetTransport, "
                   "or add '// net-ok: <reason>')",
               "net-ok");
      }
    }
    if (isWallClockCall(callee, qual) &&
        !contains(kWallclockFiles, llvm::StringRef(rel))) {
      if (!hasEscape(ce->getBeginLoc(), "time-ok")) {
        report(rel, line, "wallclock-confinement",
               "wall-clock time source outside the trace/telemetry layer "
               "(use the steady clock, or add '// time-ok: <reason>')",
               "time-ok");
      }
    }
    if (!startsWithAny(rel, kSimdZones) &&
        (name.startswith("_mm") || name == "__builtin_cpu_supports")) {
      if (!hasEscape(ce->getBeginLoc(), "simd-ok")) {
        report(rel, line, "simd-confinement",
               "vector intrinsic " + name.str() +
                   " outside src/kernels/simd/ (call the amtfmm::simd "
                   "API, or add '// simd-ok: <reason>')",
               "simd-ok");
      }
    }
    return true;
  }

  // ---- wire structs: trivially copyable, no pointers anywhere ----

  bool VisitCXXRecordDecl(clang::CXXRecordDecl* rd) {
    if (!rd->isThisDeclarationADefinition()) return true;
    if (!contains(kWireStructs, rd->getName())) return true;
    std::string rel;
    unsigned line = 0;
    if (!locate(rd->getBeginLoc(), rel, line)) return true;
    const clang::QualType qt = ctx_.getRecordType(rd);
    if (!qt.isTriviallyCopyableType(ctx_)) {
      report(rel, line, "wire-trivially-copyable",
             "wire struct " + rd->getNameAsString() +
                 " is not trivially copyable; it is memcpy-(de)serialized "
                 "and shipped between localities",
             "");
    }
    checkNoPointers(rd, rd, rel);
    return true;
  }

  // ---- task-body lambdas: Task::fn assignment / Executor::spawn ----

  bool VisitCXXOperatorCallExpr(clang::CXXOperatorCallExpr* oc) {
    // t.fn = <lambda> where fn is std::function: operator= call.
    if (oc->getOperator() != clang::OO_Equal || oc->getNumArgs() < 2) {
      return true;
    }
    if (isTaskFnMember(oc->getArg(0))) scanLambdasIn(oc->getArg(1));
    return true;
  }

  bool VisitBinaryOperator(clang::BinaryOperator* bo) {
    // Plain-aggregate spelling of the same assignment.
    if (!bo->isAssignmentOp()) return true;
    if (isTaskFnMember(bo->getLHS())) scanLambdasIn(bo->getRHS());
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* mc) {
    const clang::CXXMethodDecl* md = mc->getMethodDecl();
    if (md == nullptr) return true;
    llvm::StringRef name = md->getName();
    if ((name == "spawn" || name == "send" || name == "submit") &&
        isExecutorClass(md->getParent())) {
      for (const clang::Expr* arg : mc->arguments()) scanLambdasIn(arg);
    }
    return true;
  }

  // ---- lock-across-send: scope-tracked guard liveness ----

  bool VisitFunctionDecl(clang::FunctionDecl* fd) {
    if (!fd->doesThisDeclarationHaveABody()) return true;
    std::string rel;
    unsigned line = 0;
    if (!locate(fd->getBeginLoc(), rel, line)) return true;
    std::vector<Guard> held;
    scanGuards(fd->getBody(), held);
    return true;
  }

 private:
  struct Guard {
    const clang::VarDecl* var = nullptr;
    bool active = true;
  };

  // -- helpers --------------------------------------------------------

  /// Resolves `loc` to a repo-relative path + line; false when the file
  /// is outside the repo (system headers) or outside the linted set.
  bool locate(clang::SourceLocation loc, std::string& rel, unsigned& line) {
    const clang::SourceLocation ex = sm_.getExpansionLoc(loc);
    if (ex.isInvalid()) return false;
    if (kMainOnly && !sm_.isInMainFile(ex)) return false;
    llvm::StringRef file = sm_.getFilename(ex);
    if (file.empty()) return false;
    llvm::SmallString<256> abs(file);
    if (llvm::sys::fs::make_absolute(abs)) return false;
    llvm::sys::path::remove_dots(abs, /*remove_dot_dot=*/true);
    llvm::StringRef a(abs);
    if (!a.startswith(linter_.root())) return false;
    a = a.drop_front(linter_.root().size());
    a.consume_front("/");
    if (!kAllFiles && !a.startswith("src/")) return false;
    rel = a.str();
    line = sm_.getExpansionLineNumber(ex);
    return true;
  }

  /// True when `// <tag>:` appears on the line of `loc` or within the
  /// two lines above (the regex linter's escape convention).
  bool hasEscape(clang::SourceLocation loc, llvm::StringRef tag) {
    const clang::SourceLocation ex = sm_.getExpansionLoc(loc);
    const clang::FileID fid = sm_.getFileID(ex);
    const unsigned line = sm_.getExpansionLineNumber(ex);
    const std::vector<llvm::StringRef>& lines = fileLines(fid);
    const std::string needle = "// " + tag.str() + ":";
    for (unsigned ln = line >= 2 ? line - 2 : 1; ln <= line; ++ln) {
      if (ln == 0 || ln > lines.size()) continue;
      if (lines[ln - 1].contains(needle)) return true;
    }
    return false;
  }

  const std::vector<llvm::StringRef>& fileLines(clang::FileID fid) {
    auto it = line_cache_.find(fid);
    if (it != line_cache_.end()) return it->second;
    std::vector<llvm::StringRef>& lines = line_cache_[fid];
    bool invalid = false;
    llvm::StringRef buf = sm_.getBufferData(fid, &invalid);
    if (!invalid) buf.split(lines, '\n');
    return lines;
  }

  void report(const std::string& rel, unsigned line,
              const std::string& check, const std::string& message,
              const std::string& escape_tag) {
    linter_.add(Violation{rel, line, check, message, escape_tag});
  }

  static bool isGlobalC(const clang::FunctionDecl* fd) {
    return fd->isExternC() ||
           fd->getDeclContext()->getRedeclContext()->isTranslationUnit();
  }

  static bool isWallClockCall(const clang::FunctionDecl* callee,
                              const std::string& qual) {
    if (qual.find("system_clock") != std::string::npos &&
        callee->getName() == "now") {
      return true;
    }
    if (!isGlobalC(callee)) return false;
    llvm::StringRef name = callee->getName();
    return name == "gettimeofday" || name == "time";
  }

  void checkThreadPrimitive(clang::QualType t, clang::SourceLocation loc) {
    const clang::CXXRecordDecl* rd =
        t.getCanonicalType()->getAsCXXRecordDecl();
    if (rd == nullptr || !rd->isInStdNamespace()) return;
    llvm::StringRef n = rd->getName();
    static const char* kPrimitives[] = {
        "thread",       "jthread",     "mutex",
        "recursive_mutex", "shared_mutex", "timed_mutex",
        "condition_variable", "condition_variable_any"};
    if (!contains(kPrimitives, n)) return;
    std::string rel;
    unsigned line = 0;
    if (!locate(loc, rel, line)) return;
    if (startsWithAny(rel, kThreadZones)) return;
    if (rel == "src/support/thread_annotations.hpp") return;
    if (hasEscape(loc, "thread-ok")) return;
    report(rel, line, "thread-confinement",
           "std::" + n.str() +
               " outside src/runtime/ (use the Executor / SyncMutex "
               "layer, or add '// thread-ok: <reason>')",
           "thread-ok");
  }

  void checkRandomDevice(clang::QualType t, clang::SourceLocation loc) {
    const clang::CXXRecordDecl* rd =
        t.getCanonicalType()->getAsCXXRecordDecl();
    if (rd == nullptr || !rd->isInStdNamespace() ||
        rd->getName() != "random_device") {
      return;
    }
    std::string rel;
    unsigned line = 0;
    if (!locate(loc, rel, line)) return;
    if (hasEscape(loc, "rand-ok")) return;
    report(rel, line, "seeded-random",
           "std::random_device; use an explicit seed or add "
           "'// rand-ok: <reason>'",
           "rand-ok");
  }

  void checkSimdType(clang::QualType t, clang::SourceLocation loc) {
    const std::string s = t.getCanonicalType().getAsString();
    if (s.find("__m128") == std::string::npos &&
        s.find("__m256") == std::string::npos &&
        s.find("__m512") == std::string::npos) {
      return;
    }
    std::string rel;
    unsigned line = 0;
    if (!locate(loc, rel, line)) return;
    if (startsWithAny(rel, kSimdZones)) return;
    if (hasEscape(loc, "simd-ok")) return;
    report(rel, line, "simd-confinement",
           "vector register type outside src/kernels/simd/ (call the "
           "amtfmm::simd API, or add '// simd-ok: <reason>')",
           "simd-ok");
  }

  void checkNoPointers(const clang::CXXRecordDecl* top,
                       const clang::CXXRecordDecl* rd,
                       const std::string& rel) {
    if (rd == nullptr || !rd->hasDefinition()) return;
    for (const clang::FieldDecl* f : rd->getDefinition()->fields()) {
      clang::QualType t = f->getType().getCanonicalType();
      while (const clang::ArrayType* at = ctx_.getAsArrayType(t)) {
        t = at->getElementType().getCanonicalType();
      }
      if (t->isPointerType() || t->isReferenceType() ||
          t->isMemberPointerType()) {
        report(rel, sm_.getExpansionLineNumber(
                        sm_.getExpansionLoc(f->getBeginLoc())),
               "payload-pointer",
               "pointer/reference member '" + f->getNameAsString() +
                   "' reachable from wire struct " +
                   top->getNameAsString() +
                   " (addresses do not survive the wire)",
               "");
        continue;
      }
      if (const clang::CXXRecordDecl* sub = t->getAsCXXRecordDecl()) {
        if (!sub->isInStdNamespace()) checkNoPointers(top, sub, rel);
      }
    }
  }

  bool isTaskFnMember(const clang::Expr* e) {
    const auto* me =
        llvm::dyn_cast<clang::MemberExpr>(e->IgnoreParenImpCasts());
    if (me == nullptr) return false;
    const auto* fd = llvm::dyn_cast<clang::FieldDecl>(me->getMemberDecl());
    if (fd == nullptr || fd->getName() != "fn") return false;
    const clang::RecordDecl* rd = fd->getParent();
    return rd != nullptr &&
           rd->getQualifiedNameAsString() == "amtfmm::Task";
  }

  static bool isExecutorClass(const clang::CXXRecordDecl* rd) {
    if (rd == nullptr) return false;
    if (rd->getQualifiedNameAsString() == "amtfmm::Executor") return true;
    if (!rd->hasDefinition()) return false;
    for (const clang::CXXBaseSpecifier& b : rd->bases()) {
      if (isExecutorClass(b.getType()->getAsCXXRecordDecl())) return true;
    }
    return false;
  }

  /// Finds every LambdaExpr syntactically inside `e` (through implicit
  /// std::function conversions) and scans its body for blocking calls.
  void scanLambdasIn(const clang::Expr* e) {
    if (e == nullptr) return;
    struct Collector : clang::RecursiveASTVisitor<Collector> {
      std::vector<const clang::LambdaExpr*> found;
      bool VisitLambdaExpr(clang::LambdaExpr* le) {
        found.push_back(le);
        return true;
      }
    } c;
    c.TraverseStmt(const_cast<clang::Expr*>(e));
    for (const clang::LambdaExpr* le : c.found) {
      scanBlocking(le->getBody());
    }
  }

  void scanBlocking(const clang::Stmt* s) {
    if (s == nullptr) return;
    if (const auto* mc = llvm::dyn_cast<clang::CXXMemberCallExpr>(s)) {
      const clang::CXXMethodDecl* md = mc->getMethodDecl();
      if (md != nullptr) {
        llvm::StringRef n = md->getName();
        if (n == "lock" || n == "try_lock") {
          // Explicit mutex acquisition in a task body: blocking, and
          // invisible to the executor's progress guarantees.
          reportBlocking(mc->getBeginLoc(), "explicit ." + n.str() + "()");
        }
      }
    }
    if (const auto* ce = llvm::dyn_cast<clang::CallExpr>(s)) {
      const clang::FunctionDecl* callee = ce->getDirectCallee();
      if (callee != nullptr) {
        llvm::StringRef n = callee->getName();
        const std::string qual = callee->getQualifiedNameAsString();
        if (n == "sleep_for" || n == "sleep_until" ||
            (isGlobalC(callee) && contains(kSleepFns, n))) {
          reportBlocking(ce->getBeginLoc(), "sleep (" + n.str() + ")");
        } else if (isGlobalC(callee) && contains(kSocketFns, n)) {
          reportBlocking(ce->getBeginLoc(),
                         "socket syscall ::" + n.str() + "()");
        } else if (isWallClockCall(callee, qual)) {
          reportBlocking(ce->getBeginLoc(),
                         "wall-clock read (" + n.str() + ")");
        }
      }
    }
    // Nested lambdas inside a task body are their own (deferred) bodies,
    // not part of this task's execution — do not descend into them.
    if (llvm::isa<clang::LambdaExpr>(s)) return;
    for (const clang::Stmt* c : s->children()) scanBlocking(c);
  }

  void reportBlocking(clang::SourceLocation loc, const std::string& what) {
    std::string rel;
    unsigned line = 0;
    if (!locate(loc, rel, line)) return;
    if (hasEscape(loc, "blocking-ok")) return;
    report(rel, line, "task-blocking-call",
           what +
               " inside a task-body lambda (tasks must not block a "
               "worker; add '// blocking-ok: <reason>' if reviewed)",
           "blocking-ok");
  }

  bool isScopedGuardType(clang::QualType t) {
    const clang::CXXRecordDecl* rd =
        t.getCanonicalType()->getAsCXXRecordDecl();
    return rd != nullptr && contains(kScopedGuards, rd->getName());
  }

  static const clang::VarDecl* guardVarOf(
      const clang::CXXMemberCallExpr* mc) {
    const clang::Expr* obj = mc->getImplicitObjectArgument();
    if (obj == nullptr) return nullptr;
    const auto* dre =
        llvm::dyn_cast<clang::DeclRefExpr>(obj->IgnoreParenImpCasts());
    if (dre == nullptr) return nullptr;
    return llvm::dyn_cast<clang::VarDecl>(dre->getDecl());
  }

  void scanGuards(const clang::Stmt* s, std::vector<Guard>& held) {
    if (s == nullptr) return;
    if (const auto* cs = llvm::dyn_cast<clang::CompoundStmt>(s)) {
      const std::size_t mark = held.size();
      for (const clang::Stmt* c : cs->body()) scanGuards(c, held);
      held.resize(mark);  // guards die with their scope
      return;
    }
    if (const auto* ds = llvm::dyn_cast<clang::DeclStmt>(s)) {
      for (const clang::Decl* d : ds->decls()) {
        if (const auto* vd = llvm::dyn_cast<clang::VarDecl>(d)) {
          if (isScopedGuardType(vd->getType())) held.push_back(Guard{vd});
        }
      }
      return;
    }
    if (const auto* mc = llvm::dyn_cast<clang::CXXMemberCallExpr>(s)) {
      const clang::CXXMethodDecl* md = mc->getMethodDecl();
      const clang::VarDecl* gv = guardVarOf(mc);
      if (md != nullptr && gv != nullptr) {
        llvm::StringRef n = md->getName();
        for (Guard& g : held) {
          if (g.var != gv) continue;
          if (n == "unlock") g.active = false;
          if (n == "lock") g.active = true;
        }
      }
    }
    if (const auto* ce = llvm::dyn_cast<clang::CallExpr>(s)) {
      const clang::FunctionDecl* callee = ce->getDirectCallee();
      if (callee != nullptr &&
          contains(kSendFamily,
                   llvm::StringRef(callee->getQualifiedNameAsString()))) {
        const bool any_active =
            std::any_of(held.begin(), held.end(),
                        [](const Guard& g) { return g.active; });
        if (any_active) {
          std::string rel;
          unsigned line = 0;
          if (locate(ce->getBeginLoc(), rel, line) &&
              !hasEscape(ce->getBeginLoc(), "lock-across-send-ok")) {
            report(rel, line, "lock-across-send",
                   "call to " + callee->getQualifiedNameAsString() +
                       " with a scoped capability guard still held "
                       "(the send can block on backpressure; release "
                       "the lock first, or add "
                       "'// lock-across-send-ok: <reason>')",
                   "lock-across-send-ok");
          }
        }
      }
    }
    for (const clang::Stmt* c : s->children()) scanGuards(c, held);
  }

  Linter& linter_;
  clang::ASTContext& ctx_;
  clang::SourceManager& sm_;
  std::map<clang::FileID, std::vector<llvm::StringRef>> line_cache_;
};

class LintConsumer : public clang::ASTConsumer {
 public:
  explicit LintConsumer(Linter& linter) : linter_(linter) {}
  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    Visitor v(linter_, ctx);
    v.TraverseDecl(ctx.getTranslationUnitDecl());
  }

 private:
  Linter& linter_;
};

class LintAction : public clang::ASTFrontendAction {
 public:
  explicit LintAction(Linter& linter) : linter_(linter) {}
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance&, llvm::StringRef) override {
    return std::make_unique<LintConsumer>(linter_);
  }

 private:
  Linter& linter_;
};

class LintFactory : public clang::tooling::FrontendActionFactory {
 public:
  explicit LintFactory(Linter& linter) : linter_(linter) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<LintAction>(linter_);
  }

 private:
  Linter& linter_;
};

}  // namespace

int main(int argc, const char** argv) {
  auto expected_parser = clang::tooling::CommonOptionsParser::create(
      argc, argv, kCategory, llvm::cl::ZeroOrMore);
  if (!expected_parser) {
    llvm::errs() << llvm::toString(expected_parser.takeError());
    return 2;
  }
  clang::tooling::CommonOptionsParser& opts = *expected_parser;

  llvm::SmallString<256> root(kRepoRoot.empty() ? "." : kRepoRoot.c_str());
  if (llvm::sys::fs::make_absolute(root)) {
    llvm::errs() << "amtfmm_lint: cannot resolve repo root\n";
    return 2;
  }
  llvm::sys::path::remove_dots(root, /*remove_dot_dot=*/true);

  std::vector<std::string> sources = opts.getSourcePathList();
  if (sources.empty()) {
    // No explicit sources: lint every repo src/ TU in the compile DB.
    for (const std::string& f : opts.getCompilations().getAllFiles()) {
      llvm::StringRef fr(f);
      if (!fr.startswith(root)) continue;
      llvm::StringRef rel = fr.drop_front(root.size());
      rel.consume_front("/");
      if (rel.startswith("src/")) sources.push_back(f);
    }
    if (sources.empty()) {
      llvm::errs() << "amtfmm_lint: no src/ files in the compilation "
                      "database under "
                   << root << "\n";
      return 2;
    }
  }

  Linter linter(std::string(root));
  clang::tooling::ClangTool tool(opts.getCompilations(), sources);
  LintFactory factory(linter);
  if (tool.run(&factory) != 0) {
    llvm::errs() << "amtfmm_lint: one or more TUs failed to parse\n";
    return 2;
  }
  return linter.finish();
}
