#!/usr/bin/env python3
"""Fixture-test driver for amtfmm_lint.

Each fixture TU under fixtures/ seeds deliberate invariant violations and
marks every line that must be diagnosed with an `// expect-lint: <check>`
comment (comma-separated for multiple checks on one line).  The driver
runs amtfmm_lint on each fixture in isolation (--all-files so paths
outside src/ are linted, --main-only so repo headers cannot add noise)
and requires the produced (line, check) set to equal the expected set
exactly — a stray diagnostic fails the fixture just as hard as a missed
one, so the suite pins both detection and precision.

Exit status: 0 when every fixture matches, 1 otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")
DIAG_RE = re.compile(r"^\s*(\S+):(\d+): \[([a-z-]+)\]")


def expected_of(path: pathlib.Path) -> set[tuple[int, str]]:
    out: set[tuple[int, str]] = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = EXPECT_RE.search(line)
        if m:
            for check in m.group(1).split(","):
                out.add((lineno, check.strip()))
    return out


def actual_of(lint_bin: str, repo_root: str, fixture: pathlib.Path,
              verbose: bool) -> set[tuple[int, str]]:
    cmd = [
        lint_bin,
        f"--repo-root={repo_root}",
        "--all-files",
        "--main-only",
        str(fixture),
        "--",
        "-std=c++20",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode == 2:
        print(f"FAIL {fixture.name}: tool error (exit 2)")
        print(proc.stderr)
        raise SystemExit(1)
    if verbose and proc.stdout:
        sys.stdout.write(proc.stdout)
    out: set[tuple[int, str]] = set()
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            out.add((int(m.group(2)), m.group(3)))
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--lint-bin", required=True)
    ap.add_argument("--fixtures", required=True)
    ap.add_argument("--repo-root", required=True)
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()

    fixtures = sorted(pathlib.Path(args.fixtures).glob("fixture_*.cpp"))
    if not fixtures:
        print(f"FAIL: no fixture_*.cpp under {args.fixtures}")
        return 1

    failures = 0
    for fixture in fixtures:
        expected = expected_of(fixture)
        actual = actual_of(args.lint_bin, args.repo_root, fixture,
                           args.verbose)
        missed = expected - actual
        spurious = actual - expected
        if missed or spurious:
            failures += 1
            print(f"FAIL {fixture.name}")
            for line, check in sorted(missed):
                print(f"  missed:   line {line} [{check}]")
            for line, check in sorted(spurious):
                print(f"  spurious: line {line} [{check}]")
        else:
            print(f"ok   {fixture.name} ({len(expected)} expected "
                  f"diagnostic(s))")

    if failures:
        print(f"{failures}/{len(fixtures)} fixture(s) failed")
        return 1
    print(f"all {len(fixtures)} fixture(s) passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
