// amtfmm_lint fixture: a scoped capability guard (SyncLockGuard /
// SyncUniqueLock) still live at a NetTransport post_* call must be
// flagged (lock-across-send) — the send can block on window
// backpressure while the caller holds a runtime mutex.  A guard whose
// scope has closed, or a SyncUniqueLock explicitly .unlock()ed, is not
// live; re-.lock()ing it makes it live again.  Local mocks mirror the
// runtime's qualified names so the fixture needs no repo headers.

namespace amtfmm {

class SyncMutex {};

class SyncLockGuard {
 public:
  explicit SyncLockGuard(SyncMutex&) {}
};

class SyncUniqueLock {
 public:
  explicit SyncUniqueLock(SyncMutex&) {}
  void lock() {}
  void unlock() {}
};

namespace net {
struct NetTransport {
  bool post_batch(unsigned dst, int batch) {
    (void)dst;
    (void)batch;
    return true;
  }
  bool post_control(unsigned dst, int msg) {
    (void)dst;
    (void)msg;
    return true;
  }
};
}  // namespace net

}  // namespace amtfmm

amtfmm::SyncMutex g_mu;
amtfmm::net::NetTransport g_net;

void bad_guard_held() {
  amtfmm::SyncLockGuard lk(g_mu);
  g_net.post_batch(1, 42);  // expect-lint: lock-across-send
}

void good_scope_closed() {
  {
    amtfmm::SyncLockGuard lk(g_mu);
  }
  g_net.post_batch(1, 42);
}

void good_unlocked_then_bad_relocked() {
  amtfmm::SyncUniqueLock lk(g_mu);
  lk.unlock();
  g_net.post_batch(1, 42);  // released first: do_write's pattern, clean
  lk.lock();
  g_net.post_control(1, 7);  // expect-lint: lock-across-send
}

void reviewed_escape() {
  amtfmm::SyncLockGuard lk(g_mu);
  // lock-across-send-ok: fixture — reviewed, loopback transport only.
  g_net.post_control(1, 7);
}

int main() {
  bad_guard_held();
  good_scope_closed();
  good_unlocked_then_bad_relocked();
  reviewed_escape();
  return 0;
}
