// amtfmm_lint fixture: the remaining confinement rules in one TU —
// unseeded randomness (seeded-random), raw socket syscalls outside
// src/runtime/net/ (net-confinement), wall-clock reads outside the
// trace/telemetry layer (wallclock-confinement), and SIMD dispatch
// builtins outside src/kernels/simd/ (simd-confinement) — plus their
// escape hatches.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

extern "C" int socket(int domain, int type, int protocol);

int unseeded() {
  return std::rand();  // expect-lint: seeded-random
}

int entropy() {
  std::random_device rd;  // expect-lint: seeded-random
  return static_cast<int>(rd());
}

int seeded_escape() {
  // rand-ok: fixture — reproducibility not needed here.
  return std::rand();
}

int raw_socket() {
  return ::socket(2, 1, 0);  // expect-lint: net-confinement
}

int socket_escape() {
  // net-ok: fixture — bootstrap path before the transport exists.
  return ::socket(2, 1, 0);
}

long wall_clock() {
  long a = static_cast<long>(::time(nullptr));  // expect-lint: wallclock-confinement
  auto b = std::chrono::system_clock::now();  // expect-lint: wallclock-confinement
  return a + b.time_since_epoch().count();
}

long wall_clock_escape() {
  // time-ok: fixture — epoch stamp for a log header, not for ordering.
  return static_cast<long>(::time(nullptr));
}

bool simd_dispatch() {
  return __builtin_cpu_supports("avx2");  // expect-lint: simd-confinement
}

bool simd_escape() {
  // simd-ok: fixture — one-shot capability probe in the launcher.
  return __builtin_cpu_supports("avx2");
}

int main() {
  return unseeded() + entropy() + seeded_escape() + raw_socket() +
         socket_escape() + static_cast<int>(wall_clock() + wall_clock_escape()) +
         (simd_dispatch() ? 1 : 0) + (simd_escape() ? 1 : 0);
}
