// amtfmm_lint fixture: threading primitives outside src/runtime/ must be
// flagged (thread-confinement), and the `// thread-ok:` escape must
// silence the diagnostic.  Each seeded violation carries an
// `// expect-lint:` marker checked by run_fixtures.py.

#include <mutex>
#include <thread>

namespace app {

struct State {
  std::mutex mu;  // expect-lint: thread-confinement
};

void worker();

void start() {
  std::thread t(worker);  // expect-lint: thread-confinement
  t.join();
}

// thread-ok: fixture — proves the escape hatch silences the check.
std::mutex escaped_mu;

}  // namespace app

void app::worker() {}

int main() {
  app::start();
  return 0;
}
