// amtfmm_lint fixture: memory_order_relaxed without a justification
// comment must be flagged (relaxed-justification); a `// relaxed-ok:`
// comment on the line or up to two lines above silences it.

#include <atomic>

std::atomic<int> counter{0};

int naked_relaxed() {
  return counter.load(std::memory_order_relaxed);  // expect-lint: relaxed-justification
}

int justified_relaxed() {
  // relaxed-ok: fixture — monotonic counter, no ordering required.
  return counter.load(std::memory_order_relaxed);
}

int justified_two_above() {
  // relaxed-ok: fixture — escape comment two lines above the site.
  int x =
      counter.load(std::memory_order_relaxed);
  return x;
}

int main() { return naked_relaxed() + justified_relaxed() + justified_two_above(); }
