// amtfmm_lint fixture: wire structs must be trivially copyable
// (wire-trivially-copyable) and must not contain pointer/reference
// members anywhere, recursively through nested records and arrays
// (payload-pointer).  Neither check has an escape hatch — wire structs
// are memcpy-(de)serialized, so these are hard errors.

#include <string>

// Pointer member directly in a wire struct: the address dies on the wire.
struct WireRecord {
  double charge = 0.0;
  int* owner = nullptr;  // expect-lint: payload-pointer
};

// Non-trivially-copyable wire struct (std::string manages heap memory).
struct ExpansionPayload {  // expect-lint: wire-trivially-copyable
  std::string blob;
};

// Pointer reached only through a nested record inside an array.
struct Inner {
  float* samples;  // expect-lint: payload-pointer
};
struct ParcelHeader {
  Inner inner[2];
};

// Clean wire struct: no diagnostics expected.
struct SectionHeader {
  unsigned kind = 0;
  unsigned length = 0;
  double payload[4] = {0, 0, 0, 0};
};

int main() {
  WireRecord w;
  ExpansionPayload e;
  ParcelHeader p;
  SectionHeader s;
  return static_cast<int>(w.charge + s.payload[0]) + (p.inner[0].samples ? 1 : 0) +
         static_cast<int>(e.blob.size());
}
