// amtfmm_lint fixture: blocking calls (sleep, explicit .lock(), socket
// syscalls) directly inside a task-body lambda — one bound to
// amtfmm::Task::fn or passed to an Executor spawn/send/submit — must be
// flagged (task-blocking-call).  The scan is non-transitive: calling a
// helper function that blocks is not flagged, and nested (deferred)
// lambdas are skipped.  Local mocks mirror the runtime's qualified names
// (amtfmm::Task, amtfmm::Executor) so the fixture needs no repo headers.

#include <chrono>
#include <functional>
#include <mutex>
#include <thread>

namespace amtfmm {

struct Task {
  std::function<void()> fn;
};

class Executor {
 public:
  virtual ~Executor() = default;
  virtual void spawn(Task t) = 0;
  virtual void submit(std::function<void()> f) = 0;
};

class Pool : public Executor {
 public:
  void spawn(Task) override {}
  void submit(std::function<void()>) override {}
};

}  // namespace amtfmm

// thread-ok: fixture — mock lock for the task-body scan below.
std::mutex g_mu;

void helper_that_blocks() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

int main() {
  amtfmm::Pool pool;
  amtfmm::Task t;

  // Lambda bound to Task::fn: both blocking calls inside must be flagged.
  t.fn = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // expect-lint: task-blocking-call
    g_mu.lock();  // expect-lint: task-blocking-call
    g_mu.unlock();
  };
  pool.spawn(std::move(t));

  // Lambda passed straight to an Executor entry point (through the
  // derived class): same contract.
  pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // expect-lint: task-blocking-call
  });

  // Non-transitive: the helper blocks, but the task body itself does not.
  pool.submit([] { helper_that_blocks(); });

  // Nested lambda is a deferred body of its own, not this task's
  // execution — must not be flagged.
  pool.submit([] {
    auto deferred = [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    };
    (void)deferred;
  });

  // Reviewed escape hatch.
  pool.submit([] {
    // blocking-ok: fixture — reviewed, runs on a dedicated service worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
  });

  return 0;
}
