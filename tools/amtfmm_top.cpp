// amtfmm_top: live terminal view of a serving world's telemetry.
//
//   amtfmm_serve --telemetry=/tmp/tel ... &
//   amtfmm_top --dir=/tmp/tel               # live, refreshes each interval
//   amtfmm_top --dir=/tmp/tel --once        # one render, then exit
//   amtfmm_top --dir=/tmp/tel --once --prom # Prometheus text exposition
//
// The tool never talks to the serving processes: it polls the snapshot
// file the rank-0 TelemetryAggregator atomically republishes (write tmp +
// rename), so attaching, detaching, or killing the viewer cannot perturb
// the world being observed.  `--prom` emits the text exposition format so
// the same channel feeds a scraper; its grammar is validated by
// scripts/check_telemetry.py.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "runtime/telemetry.hpp"
#include "support/cli.hpp"

namespace {

using namespace amtfmm;

std::vector<TelemetrySample> latest_per_rank(
    const std::vector<std::vector<TelemetrySample>>& series) {
  std::vector<TelemetrySample> latest;
  for (const auto& s : series) {
    if (!s.empty()) latest.push_back(s.back());
  }
  return latest;
}

double rate(const TelemetrySample& s, const char* name) {
  return s.dt_s > 0.0
             ? static_cast<double>(s.value(name)) / s.dt_s
             : 0.0;
}

void render_table(const std::vector<std::vector<TelemetrySample>>& series) {
  std::printf("%-5s %9s %9s %9s %9s %10s %10s %9s\n", "rank", "tasks/s",
              "steals/s", "epochs/s", "gas_hw", "ep_p50_us", "ep_p99_us",
              "samples");
  for (const auto& s : series) {
    if (s.empty()) continue;
    const TelemetrySample& cur = s.back();
    double p50 = 0.0, p99 = 0.0;
    if (const auto* h = cur.hist("serve.epoch_us")) {
      p50 = histogram_quantile(*h, 0.50);
      p99 = histogram_quantile(*h, 0.99);
    }
    std::printf("%-5u %9.0f %9.0f %9.2f %9llu %10.0f %10.0f %9llu\n",
                cur.rank, rate(cur, "sched.tasks_run"),
                rate(cur, "sched.steal_success"), rate(cur, "serve.epochs"),
                static_cast<unsigned long long>(cur.value("gas.objects_hw")),
                p50, p99,
                static_cast<unsigned long long>(cur.seq + 1));
  }
}

int run(int argc, char** argv) {
  Cli cli(
      "Live view of amtfmm_serve telemetry snapshots.\n"
      "  amtfmm_top --dir=/tmp/tel\n"
      "  amtfmm_top --dir=/tmp/tel --once --prom");
  cli.add_flag("dir", std::string(""),
               "telemetry dir (reads DIR/telemetry.json)");
  cli.add_flag("snapshot", std::string(""),
               "snapshot file path (overrides --dir)");
  cli.add_flag("once", false, "render once and exit (default: live loop)");
  cli.add_flag("prom", false,
               "emit Prometheus text exposition instead of the table");
  cli.add_flag("interval", 1.0, "live refresh period in seconds");
  cli.add_flag("timeout", 10.0,
               "--once: seconds to wait for the snapshot file to appear");
  cli.parse(argc, argv);

  std::string path = cli.str("snapshot");
  if (path.empty()) {
    if (cli.str("dir").empty()) {
      std::fprintf(stderr, "amtfmm_top: need --dir or --snapshot\n");
      return 2;
    }
    path = cli.str("dir") + "/telemetry.json";
  }
  const bool once = cli.flag("once");
  const double interval = std::max(0.1, cli.f64("interval"));

  double waited = 0.0;
  for (;;) {
    std::vector<std::vector<TelemetrySample>> series;
    std::string error;
    const bool loaded = telemetry_load_snapshot(path, series, error);
    if (!loaded && once) {
      // A serving world publishes its first snapshot one sample interval
      // in; give it a grace period before declaring failure.
      if (waited < cli.f64("timeout")) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        waited += 0.1;
        continue;
      }
      std::fprintf(stderr, "amtfmm_top: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    if (loaded) {
      if (cli.flag("prom")) {
        std::fputs(telemetry_render_prom(latest_per_rank(series)).c_str(),
                   stdout);
      } else {
        if (!once) std::printf("\x1b[2J\x1b[H");  // clear + home
        render_table(series);
      }
      std::fflush(stdout);
      if (once) return 0;
    } else {
      std::printf("\x1b[2J\x1b[Hamtfmm_top: waiting for %s\n", path.c_str());
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amtfmm_top: %s\n", e.what());
    return 2;
  }
}
